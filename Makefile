# Tier-1 is the gate every change must pass; race adds the concurrency
# conformance pass that backs the parallel experiment runner.

GO ?= go

.PHONY: all build vet test race tier1 ci bench

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

tier1: build test

ci:
	./ci.sh

bench:
	$(GO) test -bench=. -benchmem ./...
