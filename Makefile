# Tier-1 is the gate every change must pass; race adds the concurrency
# conformance pass that backs the parallel experiment runner.

GO ?= go
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASE ?= BENCH_PR9.json
BENCH_NOW ?= /tmp/rdgc-bench-now.json
FUZZTIME ?= 30s

.PHONY: all build vet test race tier1 ci bench bench-compare fuzz traces synth serve

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

tier1: build test

ci:
	./ci.sh

# traces regenerates the checked-in allocation-event trace corpus under
# internal/trace/testdata/traces; TestTraceCorpus fails if the corpus drifts
# from what the current tree records.
traces:
	RDGC_WRITE_TRACES=1 $(GO) test ./internal/trace -run TestTraceCorpus -v

# synth regenerates the synthesized-corpus golden stats (the 1000-session
# amplified corpus TestSynthGolden1kSessions checks in as
# internal/trace/testdata/synth-golden.json). The golden file is the drift
# guard: a changed event count, trailer, or compressed size fails the test
# until deliberately regenerated here.
synth:
	RDGC_WRITE_TRACES=1 $(GO) test ./internal/trace -run TestSynthGolden1kSessions -v

# serve is the server-simulation smoke: a small sharded gcserve run on the
# default load, printing the per-shard latency table. All time is in
# allocated words (see DESIGN.md "Server simulation").
serve:
	$(GO) run ./cmd/gcserve -collector generational -shards 4 -horizon 30000 -heap 16384

# bench runs the Go microbenchmarks, then measures the tracing engines,
# the full collector grid, the stop-the-world vs incremental pause
# distributions, and the sharded server-simulation latency grid, and writes
# the machine-readable report (the file checked in as BENCH_PR10.json),
# after the workers=1 parity smoke. The rdgc-bench/8 schema adds the
# replay-throughput section: synth-op cost, raw vs block-compressed replay,
# and the sharded replay driver at 1/4/16 shards.
bench:
	$(GO) run ./cmd/benchreport -smoke
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/benchreport -out $(BENCH_OUT)

# bench-compare takes a fresh measurement and diffs it against the checked-in
# baseline (override BENCH_BASE to diff against another BENCH_*.json).
bench-compare:
	$(GO) run ./cmd/benchreport -out $(BENCH_NOW)
	$(GO) run ./cmd/benchreport -compare $(BENCH_BASE) $(BENCH_NOW)

# fuzz mutates byte programs against all seven collectors, checking every
# heap-invariant plus shadow-model agreement after each collection. Override
# FUZZTIME for longer campaigns; replay crashes with cmd/gcfuzz.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzCollectors$$' -fuzztime $(FUZZTIME) ./internal/gc/gcfuzz
