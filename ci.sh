#!/bin/sh
# Repository check suite: tier-1 (build + test), vet, and the race-detector
# pass that guards the parallel experiment runner's across-heaps contract.
set -eu

go build ./...
go vet ./...
go test ./...
go test -race ./...
# Benchmark smoke run: every benchmark executes one iteration, catching
# bit-rot in the perf harness without paying for a real measurement.
go test -run '^$' -bench . -benchtime 1x ./...

# Coverage floors for the invariant-critical packages, set just under the
# coverage measured when the verifier landed; dipping below one means tests
# were deleted or a new code path shipped untested.
check_cover() {
    pct=$(go test -cover -count=1 "$1" | awk '
        { for (i = 1; i <= NF; i++) if ($i ~ /%$/) { gsub(/%/, "", $i); print $i } }')
    if [ -z "$pct" ]; then
        echo "ci: no coverage figure for $1" >&2
        exit 1
    fi
    if [ "$(awk -v p="$pct" -v f="$2" 'BEGIN { print (p >= f) ? 1 : 0 }')" != 1 ]; then
        echo "ci: coverage for $1 is $pct%, below the $2% floor" >&2
        exit 1
    fi
    echo "coverage $1: $pct% (floor $2%)"
}
check_cover ./internal/heap 85
check_cover ./internal/remset 96
check_cover ./internal/trace 85
check_cover ./internal/policy 96
check_cover ./internal/serve 88

# Parallel tracing and sweeping: the conformance suite (which parameterizes
# worker counts itself) and the heap engines re-run under the race detector
# with RDGC_GC_WORKERS pinned to 4 for the env-sensitive paths — including
# the mark/sweep collector, whose sweep phase claims blocks concurrently at
# that setting — then again with per-worker allocation buffers switched on,
# and finally the workers=1 parity smoke (the parallel engines must stay
# within noise of the sequential ones).
RDGC_GC_WORKERS=4 go test -race -count=1 ./internal/heap ./internal/gc/conformance ./internal/gc/marksweep
RDGC_GC_WORKERS=4 RDGC_GC_LAB=1 go test -race -count=1 ./internal/gc/marksweep ./internal/gc/gcfuzz

# Incremental collection: the heap engines, both mark/sweep collectors, and
# the conformance suite (whose incremental tests pin the surviving object
# set to the stop-the-world one) re-run under the race detector with
# RDGC_GC_INCR pinned on, so the barrier, the mark slices, and the lazy
# sweep all run their env-sensitive paths.
RDGC_GC_INCR=1 go test -race -count=1 ./internal/heap ./internal/gc/marksweep ./internal/gc/npms ./internal/gc/conformance

# Tenuring and the adaptive policy controller: the generational collectors
# and the conformance suite (age oracle, threshold-1 ≡ wholesale identity,
# never-promote) re-run under the race detector with RDGC_GC_ADAPT pinned
# on, so every heap the tests build routes survivors through the tenured
# evacuation path with the feedback controller live.
RDGC_GC_ADAPT=1 go test -race -count=1 ./internal/heap ./internal/gc/generational ./internal/gc/multigen ./internal/gc/hybrid ./internal/gc/conformance
go run ./cmd/benchreport -smoke

# Server simulation: the shard loop re-runs under the race detector with the
# runner forced to four workers, so concurrent shards exercise their
# no-shared-state contract; then the gcserve CLI determinism smoke — the
# same seed and config must print byte-identical reports run-to-run and
# across runner worker counts (the words-as-time clock admits no wall-time).
RDGC_PARALLEL=4 go test -race -count=1 ./internal/serve
serve_tmp=$(mktemp -d)
serve_flags="-collector marksweep -gcincr -shards 4 -horizon 20000 -heap 16384 -seed 42 -arrival mmpp"
go run ./cmd/gcserve $serve_flags > "$serve_tmp/a.txt"
go run ./cmd/gcserve $serve_flags > "$serve_tmp/b.txt"
go run ./cmd/gcserve $serve_flags -parallel 1 > "$serve_tmp/c.txt"
cmp "$serve_tmp/a.txt" "$serve_tmp/b.txt"
cmp "$serve_tmp/a.txt" "$serve_tmp/c.txt"
rm -rf "$serve_tmp"

# Trace smoke: record a small benchmark once, then replay the trace under
# every collector with the deep heap-invariant verifier on. Exercises the
# full record -> replay -> verify pipeline through the actual CLI.
trace_tmp=$(mktemp -d)
trap 'rm -rf "$trace_tmp"' EXIT
go run ./cmd/gctrace record -quick -o "$trace_tmp/lattice.trace" lattice
go run ./cmd/gctrace replay -verify "$trace_tmp/lattice.trace"
go run ./cmd/gctrace stat "$trace_tmp/lattice.trace" > /dev/null

# Synth smoke: amplify the recording into an interleaved multi-session
# corpus, raw and block-compressed, and drive the whole synth -> compress ->
# sharded-replay -> verify pipeline through the CLI. The aggregate replay
# stats must be byte-identical between the raw and compressed corpora
# (same events, different wire), run to run, and across -parallel worker
# counts (the sharded driver's aggregation order is spec order, not
# completion order). tail -n +2 drops the path-bearing header line.
go run ./cmd/gctrace synth -op amplify -n 8 -seed 3 -o "$trace_tmp/mix.trace" "$trace_tmp/lattice.trace"
go run ./cmd/gctrace synth -op amplify -n 8 -seed 3 -compress -o "$trace_tmp/mixz.trace" "$trace_tmp/lattice.trace"
mix_bytes=$(wc -c < "$trace_tmp/mix.trace")
mixz_bytes=$(wc -c < "$trace_tmp/mixz.trace")
if [ "$mixz_bytes" -ge "$mix_bytes" ]; then
    echo "ci: compressed corpus ($mixz_bytes bytes) not smaller than raw ($mix_bytes bytes)" >&2
    exit 1
fi
go run ./cmd/gctrace stat "$trace_tmp/mix.trace" > /dev/null
go run ./cmd/gctrace replay -verify "$trace_tmp/mix.trace"  | tail -n +2 > "$trace_tmp/r-raw.txt"
go run ./cmd/gctrace replay -verify "$trace_tmp/mixz.trace" | tail -n +2 > "$trace_tmp/r-z.txt"
cmp "$trace_tmp/r-raw.txt" "$trace_tmp/r-z.txt"
go run ./cmd/gctrace replay -verify -shards 4 "$trace_tmp/mix.trace"             | tail -n +2 > "$trace_tmp/s-a.txt"
go run ./cmd/gctrace replay -verify -shards 4 "$trace_tmp/mix.trace"             | tail -n +2 > "$trace_tmp/s-b.txt"
go run ./cmd/gctrace replay -verify -shards 4 -parallel 1 "$trace_tmp/mix.trace" | tail -n +2 > "$trace_tmp/s-c.txt"
cmp "$trace_tmp/s-a.txt" "$trace_tmp/s-b.txt"
cmp "$trace_tmp/s-a.txt" "$trace_tmp/s-c.txt"

# Fuzz smoke: a bounded mutation run of the cross-collector byte-program
# harness (the seed corpus replays first), under the race detector with the
# parallel tracing engines at four workers so every fuzz input also drives
# the concurrent drains — and, with RDGC_GC_LAB=1, the buffered evacuation
# path and the four-worker block sweep. Every fuzz input already replays in
# incremental mode too (FuzzCollectors runs RunAllIncr on each program); the
# third run pins a small slice budget so mark slices and lazy sweeps
# interleave as finely as possible. Real campaigns: make fuzz.
RDGC_GC_WORKERS=4 go test -race -run '^$' -fuzz '^FuzzCollectors$' -fuzztime 10s ./internal/gc/gcfuzz
RDGC_GC_WORKERS=4 RDGC_GC_LAB=1 go test -race -run '^$' -fuzz '^FuzzCollectors$' -fuzztime 10s ./internal/gc/gcfuzz
RDGC_GC_SLICE=64 go test -race -run '^$' -fuzz '^FuzzCollectors$' -fuzztime 10s ./internal/gc/gcfuzz
# The fourth run pins the tenured replay passes to threshold 6, so the
# age-routing evacuation and the age oracle see every fuzz input at a
# mid-grid threshold (unpinned runs derive the threshold from the program).
RDGC_GC_TENURE=6 go test -race -run '^$' -fuzz '^FuzzCollectors$' -fuzztime 10s ./internal/gc/gcfuzz

# Wire-format fuzz smoke: arbitrary bytes against the trace reader, seeded
# with both wire versions, compressed blocks, and the checked-in synthesized
# corpus. The reader must decode or fail with a package sentinel — never
# panic — no matter what the block decompressor is fed.
go test -run '^$' -fuzz '^FuzzTraceReader$' -fuzztime 10s ./internal/trace
