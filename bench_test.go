// Package rdgc's benchmark harness regenerates every table and figure of
// the paper. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports its headline quantity with b.ReportMetric — the
// mark/cons ratios, relative overheads, and survival rates whose *shape*
// EXPERIMENTS.md compares against the paper's numbers.
package rdgc

import (
	"fmt"
	"testing"

	"rdgc/internal/analytic"
	"rdgc/internal/bench"
	"rdgc/internal/bench/boyer"
	"rdgc/internal/bench/dynamicw"
	"rdgc/internal/bench/lattice"
	"rdgc/internal/bench/nbody"
	"rdgc/internal/bench/nucleic"
	"rdgc/internal/core"
	"rdgc/internal/decay"
	"rdgc/internal/experiments"
	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

// BenchmarkTable1 regenerates the worked trace of Table 1 and reports the
// steady-state mark/cons ratio (paper: 0.2).
func BenchmarkTable1(b *testing.B) {
	var mc float64
	for i := 0; i < b.N; i++ {
		mc = experiments.RunTable1(2).MarkCons
	}
	b.ReportMetric(mc, "mark/cons")
}

// BenchmarkFigure1Analytic evaluates the full analytic Figure 1 surface.
func BenchmarkFigure1Analytic(b *testing.B) {
	ls := []float64{1.5, 2, 3, 4, 6, 8}
	gs := analytic.SweepG(100)
	var points int
	for i := 0; i < b.N; i++ {
		points = 0
		for _, l := range ls {
			points += len(analytic.Figure1Series(l, gs))
		}
	}
	b.ReportMetric(float64(points), "points")
}

// BenchmarkFigure1Simulated measures one simulated point of Figure 1
// (L=3.5, g=0.25) with real collectors on the decay workload and reports
// the measured relative overhead next to Corollary 5's prediction.
func BenchmarkFigure1Simulated(b *testing.B) {
	cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, G: 0.25, Steps: 60000}
	var rel float64
	for i := 0; i < b.N; i++ {
		np := experiments.RunNonPredictive(cfg)
		ms := experiments.RunMarkSweep(cfg)
		rel = np.MarkCons / ms.MarkCons
	}
	b.ReportMetric(rel, "relative")
	b.ReportMetric(analytic.Relative(cfg.G, cfg.L), "predicted")
}

// BenchmarkTable2 runs the reduced-scale benchmark suite once per iteration
// — the inventory exists and every program verifies its own result.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range bench.Quick() {
			h := heap.New()
			semispace.New(h, 1<<15, semispace.WithExpansion(3))
			if err := p.Run(h); err != nil {
				b.Fatal(p.Name(), err)
			}
		}
	}
}

// benchTable3 runs one Table 3 row and reports both collectors' overheads.
func benchTable3(b *testing.B, mk func() bench.Program) {
	var row experiments.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.RunTable3Row(mk, experiments.DefaultTable3Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*row.GCRatioSC(), "sc-gc-%")
	b.ReportMetric(100*row.GCRatioGen(), "gen-gc-%")
}

func BenchmarkTable3(b *testing.B) {
	cases := []struct {
		name string
		mk   func() bench.Program
	}{
		{"nbody", func() bench.Program { return nbody.New(16, 30) }},
		{"nucleic2", func() bench.Program { return nucleic.New(12, 2) }},
		{"lattice", func() bench.Program {
			l := lattice.New(4, 3)
			l.Repeat = 3
			return l
		}},
		{"10dynamic", func() bench.Program { return dynamicw.New(6) }},
		{"nboyer2", func() bench.Program { return boyer.New(2, false) }},
		{"sboyer2", func() bench.Program { return boyer.New(2, true) }},
		{"sboyer3", func() bench.Program { return boyer.New(3, true) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchTable3(b, c.mk) })
	}
}

// benchSurvival runs one of Tables 4-7 and reports the survival rate of the
// youngest and oldest populated age classes.
func benchSurvival(b *testing.B, id string) {
	var exp experiments.SurvivalExperiment
	for _, e := range experiments.SurvivalExperiments() {
		if e.ID == id {
			exp = e
		}
	}
	var young, old float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSurvival(exp)
		if err != nil {
			b.Fatal(err)
		}
		young, old = -1, -1
		for _, r := range rows {
			if r.Live < 1000 {
				continue
			}
			if young < 0 {
				young = r.Rate()
			}
			old = r.Rate()
		}
	}
	b.ReportMetric(100*young, "young-%")
	b.ReportMetric(100*old, "old-%")
}

func BenchmarkTable4(b *testing.B) { benchSurvival(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchSurvival(b, "table5") }
func BenchmarkTable6(b *testing.B) { benchSurvival(b, "table6") }
func BenchmarkTable7(b *testing.B) { benchSurvival(b, "table7") }

// benchProfile regenerates one of Figures 2-4 and reports the peak live
// storage in megabytes (paper: 1.1, 2, and 1.3 respectively).
func benchProfile(b *testing.B, id string) {
	var exp experiments.ProfileExperiment
	for _, e := range experiments.ProfileExperiments() {
		if e.ID == id {
			exp = e
		}
	}
	var peak uint64
	for i := 0; i < b.N; i++ {
		p, err := experiments.RunProfile(exp)
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, r := range p.Rows {
			if r.TotalLive > peak {
				peak = r.TotalLive
			}
		}
	}
	b.ReportMetric(float64(peak)*8/1e6, "peak-MB")
}

func BenchmarkFigure2(b *testing.B) { benchProfile(b, "figure2") }
func BenchmarkFigure3(b *testing.B) { benchProfile(b, "figure3") }
func BenchmarkFigure4(b *testing.B) { benchProfile(b, "figure4") }

// BenchmarkEquilibrium validates equation (1): live objects at equilibrium
// approach 1.4427h.
func BenchmarkEquilibrium(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		h := heap.New()
		semispace.New(h, 1<<19)
		w := decay.NewWorkload(h, 512, 42)
		w.Warmup(12)
		var sum float64
		for j := 0; j < 200; j++ {
			w.Run(64)
			sum += float64(w.LiveObjects())
		}
		ratio = (sum / 200) / analytic.EquilibriumLive(512)
	}
	b.ReportMetric(ratio, "live/predicted")
}

// BenchmarkDecayConventionalWorse measures Section 3's claim: a
// conventional generational collector does worse than a non-generational
// one under radioactive decay.
func BenchmarkDecayConventionalWorse(b *testing.B) {
	cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, Steps: 60000}
	var conv, ms float64
	for i := 0; i < b.N; i++ {
		conv = experiments.RunConventionalGenerational(cfg).MarkCons
		ms = experiments.RunMarkSweep(cfg).MarkCons
	}
	b.ReportMetric(conv/ms, "conv/nongen")
}

// BenchmarkDecayNonPredictiveWins measures the paper's headline: the
// non-predictive collector beats the non-generational one under decay.
func BenchmarkDecayNonPredictiveWins(b *testing.B) {
	cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, G: 0.25, Steps: 60000}
	var np, ms float64
	for i := 0; i < b.N; i++ {
		np = experiments.RunNonPredictive(cfg).MarkCons
		ms = experiments.RunMarkSweep(cfg).MarkCons
	}
	b.ReportMetric(np/ms, "np/nongen")
}

// BenchmarkAblationJPolicy compares j policies on the decay workload.
func BenchmarkAblationJPolicy(b *testing.B) {
	policies := []struct {
		name string
		p    core.JPolicy
	}{
		{"recommended", core.Recommended{}},
		{"fixed2", core.FixedJ(2)},
		{"zero", core.ZeroJ{}},
		{"fraction0.25", core.FractionJ(0.25)},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			var mc float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, Steps: 60000}
				h := heap.New()
				c := core.New(h, 16, cfg.HeapWords()/16, core.WithPolicy(pc.p))
				w := decay.NewWorkload(h, cfg.HalfLife, 1)
				w.Warmup(10)
				a0 := h.Stats.WordsAllocated
				c0 := c.GCStats().WordsCopied
				w.Run(cfg.Steps)
				mc = float64(c.GCStats().WordsCopied-c0) / float64(h.Stats.WordsAllocated-a0)
			}
			b.ReportMetric(mc, "mark/cons")
		})
	}
}

// BenchmarkAblationStepCount sweeps k on the decay workload: more steps
// give the collector finer control of g at the cost of smaller copy units.
func BenchmarkAblationStepCount(b *testing.B) {
	for _, k := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var mc float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, G: 0.25, K: k, Steps: 60000}
				mc = experiments.RunNonPredictive(cfg).MarkCons
			}
			b.ReportMetric(mc, "mark/cons")
		})
	}
}

// BenchmarkAblationRemset compares the remembered-set representations under
// a linking-heavy decay workload (§8.3's growth scenario).
func BenchmarkAblationRemset(b *testing.B) {
	reps := []struct {
		name string
		mk   func() remset.Set
	}{
		{"hashset", func() remset.Set { return remset.NewHashSet() }},
		{"ssb", func() remset.Set { return remset.NewSSB() }},
	}
	for _, rep := range reps {
		b.Run(rep.name, func(b *testing.B) {
			var peak int
			for i := 0; i < b.N; i++ {
				cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, G: 0.25, Steps: 60000}
				h := heap.New()
				c := core.New(h, 16, cfg.HeapWords()/16,
					core.WithPolicy(core.FractionJ(0.25)), core.WithRemset(rep.mk()))
				w := decay.NewWorkload(h, cfg.HalfLife, 1, decay.WithLinking(0.9))
				w.Warmup(10)
				w.Run(cfg.Steps)
				peak = c.GCStats().RemsetPeak
			}
			b.ReportMetric(float64(peak), "remset-peak")
		})
	}
}

// BenchmarkAblationNurserySize sweeps the conventional collector's nursery
// on the decay workload; no nursery size rescues youngest-first collection
// from the decay model.
func BenchmarkAblationNurserySize(b *testing.B) {
	for _, frac := range []float64{1.0 / 16, 1.0 / 8, 1.0 / 4} {
		b.Run(fmt.Sprintf("nursery=1/%d", int(1/frac)), func(b *testing.B) {
			var mc float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DecayConfig{
					HalfLife: 768, L: 3.5, Steps: 60000, NurseryFraction: frac,
				}
				mc = experiments.RunConventionalGenerational(cfg).MarkCons
			}
			b.ReportMetric(mc, "mark/cons")
		})
	}
}

// BenchmarkAblationTenuring sweeps the number of aging generations in a
// multi-generation youngest-first collector under pure decay: no tenuring
// pipeline rescues youngest-first collection from the radioactive decay
// model.
func BenchmarkAblationTenuring(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("gens=%d", n), func(b *testing.B) {
			var mc float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, Steps: 60000}
				mc = experiments.RunMultigen(cfg, n).MarkCons
			}
			b.ReportMetric(mc, "mark/cons")
		})
	}
}

// BenchmarkCrossoverInfantMortality sweeps the infant-mortality mixture
// from pure decay toward weak-generational behaviour (sharp infant
// half-life, light young load factor as §7 prescribes), reporting each
// collector's ratio to the non-generational baseline. The conventional
// collector crosses from losing badly to winning; the hybrid follows it
// down while the standalone non-predictive collector drifts toward parity
// (survival increasing with age is its §7-unfavourable case).
func BenchmarkCrossoverInfantMortality(b *testing.B) {
	for _, p := range []float64{0, 0.5, 0.8, 0.95} {
		b.Run(fmt.Sprintf("infant=%.2f", p), func(b *testing.B) {
			var convRel, npRel, hyRel float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DecayConfig{
					HalfLife: 768, L: 3.5, G: 0.25, Steps: 60000,
					InfantProb: p, InfantHalfLife: 768.0 / 256,
					NurseryFraction: 0.25,
				}
				ms := experiments.RunMarkSweep(cfg)
				convRel = experiments.RunConventionalGenerational(cfg).MarkCons / ms.MarkCons
				npRel = experiments.RunNonPredictive(cfg).MarkCons / ms.MarkCons
				hyRel = experiments.RunHybrid(cfg).MarkCons / ms.MarkCons
			}
			b.ReportMetric(convRel, "conv/nongen")
			b.ReportMetric(npRel, "np/nongen")
			b.ReportMetric(hyRel, "hybrid/nongen")
		})
	}
}

// BenchmarkAblationObjectSize checks that the Section 5 analysis is
// independent of the object-size distribution: the measured mark/cons
// ratios for pairs, small vectors, and mixed sizes should all sit near
// Theorem 4's word-based prediction.
func BenchmarkAblationObjectSize(b *testing.B) {
	cases := []struct {
		name     string
		min, max int
	}{
		{"pairs", 0, 0},
		{"small-vectors", 1, 3},
		{"mixed", 1, 15},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var mc float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.DecayConfig{
					HalfLife: 768, L: 3.5, G: 0.25, Steps: 60000,
					SizeMin: c.min, SizeMax: c.max,
				}
				mc = experiments.RunNonPredictive(cfg).MarkCons
			}
			b.ReportMetric(mc, "mark/cons")
			b.ReportMetric(analytic.MarkCons(0.25, 3.5), "predicted")
		})
	}
}

// BenchmarkNonPredictiveMS measures the mark/sweep-based non-predictive
// collector (§8's intended variant) on the decay workload.
func BenchmarkNonPredictiveMS(b *testing.B) {
	cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, G: 0.25, Steps: 60000}
	var mc float64
	for i := 0; i < b.N; i++ {
		mc = experiments.RunNonPredictiveMS(cfg).MarkCons
	}
	b.ReportMetric(mc, "mark/cons")
}

// BenchmarkHeapAllocation measures the substrate's raw allocation path.
func BenchmarkHeapAllocation(b *testing.B) {
	h := heap.New()
	semispace.New(h, 1<<20)
	s := h.Scope()
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := h.Scope()
		h.Cons(h.Fix(int64(i)), h.Null())
		g.Close()
	}
}

// BenchmarkBoyerRewrite measures the term rewriter itself (mutator speed).
func BenchmarkBoyerRewrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := boyer.New(1, true)
		h := heap.New()
		semispace.New(h, 1<<16, semispace.WithExpansion(3))
		if err := p.Run(h); err != nil {
			b.Fatal(err)
		}
	}
}
