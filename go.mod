module rdgc

go 1.22
