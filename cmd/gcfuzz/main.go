// Command gcfuzz replays byte programs from the cross-collector fuzzing
// harness outside the test framework: point it at a crasher file the fuzzer
// reported (testdata/fuzz/FuzzCollectors/... or $GOCACHE/fuzz/...) or at raw
// bytes, and it reruns the program against every collector, printing each
// collector's mutator statistics and the first property violation.
//
//	gcfuzz [-census=auto|on|off] [-collector NAME] [-gcincr] [-minimize] [-emit-trace FILE] [-compress] FILE...
//
// With -minimize, a failing program is shrunk to a minimal reproducer
// (printed as a go-fuzz corpus file, ready to check in as a regression
// seed). With -emit-trace, the byte program is additionally exported as an
// allocation-event trace (see cmd/gctrace), so a fuzzer-found workload can
// be replayed, profiled, and checked in like any recorded benchmark;
// -compress writes it with per-block compression.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

func main() {
	censusMode := flag.String("census", "auto", "census tracking: auto (derived from the program), on, or off")
	collector := flag.String("collector", "", "run only the named collector (default: all, with cross-collector stats check)")
	gcincr := flag.Bool("gcincr", heap.GCIncrFromEnv(), "replay with incremental collection (mark slices + lazy sweep) where supported (default $RDGC_GC_INCR)")
	gctenure := flag.Int("gctenure", 0, "promotion threshold for the tenuring collectors, in collections survived (0 = $RDGC_GC_TENURE, 1 = wholesale promotion)")
	gcadapt := flag.Bool("gcadapt", heap.GCAdaptFromEnv(), "adapt nursery trigger and promotion threshold online from survival statistics (default $RDGC_GC_ADAPT)")
	minimize := flag.Bool("minimize", false, "shrink a failing program to a minimal reproducer")
	emitTrace := flag.String("emit-trace", "", "export the (single) program as an allocation-event trace to `file`")
	compress := flag.Bool("compress", false, "write the -emit-trace output with per-block compression")
	flag.Parse()
	heap.SetDefaultGCTenure(heap.ResolveGCTenure(*gctenure))
	heap.SetDefaultGCAdaptive(*gcadapt)
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *emitTrace != "" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "gcfuzz: -emit-trace takes exactly one program file")
		os.Exit(2)
	}

	exit := 0
	for _, path := range flag.Args() {
		if err := replay(path, *censusMode, *collector, *gcincr, *minimize, *emitTrace, *compress); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// emit records the byte program as an allocation-event trace. The recording
// collector is immaterial to the trace bytes; the fixed-size fuzz grid's
// first collector drives the run. The trace carries no heap_words metadata,
// which tells gctrace replay to use the same fuzz-sized grid.
func emit(path string, prog []byte, census, compress bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := []trace.MetaEntry{
		{Key: "workload", Value: "gcfuzz:" + filepath.Base(path)},
		{Key: "sizing", Value: "gcfuzz"},
	}
	var wopts []trace.WriterOption
	if compress {
		wopts = append(wopts, trace.WithCompression())
	}
	var rec *trace.Recorder
	var wrapErr error
	_, runErr := gcfuzz.RunWith(prog, gcfuzz.Collectors()[0].New, census,
		func(h *heap.Heap, c heap.Collector) heap.Collector {
			w, err := trace.NewWriter(f, trace.Header{Census: census, Meta: meta}, wopts...)
			if err != nil {
				wrapErr = err
				return c
			}
			rec, err = trace.NewRecorder(h, w)
			if err != nil {
				wrapErr = err
				return c
			}
			return rec.Collector(c)
		})
	err = wrapErr
	if rec != nil && err == nil {
		err = rec.Finish()
	}
	if err == nil {
		err = runErr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("emit-trace: %w", err)
	}
	fmt.Printf("  trace written to %s\n", path)
	return nil
}

func replay(path, censusMode, collector string, gcincr, minimize bool, emitTrace string, compress bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := gcfuzz.UnmarshalCorpus(data)
	if err != nil {
		return err
	}
	census := false
	switch censusMode {
	case "auto":
		census = len(prog) > 0 && prog[0]&1 == 0
	case "on":
		census = true
	case "off":
	default:
		return fmt.Errorf("bad -census value %q", censusMode)
	}
	fmt.Printf("%s: %d program bytes, census=%v\n", path, len(prog), census)

	if emitTrace != "" {
		if err := emit(emitTrace, prog, census, compress); err != nil {
			return err
		}
	}

	runOne := gcfuzz.Run
	runAll := gcfuzz.RunAll
	if gcincr {
		runOne = gcfuzz.RunIncr
		runAll = gcfuzz.RunAllIncr
	}
	run := func(p []byte) error {
		if collector != "" {
			for _, nc := range gcfuzz.Collectors() {
				if nc.Name == collector {
					_, err := runOne(p, nc.New, census)
					return err
				}
			}
			return fmt.Errorf("unknown collector %q", collector)
		}
		return runAll(p, census)
	}

	var firstStats heap.Stats
	for i, nc := range gcfuzz.Collectors() {
		if collector != "" && nc.Name != collector {
			continue
		}
		stats, err := runOne(prog, nc.New, census)
		status := "ok"
		if err != nil {
			status = err.Error()
		}
		note := ""
		if collector == "" {
			if i == 0 {
				firstStats = stats
			} else if stats != firstStats {
				note = "  <-- stats diverged"
			}
		}
		fmt.Printf("  %-14s %d words, %d objects: %s%s\n",
			nc.Name, stats.WordsAllocated, stats.ObjectsAllocated, status, note)
	}

	err = run(prog)
	if err == nil {
		fmt.Println("  all properties hold")
		return nil
	}
	if minimize {
		min := gcfuzz.Minimize(prog, func(p []byte) bool { return run(p) != nil })
		fmt.Printf("  minimized to %d bytes:\n%s", len(min), gcfuzz.MarshalCorpus(min))
	}
	return err
}
