// Command gcfuzz replays byte programs from the cross-collector fuzzing
// harness outside the test framework: point it at a crasher file the fuzzer
// reported (testdata/fuzz/FuzzCollectors/... or $GOCACHE/fuzz/...) or at raw
// bytes, and it reruns the program against every collector, printing each
// collector's mutator statistics and the first property violation.
//
//	gcfuzz [-census=auto|on|off] [-collector NAME] [-minimize] FILE...
//
// With -minimize, a failing program is shrunk to a minimal reproducer
// (printed as a go-fuzz corpus file, ready to check in as a regression
// seed).
package main

import (
	"flag"
	"fmt"
	"os"

	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/heap"
)

func main() {
	censusMode := flag.String("census", "auto", "census tracking: auto (derived from the program), on, or off")
	collector := flag.String("collector", "", "run only the named collector (default: all, with cross-collector stats check)")
	minimize := flag.Bool("minimize", false, "shrink a failing program to a minimal reproducer")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	exit := 0
	for _, path := range flag.Args() {
		if err := replay(path, *censusMode, *collector, *minimize); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func replay(path, censusMode, collector string, minimize bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := gcfuzz.UnmarshalCorpus(data)
	if err != nil {
		return err
	}
	census := false
	switch censusMode {
	case "auto":
		census = len(prog) > 0 && prog[0]&1 == 0
	case "on":
		census = true
	case "off":
	default:
		return fmt.Errorf("bad -census value %q", censusMode)
	}
	fmt.Printf("%s: %d program bytes, census=%v\n", path, len(prog), census)

	run := func(p []byte) error {
		if collector != "" {
			for _, nc := range gcfuzz.Collectors() {
				if nc.Name == collector {
					_, err := gcfuzz.Run(p, nc.New, census)
					return err
				}
			}
			return fmt.Errorf("unknown collector %q", collector)
		}
		return gcfuzz.RunAll(p, census)
	}

	var firstStats heap.Stats
	for i, nc := range gcfuzz.Collectors() {
		if collector != "" && nc.Name != collector {
			continue
		}
		stats, err := gcfuzz.Run(prog, nc.New, census)
		status := "ok"
		if err != nil {
			status = err.Error()
		}
		note := ""
		if collector == "" {
			if i == 0 {
				firstStats = stats
			} else if stats != firstStats {
				note = "  <-- stats diverged"
			}
		}
		fmt.Printf("  %-14s %d words, %d objects: %s%s\n",
			nc.Name, stats.WordsAllocated, stats.ObjectsAllocated, status, note)
	}

	err = run(prog)
	if err == nil {
		fmt.Println("  all properties hold")
		return nil
	}
	if minimize {
		min := gcfuzz.Minimize(prog, func(p []byte) bool { return run(p) != nil })
		fmt.Printf("  minimized to %d bytes:\n%s", len(min), gcfuzz.MarshalCorpus(min))
	}
	return err
}
