// Command survival reproduces the lifetime measurements of Section 7:
// Tables 4-7 (survival rates by age) and Figures 2-4 (live storage versus
// time, striped by age). Figures are emitted as CSV (for plotting) or as a
// terminal skyline with -ascii.
package main

import (
	"flag"
	"fmt"
	"os"

	"rdgc/internal/experiments"
)

func main() {
	id := flag.String("id", "all", "experiment: table4..table7, figure2..figure4, or all")
	ascii := flag.Bool("ascii", false, "render figures as a terminal skyline instead of CSV")
	width := flag.Int("width", 72, "skyline width for -ascii")
	flag.Parse()

	ran := false
	for _, e := range experiments.SurvivalExperiments() {
		if *id != "all" && *id != e.ID {
			continue
		}
		ran = true
		fmt.Printf("== %s: %s\n", e.ID, e.Description)
		rows, err := experiments.RunSurvival(e)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bytesPerEpoch := e.EpochWords * 8
		for _, r := range rows {
			if r.Live == 0 {
				continue
			}
			lo := uint64(r.AgeLo+1) * bytesPerEpoch
			hi := fmt.Sprintf("%d", uint64(r.AgeHi+1)*bytesPerEpoch)
			if r.AgeHi < 0 {
				hi = "older"
			}
			fmt.Printf("  %9d to %9s bytes old: %3.0f%%\n", lo, hi, 100*r.Rate())
		}
		fmt.Println()
	}

	for _, e := range experiments.ProfileExperiments() {
		if *id != "all" && *id != e.ID {
			continue
		}
		ran = true
		fmt.Printf("== %s: %s\n", e.ID, e.Description)
		p, err := experiments.RunProfile(e)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *ascii {
			if err := p.RenderASCII(os.Stdout, *width); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else if err := p.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *id)
		os.Exit(2)
	}
}
