// Command survival reproduces the lifetime measurements of Section 7:
// Tables 4-7 (survival rates by age) and Figures 2-4 (live storage versus
// time, striped by age). Figures are emitted as CSV (for plotting) or as a
// terminal skyline with -ascii.
//
// Each experiment is an independent cell on a worker pool (-parallel,
// default GOMAXPROCS); results print in experiment order, so stdout is
// byte-identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rdgc/internal/experiments"
	"rdgc/internal/lifetime"
	"rdgc/internal/runner"
)

// cell is one experiment's output: a survival table or a storage profile.
type cell struct {
	header     string
	rows       []lifetime.SurvivalRow
	epochWords uint64
	profile    lifetime.Profile
	isProfile  bool
}

func main() {
	id := flag.String("id", "all", "experiment: table4..table7, figure2..figure4, or all")
	ascii := flag.Bool("ascii", false, "render figures as a terminal skyline instead of CSV")
	width := flag.Int("width", 72, "skyline width for -ascii")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, or $RDGC_PARALLEL)")
	progress := flag.Bool("progress", false, "report per-cell completion to stderr")
	flag.Parse()

	var specs []runner.Spec[cell]
	for _, e := range experiments.SurvivalExperiments() {
		if *id != "all" && *id != e.ID {
			continue
		}
		e := e
		specs = append(specs, runner.Spec[cell]{
			Name: e.ID,
			Run: func() (cell, error) {
				rows, err := experiments.RunSurvival(e)
				return cell{
					header:     fmt.Sprintf("== %s: %s", e.ID, e.Description),
					rows:       rows,
					epochWords: e.EpochWords,
				}, err
			},
		})
	}
	for _, e := range experiments.ProfileExperiments() {
		if *id != "all" && *id != e.ID {
			continue
		}
		e := e
		specs = append(specs, runner.Spec[cell]{
			Name: e.ID,
			Run: func() (cell, error) {
				p, err := experiments.RunProfile(e)
				return cell{
					header:    fmt.Sprintf("== %s: %s", e.ID, e.Description),
					profile:   p,
					isProfile: true,
				}, err
			},
		})
	}
	if len(specs) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *id)
		os.Exit(2)
	}

	var pw io.Writer
	if *progress {
		pw = os.Stderr
	}
	for _, r := range runner.Run(specs, runner.Options{Workers: *parallel, Progress: pw}) {
		fmt.Println(r.Value.header)
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		}
		if r.Value.isProfile {
			var err error
			if *ascii {
				err = r.Value.profile.RenderASCII(os.Stdout, *width)
			} else {
				err = r.Value.profile.WriteCSV(os.Stdout)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			bytesPerEpoch := r.Value.epochWords * 8
			for _, row := range r.Value.rows {
				if row.Live == 0 {
					continue
				}
				lo := uint64(row.AgeLo+1) * bytesPerEpoch
				hi := fmt.Sprintf("%d", uint64(row.AgeHi+1)*bytesPerEpoch)
				if row.AgeHi < 0 {
					hi = "older"
				}
				fmt.Printf("  %9d to %9s bytes old: %3.0f%%\n", lo, hi, 100*row.Rate())
			}
		}
		fmt.Println()
	}
}
