// Command gcserve simulates a sharded multi-tenant server over the
// simulated heap: a deterministic open-loop load generator drives N
// independent heap shards, GC pauses are charged to the requests that wait
// for them, and the report's headline numbers are the request-latency
// tails (p50/p99/p999/max in ticks of the words-per-tick service clock).
//
// Identical seed and configuration produce byte-identical stdout for every
// -parallel value; progress lines go to stderr. See DESIGN.md "Server
// simulation".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rdgc/internal/heap"
	"rdgc/internal/serve"
)

func main() {
	collector := flag.String("collector", "generational",
		fmt.Sprintf("per-shard collector: %s", strings.Join(serve.CollectorNames(), ", ")))
	shards := flag.Int("shards", 4, "independent heap shards")
	heapWords := flag.Int("heap", 1<<17, "per-shard collector sizing in `words`")
	wpt := flag.Int("wpt", 64, "service clock: words of work per tick")

	seed := flag.Uint64("seed", 1, "load-generator seed")
	arrival := flag.String("arrival", serve.ArrivalPoisson, "session arrival process: poisson or mmpp")
	horizon := flag.Uint64("horizon", 100000, "load horizon in `ticks`")
	sessionEvery := flag.Float64("session-every", 600, "mean ticks between session arrivals")
	requestEvery := flag.Float64("request-every", 60, "mean ticks between a session's requests")
	sessionMin := flag.Float64("session-min", 1500, "Pareto session-lifetime minimum, ticks")
	sessionAlpha := flag.Float64("session-alpha", 1.6, "Pareto session-lifetime shape")
	requestWords := flag.Int("request-words", 400, "mean handler allocation per request, `words`")
	retain := flag.Int("retain", 128, "session state linked per request, `words` (negative disables)")
	slots := flag.Int("slots", 12, "session ring-buffer slots")
	profiles := flag.String("profiles", "", "comma-separated allocation profiles: registry program names or trace:PATH (default nboyer1,nucleic2,2dyninfer)")
	burstRate := flag.Float64("burst-rate", 8, "mmpp: burst-state arrival-rate multiplier")
	burstEvery := flag.Float64("burst-every", 20000, "mmpp: mean quiet dwell, ticks")
	burstTicks := flag.Float64("burst-ticks", 2500, "mmpp: mean burst dwell, ticks")

	parallel := flag.Int("parallel", 0, "worker goroutines for shard execution (0 = GOMAXPROCS, or $RDGC_PARALLEL)")
	gcworkers := flag.Int("gcworkers", -1, "parallel tracing workers per shard heap (0 = sequential engines; -1 = $RDGC_GC_WORKERS)")
	gclab := flag.Bool("gclab", heap.GCLABFromEnv(), "per-worker allocation buffers during parallel evacuation (default $RDGC_GC_LAB)")
	gcincr := flag.Bool("gcincr", heap.GCIncrFromEnv(), "incremental collection (mark slices + lazy sweep) on the collectors that support it (default $RDGC_GC_INCR)")
	gcslice := flag.Int("gcslice", 0, "incremental mark slice budget in words (0 = $RDGC_GC_SLICE, or the built-in default)")
	gctenure := flag.Int("gctenure", 0, "promotion threshold for the tenuring collectors, in collections survived (0 = $RDGC_GC_TENURE)")
	gcadapt := flag.Bool("gcadapt", heap.GCAdaptFromEnv(), "adapt nursery trigger and promotion threshold online from survival statistics (default $RDGC_GC_ADAPT)")
	progress := flag.Bool("progress", false, "report per-shard completion and wall-clock to stderr")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON instead of the table")
	flag.Parse()

	var profileNames []string
	if *profiles != "" {
		profileNames = strings.Split(*profiles, ",")
	}
	var prog io.Writer
	if *progress {
		prog = os.Stderr
	}
	cfg := serve.Config{
		Load: serve.LoadConfig{
			Seed:            *seed,
			Arrival:         *arrival,
			HorizonTicks:    *horizon,
			SessionEvery:    *sessionEvery,
			RequestEvery:    *requestEvery,
			SessionMinTicks: *sessionMin,
			SessionAlpha:    *sessionAlpha,
			RequestWords:    *requestWords,
			RetainWords:     *retain,
			SessionSlots:    *slots,
			Profiles:        profileNames,
			BurstRate:       *burstRate,
			BurstEvery:      *burstEvery,
			BurstTicks:      *burstTicks,
		},
		Collector:    *collector,
		Shards:       *shards,
		HeapWords:    *heapWords,
		WordsPerTick: *wpt,
		GCWorkers:    heap.ResolveGCWorkers(*gcworkers),
		GCLAB:        *gclab,
		Incremental:  *gcincr,
		SliceBudget:  heap.ResolveGCSlice(*gcslice),
		Tenure:       heap.ResolveGCTenure(*gctenure),
		Adaptive:     *gcadapt,
		Parallel:     *parallel,
		Progress:     prog,
	}
	res, err := serve.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcserve:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "gcserve:", err)
			os.Exit(1)
		}
		return
	}
	res.WriteReport(os.Stdout)
}
