// Command benchreport measures the repository's tracing hot paths and
// emits a machine-readable perf baseline (BENCH_*.json): ns/op for the
// engine microbenchmarks (a steady-state Cheney flip, a steady-state mark
// cycle, and the bitmap-vs-header mark representations), engine-scaling and
// sweep-phase rows at each worker count, and words-traced/sec for every
// collector on the radioactive decay workload. `make bench` runs it; `make bench-compare` diffs the two
// most recent BENCH_*.json files.
//
// With -before FILE, the report written to -out embeds FILE as the "before"
// run and the current measurements as "after", plus per-benchmark speedups —
// the format the repo checks in so future PRs are judged against a measured
// trajectory, not a guess.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"rdgc/internal/bench"
	"rdgc/internal/bench/dyninfer"
	"rdgc/internal/core"
	"rdgc/internal/decay"
	"rdgc/internal/experiments"
	"rdgc/internal/gc/generational"
	"rdgc/internal/gc/hybrid"
	"rdgc/internal/gc/marksweep"
	"rdgc/internal/gc/multigen"
	"rdgc/internal/gc/npms"
	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
	"rdgc/internal/runner"
	"rdgc/internal/serve"
	"rdgc/internal/trace"
)

// EngineResult is one tracing-engine microbenchmark: a fixed object graph
// traced repeatedly by a persistent engine.
type EngineResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// Iterations is the raw b.N of the kept (fastest) round — the
	// denominator behind NsPerOp, recorded so two reports can be judged on
	// comparable sample sizes.
	Iterations  int     `json:"iterations,omitempty"`
	WordsPerOp  uint64  `json:"words_per_op"`
	WordsPerSec float64 `json:"words_per_sec"`
}

// CollectorResult is one collector's throughput on the decay workload.
// GCWorkers is 0 for the default sequential engines; parallel grid rows
// carry the tracing-worker count they ran with.
type CollectorResult struct {
	Collector         string  `json:"collector"`
	GCWorkers         int     `json:"gc_workers,omitempty"`
	Steps             int     `json:"steps"`
	WallNS            int64   `json:"wall_ns"`
	WordsTraced       uint64  `json:"words_traced"`
	WordsTracedPerSec float64 `json:"words_traced_per_sec"`
	NsPerTracedWord   float64 `json:"ns_per_traced_word"`
	MarkCons          float64 `json:"mark_cons"`
	Collections       int     `json:"collections"`
}

// ParallelResult is one engine-scaling row: a wide live forest traced by a
// persistent engine at a fixed tracing-worker count. Workers == 0 is the
// sequential engine (the zero-regression control); workers >= 1 the
// parallel engine.
type ParallelResult struct {
	Engine      string  `json:"engine"`
	GCWorkers   int     `json:"gc_workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	Iterations  int     `json:"iterations,omitempty"`
	WordsPerOp  uint64  `json:"words_per_op"`
	WordsPerSec float64 `json:"words_per_sec"`
}

// TraceResult is one trace-subsystem benchmark row: the decay workload with
// recording off (baseline), with recording on (overhead), and replayed from
// a recorded trace (read-path throughput).
type TraceResult struct {
	Name         string  `json:"name"`
	WallNS       int64   `json:"wall_ns"`
	Events       uint64  `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	Words        uint64  `json:"words,omitempty"`
	WordsPerSec  float64 `json:"words_per_sec,omitempty"`
	TraceBytes   uint64  `json:"trace_bytes,omitempty"`
	// VsBaseline is this row's wall clock over the record-off baseline's
	// (1.0 = free; only meaningful for the record-on row).
	VsBaseline float64 `json:"vs_baseline,omitempty"`
}

// ReplayBenchResult is one replay-throughput row over the synthesized
// corpus: one reduced decay session recorded, amplified into an
// interleaved multi-session corpus (raw and block-compressed), then
// replayed whole, from the compressed encoding, and sharded by session.
// ReadAmplification is decoded payload bytes over bytes read from the
// wire — how much event stream each stored byte yields, so >1 means a
// compressed corpus feeds the replayer more than it costs to read.
type ReplayBenchResult struct {
	Name              string  `json:"name"`
	Shards            int     `json:"shards,omitempty"`
	WallNS            int64   `json:"wall_ns"`
	Events            uint64  `json:"events"`
	EventsPerSec      float64 `json:"events_per_sec"`
	TraceBytes        uint64  `json:"trace_bytes,omitempty"`
	StoredBytes       uint64  `json:"stored_bytes,omitempty"`
	RawBytes          uint64  `json:"raw_bytes,omitempty"`
	ReadAmplification float64 `json:"read_amplification,omitempty"`
	CompressionRatio  float64 `json:"compression_ratio,omitempty"`
	// VsRaw is the raw-corpus whole-replay events/sec over this row's:
	// 1.0 is parity, and the compressed row's acceptance bar is <= 1.5
	// (decompression may cost at most half again the raw decode rate).
	VsRaw float64 `json:"vs_raw,omitempty"`
}

// PauseResult is one pause-distribution row: a workload run under an
// incremental-capable collector, stop-the-world or incremental at a given
// slice budget, with the mutator-visible pause histogram's headline
// quantiles. Pause sizes are words of collector work per pause; an
// incremental row earns its keep when its p99 and max collapse against the
// stop-the-world row for the same (workload, collector) while WallNS stays
// comparable.
type PauseResult struct {
	Workload        string `json:"workload"`
	Collector       string `json:"collector"`
	Incremental     bool   `json:"incremental"`
	SliceBudget     int    `json:"slice_budget,omitempty"`
	AllocWords      uint64 `json:"alloc_words"`
	GCWorkWords     uint64 `json:"gc_work_words"`
	Collections     int    `json:"collections"`
	Pauses          uint64 `json:"pauses"`
	PauseP50Words   uint64 `json:"pause_p50_words"`
	PauseP99Words   uint64 `json:"pause_p99_words"`
	MaxPauseWords   uint64 `json:"max_pause_words"`
	TotalPauseWords uint64 `json:"total_pause_words"`
	WallNS          int64  `json:"wall_ns"`
	Error           string `json:"error,omitempty"`
}

// TenureResult is one cell of the fixed-vs-adaptive tenuring grid: the
// generational collector runs the workload at a pinned promotion threshold
// or under the adaptive policy controller (DESIGN.md "Tenuring & adaptive
// policy"), and the cell records the copy-work decomposition the policy is
// supposed to minimize. WordsCopied is the figure of merit — all copying,
// minor and major; WordsTenured the survivor words the nursery re-copied
// to keep young; WordsPromoted what crossed into the old generation.
type TenureResult struct {
	Workload         string `json:"workload"`
	Policy           string `json:"policy"` // fixed threshold ("1".."15") or "adaptive"
	AllocWords       uint64 `json:"alloc_words"`
	WordsCopied      uint64 `json:"words_copied"`
	WordsPromoted    uint64 `json:"words_promoted"`
	WordsTenured     uint64 `json:"words_tenured"`
	Collections      int    `json:"collections"`
	MajorCollections int    `json:"major_collections"`
	// FinalThreshold is the promotion threshold in force at the end of the
	// run (for adaptive rows, where it ended up; heap.TenureNever reports
	// as -1 to keep the JSON readable).
	FinalThreshold int    `json:"final_threshold"`
	Adaptations    int    `json:"adaptations,omitempty"`
	WallNS         int64  `json:"wall_ns"`
	Error          string `json:"error,omitempty"`
}

// ServeResult is one cell of the server-simulation grid (internal/serve):
// the sharded multi-tenant load served by one collector configuration, with
// request-latency tail quantiles as the headline metric. Latency is in
// ticks of the simulation's words-per-tick clock, so every field except
// WallNS is deterministic — a changed tail between two reports is a policy
// change, not noise.
type ServeResult struct {
	Collector       string  `json:"collector"`
	Shards          int     `json:"shards"`
	GCWorkers       int     `json:"gc_workers"`
	Incremental     bool    `json:"incremental,omitempty"`
	Adaptive        bool    `json:"adaptive,omitempty"`
	Sessions        uint64  `json:"sessions"`
	Requests        uint64  `json:"requests"`
	ReqsPerKilotick float64 `json:"reqs_per_kilotick"`
	AllocWords      uint64  `json:"alloc_words"`
	GCPauseWords    uint64  `json:"gc_pause_words"`
	Collections     int     `json:"collections"`
	LatencyP50      uint64  `json:"latency_p50_ticks"`
	LatencyP99      uint64  `json:"latency_p99_ticks"`
	LatencyP999     uint64  `json:"latency_p999_ticks"`
	LatencyMax      uint64  `json:"latency_max_ticks"`
	FootprintWords  int     `json:"footprint_words"`
	MakespanTicks   uint64  `json:"makespan_ticks"`
	WallNS          int64   `json:"wall_ns"`
	Error           string  `json:"error,omitempty"`
}

// key names the cell for cross-report matching: every axis of the grid.
func (r ServeResult) key() string {
	return fmt.Sprintf("%s/s%d/w%d/i%s/a%s", r.Collector, r.Shards, r.GCWorkers,
		boolDigit(r.Incremental), boolDigit(r.Adaptive))
}

func boolDigit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// Report is one full measurement run. GoMaxProcs and NumCPU record what the
// measurement had to work with: parallel speedups are only meaningful when
// the schedulable cores cover the worker count (a 1-CPU container measures
// coordination overhead, not scaling), and a GOMAXPROCS below NumCPU says
// the run was deliberately constrained.
type Report struct {
	Schema     string              `json:"schema"`
	GoVersion  string              `json:"go_version"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Engines    []EngineResult      `json:"engines"`
	Parallel   []ParallelResult    `json:"parallel,omitempty"`
	Collectors []CollectorResult   `json:"collectors"`
	Tenuring   []TenureResult      `json:"tenuring,omitempty"`
	Pauses     []PauseResult       `json:"pauses,omitempty"`
	Traces     []TraceResult       `json:"traces,omitempty"`
	Replay     []ReplayBenchResult `json:"replay_throughput,omitempty"`
	Serve      []ServeResult       `json:"serve,omitempty"`
}

// Comparison is the checked-in before/after shape.
type Comparison struct {
	Schema  string             `json:"schema"`
	Before  *Report            `json:"before,omitempty"`
	After   *Report            `json:"after"`
	Speedup map[string]float64 `json:"speedup,omitempty"`
}

const (
	chainPairs    = 8000
	workloadSteps = 200000
)

// buildChain hand-allocates a chain of pairs in s (car = fixnum, cdr =
// previous pair) and returns the head pointer word — the same graph the
// internal/heap steady-state benchmarks trace.
func buildChain(h *heap.Heap, s *heap.Space, n int) heap.Word {
	prev := heap.NullWord
	for i := 0; i < n; i++ {
		off, ok := s.Bump(3)
		if !ok {
			panic("benchreport: chain arena too small")
		}
		w := h.InitObject(s, off, heap.TPair, 2)
		s.Mem[off+1] = heap.FixnumWord(int64(i))
		s.Mem[off+2] = prev
		prev = w
	}
	return prev
}

// bestOf runs a benchmark rounds times and keeps the fastest result: the
// minimum is the standard low-noise estimator on shared machines, where
// interference only ever slows a run down.
func bestOf(rounds int, f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < rounds; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// engineBenchmarks measures the two tracing inner loops in isolation: the
// Cheney evacuate+drain flip and the mark drain, each over a live chain of
// chainPairs pairs (3 words per object), best of three runs.
func engineBenchmarks() []EngineResult {
	words := uint64(3 * chainPairs)

	evac := bestOf(3, func(b *testing.B) {
		h := heap.New()
		from := h.NewSpace("flip-A", 1<<16)
		to := h.NewSpace("flip-B", 1<<16)
		h.GlobalWord(buildChain(h, from, chainPairs))
		e := heap.NewEvacuator(h, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.SetFrom(from)
			e.Begin(to)
			e.Run()
			from.Reset()
			from, to = to, from
		}
	})

	mark := bestOf(3, func(b *testing.B) {
		h := heap.New()
		s := h.NewSpace("mark-arena", 1<<16)
		h.GlobalWord(buildChain(h, s, chainPairs))
		m := heap.NewMarker(h, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Begin()
			m.Run()
			heap.ClearMarks(s)
		}
	})

	mk := func(name string, r testing.BenchmarkResult) EngineResult {
		ns := float64(r.NsPerOp())
		return EngineResult{
			Name:        name,
			NsPerOp:     ns,
			Iterations:  r.N,
			WordsPerOp:  words,
			WordsPerSec: float64(words) / ns * 1e9,
		}
	}
	return []EngineResult{mk("evacuate-drain", evac), mk("mark-drain", mark)}
}

// Parallel forest shape: forestChains independently rooted chains of
// forestLen pairs give the work-distribution machinery real breadth, and
// the whole graph (~221k words) is the "large heap" the scaling criterion
// names.
const (
	forestChains = 256
	forestLen    = 96
)

// buildForest roots forestChains chains in s and returns the word count.
func buildForest(h *heap.Heap, s *heap.Space) uint64 {
	for c := 0; c < forestChains; c++ {
		h.GlobalWord(buildChain(h, s, forestLen))
	}
	return uint64(3 * forestChains * forestLen)
}

// parallelBenchmarks measures the tracing engines over the wide forest at
// each worker count. Workers == 0 runs the sequential engines on the same
// graph — the control row proving the default path did not regress.
func parallelBenchmarks(workerCounts []int) []ParallelResult {
	var out []ParallelResult
	for _, workers := range workerCounts {
		workers := workers
		words := uint64(3 * forestChains * forestLen)

		mark := bestOf(3, func(b *testing.B) {
			h := heap.New()
			s := h.NewSpace("forest", 1<<18)
			buildForest(h, s)
			h.SetGCWorkers(workers)
			m := heap.NewMarker(h, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Begin()
				m.Run()
				heap.ClearMarks(s)
			}
		})
		evac := bestOf(3, func(b *testing.B) {
			h := heap.New()
			from := h.NewSpace("forest-A", 1<<18)
			to := h.NewSpace("forest-B", 1<<18)
			buildForest(h, from)
			h.SetGCWorkers(workers)
			e := heap.NewEvacuator(h, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.SetFrom(from)
				e.Begin(to)
				e.Run()
				from.Reset()
				from, to = to, from
			}
		})

		mk := func(engine string, r testing.BenchmarkResult) ParallelResult {
			ns := float64(r.NsPerOp())
			return ParallelResult{
				Engine:      engine,
				GCWorkers:   workers,
				NsPerOp:     ns,
				Iterations:  r.N,
				WordsPerOp:  words,
				WordsPerSec: float64(words) / ns * 1e9,
			}
		}
		out = append(out, mk("mark", mark), mk("evacuate", evac))
	}
	return out
}

// sweepArenaWords sizes the parallel-sweep fixture: a half-megaword blocked
// space (512 blocks) filled with 4-word objects, every other object marked,
// so each op sweeps the whole space with a realistic survivor density.
const sweepArenaWords = 1 << 18

// sweepBenchmarks measures the block-claiming sweep engine at each worker
// count: words-swept/sec over the blocked fixture. Workers == 0 is the
// sequential control; because sweepBlock is a pure per-block function, every
// row does bit-identical work.
func sweepBenchmarks(workerCounts []int) []ParallelResult {
	var out []ParallelResult
	for _, workers := range workerCounts {
		workers := workers
		r := bestOf(3, func(b *testing.B) {
			h := heap.New()
			s := h.NewBlockedSpace("sweep-arena", sweepArenaWords)
			var offs []int
			for blk := 0; blk < s.NumBlocks(); blk++ {
				for {
					off, ok := s.AllocFromBlock(blk, 4)
					if !ok {
						break
					}
					s.Mem[off] = heap.HeaderWord(heap.TVector, 3)
					offs = append(offs, off)
				}
			}
			h.SetGCWorkers(workers)
			sw := heap.NewSweeper(h)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < len(offs); j += 2 {
					s.SetMarkAt(offs[j])
				}
				sw.Sweep(s)
			}
		})
		ns := float64(r.NsPerOp())
		out = append(out, ParallelResult{
			Engine:      "sweep",
			GCWorkers:   workers,
			NsPerOp:     ns,
			Iterations:  r.N,
			WordsPerOp:  sweepArenaWords,
			WordsPerSec: float64(sweepArenaWords) / ns * 1e9,
		})
	}
	return out
}

// markBitBenchmarks compares the two mark representations on the same
// object set: the side bitmap (a bit probe per test, a per-block memclr to
// unmark) against the historical header bits (a header rewrite per mark and
// per unmark). Each op is one full mark-test-clear cycle over every object.
func markBitBenchmarks() []EngineResult {
	const objWords = 4
	mkFixture := func() (*heap.Heap, *heap.Space, []int) {
		h := heap.New()
		s := h.NewBlockedSpace("markbits", 1<<16)
		var offs []int
		for blk := 0; blk < s.NumBlocks(); blk++ {
			for {
				off, ok := s.AllocFromBlock(blk, objWords)
				if !ok {
					break
				}
				s.Mem[off] = heap.HeaderWord(heap.TVector, objWords-1)
				offs = append(offs, off)
			}
		}
		return h, s, offs
	}
	_, s0, offs0 := mkFixture()
	words := uint64(len(offs0))

	bitmap := bestOf(3, func(b *testing.B) {
		s, offs := s0, offs0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			live := 0
			for _, off := range offs {
				if !s.MarkedAt(off) {
					s.SetMarkAt(off)
					live++
				}
			}
			heap.ClearMarks(s)
			if live != len(offs) {
				b.Fatal("bitmap marks did not clear")
			}
		}
	})
	header := bestOf(3, func(b *testing.B) {
		s, offs := s0, offs0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			live := 0
			for _, off := range offs {
				if !heap.Marked(s.Mem[off]) {
					s.Mem[off] = heap.SetMark(s.Mem[off])
					live++
				}
			}
			for _, off := range offs {
				s.Mem[off] = heap.ClearMark(s.Mem[off])
			}
			if live != len(offs) {
				b.Fatal("header marks did not clear")
			}
		}
	})

	mk := func(name string, r testing.BenchmarkResult) EngineResult {
		ns := float64(r.NsPerOp())
		return EngineResult{
			Name:        name,
			NsPerOp:     ns,
			Iterations:  r.N,
			WordsPerOp:  words, // objects tested+marked+cleared per op
			WordsPerSec: float64(words) / ns * 1e9,
		}
	}
	return []EngineResult{mk("mark-bits-bitmap", bitmap), mk("mark-bits-header", header)}
}

// collectorGrid times every collector tracing the decay workload, sized as
// internal/experiments sizes them (h=768, L=3.5, g=0.25, k=16), with the
// heap configured for gcWorkers tracing workers (0 = sequential engines).
func collectorGrid(gcWorkers int) []CollectorResult {
	cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, G: 0.25, K: 16, Steps: workloadSteps}
	total := cfg.HeapWords()
	nursery := total / 8

	ctors := []struct {
		name string
		mk   func(h *heap.Heap) heap.Collector
	}{
		{"semispace", func(h *heap.Heap) heap.Collector { return semispace.New(h, total) }},
		{"marksweep", func(h *heap.Heap) heap.Collector { return marksweep.New(h, total) }},
		{"generational", func(h *heap.Heap) heap.Collector {
			return generational.New(h, nursery, total-nursery)
		}},
		{"multigen", func(h *heap.Heap) heap.Collector {
			return multigen.New(h, []int{total / 8, total / 4, total - total/8 - total/4})
		}},
		{"nonpredictive", func(h *heap.Heap) heap.Collector {
			return core.New(h, 16, total/16, core.WithPolicy(core.FractionJ(0.25)))
		}},
		{"npms", func(h *heap.Heap) heap.Collector {
			return npms.New(h, 16, total/16+total/64)
		}},
		{"hybrid", func(h *heap.Heap) heap.Collector {
			step := (total - nursery) / 8
			return hybrid.New(h, nursery, 8, step, hybrid.WithGrowth())
		}},
	}

	var out []CollectorResult
	for _, ct := range ctors {
		var best CollectorResult
		// Best of three, like the engine benchmarks: the workload is
		// deterministic, so the fastest wall clock is the least-disturbed
		// measurement of the same work.
		for round := 0; round < 3; round++ {
			h := heap.New()
			h.SetGCWorkers(gcWorkers)
			c := ct.mk(h)
			w := decay.NewWorkload(h, 768, 1)
			w.Warmup(10)
			g0 := *c.GCStats()
			start := time.Now()
			w.Run(workloadSteps)
			wall := time.Since(start)
			g1 := c.GCStats()
			traced := (g1.WordsCopied - g0.WordsCopied) + (g1.WordsMarked - g0.WordsMarked)
			r := CollectorResult{
				Collector:   ct.name,
				GCWorkers:   gcWorkers,
				Steps:       workloadSteps,
				WallNS:      wall.Nanoseconds(),
				WordsTraced: traced,
				Collections: g1.Collections - g0.Collections,
				MarkCons:    float64(traced) / float64(h.Stats.WordsAllocated),
			}
			if traced > 0 && wall > 0 {
				r.WordsTracedPerSec = float64(traced) / wall.Seconds()
				r.NsPerTracedWord = float64(wall.Nanoseconds()) / float64(traced)
			}
			if round == 0 || r.WallNS < best.WallNS {
				best = r
			}
		}
		out = append(out, best)
	}
	return out
}

// tenurePolicies is the policy axis of the tenuring grid: the fixed
// thresholds the aquario exemplars use plus the adaptive controller.
var tenurePolicies = []struct {
	name      string
	threshold int
	adaptive  bool
}{
	{"1", 1, false},
	{"2", 2, false},
	{"6", 6, false},
	{"15", 15, false},
	{"adaptive", 0, true},
}

// tenureCell runs one (workload, policy) cell: a fresh heap with the
// tenuring knobs pinned, a generational collector built by mk, and the
// workload body, returning the copy-work decomposition.
func tenureCell(workload, policy string, threshold int, adaptive bool,
	mk func(h *heap.Heap) *generational.Collector, body func(h *heap.Heap) error) TenureResult {
	h := heap.New()
	h.SetGCTenure(threshold)
	h.SetGCAdaptive(adaptive)
	c := mk(h)
	start := time.Now()
	err := body(h)
	wall := time.Since(start)
	g := c.GCStats()
	r := TenureResult{
		Workload:         workload,
		Policy:           policy,
		AllocWords:       h.Stats.WordsAllocated,
		WordsCopied:      g.WordsCopied,
		WordsPromoted:    g.WordsPromoted,
		WordsTenured:     g.WordsTenured,
		Collections:      g.Collections,
		MajorCollections: g.MajorCollections,
		FinalThreshold:   g.TenureThreshold,
		Adaptations:      g.PolicyAdaptations,
		WallNS:           wall.Nanoseconds(),
	}
	if r.FinalThreshold >= heap.TenureNever {
		r.FinalThreshold = -1 // never promote
	}
	if err != nil {
		r.Error = err.Error()
	}
	return r
}

// tenureBenchmarks runs the fixed-vs-adaptive tenuring grid: the
// generational collector over two decay workloads (short and long
// half-life) and the registry workloads whose lifetimes are *not*
// radioactive (boyer, dyninfer, nucleic), at each fixed threshold and
// under the adaptive controller. The interesting read: under decay, bigger
// thresholds win and adaptive should chase them; under the registry
// programs a finite threshold wins and adaptive must find it without
// giving back more than a sliver over the best fixed setting.
func tenureBenchmarks() []TenureResult {
	var out []TenureResult

	for _, halfLife := range []int{192, 768} {
		cfg := experiments.DecayConfig{HalfLife: float64(halfLife), L: 3.5, G: 0.25, K: 16, Steps: workloadSteps}
		total := cfg.HeapWords()
		nursery := total / 8
		workload := fmt.Sprintf("decay-%d", halfLife)
		for _, p := range tenurePolicies {
			out = append(out, tenureCell(workload, p.name, p.threshold, p.adaptive,
				func(h *heap.Heap) *generational.Collector {
					return generational.New(h, nursery, total-nursery, generational.WithExpansion(2))
				},
				func(h *heap.Heap) error {
					w := decay.NewWorkload(h, float64(halfLife), 1)
					w.Warmup(10)
					w.Run(workloadSteps)
					return nil
				}))
		}
	}

	// The registry cells size the old area at a quarter of the program's
	// heap budget (with expansion as the safety valve) so major collections
	// are a real cost promotion has to answer for, not free headroom: boyer
	// and nucleic survivors are effectively immortal, so wholesale promotion
	// wins and retention only re-copies them; dyninfer (at 40 iterations,
	// with the nursery sized to one iteration's constraint graph) is the
	// anti-generational shape — survivors of one minor die before a second,
	// so any finite patience keeps the old area clean and never-promote
	// strictly beats wholesale.
	type cell struct {
		prog         bench.Program
		nursery, old int
	}
	var registry []cell
	for _, p := range bench.Standard() {
		switch p.Name() {
		case "nboyer2":
			registry = append(registry, cell{p, p.HeapWords() / 32, p.HeapWords() / 4})
		case "nucleic2":
			registry = append(registry, cell{p, p.HeapWords() / 16, p.HeapWords() / 4})
		}
	}
	registry = append(registry, cell{dyninfer.New(40), 4096, 8192})

	for _, r := range registry {
		prog, nursery, old := r.prog, r.nursery, r.old
		for _, p := range tenurePolicies {
			out = append(out, tenureCell(prog.Name(), p.name, p.threshold, p.adaptive,
				func(h *heap.Heap) *generational.Collector {
					return generational.New(h, nursery, old, generational.WithExpansion(2))
				},
				prog.Run))
		}
	}
	return out
}

// pauseModes is the collection-mode grid every pause workload runs under:
// the stop-the-world baseline and incremental at a quarter, one, and four
// times the default slice budget — enough to see how the pause ceiling and
// the throughput cost move with the budget.
var pauseModes = []struct {
	incremental bool
	slice       int
}{
	{false, 0},
	{true, heap.DefaultSliceBudget / 4},
	{true, heap.DefaultSliceBudget},
	{true, heap.DefaultSliceBudget * 4},
}

// pauseRow converts a measurement into its report row.
func pauseRow(r experiments.PauseRun) PauseResult {
	row := PauseResult{
		Workload:        r.Workload,
		Collector:       r.Collector,
		Incremental:     r.Incremental,
		SliceBudget:     r.SliceBudget,
		AllocWords:      r.AllocWords,
		GCWorkWords:     r.GCWorkWords,
		Collections:     r.Collections,
		Pauses:          r.Pauses,
		PauseP50Words:   r.PauseP50Words,
		PauseP99Words:   r.PauseP99Words,
		MaxPauseWords:   r.MaxPauseWords,
		TotalPauseWords: r.TotalPauseWords,
		WallNS:          r.WallNS,
	}
	if r.Err != nil {
		row.Error = r.Err.Error()
	}
	return row
}

// pauseBenchmarks measures the pause distributions behind the incremental
// collection mode: the decay workload plus two registry benchmarks with
// non-trivial live sets, each under both mark/sweep collectors in every
// pause mode. Rows are single runs — pause sizes are in deterministic words
// of collector work, so only WallNS carries measurement noise.
func pauseBenchmarks() []PauseResult {
	var out []PauseResult
	for _, col := range []string{"marksweep", "npms"} {
		for _, m := range pauseModes {
			out = append(out, pauseRow(experiments.RunDecayPauses(col, workloadSteps, m.incremental, m.slice)))
		}
	}
	for _, name := range []string{"nbody-24", "nucleic2"} {
		prog, err := bench.ByName(name, false)
		if err != nil {
			out = append(out, PauseResult{Workload: name, Error: err.Error()})
			continue
		}
		for _, col := range []string{"marksweep", "npms"} {
			for _, m := range pauseModes {
				out = append(out, pauseRow(experiments.RunBenchPauses(prog, col, m.incremental, m.slice)))
			}
		}
	}
	return out
}

// serveModes is the collector-configuration axis of the server-simulation
// grid: every collector in its stop-the-world/fixed-tenure default, plus
// the knob each family actually supports — incremental marking for the
// mark/sweep collectors, adaptive tenuring for the generational family.
var serveModes = []struct {
	collector   string
	incremental bool
	adaptive    bool
}{
	{"semispace", false, false},
	{"marksweep", false, false},
	{"marksweep", true, false},
	{"npms", false, false},
	{"npms", true, false},
	{"generational", false, false},
	{"generational", false, true},
	{"multigen", false, false},
	{"multigen", false, true},
}

// Server-simulation sizing: a per-shard heap big enough that collections
// are occasional-but-heavy (the regime where pause policy decides the
// tail) and a clock fast enough that the server is not saturated — at high
// utilization the tail measures queue backlog, i.e. total GC work, and
// slicing pauses cannot help; at moderate utilization it measures pause
// quanta, which is the effect the grid exists to expose.
const (
	serveHorizon      = 60000
	serveHeapWords    = 1 << 16
	serveWordsPerTick = 256
)

// serveCell runs one grid cell. Everything but WallNS is deterministic
// (seeded load, words-as-time clock), so the cell runs once, not best-of-3.
func serveCell(collector string, shards, gcWorkers int, incremental, adaptive bool) ServeResult {
	row := ServeResult{
		Collector:   collector,
		Shards:      shards,
		GCWorkers:   gcWorkers,
		Incremental: incremental,
		Adaptive:    adaptive,
	}
	start := time.Now()
	res, err := serve.Run(serve.Config{
		Load:         serve.LoadConfig{Seed: 1, HorizonTicks: serveHorizon},
		Collector:    collector,
		Shards:       shards,
		HeapWords:    serveHeapWords,
		WordsPerTick: serveWordsPerTick,
		GCWorkers:    gcWorkers,
		Incremental:  incremental,
		Adaptive:     adaptive,
	})
	row.WallNS = time.Since(start).Nanoseconds()
	if err != nil {
		row.Error = err.Error()
		return row
	}
	a := res.Agg
	row.Sessions = a.Sessions
	row.Requests = a.Requests
	row.ReqsPerKilotick = a.RequestsPerKilotick()
	row.AllocWords = a.WordsAlloc
	row.GCPauseWords = a.WordsPause
	row.Collections = a.Collections
	row.LatencyP50 = a.Latency.P50()
	row.LatencyP99 = a.Latency.P99()
	row.LatencyP999 = a.Latency.P999()
	row.LatencyMax = a.Latency.MaxWords
	row.FootprintWords = a.Footprint
	row.MakespanTicks = a.Makespan
	return row
}

// serveBenchmarks runs the server-simulation grid: every mode at shard
// counts 1/4/16 with sequential per-shard collection, plus a parallel-
// tracing column (gcworkers=4) at the middle shard count. The offered load
// is global, so higher shard counts spread the same sessions thinner.
func serveBenchmarks() []ServeResult {
	var out []ServeResult
	for _, m := range serveModes {
		for _, shards := range []int{1, 4, 16} {
			out = append(out, serveCell(m.collector, shards, 1, m.incremental, m.adaptive))
		}
		out = append(out, serveCell(m.collector, 4, 4, m.incremental, m.adaptive))
	}
	return out
}

// countWriter counts bytes so recording overhead excludes any real sink.
type countWriter struct{ n uint64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += uint64(len(p))
	return len(p), nil
}

// traceBenchmarks measures the trace subsystem on the decay workload, best
// of three like everything else: record-off baseline, record-on overhead
// (into a counting discard writer), and replay throughput from memory.
func traceBenchmarks() []TraceResult {
	cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, G: 0.25, K: 16, Steps: workloadSteps}
	total := cfg.HeapWords()

	runDecay := func(h *heap.Heap) time.Duration {
		w := decay.NewWorkload(h, 768, 1)
		start := time.Now()
		w.Warmup(10)
		w.Run(workloadSteps)
		return time.Since(start)
	}

	var off TraceResult
	for round := 0; round < 3; round++ {
		h := heap.New()
		semispace.New(h, total)
		wall := runDecay(h)
		if round == 0 || wall.Nanoseconds() < off.WallNS {
			off = TraceResult{
				Name:        "decay-record-off",
				WallNS:      wall.Nanoseconds(),
				Words:       h.Stats.WordsAllocated,
				WordsPerSec: float64(h.Stats.WordsAllocated) / wall.Seconds(),
			}
		}
	}

	var on TraceResult
	for round := 0; round < 3; round++ {
		h := heap.New()
		semispace.New(h, total)
		var cw countWriter
		tw, err := trace.NewWriter(&cw, trace.Header{Meta: []trace.MetaEntry{{Key: "workload", Value: "decay-768"}}})
		if err != nil {
			panic(err)
		}
		rec, err := trace.NewRecorder(h, tw)
		if err != nil {
			panic(err)
		}
		wall := runDecay(h)
		if err := rec.Finish(); err != nil {
			panic(err)
		}
		if round == 0 || wall.Nanoseconds() < on.WallNS {
			on = TraceResult{
				Name:         "decay-record-on",
				WallNS:       wall.Nanoseconds(),
				Events:       tw.Events(),
				EventsPerSec: float64(tw.Events()) / wall.Seconds(),
				Words:        h.Stats.WordsAllocated,
				WordsPerSec:  float64(h.Stats.WordsAllocated) / wall.Seconds(),
				TraceBytes:   cw.n,
				VsBaseline:   float64(wall.Nanoseconds()) / float64(off.WallNS),
			}
		}
	}

	// One untimed recording into memory feeds the replay rounds.
	var buf bytes.Buffer
	{
		h := heap.New()
		semispace.New(h, total)
		tw, err := trace.NewWriter(&buf, trace.Header{})
		if err != nil {
			panic(err)
		}
		rec, err := trace.NewRecorder(h, tw)
		if err != nil {
			panic(err)
		}
		runDecay(h)
		if err := rec.Finish(); err != nil {
			panic(err)
		}
	}
	raw := buf.Bytes()

	var rp TraceResult
	for round := 0; round < 3; round++ {
		rd, err := trace.NewReader(bytes.NewReader(raw))
		if err != nil {
			panic(err)
		}
		h := heap.New()
		c := semispace.New(h, total)
		start := time.Now()
		res, err := trace.Replay(rd, h, c, trace.ReplayOptions{})
		wall := time.Since(start)
		if err != nil {
			panic(err)
		}
		if round == 0 || wall.Nanoseconds() < rp.WallNS {
			rp = TraceResult{
				Name:         "decay-replay-semispace",
				WallNS:       wall.Nanoseconds(),
				Events:       res.Events,
				EventsPerSec: float64(res.Events) / wall.Seconds(),
				Words:        res.Stats.WordsAllocated,
				WordsPerSec:  float64(res.Stats.WordsAllocated) / wall.Seconds(),
				TraceBytes:   uint64(len(raw)),
			}
		}
	}
	return []TraceResult{off, on, rp}
}

// The synthesized replay corpus: one decay session at reduced steps,
// amplified into corpusSessions interleaved sessions. Small enough to
// synthesize in-memory per report, large enough that replay throughput
// is decode-bound rather than setup-bound.
const (
	corpusSteps    = 20000
	corpusSessions = 64
)

// synthCorpus records the base session and amplifies it raw and
// compressed, timing the synthesis ops (best of three). Returns both
// corpora, the merged heap size the replay rows should use, and the two
// synth-op cost rows.
func synthCorpus() (raw, comp []byte, total int, rows []ReplayBenchResult) {
	cfg := experiments.DecayConfig{HalfLife: 768, L: 3.5, G: 0.25, K: 16, Steps: corpusSteps}
	sessionWords := cfg.HeapWords()
	total = sessionWords * corpusSessions

	var base bytes.Buffer
	{
		h := heap.New()
		semispace.New(h, sessionWords)
		tw, err := trace.NewWriter(&base, trace.Header{Meta: []trace.MetaEntry{
			{Key: "workload", Value: "decay-768"},
			{Key: "heap_words", Value: strconv.Itoa(sessionWords)},
		}})
		if err != nil {
			panic(err)
		}
		rec, err := trace.NewRecorder(h, tw)
		if err != nil {
			panic(err)
		}
		w := decay.NewWorkload(h, 768, 1)
		w.Warmup(10)
		w.Run(corpusSteps)
		if err := rec.Finish(); err != nil {
			panic(err)
		}
	}

	amplify := func(name string, compress bool) ([]byte, ReplayBenchResult) {
		var out []byte
		var row ReplayBenchResult
		for round := 0; round < 3; round++ {
			var buf bytes.Buffer
			opt := trace.SynthOptions{Seed: 7, Compress: compress}
			start := time.Now()
			tr, err := trace.Amplify(&buf, base.Bytes(), corpusSessions, opt)
			wall := time.Since(start)
			if err != nil {
				panic(err)
			}
			if round == 0 || wall.Nanoseconds() < row.WallNS {
				out = buf.Bytes()
				row = ReplayBenchResult{
					Name:         name,
					WallNS:       wall.Nanoseconds(),
					Events:       tr.Events,
					EventsPerSec: float64(tr.Events) / wall.Seconds(),
					TraceBytes:   uint64(buf.Len()),
				}
			}
		}
		return out, row
	}
	var rawRow, compRow ReplayBenchResult
	raw, rawRow = amplify("synth-amplify", false)
	comp, compRow = amplify("synth-amplify-compressed", true)
	compRow.CompressionRatio = float64(len(raw)) / float64(len(comp))
	return raw, comp, total, []ReplayBenchResult{rawRow, compRow}
}

// replayThroughputBenchmarks is the rdgc-bench/8 section: synth-op cost,
// whole-corpus replay raw vs compressed, and the sharded driver at 1, 4,
// and 16 shards, all best of three.
func replayThroughputBenchmarks() []ReplayBenchResult {
	raw, comp, total, rows := synthCorpus()

	replayRow := func(name string, data []byte) ReplayBenchResult {
		var row ReplayBenchResult
		for round := 0; round < 3; round++ {
			rd, err := trace.NewReader(bytes.NewReader(data))
			if err != nil {
				panic(err)
			}
			h := heap.New()
			c := semispace.New(h, total)
			start := time.Now()
			res, err := trace.Replay(rd, h, c, trace.ReplayOptions{})
			wall := time.Since(start)
			if err != nil {
				panic(err)
			}
			if round == 0 || wall.Nanoseconds() < row.WallNS {
				stored, rawBytes := rd.StoredBytes(), rd.RawBytes()
				row = ReplayBenchResult{
					Name:              name,
					WallNS:            wall.Nanoseconds(),
					Events:            res.Events,
					EventsPerSec:      float64(res.Events) / wall.Seconds(),
					TraceBytes:        uint64(len(data)),
					StoredBytes:       stored,
					RawBytes:          rawBytes,
					ReadAmplification: float64(rawBytes) / float64(stored),
				}
			}
		}
		return row
	}

	rawReplay := replayRow("replay-raw", raw)
	compReplay := replayRow("replay-compressed", comp)
	compReplay.CompressionRatio = float64(len(raw)) / float64(len(comp))
	compReplay.VsRaw = rawReplay.EventsPerSec / compReplay.EventsPerSec
	rows = append(rows, rawReplay, compReplay)

	for _, n := range []int{1, 4, 16} {
		row := shardedReplayRow(raw, total, n)
		row.VsRaw = rawReplay.EventsPerSec / row.EventsPerSec
		rows = append(rows, row)
	}
	return rows
}

// shardedReplayRow splits the corpus into n per-session shards once,
// then times replaying all shards on the worker pool (best of three).
// Only the replay is on the clock — the demux is synthesis-side work
// already priced by the synth-op rows.
func shardedReplayRow(corpus []byte, total, n int) ReplayBenchResult {
	rd, err := trace.NewReader(bytes.NewReader(corpus))
	if err != nil {
		panic(err)
	}
	shards, err := trace.Shard(rd, n, trace.SynthOptions{})
	if err != nil {
		panic(err)
	}
	shardWords := total / len(shards)
	specs := make([]runner.Spec[trace.ReplayResult], len(shards))
	for i, data := range shards {
		data := data
		specs[i] = runner.Spec[trace.ReplayResult]{
			Name: fmt.Sprintf("shard%d", i),
			Run: func() (trace.ReplayResult, error) {
				srd, err := trace.NewReader(bytes.NewReader(data))
				if err != nil {
					return trace.ReplayResult{}, err
				}
				h := heap.New()
				c := semispace.New(h, shardWords)
				return trace.Replay(srd, h, c, trace.ReplayOptions{})
			},
			Words: func(v trace.ReplayResult) uint64 { return v.Stats.WordsAllocated },
		}
	}

	var row ReplayBenchResult
	for round := 0; round < 3; round++ {
		start := time.Now()
		results := runner.Run(specs, runner.Options{})
		wall := time.Since(start)
		var events uint64
		for _, r := range results {
			if r.Err != nil {
				panic(r.Err)
			}
			events += r.Value.Events
		}
		if round == 0 || wall.Nanoseconds() < row.WallNS {
			row = ReplayBenchResult{
				Name:         "replay-sharded",
				Shards:       n,
				WallNS:       wall.Nanoseconds(),
				Events:       events,
				EventsPerSec: float64(events) / wall.Seconds(),
				TraceBytes:   uint64(len(corpus)),
			}
		}
	}
	return row
}

func run() *Report {
	collectors := collectorGrid(0)
	for _, w := range []int{1, 2, 4, 8} {
		collectors = append(collectors, collectorGrid(w)...)
	}
	parallel := parallelBenchmarks([]int{0, 1, 2, 4, 8})
	parallel = append(parallel, sweepBenchmarks([]int{0, 1, 2, 4, 8})...)
	return &Report{
		Schema:     "rdgc-bench/8",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Engines:    append(engineBenchmarks(), markBitBenchmarks()...),
		Parallel:   parallel,
		Collectors: collectors,
		Tenuring:   tenureBenchmarks(),
		Pauses:     pauseBenchmarks(),
		Traces:     traceBenchmarks(),
		Replay:     replayThroughputBenchmarks(),
		Serve:      serveBenchmarks(),
	}
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// speedups maps each engine benchmark (and collector row) to
// before-time / after-time, so >1 means the hot path got faster.
func speedups(before, after *Report) map[string]float64 {
	out := make(map[string]float64)
	for _, b := range before.Engines {
		for _, a := range after.Engines {
			if a.Name == b.Name && a.NsPerOp > 0 {
				out["engine/"+a.Name] = b.NsPerOp / a.NsPerOp
			}
		}
	}
	for _, b := range before.Collectors {
		if b.GCWorkers != 0 {
			continue // compare the sequential-default rows across reports
		}
		for _, a := range after.Collectors {
			if a.GCWorkers == 0 && a.Collector == b.Collector && a.NsPerTracedWord > 0 && b.NsPerTracedWord > 0 {
				out["collector/"+a.Collector] = b.NsPerTracedWord / a.NsPerTracedWord
			}
		}
	}
	for _, b := range before.Traces {
		for _, a := range after.Traces {
			if a.Name == b.Name && a.WallNS > 0 && b.WallNS > 0 {
				out["trace/"+a.Name] = float64(b.WallNS) / float64(a.WallNS)
			}
		}
	}
	for _, b := range before.Replay {
		for _, a := range after.Replay {
			if a.Name == b.Name && a.Shards == b.Shards && a.WallNS > 0 && b.WallNS > 0 {
				key := "replay/" + a.Name
				if a.Shards > 0 {
					key = fmt.Sprintf("replay/%s/%d", a.Name, a.Shards)
				}
				out[key] = float64(b.WallNS) / float64(a.WallNS)
			}
		}
	}
	return out
}

// loadReport reads a BENCH_*.json file that is either a bare Report or a
// before/after Comparison; the "after" run of a comparison is the
// measurement it carries.
func loadReport(path string) (*Report, error) {
	var c Comparison
	if err := readJSON(path, &c); err != nil {
		return nil, err
	}
	if c.After != nil {
		return c.After, nil
	}
	var r Report
	if err := readJSON(path, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// compare prints the metric deltas between two BENCH_*.json files.
func compare(pathA, pathB string) error {
	a, err := loadReport(pathA)
	if err != nil {
		return fmt.Errorf("%s: %w", pathA, err)
	}
	b, err := loadReport(pathB)
	if err != nil {
		return fmt.Errorf("%s: %w", pathB, err)
	}
	fmt.Printf("bench-compare: %s -> %s (speedup >1 means %s is faster)\n", pathA, pathB, pathB)
	sp := speedups(a, b)
	names := make([]string, 0, len(sp))
	for name := range sp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-28s %.2fx\n", name, sp[name])
	}
	if note := driftNote(sp); note != "" {
		fmt.Println(note)
	}
	compareServe(a, b)
	return nil
}

// serveTailTolerance is the relative worsening a serve tail quantile may
// show before the comparison flags it. Serve latencies are deterministic
// ticks, not wall time, so this headroom absorbs intentional small policy
// shifts and log2 bucket boundaries — not machine noise, of which these
// rows have none.
const serveTailTolerance = 1.10

// compareServe diffs the server-simulation sections cell by cell,
// reporting the latency tail quantiles — the section's reason to exist —
// alongside throughput, and flagging every cell whose p99 or p999 got
// materially worse. Cells are matched on the full grid key, so a grid
// reshape simply reports fewer shared cells.
func compareServe(before, after *Report) {
	if len(before.Serve) == 0 || len(after.Serve) == 0 {
		return
	}
	prior := make(map[string]ServeResult, len(before.Serve))
	for _, r := range before.Serve {
		if r.Error == "" {
			prior[r.key()] = r
		}
	}
	fmt.Println("serve grid (latency in deterministic ticks; p99/p999 worsening flagged):")
	var shared, regressions int
	for _, b := range after.Serve {
		if b.Error != "" {
			fmt.Printf("  %-32s after-run error: %s\n", b.key(), b.Error)
			continue
		}
		a, ok := prior[b.key()]
		if !ok {
			continue
		}
		shared++
		flag := ""
		if worse(a.LatencyP99, b.LatencyP99) || worse(a.LatencyP999, b.LatencyP999) {
			regressions++
			flag = "  <-- TAIL REGRESSION"
		}
		fmt.Printf("  %-32s p99 %5d -> %-5d  p999 %5d -> %-5d  max %5d -> %-5d  reqs/ktick %7.2f -> %-7.2f%s\n",
			b.key(), a.LatencyP99, b.LatencyP99, a.LatencyP999, b.LatencyP999,
			a.LatencyMax, b.LatencyMax, a.ReqsPerKilotick, b.ReqsPerKilotick, flag)
	}
	if regressions > 0 {
		fmt.Printf("  %d of %d shared serve cells regressed on tail latency\n", regressions, shared)
	} else {
		fmt.Printf("  no tail-latency regressions across %d shared serve cells\n", shared)
	}
}

// worse reports whether the after quantile exceeds the before quantile by
// more than the tolerance. A zero before-value only regresses if the after
// value is nonzero at all (no ratio exists).
func worse(before, after uint64) bool {
	if before == 0 {
		return after > 0
	}
	return float64(after)/float64(before) > serveTailTolerance
}

// driftNote flags the pattern a real code change never produces: every
// shared row shifted by about the same factor, and that factor is not 1.
// That shape means the two reports ran on differently loaded (or different)
// machines, so the per-row speedups should be read as noise.
func driftNote(sp map[string]float64) string {
	if len(sp) < 3 {
		return ""
	}
	logSum := 0.0
	for _, s := range sp {
		if s <= 0 {
			return ""
		}
		logSum += math.Log(s)
	}
	geo := math.Exp(logSum / float64(len(sp)))
	for _, s := range sp {
		if s < geo*0.9 || s > geo*1.1 {
			return ""
		}
	}
	if math.Abs(geo-1) <= 0.05 {
		return ""
	}
	return fmt.Sprintf("  warning: all %d shared rows shifted together (geomean %.2fx, every row within ±10%% of it) — uniform drift, likely a machine-speed difference rather than a code change",
		len(sp), geo)
}

// smoke is the CI parity gate: the workers=1 parallel engines must stay
// within noise of the sequential engines on the same forest (the inline
// worker loop adds no goroutines, so a large gap means the parallel drain
// grew a per-object cost). The 1.75x bound is deliberately loose — it
// catches algorithmic regressions, not scheduler jitter.
func smoke() error {
	const maxRatio = 1.75
	rows := parallelBenchmarks([]int{0, 1})
	rows = append(rows, sweepBenchmarks([]int{0, 1})...)
	byKey := make(map[string]ParallelResult)
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Engine, r.GCWorkers)] = r
	}
	var failed bool
	for _, engine := range []string{"mark", "evacuate", "sweep"} {
		seq, par := byKey[engine+"/0"], byKey[engine+"/1"]
		ratio := par.NsPerOp / seq.NsPerOp
		fmt.Printf("smoke: %-9s sequential %.0f ns/op, workers=1 parallel %.0f ns/op (%.2fx)\n",
			engine, seq.NsPerOp, par.NsPerOp, ratio)
		if ratio > maxRatio {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("workers=1 parallel engine exceeds %.2fx of sequential", maxRatio)
	}
	return nil
}

func main() {
	out := flag.String("out", "-", "write the report JSON here (- for stdout)")
	before := flag.String("before", "", "embed this prior report as the before run and compute speedups")
	cmp := flag.Bool("compare", false, "compare two BENCH_*.json files given as arguments instead of measuring")
	smokeOnly := flag.Bool("smoke", false, "only check workers=1 parallel-engine parity with the sequential engines")
	tenureOnly := flag.Bool("tenure", false, "only run the fixed-vs-adaptive tenuring grid and emit it as JSON")
	serveOnly := flag.Bool("serve", false, "only run the server-simulation latency grid and emit it as JSON")
	flag.Parse()

	if *smokeOnly {
		if err := smoke(); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	if *tenureOnly {
		if err := writeJSON(*out, tenureBenchmarks()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *serveOnly {
		if err := writeJSON(*out, serveBenchmarks()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *cmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchreport -compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := compare(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	rep := run()
	if *before == "" {
		if err := writeJSON(*out, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	prior, err := loadReport(*before)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c := Comparison{Schema: "rdgc-bench-compare/1", Before: prior, After: rep, Speedup: speedups(prior, rep)}
	if err := writeJSON(*out, &c); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
