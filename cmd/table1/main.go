// Command table1 reproduces Table 1 of the paper: a worked trace of the
// non-predictive collector with k = 7 steps and j = 1 on the deterministic
// halving workload, printing live storage per step at every window boundary
// of the final steady cycle, plus the mark/cons ratio (0.2, against 0.4 for
// a non-generational collector in the same heap).
package main

import (
	"flag"
	"fmt"

	"rdgc/internal/experiments"
)

func main() {
	cycles := flag.Int("cycles", 3, "steady cycles to run before reporting")
	flag.Parse()

	res := experiments.RunTable1(*cycles)

	fmt.Println("Live storage (objects) in each step; step 1 is youngest.")
	fmt.Printf("%8s", "t")
	for s := 1; s <= 7; s++ {
		fmt.Printf("  step %d", s)
	}
	fmt.Println()
	for i, row := range res.Rows {
		label := fmt.Sprintf("%d", (i)*1024)
		if i == 0 {
			label = "gc"
		}
		fmt.Printf("%8s", label)
		for _, v := range row {
			fmt.Printf("  %6d", v)
		}
		fmt.Println()
	}
	fmt.Printf("\nsteady-state mark/cons: %.4f (paper: 1024/5120 = 0.2)\n", res.MarkCons)
	fmt.Printf("non-generational mark/cons in the same heap: 0.4 (2048/5120)\n")
	fmt.Printf("collections: %d\n", res.Collections)
}
