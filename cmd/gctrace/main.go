// Command gctrace records benchmark workloads as allocation-event traces
// and replays them under any collector in the repository. A trace captures
// the mutator side of a run — every allocation, store, and root operation —
// so one recording can evaluate every collection policy on the identical
// event stream, the way the paper's trace-driven comparisons do.
//
//	gctrace record [-quick] [-census] [-collector NAME] [-o FILE] WORKLOAD
//	gctrace replay [-collector NAME|all] [-verify] [-shards N] [-parallel N] [-progress] FILE
//	gctrace synth -op OP [-o FILE] [-compress] [-seed N] [-chunk N] [-n N] [-scale NUM/DEN] FILE...
//	gctrace stat FILE...
//	gctrace cat [-n N] FILE
//
// record runs a benchmark from the registry (gcbench's table rows; -quick
// selects the reduced-scale instances) under the named collector and writes
// the trace. Which collector records is immaterial — trace bytes are
// collector-independent — so the flag exists only to vary the recording
// run's collection schedule intent.
//
// replay drives the named collector (default: all seven, as parallel cells)
// from the trace and reports each collector's mutator statistics and gc
// work. -verify additionally runs the deep heap-invariant verifier after
// every collection. Replay fails loudly if the end state does not match the
// trace's recorded statistics. -shards N splits a synthesized multi-session
// corpus by session into N independent replay cells per collector and
// reports per-collector aggregates; the aggregate is identical at any
// -parallel count.
//
// synth composes traces: splice concatenates, interleave merges K traces as
// independent sessions of one corpus, amplify self-interleaves N salted
// copies of one trace, and timescale stretches or compresses the
// collect-boundary density by NUM/DEN. All operators re-base object and
// root namespaces so the output replays exactly like its inputs.
//
// stat aggregates a trace without replaying it: event and allocation
// profiles, plus an upper-bound lifetime histogram in allocated words.
// cat prints events one per line for debugging.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rdgc/internal/bench"
	"rdgc/internal/experiments"
	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/heap"
	"rdgc/internal/runner"
	"rdgc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "cat":
		err = cmdCat(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "gctrace: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gctrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  gctrace record [-quick] [-census] [-collector NAME] [-o FILE] WORKLOAD
  gctrace replay [-collector NAME|all] [-verify] [-shards N] [-parallel N] [-progress] FILE
  gctrace synth -op splice|interleave|amplify|timescale [-o FILE] [-compress] [-seed N] [-chunk N] [-n N] [-scale NUM/DEN] FILE...
  gctrace stat FILE...
  gctrace cat [-n N] FILE

Workloads are the gcbench registry names (run "gcbench -table2" for the
inventory); -quick selects the reduced-scale instances. Collector names:
semispace, marksweep, generational, nonpredictive, hybrid, multigen, npms.
`)
}

// findProgram resolves a workload name in the chosen registry.
func findProgram(name string, quick bool) (bench.Program, error) {
	progs := bench.Standard()
	if quick {
		progs = bench.Quick()
	}
	var names []string
	for _, p := range progs {
		if p.Name() == name {
			return p, nil
		}
		names = append(names, p.Name())
	}
	return nil, fmt.Errorf("unknown workload %q; have %v", name, names)
}

// findCollector resolves a collector name in a sized grid.
func findCollector(grid []gcfuzz.NamedCollector, name string) (gcfuzz.NamedCollector, error) {
	var names []string
	for _, nc := range grid {
		if nc.Name == name {
			return nc, nil
		}
		names = append(names, nc.Name)
	}
	return gcfuzz.NamedCollector{}, fmt.Errorf("unknown collector %q; have %v", name, names)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("gctrace record", flag.ExitOnError)
	quick := fs.Bool("quick", false, "use the reduced-scale benchmark instances")
	census := fs.Bool("census", false, "record with per-object birth stamps (replay heaps must match)")
	collector := fs.String("collector", "semispace", "collector driving the recording run")
	out := fs.String("o", "", "output file (default WORKLOAD.trace)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("record needs exactly one workload name")
	}
	p, err := findProgram(fs.Arg(0), *quick)
	if err != nil {
		return err
	}
	nc, err := findCollector(gcfuzz.CollectorsSized(p.HeapWords()), *collector)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = p.Name() + ".trace"
	}
	stats, err := experiments.RecordBenchTrace(path, p, nc, *census)
	if err != nil {
		return err
	}
	fmt.Printf("%s: recorded %s under %s: %d words, %d objects\n",
		path, p.Name(), nc.Name, stats.WordsAllocated, stats.ObjectsAllocated)
	return nil
}

// openTraces opens each path as a fresh reader (readers are consumed by
// the synthesis operators, so each call opens its own file handles).
func openTraces(paths []string) ([]*trace.Reader, func(), error) {
	var files []*os.File
	closeAll := func() {
		for _, f := range files {
			f.Close()
		}
	}
	rds := make([]*trace.Reader, len(paths))
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		files = append(files, f)
		if rds[i], err = trace.NewReader(f); err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return rds, closeAll, nil
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("gctrace synth", flag.ExitOnError)
	op := fs.String("op", "", "composition operator: splice, interleave, amplify, or timescale")
	out := fs.String("o", "synth.trace", "output trace file")
	compress := fs.Bool("compress", false, "write the output with per-block compression")
	seed := fs.Uint64("seed", 0, "seeded pseudo-random interleave schedule (0 = strict round-robin)")
	chunk := fs.Int("chunk", 0, "minimum events per scheduling turn (0 = default)")
	n := fs.Int("n", 0, "amplify: number of salted copies to self-interleave")
	scale := fs.String("scale", "", "timescale: collect-density ratio NUM/DEN (e.g. 2/1 doubles, 1/2 halves)")
	fs.Parse(args)
	opt := trace.SynthOptions{Compress: *compress, Seed: *seed, Chunk: *chunk}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)

	var tr trace.Trailer
	switch *op {
	case "splice", "interleave":
		if fs.NArg() < 1 {
			return fmt.Errorf("%s needs at least one input trace", *op)
		}
		rds, closeAll, err := openTraces(fs.Args())
		if err != nil {
			return err
		}
		defer closeAll()
		if *op == "splice" {
			tr, err = trace.Splice(bw, rds, opt)
		} else {
			tr, err = trace.Interleave(bw, rds, opt)
		}
		if err != nil {
			return err
		}
	case "amplify":
		if fs.NArg() != 1 {
			return fmt.Errorf("amplify needs exactly one input trace")
		}
		if *n < 1 {
			return fmt.Errorf("amplify needs -n >= 1")
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		if tr, err = trace.Amplify(bw, data, *n, opt); err != nil {
			return err
		}
	case "timescale":
		if fs.NArg() != 1 {
			return fmt.Errorf("timescale needs exactly one input trace")
		}
		num, den, err := parseScale(*scale)
		if err != nil {
			return err
		}
		rds, closeAll, err := openTraces(fs.Args())
		if err != nil {
			return err
		}
		defer closeAll()
		if tr, err = trace.TimeScale(bw, rds[0], num, den, opt); err != nil {
			return err
		}
	case "":
		return fmt.Errorf("synth needs -op (splice, interleave, amplify, or timescale)")
	default:
		return fmt.Errorf("unknown synth op %q", *op)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s: %s of %d input(s): %d events, %d words, %d objects\n",
		*out, *op, fs.NArg(), tr.Events, tr.WordsAllocated, tr.ObjectsAllocated)
	return nil
}

// parseScale parses a NUM/DEN collect-density ratio.
func parseScale(s string) (num, den int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("timescale needs -scale NUM/DEN (e.g. 2/1)")
	}
	if num, err = strconv.Atoi(a); err != nil {
		return 0, 0, fmt.Errorf("bad -scale numerator %q", a)
	}
	if den, err = strconv.Atoi(b); err != nil {
		return 0, 0, fmt.Errorf("bad -scale denominator %q", b)
	}
	if num < 0 || den <= 0 {
		return 0, 0, fmt.Errorf("-scale needs NUM >= 0 and DEN > 0")
	}
	return num, den, nil
}

// replayGrid reconstructs the collector grid a trace should replay under,
// from the header metadata record/gcfuzz wrote. Traces without sizing
// metadata get the fuzz harness's fixed-size grid.
func replayGrid(hdr trace.Header) []gcfuzz.NamedCollector {
	if s, ok := hdr.Lookup("heap_words"); ok {
		if n, err := strconv.Atoi(s); err == nil {
			return gcfuzz.CollectorsSized(n)
		}
	}
	return gcfuzz.Collectors()
}

// replayCell is one (trace, collector) replay outcome.
type replayCell struct {
	res trace.ReplayResult
	gc  heap.GCStats
}

// replayOne opens the trace fresh and drives one collector from it.
func replayOne(path string, nc gcfuzz.NamedCollector, verify bool) (replayCell, error) {
	f, err := os.Open(path)
	if err != nil {
		return replayCell{}, err
	}
	defer f.Close()
	return replayReader(f, nc, verify)
}

// replayReader drives one collector from a trace stream on a fresh heap.
func replayReader(r io.Reader, nc gcfuzz.NamedCollector, verify bool) (replayCell, error) {
	rd, err := trace.NewReader(r)
	if err != nil {
		return replayCell{}, err
	}
	var opts []heap.Option
	if rd.Header().Census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	c := nc.New(h)
	res, err := trace.Replay(rd, h, c, trace.ReplayOptions{Verify: verify})
	return replayCell{res: res, gc: *c.GCStats()}, err
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("gctrace replay", flag.ExitOnError)
	collector := fs.String("collector", "all", "replay under one named collector, or all seven")
	verify := fs.Bool("verify", false, "run the deep heap-invariant verifier after every collection")
	shards := fs.Int("shards", 0, "split a multi-session corpus into N per-collector replay cells (session s -> shard s mod N)")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, or $RDGC_PARALLEL)")
	gcworkers := fs.Int("gcworkers", -1, "parallel tracing workers per heap (0 = sequential engines; -1 = $RDGC_GC_WORKERS); marking parallelizes, evacuation stays sequential under the replayer's move hook")
	gclab := fs.Bool("gclab", heap.GCLABFromEnv(), "per-worker allocation buffers during parallel evacuation (default $RDGC_GC_LAB)")
	gcincr := fs.Bool("gcincr", heap.GCIncrFromEnv(), "incremental collection (mark slices + lazy sweep) on the collectors that support it (default $RDGC_GC_INCR)")
	gcslice := fs.Int("gcslice", 0, "incremental mark slice budget in words (0 = $RDGC_GC_SLICE, or the built-in default)")
	gctenure := fs.Int("gctenure", 0, "promotion threshold for the tenuring collectors, in collections survived (0 = $RDGC_GC_TENURE, 1 = wholesale promotion)")
	gcadapt := fs.Bool("gcadapt", heap.GCAdaptFromEnv(), "adapt nursery trigger and promotion threshold online from survival statistics (default $RDGC_GC_ADAPT)")
	progress := fs.Bool("progress", false, "report per-cell completion and wall-clock to stderr")
	fs.Parse(args)
	gw := heap.ResolveGCWorkers(*gcworkers)
	heap.SetDefaultGCWorkers(gw)
	heap.SetDefaultGCLAB(*gclab)
	heap.SetDefaultGCIncremental(*gcincr)
	heap.SetDefaultGCSliceBudget(heap.ResolveGCSlice(*gcslice))
	heap.SetDefaultGCTenure(heap.ResolveGCTenure(*gctenure))
	heap.SetDefaultGCAdaptive(*gcadapt)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs exactly one trace file")
	}
	path := fs.Arg(0)

	// Sniff the header once to size the collector grid and describe the run.
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	rd, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return err
	}
	hdr := rd.Header()
	f.Close()

	grid := replayGrid(hdr)
	if *collector != "all" {
		nc, err := findCollector(grid, *collector)
		if err != nil {
			return err
		}
		grid = []gcfuzz.NamedCollector{nc}
	}

	workload, _ := hdr.Lookup("workload")
	fmt.Printf("%s: workload %q, census=%v, %d collectors\n", path, workload, hdr.Census, len(grid))

	var pw io.Writer
	if *progress {
		pw = os.Stderr
	}
	if *shards > 1 {
		return replaySharded(path, grid, *shards, *verify,
			runner.Options{Workers: *parallel, Progress: pw, GCWorkersPerCell: gw})
	}

	specs := make([]runner.Spec[replayCell], len(grid))
	for i, nc := range grid {
		nc := nc
		specs[i] = runner.Spec[replayCell]{
			Name: nc.Name,
			Run:  func() (replayCell, error) { return replayOne(path, nc, *verify) },
			Words: func(v replayCell) uint64 {
				return v.res.Stats.WordsAllocated + v.gc.WordsCopied + v.gc.WordsMarked
			},
		}
	}
	results := runner.Run(specs, runner.Options{Workers: *parallel, Progress: pw, GCWorkersPerCell: gw})

	exit := error(nil)
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("  %-14s FAIL: %v\n", r.Name, r.Err)
			if exit == nil {
				exit = fmt.Errorf("replay under %s failed", r.Name)
			}
			continue
		}
		v := r.Value
		fmt.Printf("  %-14s ok  %9d events  %10d words  %4d collections  gc work %10d  peak live %8d\n",
			r.Name, v.res.Events, v.res.Stats.WordsAllocated,
			v.gc.Collections, v.gc.WordsCopied+v.gc.WordsMarked, v.gc.PeakLive)
	}
	return exit
}

// replaySharded splits a multi-session corpus by session into n shard
// traces, replays every (collector, shard) pair as an independent runner
// cell with its own proportionally sized heap, and reports per-collector
// aggregates. Shard contents and the summed statistics depend only on the
// corpus and n — never on -parallel or completion order.
func replaySharded(path string, grid []gcfuzz.NamedCollector, n int, verify bool, ropt runner.Options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	rd, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return err
	}
	shards, err := trace.Shard(rd, n, trace.SynthOptions{})
	f.Close()
	if err != nil {
		return err
	}

	specs := make([]runner.Spec[replayCell], 0, len(grid)*n)
	for _, nc := range grid {
		name := nc.Name
		for j, raw := range shards {
			raw := raw
			// Size each shard cell from its own header: Shard scaled
			// heap_words down by n, so cells stay proportionate.
			specs = append(specs, runner.Spec[replayCell]{
				Name: fmt.Sprintf("%s/shard%d", name, j),
				Run: func() (replayCell, error) {
					srd, err := trace.NewReader(bytes.NewReader(raw))
					if err != nil {
						return replayCell{}, err
					}
					snc, err := findCollector(replayGrid(srd.Header()), name)
					if err != nil {
						return replayCell{}, err
					}
					return replayReader(bytes.NewReader(raw), snc, verify)
				},
				Words: func(v replayCell) uint64 {
					return v.res.Stats.WordsAllocated + v.gc.WordsCopied + v.gc.WordsMarked
				},
			})
		}
	}
	results := runner.Run(specs, ropt)

	fmt.Printf("  sharded replay: %d shards per collector\n", n)
	exit := error(nil)
	for i, nc := range grid {
		var cell replayCell
		var peak int
		failed := false
		for j := 0; j < n; j++ {
			r := results[i*n+j]
			if r.Err != nil {
				fmt.Printf("  %-14s FAIL (%s): %v\n", nc.Name, r.Name, r.Err)
				if exit == nil {
					exit = fmt.Errorf("replay under %s failed", r.Name)
				}
				failed = true
				break
			}
			v := r.Value
			cell.res.Events += v.res.Events
			cell.res.Stats.WordsAllocated += v.res.Stats.WordsAllocated
			cell.res.Stats.ObjectsAllocated += v.res.Stats.ObjectsAllocated
			cell.gc.Collections += v.gc.Collections
			cell.gc.WordsCopied += v.gc.WordsCopied
			cell.gc.WordsMarked += v.gc.WordsMarked
			if v.gc.PeakLive > peak {
				peak = v.gc.PeakLive
			}
		}
		if failed {
			continue
		}
		fmt.Printf("  %-14s ok  %9d events  %10d words  %4d collections  gc work %10d  peak live %8d\n",
			nc.Name, cell.res.Events, cell.res.Stats.WordsAllocated,
			cell.gc.Collections, cell.gc.WordsCopied+cell.gc.WordsMarked, peak)
	}
	return exit
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("gctrace stat", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("stat needs at least one trace file")
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rd, err := trace.NewReader(f)
		if err == nil {
			var s *trace.Summary
			if s, err = trace.Stat(rd); err == nil {
				fmt.Printf("%s:\n%s", path, s.Format())
			}
		}
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

func cmdCat(args []string) error {
	fs := flag.NewFlagSet("gctrace cat", flag.ExitOnError)
	limit := fs.Int("n", 0, "print at most N events (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("cat needs exactly one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	hdr := rd.Header()
	fmt.Printf("census: %v\n", hdr.Census)
	for _, m := range hdr.Meta {
		fmt.Printf("meta:   %s = %s\n", m.Key, m.Value)
	}
	var ev trace.Event
	for i := 0; ; i++ {
		if *limit > 0 && i >= *limit {
			fmt.Println("...")
			if _, err := rd.Drain(); err != nil {
				return err
			}
			break
		}
		err := rd.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %s\n", i, ev.String())
	}
	tr := rd.Trailer()
	fmt.Printf("trailer: %d events, %d words, %d objects\n",
		tr.Events, tr.WordsAllocated, tr.ObjectsAllocated)
	return nil
}
