// Command figure1 regenerates Figure 1 of the paper: the mark/cons overhead
// of the non-predictive collector divided by the overhead of a
// non-generational collector, as a function of the generation fraction g
// and the inverse load factor L, under the radioactive decay model.
//
// By default it prints the analytic curves (thin lines exact where
// Theorem 4 holds, thick lines the fixed-point lower bound elsewhere) as
// CSV. With -sim it also measures real collectors on the decay workload at
// each sampled g, which takes a while.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"rdgc/internal/analytic"
	"rdgc/internal/experiments"
)

func main() {
	lsFlag := flag.String("L", "1.5,2,3,4,6,8", "comma-separated inverse load factors")
	points := flag.Int("points", 50, "samples of g in (0, 0.5]")
	sim := flag.Bool("sim", false, "also simulate real collectors (slow)")
	simPoints := flag.Int("simpoints", 10, "g samples for simulation")
	halfLife := flag.Float64("h", 1024, "half-life for simulation, in objects")
	steps := flag.Int("steps", 150000, "measured allocations for simulation")
	flag.Parse()

	var ls []float64
	for _, tok := range strings.Split(*lsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Println("bad -L:", err)
			return
		}
		ls = append(ls, v)
	}

	fmt.Println("# analytic curves: relative overhead vs g (thin=exact, thick=lower bound)")
	fmt.Println("L,g,relative_overhead,exact")
	for _, l := range ls {
		for _, pt := range analytic.Figure1Series(l, analytic.SweepG(*points)) {
			fmt.Printf("%g,%.4f,%.6f,%v\n", pt.L, pt.G, pt.Ratio, pt.Exact)
		}
	}

	for _, l := range ls {
		g, ratio := analytic.BestG(l)
		fmt.Printf("# best g for L=%g: g=%.3f, relative overhead %.3f\n", l, g, ratio)
	}

	if !*sim {
		return
	}
	fmt.Println("# simulated points (non-predictive / mark-sweep, measured)")
	fmt.Println("L,g,relative_overhead_measured")
	for _, l := range ls {
		cfg := experiments.DecayConfig{HalfLife: *halfLife, L: l, Steps: *steps}
		ms := experiments.RunMarkSweep(cfg)
		for i := 1; i <= *simPoints; i++ {
			cfg.G = 0.5 * float64(i) / float64(*simPoints)
			np := experiments.RunNonPredictive(cfg)
			fmt.Printf("%g,%.3f,%.4f\n", l, cfg.G, np.MarkCons/ms.MarkCons)
		}
	}
}
