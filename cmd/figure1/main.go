// Command figure1 regenerates Figure 1 of the paper: the mark/cons overhead
// of the non-predictive collector divided by the overhead of a
// non-generational collector, as a function of the generation fraction g
// and the inverse load factor L, under the radioactive decay model.
//
// By default it prints the analytic curves (thin lines exact where
// Theorem 4 holds, thick lines the fixed-point lower bound elsewhere) as
// CSV. With -sim it also measures real collectors on the decay workload at
// each sampled g, which takes a while.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rdgc/internal/analytic"
	"rdgc/internal/experiments"
	"rdgc/internal/runner"
)

func main() {
	lsFlag := flag.String("L", "1.5,2,3,4,6,8", "comma-separated inverse load factors")
	points := flag.Int("points", 50, "samples of g in (0, 0.5]")
	sim := flag.Bool("sim", false, "also simulate real collectors (slow)")
	simPoints := flag.Int("simpoints", 10, "g samples for simulation")
	halfLife := flag.Float64("h", 1024, "half-life for simulation, in objects")
	steps := flag.Int("steps", 150000, "measured allocations for simulation")
	parallel := flag.Int("parallel", 0, "simulation worker goroutines (0 = GOMAXPROCS, or $RDGC_PARALLEL)")
	progress := flag.Bool("progress", false, "report per-cell completion to stderr")
	flag.Parse()

	var ls []float64
	for _, tok := range strings.Split(*lsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Println("bad -L:", err)
			return
		}
		ls = append(ls, v)
	}

	fmt.Println("# analytic curves: relative overhead vs g (thin=exact, thick=lower bound)")
	fmt.Println("L,g,relative_overhead,exact")
	for _, l := range ls {
		for _, pt := range analytic.Figure1Series(l, analytic.SweepG(*points)) {
			fmt.Printf("%g,%.4f,%.6f,%v\n", pt.L, pt.G, pt.Ratio, pt.Exact)
		}
	}

	for _, l := range ls {
		g, ratio := analytic.BestG(l)
		fmt.Printf("# best g for L=%g: g=%.3f, relative overhead %.3f\n", l, g, ratio)
	}

	if !*sim {
		return
	}

	// One mark/sweep baseline cell per L, plus one non-predictive cell per
	// (L, g) sample — all independent, so the whole grid goes through the
	// worker pool. Cells land in a fixed layout: L index li occupies
	// [li*(1+simPoints), (li+1)*(1+simPoints)), baseline first.
	perL := 1 + *simPoints
	var specs []runner.Spec[experiments.Result]
	for _, l := range ls {
		cfg := experiments.DecayConfig{HalfLife: *halfLife, L: l, Steps: *steps}
		specs = append(specs, runner.Spec[experiments.Result]{
			Name: fmt.Sprintf("mark-sweep L=%g", l),
			Run:  func() (experiments.Result, error) { return experiments.RunMarkSweep(cfg), nil },
		})
		for i := 1; i <= *simPoints; i++ {
			cfg := cfg
			cfg.G = 0.5 * float64(i) / float64(*simPoints)
			specs = append(specs, runner.Spec[experiments.Result]{
				Name: fmt.Sprintf("non-predictive L=%g g=%.3f", l, cfg.G),
				Run:  func() (experiments.Result, error) { return experiments.RunNonPredictive(cfg), nil },
			})
		}
	}
	var pw io.Writer
	if *progress {
		pw = os.Stderr
	}
	results := runner.Run(specs, runner.Options{Workers: *parallel, Progress: pw})

	fmt.Println("# simulated points (non-predictive / mark-sweep, measured)")
	fmt.Println("L,g,relative_overhead_measured")
	for li, l := range ls {
		ms := results[li*perL].Value
		for i := 1; i <= *simPoints; i++ {
			g := 0.5 * float64(i) / float64(*simPoints)
			np := results[li*perL+i].Value
			fmt.Printf("%g,%.3f,%.4f\n", l, g, np.MarkCons/ms.MarkCons)
		}
	}
}
