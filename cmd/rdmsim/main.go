// Command rdmsim runs the radioactive decay workload against the
// repository's collectors and reports measured mark/cons ratios next to the
// paper's analytic predictions: 1/(L-1) for the non-generational collectors
// (Section 5), Theorem 4 for the non-predictive collector, and worse than
// both for the conventional youngest-first generational collector
// (Section 3).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rdgc/internal/analytic"
	"rdgc/internal/experiments"
	"rdgc/internal/runner"
)

func main() {
	h := flag.Float64("h", 1024, "half-life in objects")
	l := flag.Float64("L", 3.5, "inverse load factor")
	g := flag.Float64("g", 0.25, "generation fraction g = j/k for the non-predictive collector")
	k := flag.Int("k", 16, "non-predictive step count")
	steps := flag.Int("steps", 200000, "measured allocations")
	seed := flag.Int64("seed", 1, "workload seed")
	linking := flag.Float64("link", 0, "probability a new object links a live one (remset experiment)")
	all := flag.Bool("all", false, "also measure the hybrid, multigen, and np-mark/sweep collectors")
	infant := flag.Float64("infant", 0, "infant-mortality probability (0 = pure decay)")
	infantH := flag.Float64("infanth", 0, "infant half-life (default h/64)")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, or $RDGC_PARALLEL)")
	progress := flag.Bool("progress", false, "report per-cell completion to stderr")
	flag.Parse()

	if *infant > 0 && *infantH == 0 {
		*infantH = *h / 64
	}
	cfg := experiments.DecayConfig{
		HalfLife: *h, L: *l, G: *g, K: *k, Steps: *steps, Seed: *seed, Linking: *linking,
		InfantProb: *infant, InfantHalfLife: *infantH,
	}

	fmt.Printf("radioactive decay: h=%g  L=%g  g=%g  k=%d  heap=%d words\n",
		*h, *l, *g, *k, cfg.HeapWords())
	fmt.Printf("expected equilibrium live: %.0f objects (1.4427h, eq. 1)\n\n",
		analytic.EquilibriumLive(*h))

	// Each collector measures the same workload on its own heap, so the
	// comparison cells run on a worker pool; printing stays in cell order.
	mk := func(name string, run func(experiments.DecayConfig) experiments.Result) runner.Spec[experiments.Result] {
		return runner.Spec[experiments.Result]{
			Name: name,
			Run:  func() (experiments.Result, error) { return run(cfg), nil },
		}
	}
	specs := []runner.Spec[experiments.Result]{
		mk("mark/sweep", experiments.RunMarkSweep),
		mk("stop-and-copy", experiments.RunSemispace),
		mk("generational", experiments.RunConventionalGenerational),
		mk("non-predictive", experiments.RunNonPredictive),
	}
	if *all {
		specs = append(specs,
			mk("hybrid", experiments.RunHybrid),
			mk("multigen", func(c experiments.DecayConfig) experiments.Result {
				return experiments.RunMultigen(c, 3)
			}),
			mk("np-mark/sweep", experiments.RunNonPredictiveMS),
		)
	}
	var pw io.Writer
	if *progress {
		pw = os.Stderr
	}
	for _, r := range runner.Run(specs, runner.Options{Workers: *parallel, Progress: pw}) {
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		}
		fmt.Println(r.Value)
	}

	fmt.Printf("\nanalytic predictions:\n")
	fmt.Printf("  non-generational mark/cons 1/(L-1):        %.4f\n",
		analytic.NonGenerationalMarkCons(*l))
	if analytic.Theorem4Holds(*g, *l) {
		fmt.Printf("  non-predictive mark/cons (Theorem 4):      %.4f\n",
			analytic.MarkCons(*g, *l))
		fmt.Printf("  relative overhead (Corollary 5):           %.4f\n",
			analytic.Relative(*g, *l))
	} else {
		lb, err := analytic.MarkConsLowerBound(*g, *l)
		if err == nil {
			fmt.Printf("  non-predictive mark/cons (lower bound):    %.4f\n", lb)
		}
	}
	bestG, ratio := analytic.BestG(*l)
	fmt.Printf("  best g for this L: %.3f (relative overhead %.3f)\n", bestG, ratio)
}
