// Command gcbench reproduces Tables 2 and 3 of the paper: the benchmark
// inventory, and the allocation volumes, estimated peaks, and gc/mutator
// overheads of each benchmark under the non-generational stop-and-copy
// collector and the conventional generational collector. With -hybrid it
// additionally measures the Larceny-style hybrid collector (ephemeral
// nursery + non-predictive dynamic area) that Section 8 describes, and with
// -remset it reports remembered-set growth (§8.3).
//
// Benchmark rows are independent cells, so they run on a worker pool
// (-parallel, default GOMAXPROCS); stdout is byte-identical for any worker
// count. -json emits the per-cell measurements as JSON instead of the table.
// -cpuprofile and -memprofile write pprof profiles of the run, so hot-path
// work starts from a measurement.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"rdgc/internal/bench"
	"rdgc/internal/experiments"
	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/gc/hybrid"
	"rdgc/internal/heap"
	"rdgc/internal/runner"
)

// rowResult is one benchmark's cell: the Table 3 row plus the optional
// hybrid measurement.
type rowResult struct {
	row        experiments.Table3Row
	hres       bench.RunResult
	remA, remB int
}

func main() {
	table2 := flag.Bool("table2", false, "print the benchmark inventory and exit")
	quick := flag.Bool("quick", false, "use reduced-scale benchmark instances")
	withHybrid := flag.Bool("hybrid", false, "also measure the hybrid (non-predictive) collector")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, or $RDGC_PARALLEL)")
	gcworkers := flag.Int("gcworkers", -1, "parallel tracing workers per heap (0 = sequential engines; -1 = $RDGC_GC_WORKERS)")
	gclab := flag.Bool("gclab", heap.GCLABFromEnv(), "per-worker allocation buffers during parallel evacuation (default $RDGC_GC_LAB)")
	gcincr := flag.Bool("gcincr", heap.GCIncrFromEnv(), "incremental collection (mark slices + lazy sweep) on the collectors that support it (default $RDGC_GC_INCR)")
	gcslice := flag.Int("gcslice", 0, "incremental mark slice budget in words (0 = $RDGC_GC_SLICE, or the built-in default)")
	gctenure := flag.Int("gctenure", 0, "promotion threshold for the tenuring collectors, in collections survived (0 = $RDGC_GC_TENURE, 1 = wholesale promotion, \"never\" via env)")
	gcadapt := flag.Bool("gcadapt", heap.GCAdaptFromEnv(), "adapt nursery trigger and promotion threshold online from survival statistics (default $RDGC_GC_ADAPT)")
	pauselog := flag.String("pauselog", "", "run each benchmark under the incremental-capable collectors and dump every mutator-visible pause as CSV to `file` (- for stdout); honors -gcincr/-gcslice")
	progress := flag.Bool("progress", false, "report per-cell completion and wall-clock to stderr")
	jsonOut := flag.Bool("json", false, "emit per-cell measurements as JSON instead of the table")
	record := flag.String("record", "", "also record each benchmark as an allocation-event trace into `dir` (see cmd/gctrace)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile to `file` before exiting")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
	}
	gw := heap.ResolveGCWorkers(*gcworkers)
	heap.SetDefaultGCWorkers(gw)
	heap.SetDefaultGCLAB(*gclab)
	heap.SetDefaultGCIncremental(*gcincr)
	gs := heap.ResolveGCSlice(*gcslice)
	heap.SetDefaultGCSliceBudget(gs)
	heap.SetDefaultGCTenure(heap.ResolveGCTenure(*gctenure))
	heap.SetDefaultGCAdaptive(*gcadapt)
	// run holds the early-returning body so the profile teardown below
	// covers every exit path.
	run(*table2, *quick, *withHybrid, *parallel, gw, *progress, *jsonOut, *record)
	if *pauselog != "" {
		if err := dumpPauseLog(*pauselog, *quick, *gcincr, gs); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
		f.Close()
	}
}

func run(table2Only, quick, withHybrid bool, parallel, gcworkers int, progress, jsonOut bool, recordDir string) {
	if table2Only {
		fmt.Println("Table 2: benchmark inventory (Go reimplementation)")
		for _, i := range bench.Table2() {
			fmt.Printf("  %-10s %5d lines   %s\n", i.Name, i.Lines, i.Description)
		}
		return
	}

	progs := bench.Standard()
	if quick {
		progs = bench.Quick()
	}
	cfg := experiments.DefaultTable3Config()

	if recordDir != "" {
		if err := os.MkdirAll(recordDir, 0o777); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
	}

	specs := make([]runner.Spec[rowResult], len(progs))
	for i, p := range progs {
		p := p
		specs[i] = runner.Spec[rowResult]{
			Name: p.Name(),
			Run: func() (rowResult, error) {
				row, err := experiments.RunTable3Row(func() bench.Program { return p }, cfg)
				if err != nil {
					return rowResult{}, err
				}
				rr := rowResult{row: row}
				if withHybrid {
					rr.hres, rr.remA, rr.remB = runHybrid(p, row)
				}
				if recordDir != "" {
					path := filepath.Join(recordDir, p.Name()+".trace")
					nc := gcfuzz.CollectorsSized(p.HeapWords())[0]
					if _, err := experiments.RecordBenchTrace(path, p, nc, false); err != nil {
						return rr, err
					}
				}
				return rr, nil
			},
			Words: func(v rowResult) uint64 {
				return v.row.StopAndCopy.WordsAllocated +
					v.row.Generational.WordsAllocated + v.hres.WordsAllocated
			},
		}
	}
	var pw io.Writer
	if progress {
		pw = os.Stderr
	}
	results := runner.Run(specs, runner.Options{Workers: parallel, Progress: pw, GCWorkersPerCell: gcworkers})

	if jsonOut {
		emitJSON(results, withHybrid)
		return
	}

	fmt.Println("Table 3: storage allocation and garbage collection overheads")
	fmt.Printf("%-10s %12s %12s %12s %8s %8s", "name", "alloc (Mw)", "peak (Kw)", "semi (Kw)", "s&c", "gen")
	if withHybrid {
		fmt.Printf(" %8s %10s", "hybrid", "remsets")
	}
	fmt.Println()

	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-10s error: %v\n", r.Name, r.Err)
			continue
		}
		row := r.Value.row
		fmt.Printf("%-10s %12.2f %12.0f %12.0f %7.1f%% %7.1f%%",
			row.Program, float64(row.AllocWords)/1e6, float64(row.PeakWords)/1e3,
			float64(row.SemiWords)/1e3, 100*row.GCRatioSC(), 100*row.GCRatioGen())
		if withHybrid {
			hres := r.Value.hres
			fmt.Printf(" %7.1f%% %5d/%4d", 100*float64(hres.GCWorkWords)/
				(experiments.MutatorCostPerWord*float64(hres.WordsAllocated)),
				r.Value.remA, r.Value.remB)
		}
		fmt.Println()
		if withHybrid && r.Value.hres.Err != nil {
			fmt.Printf("  (hybrid error: %v)\n", r.Value.hres.Err)
		}
	}
}

// jsonCell is one (program, collector) measurement in -json output. WallNS
// and WordsPerSec describe the whole benchmark cell (all its collectors)
// and vary run to run; everything else is deterministic.
type jsonCell struct {
	Program       string  `json:"program"`
	Collector     string  `json:"collector"`
	AllocWords    uint64  `json:"alloc_words"`
	GCWorkWords   uint64  `json:"gc_work_words"`
	MarkCons      float64 `json:"mark_cons"`
	Collections   int     `json:"collections"`
	Pauses        uint64  `json:"pauses"`
	PauseP50Words uint64  `json:"pause_p50_words"`
	PauseP99Words uint64  `json:"pause_p99_words"`
	MaxPauseWords uint64  `json:"max_pause_words"`
	TotalPause    uint64  `json:"total_pause_words"`
	RemsetPeak    int     `json:"remset_peak"`
	PeakWords     int     `json:"peak_words"`
	SemiWords     int     `json:"semi_words"`
	// FootprintWords is the run's maximum reserved footprint: blocks
	// reserved across every space times heap.BlockWords.
	FootprintWords int     `json:"footprint_words"`
	WallNS         int64   `json:"wall_ns"`
	WordsPerSec    float64 `json:"words_per_sec"`
	Error          string  `json:"error,omitempty"`
}

func emitJSON(results []runner.Result[rowResult], withHybrid bool) {
	var cells []jsonCell
	for _, r := range results {
		if r.Err != nil {
			cells = append(cells, jsonCell{Program: r.Name, Error: r.Err.Error()})
			continue
		}
		row := r.Value.row
		add := func(res bench.RunResult) {
			c := jsonCell{
				Program:        row.Program,
				Collector:      res.Collector,
				AllocWords:     res.WordsAllocated,
				GCWorkWords:    res.GCWorkWords,
				MarkCons:       res.GCMutatorRatio(),
				Collections:    res.Collections,
				Pauses:         res.Pauses,
				PauseP50Words:  res.PauseP50Words,
				PauseP99Words:  res.PauseP99Words,
				MaxPauseWords:  res.MaxPauseWords,
				TotalPause:     res.TotalPauseWords,
				RemsetPeak:     res.RemsetPeak,
				PeakWords:      row.PeakWords,
				SemiWords:      row.SemiWords,
				FootprintWords: res.FootprintWords,
				WallNS:         r.Wall.Nanoseconds(),
				WordsPerSec:    r.WordsPerSec(),
			}
			if res.Err != nil {
				c.Error = res.Err.Error()
			}
			cells = append(cells, c)
		}
		add(row.StopAndCopy)
		add(row.Generational)
		if withHybrid {
			add(r.Value.hres)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cells); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// dumpPauseLog reruns every benchmark under each incremental-capable
// collector, streaming every mutator-visible pause (in words of collector
// work, in the order recorded) as one CSV row. Runs are sequential — the
// row order is deterministic — and honor -gcincr/-gcslice, so the same
// file can capture a stop-the-world baseline or any slice budget.
func dumpPauseLog(path string, quick, incremental bool, sliceBudget int) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	fmt.Fprintln(w, "program,collector,incremental,slice_budget,seq,pause_words")
	progs := bench.Standard()
	if quick {
		progs = bench.Quick()
	}
	for _, p := range progs {
		for _, collector := range []string{"marksweep", "npms"} {
			seq := 0
			r := experiments.RunBenchPausesLogged(p, collector, incremental, sliceBudget,
				func(words uint64) {
					fmt.Fprintf(w, "%s,%s,%v,%d,%d,%d\n",
						p.Name(), collector, incremental, sliceBudget, seq, words)
					seq++
				})
			if r.Err != nil {
				return fmt.Errorf("%s/%s: %w", p.Name(), collector, r.Err)
			}
		}
	}
	return w.Flush()
}

// runHybrid measures the hybrid collector sized like the generational one.
// Any benchmark error is left in the result for the caller to report.
func runHybrid(p bench.Program, row experiments.Table3Row) (bench.RunResult, int, int) {
	h := heap.New()
	nursery := row.SemiWords / 8
	if nursery < 2048 {
		nursery = 2048
	}
	stepWords := row.SemiWords / 8
	if stepWords < nursery/2 {
		stepWords = nursery / 2
	}
	c := hybrid.New(h, nursery, 8, stepWords, hybrid.WithGrowth())
	res := bench.Measure(p, h, c)
	a, b := c.RemsetLens()
	return res, a, b
}
