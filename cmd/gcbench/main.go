// Command gcbench reproduces Tables 2 and 3 of the paper: the benchmark
// inventory, and the allocation volumes, estimated peaks, and gc/mutator
// overheads of each benchmark under the non-generational stop-and-copy
// collector and the conventional generational collector. With -hybrid it
// additionally measures the Larceny-style hybrid collector (ephemeral
// nursery + non-predictive dynamic area) that Section 8 describes, and with
// -remset it reports remembered-set growth (§8.3).
package main

import (
	"flag"
	"fmt"

	"rdgc/internal/bench"
	"rdgc/internal/experiments"
	"rdgc/internal/gc/hybrid"
	"rdgc/internal/heap"
)

func main() {
	table2 := flag.Bool("table2", false, "print the benchmark inventory and exit")
	quick := flag.Bool("quick", false, "use reduced-scale benchmark instances")
	withHybrid := flag.Bool("hybrid", false, "also measure the hybrid (non-predictive) collector")
	flag.Parse()

	if *table2 {
		fmt.Println("Table 2: benchmark inventory (Go reimplementation)")
		for _, i := range bench.Table2() {
			fmt.Printf("  %-10s %5d lines   %s\n", i.Name, i.Lines, i.Description)
		}
		return
	}

	progs := bench.Standard()
	if *quick {
		progs = bench.Quick()
	}
	cfg := experiments.DefaultTable3Config()

	fmt.Println("Table 3: storage allocation and garbage collection overheads")
	fmt.Printf("%-10s %12s %12s %12s %8s %8s", "name", "alloc (Mw)", "peak (Kw)", "semi (Kw)", "s&c", "gen")
	if *withHybrid {
		fmt.Printf(" %8s %10s", "hybrid", "remsets")
	}
	fmt.Println()

	for _, p := range progs {
		p := p
		row, err := experiments.RunTable3Row(func() bench.Program { return p }, cfg)
		if err != nil {
			fmt.Printf("%-10s error: %v\n", p.Name(), err)
			continue
		}
		fmt.Printf("%-10s %12.2f %12.0f %12.0f %7.1f%% %7.1f%%",
			row.Program, float64(row.AllocWords)/1e6, float64(row.PeakWords)/1e3,
			float64(row.SemiWords)/1e3, 100*row.GCRatioSC(), 100*row.GCRatioGen())
		if *withHybrid {
			hres, a, b := runHybrid(p, row)
			fmt.Printf(" %7.1f%% %5d/%4d", 100*float64(hres.GCWorkWords)/
				(experiments.MutatorCostPerWord*float64(hres.WordsAllocated)), a, b)
		}
		fmt.Println()
	}
}

// runHybrid measures the hybrid collector sized like the generational one.
func runHybrid(p bench.Program, row experiments.Table3Row) (bench.RunResult, int, int) {
	h := heap.New()
	nursery := row.SemiWords / 8
	if nursery < 2048 {
		nursery = 2048
	}
	stepWords := row.SemiWords / 8
	if stepWords < nursery/2 {
		stepWords = nursery / 2
	}
	c := hybrid.New(h, nursery, 8, stepWords, hybrid.WithGrowth())
	res := bench.Measure(p, h, c)
	a, b := c.RemsetLens()
	if res.Err != nil {
		fmt.Printf("  (hybrid error: %v)\n", res.Err)
	}
	return res, a, b
}
