// Decaylab: sweep the generation fraction g and the inverse load factor L
// on the radioactive decay workload, printing measured mark/cons ratios for
// the non-predictive collector against the non-generational baseline and
// the analytic predictions of Section 5 — a miniature, simulated Figure 1.
package main

import (
	"fmt"

	"rdgc/internal/analytic"
	"rdgc/internal/experiments"
	"rdgc/internal/runner"
)

// point is one (g, L) cell: the measured relative overhead and the
// analytic prediction.
type point struct {
	measured  float64
	predicted float64
	exact     bool
	err       error
}

func main() {
	const halfLife = 768
	const steps = 80000

	fmt.Println("relative mark/cons overhead (non-predictive / mark-sweep)")
	fmt.Printf("%6s", "g\\L")
	ls := []float64{2, 3.5, 6}
	gs := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	for _, l := range ls {
		fmt.Printf("   L=%-4g      ", l)
	}
	fmt.Println("\n        (measured / predicted)")

	// The g×L grid is embarrassingly parallel: every cell simulates two
	// collectors on its own heaps. Cells are laid out row-major (g outer).
	var specs []runner.Spec[point]
	for _, g := range gs {
		for _, l := range ls {
			g, l := g, l
			specs = append(specs, runner.Spec[point]{
				Name: fmt.Sprintf("g=%.2f L=%g", g, l),
				Run: func() (point, error) {
					cfg := experiments.DecayConfig{HalfLife: halfLife, L: l, G: g, Steps: steps}
					np := experiments.RunNonPredictive(cfg)
					ms := experiments.RunMarkSweep(cfg)
					p := point{measured: np.MarkCons / ms.MarkCons}
					p.predicted, p.exact, p.err = analytic.RelativeEstimate(g, l)
					return p, nil
				},
			})
		}
	}
	results := runner.Run(specs, runner.Options{})

	for gi, g := range gs {
		fmt.Printf("%6.2f", g)
		for li := range ls {
			p := results[gi*len(ls)+li].Value
			mark := ""
			if !p.exact {
				mark = "*" // fixed-point lower bound region
			}
			if p.err != nil {
				fmt.Printf("   %5.2f/err  ", p.measured)
				continue
			}
			fmt.Printf("   %5.2f/%.2f%-1s", p.measured, p.predicted, mark)
		}
		fmt.Println()
	}
	fmt.Println("\n* analytic value is a lower bound (Theorem 4's hypotheses fail there)")
	fmt.Println("values below 1 mean the non-predictive collector beats the")
	fmt.Println("non-generational collector — the paper's main theoretical result.")
}
