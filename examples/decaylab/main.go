// Decaylab: sweep the generation fraction g and the inverse load factor L
// on the radioactive decay workload, printing measured mark/cons ratios for
// the non-predictive collector against the non-generational baseline and
// the analytic predictions of Section 5 — a miniature, simulated Figure 1.
package main

import (
	"fmt"

	"rdgc/internal/analytic"
	"rdgc/internal/experiments"
)

func main() {
	const halfLife = 768
	const steps = 80000

	fmt.Println("relative mark/cons overhead (non-predictive / mark-sweep)")
	fmt.Printf("%6s", "g\\L")
	ls := []float64{2, 3.5, 6}
	for _, l := range ls {
		fmt.Printf("   L=%-4g      ", l)
	}
	fmt.Println("\n        (measured / predicted)")

	for _, g := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		fmt.Printf("%6.2f", g)
		for _, l := range ls {
			cfg := experiments.DecayConfig{HalfLife: halfLife, L: l, G: g, Steps: steps}
			np := experiments.RunNonPredictive(cfg)
			ms := experiments.RunMarkSweep(cfg)
			measured := np.MarkCons / ms.MarkCons
			predicted, exact, err := analytic.RelativeEstimate(g, l)
			mark := ""
			if !exact {
				mark = "*" // fixed-point lower bound region
			}
			if err != nil {
				fmt.Printf("   %5.2f/err  ", measured)
				continue
			}
			fmt.Printf("   %5.2f/%.2f%-1s", measured, predicted, mark)
		}
		fmt.Println()
	}
	fmt.Println("\n* analytic value is a lower bound (Theorem 4's hypotheses fail there)")
	fmt.Println("values below 1 mean the non-predictive collector beats the")
	fmt.Println("non-generational collector — the paper's main theoretical result.")
}
