// Stepviz: a time-lapse of the non-predictive collector's step structure
// under the radioactive decay workload. Each output row is a moment in
// allocation time; each column is a step (step 1, the youngest, on the
// left); the glyph shows how full the step is. Watch the fill front sweep
// from right to left, collections compact the survivors, and the renaming
// rotate the uncollected young steps to the old end — Table 1, live.
package main

import (
	"flag"
	"fmt"
	"strings"

	"rdgc/internal/core"
	"rdgc/internal/decay"
	"rdgc/internal/experiments"
	"rdgc/internal/heap"
)

func main() {
	halfLife := flag.Float64("h", 512, "half-life in objects")
	l := flag.Float64("L", 3.5, "inverse load factor")
	k := flag.Int("k", 12, "step count")
	frames := flag.Int("frames", 40, "snapshots to print")
	flag.Parse()

	cfg := experiments.DecayConfig{HalfLife: *halfLife, L: *l}
	h := heap.New()
	stepWords := cfg.HeapWords() / *k
	c := core.New(h, *k, stepWords)
	w := decay.NewWorkload(h, *halfLife, 1)

	fmt.Printf("k=%d steps of %d words, h=%g, L=%g; glyphs: . empty, ░ <1/3, ▒ <2/3, █ full\n",
		*k, stepWords, *halfLife, *l)
	fmt.Printf("%10s  %-*s  j  collections\n", "objects", *k, "steps 1..k")

	w.Warmup(6)
	perFrame := int(6 * *halfLife / float64(*frames))
	for f := 0; f < *frames; f++ {
		w.Run(perFrame)
		var row strings.Builder
		for p := 0; p < c.Steps().K(); p++ {
			s := c.Steps().Step(p)
			switch ratio := float64(s.Used()) / float64(s.Cap()); {
			case ratio == 0:
				row.WriteRune('.')
			case ratio < 1.0/3:
				row.WriteRune('░')
			case ratio < 2.0/3:
				row.WriteRune('▒')
			default:
				row.WriteRune('█')
			}
		}
		fmt.Printf("%10d  %-*s  %d  %d\n",
			w.Clock(), *k, row.String(), c.J(), c.GCStats().Collections)
	}

	st := c.GCStats()
	fmt.Printf("\nmark/cons %.3f over %d collections (non-generational would be %.3f)\n",
		st.MarkCons(&h.Stats), st.Collections, 1/(*l-1))
}
