// Quickstart: build a simulated heap, install the paper's non-predictive
// collector, allocate some Scheme-style structure, mutate it, force a
// collection, and read the collector's work counters.
package main

import (
	"fmt"

	"rdgc/internal/core"
	"rdgc/internal/heap"
)

func main() {
	// A heap managed by the non-predictive collector: 8 steps of 4096
	// words, with the paper's recommended j = ⌊l/2⌋ policy.
	h := heap.New()
	c := core.New(h, 8, 4096)

	// Refs are GC-safe handles; scopes release them in bulk. Allocation
	// may collect at any point, and the collector moves objects, so heap
	// values must always be held through Refs.
	s := h.Scope()
	defer s.Close()

	// Build the list (0 1 2 ... 9).
	list := h.Null()
	for i := 9; i >= 0; i-- {
		list = h.Cons(h.Fix(int64(i)), list)
	}
	fmt.Println("list length:", h.ListLen(list))

	// Mutate through the write barrier (the collector is watching for
	// pointers from the young steps into the old ones).
	h.SetCar(list, h.Fix(42))
	fmt.Println("new head:", h.FixVal(h.Car(list)))

	// Churn garbage until collections happen on their own.
	for i := 0; i < 50000; i++ {
		g := h.Scope()
		h.Cons(h.Fix(int64(i)), h.Null())
		g.Close()
	}
	c.Collect() // and one more by request

	st := c.GCStats()
	fmt.Printf("allocated %d words; %d collections copied %d words (mark/cons %.3f)\n",
		h.Stats.WordsAllocated, st.Collections, st.WordsCopied, st.MarkCons(&h.Stats))
	fmt.Printf("current j = %d of k = %d steps; the list survived: length %d\n",
		c.J(), c.Steps().K(), h.ListLen(list))
}
