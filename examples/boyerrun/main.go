// Boyerrun: run the nboyer and sboyer benchmarks under the Larceny-style
// hybrid collector (ephemeral nursery + non-predictive dynamic area of
// Section 8), with a lifetime census attached, and print the allocation
// volume, collector work, remembered-set sizes, and the survival-by-age
// table that distinguishes the two programs (Tables 6 and 7).
package main

import (
	"fmt"

	"rdgc/internal/bench/boyer"
	"rdgc/internal/gc/hybrid"
	"rdgc/internal/heap"
	"rdgc/internal/lifetime"
)

func main() {
	for _, shared := range []bool{false, true} {
		p := boyer.New(2, shared)
		h := heap.New(heap.WithCensus())
		c := hybrid.New(h, 8192, 8, 65536, hybrid.WithGrowth())

		const epoch = 62500 // 500,000 bytes
		tr := lifetime.NewTracker(h, epoch)

		if err := p.Run(h); err != nil {
			fmt.Println(p.Name(), "failed:", err)
			return
		}

		st := c.GCStats()
		a, b := c.RemsetLens()
		fmt.Printf("== %s under %s\n", p.Name(), c.Name())
		fmt.Printf("   allocated %.2f Mwords, %d rewrites\n",
			float64(h.Stats.WordsAllocated)/1e6, p.RewriteCount)
		fmt.Printf("   %d collections (%d non-predictive), %d words copied, mark/cons %.3f\n",
			st.Collections, st.MajorCollections, st.WordsCopied, st.MarkCons(&h.Stats))
		fmt.Printf("   remembered sets: %d into-nursery, %d young-to-old; peak %d\n",
			a, b, st.RemsetPeak)

		fmt.Println("   survival by age (500,000-byte epochs):")
		for _, r := range lifetime.SurvivalTable(tr.Snapshots(), epoch, 10) {
			if r.Live < 1000 {
				continue
			}
			fmt.Printf("     %s\n", r.String())
		}
		fmt.Println()
	}
}
