package sexp

import (
	"strings"
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

// FuzzReader checks that the reader never panics, and that anything it
// accepts survives a print/re-read round trip to an identical structure.
func FuzzReader(f *testing.F) {
	seeds := []string{
		"", "()", "(a b c)", "(a . b)", "((deeply (nested (list)))) trailing",
		"'quoted", "; comment\nx", "42", "-7", "(1 . (2 . (3 . ())))",
		"(((((", ")))))", "(a . )", ". .", "(x . y z)", "ｘ", "(λ)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		// Reject pathological nesting depth: the reader is recursive by
		// design (like the Scheme reader it mirrors).
		if strings.Count(src, "(") > 200 {
			return
		}
		h := heap.New()
		semispace.New(h, 1<<18, semispace.WithExpansion(2))
		s := h.Scope()
		defer s.Close()

		v, err := ReadString(h, src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		printed := Print(h, v)
		v2, err := ReadString(h, printed)
		if err != nil {
			t.Fatalf("re-read of %q (from %q) failed: %v", printed, src, err)
		}
		if !Equal(h, v, v2) {
			t.Fatalf("round trip changed structure: %q -> %q -> %q",
				src, printed, Print(h, v2))
		}
	})
}
