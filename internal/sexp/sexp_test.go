package sexp

import (
	"strings"
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

func newHeap() *heap.Heap {
	h := heap.New()
	semispace.New(h, 1<<18)
	return h
}

func TestReadPrintRoundTrip(t *testing.T) {
	h := newHeap()
	s := h.Scope()
	defer s.Close()
	cases := []string{
		"()",
		"x",
		"42",
		"-17",
		"(a b c)",
		"(a (b c) d)",
		"(equal (plus (plus x y) z) (plus x (plus y z)))",
		"(a . b)",
		"(a b . c)",
		"(1 2 3)",
	}
	for _, src := range cases {
		v, err := ReadString(h, src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got := Print(h, v); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
	}
}

func TestQuoteSugar(t *testing.T) {
	h := newHeap()
	s := h.Scope()
	defer s.Close()
	v := MustReadString(h, "'(a b)")
	if got := Print(h, v); got != "(quote (a b))" {
		t.Errorf("quote read as %q", got)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	h := newHeap()
	s := h.Scope()
	defer s.Close()
	v := MustReadString(h, "; leading comment\n  (a ; inline\n b)\n")
	if got := Print(h, v); got != "(a b)" {
		t.Errorf("got %q", got)
	}
}

func TestReadAll(t *testing.T) {
	h := newHeap()
	s := h.Scope()
	defer s.Close()
	l := MustReadAll(h, "(a) (b c) 7")
	if n := h.ListLen(l); n != 3 {
		t.Fatalf("read %d forms, want 3", n)
	}
	if got := Print(h, l); got != "((a) (b c) 7)" {
		t.Errorf("got %q", got)
	}
}

func TestSymbolsAreInterned(t *testing.T) {
	h := newHeap()
	s := h.Scope()
	defer s.Close()
	a := MustReadString(h, "hello")
	b := MustReadString(h, "HELLO") // case-folded
	if !h.Eq(a, b) {
		t.Error("same symbol read twice is not eq")
	}
}

func TestErrors(t *testing.T) {
	h := newHeap()
	for _, src := range []string{"", "(a", ")", "(a . )", "(a . b c)"} {
		if _, err := ReadString(h, src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestEqual(t *testing.T) {
	h := newHeap()
	s := h.Scope()
	defer s.Close()
	a := MustReadString(h, "(f (g x) 3)")
	b := MustReadString(h, "(f (g x) 3)")
	c := MustReadString(h, "(f (g y) 3)")
	if !Equal(h, a, b) {
		t.Error("structurally equal terms not Equal")
	}
	if Equal(h, a, c) {
		t.Error("different terms Equal")
	}
	if !Equal(h, a, a) {
		t.Error("identity not Equal")
	}
	// Flonums and vectors.
	fa, fb := h.Flonum(2.5), h.Flonum(2.5)
	if !Equal(h, fa, fb) {
		t.Error("equal flonums not Equal")
	}
	va := h.MakeVector(2, a)
	vb := h.MakeVector(2, b)
	if !Equal(h, va, vb) {
		t.Error("element-equal vectors not Equal")
	}
	if Equal(h, va, h.MakeVector(3, a)) {
		t.Error("different-length vectors Equal")
	}
}

func TestReadAllSurvivesCollection(t *testing.T) {
	h := heap.New()
	semispace.New(h, 4096) // small heap: reading must cope with GCs
	s := h.Scope()
	defer s.Close()
	var b strings.Builder
	for i := 0; i < 100; i++ {
		b.WriteString("(lemma (f x y) (g (h x) y)) ")
	}
	l := MustReadAll(h, b.String())
	if n := h.ListLen(l); n != 100 {
		t.Fatalf("read %d forms, want 100", n)
	}
}
