// Package sexp provides a small s-expression reader and printer over the
// simulated heap. The Boyer benchmark's rule base and test terms are
// embedded as s-expression text and read into heap structure at startup,
// exactly as the Scheme original quotes them.
//
// Syntax: lists (a b . c), symbols, and decimal fixnums. Symbols are
// interned, so reading the same name twice yields eq? objects. Comments run
// from ';' to end of line.
package sexp

import (
	"fmt"
	"strconv"
	"strings"

	"rdgc/internal/heap"
)

// Reader parses s-expressions from a string into heap objects.
type Reader struct {
	h   *heap.Heap
	src string
	pos int
}

// NewReader creates a reader over src allocating into h.
func NewReader(h *heap.Heap, src string) *Reader {
	return &Reader{h: h, src: src}
}

// ReadString parses exactly one s-expression from src.
func ReadString(h *heap.Heap, src string) (heap.Ref, error) {
	r := NewReader(h, src)
	v, err := r.Read()
	if err != nil {
		return heap.InvalidRef, err
	}
	return v, nil
}

// MustReadString is ReadString for trusted embedded text.
func MustReadString(h *heap.Heap, src string) heap.Ref {
	v, err := ReadString(h, src)
	if err != nil {
		panic(err)
	}
	return v
}

// ReadAll parses every s-expression in src, returning them as a heap list.
func ReadAll(h *heap.Heap, src string) (heap.Ref, error) {
	s := h.Scope()
	r := NewReader(h, src)
	var items []heap.Ref
	for {
		r.skipSpace()
		if r.pos >= len(r.src) {
			break
		}
		v, err := r.Read()
		if err != nil {
			s.Close()
			return heap.InvalidRef, err
		}
		items = append(items, v)
	}
	return s.Return(h.List(items...)), nil
}

// MustReadAll is ReadAll for trusted embedded text.
func MustReadAll(h *heap.Heap, src string) heap.Ref {
	v, err := ReadAll(h, src)
	if err != nil {
		panic(err)
	}
	return v
}

func (r *Reader) skipSpace() {
	for r.pos < len(r.src) {
		c := r.src[r.pos]
		switch {
		case c == ';':
			for r.pos < len(r.src) && r.src[r.pos] != '\n' {
				r.pos++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			r.pos++
		default:
			return
		}
	}
}

func (r *Reader) errf(format string, args ...any) error {
	return fmt.Errorf("sexp: at offset %d: %s", r.pos, fmt.Sprintf(format, args...))
}

// Read parses one s-expression, leaving the position after it.
func (r *Reader) Read() (heap.Ref, error) {
	r.skipSpace()
	if r.pos >= len(r.src) {
		return heap.InvalidRef, r.errf("unexpected end of input")
	}
	switch c := r.src[r.pos]; {
	case c == '(':
		r.pos++
		return r.readList()
	case c == ')':
		return heap.InvalidRef, r.errf("unexpected ')'")
	case c == '\'':
		r.pos++
		s := r.h.Scope()
		v, err := r.Read()
		if err != nil {
			s.Close()
			return heap.InvalidRef, err
		}
		q := r.h.Intern("quote")
		return s.Return(r.h.List(q, v)), nil
	default:
		return r.readAtom()
	}
}

func (r *Reader) readList() (heap.Ref, error) {
	s := r.h.Scope()
	var items []heap.Ref
	tail := r.h.Null()
	for {
		r.skipSpace()
		if r.pos >= len(r.src) {
			s.Close()
			return heap.InvalidRef, r.errf("unterminated list")
		}
		if r.src[r.pos] == ')' {
			r.pos++
			break
		}
		if r.src[r.pos] == '.' && r.pos+1 < len(r.src) && isDelim(r.src[r.pos+1]) {
			r.pos++
			v, err := r.Read()
			if err != nil {
				s.Close()
				return heap.InvalidRef, err
			}
			tail = v
			r.skipSpace()
			if r.pos >= len(r.src) || r.src[r.pos] != ')' {
				s.Close()
				return heap.InvalidRef, r.errf("malformed dotted list")
			}
			r.pos++
			break
		}
		v, err := r.Read()
		if err != nil {
			s.Close()
			return heap.InvalidRef, err
		}
		items = append(items, v)
	}
	acc := tail
	for i := len(items) - 1; i >= 0; i-- {
		acc = r.h.Cons(items[i], acc)
	}
	return s.Return(acc), nil
}

func isDelim(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(' || c == ')'
}

func (r *Reader) readAtom() (heap.Ref, error) {
	start := r.pos
	for r.pos < len(r.src) && !isDelim(r.src[r.pos]) && r.src[r.pos] != ';' {
		r.pos++
	}
	tok := r.src[start:r.pos]
	if tok == "" {
		return heap.InvalidRef, r.errf("empty atom")
	}
	if tok == "." {
		return heap.InvalidRef, r.errf("unexpected '.'")
	}
	if n, err := strconv.ParseInt(tok, 10, 62); err == nil {
		return r.h.Fix(n), nil
	}
	return r.h.Intern(strings.ToLower(tok)), nil
}

// Print renders a heap value as s-expression text.
func Print(h *heap.Heap, v heap.Ref) string {
	var b strings.Builder
	printTo(h, &b, v)
	return b.String()
}

func printTo(h *heap.Heap, b *strings.Builder, v heap.Ref) {
	s := h.Scope()
	defer s.Close()
	switch {
	case h.IsNull(v):
		b.WriteString("()")
	case h.IsFix(v):
		fmt.Fprintf(b, "%d", h.FixVal(v))
	case h.IsSymbol(v):
		b.WriteString(h.SymbolName(v))
	case h.IsFlonum(v):
		fmt.Fprintf(b, "%g", h.FlonumVal(v))
	case h.IsPair(v):
		b.WriteByte('(')
		cur := h.Dup(v)
		first := true
		for h.IsPair(cur) {
			if !first {
				b.WriteByte(' ')
			}
			first = false
			printTo(h, b, h.Car(cur))
			h.Set(cur, h.Get(h.Cdr(cur)))
		}
		if !h.IsNull(cur) {
			b.WriteString(" . ")
			printTo(h, b, cur)
		}
		b.WriteByte(')')
	case h.IsVector(v):
		b.WriteString("#(")
		for i := 0; i < h.VectorLen(v); i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			printTo(h, b, h.VectorRef(v, i))
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "#<%#x>", uint64(h.Get(v)))
	}
}

// Equal reports structural equality of two heap values (Scheme equal?).
func Equal(h *heap.Heap, a, b heap.Ref) bool {
	if h.Eq(a, b) {
		return true
	}
	if h.IsPair(a) && h.IsPair(b) {
		s := h.Scope()
		defer s.Close()
		return Equal(h, h.Car(a), h.Car(b)) && Equal(h, h.Cdr(a), h.Cdr(b))
	}
	if h.IsVector(a) && h.IsVector(b) {
		n := h.VectorLen(a)
		if n != h.VectorLen(b) {
			return false
		}
		s := h.Scope()
		defer s.Close()
		for i := 0; i < n; i++ {
			if !Equal(h, h.VectorRef(a, i), h.VectorRef(b, i)) {
				return false
			}
		}
		return true
	}
	if h.IsFlonum(a) && h.IsFlonum(b) {
		return h.FlonumVal(a) == h.FlonumVal(b)
	}
	return false
}
