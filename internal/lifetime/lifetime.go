// Package lifetime implements the measurement instrumentation behind the
// paper's Section 7: per-object birth stamps (via heap.WithCensus), periodic
// whole-heap censuses, live-storage-versus-time profiles striped by age
// (Figures 2–4), and survival-rate-by-age tables (Tables 4–7).
//
// A census is a non-moving trace: it marks everything reachable, buckets
// the live words by the allocation epoch in which each object was born,
// and clears the marks. It is collector-independent and can run under any
// of the repository's collectors.
package lifetime

import (
	"fmt"
	"io"
	"math"
	"strings"

	"rdgc/internal/heap"
)

// Snapshot records one census: the allocation clock when it was taken and
// the live words bucketed by birth epoch (index = birth time / epoch size).
type Snapshot struct {
	At               uint64
	LiveByBirthEpoch []uint64
}

// TotalLive returns the live words in the snapshot.
func (s Snapshot) TotalLive() uint64 {
	var n uint64
	for _, w := range s.LiveByBirthEpoch {
		n += w
	}
	return n
}

// TakeCensus traces the heap from its roots and buckets live words by birth
// epoch. The heap must have been created with heap.WithCensus.
func TakeCensus(h *heap.Heap, epochWords uint64) Snapshot {
	if !h.CensusEnabled() {
		panic("lifetime: heap was not created with heap.WithCensus")
	}
	m := heap.NewMarker(h, nil)
	m.Run()

	snap := Snapshot{At: h.Now()}
	for _, s := range h.Spaces {
		heap.WalkSpace(s, func(off int, hdr heap.Word) bool {
			if !s.MarkedAt(off) {
				return true
			}
			birth := h.BirthStamp(heap.PtrWord(s.ID, off))
			e := int(birth / epochWords)
			for len(snap.LiveByBirthEpoch) <= e {
				snap.LiveByBirthEpoch = append(snap.LiveByBirthEpoch, 0)
			}
			snap.LiveByBirthEpoch[e] += uint64(heap.ObjWords(hdr))
			return true
		})
		heap.ClearMarks(s)
	}
	return snap
}

// Tracker samples censuses at every epoch boundary of the allocation clock,
// via the heap's allocation hook.
type Tracker struct {
	H          *heap.Heap
	EpochWords uint64
	snaps      []Snapshot
}

// NewTracker installs a tracker on h sampling every epochWords of
// allocation. Install before the measured program starts allocating.
func NewTracker(h *heap.Heap, epochWords uint64) *Tracker {
	t := &Tracker{H: h, EpochWords: epochWords}
	var fire func()
	fire = func() {
		t.snaps = append(t.snaps, TakeCensus(h, epochWords))
		h.SetAllocHook((h.Now()/epochWords+1)*epochWords, fire)
	}
	h.SetAllocHook(epochWords, fire)
	return t
}

// Finish takes a final census (so short runs have at least one sample) and
// returns all snapshots.
func (t *Tracker) Finish() []Snapshot {
	t.snaps = append(t.snaps, TakeCensus(t.H, t.EpochWords))
	t.H.SetAllocHook(^uint64(0), nil)
	return t.snaps
}

// Snapshots returns the censuses taken so far.
func (t *Tracker) Snapshots() []Snapshot { return t.snaps }

// SurvivalRow is one line of a Table 4–7 style survival table: of the live
// words whose age was in [AgeLo, AgeHi) epochs, the fraction still live one
// epoch later.
type SurvivalRow struct {
	AgeLo, AgeHi int // in epochs; AgeHi < 0 means "or older"
	Live         uint64
	Survived     uint64
}

// Rate returns the survival fraction, or NaN-free 0 when no words were
// observed.
func (r SurvivalRow) Rate() float64 {
	if r.Live == 0 {
		return 0
	}
	return float64(r.Survived) / float64(r.Live)
}

func (r SurvivalRow) String() string {
	hi := fmt.Sprintf("%d", r.AgeHi)
	if r.AgeHi < 0 {
		hi = "∞"
	}
	return fmt.Sprintf("age [%d,%s) epochs: %3.0f%% survives the next epoch (%d of %d words)",
		r.AgeLo, hi, 100*r.Rate(), r.Survived, r.Live)
}

// SurvivalTable aggregates, over consecutive snapshot pairs, the words of
// each age class that survive one more epoch — the computation behind
// Tables 4, 5, 6 and 7. Age class k covers objects allocated k+1 epochs
// before the observation ("100,000 to 200,000 bytes old" is k = 1 with
// 100,000-byte epochs). Classes 0..maxAge-1 get their own rows; everything
// older lands in a final "or older" row.
func SurvivalTable(snaps []Snapshot, epochWords uint64, maxAge int) []SurvivalRow {
	rows := make([]SurvivalRow, maxAge+1)
	for k := range rows {
		rows[k].AgeLo, rows[k].AgeHi = k, k+1
	}
	rows[maxAge].AgeLo, rows[maxAge].AgeHi = maxAge, -1

	for i := 0; i+1 < len(snaps); i++ {
		cur, next := snaps[i], snaps[i+1]
		m := int(cur.At / epochWords) // current epoch index
		for b, live := range cur.LiveByBirthEpoch {
			if live == 0 {
				continue
			}
			age := m - b - 1
			if age < 0 {
				continue // the current epoch is incomplete; its cohort is
				// still being born, so survival is not yet defined
			}
			k := age
			if k > maxAge {
				k = maxAge
			}
			var surv uint64
			if b < len(next.LiveByBirthEpoch) {
				surv = next.LiveByBirthEpoch[b]
			}
			if surv > live {
				surv = live
			}
			rows[k].Live += live
			rows[k].Survived += surv
		}
	}
	return rows
}

// Profile is the data behind Figures 2–4: for each census, the live words
// split by age class (0 = allocated in the previous epoch), with ages of
// maxAge epochs or more merged (the paper's "white" stripe).
type Profile struct {
	EpochWords uint64
	MaxAge     int
	Rows       []ProfileRow
}

// ProfileRow is one census column of the figure.
type ProfileRow struct {
	At        uint64
	ByAge     []uint64 // index = age class, length MaxAge+1 (last = older)
	TotalLive uint64
}

// BuildProfile converts snapshots into an age-striped live-storage profile.
func BuildProfile(snaps []Snapshot, epochWords uint64, maxAge int) Profile {
	p := Profile{EpochWords: epochWords, MaxAge: maxAge}
	for _, s := range snaps {
		row := ProfileRow{At: s.At, ByAge: make([]uint64, maxAge+1)}
		m := int(s.At / epochWords)
		for b, live := range s.LiveByBirthEpoch {
			age := m - b - 1
			if age < 0 {
				age = 0
			}
			if age > maxAge {
				age = maxAge
			}
			row.ByAge[age] += live
			row.TotalLive += live
		}
		p.Rows = append(p.Rows, row)
	}
	return p
}

// WriteCSV emits the profile as CSV: time, total, then one column per age
// class. The columns regenerate the colored stripes of Figures 2–4.
func (p Profile) WriteCSV(w io.Writer) error {
	header := []string{"words_allocated", "live_total"}
	for k := 0; k < p.MaxAge; k++ {
		header = append(header, fmt.Sprintf("age_%d_epochs", k))
	}
	header = append(header, "older")
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range p.Rows {
		cols := []string{fmt.Sprint(r.At), fmt.Sprint(r.TotalLive)}
		for _, v := range r.ByAge {
			cols = append(cols, fmt.Sprint(v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws the profile as a crude skyline (one output row per
// census, width proportional to live storage), with the oldest age class
// shown as '.' and everything younger as '#' — enough to eyeball the
// sawtooths of Figure 2 and the staircase of Figure 3 in a terminal.
func (p Profile) RenderASCII(w io.Writer, width int) error {
	var peak uint64 = 1
	for _, r := range p.Rows {
		if r.TotalLive > peak {
			peak = r.TotalLive
		}
	}
	for _, r := range p.Rows {
		old := r.ByAge[p.MaxAge]
		oldCols := int(old * uint64(width) / peak)
		totCols := int(r.TotalLive * uint64(width) / peak)
		line := strings.Repeat(".", oldCols) + strings.Repeat("#", totCols-oldCols)
		if _, err := fmt.Fprintf(w, "%12d |%s\n", r.At, line); err != nil {
			return err
		}
	}
	return nil
}

// SurvivalFractions flattens a survival table into the per-age-class
// fraction vector the adaptive tenuring controller consumes
// (policy.Controller.SeedSurvival): fractions[k] is the fraction of
// class-k words that survive one more epoch. Rows with no observed words
// yield NaN so the consumer can tell "no evidence" from "nothing
// survives".
func SurvivalFractions(rows []SurvivalRow) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		if r.Live == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = r.Rate()
	}
	return out
}
