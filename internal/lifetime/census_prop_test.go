package lifetime

import (
	"fmt"
	"math/rand"
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

// Property test: under randomized allocation/death schedules, every census
// must agree bucket-for-bucket with an independent brute-force recount. The
// recount is a plain depth-first trace from the roots with a Go map as the
// visited set — it shares no code with TakeCensus's mark-and-walk pass, so
// agreement pins down both the marker and the bucketing arithmetic.

func recountByEpoch(h *heap.Heap, epochWords uint64) []uint64 {
	seen := map[heap.Word]bool{}
	var stack []heap.Word
	push := func(w heap.Word) {
		if heap.IsPtr(w) && !seen[w] {
			seen[w] = true
			stack = append(stack, w)
		}
	}
	h.VisitRoots(func(slot *heap.Word) { push(*slot) })
	var buckets []uint64
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s := h.SpaceOf(w)
		off := heap.PtrOff(w)
		e := int(h.BirthStamp(w) / epochWords)
		for len(buckets) <= e {
			buckets = append(buckets, 0)
		}
		buckets[e] += uint64(heap.ObjWords(s.Mem[off]))
		heap.ScanObject(s, off, func(slot *heap.Word) { push(*slot) })
	}
	return buckets
}

func trimZeros(b []uint64) []uint64 {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return b
}

func TestCensusMatchesBruteForceRecount(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			epoch := uint64(64 + rng.Intn(448))
			h := heap.New(heap.WithCensus())
			c := semispace.New(h, 1<<14, semispace.WithExpansion(2))

			s := h.Scope()
			defer s.Close()
			roots := make([]heap.Ref, 12)
			for i := range roots {
				roots[i] = h.Null()
			}
			pick := func() heap.Ref { return roots[rng.Intn(len(roots))] }

			audit := func(op int) {
				snap := TakeCensus(h, epoch)
				if snap.At != h.Now() {
					t.Fatalf("op %d: snapshot at %d, clock says %d", op, snap.At, h.Now())
				}
				want := trimZeros(recountByEpoch(h, epoch))
				got := trimZeros(snap.LiveByBirthEpoch)
				if len(got) != len(want) {
					t.Fatalf("op %d: census has %d epochs, recount %d\ncensus:  %v\nrecount: %v",
						op, len(got), len(want), got, want)
				}
				for e := range want {
					if got[e] != want[e] {
						t.Fatalf("op %d: epoch %d: census %d words, recount %d",
							op, e, got[e], want[e])
					}
				}
				// The census promises to clear its marks; a structural check
				// right after would catch any it left behind.
				if err := heap.Check(h); err != nil {
					t.Fatalf("op %d: heap dirty after census: %v", op, err)
				}
			}

			for op := 0; op < 1500; op++ {
				func() {
					s2 := h.Scope()
					defer s2.Close()
					dst := rng.Intn(len(roots))
					switch rng.Intn(10) {
					case 0, 1, 2: // grow a list on a random root
						v := h.Cons(h.Fix(int64(op)), h.Dup(pick()))
						h.Set(roots[dst], h.Get(v))
					case 3: // fresh vector sharing a random structure
						v := h.MakeVector(1+rng.Intn(6), h.Dup(pick()))
						h.Set(roots[dst], h.Get(v))
					case 4: // mutate a pair field
						r := pick()
						if h.IsPair(r) {
							h.SetCar(r, h.Dup(pick()))
						}
					case 5: // mutate a vector slot
						r := pick()
						if h.IsVector(r) {
							h.VectorSet(r, rng.Intn(h.VectorLen(r)), h.Dup(pick()))
						}
					case 6: // death: drop a root
						h.Set(roots[dst], heap.NullWord)
					case 7:
						c.Collect()
					case 8: // box sharing a random value
						v := h.Box(h.Dup(pick()))
						h.Set(roots[dst], h.Get(v))
					case 9: // raw-payload object (no outgoing pointers)
						v := h.Flonum(float64(op) * 0.5)
						h.Set(roots[dst], h.Get(v))
					}
				}()
				if op%250 == 249 {
					audit(op)
				}
			}
			audit(1500)
		})
	}
}
