package lifetime

import (
	"math"
	"strings"
	"testing"

	"rdgc/internal/decay"
	"rdgc/internal/gc/gctest"
	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

func TestCensusCountsLiveWords(t *testing.T) {
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<16)
	s := h.Scope()
	defer s.Close()

	gctest.BuildList(h, 10) // 10 pairs, 4 words each with the census word
	snap := TakeCensus(h, 1000)
	if got := snap.TotalLive(); got != 40 {
		t.Errorf("census live = %d words, want 40", got)
	}

	// Garbage must not be counted.
	func() {
		s2 := h.Scope()
		defer s2.Close()
		gctest.BuildList(h, 50)
	}()
	snap = TakeCensus(h, 1000)
	if got := snap.TotalLive(); got != 40 {
		t.Errorf("census after dropping garbage = %d words, want 40", got)
	}
}

func TestCensusBucketsByBirthEpoch(t *testing.T) {
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<16)
	s := h.Scope()
	defer s.Close()

	const epoch = 100
	a := gctest.BuildList(h, 10) // 40 words in epoch 0
	gctest.Churn(h, 20)          // push the clock past one epoch
	b := gctest.BuildList(h, 5)  // 20 words in a later epoch
	_, _ = a, b

	snap := TakeCensus(h, epoch)
	if snap.LiveByBirthEpoch[0] != 40 {
		t.Errorf("epoch 0 live = %d, want 40", snap.LiveByBirthEpoch[0])
	}
	var later uint64
	for _, w := range snap.LiveByBirthEpoch[1:] {
		later += w
	}
	if later != 20 {
		t.Errorf("later epochs live = %d, want 20", later)
	}
}

func TestCensusSurvivesCopyingCollections(t *testing.T) {
	// Birth stamps must travel with objects when they are copied.
	h := heap.New(heap.WithCensus())
	c := semispace.New(h, 1<<12)
	s := h.Scope()
	defer s.Close()
	keep := gctest.BuildList(h, 10)
	before := TakeCensus(h, 100)
	c.Collect()
	gctest.Churn(h, 500)
	after := TakeCensus(h, 100)
	if before.LiveByBirthEpoch[0] != after.LiveByBirthEpoch[0] {
		t.Errorf("epoch-0 cohort changed across collections: %d -> %d",
			before.LiveByBirthEpoch[0], after.LiveByBirthEpoch[0])
	}
	gctest.CheckList(t, h, keep, 10)
}

func TestTrackerSamplesAtEpochBoundaries(t *testing.T) {
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<16)
	s := h.Scope()
	defer s.Close()

	const epoch = 512
	tr := NewTracker(h, epoch)
	gctest.Churn(h, 1000) // 4000 words => ~7 epochs
	snaps := tr.Finish()
	if len(snaps) < 7 {
		t.Fatalf("only %d snapshots after ~8 epochs", len(snaps))
	}
	for i, sn := range snaps[:len(snaps)-1] {
		// Each non-final sample should land within one object of a boundary.
		if off := sn.At % epoch; off > 8 {
			t.Errorf("snapshot %d at %d, %d words past the boundary", i, sn.At, off)
		}
	}
}

func TestSurvivalTableOnDecayWorkloadIsAgeIndependent(t *testing.T) {
	// The whole measurement pipeline, applied to the radioactive decay
	// model, must reproduce its defining property: survival per epoch is
	// 2^(−E/h) for every age class (compare the paper's Tables 4–7, where
	// real programs deviate from this).
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<21)
	const halfLife = 2000.0 // objects
	w := decay.NewWorkload(h, halfLife, 11)

	const objWords = 4 // pair + census word
	epoch := uint64(halfLife * objWords / 2)
	w.Warmup(12)
	tr := NewTracker(h, epoch)
	w.Run(int(halfLife) * 30)
	snaps := tr.Finish()

	rows := SurvivalTable(snaps, epoch, 6)
	want := math.Exp2(-float64(epoch) / (halfLife * objWords))
	for _, r := range rows {
		if r.Live < 2000 {
			continue // too few words for a stable rate
		}
		if got := r.Rate(); math.Abs(got-want) > 0.06 {
			t.Errorf("%s: rate %.3f, want about %.3f (age must not matter)",
				r.String(), got, want)
		}
	}
}

func TestProfileBuildAndRender(t *testing.T) {
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<16)
	s := h.Scope()
	defer s.Close()

	tr := NewTracker(h, 256)
	keep := gctest.BuildList(h, 30)
	gctest.Churn(h, 500)
	_ = keep
	snaps := tr.Finish()

	p := BuildProfile(snaps, 256, 5)
	if len(p.Rows) != len(snaps) {
		t.Fatalf("profile rows %d != snapshots %d", len(p.Rows), len(snaps))
	}
	last := p.Rows[len(p.Rows)-1]
	if last.TotalLive < 120 {
		t.Errorf("final live %d, want >= 120 (the kept list)", last.TotalLive)
	}

	var csv strings.Builder
	if err := p.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(p.Rows)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(p.Rows)+1)
	}
	if !strings.HasPrefix(lines[0], "words_allocated,live_total,age_0_epochs") {
		t.Errorf("CSV header malformed: %s", lines[0])
	}

	var art strings.Builder
	if err := p.RenderASCII(&art, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art.String(), "#") {
		t.Error("ASCII rendering shows no live storage")
	}
}

func TestSurvivalRowFormatting(t *testing.T) {
	r := SurvivalRow{AgeLo: 1, AgeHi: 2, Live: 100, Survived: 91}
	if got := r.Rate(); got != 0.91 {
		t.Errorf("Rate = %v", got)
	}
	if s := r.String(); !strings.Contains(s, "91%") {
		t.Errorf("String: %s", s)
	}
	older := SurvivalRow{AgeLo: 9, AgeHi: -1, Live: 0}
	if older.Rate() != 0 {
		t.Error("empty row rate should be 0")
	}
	if s := older.String(); !strings.Contains(s, "∞") {
		t.Errorf("open-ended row: %s", s)
	}
}
