package gcfuzz

import (
	"bytes"
	"fmt"
	"strconv"
)

// The corpus codec reads and writes programs in the file format `go test
// -fuzz` uses for its corpus ("go test fuzz v1" followed by one Go literal
// per fuzz argument). cmd/gcfuzz accepts both that format and raw bytes, so
// a crasher reported by the fuzzer replays without conversion.

const corpusHeader = "go test fuzz v1"

// MarshalCorpus renders prog as a go-fuzz corpus file.
func MarshalCorpus(prog []byte) []byte {
	return []byte(fmt.Sprintf("%s\n[]byte(%q)\n", corpusHeader, prog))
}

// UnmarshalCorpus extracts the program from data: a go-fuzz corpus file
// yields its []byte literal, anything else is taken as a raw program.
func UnmarshalCorpus(data []byte) ([]byte, error) {
	head, rest, found := bytes.Cut(data, []byte("\n"))
	if string(bytes.TrimSpace(head)) != corpusHeader {
		return data, nil
	}
	if !found {
		return nil, fmt.Errorf("gcfuzz: corpus file has no value after the header")
	}
	line := bytes.TrimSpace(rest)
	if i := bytes.IndexByte(line, '\n'); i >= 0 {
		line = bytes.TrimSpace(line[:i])
	}
	const prefix, suffix = "[]byte(", ")"
	if !bytes.HasPrefix(line, []byte(prefix)) || !bytes.HasSuffix(line, []byte(suffix)) {
		return nil, fmt.Errorf("gcfuzz: corpus value %q is not a []byte literal", line)
	}
	quoted := string(line[len(prefix) : len(line)-len(suffix)])
	s, err := strconv.Unquote(quoted)
	if err != nil {
		return nil, fmt.Errorf("gcfuzz: corpus value %q: %w", line, err)
	}
	return []byte(s), nil
}
