// Package gcfuzz interprets a fuzzer-mutated byte string as a deterministic
// mutator workload and runs it against every collector in the repository,
// checking three properties after every collection and at the end of the
// program:
//
//  1. The deep heap-invariant catalog holds (heap.Verify, under each
//     collector's declared VerifySpec).
//  2. Every rooted structure is identical to its native Go shadow
//     (the gctest shadow model).
//  3. The mutator-side statistics are identical across collectors: the
//     mutator alone decides what is allocated, so any divergence means a
//     collector corrupted the workload's control flow.
//
// The byte program has no framing: every byte feeds the same cursor. The
// first byte of each step selects an operation (mod numProgOps); operations
// then consume as many further bytes as they need for operands, via the
// gctest.Source interface. An exhausted program reads zeroes for operands
// and ends the step loop. This "everything is valid" encoding is what makes
// coverage-guided mutation effective: any byte string is a program, and
// small mutations make small behavioral changes.
package gcfuzz

import (
	"fmt"

	"rdgc/internal/core"
	"rdgc/internal/gc/gctest"
	"rdgc/internal/gc/generational"
	"rdgc/internal/gc/hybrid"
	"rdgc/internal/gc/marksweep"
	"rdgc/internal/gc/multigen"
	"rdgc/internal/gc/npms"
	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

// MaxProgram bounds the bytes interpreted from one program. Longer inputs
// are truncated rather than rejected, so the fuzzer can grow inputs freely;
// the bound keeps worst-case live data within every collector's fixed-size
// configuration.
const MaxProgram = 4096

// numProgOps is the dispatch modulus: gctest's mutator ops plus the
// harness's own collection and verification ops.
const (
	opCollect     = gctest.NumOps     // force a (major) collection
	opVerify      = gctest.NumOps + 1 // verify invariants mid-mutation
	opFullCollect = gctest.NumOps + 2 // full collection where supported
	opNop         = gctest.NumOps + 3
	numProgOps    = gctest.NumOps + 4
)

// byteSource feeds a program's bytes to the mutator as a gctest.Source.
// Reads past the end return zero and mark the source exhausted.
type byteSource struct {
	data []byte
	pos  int
}

func (b *byteSource) next() byte {
	if b.pos >= len(b.data) {
		b.pos++ // keep moving so done() holds even for operand reads
		return 0
	}
	v := b.data[b.pos]
	b.pos++
	return v
}

func (b *byteSource) done() bool { return b.pos >= len(b.data) }

// Intn implements gctest.Source. One byte covers the small bounds the
// mutator uses; large bounds (root-table indices once the table passes 256
// entries) take a second byte.
func (b *byteSource) Intn(n int) int {
	if n <= 0 {
		panic("gcfuzz: Intn bound must be positive")
	}
	v := int(b.next())
	if n > 256 {
		v = v<<8 | int(b.next())
	}
	return v % n
}

// Int63n implements gctest.Source with two bytes of range.
func (b *byteSource) Int63n(n int64) int64 {
	if n <= 0 {
		panic("gcfuzz: Int63n bound must be positive")
	}
	v := int64(b.next())<<8 | int64(b.next())
	return v % n
}

// NamedCollector pairs a constructor with its report name.
type NamedCollector struct {
	Name string
	New  func(h *heap.Heap) heap.Collector
}

// Collectors returns the constructors the fuzz harness drives, in a fixed
// order. Sizes are chosen so the worst-case live data of a MaxProgram-byte
// program fits every fixed-size configuration, and growth is enabled where
// the collector supports it.
func Collectors() []NamedCollector {
	return []NamedCollector{
		{"semispace", func(h *heap.Heap) heap.Collector {
			return semispace.New(h, 8192, semispace.WithExpansion(2))
		}},
		{"marksweep", func(h *heap.Heap) heap.Collector {
			return marksweep.New(h, 8192, marksweep.WithExpansion(2))
		}},
		{"generational", func(h *heap.Heap) heap.Collector {
			return generational.New(h, 1024, 16384, generational.WithExpansion(2))
		}},
		{"nonpredictive", func(h *heap.Heap) heap.Collector {
			return core.New(h, 8, 1024, core.WithGrowth())
		}},
		{"hybrid", func(h *heap.Heap) heap.Collector {
			return hybrid.New(h, 512, 8, 1024, hybrid.WithGrowth())
		}},
		{"multigen", func(h *heap.Heap) heap.Collector {
			return multigen.New(h, []int{1024, 2048, 16384}, multigen.WithExpansion(2))
		}},
		{"npms", func(h *heap.Heap) heap.Collector {
			return npms.New(h, 8, 4096)
		}},
	}
}

// CollectorsSized returns the same seven collectors scaled to a workload
// whose comfortable heap size is total words — the grid cmd/gctrace uses
// to replay recorded benchmark traces. Growth/expansion is enabled
// everywhere it exists, so the sizes are starting points, not ceilings.
func CollectorsSized(total int) []NamedCollector {
	if total < 4096 {
		total = 4096
	}
	nursery := total / 8
	return []NamedCollector{
		{"semispace", func(h *heap.Heap) heap.Collector {
			return semispace.New(h, total, semispace.WithExpansion(2))
		}},
		{"marksweep", func(h *heap.Heap) heap.Collector {
			return marksweep.New(h, total, marksweep.WithExpansion(2))
		}},
		{"generational", func(h *heap.Heap) heap.Collector {
			return generational.New(h, nursery, 2*total, generational.WithExpansion(2))
		}},
		{"nonpredictive", func(h *heap.Heap) heap.Collector {
			return core.New(h, 8, nursery, core.WithGrowth())
		}},
		{"hybrid", func(h *heap.Heap) heap.Collector {
			return hybrid.New(h, nursery/2, 8, nursery, hybrid.WithGrowth())
		}},
		{"multigen", func(h *heap.Heap) heap.Collector {
			return multigen.New(h, []int{nursery, 2 * nursery, 2 * total}, multigen.WithExpansion(2))
		}},
		{"npms", func(h *heap.Heap) heap.Collector {
			// npms has no growth option; size its k steps generously.
			return npms.New(h, 8, total)
		}},
	}
}

// fullCollector is the optional whole-heap collection the non-predictive
// collectors expose.
type fullCollector interface{ FullCollect() }

// Run interprets prog against a fresh heap managed by mk's collector and
// returns the mutator statistics plus the first property violation found.
// census turns on per-object birth stamps, doubling as a check that the
// hidden census word never confuses a collector.
func Run(prog []byte, mk func(h *heap.Heap) heap.Collector, census bool) (heap.Stats, error) {
	return runWith(prog, mk, census, nil, 0, false, nil)
}

// RunAt is Run with the heap configured for gcWorkers parallel tracing
// workers (0 = the sequential engines). The property set is unchanged:
// parallel tracing must be invisible to every invariant checked here.
func RunAt(prog []byte, mk func(h *heap.Heap) heap.Collector, census bool, gcWorkers int) (heap.Stats, error) {
	return runWith(prog, mk, census, nil, gcWorkers, false, nil)
}

// RunIncr is Run with the heap in incremental collection mode (insertion
// barrier, mark slices, lazy sweeping) for the collectors that support it;
// the others ignore the flag. The property set is unchanged — in particular
// the shadow-model comparison and the final whole-heap Check must hold with
// collection interleaved into the mutator at slice granularity.
func RunIncr(prog []byte, mk func(h *heap.Heap) heap.Collector, census bool) (heap.Stats, error) {
	return runWith(prog, mk, census, nil, 0, true, nil)
}

// RunWith is Run with an instrumentation hook: when wrap is non-nil, the
// freshly constructed collector is passed through it and the returned
// wrapper receives the program's collect operations (allocations still
// flow through the heap's installed allocator). The trace recorder hooks
// in here — cmd/gcfuzz -emit-trace exports a byte program as a trace —
// without this package importing the trace codec.
func RunWith(prog []byte, mk func(h *heap.Heap) heap.Collector, census bool, wrap func(h *heap.Heap, c heap.Collector) heap.Collector) (heap.Stats, error) {
	return runWith(prog, mk, census, wrap, 0, false, nil)
}

// RunTenured is Run with the heap's promotion threshold pinned (so the
// tenuring-capable collectors retain survivors in the nursery until they
// age out; heap.TenureNever and adaptive mode via threshold 0 are both
// meaningful) and, on collectors that implement heap.Tenurer, the gctest
// age oracle attached: every retained object's side-table age must match a
// move-hook shadow count throughout the run.
func RunTenured(prog []byte, mk func(h *heap.Heap) heap.Collector, census bool, threshold int) (heap.Stats, error) {
	return runWith(prog, mk, census, nil, 0, false, func(h *heap.Heap) {
		if threshold == 0 {
			h.SetGCAdaptive(true)
		} else {
			h.SetGCTenure(threshold)
			h.SetGCAdaptive(false)
		}
	})
}

func runWith(prog []byte, mk func(h *heap.Heap) heap.Collector, census bool, wrap func(h *heap.Heap, c heap.Collector) heap.Collector, gcWorkers int, incremental bool, configure func(h *heap.Heap)) (heap.Stats, error) {
	if len(prog) > MaxProgram {
		prog = prog[:MaxProgram]
	}
	var opts []heap.Option
	if census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	h.SetGCWorkers(gcWorkers)
	h.SetGCIncremental(incremental)
	tenured := configure != nil
	if tenured {
		configure(h)
	}
	c := mk(h)
	drive := c
	if wrap != nil {
		drive = wrap(h, c)
	}

	// Tenured runs carry the age oracle: the collector's side age tables
	// are held to a move-hook shadow count for the whole program.
	var oracle *gctest.AgeOracle
	if ten, ok := c.(heap.Tenurer); tenured && ok {
		oracle = gctest.InstallAgeOracle(h, ten)
	}

	// The after-GC hook sees every collection, including those triggered by
	// allocation inside a mutator op; only the first violation is kept.
	var gcErr error
	h.SetAfterGC(func() {
		if oracle != nil {
			oracle.AfterGC()
		}
		if gcErr == nil {
			gcErr = heap.VerifyCollector(h, c)
		}
		if gcErr == nil && oracle != nil {
			gcErr = oracle.Check()
		}
	})

	src := &byteSource{data: prog}
	m := gctest.NewMutator(h, src)
	for step := 0; !src.done() && gcErr == nil; step++ {
		switch k := src.Intn(numProgOps); k {
		case opCollect:
			drive.Collect()
		case opVerify:
			// Mid-mutation verification is the only point where rules about
			// pointers into a nursery can bite: nurseries are empty at every
			// after-collection hook.
			if err := heap.VerifyCollector(h, c); err != nil {
				return h.Stats, fmt.Errorf("step %d: %w", step, err)
			}
			if err := m.Verify(); err != nil {
				return h.Stats, fmt.Errorf("step %d: %w", step, err)
			}
		case opFullCollect:
			if fc, ok := drive.(fullCollector); ok {
				fc.FullCollect()
			} else {
				drive.Collect()
			}
		case opNop:
		default:
			m.Op(k)
		}
		if gcErr != nil {
			return h.Stats, fmt.Errorf("step %d: %w", step, gcErr)
		}
	}

	drive.Collect()
	if gcErr != nil {
		return h.Stats, gcErr
	}
	if err := heap.Check(h); err != nil {
		return h.Stats, err
	}
	if err := heap.VerifyCollector(h, c); err != nil {
		return h.Stats, err
	}
	if err := m.Verify(); err != nil {
		return h.Stats, err
	}
	if oracle != nil {
		if err := oracle.Check(); err != nil {
			return h.Stats, err
		}
	}
	return h.Stats, nil
}

// RunAll runs prog against every collector from Collectors and checks that
// the mutator statistics agree across all of them. It returns the first
// violation, naming the collector that produced it.
func RunAll(prog []byte, census bool) error {
	return RunAllAt(prog, census, 0)
}

// RunAllAt is RunAll with every heap configured for gcWorkers parallel
// tracing workers: the mutator statistics depend only on the program, so
// they must also agree across worker counts.
func RunAllAt(prog []byte, census bool, gcWorkers int) error {
	var first heap.Stats
	for i, nc := range Collectors() {
		stats, err := RunAt(prog, nc.New, census, gcWorkers)
		if err != nil {
			return fmt.Errorf("%s: %w", nc.Name, err)
		}
		if i == 0 {
			first = stats
		} else if stats != first {
			return fmt.Errorf("%s: mutator stats diverged: %+v, %s got %+v",
				nc.Name, first, Collectors()[0].Name, stats)
		}
	}
	return nil
}

// RunAllTenured runs prog against every collector with the promotion
// threshold pinned (0 = adaptive) and the age oracle attached to the
// tenuring-capable ones, and checks the mutator statistics agree across
// collectors — and against the wholesale run of the same program, since
// the mutator alone decides what is allocated, a tenuring policy must not
// perturb its statistics either.
func RunAllTenured(prog []byte, census bool, threshold int) error {
	base, err := Run(prog, Collectors()[0].New, census)
	if err != nil {
		return fmt.Errorf("%s (wholesale): %w", Collectors()[0].Name, err)
	}
	for _, nc := range Collectors() {
		stats, err := RunTenured(prog, nc.New, census, threshold)
		if err != nil {
			return fmt.Errorf("%s (threshold=%d): %w", nc.Name, threshold, err)
		}
		if stats != base {
			return fmt.Errorf("%s (threshold=%d): mutator stats diverged from wholesale: %+v vs %+v",
				nc.Name, threshold, stats, base)
		}
	}
	return nil
}

// RunAllAdaptive is RunAllTenured with the policy controller driving the
// knobs instead of a fixed threshold.
func RunAllAdaptive(prog []byte, census bool) error {
	return RunAllTenured(prog, census, 0)
}

// RunAllIncr runs prog against every collector in incremental mode and
// additionally pins the mutator statistics identical to the stop-the-world
// run of the same program on the same collector: incremental collection must
// be invisible to the mutator.
func RunAllIncr(prog []byte, census bool) error {
	for _, nc := range Collectors() {
		stw, err := Run(prog, nc.New, census)
		if err != nil {
			return fmt.Errorf("%s (stw): %w", nc.Name, err)
		}
		incr, err := RunIncr(prog, nc.New, census)
		if err != nil {
			return fmt.Errorf("%s (incremental): %w", nc.Name, err)
		}
		if stw != incr {
			return fmt.Errorf("%s: incremental mutator stats diverged from stop-the-world: %+v vs %+v",
				nc.Name, incr, stw)
		}
	}
	return nil
}

// Minimize shrinks a failing program while fails keeps reporting true. It
// first deletes chunks (halving the chunk size down to one byte), then
// zeroes individual bytes, so replayed failures stay as small and as plain
// as possible. fails must be deterministic.
func Minimize(prog []byte, fails func([]byte) bool) []byte {
	cur := append([]byte(nil), prog...)
	if !fails(cur) {
		return cur
	}
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			cand := append(append([]byte(nil), cur[:start]...), cur[start+chunk:]...)
			if fails(cand) {
				cur = cand
				// Do not advance: the next chunk shifted into this window.
			} else {
				start += chunk
			}
		}
	}
	for i := range cur {
		if cur[i] == 0 {
			continue
		}
		old := cur[i]
		cur[i] = 0
		if !fails(cur) {
			cur[i] = old
		}
	}
	return cur
}
