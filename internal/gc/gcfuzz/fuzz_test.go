package gcfuzz

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rdgc/internal/gc/generational"
	"rdgc/internal/heap"
)

// TestMain seeds the allocation-buffer default from the environment, the
// way the drivers do, so CI's RDGC_GC_LAB=1 fuzz pass drives the buffered
// evacuation path on every heap the harness builds. (Worker counts flow
// through fuzzGCWorkers instead, which lets the fuzzer explore them.)
func TestMain(m *testing.M) {
	heap.SetDefaultGCLAB(heap.GCLABFromEnv())
	os.Exit(m.Run())
}

// seedPrograms are the hand-written corpus: each stresses a different slice
// of the op space. The same programs are checked in under
// testdata/fuzz/FuzzCollectors (regenerate with `go test -run TestWriteSeedCorpus
// -write-seeds` after changing them), where plain `go test` replays them as
// regression inputs and `go test -fuzz` mutates them.
func seedPrograms() [][]byte {
	zeros := make([]byte, 64)
	ramp := make([]byte, 256)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	gcHeavy := bytes.Repeat([]byte{0, 1, 2, 3, 12, 0, 5, 9, 14, 8, 8, 13}, 16)
	boxes := bytes.Repeat([]byte{10, 1, 2, 3, 11, 4, 5, 6}, 24)
	churnVerify := bytes.Repeat([]byte{8, 12, 13}, 40)
	mixed := make([]byte, 1024)
	for i := range mixed {
		mixed[i] = byte(i*37 + 11)
	}
	// tenureChurn builds structure and churns without forcing majors, so
	// nursery pressure drives many minors and survivors age several rounds
	// before the threshold catches them (byte 2 selects threshold 6 in the
	// tenured replay pass).
	tenureChurn := bytes.Repeat([]byte{0, 1, 2, 3, 8, 5, 9, 8, 8, 13}, 40)
	// agingWave is mutator ops only — every collection is allocation
	// triggered, the regime where retained survivors ride the nursery flip
	// over and over.
	agingWave := make([]byte, 512)
	for i := range agingWave {
		agingWave[i] = byte((i*7 + 3) % 12)
	}
	return [][]byte{zeros, ramp, gcHeavy, boxes, churnVerify, mixed, tenureChurn, agingWave}
}

// censusFor derives the census mode from the program so the fuzzer explores
// both heap layouts by flipping one byte.
func censusFor(prog []byte) bool {
	return len(prog) > 0 && prog[0]&1 == 0
}

func FuzzCollectors(f *testing.F) {
	for _, p := range seedPrograms() {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, prog []byte) {
		census := censusFor(prog)
		if err := RunAll(prog, census); err != nil {
			t.Fatal(err)
		}
		if err := RunAllAt(prog, census, fuzzGCWorkers(prog)); err != nil {
			t.Fatalf("parallel tracing: %v", err)
		}
		if err := RunAllIncr(prog, census); err != nil {
			t.Fatalf("incremental: %v", err)
		}
		if err := RunAllTenured(prog, census, fuzzTenure(prog)); err != nil {
			t.Fatalf("tenured: %v", err)
		}
		if err := RunAllAdaptive(prog, census); err != nil {
			t.Fatalf("adaptive: %v", err)
		}
	})
}

// fuzzTenure picks the tenured pass's promotion threshold: RDGC_GC_TENURE
// when set (so CI can pin one), else derived from the program bytes so the
// fuzzer explores the interesting thresholds including never-promote.
func fuzzTenure(prog []byte) int {
	if n := heap.GCTenureFromEnv(); n > 1 {
		return n
	}
	choices := [5]int{2, 3, 6, 15, heap.TenureNever}
	if len(prog) < 3 {
		return choices[0]
	}
	return choices[prog[2]%5]
}

// fuzzGCWorkers picks the parallel pass's worker count: RDGC_GC_WORKERS
// when set (so CI can pin gcworkers=4 under -race), else derived from the
// program bytes so the fuzzer itself explores {1, 2, 4, 8}.
func fuzzGCWorkers(prog []byte) int {
	if n := heap.GCWorkersFromEnv(); n > 0 {
		return n
	}
	counts := [4]int{1, 2, 4, 8}
	if len(prog) < 2 {
		return counts[0]
	}
	return counts[prog[1]%4]
}

// TestSeedCorpus replays every checked-in corpus file through every
// collector in both census modes, exercising the codec along the way.
func TestSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCollectors")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading seed corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus is empty")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := UnmarshalCorpus(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for _, census := range []bool{false, true} {
			if err := RunAll(prog, census); err != nil {
				t.Errorf("%s (census=%v): %v", e.Name(), census, err)
			}
			if err := RunAllAt(prog, census, 4); err != nil {
				t.Errorf("%s (census=%v, gcworkers=4): %v", e.Name(), census, err)
			}
			if err := RunAllIncr(prog, census); err != nil {
				t.Errorf("%s (census=%v, incremental): %v", e.Name(), census, err)
			}
			if err := RunAllTenured(prog, census, 6); err != nil {
				t.Errorf("%s (census=%v, tenure=6): %v", e.Name(), census, err)
			}
			if err := RunAllAdaptive(prog, census); err != nil {
				t.Errorf("%s (census=%v, adaptive): %v", e.Name(), census, err)
			}
		}
	}
}

var writeSeeds = os.Getenv("GCFUZZ_WRITE_SEEDS") != ""

// TestWriteSeedCorpus regenerates the checked-in corpus files from
// seedPrograms when GCFUZZ_WRITE_SEEDS is set; otherwise it verifies that
// the files match the programs, so the two never drift apart.
func TestWriteSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCollectors")
	for i, p := range seedPrograms() {
		path := filepath.Join(dir, filepathSeedName(i))
		want := MarshalCorpus(p)
		if writeSeeds {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (set GCFUZZ_WRITE_SEEDS=1 to regenerate)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is out of date (set GCFUZZ_WRITE_SEEDS=1 to regenerate)", path)
		}
	}
}

func filepathSeedName(i int) string {
	names := []string{"seed-zeros", "seed-ramp", "seed-gc-heavy", "seed-boxes", "seed-churn-verify", "seed-mixed",
		"seed-tenure-churn", "seed-aging-wave"}
	return names[i]
}

// ageCorrupter hijacks the program's first collect op once an aged object
// exists: instead of collecting, it bumps one live object's side-table age
// by one and swallows this and every later collect op, so only allocation-
// triggered minor collections follow — the next of which must trip the age
// oracle on the corrupted entry.
type ageCorrupter struct {
	heap.Collector
	h    *heap.Heap
	ten  heap.Tenurer
	done bool
}

func (a *ageCorrupter) Collect() {
	if a.done {
		return
	}
	for _, s := range a.ten.YoungSpaces() {
		heap.WalkSpace(s, func(off int, hdr heap.Word) bool {
			if age := s.AgeAt(off); age > 0 && age < heap.MaxObjectAge {
				s.SetAgeAt(off, age+1)
				a.done = true
				return false
			}
			return true
		})
		if a.done {
			return
		}
	}
	a.Collector.Collect()
}

// TestTenuredRunDetectsBadAge is the regression guard for the tenured fuzz
// harness: a single corrupted age entry in a side table must surface as a
// run failure through the age oracle.
func TestTenuredRunDetectsBadAge(t *testing.T) {
	prog := seedPrograms()[6] // seed-tenure-churn: minors retain and age survivors
	corr := &ageCorrupter{}
	mk := func(h *heap.Heap) heap.Collector {
		return generational.New(h, 1024, 16384, generational.WithExpansion(2))
	}
	wrap := func(h *heap.Heap, c heap.Collector) heap.Collector {
		corr.h, corr.Collector = h, c
		corr.ten = c.(heap.Tenurer)
		return corr
	}
	_, err := runWith(prog, mk, false, wrap, 0, false, func(h *heap.Heap) {
		h.SetGCTenure(heap.TenureNever)
	})
	if !corr.done {
		t.Fatal("the program never retained an aged object to corrupt")
	}
	if err == nil {
		t.Fatal("a corrupted side-table age went undetected")
	}
	t.Logf("detected as: %v", err)
}

func TestRunDeterministic(t *testing.T) {
	prog := seedPrograms()[5]
	for _, nc := range Collectors() {
		a, err := Run(prog, nc.New, true)
		if err != nil {
			t.Fatalf("%s: %v", nc.Name, err)
		}
		b, err := Run(prog, nc.New, true)
		if err != nil {
			t.Fatalf("%s: %v", nc.Name, err)
		}
		if a != b {
			t.Errorf("%s: two runs of the same program diverged: %+v vs %+v", nc.Name, a, b)
		}
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	for _, p := range seedPrograms() {
		got, err := UnmarshalCorpus(MarshalCorpus(p))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("round trip changed program: %v -> %v", p, got)
		}
	}
	// Raw bytes pass through untouched.
	raw := []byte{1, 2, 3}
	got, err := UnmarshalCorpus(raw)
	if err != nil || !bytes.Equal(got, raw) {
		t.Errorf("raw program mangled: %v, %v", got, err)
	}
}

func TestMinimize(t *testing.T) {
	prog := make([]byte, 300)
	for i := range prog {
		prog[i] = byte(i)
	}
	prog[137] = 0x2a
	fails := func(p []byte) bool { return bytes.IndexByte(p, 0x2a) >= 0 }
	min := Minimize(prog, fails)
	if !fails(min) {
		t.Fatal("minimized program no longer fails")
	}
	if len(min) != 1 || min[0] != 0x2a {
		t.Errorf("minimized to %v, want [42]", min)
	}
}

func TestByteSourceExhaustion(t *testing.T) {
	src := &byteSource{data: []byte{7}}
	if got := src.Intn(16); got != 7 {
		t.Errorf("Intn = %d, want 7", got)
	}
	if !src.done() {
		t.Error("source should be exhausted")
	}
	if got := src.Intn(16); got != 0 {
		t.Errorf("exhausted Intn = %d, want 0", got)
	}
	if got := src.Int63n(1000); got != 0 {
		t.Errorf("exhausted Int63n = %d, want 0", got)
	}
	big := &byteSource{data: []byte{1, 1}}
	if got := big.Intn(1000); got != 257 {
		t.Errorf("two-byte Intn = %d, want 257", got)
	}
}
