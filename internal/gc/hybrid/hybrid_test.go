package hybrid

import (
	"testing"

	"rdgc/internal/core"
	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

func TestStress(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024)
	gctest.StressCollector(t, h, c)
}

func TestStressWithCensus(t *testing.T) {
	h := heap.New(heap.WithCensus())
	c := New(h, 512, 8, 1024)
	gctest.StressCollector(t, h, c)
}

func TestStressFixedJ(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024, WithPolicy(core.FixedJ(2)))
	gctest.StressCollector(t, h, c)
}

func TestStressSSB(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024, WithRemsets(remset.NewSSB(), remset.NewSSB()))
	gctest.StressCollector(t, h, c)
}

func TestStressWithGrowth(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 4, 512, WithGrowth())
	gctest.StressCollector(t, h, c)
}

func TestPromotionMovesEverythingOutOfNursery(t *testing.T) {
	h := heap.New()
	c := New(h, 256, 8, 1024)
	s := h.Scope()
	defer s.Close()
	list := gctest.BuildList(h, 10)
	gctest.Churn(h, 1000) // forces promoting collections
	gctest.CheckList(t, h, list, 10)
	if heap.PtrSpace(h.Get(list)) == c.nursery.ID {
		t.Error("survivor still in nursery")
	}
	if c.GCStats().WordsPromoted == 0 {
		t.Error("no promotion recorded")
	}
}

func TestRemsetAPreservesNurseryObject(t *testing.T) {
	h := heap.New()
	c := New(h, 256, 8, 1024)
	s := h.Scope()
	defer s.Close()

	holder := h.Cons(h.Fix(1), h.Null())
	c.Collect() // moves holder into the dynamic area, empties nursery
	if heap.PtrSpace(h.Get(holder)) == c.nursery.ID {
		t.Fatal("holder not promoted")
	}
	func() {
		s2 := h.Scope()
		defer s2.Close()
		young := h.Cons(h.Fix(55), h.Null())
		h.SetCar(holder, young)
	}()
	if a, _ := c.RemsetLens(); a == 0 {
		t.Fatal("barrier missed dynamic-to-nursery store")
	}
	gctest.Churn(h, 1000)
	got := h.Car(holder)
	if !h.IsPair(got) || h.FixVal(h.Car(got)) != 55 {
		t.Error("nursery object referenced only from dynamic area was lost")
	}
}

func TestNpCollectEmptiesNursery(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024)
	s := h.Scope()
	defer s.Close()
	keep := h.Cons(h.Fix(3), h.Null())
	if heap.PtrSpace(h.Get(keep)) != c.nursery.ID {
		t.Fatal("setup: object not in nursery")
	}
	c.Collect()
	if c.nursery.Used() != 0 {
		t.Error("nursery not empty after non-predictive collection")
	}
	if heap.PtrSpace(h.Get(keep)) == c.nursery.ID {
		t.Error("live nursery object not promoted by non-predictive collection")
	}
	if v := h.FixVal(h.Car(keep)); v != 3 {
		t.Errorf("object corrupted: %d", v)
	}
}

func TestSituation5EntersRemsetB(t *testing.T) {
	// Promote an object into steps 1..j while it points into steps j+1..k:
	// the promotion scan must put it in remembered set B, which must keep
	// its referent alive across the next non-predictive collection even
	// after every direct root to the referent is dropped.
	h := heap.New()
	c := New(h, 256, 6, 512, WithPolicy(core.FixedJ(2)), WithGrowth())
	s := h.Scope()
	defer s.Close()

	old := h.Cons(h.Fix(77), h.Null())
	c.Collect() // old lands in the dynamic area's old region
	if !c.st.InOld(h.Get(old)) {
		t.Fatalf("setup: object at position %d not in old region (j=%d)",
			c.st.PosOf(h.Get(old)), c.st.J())
	}

	// Fill the old-region steps with *live* filler so subsequent
	// promotions are forced down into steps 1..j, keeping only every
	// fourth pair alive so the eventual collection has room.
	filler := h.MakeVector(64, h.Null())
	slot := 0
	fill := func() {
		p := h.Cons(h.Fix(int64(slot)), h.Null())
		if slot%4 == 0 {
			h.VectorSet(filler, (slot/4)%64, p)
		}
		h.Set(p, heap.NullWord)
		slot++
	}
	majorsAtSetup := c.GCStats().MajorCollections
	oldFree := func() int {
		n := 0
		for p := c.st.J(); p < c.st.K(); p++ {
			n += c.st.Step(p).Free()
		}
		return n
	}
	// Until the old region cannot absorb a full nursery, so the next
	// promoting collection must choose the young steps.
	for oldFree() >= c.nursery.Cap() {
		fill()
		if c.GCStats().MajorCollections > majorsAtSetup {
			t.Fatal("setup: non-predictive collection ran before steps 1..j were exercised")
		}
	}

	// Now create the holder in the nursery and force a promoting
	// collection: with all old-region steps full it must land in
	// steps 1..j while pointing at old.
	holder := h.Cons(old, h.Null())
	for heap.PtrSpace(h.Get(holder)) == c.nursery.ID {
		fill()
	}
	pos := c.st.PosOf(h.Get(holder))
	if pos < 0 || pos >= c.st.J() {
		t.Fatalf("holder promoted to position %d, want < j=%d", pos, c.st.J())
	}
	if _, b := c.RemsetLens(); b == 0 {
		t.Fatal("situation 5 promotion did not enter remembered set B")
	}

	h.Set(old, heap.NullWord) // drop the direct root to the referent
	c.Collect()               // non-predictive collection of steps j+1..k
	got := h.Car(holder)
	if !h.IsPair(got) || h.FixVal(h.Car(got)) != 77 {
		t.Error("object reachable only through a promoted young-step object was lost")
	}
}

func TestLargeObjectGoesToDynamicArea(t *testing.T) {
	h := heap.New()
	c := New(h, 256, 8, 1024)
	s := h.Scope()
	defer s.Close()
	v := h.MakeVector(300, h.Null())
	if heap.PtrSpace(h.Get(v)) == c.nursery.ID {
		t.Error("large object in nursery")
	}
	if c.st.PosOf(h.Get(v)) < 0 {
		t.Error("large object not in a dynamic step")
	}
}

func TestGrowthUnderLiveLoad(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 4, 512, WithGrowth())
	s := h.Scope()
	defer s.Close()
	list := gctest.BuildList(h, 3000)
	gctest.CheckList(t, h, list, 3000)
	if c.st.K() <= 4 {
		t.Errorf("dynamic area did not grow: k = %d", c.st.K())
	}
}

// A promoting collection that places nursery survivors in the old region
// turns set-A entries (young-step objects pointing into the nursery) into
// young-step objects pointing into steps j+1..k — exactly what set B must
// cover, or the next non-predictive collection leaves their slots dangling.
func TestPromotionIntoOldStepsMigratesSetAToSetB(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024, WithGrowth(), WithPolicy(core.FixedJ(2)))
	s := h.Scope()
	defer s.Close()

	// Fill the six old-region steps with 301-word vectors (three per step)
	// so the next large allocation descends into young position 1, which
	// FixedJ(2) never collects.
	for i := 0; i < 18; i++ {
		func() {
			sc := h.Scope()
			defer sc.Close()
			h.MakeVector(300, h.Null())
		}()
	}
	vec := h.MakeVector(300, h.Null())
	if pos := c.st.PosOf(h.Get(vec)); pos != 1 {
		t.Fatalf("probe vector landed at step position %d, want 1 (young)", pos)
	}

	// Store a nursery object into the young vector: a set-A entry whose
	// only reference to the cons is the young-step slot.
	func() {
		sc := h.Scope()
		defer sc.Close()
		h.VectorSet(vec, 0, h.Cons(h.Fix(42), h.Null()))
	}()
	if a, _ := c.RemsetLens(); a == 0 {
		t.Fatal("barrier missed young-step-to-nursery store")
	}

	c.minor() // promotes the cons into the old region
	if _, b := c.RemsetLens(); b == 0 {
		t.Fatal("promotion into the old region did not migrate the set-A entry to set B")
	}

	c.Collect() // non-predictive collection of steps j+1..k
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
	elem := h.VectorRef(vec, 0)
	if !h.IsPair(elem) || h.FixVal(h.Car(elem)) != 42 {
		t.Error("object reachable only through a young-step slot was lost")
	}
}
