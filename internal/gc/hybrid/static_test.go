package hybrid

import (
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

func TestPromoteAllToStatic(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024)
	s := h.Scope()
	defer s.Close()

	list := gctest.BuildList(h, 50)
	tree := gctest.BuildTree(h, 5)
	gctest.Churn(h, 2000)

	c.PromoteAllToStatic()

	if c.nursery.Used() != 0 {
		t.Error("nursery not empty after full collection")
	}
	if c.st.LiveStepWords() != 0 {
		t.Error("dynamic area not empty after full collection")
	}
	if c.StaticWords() == 0 {
		t.Error("nothing promoted to the static area")
	}
	if a, b := c.RemsetLens(); a != 0 || b != 0 {
		t.Errorf("remembered sets not emptied: %d, %d", a, b)
	}
	gctest.CheckList(t, h, list, 50)
	if got := gctest.CountLeaves(h, tree); got != 32 {
		t.Errorf("tree corrupted: %d leaves", got)
	}
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
}

func TestStaticObjectsNeverMove(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024)
	s := h.Scope()
	defer s.Close()

	p := h.Cons(h.Fix(1), h.Null())
	c.PromoteAllToStatic()
	addr := h.Get(p)
	if !c.inStatic[heap.PtrSpace(addr)] {
		t.Fatal("object not in static area after full collection")
	}
	gctest.Churn(h, 20000)
	c.Collect()
	if h.Get(p) != addr {
		t.Error("static object moved")
	}
}

func TestStaticToNurseryPointerIsRemembered(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024)
	s := h.Scope()
	defer s.Close()

	holder := h.Cons(h.Null(), h.Null())
	c.PromoteAllToStatic()

	// Store a nursery pointer into the static object; drop every direct
	// root so the remembered set is the only path.
	func() {
		s2 := h.Scope()
		defer s2.Close()
		young := h.Cons(h.Fix(7), h.Null())
		h.SetCar(holder, young)
	}()
	if a, _ := c.RemsetLens(); a == 0 {
		t.Fatal("barrier missed static-to-nursery store")
	}
	gctest.Churn(h, 2000) // minors promote; the referent must survive
	got := h.Car(holder)
	if !h.IsPair(got) || h.FixVal(h.Car(got)) != 7 {
		t.Error("object referenced only from the static area was lost")
	}
}

func TestStaticToDynamicPointerSurvivesNpCollection(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024)
	s := h.Scope()
	defer s.Close()

	holder := h.Cons(h.Null(), h.Null())
	c.PromoteAllToStatic()

	// Create a dynamic-area object referenced only from the static area,
	// then force a non-predictive collection.
	func() {
		s2 := h.Scope()
		defer s2.Close()
		obj := h.Cons(h.Fix(99), h.Null())
		c.Collect() // moves obj into the dynamic area
		h.SetCar(holder, obj)
	}()
	if _, b := c.RemsetLens(); b == 0 {
		t.Fatal("barrier missed static-to-dynamic store")
	}
	c.Collect()
	got := h.Car(holder)
	if !h.IsPair(got) || h.FixVal(h.Car(got)) != 99 {
		t.Error("dynamic object referenced only from the static area was lost")
	}
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
}

func TestSecondFullCollection(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024)
	s := h.Scope()
	defer s.Close()

	list := gctest.BuildList(h, 20)
	c.PromoteAllToStatic()
	more := gctest.BuildList(h, 30)
	c.PromoteAllToStatic()

	gctest.CheckList(t, h, list, 20)
	gctest.CheckList(t, h, more, 30)
	if len(c.statics) != 2 {
		t.Errorf("expected 2 static spaces, have %d", len(c.statics))
	}
	// The first static space's survivors stayed put; only the second full
	// collection's victims were copied into the second space.
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
}

func TestFullCollectionWithEmptyHeap(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8, 1024)
	c.PromoteAllToStatic() // must not panic with nothing live
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
}
