// Package hybrid implements the Larceny-style composition of Section 8: a
// conventional stop-and-copy ephemeral area (nursery) whose promoting
// collections move *all* live objects into a non-predictive dynamic area
// managed by the step machinery of internal/core.
//
// Two remembered sets are kept separate, as §8.4 prescribes: set A records
// dynamic-area objects that point into the ephemeral area (situations 3),
// and set B records objects in steps 1..j that point into steps j+1..k
// (situations 5 and 6). Situation 5 is detected when promotion places
// objects into steps 1..j; situations 1, 2 and 4 cannot arise because
// promoting collections empty the nursery and the recommended j policy
// keeps steps 1..j empty after a non-predictive collection.
package hybrid

import (
	"fmt"

	"rdgc/internal/core"
	"rdgc/internal/heap"
	"rdgc/internal/policy"
	"rdgc/internal/remset"
)

// Collector is the hybrid ephemeral + non-predictive collector.
type Collector struct {
	h       *heap.Heap
	nursery *heap.Space
	st      *core.Steps

	rsA remset.Set // dynamic/static objects pointing into the nursery
	rsB remset.Set // steps-1..j or static objects pointing into the steps

	// statics are the never-collected spaces that explicit full
	// collections (§8.4) promote all live storage into.
	statics  []*heap.Space
	inStatic map[heap.SpaceID]bool

	policy    core.JPolicy
	allowGrow bool

	// Persistent machinery for the collection hot paths, created once in New
	// so steady-state promoting collections allocate nothing: the Cheney
	// engine (re-armed with SetFrom per collection), the remembered-set
	// root visitors, and a reusable target-list buffer.
	evac        *heap.Evacuator
	rsARoot     func(obj heap.Word)
	promoRegion func(s *heap.Space, from, to int)
	npScan      func(obj heap.Word)
	npExtra     func(evac func(slot *heap.Word))
	npEvac      func(slot *heap.Word)
	rememberB   func(obj heap.Word)
	rsAPromoted func(obj heap.Word)
	staticKeep  func(obj heap.Word)
	targetsBuf  []*heap.Space
	staticBuf   []heap.Word

	stats heap.GCStats

	// Age-based tenuring (heap/tenure.go): promoting collections retain
	// under-threshold survivors in the nurseryTo shadow instead of moving
	// them to the dynamic area. All nil/zero under the default threshold
	// of 1, where minor() runs the wholesale §8.4 path unchanged.
	threshold int
	trigger   int
	carry     int
	nurseryTo *heap.Space
	youngBuf  []*heap.Space
	keepBuf   []heap.Word
	rsARootTen func(obj heap.Word)
	ctrl      *policy.Controller
	adaptOn   bool
}

// Option configures the collector.
type Option func(*Collector)

// WithPolicy substitutes the j policy (default core.Recommended).
func WithPolicy(p core.JPolicy) Option { return func(c *Collector) { c.policy = p } }

// WithRemsets substitutes both remembered-set representations.
func WithRemsets(a, b remset.Set) Option {
	return func(c *Collector) { c.rsA, c.rsB = a, b }
}

// WithGrowth permits the dynamic area to grow (by whole steps) when
// survivors overflow a non-predictive collection or promotion cannot fit.
func WithGrowth() Option { return func(c *Collector) { c.allowGrow = true } }

// WithTenure sets the promotion threshold explicitly, overriding the
// heap's GCTenure setting (1 = wholesale, heap.TenureNever = never).
func WithTenure(threshold int) Option {
	if threshold < 1 {
		panic("hybrid: tenure threshold must be at least 1")
	}
	return func(c *Collector) { c.threshold = threshold }
}

// WithAdaptive puts the threshold and nursery trigger under the
// internal/policy feedback controller, overriding the heap's GCAdaptive
// setting.
func WithAdaptive() Option {
	return func(c *Collector) { c.adaptOn = true }
}

// New creates a hybrid collector with the given nursery size and k dynamic
// steps of stepWords each, installing itself as h's allocator and barrier.
func New(h *heap.Heap, nurseryWords, k, stepWords int, opts ...Option) *Collector {
	if nurseryWords/2 > stepWords {
		panic("hybrid: step size must be at least half the nursery size so any promoted object fits a step")
	}
	c := &Collector{
		h:        h,
		nursery:  h.NewSpace("nursery", nurseryWords),
		st:       core.NewSteps(h, k, stepWords),
		rsA:      remset.NewHashSet(),
		rsB:      remset.NewHashSet(),
		inStatic: make(map[heap.SpaceID]bool),
		policy:   core.Recommended{},
	}
	for _, o := range opts {
		o(c)
	}
	c.evac = heap.NewEvacuator(h, nil)
	c.rsARoot = func(obj heap.Word) {
		c.stats.RemsetScanned++
		heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), c.evac.Slot())
	}
	c.promoRegion = func(s *heap.Space, from, to int) { c.scanPromoted(s, from) }
	c.npScan = func(obj heap.Word) {
		// Remembered objects in the uncollected steps 1..j may hold the only
		// pointers into the nursery (set A) or into steps j+1..k (set B);
		// their fields are roots. Entries located inside the collected region
		// must be skipped: they are scanned when copied, and their old
		// headers may already hold forwarding pointers.
		if c.st.InOld(obj) || heap.PtrSpace(obj) == c.nursery.ID {
			return
		}
		c.stats.RemsetScanned++
		heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), c.npEvac)
	}
	c.npExtra = func(evac func(slot *heap.Word)) {
		c.npEvac = evac
		c.rsA.ForEach(c.npScan)
		c.rsB.ForEach(c.npScan)
		c.npEvac = nil
	}
	c.rememberB = c.rsB.Remember
	c.rsAPromoted = func(obj heap.Word) {
		// A promoting collection moves every nursery referent into the
		// steps, so a set-A entry may now hold pointers that set B must
		// track: young-step objects pointing into steps j+1..k, and static
		// objects pointing into any step. The entry itself never moves (set
		// A records objects *outside* the nursery), so its updated slots can
		// be rescanned in place.
		if c.st.InYoung(obj) {
			if c.pointsInto(obj, c.st.InOld) {
				c.rsB.Remember(obj)
			}
			return
		}
		if c.inStatic[heap.PtrSpace(obj)] && c.pointsInto(obj, c.inAnyStep) {
			c.rsB.Remember(obj)
		}
	}
	c.staticKeep = func(obj heap.Word) {
		if c.inStatic[heap.PtrSpace(obj)] && c.pointsInto(obj, c.inAnyStep) {
			c.staticBuf = append(c.staticBuf, obj)
		}
	}
	c.st.SetJ(c.policy.ChooseJ(k, k))
	if c.threshold == 0 {
		c.threshold = h.GCTenure()
	}
	if !c.adaptOn {
		c.adaptOn = h.GCAdaptive()
	}
	c.trigger = nurseryWords
	if c.adaptOn {
		c.ctrl = policy.New(policy.Config{})
	}
	if c.threshold > 1 || c.ctrl != nil {
		c.nurseryTo = h.NewSpace("nursery-to", nurseryWords)
		c.nursery.EnsureAgeTable()
		c.nurseryTo.EnsureAgeTable()
		c.youngBuf = []*heap.Space{c.nurseryTo}
		c.rsARootTen = func(obj heap.Word) {
			c.stats.RemsetScanned++
			heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), c.evac.SlotTenured())
		}
	}
	h.SetAllocator(c)
	h.SetBarrier(c)
	return c
}

// tenured reports whether promoting collections run the age-routing engine.
func (c *Collector) tenured() bool { return c.nurseryTo != nil }

// TenureThreshold implements heap.Tenurer.
func (c *Collector) TenureThreshold() int { return c.threshold }

// YoungSpaces implements heap.Tenurer: the nursery, then the survivor
// shadow when tenuring is armed.
func (c *Collector) YoungSpaces() []*heap.Space {
	if c.nurseryTo == nil {
		return []*heap.Space{c.nursery}
	}
	return []*heap.Space{c.nursery, c.nurseryTo}
}

// Adaptive implements heap.Tenurer.
func (c *Collector) Adaptive() bool { return c.ctrl != nil }

// Name implements heap.Collector.
func (c *Collector) Name() string { return "hybrid (ephemeral + non-predictive)" }

// GCStats implements heap.Collector.
func (c *Collector) GCStats() *heap.GCStats { return &c.stats }

// Steps exposes the dynamic-area machinery for tests and experiments.
func (c *Collector) Steps() *core.Steps { return c.st }

// Live returns the words in use in the nursery, dynamic area, and static
// area.
func (c *Collector) Live() int {
	return c.nursery.Used() + c.st.LiveStepWords() + c.StaticWords()
}

// RemsetLens returns the current sizes of remembered sets A and B.
func (c *Collector) RemsetLens() (a, b int) { return c.rsA.Len(), c.rsB.Len() }

// VerifySpec implements heap.Verifiable: the nursery, the k steps, and the
// static spaces are live (shadows are scratch), and the two remembered sets
// must cover the §8.4 situations the write barrier records — set A for
// pointers into the nursery from outside it, set B for young-step pointers
// into the collected steps and static pointers into any step.
func (c *Collector) VerifySpec() heap.VerifySpec {
	live := []*heap.Space{c.nursery}
	for p := 0; p < c.st.K(); p++ {
		live = append(live, c.st.Step(p))
	}
	live = append(live, c.statics...)
	return heap.VerifySpec{
		Live: live,
		Remsets: []heap.RemsetRule{{
			Name: "A: outside->nursery",
			Needs: func(obj, val heap.Word) bool {
				return heap.PtrSpace(obj) != c.nursery.ID && heap.PtrSpace(val) == c.nursery.ID
			},
			Has: c.rsA.Contains,
		}, {
			Name: "B: young->old, static->step",
			Needs: func(obj, val heap.Word) bool {
				if c.st.InYoung(obj) && c.st.InOld(val) {
					return true
				}
				return c.inStatic[heap.PtrSpace(obj)] && c.st.PosOf(val) >= 0
			},
			Has: c.rsB.Contains,
		}},
	}
}

// RecordWrite implements heap.Barrier. Set A records pointers into the
// nursery from anywhere outside it; set B records pointers into the
// collected steps from the uncollected young steps (situations 5 and 6)
// and pointers into *any* step from the static area, which explicit full
// collections also need as roots.
func (c *Collector) RecordWrite(obj, val heap.Word) {
	if !heap.IsPtr(val) {
		return
	}
	if heap.PtrSpace(val) == c.nursery.ID {
		if heap.PtrSpace(obj) != c.nursery.ID {
			c.rsA.Remember(obj)
		}
		return
	}
	if c.st.InYoung(obj) && c.st.InOld(val) {
		c.rsB.Remember(obj)
		return
	}
	if c.inStatic[heap.PtrSpace(obj)] && c.st.PosOf(val) >= 0 {
		c.rsB.Remember(obj)
	}
}

// AllocRaw implements heap.Allocator. Objects too large for the nursery are
// allocated directly in the dynamic area.
func (c *Collector) AllocRaw(t heap.Type, payload int) heap.Word {
	total := 1 + payload + c.h.ExtraWords()
	if total > c.nursery.Cap()/2 {
		return c.allocDynamic(t, payload, total)
	}
	if c.nursery.Top+total > c.trigger {
		// Same condition as a failed Bump when the trigger sits at the
		// nursery cap (the wholesale default); the adaptive controller may
		// pull it lower.
		c.minor()
	}
	off, ok := c.nursery.Bump(total)
	if !ok && c.tenured() {
		// Retained survivors can leave too little room even after a
		// promoting collection; a non-predictive collection empties the
		// nursery wholesale and guarantees progress.
		c.npCollect()
		off, ok = c.nursery.Bump(total)
	}
	if !ok {
		panic(fmt.Sprintf("hybrid: nursery cannot hold %d words", total))
	}
	return c.h.InitObject(c.nursery, off, t, payload)
}

func (c *Collector) allocDynamic(t heap.Type, payload, total int) heap.Word {
	if total > c.st.StepWords {
		panic(fmt.Sprintf("hybrid: object of %d words exceeds the step size %d", total, c.st.StepWords))
	}
	for attempt := 0; ; attempt++ {
		if s, off, ok := c.st.Bump(total); ok {
			w := c.h.InitObject(s, off, t, payload)
			return w
		}
		if attempt > 0 {
			if !c.allowGrow {
				panic("hybrid: dynamic area full immediately after collection")
			}
			c.st.AddSteps(1)
			continue
		}
		c.npCollect()
	}
}

// minor runs a promoting collection. Following §8.4, Larceny decides up
// front whether *all* survivors go into the generation comprising steps
// j+1..k or all into steps 1..j — never some into each. The old region is
// preferred; when it lacks worst-case headroom the survivors go to the
// young steps (creating situation-5 remembered-set entries); when neither
// region alone has room, a non-predictive collection (which itself empties
// the nursery) runs instead.
func (c *Collector) minor() {
	if c.tenured() {
		c.minorTenured()
		return
	}
	var targets []*heap.Space
	intoYoung := false
	if free := c.regionFree(c.st.J(), c.st.K()); free >= c.nursery.Used() {
		targets = c.regionTargets(c.st.J(), c.st.K())
	} else if free := c.regionFree(0, c.st.J()); free >= c.nursery.Used() {
		targets = c.regionTargets(0, c.st.J())
		intoYoung = true
	} else {
		c.npCollect()
		return
	}
	e := c.evac
	e.SetFrom(c.nursery)
	e.Begin(targets...)
	e.EvacuateRoots()
	c.rsA.ForEach(c.rsARoot)
	e.Drain()

	// Promotion turned nursery pointers held by set-A entries into step
	// pointers; migrate the entries that set B must now cover before the
	// set empties (the transition §8.4 calls situation 3 becoming 5 or 6).
	c.rsA.ForEach(c.rsAPromoted)

	c.nursery.Reset()
	c.rsA.Clear() // the nursery is empty; no pointers into it remain
	c.st.RecomputeAllocIdx()

	if intoYoung {
		// Situation 5: promoted objects pointing into steps j+1..k enter
		// remembered set B. Only the freshly copied regions need scanning,
		// and the paper notes the marginal cost of this test is small.
		e.CopiedRegions(c.promoRegion)
	}

	c.stats.Collections++
	c.stats.WordsCopied += e.WordsCopied
	c.stats.WordsPromoted += e.WordsCopied
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.notePeaks()
	c.h.AfterGC()
}

// minorTenured runs a promoting collection with age routing: survivors
// younger than the threshold flip into the nursery shadow, the rest go to
// the dynamic area under the same all-into-old / all-into-young region
// decision the wholesale path makes. Because retained survivors stay in
// the (new) nursery, remembered set A is refiltered rather than cleared,
// and the freshly promoted regions are scanned for pointers back into it.
func (c *Collector) minorTenured() {
	var targets []*heap.Space
	intoYoung := false
	if free := c.regionFree(c.st.J(), c.st.K()); free >= c.nursery.Used() {
		targets = c.regionTargets(c.st.J(), c.st.K())
	} else if free := c.regionFree(0, c.st.J()); free >= c.nursery.Used() {
		targets = c.regionTargets(0, c.st.J())
		intoYoung = true
	} else {
		c.npCollect()
		return
	}
	fresh := c.nursery.Top - c.carry
	e := c.evac
	e.SetFrom(c.nursery)
	e.BeginTenured(c.threshold, c.youngBuf, targets...)
	e.EvacuateRootsTenured()
	c.rsA.ForEach(c.rsARootTen)
	e.DrainTenured()

	// Promotion turned some nursery pointers held by set-A entries into
	// step pointers; migrate the entries set B must now cover (the §8.4
	// situation 3 becoming 5 or 6). Entries themselves never move.
	c.rsA.ForEach(c.rsAPromoted)

	c.nursery.Reset()
	c.nursery, c.nurseryTo = c.nurseryTo, c.nursery
	c.youngBuf[0] = c.nurseryTo
	c.carry = c.nursery.Top
	c.refilterRsA()
	c.rememberPromoted()
	c.st.RecomputeAllocIdx()

	if intoYoung {
		// Situation 5: promoted objects pointing into steps j+1..k enter
		// remembered set B.
		e.CopiedRegions(c.promoRegion)
	}

	c.stats.Collections++
	c.stats.WordsCopied += e.WordsCopied
	c.stats.WordsPromoted += e.WordsPromoted
	c.stats.WordsTenured += e.WordsRetained
	c.stats.TenureThreshold = c.threshold
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.notePeaks()
	c.adapt(fresh, e)
	c.h.AfterGC()
}

// refilterRsA drops set-A entries that no longer point into the
// (post-flip) nursery. Entries live outside the nursery and do not move
// in a promoting collection, so survivors keep their addresses.
func (c *Collector) refilterRsA() {
	keep := c.keepBuf[:0]
	nurseryID := c.nursery.ID
	found := false
	probe := func(slot *heap.Word) {
		if !found && heap.IsPtr(*slot) && heap.PtrSpace(*slot) == nurseryID {
			found = true
		}
	}
	c.rsA.ForEach(func(obj heap.Word) {
		found = false
		heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), probe)
		if found {
			keep = append(keep, obj)
		}
	})
	c.rsA.Clear()
	for _, w := range keep {
		c.rsA.Remember(w)
	}
	c.keepBuf = keep[:0]
}

// rememberPromoted scans the objects this collection promoted into the
// dynamic area: any that reference a retained nursery survivor are
// outside-to-nursery pointers the barrier never saw (both ends moved
// during the collection), so they enter set A. Must run after the flip.
func (c *Collector) rememberPromoted() {
	nurseryID := c.nursery.ID
	found := false
	probe := func(slot *heap.Word) {
		if !found && heap.IsPtr(*slot) && heap.PtrSpace(*slot) == nurseryID {
			found = true
		}
	}
	c.evac.CopiedRegions(func(s *heap.Space, lo, hi int) {
		for off := lo; off < hi; {
			hdr := s.Mem[off]
			if heap.HeaderType(hdr) == heap.TFree {
				off += heap.ObjWords(hdr)
				continue
			}
			found = false
			heap.ScanObject(s, off, probe)
			if found {
				c.rsA.Remember(heap.PtrWord(s.ID, off))
			}
			off += heap.ObjWords(hdr)
		}
	})
}

// adapt feeds the policy controller one tenured promoting collection and
// applies its decision.
func (c *Collector) adapt(fresh int, e *heap.Evacuator) {
	if c.ctrl == nil {
		return
	}
	if fresh < 0 {
		fresh = 0
	}
	surv, retained := e.SurvivorsByAge()
	d := c.ctrl.Observe(policy.Observation{
		FreshWords:    uint64(fresh),
		SurvByAge:     *surv,
		RetainedByAge: *retained,
		PromotedWords: e.WordsPromoted,
		NurseryCap:    c.nursery.Cap(),
	})
	c.threshold = d.Threshold
	trigger := d.TriggerWords
	if trigger <= 0 || trigger > c.nursery.Cap() {
		trigger = c.nursery.Cap()
	}
	if floor := c.nursery.Top + c.nursery.Cap()/8; trigger < floor {
		trigger = floor
		if trigger > c.nursery.Cap() {
			trigger = c.nursery.Cap()
		}
	}
	c.trigger = trigger
	c.stats.PolicyAdaptations = c.ctrl.Adaptations()
	c.stats.TenureThreshold = c.threshold
}

// regionFree sums free words in logical step positions [lo, hi).
func (c *Collector) regionFree(lo, hi int) int {
	n := 0
	for p := lo; p < hi; p++ {
		n += c.st.Step(p).Free()
	}
	return n
}

// regionTargets returns the steps in positions [lo, hi) that have free
// space, highest-numbered first (the paper's promotion order). The result
// shares the collector's reusable buffer and is valid until the next call.
func (c *Collector) regionTargets(lo, hi int) []*heap.Space {
	out := c.targetsBuf[:0]
	for p := hi - 1; p >= lo; p-- {
		if c.st.Step(p).Free() > 0 {
			out = append(out, c.st.Step(p))
		}
	}
	c.targetsBuf = out
	return out
}

// inAnyStep reports whether pointer w targets any dynamic-area step.
func (c *Collector) inAnyStep(w heap.Word) bool { return c.st.PosOf(w) >= 0 }

// pointsInto reports whether the object obj contains a pointer satisfying
// the region predicate.
func (c *Collector) pointsInto(obj heap.Word, in func(heap.Word) bool) bool {
	found := false
	heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), func(slot *heap.Word) {
		if !found && heap.IsPtr(*slot) && in(*slot) {
			found = true
		}
	})
	return found
}

// scanPromoted adds to remembered set B the objects in s between offsets
// from and s.Top that contain a pointer into steps j+1..k.
func (c *Collector) scanPromoted(s *heap.Space, from int) {
	for off := from; off < s.Top; {
		hdr := s.Mem[off]
		if heap.HeaderType(hdr) == heap.TFree {
			// Allocation-buffer filler left by a parallel copy: dead space,
			// nothing to remember.
			off += heap.ObjWords(hdr)
			continue
		}
		found := false
		heap.ScanObject(s, off, func(slot *heap.Word) {
			if !found && heap.IsPtr(*slot) && c.st.InOld(*slot) {
				found = true
			}
		})
		if found {
			c.rsB.Remember(heap.PtrWord(s.ID, off))
		}
		off += heap.ObjWords(hdr)
	}
}

// npCollect runs one non-predictive collection of steps j+1..k, evacuating
// the nursery along with it ("a non-predictive collection always promotes
// all live objects out of the ephemeral area", §8.4).
func (c *Collector) npCollect() {
	copied := c.st.Collect(c.nursery, c.npExtra, c.allowGrow)

	c.nursery.Reset()
	c.rsA.Clear()
	// ScanYoungForOldPointers below rebuilds only the young-step half of
	// set B; static-area entries must survive the clear, since statics are
	// never rescanned wholesale and their step pointers (updated in place
	// by the collection) stay live across the renaming.
	c.staticBuf = c.staticBuf[:0]
	c.rsB.ForEach(c.staticKeep)
	c.rsB.Clear()
	for _, obj := range c.staticBuf {
		c.rsB.Remember(obj)
	}
	if c.allowGrow {
		// Keep the dynamic area's load factor sane: a collection that
		// frees less than a third of the steps (or less than two nursery
		// loads) would otherwise run again almost immediately.
		for c.st.FreeWords() < c.st.K()*c.st.StepWords/3 ||
			c.st.FreeWords() < 2*c.nursery.Cap() {
			c.st.AddSteps(1)
		}
	}
	c.st.SetJ(c.policy.ChooseJ(c.st.EmptyYoungest(), c.st.K()))
	c.st.ScanYoungForOldPointers(c.rememberB)

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsCopied += copied
	c.h.AddPause(&c.stats, copied)
	c.stats.NoteLive(c.st.LiveStepWords())
	c.notePeaks()
	if c.tenured() {
		// The non-predictive collection emptied the nursery wholesale.
		c.carry = 0
		if c.ctrl != nil {
			c.ctrl.ObserveMajor(copied)
		}
	}
	c.h.AfterGC()
}

// Collect implements heap.Collector with a non-predictive collection.
func (c *Collector) Collect() { c.npCollect() }

// FullCollect collects the entire dynamic area and nursery (j = 0 for one
// cycle), reclaiming all garbage including cross-step cycles.
func (c *Collector) FullCollect() {
	c.st.SetJ(0)
	c.npCollect()
}

// StaticWords returns the words occupied by the static area.
func (c *Collector) StaticWords() int {
	n := 0
	for _, s := range c.statics {
		n += s.Used()
	}
	return n
}

// PromoteAllToStatic performs the paper's explicit full collection (§8.4):
// every live object in the nursery and the dynamic area moves into a fresh
// static space that is never collected again, and the remembered sets
// empty. Only the mutator requests this.
func (c *Collector) PromoteAllToStatic() {
	worst := c.nursery.Used() + c.st.LiveStepWords()
	if worst == 0 {
		worst = 1
	}
	static := c.h.NewSpace(fmt.Sprintf("static-%d", len(c.statics)), worst)
	c.statics = append(c.statics, static)
	c.inStatic[static.ID] = true

	e := heap.NewEvacuator(c.h, nil, static)
	e.SetFrom(c.nursery)
	from := e.From()
	for p := 0; p < c.st.K(); p++ {
		from.AddSpace(c.st.Step(p))
	}
	c.h.VisitRoots(e.Evacuate)
	scan := func(obj heap.Word) {
		if from.HasPtr(obj) {
			return // collected with the region; old headers may be forwarded
		}
		c.stats.RemsetScanned++
		heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), e.Evacuate)
	}
	c.rsA.ForEach(scan)
	c.rsB.ForEach(scan)
	e.Drain()

	c.nursery.Reset()
	c.st.ResetAll()
	c.st.SetJ(c.policy.ChooseJ(c.st.K(), c.st.K()))
	c.rsA.Clear()
	c.rsB.Clear()

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsCopied += e.WordsCopied
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.notePeaks()
	c.carry = 0
	c.h.AfterGC()
}

func (c *Collector) notePeaks() {
	if p := c.rsA.Peak() + c.rsB.Peak(); p > c.stats.RemsetPeak {
		c.stats.RemsetPeak = p
	}
}
