// Conformance tests for age-based tenuring (heap/tenure.go): the age
// oracle pins the side age tables to a move-hook shadow model, and the
// degenerate thresholds pin the two ends of the policy spectrum —
// threshold 1 must be bit-for-bit the wholesale collector it replaces,
// and threshold ∞ (heap.TenureNever) must never promote out of the
// nursery nor remember nursery-to-nursery pointers.
package conformance

import (
	"fmt"
	"math/rand"
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/gc/generational"
	"rdgc/internal/gc/hybrid"
	"rdgc/internal/gc/multigen"
	"rdgc/internal/heap"
)

// tenuringCollectors builds each tenuring-capable collector at an explicit
// promotion threshold (0 = adaptive).
func tenuringCollectors(threshold int) map[string]func(h *heap.Heap) heap.Collector {
	genOpt := func() generational.Option {
		if threshold == 0 {
			return generational.WithAdaptive()
		}
		return generational.WithTenure(threshold)
	}
	mgOpt := func() multigen.Option {
		if threshold == 0 {
			return multigen.WithAdaptive()
		}
		return multigen.WithTenure(threshold)
	}
	hyOpt := func() hybrid.Option {
		if threshold == 0 {
			return hybrid.WithAdaptive()
		}
		return hybrid.WithTenure(threshold)
	}
	return map[string]func(h *heap.Heap) heap.Collector{
		"generational": func(h *heap.Heap) heap.Collector {
			return generational.New(h, 1024, 16384, generational.WithExpansion(2), genOpt())
		},
		"multigen": func(h *heap.Heap) heap.Collector {
			return multigen.New(h, []int{1024, 2048, 16384}, multigen.WithExpansion(2), mgOpt())
		},
		"hybrid": func(h *heap.Heap) heap.Collector {
			return hybrid.New(h, 512, 8, 1024, hybrid.WithGrowth(), hyOpt())
		},
	}
}

// runWithAgeOracle drives the randomized workload with the move-hook age
// oracle attached, checking the side tables against the oracle after every
// collection and at the end. It returns the peak number of nonzero-age
// objects observed, so callers can assert retention actually happened.
func runWithAgeOracle(t *testing.T, mk func(h *heap.Heap) heap.Collector, seed int64, census bool, nOps int) int {
	t.Helper()
	var opts []heap.Option
	if census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	c := mk(h)
	ten, ok := c.(heap.Tenurer)
	if !ok {
		t.Fatalf("%s does not implement heap.Tenurer", c.Name())
	}
	o := gctest.InstallAgeOracle(h, ten)
	var gcErr error
	h.SetAfterGC(func() {
		o.AfterGC()
		if gcErr == nil {
			gcErr = heap.VerifyCollector(h, c)
		}
		if gcErr == nil {
			gcErr = o.Check()
		}
	})
	defer h.SetAfterGC(nil)

	src := rand.New(rand.NewSource(seed))
	m := gctest.NewMutator(h, src)
	peak := 0
	for op := 0; op < nOps; op++ {
		m.Op(src.Intn(10))
		if gcErr != nil {
			t.Fatalf("op %d: %v", op, gcErr)
		}
		if n, _ := o.Tracked(); n > peak {
			peak = n
		}
	}
	c.Collect()
	if gcErr != nil {
		t.Fatal(gcErr)
	}
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("shadow model: %v", err)
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
	return peak
}

// TestAgeOracle holds every tenuring collector's side age tables to the
// move-hook shadow model across thresholds (including never-promote and
// the adaptive controller), seeds, and census instrumentation.
func TestAgeOracle(t *testing.T) {
	const oracleOps = 2500
	for _, threshold := range []int{2, 3, heap.TenureNever, 0 /* adaptive */} {
		for name, mk := range tenuringCollectors(threshold) {
			for _, census := range []bool{false, true} {
				for seed := int64(1); seed <= 2; seed++ {
					label := fmt.Sprintf("%s/threshold=%d/census=%v/seed%d", name, threshold, census, seed)
					t.Run(label, func(t *testing.T) {
						peak := runWithAgeOracle(t, mk, seed, census, oracleOps)
						if threshold != 0 && peak == 0 {
							t.Error("workload never retained a survivor; the oracle proved nothing")
						}
					})
				}
			}
		}
	}
}

// TestAgeOracleDetectsCorruption is the regression guard for the oracle
// itself: corrupting one live object's side-table age must fail Check.
func TestAgeOracleDetectsCorruption(t *testing.T) {
	h := heap.New()
	c := generational.New(h, 1024, 16384, generational.WithTenure(heap.TenureNever))
	o := gctest.InstallAgeOracle(h, c)

	sc := h.Scope()
	defer sc.Close()
	live := gctest.BuildList(h, 20)
	gctest.Churn(h, 2000) // force several retaining minor collections
	gctest.CheckList(t, h, live, 20)
	o.AfterGC()
	if err := o.Check(); err != nil {
		t.Fatalf("oracle failed before corruption: %v", err)
	}

	var victim heap.Word
	var victimAge int
	for w, age := range o.Ages() {
		if age >= 1 {
			victim, victimAge = w, age
			break
		}
	}
	if victimAge == 0 {
		t.Fatal("no retained object to corrupt")
	}
	h.SpaceOf(victim).SetAgeAt(heap.PtrOff(victim), victimAge+1)
	if err := o.Check(); err == nil {
		t.Fatal("oracle did not detect a corrupted side-table age")
	}
}

// captureTenureRun plays the randomized workload on a fresh heap whose
// tenuring knobs are pinned by configure, and snapshots the final state.
func captureTenureRun(t *testing.T, mk func(h *heap.Heap) heap.Collector, seed int64, workers int, incr bool, configure func(h *heap.Heap)) heapImage {
	t.Helper()
	h := heap.New()
	h.SetGCWorkers(workers)
	h.SetGCIncremental(incr)
	configure(h)
	c := mk(h)
	gctest.RandomOps(t, h, c, ops, seed)
	c.Collect()
	img := heapImage{stats: h.Stats, gc: *c.GCStats()}
	for _, s := range h.Spaces {
		img.spaces = append(img.spaces, spaceImage{
			name: s.Name,
			top:  s.Top,
			mem:  append([]heap.Word(nil), s.Mem[:s.Top]...),
		})
	}
	return img
}

// TestTenureThresholdOneIsWholesale pins the degenerate identity the
// tenuring design promises: an explicit threshold of 1 must reproduce the
// wholesale collector bit for bit — same heap images, same mutator stats,
// same GCStats (including the new tenuring fields staying zero) — at
// sequential and parallel worker counts and under incremental mode. Both
// sides pin the heap knobs explicitly so an RDGC_GC_TENURE/RDGC_GC_ADAPT
// environment cannot skew the baseline.
func TestTenureThresholdOneIsWholesale(t *testing.T) {
	wholesale := func(h *heap.Heap) {
		h.SetGCTenure(1)
		h.SetGCAdaptive(false)
	}
	base := map[string]func(h *heap.Heap) heap.Collector{
		"generational": func(h *heap.Heap) heap.Collector {
			return generational.New(h, 1024, 16384, generational.WithExpansion(2))
		},
		"multigen": func(h *heap.Heap) heap.Collector {
			return multigen.New(h, []int{1024, 2048, 16384}, multigen.WithExpansion(2))
		},
		"hybrid": func(h *heap.Heap) heap.Collector {
			return hybrid.New(h, 512, 8, 1024, hybrid.WithGrowth())
		},
	}
	one := tenuringCollectors(1)
	for name := range base {
		for _, workers := range []int{0, 4} {
			for _, incr := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/workers=%d/incr=%v", name, workers, incr), func(t *testing.T) {
					ref := captureTenureRun(t, base[name], 41, workers, incr, wholesale)
					got := captureTenureRun(t, one[name], 41, workers, incr, wholesale)
					if workers == 0 {
						compareImages(t, got, ref)
						return
					}
					// Parallel copy order races run to run, so the parallel
					// pin is the tier-2/3 contract: identical mutator stats
					// and GCStats (images may legitimately differ).
					if got.stats != ref.stats {
						t.Errorf("mutator stats diverge: threshold-1 %+v, wholesale %+v", got.stats, ref.stats)
					}
					if got.gc != ref.gc {
						t.Errorf("GCStats diverge:\n  threshold-1 %+v\n  wholesale   %+v", got.gc, ref.gc)
					}
				})
			}
		}
	}
}

// TestTenureNeverPromotesNothing pins the other end of the spectrum: under
// heap.TenureNever, minor collections retain every survivor in the young
// region — no words promoted, no major collections provoked, and (because
// nothing old ever points at the nursery) an empty remembered set even
// with nursery-to-nursery pointer writes flowing through the barrier.
func TestTenureNeverPromotesNothing(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("generational/workers=%d", workers), func(t *testing.T) {
			h := heap.New()
			h.SetGCWorkers(workers)
			h.SetGCAdaptive(false)
			c := generational.New(h, 1024, 16384,
				generational.WithExpansion(2), generational.WithTenure(heap.TenureNever))
			exerciseTenureNever(t, h, c)
			if n := c.RemsetLen(); n != 0 {
				t.Errorf("remembered set has %d entries, want 0", n)
			}
		})
		t.Run(fmt.Sprintf("multigen/workers=%d", workers), func(t *testing.T) {
			h := heap.New()
			h.SetGCWorkers(workers)
			h.SetGCAdaptive(false)
			c := multigen.New(h, []int{1024, 2048, 16384},
				multigen.WithExpansion(2), multigen.WithTenure(heap.TenureNever))
			exerciseTenureNever(t, h, c)
			if n := c.RemsetLen(); n != 0 {
				t.Errorf("remembered set has %d entries, want 0", n)
			}
		})
		t.Run(fmt.Sprintf("hybrid/workers=%d", workers), func(t *testing.T) {
			h := heap.New()
			h.SetGCWorkers(workers)
			h.SetGCAdaptive(false)
			c := hybrid.New(h, 512, 8, 1024,
				hybrid.WithGrowth(), hybrid.WithTenure(heap.TenureNever))
			exerciseTenureNever(t, h, c)
			if a, b := c.RemsetLens(); a != 0 || b != 0 {
				t.Errorf("remembered sets have %d+%d entries, want 0", a, b)
			}
		})
	}
}

// exerciseTenureNever churns garbage under a small pinned structure with
// nursery-internal pointer writes, without ever forcing a collection, and
// asserts the never-promote invariants on the resulting stats.
func exerciseTenureNever(t *testing.T, h *heap.Heap, c heap.Collector) {
	t.Helper()
	st := c.GCStats()
	sc := h.Scope()
	defer sc.Close()

	const n = 30
	list := gctest.BuildList(h, n)
	// Nursery-to-nursery writes through the barrier: rotate a cell's cdr.
	cell := h.Cons(h.Fix(-1), h.Null())
	h.SetCdr(cell, list)
	gctest.Churn(h, 4000)
	h.SetCdr(cell, h.Cdr(list))
	gctest.Churn(h, 4000)

	gctest.CheckList(t, h, list, n)
	if st.Collections == 0 {
		t.Fatal("workload never collected")
	}
	if st.MajorCollections != 0 {
		t.Errorf("never-promote run forced %d major collections", st.MajorCollections)
	}
	if st.WordsPromoted != 0 {
		t.Errorf("promoted %d words under TenureNever, want 0", st.WordsPromoted)
	}
	if st.WordsTenured == 0 {
		t.Error("no words were retained; the workload proved nothing")
	}
	if err := heap.VerifyCollector(h, c); err != nil {
		t.Error(err)
	}
}
