// Differential tests for the parallel tracing engines, layered by the
// strength of the determinism contract (DESIGN.md "Parallel tracing"):
//
//  1. Mark-only collectors: the parallel marker's CAS claims make the mark
//     set — and therefore the sweep, the free lists, and every subsequent
//     allocation — bit-identical to sequential. Whole-run heap images are
//     compared word for word at every worker count.
//  2. Single-target copiers: exact-fit reservation means the same words
//     land in the same target (in racy order), so whole-run mutator Stats,
//     GCStats, and every space's Top are identical; images are not.
//  3. Everything (all twelve configurations): parallel packing across
//     multiple targets can diverge from sequential first-fit near full
//     targets, so the whole-run contract is semantic — verifier-clean
//     heaps, shadow-model agreement, identical mutator Stats — plus a
//     single-collection identity check: from a bit-identical pre-state,
//     one parallel collection must produce the same GCStats delta and the
//     same live-object census as one sequential collection.
package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

var parallelWorkerCounts = []int{1, 2, 4, 8}

// captureRunAt is captureRun with a tracing-worker count applied to the
// heap for the whole workload.
func captureRunAt(t *testing.T, mk func(h *heap.Heap) heap.Collector, seed int64, census bool, workers int) heapImage {
	t.Helper()
	var opts []heap.Option
	if census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	h.SetGCWorkers(workers)
	c := mk(h)
	gctest.RandomOps(t, h, c, ops, seed)
	c.Collect()
	img := heapImage{stats: h.Stats, gc: *c.GCStats()}
	for _, s := range h.Spaces {
		img.spaces = append(img.spaces, spaceImage{
			name: s.Name,
			top:  s.Top,
			mem:  append([]heap.Word(nil), s.Mem[:s.Top]...),
		})
	}
	return img
}

// TestParallelMarkImagesIdentical is the strictest tier: the mark-only
// collectors must produce bit-identical whole-run heap images at every
// worker count, because marking is idempotent and order-free.
func TestParallelMarkImagesIdentical(t *testing.T) {
	all := collectors()
	for _, name := range []string{"marksweep", "npms-nocompact"} {
		mk := all[name]
		for _, census := range []bool{false, true} {
			seq := captureRunAt(t, mk, 11, census, 0)
			for _, workers := range parallelWorkerCounts {
				t.Run(fmt.Sprintf("%s/census=%v/workers=%d", name, census, workers), func(t *testing.T) {
					par := captureRunAt(t, mk, 11, census, workers)
					compareImages(t, par, seq)
				})
			}
		}
	}
}

// TestParallelSingleTargetStatsIdentical covers the copying collectors
// whose every collection has a single target: exact-fit reservation keeps
// whole-run Stats, GCStats, and space occupancy identical to sequential
// even though in-target object order races.
func TestParallelSingleTargetStatsIdentical(t *testing.T) {
	all := collectors()
	for _, name := range []string{"semispace", "generational", "generational-ssb"} {
		mk := all[name]
		for _, census := range []bool{false, true} {
			seq := captureRunAt(t, mk, 17, census, 0)
			for _, workers := range parallelWorkerCounts {
				t.Run(fmt.Sprintf("%s/census=%v/workers=%d", name, census, workers), func(t *testing.T) {
					par := captureRunAt(t, mk, 17, census, workers)
					if par.stats != seq.stats {
						t.Errorf("mutator stats diverge: parallel %+v, sequential %+v", par.stats, seq.stats)
					}
					if par.gc != seq.gc {
						t.Errorf("GCStats diverge:\n  parallel   %+v\n  sequential %+v", par.gc, seq.gc)
					}
					if len(par.spaces) != len(seq.spaces) {
						t.Fatalf("space count diverges: parallel %d, sequential %d", len(par.spaces), len(seq.spaces))
					}
					for i := range par.spaces {
						if par.spaces[i].name != seq.spaces[i].name || par.spaces[i].top != seq.spaces[i].top {
							t.Errorf("space %d occupancy diverges: parallel %s top=%d, sequential %s top=%d",
								i, par.spaces[i].name, par.spaces[i].top, seq.spaces[i].name, seq.spaces[i].top)
						}
					}
				})
			}
		}
	}
}

// TestParallelShadowModel runs every collector configuration through the
// full randomized workload at every worker count: the shadow model, the
// per-collection deep verifier (installed by RandomOps), and the final
// heap.Check must all stay clean.
func TestParallelShadowModel(t *testing.T) {
	for name, mk := range collectors() {
		for _, workers := range parallelWorkerCounts {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				h := heap.New()
				h.SetGCWorkers(workers)
				c := mk(h)
				gctest.RandomOps(t, h, c, ops, 7)
			})
		}
	}
}

// liveCensus builds an order-independent multiset of the live objects in
// the collector's verifiable spaces: one signature per object covering its
// type, size, and non-pointer payload (pointer slots are reduced to a
// placeholder because addresses legitimately differ between runs).
func liveCensus(h *heap.Heap, c heap.Collector) []string {
	var live []*heap.Space
	if v, ok := c.(heap.Verifiable); ok {
		live = v.VerifySpec().Live
	}
	if live == nil {
		live = h.Spaces
	}
	var sigs []string
	var b strings.Builder
	for _, s := range live {
		for off := 0; off < s.Top; {
			hdr := s.Mem[off]
			n := heap.ObjWords(hdr)
			if heap.HeaderType(hdr) != heap.TFree {
				b.Reset()
				fmt.Fprintf(&b, "t%d n%d", heap.HeaderType(hdr), heap.HeaderSize(hdr))
				raw := heap.RawPayload(heap.HeaderType(hdr))
				for i := off + 1; i < off+n; i++ {
					w := s.Mem[i]
					if !raw && heap.IsPtr(w) {
						b.WriteString(" P")
					} else {
						fmt.Fprintf(&b, " %x", uint64(w))
					}
				}
				sigs = append(sigs, b.String())
			}
			off += n
		}
	}
	sort.Strings(sigs)
	return sigs
}

// TestParallelCollectionIdentity drives two heaps per collector through an
// identical sequential history, then forces one collection sequentially on
// one heap and in parallel on the other. From a bit-identical pre-state the
// parallel collection must yield identical GCStats, an identical live
// census, a verifier-clean heap, and shadow-model agreement — for all
// twelve configurations, including the multi-target collectors whose
// whole-run images may diverge.
func TestParallelCollectionIdentity(t *testing.T) {
	const identityOps = 2000
	for name, mk := range collectors() {
		for _, census := range []bool{false, true} {
			for _, workers := range parallelWorkerCounts {
				t.Run(fmt.Sprintf("%s/census=%v/workers=%d", name, census, workers), func(t *testing.T) {
					run := func(gcWorkers int) (*heap.Heap, heap.Collector, *gctest.Mutator) {
						var opts []heap.Option
						if census {
							opts = append(opts, heap.WithCensus())
						}
						h := heap.New(opts...)
						c := mk(h)
						src := rand.New(rand.NewSource(31))
						m := gctest.NewMutator(h, src)
						for i := 0; i < identityOps; i++ {
							m.Op(src.Intn(10))
						}
						// The history above ran fully sequentially; only the
						// final forced collection differs between the heaps.
						h.SetGCWorkers(gcWorkers)
						c.Collect()
						return h, c, m
					}
					hs, cs, ms := run(0)
					hp, cp, mp := run(workers)

					if *cs.GCStats() != *cp.GCStats() {
						t.Errorf("GCStats diverge after the forced collection:\n  sequential %+v\n  parallel   %+v",
							*cs.GCStats(), *cp.GCStats())
					}
					if hs.Stats != hp.Stats {
						t.Errorf("mutator stats diverge: sequential %+v, parallel %+v", hs.Stats, hp.Stats)
					}
					seqCensus, parCensus := liveCensus(hs, cs), liveCensus(hp, cp)
					if len(seqCensus) != len(parCensus) {
						t.Fatalf("live census size diverges: sequential %d objects, parallel %d",
							len(seqCensus), len(parCensus))
					}
					for i := range seqCensus {
						if seqCensus[i] != parCensus[i] {
							t.Errorf("live census diverges at object %d:\n  sequential %s\n  parallel   %s",
								i, seqCensus[i], parCensus[i])
							break
						}
					}
					if err := heap.VerifyCollector(hp, cp); err != nil {
						t.Errorf("parallel heap fails verification: %v", err)
					}
					if err := mp.Verify(); err != nil {
						t.Errorf("parallel heap fails shadow verification: %v", err)
					}
					if err := ms.Verify(); err != nil {
						t.Errorf("sequential control fails shadow verification: %v", err)
					}
				})
			}
		}
	}
}
