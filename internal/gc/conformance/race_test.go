// Race conformance: the simulated Heap is single-threaded by design, and
// the parallelism the experiment runner exploits is across heaps. These
// tests pin that contract down under the race detector — every collector
// runs concurrently on its own heap, and the decay experiment produces the
// same measurements no matter how many goroutines run it at once.
package conformance

import (
	"fmt"
	"testing"

	"rdgc/internal/experiments"
	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

// TestCollectorsConcurrently drives every collector at the same time, each
// on a separate heap, via parallel subtests. Under `go test -race` this
// fails if any collector (or the heap, remset, or step machinery under it)
// touches shared mutable state.
func TestCollectorsConcurrently(t *testing.T) {
	for name, mk := range collectors() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := heap.New()
			c := mk(h)
			gctest.RandomOps(t, h, c, ops, 7)
		})
	}
}

// TestDecayDeterministicUnderConcurrency runs the same decay-model cell on
// several goroutines at once and requires every copy to reproduce the
// sequential golden result exactly — the determinism the drivers' -parallel
// flag depends on.
func TestDecayDeterministicUnderConcurrency(t *testing.T) {
	cfg := experiments.DecayConfig{HalfLife: 256, L: 3, G: 0.25, Steps: 20000}
	golden := experiments.RunNonPredictive(cfg)
	for i := 0; i < 8; i++ {
		t.Run(fmt.Sprintf("copy%d", i), func(t *testing.T) {
			t.Parallel()
			if got := experiments.RunNonPredictive(cfg); got != golden {
				t.Errorf("concurrent run diverged:\n got %+v\nwant %+v", got, golden)
			}
		})
	}
}
