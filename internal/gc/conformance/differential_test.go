// Differential test for the tracing fast path: every collector runs the
// same randomized workload twice, once with the fused fast-path tracers and
// once with the retained callback-based reference tracers, and the two runs
// must end with bit-identical heap images and identical mutator and
// collector statistics. Any divergence in from-set membership, scan order,
// census-word or raw-payload handling would change copy order or work
// counts and fail the comparison.
package conformance

import (
	"fmt"
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

type spaceImage struct {
	name string
	top  int
	mem  []heap.Word
}

type heapImage struct {
	spaces []spaceImage
	stats  heap.Stats
	gc     heap.GCStats
}

// captureRun plays the randomized workload on a fresh heap under the
// currently selected tracer and snapshots the final state.
func captureRun(t *testing.T, mk func(h *heap.Heap) heap.Collector, seed int64, census bool) heapImage {
	t.Helper()
	var opts []heap.Option
	if census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	// Pin the sequential engines regardless of RDGC_GC_WORKERS: the reference
	// tracer is sequential-only, and parallel copy placement is scheduling-
	// dependent, so a word-for-word image comparison is only meaningful with
	// both runs on the sequential engines. (Parallel-vs-sequential identity
	// has its own tiered contract in parallel_test.go.)
	h.SetGCWorkers(0)
	c := mk(h)
	gctest.RandomOps(t, h, c, ops, seed)
	c.Collect() // end on a forced collection so the last trace is compared too
	img := heapImage{stats: h.Stats, gc: *c.GCStats()}
	for _, s := range h.Spaces {
		img.spaces = append(img.spaces, spaceImage{
			name: s.Name,
			top:  s.Top,
			mem:  append([]heap.Word(nil), s.Mem[:s.Top]...),
		})
	}
	return img
}

func compareImages(t *testing.T, fast, ref heapImage) {
	t.Helper()
	if fast.stats != ref.stats {
		t.Errorf("mutator stats diverge: fast %+v, reference %+v", fast.stats, ref.stats)
	}
	if fast.gc != ref.gc {
		t.Errorf("GCStats diverge:\n  fast      %+v\n  reference %+v", fast.gc, ref.gc)
	}
	if len(fast.spaces) != len(ref.spaces) {
		t.Fatalf("space count diverges: fast %d, reference %d", len(fast.spaces), len(ref.spaces))
	}
	for i := range fast.spaces {
		fs, rs := fast.spaces[i], ref.spaces[i]
		if fs.name != rs.name || fs.top != rs.top {
			t.Errorf("space %d diverges: fast %s top=%d, reference %s top=%d",
				i, fs.name, fs.top, rs.name, rs.top)
			continue
		}
		for off := range fs.mem {
			if fs.mem[off] != rs.mem[off] {
				t.Errorf("space %q word %d diverges: fast %#x, reference %#x",
					fs.name, off, fs.mem[off], rs.mem[off])
				break // one word per space is enough to localize the bug
			}
		}
	}
}

func TestFastTracerMatchesReference(t *testing.T) {
	if heap.ReferenceTracerEnabled() {
		t.Fatal("reference tracer already enabled at test start")
	}
	defer heap.SetReferenceTracer(false)
	for name, mk := range collectors() {
		for _, census := range []bool{false, true} {
			for seed := int64(1); seed <= 2; seed++ {
				t.Run(fmt.Sprintf("%s/census=%v/seed%d", name, census, seed), func(t *testing.T) {
					heap.SetReferenceTracer(false)
					fast := captureRun(t, mk, seed, census)
					heap.SetReferenceTracer(true)
					ref := captureRun(t, mk, seed, census)
					heap.SetReferenceTracer(false)
					compareImages(t, fast, ref)
				})
			}
		}
	}
}
