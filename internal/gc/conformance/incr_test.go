// Differential tests for incremental collection (DESIGN.md "Incremental
// collection"): for every collector configuration, a run with the insertion
// barrier, mark slices, and lazy sweeping enabled must be invisible to the
// mutator — identical mutator statistics and, after a final synchronizing
// collection, an identical live-object census — compared with the
// stop-the-world run of the same seeded workload. Collectors without an
// incremental mode ignore the flag, so the same pin covers them trivially
// and guards against the flag leaking side effects anywhere else.
package conformance

import (
	"fmt"
	"os"
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

// TestMain seeds the engine defaults from the environment, the way the
// drivers do, so CI can replay the whole conformance suite under
// RDGC_GC_WORKERS, RDGC_GC_LAB, and RDGC_GC_INCR (with RDGC_GC_SLICE
// optionally shrinking the slice budget to sharpen interleavings).
func TestMain(m *testing.M) {
	heap.SetDefaultGCWorkers(heap.GCWorkersFromEnv())
	heap.SetDefaultGCLAB(heap.GCLABFromEnv())
	heap.SetDefaultGCIncremental(heap.GCIncrFromEnv())
	heap.SetDefaultGCSliceBudget(heap.GCSliceFromEnv())
	heap.SetDefaultGCTenure(heap.GCTenureFromEnv())
	heap.SetDefaultGCAdaptive(heap.GCAdaptFromEnv())
	os.Exit(m.Run())
}

// incrementalRun plays the seeded workload with incremental collection
// enabled (and the given tracing-worker count for the stop-the-world
// collections incremental mode still performs), ending on a forced
// collection so the heap is fully swept and quiescent.
func incrementalRun(t *testing.T, mk func(h *heap.Heap) heap.Collector, seed int64, census bool, workers int) (*heap.Heap, heap.Collector) {
	t.Helper()
	var opts []heap.Option
	if census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	h.SetGCWorkers(workers)
	h.SetGCIncremental(true)
	c := mk(h)
	gctest.RandomOps(t, h, c, ops, seed)
	synchronize(c)
	return h, c
}

// synchronize forces enough collections to reclaim every dead object. One is
// not always enough: the non-predictive collectors only collect steps j+1..k,
// and the two modes reach the end of the workload with different step
// contents, so a dead object can sit in an uncollected young step of one run
// but not the other. A second collection covers the formerly-young steps
// (renaming appends them to the collected end, and j <= k-j in every
// configuration here), after which the surviving set is exactly the live set.
func synchronize(c heap.Collector) {
	c.Collect()
	c.Collect()
}

// TestIncrementalShadowModel runs every collector configuration through the
// randomized workload with incremental collection on: the shadow model, the
// per-collection deep verifier, and the final heap.Check must all stay
// clean with collection interleaved into the mutator at slice granularity.
func TestIncrementalShadowModel(t *testing.T) {
	for name, mk := range collectors() {
		t.Run(name, func(t *testing.T) {
			h := heap.New()
			h.SetGCIncremental(true)
			c := mk(h)
			gctest.RandomOps(t, h, c, ops, 23)
		})
	}
}

// TestIncrementalMatchesStopTheWorld is the conformance pin for the
// incremental mode's semantics: same seeded workload, same collector, with
// and without incremental collection — the mutator statistics must be
// identical and the surviving object multiset after a final synchronizing
// collection must be identical, including with parallel tracing workers
// serving the stop-the-world portions of the incremental run.
func TestIncrementalMatchesStopTheWorld(t *testing.T) {
	for name, mk := range collectors() {
		for _, census := range []bool{false, true} {
			var opts []heap.Option
			if census {
				opts = append(opts, heap.WithCensus())
			}
			hs := heap.New(opts...)
			hs.SetGCIncremental(false)
			cs := mk(hs)
			gctest.RandomOps(t, hs, cs, ops, 23)
			synchronize(cs)
			stwCensus := liveCensus(hs, cs)

			for _, workers := range []int{0, 4} {
				t.Run(fmt.Sprintf("%s/census=%v/workers=%d", name, census, workers), func(t *testing.T) {
					hi, ci := incrementalRun(t, mk, 23, census, workers)
					if hi.Stats != hs.Stats {
						t.Errorf("mutator stats diverge:\n  incremental    %+v\n  stop-the-world %+v", hi.Stats, hs.Stats)
					}
					incrCensus := liveCensus(hi, ci)
					if len(incrCensus) != len(stwCensus) {
						t.Fatalf("live census size diverges: incremental %d objects, stop-the-world %d",
							len(incrCensus), len(stwCensus))
					}
					for i := range stwCensus {
						if incrCensus[i] != stwCensus[i] {
							t.Errorf("live census diverges at object %d:\n  incremental    %s\n  stop-the-world %s",
								i, incrCensus[i], stwCensus[i])
							break
						}
					}
					if err := heap.VerifyCollector(hi, ci); err != nil {
						t.Errorf("incremental heap fails verification: %v", err)
					}
				})
			}
		}
	}
}
