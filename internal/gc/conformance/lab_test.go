// Differential tests for the parallel evacuator's block-granular allocation
// buffers (LAB mode, heap.SetGCLAB). Buffered reservation trades the
// exact-fit engine's Top identity for per-worker bump allocation: Top
// becomes schedule-dependent (whole blocks are claimed, tails are retired as
// TFree filler), but the filler is accounted in Space.Waste, so Used(),
// GCStats, and the live census stay collection-deterministic at any worker
// count — the "per-block-accountable" tier of the determinism contract.
package conformance

import (
	"fmt"
	"math/rand"
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

// perSpaceUsedParity names the collectors whose every collection has a
// single copy target (or moves nothing at all): for these, buffered
// occupancy is pinned per space, not just in aggregate.
var perSpaceUsedParity = map[string]bool{
	"marksweep":        true,
	"npms-nocompact":   true,
	"semispace":        true,
	"generational":     true,
	"generational-ssb": true,
}

// TestLABCollectionIdentity mirrors TestParallelCollectionIdentity with
// allocation buffers enabled: from a bit-identical sequential pre-state, one
// buffered parallel collection must produce the same GCStats delta, the same
// live census, the same per-space Used() occupancy, and a verifier-clean,
// shadow-clean heap.
func TestLABCollectionIdentity(t *testing.T) {
	const identityOps = 2000
	for name, mk := range collectors() {
		for _, workers := range parallelWorkerCounts {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				run := func(gcWorkers int, lab bool) (*heap.Heap, heap.Collector, *gctest.Mutator) {
					h := heap.New()
					c := mk(h)
					src := rand.New(rand.NewSource(53))
					m := gctest.NewMutator(h, src)
					for i := 0; i < identityOps; i++ {
						m.Op(src.Intn(10))
					}
					h.SetGCWorkers(gcWorkers)
					h.SetGCLAB(lab)
					c.Collect()
					return h, c, m
				}
				hs, cs, _ := run(0, false)
				hp, cp, mp := run(workers, true)

				if *cs.GCStats() != *cp.GCStats() {
					t.Errorf("GCStats diverge under LAB:\n  sequential %+v\n  buffered   %+v",
						*cs.GCStats(), *cp.GCStats())
				}
				if hs.Stats != hp.Stats {
					t.Errorf("mutator stats diverge: sequential %+v, buffered %+v", hs.Stats, hp.Stats)
				}
				// Per-block accountability: occupancy (Top less retired
				// filler) matches the exact-fit sequential run even though Top
				// itself may not. For the multi-target collectors parallel
				// packing legitimately shifts objects between targets (PR 5's
				// tier-3 contract), so their guarantee is aggregate; the
				// single-target and non-moving collectors pin every space.
				if len(hs.Spaces) != len(hp.Spaces) {
					t.Fatalf("space count diverges: sequential %d, buffered %d", len(hs.Spaces), len(hp.Spaces))
				}
				totalSeq, totalPar := 0, 0
				for i, ss := range hs.Spaces {
					sp := hp.Spaces[i]
					totalSeq += ss.Used()
					totalPar += sp.Used()
					if ss.Name != sp.Name {
						t.Fatalf("space %d identity diverges: %s vs %s", i, ss.Name, sp.Name)
					}
					if perSpaceUsedParity[name] && ss.Used() != sp.Used() {
						t.Errorf("space %d occupancy diverges: sequential %s used=%d, buffered used=%d (top=%d waste=%d)",
							i, ss.Name, ss.Used(), sp.Used(), sp.Top, sp.Waste)
					}
				}
				if totalSeq != totalPar {
					t.Errorf("aggregate occupancy diverges: sequential %d, buffered %d", totalSeq, totalPar)
				}
				seqCensus, parCensus := liveCensus(hs, cs), liveCensus(hp, cp)
				if len(seqCensus) != len(parCensus) {
					t.Fatalf("live census size diverges: sequential %d objects, buffered %d",
						len(seqCensus), len(parCensus))
				}
				for i := range seqCensus {
					if seqCensus[i] != parCensus[i] {
						t.Errorf("live census diverges at object %d:\n  sequential %s\n  buffered   %s",
							i, seqCensus[i], parCensus[i])
						break
					}
				}
				if err := heap.VerifyCollector(hp, cp); err != nil {
					t.Errorf("buffered heap fails verification: %v", err)
				}
				if err := mp.Verify(); err != nil {
					t.Errorf("buffered heap fails shadow verification: %v", err)
				}
			})
		}
	}
}

// TestLABShadowModel runs every collector through the full randomized
// workload with allocation buffers on at every worker count: the shadow
// model, the per-collection verifier, and the final heap.Check must stay
// clean even though collection scheduling may drift from the exact-fit runs
// (buffer filler occupies Top earlier).
func TestLABShadowModel(t *testing.T) {
	for name, mk := range collectors() {
		for _, workers := range parallelWorkerCounts {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				h := heap.New()
				h.SetGCWorkers(workers)
				h.SetGCLAB(true)
				c := mk(h)
				gctest.RandomOps(t, h, c, ops, 19)
			})
		}
	}
}

// TestLABInertBelowTwoWorkers: at workers <= 1 the solo and sequential
// engines ignore the LAB setting entirely, so whole-run images match the
// exact-fit baseline bit for bit.
func TestLABInertBelowTwoWorkers(t *testing.T) {
	for _, name := range []string{"semispace", "marksweep", "generational"} {
		mk := collectors()[name]
		t.Run(name, func(t *testing.T) {
			base := captureRunAt(t, mk, 23, false, 1)
			h := heap.New()
			h.SetGCWorkers(1)
			h.SetGCLAB(true)
			c := mk(h)
			gctest.RandomOps(t, h, c, ops, 23)
			c.Collect()
			img := heapImage{stats: h.Stats, gc: *c.GCStats()}
			for _, s := range h.Spaces {
				img.spaces = append(img.spaces, spaceImage{
					name: s.Name,
					top:  s.Top,
					mem:  append([]heap.Word(nil), s.Mem[:s.Top]...),
				})
			}
			compareImages(t, img, base)
		})
	}
}
