// Package conformance cross-checks every collector against the shadow
// model: thousands of random mutator operations mirrored in native Go
// structures, verified after forced collections. Any lost update, missed
// barrier, or broken renaming shows up as a divergence.
package conformance

import (
	"fmt"
	"testing"

	"rdgc/internal/core"
	"rdgc/internal/gc/gctest"
	"rdgc/internal/gc/generational"
	"rdgc/internal/gc/hybrid"
	"rdgc/internal/gc/marksweep"
	"rdgc/internal/gc/multigen"
	"rdgc/internal/gc/npms"
	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

const ops = 4000

func collectors() map[string]func(h *heap.Heap) heap.Collector {
	return map[string]func(h *heap.Heap) heap.Collector{
		"semispace": func(h *heap.Heap) heap.Collector {
			return semispace.New(h, 8192, semispace.WithExpansion(2))
		},
		"marksweep": func(h *heap.Heap) heap.Collector {
			return marksweep.New(h, 8192, marksweep.WithExpansion(2))
		},
		"generational": func(h *heap.Heap) heap.Collector {
			return generational.New(h, 1024, 16384, generational.WithExpansion(2))
		},
		"generational-ssb": func(h *heap.Heap) heap.Collector {
			return generational.New(h, 1024, 16384,
				generational.WithExpansion(2), generational.WithRemset(remset.NewSSB()))
		},
		"nonpredictive": func(h *heap.Heap) heap.Collector {
			return core.New(h, 8, 1024, core.WithGrowth())
		},
		"nonpredictive-fixedj": func(h *heap.Heap) heap.Collector {
			return core.New(h, 8, 1024, core.WithGrowth(), core.WithPolicy(core.FixedJ(3)))
		},
		"nonpredictive-zeroj": func(h *heap.Heap) heap.Collector {
			return core.New(h, 4, 2048, core.WithGrowth(), core.WithPolicy(core.ZeroJ{}))
		},
		"hybrid": func(h *heap.Heap) heap.Collector {
			return hybrid.New(h, 512, 8, 1024, hybrid.WithGrowth())
		},
		"hybrid-fixedj": func(h *heap.Heap) heap.Collector {
			return hybrid.New(h, 512, 8, 1024,
				hybrid.WithGrowth(), hybrid.WithPolicy(core.FixedJ(2)))
		},
		"multigen": func(h *heap.Heap) heap.Collector {
			return multigen.New(h, []int{1024, 2048, 16384}, multigen.WithExpansion(2))
		},
		"npms": func(h *heap.Heap) heap.Collector {
			return npms.New(h, 8, 2048)
		},
		"npms-nocompact": func(h *heap.Heap) heap.Collector {
			return npms.New(h, 8, 2048, npms.WithCompactEvery(0))
		},
	}
}

func TestShadowModel(t *testing.T) {
	for name, mk := range collectors() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				h := heap.New()
				c := mk(h)
				gctest.RandomOps(t, h, c, ops, seed)
			})
		}
	}
}

func TestShadowModelWithCensus(t *testing.T) {
	for name, mk := range collectors() {
		t.Run(name, func(t *testing.T) {
			h := heap.New(heap.WithCensus())
			c := mk(h)
			gctest.RandomOps(t, h, c, ops, 99)
		})
	}
}
