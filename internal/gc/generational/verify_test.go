package generational

import (
	"errors"
	"testing"

	"rdgc/internal/heap"
)

// TestVerifierCatchesDroppedRemsetEntry seeds the bug class the remembered-
// set rules exist to catch: an old-area object points into the nursery but
// its entry has been lost (the classic write-barrier omission). The test is
// in-package so it can reach into c.rs to drop the entry.
func TestVerifierCatchesDroppedRemsetEntry(t *testing.T) {
	h := heap.New()
	c := New(h, 1024, 16384, WithExpansion(2))
	s := h.Scope()
	defer s.Close()

	old := h.Cons(h.Fix(1), h.Null())
	c.Collect() // a major collection moves the pair to the old area
	if heap.PtrSpace(h.Get(old)) == c.nursery.ID {
		t.Fatal("pair did not leave the nursery")
	}
	young := h.Cons(h.Fix(2), h.Null())
	h.SetCar(old, young) // the barrier records old -> nursery

	if err := heap.VerifyCollector(h, c); err != nil {
		t.Fatalf("remembered heap should verify clean: %v", err)
	}
	c.rs.Clear() // seed the bug: the entry vanishes
	err := heap.VerifyCollector(h, c)
	if !errors.Is(err, heap.ErrRemsetMissing) {
		t.Fatalf("diagnosed %v, want heap.ErrRemsetMissing", err)
	}
}
