// Package generational implements the conventional, youngest-first
// generational collector the paper compares against in Table 3: an
// ephemeral nursery collected by stop-and-copy with wholesale promotion
// (Larceny's promoting collections move *all* live ephemeral objects, §8.4),
// feeding a dynamic old area managed as a semispace pair. A write barrier
// maintains the old-to-young remembered set.
//
// Under the radioactive decay model this collector concentrates effort on
// exactly the generations with the *least* garbage, which is the paper's
// Section 3 argument for why it loses to a non-generational collector there.
package generational

import (
	"fmt"

	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

// Collector is a two-generation, youngest-first collector.
type Collector struct {
	h       *heap.Heap
	nursery *heap.Space
	oldFrom *heap.Space
	oldTo   *heap.Space
	rs      remset.Set
	stats   heap.GCStats

	// evac is the persistent Cheney engine, re-armed with SetFrom per
	// collection; the remembered-set root visitor is created once so
	// steady-state minor collections allocate nothing.
	evac       *heap.Evacuator
	remsetRoot func(heap.Word)

	expand float64
}

// Option configures the collector.
type Option func(*Collector)

// WithExpansion lets the old-area semispaces grow to keep the old area's
// inverse load factor at least invLoad.
func WithExpansion(invLoad float64) Option {
	if invLoad <= 1 {
		panic("generational: inverse load factor must exceed 1")
	}
	return func(c *Collector) { c.expand = invLoad }
}

// WithRemset substitutes a remembered-set representation (default HashSet).
func WithRemset(rs remset.Set) Option {
	return func(c *Collector) { c.rs = rs }
}

// New creates a conventional generational collector with the given nursery
// and old-semispace sizes in words, installing itself as h's allocator and
// write barrier.
func New(h *heap.Heap, nurseryWords, oldWords int, opts ...Option) *Collector {
	c := &Collector{
		h:       h,
		nursery: h.NewSpace("nursery", nurseryWords),
		oldFrom: h.NewSpace("old-A", oldWords),
		oldTo:   h.NewSpace("old-B", oldWords),
		rs:      remset.NewHashSet(),
	}
	c.evac = heap.NewEvacuator(h, nil)
	c.remsetRoot = func(w heap.Word) {
		c.stats.RemsetScanned++
		heap.ScanObject(c.h.SpaceOf(w), heap.PtrOff(w), c.evac.Slot())
	}
	for _, o := range opts {
		o(c)
	}
	h.SetAllocator(c)
	h.SetBarrier(c)
	return c
}

// Name implements heap.Collector.
func (c *Collector) Name() string { return "generational" }

// GCStats implements heap.Collector.
func (c *Collector) GCStats() *heap.GCStats { return &c.stats }

// Live returns the words in use across both generations.
func (c *Collector) Live() int { return c.nursery.Used() + c.oldFrom.Used() }

// OldWords returns the current old-semispace capacity.
func (c *Collector) OldWords() int { return c.oldFrom.Cap() }

// RemsetLen returns the current remembered-set size.
func (c *Collector) RemsetLen() int { return c.rs.Len() }

// VerifySpec implements heap.Verifiable: the nursery and the active old
// semispace are live (the old to-space is scratch), and every object
// outside the nursery that points into it must be remembered.
func (c *Collector) VerifySpec() heap.VerifySpec {
	return heap.VerifySpec{
		Live: []*heap.Space{c.nursery, c.oldFrom},
		Remsets: []heap.RemsetRule{{
			Name: "old->nursery",
			Needs: func(obj, val heap.Word) bool {
				return heap.PtrSpace(obj) != c.nursery.ID && heap.PtrSpace(val) == c.nursery.ID
			},
			Has: c.rs.Contains,
		}},
	}
}

// RecordWrite implements heap.Barrier: remember old objects that point
// into the nursery.
func (c *Collector) RecordWrite(obj, val heap.Word) {
	if !heap.IsPtr(val) || heap.PtrSpace(val) != c.nursery.ID {
		return
	}
	if heap.PtrSpace(obj) == c.nursery.ID {
		return
	}
	c.rs.Remember(obj)
}

// AllocRaw implements heap.Allocator. Objects too large for the nursery go
// directly to the old area, as real generational systems do.
func (c *Collector) AllocRaw(t heap.Type, payload int) heap.Word {
	total := 1 + payload + c.h.ExtraWords()
	if total > c.nursery.Cap()/2 {
		return c.allocOld(t, payload, total)
	}
	off, ok := c.nursery.Bump(total)
	if !ok {
		c.minor()
		off, ok = c.nursery.Bump(total)
		if !ok {
			panic(fmt.Sprintf("generational: nursery cannot hold %d words", total))
		}
	}
	return c.h.InitObject(c.nursery, off, t, payload)
}

func (c *Collector) allocOld(t heap.Type, payload, total int) heap.Word {
	off, ok := c.oldFrom.Bump(total)
	if !ok {
		c.major(total)
		off, ok = c.oldFrom.Bump(total)
		if !ok {
			panic(fmt.Sprintf("generational: old area cannot hold %d words", total))
		}
	}
	return c.h.InitObject(c.oldFrom, off, t, payload)
}

// minor collects the nursery, promoting every survivor to the old area.
func (c *Collector) minor() {
	if c.oldFrom.Free() < c.nursery.Used() {
		// Not enough headroom to promote the worst case: collect everything.
		c.major(c.nursery.Used())
		return
	}
	e := c.evac
	e.SetFrom(c.nursery)
	e.Begin(c.oldFrom)
	e.EvacuateRoots()
	c.scanRemset()
	e.Drain()
	c.nursery.Reset()
	// Promotion empties the nursery, so no old-to-young pointers remain.
	c.rs.Clear()

	c.stats.Collections++
	c.stats.WordsCopied += e.WordsCopied
	c.stats.WordsPromoted += e.WordsCopied
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.stats.NoteLive(c.oldFrom.Used())
	c.notePeak()
	c.h.AfterGC()
}

// scanRemset treats every remembered object's fields as roots for a minor
// collection. Remembered objects may themselves be dead ("nepotism"); their
// nursery referents are conservatively retained, as in real collectors.
func (c *Collector) scanRemset() {
	c.rs.ForEach(c.remsetRoot)
}

// major collects both generations into the old to-space and flips.
func (c *Collector) major(need int) {
	if c.expand > 0 {
		// Worst case: everything currently allocated survives.
		worst := c.oldFrom.Used() + c.nursery.Used() + need
		if worst > c.oldTo.Cap() {
			c.oldTo.Resize(worst)
		}
	}
	e := c.evac
	e.SetFrom(c.nursery, c.oldFrom)
	e.Begin(c.oldTo)
	e.Run()
	c.nursery.Reset()
	c.oldFrom.Reset()
	c.oldFrom, c.oldTo = c.oldTo, c.oldFrom
	c.rs.Clear()

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsCopied += e.WordsCopied
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.stats.NoteLive(c.oldFrom.Used())
	c.notePeak()

	if c.expand > 0 {
		live := c.oldFrom.Used()
		want := int(float64(live)*c.expand) + need
		if want > c.oldTo.Cap() {
			c.oldTo.Resize(want)
		}
		if want > c.oldFrom.Cap() {
			// Grow the active space too: copy once more into the (bigger)
			// to-space and flip back.
			e.SetFrom(c.oldFrom)
			e.Begin(c.oldTo)
			e.Run()
			c.oldFrom.Reset()
			c.oldFrom.Resize(want)
			c.oldFrom, c.oldTo = c.oldTo, c.oldFrom
		}
	}
	c.h.AfterGC()
}

// Collect implements heap.Collector with a full (major) collection.
func (c *Collector) Collect() { c.major(0) }

func (c *Collector) notePeak() {
	if p := c.rs.Peak(); p > c.stats.RemsetPeak {
		c.stats.RemsetPeak = p
	}
}
