// Package generational implements the conventional, youngest-first
// generational collector the paper compares against in Table 3: an
// ephemeral nursery collected by stop-and-copy with wholesale promotion
// (Larceny's promoting collections move *all* live ephemeral objects, §8.4),
// feeding a dynamic old area managed as a semispace pair. A write barrier
// maintains the old-to-young remembered set.
//
// Under the radioactive decay model this collector concentrates effort on
// exactly the generations with the *least* garbage, which is the paper's
// Section 3 argument for why it loses to a non-generational collector there.
package generational

import (
	"fmt"

	"rdgc/internal/heap"
	"rdgc/internal/policy"
	"rdgc/internal/remset"
)

// Collector is a two-generation, youngest-first collector.
type Collector struct {
	h       *heap.Heap
	nursery *heap.Space
	oldFrom *heap.Space
	oldTo   *heap.Space
	rs      remset.Set
	stats   heap.GCStats

	// evac is the persistent Cheney engine, re-armed with SetFrom per
	// collection; the remembered-set root visitor is created once so
	// steady-state minor collections allocate nothing.
	evac       *heap.Evacuator
	remsetRoot func(heap.Word)

	expand float64

	// Age-based tenuring (heap/tenure.go). With threshold 1 (the default)
	// none of this exists and every path above runs unchanged: nurseryTo
	// is the survivor shadow the nursery flips against, trigger the
	// effective nursery size (cap, unless the adaptive controller moves
	// it), carry the survivor words retained at the last flip, and ctrl
	// the -gcadapt policy controller.
	threshold     int
	trigger       int
	carry         int
	nurseryTo     *heap.Space
	youngBuf      []*heap.Space
	keepBuf       []heap.Word
	remsetRootTen func(heap.Word)
	ctrl          *policy.Controller
	adaptOn       bool
}

// Option configures the collector.
type Option func(*Collector)

// WithExpansion lets the old-area semispaces grow to keep the old area's
// inverse load factor at least invLoad.
func WithExpansion(invLoad float64) Option {
	if invLoad <= 1 {
		panic("generational: inverse load factor must exceed 1")
	}
	return func(c *Collector) { c.expand = invLoad }
}

// WithRemset substitutes a remembered-set representation (default HashSet).
func WithRemset(rs remset.Set) Option {
	return func(c *Collector) { c.rs = rs }
}

// WithTenure sets the promotion threshold explicitly, overriding the
// heap's GCTenure setting: survivors are evacuated within the nursery
// until they have survived threshold collections (1 = wholesale
// promotion, heap.TenureNever = never promote).
func WithTenure(threshold int) Option {
	if threshold < 1 {
		panic("generational: tenure threshold must be at least 1")
	}
	return func(c *Collector) { c.threshold = threshold }
}

// WithAdaptive puts the promotion threshold and nursery trigger under the
// internal/policy feedback controller, overriding the heap's GCAdaptive
// setting.
func WithAdaptive() Option {
	return func(c *Collector) { c.adaptOn = true }
}

// New creates a conventional generational collector with the given nursery
// and old-semispace sizes in words, installing itself as h's allocator and
// write barrier.
func New(h *heap.Heap, nurseryWords, oldWords int, opts ...Option) *Collector {
	c := &Collector{
		h:       h,
		nursery: h.NewSpace("nursery", nurseryWords),
		oldFrom: h.NewSpace("old-A", oldWords),
		oldTo:   h.NewSpace("old-B", oldWords),
		rs:      remset.NewHashSet(),
	}
	c.evac = heap.NewEvacuator(h, nil)
	c.remsetRoot = func(w heap.Word) {
		c.stats.RemsetScanned++
		heap.ScanObject(c.h.SpaceOf(w), heap.PtrOff(w), c.evac.Slot())
	}
	c.threshold = h.GCTenure()
	c.adaptOn = h.GCAdaptive()
	c.trigger = nurseryWords
	for _, o := range opts {
		o(c)
	}
	if c.adaptOn {
		c.ctrl = policy.New(policy.Config{})
	}
	if c.threshold > 1 || c.ctrl != nil {
		// Tenuring needs a survivor shadow for within-nursery evacuation;
		// the adaptive harness arms it even at threshold 1 so the survival
		// counters flow from the first collection.
		c.nurseryTo = h.NewSpace("nursery-to", nurseryWords)
		c.nursery.EnsureAgeTable()
		c.nurseryTo.EnsureAgeTable()
		c.youngBuf = []*heap.Space{c.nurseryTo}
		c.remsetRootTen = func(w heap.Word) {
			c.stats.RemsetScanned++
			heap.ScanObject(c.h.SpaceOf(w), heap.PtrOff(w), c.evac.SlotTenured())
		}
	}
	h.SetAllocator(c)
	h.SetBarrier(c)
	return c
}

// tenured reports whether minor collections run the age-routing engine.
func (c *Collector) tenured() bool { return c.nurseryTo != nil }

// TenureThreshold implements heap.Tenurer.
func (c *Collector) TenureThreshold() int { return c.threshold }

// YoungSpaces implements heap.Tenurer: the active nursery, then the
// survivor shadow when tenuring is armed.
func (c *Collector) YoungSpaces() []*heap.Space {
	if c.nurseryTo == nil {
		return []*heap.Space{c.nursery}
	}
	return []*heap.Space{c.nursery, c.nurseryTo}
}

// Adaptive implements heap.Tenurer.
func (c *Collector) Adaptive() bool { return c.ctrl != nil }

// Name implements heap.Collector.
func (c *Collector) Name() string { return "generational" }

// GCStats implements heap.Collector.
func (c *Collector) GCStats() *heap.GCStats { return &c.stats }

// Live returns the words in use across both generations.
func (c *Collector) Live() int { return c.nursery.Used() + c.oldFrom.Used() }

// OldWords returns the current old-semispace capacity.
func (c *Collector) OldWords() int { return c.oldFrom.Cap() }

// RemsetLen returns the current remembered-set size.
func (c *Collector) RemsetLen() int { return c.rs.Len() }

// VerifySpec implements heap.Verifiable: the nursery and the active old
// semispace are live (the old to-space is scratch), and every object
// outside the nursery that points into it must be remembered.
func (c *Collector) VerifySpec() heap.VerifySpec {
	return heap.VerifySpec{
		Live: []*heap.Space{c.nursery, c.oldFrom},
		Remsets: []heap.RemsetRule{{
			Name: "old->nursery",
			Needs: func(obj, val heap.Word) bool {
				return heap.PtrSpace(obj) != c.nursery.ID && heap.PtrSpace(val) == c.nursery.ID
			},
			Has: c.rs.Contains,
		}},
	}
}

// RecordWrite implements heap.Barrier: remember old objects that point
// into the nursery.
func (c *Collector) RecordWrite(obj, val heap.Word) {
	if !heap.IsPtr(val) || heap.PtrSpace(val) != c.nursery.ID {
		return
	}
	if heap.PtrSpace(obj) == c.nursery.ID {
		return
	}
	c.rs.Remember(obj)
}

// AllocRaw implements heap.Allocator. Objects too large for the nursery go
// directly to the old area, as real generational systems do.
func (c *Collector) AllocRaw(t heap.Type, payload int) heap.Word {
	total := 1 + payload + c.h.ExtraWords()
	if total > c.nursery.Cap()/2 {
		return c.allocOld(t, payload, total)
	}
	if c.nursery.Top+total > c.trigger {
		// Same condition as a failed Bump when the trigger sits at the
		// nursery cap (the wholesale default); the adaptive controller may
		// pull it lower.
		c.collectNursery()
	}
	off, ok := c.nursery.Bump(total)
	if !ok && c.tenured() {
		// Retained survivors can leave too little room even after a minor;
		// a major empties the nursery wholesale and guarantees progress.
		c.major(total)
		off, ok = c.nursery.Bump(total)
	}
	if !ok {
		panic(fmt.Sprintf("generational: nursery cannot hold %d words", total))
	}
	return c.h.InitObject(c.nursery, off, t, payload)
}

// collectNursery dispatches a nursery collection to the wholesale or
// age-routing implementation.
func (c *Collector) collectNursery() {
	if c.tenured() {
		c.minorTenured()
	} else {
		c.minor()
	}
}

func (c *Collector) allocOld(t heap.Type, payload, total int) heap.Word {
	off, ok := c.oldFrom.Bump(total)
	if !ok {
		c.major(total)
		off, ok = c.oldFrom.Bump(total)
		if !ok {
			panic(fmt.Sprintf("generational: old area cannot hold %d words", total))
		}
	}
	return c.h.InitObject(c.oldFrom, off, t, payload)
}

// minor collects the nursery, promoting every survivor to the old area.
func (c *Collector) minor() {
	if c.oldFrom.Free() < c.nursery.Used() {
		// Not enough headroom to promote the worst case: collect everything.
		c.major(c.nursery.Used())
		return
	}
	e := c.evac
	e.SetFrom(c.nursery)
	e.Begin(c.oldFrom)
	e.EvacuateRoots()
	c.scanRemset()
	e.Drain()
	c.nursery.Reset()
	// Promotion empties the nursery, so no old-to-young pointers remain.
	c.rs.Clear()

	c.stats.Collections++
	c.stats.WordsCopied += e.WordsCopied
	c.stats.WordsPromoted += e.WordsCopied
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.stats.NoteLive(c.oldFrom.Used())
	c.notePeak()
	c.h.AfterGC()
}

// minorTenured collects the nursery with age routing: survivors younger
// than the threshold are evacuated into the survivor shadow (their age
// incremented in its side table), the rest are promoted to the old area,
// and the semispaces flip. Because retained survivors stay young, the
// remembered set must be refiltered rather than cleared.
func (c *Collector) minorTenured() {
	if c.oldFrom.Free() < c.nursery.Used() {
		// Not enough headroom to promote the worst case: collect everything.
		c.major(c.nursery.Used())
		return
	}
	fresh := c.nursery.Top - c.carry
	e := c.evac
	e.SetFrom(c.nursery)
	e.BeginTenured(c.threshold, c.youngBuf, c.oldFrom)
	e.EvacuateRootsTenured()
	c.rs.ForEach(c.remsetRootTen)
	e.DrainTenured()
	c.nursery.Reset()
	c.nursery, c.nurseryTo = c.nurseryTo, c.nursery
	c.youngBuf[0] = c.nurseryTo
	c.carry = c.nursery.Top
	c.refilterRemset()
	c.rememberPromoted()

	c.stats.Collections++
	c.stats.WordsCopied += e.WordsCopied
	c.stats.WordsPromoted += e.WordsPromoted
	c.stats.WordsTenured += e.WordsRetained
	c.stats.TenureThreshold = c.threshold
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.stats.NoteLive(c.oldFrom.Used() + c.nursery.Used())
	c.notePeak()
	c.adapt(fresh, e)
	c.h.AfterGC()
}

// refilterRemset drops remembered objects that no longer point into the
// (post-flip) nursery. Old-area objects do not move in a minor collection,
// so surviving entries keep their addresses; only entries whose nursery
// referents were all promoted (or died) are dropped.
func (c *Collector) refilterRemset() {
	keep := c.keepBuf[:0]
	nurseryID := c.nursery.ID
	found := false
	probe := func(slot *heap.Word) {
		if !found && heap.IsPtr(*slot) && heap.PtrSpace(*slot) == nurseryID {
			found = true
		}
	}
	c.rs.ForEach(func(obj heap.Word) {
		found = false
		heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), probe)
		if found {
			keep = append(keep, obj)
		}
	})
	c.rs.Clear()
	for _, w := range keep {
		c.rs.Remember(w)
	}
	c.keepBuf = keep[:0]
}

// rememberPromoted scans the objects this minor promoted into the old
// area: any that reference a retained survivor are old-to-young pointers
// the barrier never saw (both ends moved during the collection), so they
// enter the remembered set here. Must run after the nursery flip so the
// probe sees the live nursery's ID.
func (c *Collector) rememberPromoted() {
	nurseryID := c.nursery.ID
	found := false
	probe := func(slot *heap.Word) {
		if !found && heap.IsPtr(*slot) && heap.PtrSpace(*slot) == nurseryID {
			found = true
		}
	}
	c.evac.CopiedRegions(func(s *heap.Space, lo, hi int) {
		for off := lo; off < hi; off += heap.ObjWords(s.Mem[off]) {
			found = false
			heap.ScanObject(s, off, probe)
			if found {
				c.rs.Remember(heap.PtrWord(s.ID, off))
			}
		}
	})
}

// adapt feeds the policy controller one tenured minor collection and
// applies its decision to the threshold and trigger knobs.
func (c *Collector) adapt(fresh int, e *heap.Evacuator) {
	if c.ctrl == nil {
		return
	}
	if fresh < 0 {
		fresh = 0
	}
	surv, retained := e.SurvivorsByAge()
	d := c.ctrl.Observe(policy.Observation{
		FreshWords:    uint64(fresh),
		SurvByAge:     *surv,
		RetainedByAge: *retained,
		PromotedWords: e.WordsPromoted,
		NurseryCap:    c.nursery.Cap(),
	})
	c.threshold = d.Threshold
	trigger := d.TriggerWords
	if trigger <= 0 || trigger > c.nursery.Cap() {
		trigger = c.nursery.Cap()
	}
	// Never set the trigger below what is already retained plus working
	// headroom, or allocation would collect on every request.
	if floor := c.nursery.Top + c.nursery.Cap()/8; trigger < floor {
		trigger = floor
		if trigger > c.nursery.Cap() {
			trigger = c.nursery.Cap()
		}
	}
	c.trigger = trigger
	c.stats.PolicyAdaptations = c.ctrl.Adaptations()
	c.stats.TenureThreshold = c.threshold
}

// scanRemset treats every remembered object's fields as roots for a minor
// collection. Remembered objects may themselves be dead ("nepotism"); their
// nursery referents are conservatively retained, as in real collectors.
func (c *Collector) scanRemset() {
	c.rs.ForEach(c.remsetRoot)
}

// major collects both generations into the old to-space and flips.
func (c *Collector) major(need int) {
	if c.expand > 0 {
		// Worst case: everything currently allocated survives.
		worst := c.oldFrom.Used() + c.nursery.Used() + need
		if worst > c.oldTo.Cap() {
			c.oldTo.Resize(worst)
		}
	}
	e := c.evac
	e.SetFrom(c.nursery, c.oldFrom)
	e.Begin(c.oldTo)
	e.Run()
	c.nursery.Reset()
	c.oldFrom.Reset()
	c.oldFrom, c.oldTo = c.oldTo, c.oldFrom
	c.rs.Clear()

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsCopied += e.WordsCopied
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.stats.NoteLive(c.oldFrom.Used())
	c.notePeak()

	if c.tenured() {
		// The major promoted the whole nursery: no survivors are carried.
		c.carry = 0
		if c.ctrl != nil {
			c.ctrl.ObserveMajor(e.WordsCopied)
		}
	}

	if c.expand > 0 {
		live := c.oldFrom.Used()
		want := int(float64(live)*c.expand) + need
		if want > c.oldTo.Cap() {
			c.oldTo.Resize(want)
		}
		if want > c.oldFrom.Cap() {
			// Grow the active space too: copy once more into the (bigger)
			// to-space and flip back.
			e.SetFrom(c.oldFrom)
			e.Begin(c.oldTo)
			e.Run()
			c.oldFrom.Reset()
			c.oldFrom.Resize(want)
			c.oldFrom, c.oldTo = c.oldTo, c.oldFrom
		}
	}
	c.h.AfterGC()
}

// Collect implements heap.Collector with a full (major) collection.
func (c *Collector) Collect() { c.major(0) }

func (c *Collector) notePeak() {
	if p := c.rs.Peak(); p > c.stats.RemsetPeak {
		c.stats.RemsetPeak = p
	}
}
