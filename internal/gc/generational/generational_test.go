package generational

import (
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

func TestStress(t *testing.T) {
	h := heap.New()
	c := New(h, 1024, 16384)
	gctest.StressCollector(t, h, c)
}

func TestStressWithCensus(t *testing.T) {
	h := heap.New(heap.WithCensus())
	c := New(h, 1024, 16384)
	gctest.StressCollector(t, h, c)
}

func TestStressSSB(t *testing.T) {
	h := heap.New()
	c := New(h, 1024, 16384, WithRemset(remset.NewSSB()))
	gctest.StressCollector(t, h, c)
}

func TestMinorPromotesAllSurvivors(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8192)
	s := h.Scope()
	defer s.Close()

	list := gctest.BuildList(h, 20)
	gctest.Churn(h, 2000) // forces minor collections
	gctest.CheckList(t, h, list, 20)

	if c.GCStats().WordsPromoted == 0 {
		t.Error("no words were promoted by minor collections")
	}
	// After churn, the survivors must reside in the old generation.
	if w := h.Get(list); heap.PtrSpace(w) == c.nursery.ID {
		t.Error("survivor still in nursery after minor collections")
	}
}

func TestRemsetCatchesOldToYoungPointer(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8192)
	s := h.Scope()
	defer s.Close()

	// Create an old object by promoting it.
	oldObj := h.Cons(h.Fix(1), h.Null())
	c.Collect()
	if heap.PtrSpace(h.Get(oldObj)) == c.nursery.ID {
		t.Fatal("object not promoted by major collection")
	}

	// Store a young pointer into it; drop our direct handle to the young
	// object so the remembered set is the only path that keeps it alive
	// through the next minor collection.
	func() {
		s2 := h.Scope()
		defer s2.Close()
		young := h.Cons(h.Fix(42), h.Null())
		h.SetCar(oldObj, young)
	}()
	if c.RemsetLen() == 0 {
		t.Fatal("write barrier did not record the old-to-young store")
	}

	gctest.Churn(h, 2000) // minor collections happen
	got := h.Car(oldObj)
	if !h.IsPair(got) {
		t.Fatal("young object referenced only from old generation was lost")
	}
	if v := h.FixVal(h.Car(got)); v != 42 {
		t.Errorf("young object corrupted: %d", v)
	}
}

func TestBarrierIgnoresYoungToYoung(t *testing.T) {
	h := heap.New()
	c := New(h, 2048, 8192)
	s := h.Scope()
	defer s.Close()
	a := h.Cons(h.Fix(1), h.Null())
	b := h.Cons(h.Fix(2), h.Null())
	h.SetCar(a, b) // both in nursery
	if c.RemsetLen() != 0 {
		t.Errorf("remset = %d entries after young-to-young store, want 0", c.RemsetLen())
	}
}

func TestLargeObjectGoesToOldArea(t *testing.T) {
	h := heap.New()
	c := New(h, 256, 8192)
	s := h.Scope()
	defer s.Close()
	v := h.MakeVector(1000, h.Null())
	if heap.PtrSpace(h.Get(v)) == c.nursery.ID {
		t.Error("large object was allocated in the nursery")
	}
	if h.VectorLen(v) != 1000 {
		t.Error("large vector corrupt")
	}
}

func TestExpansion(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 1024, WithExpansion(2))
	s := h.Scope()
	defer s.Close()
	list := gctest.BuildList(h, 2000) // 6000 words live, far beyond 1024
	gctest.CheckList(t, h, list, 2000)
	if c.OldWords() <= 1024 {
		t.Errorf("old area did not grow: %d words", c.OldWords())
	}
}

func TestMajorResetsRemset(t *testing.T) {
	h := heap.New()
	c := New(h, 512, 8192)
	s := h.Scope()
	defer s.Close()
	oldObj := h.Cons(h.Fix(1), h.Null())
	c.Collect()
	young := h.Cons(h.Fix(2), h.Null())
	h.SetCar(oldObj, young)
	if c.RemsetLen() == 0 {
		t.Fatal("barrier missed the store")
	}
	c.Collect()
	if c.RemsetLen() != 0 {
		t.Errorf("remset = %d after major collection, want 0", c.RemsetLen())
	}
	if v := h.FixVal(h.Car(h.Car(oldObj))); v != 2 {
		t.Errorf("structure corrupted by major collection: %d", v)
	}
}
