package generational

import (
	"testing"

	"rdgc/internal/heap"
)

// fillNursery hand-allocates a chain of n pairs directly in the nursery
// (car = fixnum, cdr = previous pair), bypassing the Go-level allocation the
// Ref API would do, and returns the head pointer.
func fillNursery(tb testing.TB, c *Collector, h *heap.Heap, n int) heap.Word {
	prev := heap.NullWord
	for i := 0; i < n; i++ {
		off, ok := c.nursery.Bump(3)
		if !ok {
			tb.Fatalf("nursery too small for %d pairs", n)
		}
		w := h.InitObject(c.nursery, off, heap.TPair, 2)
		c.nursery.Mem[off+1] = heap.FixnumWord(int64(i))
		c.nursery.Mem[off+2] = prev
		prev = w
	}
	return prev
}

// TestMinorSteadyStateZeroAllocs guards the minor-collection hot path: a
// promoting collection that evacuates roots, scans a remembered set, and
// clears it must not allocate any Go objects once warmed up.
func TestMinorSteadyStateZeroAllocs(t *testing.T) {
	h := heap.New()
	c := New(h, 2048, 1<<16)

	// One permanently live old object whose car will point into the nursery,
	// giving every minor collection a remembered-set entry to scan.
	h.GlobalWord(fillNursery(t, c, h, 1))
	c.minor() // promotes it to the old area; warms up the evacuator + remset
	var oldObj heap.Word
	h.VisitRoots(func(slot *heap.Word) {
		if heap.IsPtr(*slot) {
			oldObj = *slot
		}
	})
	if oldObj == 0 || heap.PtrSpace(oldObj) != c.oldFrom.ID {
		t.Fatalf("expected the rooted pair in the old area, got %v", oldObj)
	}

	cycle := func() {
		head := fillNursery(t, c, h, 100)
		h.SpaceOf(oldObj).Mem[heap.PtrOff(oldObj)+1] = head
		c.RecordWrite(oldObj, head)
		c.minor()
	}
	cycle() // warmup: hash-set table and pause histogram size themselves

	before := c.stats.Collections
	allocs := testing.AllocsPerRun(20, cycle)
	if allocs != 0 {
		t.Errorf("steady-state minor collection allocates %.0f objects/run, want 0", allocs)
	}
	if c.stats.Collections == before || c.stats.WordsPromoted == 0 {
		t.Fatal("no promotion happened; the guard must measure real minor collections")
	}
}
