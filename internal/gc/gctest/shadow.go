package gctest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rdgc/internal/heap"
)

// Shadow-model differential testing: a sequence of mutator operations is
// applied simultaneously to the simulated heap (under the collector being
// tested) and to native Go "shadow" structures that no collector ever
// touches. After heavy churn and forced collections, every root must still
// be structurally identical to its shadow. This catches lost updates,
// write-barrier omissions, missed evacuations, and renaming bugs in any
// collector behind the heap.Collector interface.
//
// The operations are driven through a Source so the same Mutator serves two
// harnesses: RandomOps feeds it a seeded *rand.Rand, and the gcfuzz package
// feeds it bytes of a fuzzer-mutated program.

// Source supplies the Mutator's decisions. *rand.Rand satisfies it.
type Source interface {
	Intn(n int) int
	Int63n(n int64) int64
}

// shadow values: int64 (fixnum), float64 (flonum), nil (empty list),
// *shadowPair, *shadowVec, *shadowBox.
type shadowPair struct{ car, cdr any }
type shadowVec struct{ elems []any }
type shadowBox struct{ val any }

// Mutator pairs heap roots (global slots, droppable) with their shadows and
// applies numbered operations to both.
type Mutator struct {
	h       *heap.Heap
	roots   []heap.Ref
	shadows []any
	src     Source
}

// NewMutator creates a Mutator with no roots.
func NewMutator(h *heap.Heap, src Source) *Mutator {
	return &Mutator{h: h, src: src}
}

// NumOps is the number of distinct operation kinds Op accepts.
const NumOps = 12

// Roots returns the number of live shadowed roots.
func (m *Mutator) Roots() int { return len(m.roots) }

// randomValue picks an existing root's value or a fresh value, returning a
// Ref pushed in the caller's open scope. A Ref (not a raw Word) is
// essential: flonums are heap-allocated, and a later allocation in the same
// operation can trigger a collection that moves them — a raw Word would
// dangle, storing a stale pointer into the structure under test.
func (m *Mutator) randomValue() (heap.Ref, any) {
	if len(m.roots) > 0 && m.src.Intn(3) > 0 {
		i := m.src.Intn(len(m.roots))
		return m.h.Dup(m.roots[i]), m.shadows[i]
	}
	switch m.src.Intn(3) {
	case 0:
		n := m.src.Int63n(1000)
		return m.h.Fix(n), n
	case 1:
		f := float64(m.src.Intn(100)) / 4
		return m.h.Flonum(f), f
	default:
		return m.h.Null(), nil
	}
}

func (m *Mutator) addRoot(w heap.Word, sh any) {
	m.roots = append(m.roots, m.h.GlobalWord(w))
	m.shadows = append(m.shadows, sh)
}

// pick returns the index of a root whose shadow satisfies kind.
func (m *Mutator) pick(kind func(any) bool) (int, bool) {
	// Random probing keeps this O(1) amortized for well-mixed states.
	for tries := 0; tries < 16 && len(m.roots) > 0; tries++ {
		i := m.src.Intn(len(m.roots))
		if kind(m.shadows[i]) {
			return i, true
		}
	}
	return 0, false
}

func isPair(v any) bool { _, ok := v.(*shadowPair); return ok }
func isVec(v any) bool  { _, ok := v.(*shadowVec); return ok }
func isBox(v any) bool  { _, ok := v.(*shadowBox); return ok }

// Op applies operation kind k (in [0, NumOps)) to the heap and the shadows.
// Kinds 0..9 reproduce the original RandomOps mix; 10 and 11 add boxes.
func (m *Mutator) Op(k int) {
	h := m.h
	switch k {
	case 0, 1, 2: // cons
		s := h.Scope()
		r1, sh1 := m.randomValue()
		r2, sh2 := m.randomValue()
		p := h.Cons(r1, r2)
		m.addRoot(h.Get(p), &shadowPair{car: sh1, cdr: sh2})
		s.Close()
	case 3: // make-vector
		s := h.Scope()
		size := m.src.Intn(6)
		r, sh := m.randomValue()
		v := h.MakeVector(size, r)
		elems := make([]any, size)
		for i := range elems {
			elems[i] = sh
		}
		m.addRoot(h.Get(v), &shadowVec{elems: elems})
		s.Close()
	case 4: // set-car!/set-cdr!
		if i, ok := m.pick(isPair); ok {
			s := h.Scope()
			r, sh := m.randomValue()
			sp := m.shadows[i].(*shadowPair)
			target := h.RefOf(m.h.Get(m.roots[i]))
			if m.src.Intn(2) == 0 {
				h.SetCar(target, r)
				sp.car = sh
			} else {
				h.SetCdr(target, r)
				sp.cdr = sh
			}
			s.Close()
		}
	case 5: // vector-set!
		if i, ok := m.pick(isVec); ok {
			sv := m.shadows[i].(*shadowVec)
			if len(sv.elems) > 0 {
				s := h.Scope()
				r, sh := m.randomValue()
				slot := m.src.Intn(len(sv.elems))
				h.VectorSet(h.RefOf(m.h.Get(m.roots[i])), slot, r)
				sv.elems[slot] = sh
				s.Close()
			}
		}
	case 6: // read car/cdr into a new root
		if i, ok := m.pick(isPair); ok {
			s := h.Scope()
			sp := m.shadows[i].(*shadowPair)
			target := h.RefOf(m.h.Get(m.roots[i]))
			if m.src.Intn(2) == 0 {
				m.addRoot(h.Get(h.Car(target)), sp.car)
			} else {
				m.addRoot(h.Get(h.Cdr(target)), sp.cdr)
			}
			s.Close()
		}
	case 7: // drop a root
		if len(m.roots) > 1 {
			i := m.src.Intn(len(m.roots))
			h.Set(m.roots[i], heap.NullWord)
			last := len(m.roots) - 1
			h.Set(m.roots[i], h.Get(m.roots[last]))
			m.shadows[i] = m.shadows[last]
			h.Set(m.roots[last], heap.NullWord)
			m.roots = m.roots[:last]
			m.shadows = m.shadows[:last]
		}
	case 8: // garbage churn
		Churn(h, 20)
	case 9: // nothing; density of mutations over allocation varies
	case 10: // box
		s := h.Scope()
		r, sh := m.randomValue()
		b := h.Box(r)
		m.addRoot(h.Get(b), &shadowBox{val: sh})
		s.Close()
	case 11: // set-box! or unbox into a new root
		if i, ok := m.pick(isBox); ok {
			s := h.Scope()
			sb := m.shadows[i].(*shadowBox)
			target := h.RefOf(m.h.Get(m.roots[i]))
			if m.src.Intn(2) == 0 {
				r, sh := m.randomValue()
				h.SetBox(target, r)
				sb.val = sh
			} else {
				m.addRoot(h.Get(h.Unbox(target)), sb.val)
			}
			s.Close()
		}
	}
}

// Verify compares every root against its shadow, reporting the first
// divergence.
func (m *Mutator) Verify() error {
	for i := range m.roots {
		seen := map[visitKey]bool{}
		if !m.equal(m.h.Get(m.roots[i]), m.shadows[i], seen) {
			return fmt.Errorf("gctest: root %d diverged from its shadow", i)
		}
	}
	return nil
}

// RandomOps drives n random operations against h/c with the given seed and
// verifies every root against its shadow at the end (and at every 1/4 mark,
// right after a forced collection). Collectors implementing heap.Verifiable
// additionally have their declared invariants checked after every collection
// the run triggers, forced or allocation-driven.
func RandomOps(t *testing.T, h *heap.Heap, c heap.Collector, n int, seed int64) {
	t.Helper()
	m := NewMutator(h, rand.New(rand.NewSource(seed)))

	var gcErr error
	h.SetAfterGC(func() {
		if gcErr == nil {
			gcErr = heap.VerifyCollector(h, c)
		}
	})
	defer h.SetAfterGC(nil)

	for op := 0; op < n; op++ {
		// Intn(10) (not NumOps) preserves the historical op mix; the box ops
		// are exercised by the fuzz harness.
		m.Op(m.src.Intn(10))
		if gcErr != nil {
			t.Fatalf("op %d: %v", op, gcErr)
		}
		if op%(n/4+1) == n/4 {
			c.Collect()
			if gcErr != nil {
				t.Fatalf("op %d: %v", op, gcErr)
			}
			if err := heap.Check(h); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("after collection at op %d: %v", op, err)
			}
		}
	}
	c.Collect()
	if gcErr != nil {
		t.Fatal(gcErr)
	}
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("final: %v", err)
	}
}

type visitKey struct {
	w  heap.Word
	sh any
}

// equal compares a heap value against a shadow, coinductively (cycles
// created by set-cdr! terminate through the visited set).
func (m *Mutator) equal(w heap.Word, sh any, seen map[visitKey]bool) bool {
	switch v := sh.(type) {
	case nil:
		return w == heap.NullWord
	case int64:
		return heap.IsFixnum(w) && heap.FixnumVal(w) == v
	case float64:
		if !heap.IsPtr(w) || heap.HeaderType(m.h.Header(w)) != heap.TFlonum {
			return false
		}
		return math.Float64frombits(uint64(m.h.Payload(w)[0])) == v
	case *shadowPair:
		if !heap.IsPtr(w) || heap.HeaderType(m.h.Header(w)) != heap.TPair {
			return false
		}
		k := visitKey{w, sh}
		if seen[k] {
			return true
		}
		seen[k] = true
		p := m.h.Payload(w)
		return m.equal(p[0], v.car, seen) && m.equal(p[1], v.cdr, seen)
	case *shadowVec:
		if !heap.IsPtr(w) || heap.HeaderType(m.h.Header(w)) != heap.TVector {
			return false
		}
		k := visitKey{w, sh}
		if seen[k] {
			return true
		}
		seen[k] = true
		p := m.h.Payload(w)
		if len(p) != len(v.elems) {
			return false
		}
		for i := range p {
			if !m.equal(p[i], v.elems[i], seen) {
				return false
			}
		}
		return true
	case *shadowBox:
		if !heap.IsPtr(w) || heap.HeaderType(m.h.Header(w)) != heap.TBox {
			return false
		}
		k := visitKey{w, sh}
		if seen[k] {
			return true
		}
		seen[k] = true
		return m.equal(m.h.Payload(w)[0], v.val, seen)
	default:
		return false
	}
}
