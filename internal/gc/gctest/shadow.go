package gctest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rdgc/internal/heap"
)

// Shadow-model differential testing: a random sequence of mutator
// operations is applied simultaneously to the simulated heap (under the
// collector being tested) and to native Go "shadow" structures that no
// collector ever touches. After heavy churn and forced collections, every
// root must still be structurally identical to its shadow. This catches
// lost updates, write-barrier omissions, missed evacuations, and renaming
// bugs in any collector behind the heap.Collector interface.

// shadow values: int64 (fixnum), float64 (flonum), nil (empty list),
// *shadowPair, *shadowVec.
type shadowPair struct{ car, cdr any }
type shadowVec struct{ elems []any }

// shadowState pairs the heap roots (global slots, droppable) with their
// shadows.
type shadowState struct {
	h       *heap.Heap
	roots   []heap.Ref
	shadows []any
	rng     *rand.Rand
}

// randomValue picks an existing root's value or a fresh value, returning a
// Ref pushed in the caller's open scope. A Ref (not a raw Word) is
// essential: flonums are heap-allocated, and a later allocation in the same
// operation can trigger a collection that moves them — a raw Word would
// dangle, storing a stale pointer into the structure under test.
func (st *shadowState) randomValue() (heap.Ref, any) {
	if len(st.roots) > 0 && st.rng.Intn(3) > 0 {
		i := st.rng.Intn(len(st.roots))
		return st.h.Dup(st.roots[i]), st.shadows[i]
	}
	switch st.rng.Intn(3) {
	case 0:
		n := st.rng.Int63n(1000)
		return st.h.Fix(n), n
	case 1:
		f := float64(st.rng.Intn(100)) / 4
		return st.h.Flonum(f), f
	default:
		return st.h.Null(), nil
	}
}

func (st *shadowState) addRoot(w heap.Word, sh any) {
	st.roots = append(st.roots, st.h.GlobalWord(w))
	st.shadows = append(st.shadows, sh)
}

// pairRoots returns the indices of roots that currently hold pairs.
func (st *shadowState) pick(kind func(any) bool) (int, bool) {
	// Random probing keeps this O(1) amortized for well-mixed states.
	for tries := 0; tries < 16 && len(st.roots) > 0; tries++ {
		i := st.rng.Intn(len(st.roots))
		if kind(st.shadows[i]) {
			return i, true
		}
	}
	return 0, false
}

func isPair(v any) bool { _, ok := v.(*shadowPair); return ok }
func isVec(v any) bool  { _, ok := v.(*shadowVec); return ok }

// RandomOps drives n random operations against h/c with the given seed and
// verifies every root against its shadow at the end (and at every 1/4 mark,
// right after a forced collection).
func RandomOps(t *testing.T, h *heap.Heap, c heap.Collector, n int, seed int64) {
	t.Helper()
	st := &shadowState{h: h, rng: rand.New(rand.NewSource(seed))}

	for op := 0; op < n; op++ {
		switch st.rng.Intn(10) {
		case 0, 1, 2: // cons
			s := h.Scope()
			r1, sh1 := st.randomValue()
			r2, sh2 := st.randomValue()
			p := h.Cons(r1, r2)
			st.addRoot(h.Get(p), &shadowPair{car: sh1, cdr: sh2})
			s.Close()
		case 3: // make-vector
			s := h.Scope()
			size := st.rng.Intn(6)
			r, sh := st.randomValue()
			v := h.MakeVector(size, r)
			elems := make([]any, size)
			for i := range elems {
				elems[i] = sh
			}
			st.addRoot(h.Get(v), &shadowVec{elems: elems})
			s.Close()
		case 4: // set-car!/set-cdr!
			if i, ok := st.pick(isPair); ok {
				s := h.Scope()
				r, sh := st.randomValue()
				sp := st.shadows[i].(*shadowPair)
				target := h.RefOf(st.h.Get(st.roots[i]))
				if st.rng.Intn(2) == 0 {
					h.SetCar(target, r)
					sp.car = sh
				} else {
					h.SetCdr(target, r)
					sp.cdr = sh
				}
				s.Close()
			}
		case 5: // vector-set!
			if i, ok := st.pick(isVec); ok {
				sv := st.shadows[i].(*shadowVec)
				if len(sv.elems) > 0 {
					s := h.Scope()
					r, sh := st.randomValue()
					slot := st.rng.Intn(len(sv.elems))
					h.VectorSet(h.RefOf(st.h.Get(st.roots[i])), slot, r)
					sv.elems[slot] = sh
					s.Close()
				}
			}
		case 6: // read car/cdr into a new root
			if i, ok := st.pick(isPair); ok {
				s := h.Scope()
				sp := st.shadows[i].(*shadowPair)
				target := h.RefOf(st.h.Get(st.roots[i]))
				if st.rng.Intn(2) == 0 {
					st.addRoot(h.Get(h.Car(target)), sp.car)
				} else {
					st.addRoot(h.Get(h.Cdr(target)), sp.cdr)
				}
				s.Close()
			}
		case 7: // drop a root
			if len(st.roots) > 1 {
				i := st.rng.Intn(len(st.roots))
				h.Set(st.roots[i], heap.NullWord)
				last := len(st.roots) - 1
				h.Set(st.roots[i], h.Get(st.roots[last]))
				st.shadows[i] = st.shadows[last]
				h.Set(st.roots[last], heap.NullWord)
				st.roots = st.roots[:last]
				st.shadows = st.shadows[:last]
			}
		case 8: // garbage churn
			Churn(h, 20)
		case 9: // nothing; density of mutations over allocation varies
		}
		if op%(n/4+1) == n/4 {
			c.Collect()
			if err := heap.Check(h); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			st.verifyAll(t, fmt.Sprintf("after collection at op %d", op))
			if t.Failed() {
				return
			}
		}
	}
	c.Collect()
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
	st.verifyAll(t, "final")
}

func (st *shadowState) verifyAll(t *testing.T, when string) {
	t.Helper()
	for i := range st.roots {
		seen := map[visitKey]bool{}
		if !st.equal(st.h.Get(st.roots[i]), st.shadows[i], seen) {
			t.Errorf("%s: root %d diverged from shadow", when, i)
			return
		}
	}
}

type visitKey struct {
	w  heap.Word
	sh any
}

// equal compares a heap value against a shadow, coinductively (cycles
// created by set-cdr! terminate through the visited set).
func (st *shadowState) equal(w heap.Word, sh any, seen map[visitKey]bool) bool {
	switch v := sh.(type) {
	case nil:
		return w == heap.NullWord
	case int64:
		return heap.IsFixnum(w) && heap.FixnumVal(w) == v
	case float64:
		if !heap.IsPtr(w) || heap.HeaderType(st.h.Header(w)) != heap.TFlonum {
			return false
		}
		return math.Float64frombits(uint64(st.h.Payload(w)[0])) == v
	case *shadowPair:
		if !heap.IsPtr(w) || heap.HeaderType(st.h.Header(w)) != heap.TPair {
			return false
		}
		k := visitKey{w, sh}
		if seen[k] {
			return true
		}
		seen[k] = true
		p := st.h.Payload(w)
		return st.equal(p[0], v.car, seen) && st.equal(p[1], v.cdr, seen)
	case *shadowVec:
		if !heap.IsPtr(w) || heap.HeaderType(st.h.Header(w)) != heap.TVector {
			return false
		}
		k := visitKey{w, sh}
		if seen[k] {
			return true
		}
		seen[k] = true
		p := st.h.Payload(w)
		if len(p) != len(v.elems) {
			return false
		}
		for i := range p {
			if !st.equal(p[i], v.elems[i], seen) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
