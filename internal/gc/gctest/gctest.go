// Package gctest provides collector-agnostic stress scenarios shared by the
// test suites of every collector: each scenario allocates structures, forces
// collections, and verifies that the structures survive intact.
package gctest

import (
	"testing"

	"rdgc/internal/heap"
)

// BuildList allocates the list (n-1 ... 1 0).
func BuildList(h *heap.Heap, n int) heap.Ref {
	s := h.Scope()
	acc := h.Null()
	for i := 0; i < n; i++ {
		acc = h.Cons(h.Fix(int64(i)), acc)
	}
	return s.Return(acc)
}

// CheckList verifies a list built by BuildList.
func CheckList(t *testing.T, h *heap.Heap, l heap.Ref, n int) {
	t.Helper()
	s := h.Scope()
	defer s.Close()
	cur := h.Dup(l)
	for i := n - 1; i >= 0; i-- {
		if !h.IsPair(cur) {
			t.Fatalf("list truncated at element %d", n-1-i)
		}
		if got := h.FixVal(h.Car(cur)); got != int64(i) {
			t.Fatalf("element %d = %d, want %d", n-1-i, got, i)
		}
		h.Set(cur, h.Get(h.Cdr(cur)))
	}
	if !h.IsNull(cur) {
		t.Fatal("list not null-terminated")
	}
}

// BuildTree allocates a full binary tree of the given depth with fixnum
// leaves, returning its root. Interior nodes are pairs.
func BuildTree(h *heap.Heap, depth int) heap.Ref {
	s := h.Scope()
	if depth == 0 {
		return s.Return(h.Fix(1))
	}
	l := BuildTree(h, depth-1)
	r := BuildTree(h, depth-1)
	return s.Return(h.Cons(l, r))
}

// CountLeaves sums the fixnum leaves of a BuildTree tree.
func CountLeaves(h *heap.Heap, tree heap.Ref) int64 {
	s := h.Scope()
	defer s.Close()
	if h.IsFix(tree) {
		return h.FixVal(tree)
	}
	return CountLeaves(h, h.Car(tree)) + CountLeaves(h, h.Cdr(tree))
}

// Churn allocates and immediately drops garbage pairs, forcing collections
// for any finite heap.
func Churn(h *heap.Heap, n int) {
	for i := 0; i < n; i++ {
		s := h.Scope()
		h.Cons(h.Fix(int64(i)), h.Null())
		s.Close()
	}
}

// StressCollector exercises a freshly configured heap/collector pair with
// live data pinned across heavy garbage churn, shared-structure updates,
// and explicit collections.
func StressCollector(t *testing.T, h *heap.Heap, c heap.Collector) {
	t.Helper()
	root := h.Scope()
	defer root.Close()

	const listLen = 200
	list := BuildList(h, listLen)
	tree := BuildTree(h, 6)
	vec := h.MakeVector(10, h.Null())
	for i := 0; i < 10; i++ {
		h.VectorSet(vec, i, BuildList(h, i+1))
	}

	Churn(h, 5000)
	c.Collect()
	Churn(h, 5000)

	CheckList(t, h, list, listLen)
	if got := CountLeaves(h, tree); got != 64 {
		t.Errorf("tree leaves = %d, want 64", got)
	}
	for i := 0; i < 10; i++ {
		CheckList(t, h, h.VectorRef(vec, i), i+1)
	}

	// Shared structure must stay shared across collections.
	shared := BuildList(h, 3)
	a := h.Cons(h.Fix(0), shared)
	b := h.Cons(h.Fix(1), shared)
	c.Collect()
	if !h.Eq(h.Cdr(a), h.Cdr(b)) {
		t.Error("sharing broken by collection")
	}
	h.SetCar(h.Cdr(a), h.Fix(99))
	if got := h.FixVal(h.Car(h.Cdr(b))); got != 99 {
		t.Errorf("mutation through shared cdr lost: got %d", got)
	}

	// Cycles must survive and be reclaimable.
	cyc := h.Cons(h.Fix(7), h.Null())
	h.SetCdr(cyc, cyc)
	c.Collect()
	if !h.Eq(h.Cdr(cyc), cyc) {
		t.Error("cycle broken by collection")
	}

	if st := c.GCStats(); st.Collections == 0 {
		t.Error("stress run never collected")
	}
}
