package gctest

import (
	"fmt"

	"rdgc/internal/heap"
)

// AgeOracle is a shadow model for the side age tables of heap/tenure.go:
// it counts, per live object, the nursery collections the object has
// survived, using only the heap's move hook — never the collector's own
// age metadata — and then demands that the collector's side tables agree
// exactly. Any divergence (an age not incremented on retention, not
// cleared on reuse, or attached to the wrong object) is reported.
//
// Model: an object absent from the table is fresh (age 0). When the
// collector moves an object into one of the Tenurer's young spaces, that
// is a retention and the object's age advances by one (saturating at
// heap.MaxObjectAge); a move anywhere else is a promotion and the object
// leaves the model. Dead objects never move; their stale entries are
// pruned when their address falls outside the owning space's live prefix.
type AgeOracle struct {
	h    *heap.Heap
	ten  heap.Tenurer
	ages map[heap.Word]int
	err  error
}

// InstallAgeOracle attaches an oracle to h, whose collector must implement
// heap.Tenurer. It claims the heap's move hook (which also forces
// sequential drains, so ages are observed deterministically).
func InstallAgeOracle(h *heap.Heap, ten heap.Tenurer) *AgeOracle {
	o := &AgeOracle{h: h, ten: ten, ages: make(map[heap.Word]int)}
	h.SetMoveHook(o.moved)
	return o
}

func (o *AgeOracle) notef(format string, args ...any) {
	if o.err == nil {
		o.err = fmt.Errorf(format, args...)
	}
}

func (o *AgeOracle) isYoung(w heap.Word) bool {
	id := heap.PtrSpace(w)
	for _, s := range o.ten.YoungSpaces() {
		if s.ID == id {
			return true
		}
	}
	return false
}

func (o *AgeOracle) moved(old, new heap.Word) {
	age := o.ages[old] // absent = fresh, age 0
	delete(o.ages, old)
	if !o.isYoung(new) {
		// Promoted (or moved by a wholesale collection): the object leaves
		// the age-tracked world. Its destination carries no age table, or
		// a zeroed one.
		return
	}
	want := age + 1
	if want > heap.MaxObjectAge {
		want = heap.MaxObjectAge
	}
	s := o.h.SpaceOf(new)
	if got := s.AgeAt(heap.PtrOff(new)); got != want {
		o.notef("age oracle: object retained at %q+%d has side-table age %d, oracle says %d",
			s.Name, heap.PtrOff(new), got, want)
	}
	o.ages[new] = want
}

// AfterGC prunes entries for objects that died (their address is no longer
// inside the owning space's live prefix, so the slot may be reused by a
// later collection). Call it from the heap's AfterGC hook.
func (o *AgeOracle) AfterGC() {
	for w := range o.ages {
		if heap.PtrOff(w) >= o.h.SpaceOf(w).Top || !o.isYoung(w) {
			delete(o.ages, w)
		}
	}
}

// Check walks every young space and compares each live object's side-table
// age against the oracle (absent = 0), also surfacing any divergence a
// move reported earlier.
func (o *AgeOracle) Check() error {
	if o.err != nil {
		return o.err
	}
	for _, s := range o.ten.YoungSpaces() {
		var err error
		heap.WalkSpace(s, func(off int, hdr heap.Word) bool {
			w := heap.PtrWord(s.ID, off)
			if got, want := s.AgeAt(off), o.ages[w]; got != want {
				err = fmt.Errorf("age oracle: object at %q+%d has side-table age %d, oracle says %d",
					s.Name, off, got, want)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Tracked returns the number of objects the oracle currently models with a
// nonzero age, and the maximum such age — handy for asserting a workload
// actually exercised retention.
func (o *AgeOracle) Tracked() (n, maxAge int) {
	for _, age := range o.ages {
		n++
		if age > maxAge {
			maxAge = age
		}
	}
	return n, maxAge
}

// Ages exposes the oracle's model (current address -> survived
// collections) for tests that need to corrupt or inspect specific entries.
func (o *AgeOracle) Ages() map[heap.Word]int { return o.ages }
