package marksweep

import (
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

func TestStress(t *testing.T) {
	h := heap.New()
	c := New(h, 8192)
	gctest.StressCollector(t, h, c)
}

func TestStressWithCensus(t *testing.T) {
	h := heap.New(heap.WithCensus())
	c := New(h, 8192)
	gctest.StressCollector(t, h, c)
}

func TestObjectsDoNotMove(t *testing.T) {
	h := heap.New()
	c := New(h, 4096)
	s := h.Scope()
	defer s.Close()
	p := h.Cons(h.Fix(1), h.Null())
	before := h.Get(p)
	gctest.Churn(h, 10000)
	c.Collect()
	if h.Get(p) != before {
		t.Error("mark/sweep moved an object")
	}
}

func TestFreeListCoalescing(t *testing.T) {
	h := heap.New()
	c := New(h, 4096)
	s := h.Scope()

	// Fill with alternating kept/dropped pairs, then drop the scope and
	// collect: the dead blocks must coalesce enough to satisfy a large
	// vector allocation.
	for i := 0; i < 300; i++ {
		h.Cons(h.Fix(int64(i)), h.Null())
	}
	s.Close()
	c.Collect()

	s2 := h.Scope()
	defer s2.Close()
	v := h.MakeVector(1000, h.Null()) // needs one contiguous 1001-word block
	if h.VectorLen(v) != 1000 {
		t.Fatal("large vector allocation failed after coalescing")
	}
}

func TestParsabilityInvariant(t *testing.T) {
	h := heap.New()
	c := New(h, 2048)
	s := h.Scope()
	defer s.Close()

	var keep []heap.Ref
	for i := 0; i < 50; i++ {
		keep = append(keep, h.Cons(h.Fix(int64(i)), h.Null()))
		gctest.Churn(h, 50)
	}
	c.Collect()
	// WalkSpace panics on unparsable spaces; LiveWords exercises it fully.
	if live := c.Live(); live < 50*3 {
		t.Errorf("live = %d words, want >= 150", live)
	}
	for i, r := range keep {
		if got := h.FixVal(h.Car(r)); got != int64(i) {
			t.Errorf("pair %d corrupted: %d", i, got)
		}
	}
}

func TestGrowthAddsSpaces(t *testing.T) {
	h := heap.New()
	c := New(h, 512, WithExpansion(2))
	s := h.Scope()
	defer s.Close()
	list := gctest.BuildList(h, 1000)
	gctest.CheckList(t, h, list, 1000)
	if len(c.spaces) < 2 {
		t.Errorf("expected growth to add spaces, have %d", len(c.spaces))
	}
	if got := c.HeapWords(); got < 3000 {
		t.Errorf("heap = %d words, want >= 3000", got)
	}
}

func TestOOMPanicsWithoutExpansion(t *testing.T) {
	h := heap.New()
	New(h, 128)
	s := h.Scope()
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Error("allocating past a fixed mark/sweep heap did not panic")
		}
	}()
	acc := h.Null()
	for i := 0; i < 100; i++ {
		acc = h.Cons(h.Fix(int64(i)), acc)
	}
}

func TestMarkConsIsOneOverLMinusOne(t *testing.T) {
	// With live storage pinned at 1/L of the heap, the steady-state
	// mark/cons ratio must approach 1/(L-1) (Section 5 of the paper).
	const heapWords = 30000
	const L = 3
	h := heap.New()
	c := New(h, heapWords)
	s := h.Scope()
	defer s.Close()

	live := heapWords / L
	_ = gctest.BuildList(h, live/3) // pairs are 3 words

	start := h.Stats.WordsAllocated
	marked0 := c.GCStats().WordsMarked
	gctest.Churn(h, 100000)
	markCons := float64(c.GCStats().WordsMarked-marked0) /
		float64(h.Stats.WordsAllocated-start)

	want := 1.0 / (L - 1)
	if markCons < want*0.8 || markCons > want*1.25 {
		t.Errorf("mark/cons = %.3f, want about %.3f", markCons, want)
	}
}
