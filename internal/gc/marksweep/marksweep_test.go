package marksweep

import (
	"os"
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

// TestMain seeds the parallel-engine and incremental defaults from the
// environment, the same way the drivers do, so CI can re-run this
// package's whole suite with the 4-worker mark and block sweep under the
// race detector (RDGC_GC_WORKERS=4) and again with incremental collection
// (RDGC_GC_INCR=1): the determinism contract says every test must pass
// unchanged under any engine configuration.
func TestMain(m *testing.M) {
	heap.SetDefaultGCWorkers(heap.GCWorkersFromEnv())
	heap.SetDefaultGCLAB(heap.GCLABFromEnv())
	heap.SetDefaultGCIncremental(heap.GCIncrFromEnv())
	heap.SetDefaultGCSliceBudget(heap.GCSliceFromEnv())
	os.Exit(m.Run())
}

func TestStress(t *testing.T) {
	h := heap.New()
	c := New(h, 8192)
	gctest.StressCollector(t, h, c)
}

func TestStressWithCensus(t *testing.T) {
	h := heap.New(heap.WithCensus())
	c := New(h, 8192)
	gctest.StressCollector(t, h, c)
}

func TestObjectsDoNotMove(t *testing.T) {
	h := heap.New()
	c := New(h, 4096)
	s := h.Scope()
	defer s.Close()
	p := h.Cons(h.Fix(1), h.Null())
	before := h.Get(p)
	gctest.Churn(h, 10000)
	c.Collect()
	if h.Get(p) != before {
		t.Error("mark/sweep moved an object")
	}
}

func TestFreeListCoalescing(t *testing.T) {
	h := heap.New()
	c := New(h, 4096)
	s := h.Scope()

	// Fill with alternating kept/dropped pairs, then drop the scope and
	// collect: the dead blocks must coalesce enough to satisfy a large
	// vector allocation.
	for i := 0; i < 300; i++ {
		h.Cons(h.Fix(int64(i)), h.Null())
	}
	s.Close()
	c.Collect()

	s2 := h.Scope()
	defer s2.Close()
	// Below the large-object threshold: needs one contiguous run inside a
	// block, which only exists if the dead pairs coalesced.
	v := h.MakeVector(200, h.Null())
	if h.VectorLen(v) != 200 {
		t.Fatal("block-sized vector allocation failed after coalescing")
	}
	// Above the threshold: routed to the large-object space.
	big := h.MakeVector(1000, h.Null())
	if h.VectorLen(big) != 1000 {
		t.Fatal("large vector allocation failed")
	}
	if c.los.LiveObjects() != 1 {
		t.Errorf("large vector not in the large-object space (live=%d)", c.los.LiveObjects())
	}
}

func TestLargeObjectLifecycle(t *testing.T) {
	h := heap.New()
	c := New(h, 8192, WithExpansion(2))
	s := h.Scope()
	v := h.MakeVector(600, h.Fix(9)) // 601 words: large
	if got := c.los.LiveObjects(); got != 1 {
		t.Fatalf("large objects live = %d, want 1", got)
	}
	if h.FixVal(h.VectorRef(v, 599)) != 9 {
		t.Fatal("large vector contents wrong")
	}
	c.Collect() // rooted: survives in place
	if h.FixVal(h.VectorRef(v, 0)) != 9 || c.los.LiveObjects() != 1 {
		t.Fatal("large vector did not survive collection")
	}
	s.Close()
	c.Collect() // dropped: space returns to the pool
	if c.los.LiveObjects() != 0 || c.los.PooledSpaces() == 0 {
		t.Fatalf("dead large object not pooled: live=%d pool=%d",
			c.los.LiveObjects(), c.los.PooledSpaces())
	}
	s2 := h.Scope()
	defer s2.Close()
	h.MakeVector(600, h.Fix(1))
	if c.los.PooledSpaces() != 0 {
		t.Error("reallocation did not reuse the pooled space")
	}
}

func TestParsabilityInvariant(t *testing.T) {
	h := heap.New()
	c := New(h, 2048)
	s := h.Scope()
	defer s.Close()

	var keep []heap.Ref
	for i := 0; i < 50; i++ {
		keep = append(keep, h.Cons(h.Fix(int64(i)), h.Null()))
		gctest.Churn(h, 50)
	}
	c.Collect()
	// WalkSpace panics on unparsable spaces; LiveWords exercises it fully.
	if live := c.Live(); live < 50*3 {
		t.Errorf("live = %d words, want >= 150", live)
	}
	for i, r := range keep {
		if got := h.FixVal(h.Car(r)); got != int64(i) {
			t.Errorf("pair %d corrupted: %d", i, got)
		}
	}
}

func TestGrowthAddsSpaces(t *testing.T) {
	h := heap.New()
	c := New(h, 512, WithExpansion(2))
	s := h.Scope()
	defer s.Close()
	list := gctest.BuildList(h, 1000)
	gctest.CheckList(t, h, list, 1000)
	if len(c.spaces) < 2 {
		t.Errorf("expected growth to add spaces, have %d", len(c.spaces))
	}
	if got := c.HeapWords(); got < 3000 {
		t.Errorf("heap = %d words, want >= 3000", got)
	}
}

func TestOOMPanicsWithoutExpansion(t *testing.T) {
	h := heap.New()
	New(h, 128)
	s := h.Scope()
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Error("allocating past a fixed mark/sweep heap did not panic")
		}
	}()
	acc := h.Null()
	for i := 0; i < heap.BlockWords; i++ { // 3 words per pair, all live
		acc = h.Cons(h.Fix(int64(i)), acc)
	}
}

func TestMarkConsIsOneOverLMinusOne(t *testing.T) {
	// With live storage pinned at 1/L of the heap, the steady-state
	// mark/cons ratio must approach 1/(L-1) (Section 5 of the paper).
	const heapWords = 30000
	const L = 3
	h := heap.New()
	c := New(h, heapWords)
	s := h.Scope()
	defer s.Close()

	live := heapWords / L
	_ = gctest.BuildList(h, live/3) // pairs are 3 words

	start := h.Stats.WordsAllocated
	marked0 := c.GCStats().WordsMarked
	gctest.Churn(h, 100000)
	markCons := float64(c.GCStats().WordsMarked-marked0) /
		float64(h.Stats.WordsAllocated-start)

	want := 1.0 / (L - 1)
	if markCons < want*0.8 || markCons > want*1.25 {
		t.Errorf("mark/cons = %.3f, want about %.3f", markCons, want)
	}
}
