package marksweep

import (
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

func newIncremental(t *testing.T, words int, opts ...Option) (*heap.Heap, *Collector) {
	t.Helper()
	h := heap.New()
	h.SetGCIncremental(true)
	c := New(h, words, opts...)
	if c.incr == nil {
		t.Fatal("incremental mode did not arm")
	}
	return h, c
}

func TestIncrementalStress(t *testing.T) {
	h := heap.New()
	h.SetGCIncremental(true)
	c := New(h, 8192)
	gctest.StressCollector(t, h, c)
}

// TestIncrementalSurvivors pins semantic equivalence at this layer: the
// same build-churn-drop program leaves the same live data whether
// collection is incremental or stop-the-world.
func TestIncrementalSurvivors(t *testing.T) {
	run := func(incremental bool) []int64 {
		h := heap.New()
		h.SetGCIncremental(incremental)
		c := New(h, 8192)
		s := h.Scope()
		defer s.Close()
		var keep []heap.Ref
		for i := 0; i < 40; i++ {
			keep = append(keep, h.Cons(h.Fix(int64(i*i)), h.Null()))
			gctest.Churn(h, 400)
		}
		c.Collect()
		vals := make([]int64, len(keep))
		for i, r := range keep {
			vals[i] = h.FixVal(h.Car(r))
		}
		return vals
	}
	stw, incr := run(false), run(true)
	for i := range stw {
		if stw[i] != incr[i] {
			t.Fatalf("survivor %d: stw=%d incr=%d", i, stw[i], incr[i])
		}
	}
}

// TestIncrementalBoundsPauses is the headline property: with cycles split
// into slices and per-block sweeps, the largest mutator-visible pause must
// sit far below the stop-the-world collector's whole-heap pauses on the
// same program.
func TestIncrementalBoundsPauses(t *testing.T) {
	run := func(incremental bool) *heap.GCStats {
		h := heap.New()
		h.SetGCIncremental(incremental)
		c := New(h, 65536)
		s := h.Scope()
		defer s.Close()
		_ = gctest.BuildList(h, 2000) // 6000 words pinned live
		// Short-lived lists: every Cons stores the previous pair into the
		// new one, so the churn exercises the insertion barrier with real
		// pointer stores, not just fixnum initialization.
		for chunk := 0; chunk < 600; chunk++ {
			cs := h.Scope()
			_ = gctest.BuildList(h, 200)
			cs.Close()
		}
		return c.GCStats()
	}
	stw, incr := run(false), run(true)
	if stw.Collections == 0 || incr.Collections == 0 {
		t.Fatalf("no collections ran: stw=%d incr=%d", stw.Collections, incr.Collections)
	}
	if incr.MaxPauseWords*5 > stw.MaxPauseWords {
		t.Errorf("incremental max pause %d not 5x below stop-the-world %d",
			incr.MaxPauseWords, stw.MaxPauseWords)
	}
	if incr.Pauses.P99()*5 > stw.Pauses.P99() {
		t.Errorf("incremental p99 pause %d not 5x below stop-the-world %d",
			incr.Pauses.P99(), stw.Pauses.P99())
	}
	if incr.BarrierShades == 0 {
		t.Error("insertion barrier never shaded anything on a churn workload")
	}
}

// TestIncrementalVerifiesMidCycle drives the verifier at every phase of the
// incremental cycle via the after-collection hook plus explicit checks
// while marking and sweeping are in progress.
func TestIncrementalVerifiesMidCycle(t *testing.T) {
	h, c := newIncremental(t, 16384)
	h.SetAfterGC(func() {
		if err := heap.VerifyCollector(h, c); err != nil {
			t.Fatalf("verify after collection: %v", err)
		}
	})
	s := h.Scope()
	defer s.Close()
	_ = gctest.BuildList(h, 800)
	sawMark, sawSweep := false, false
	for i := 0; i < 3000; i++ {
		h.Cons(h.Fix(int64(i)), h.Null())
		switch c.phase {
		case msMarking:
			sawMark = true
		case msSweeping:
			sawSweep = true
		}
		if i%512 == 0 {
			if err := heap.VerifyCollector(h, c); err != nil {
				t.Fatalf("verify at op %d (phase %d): %v", i, c.phase, err)
			}
		}
	}
	if !sawMark || !sawSweep {
		t.Fatalf("cycle phases not exercised: marking=%v sweeping=%v", sawMark, sawSweep)
	}
}

// TestIncrementalExplicitCollectMidCycle pins the stop-the-world fallback:
// an explicit Collect during each phase resolves the in-progress cycle and
// leaves a clean, fully swept heap.
func TestIncrementalExplicitCollectMidCycle(t *testing.T) {
	for _, target := range []int{msMarking, msSweeping} {
		h, c := newIncremental(t, 16384)
		s := h.Scope()
		list := gctest.BuildList(h, 500)
		for i := 0; i < 20000 && c.phase != target; i++ {
			h.Cons(h.Fix(int64(i)), h.Null())
		}
		if c.phase != target {
			t.Fatalf("never reached phase %d", target)
		}
		c.Collect()
		if c.phase != msIdle {
			t.Fatalf("explicit collect left phase %d", c.phase)
		}
		if err := heap.Check(h); err != nil {
			t.Fatalf("heap.Check after explicit collect in phase %d: %v", target, err)
		}
		gctest.CheckList(t, h, list, 500)
		s.Close()
	}
}

// TestIncrementalLargeObjects covers the large-object paths during a cycle:
// spaces minted or reused from the pool while marking is active must join
// the cycle's region and survive if live.
func TestIncrementalLargeObjects(t *testing.T) {
	h, c := newIncremental(t, 16384)
	s := h.Scope()
	defer s.Close()
	_ = gctest.BuildList(h, 500)
	for c.phase != msMarking {
		h.Cons(h.Fix(1), h.Null())
	}
	v := h.MakeVector(600, h.Fix(7)) // large: minted mid-mark
	for c.phase == msMarking {
		h.Cons(h.Fix(2), h.Null())
	}
	if h.FixVal(h.VectorRef(v, 599)) != 7 {
		t.Fatal("large object allocated during marking was corrupted")
	}
	c.Collect()
	if h.FixVal(h.VectorRef(v, 0)) != 7 || c.los.LiveObjects() != 1 {
		t.Fatal("large object allocated during marking did not survive")
	}
}

func TestIncrementalPausesMatchTotals(t *testing.T) {
	h, c := newIncremental(t, 16384)
	var logged uint64
	h.SetPauseLog(func(words uint64) { logged += words })
	s := h.Scope()
	defer s.Close()
	_ = gctest.BuildList(h, 500)
	gctest.Churn(h, 60000)
	g := c.GCStats()
	if g.Pauses.TotalWords != g.TotalPauseWords || g.Pauses.MaxWords != g.MaxPauseWords {
		t.Errorf("histogram totals diverge from pause counters: %+v", g)
	}
	if logged != g.TotalPauseWords {
		t.Errorf("pause log saw %d words, stats %d", logged, g.TotalPauseWords)
	}
	if g.Pauses.Count == 0 {
		t.Error("no pauses recorded")
	}
}
