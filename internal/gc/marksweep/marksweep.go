// Package marksweep implements the non-generational mark/sweep collector
// against which the paper states its headline comparison: its mark/cons
// ratio under the radioactive decay model is 1/(L-1) (Section 5).
//
// Each managed space is kept linearly parsable: free storage is covered by
// TFree blocks threaded onto an address-ordered first-fit free list, and
// sweep coalesces adjacent free blocks. Because objects never move, the
// heap grows by adding spaces.
package marksweep

import (
	"fmt"

	"rdgc/internal/heap"
)

const noBlock = -1

// Collector is a mark/sweep collector over one or more spaces.
type Collector struct {
	h      *heap.Heap
	spaces []*heap.Space
	// freeHead[i] is the offset of the first free block in spaces[i]; free
	// blocks chain through payload word 0 (a fixnum offset, noBlock ends).
	freeHead []int
	inHeap   []bool // indexed by SpaceID
	stats    heap.GCStats

	// marker is the persistent tracing engine, re-armed per collection so
	// steady-state collections allocate nothing.
	marker *heap.Marker

	expand float64
}

// Option configures the collector.
type Option func(*Collector)

// WithExpansion permits heap growth: when a collection cannot satisfy an
// allocation, or leaves the inverse load factor below invLoad, a new space
// is added sized to restore it.
func WithExpansion(invLoad float64) Option {
	if invLoad <= 1 {
		panic("marksweep: inverse load factor must exceed 1")
	}
	return func(c *Collector) { c.expand = invLoad }
}

// New creates a mark/sweep collector with an initial space of the given
// size and installs it as h's allocator.
func New(h *heap.Heap, words int, opts ...Option) *Collector {
	c := &Collector{h: h, marker: heap.NewMarker(h, nil)}
	for _, o := range opts {
		o(c)
	}
	c.addSpace(words)
	h.SetAllocator(c)
	return c
}

func (c *Collector) addSpace(words int) {
	s := c.h.NewSpace(fmt.Sprintf("markswept-%d", len(c.spaces)), words)
	s.Top = s.Cap()
	s.Mem[0] = heap.HeaderWord(heap.TFree, s.Cap()-1)
	s.Mem[1] = heap.FixnumWord(noBlock)
	c.spaces = append(c.spaces, s)
	c.freeHead = append(c.freeHead, 0)
	for int(s.ID) >= len(c.inHeap) {
		c.inHeap = append(c.inHeap, false)
	}
	c.inHeap[s.ID] = true
}

// Name implements heap.Collector.
func (c *Collector) Name() string { return "mark/sweep" }

// GCStats implements heap.Collector.
func (c *Collector) GCStats() *heap.GCStats { return &c.stats }

// Live returns the words occupied by non-free blocks.
func (c *Collector) Live() int {
	n := 0
	for _, s := range c.spaces {
		n += heap.LiveWords(s)
	}
	return n
}

// VerifySpec implements heap.Verifiable: every managed space is live (the
// collector never moves objects, so there is no scratch space), and there
// is no remembered set.
func (c *Collector) VerifySpec() heap.VerifySpec {
	return heap.VerifySpec{Live: c.spaces}
}

// HeapWords returns the total capacity of the managed spaces.
func (c *Collector) HeapWords() int {
	n := 0
	for _, s := range c.spaces {
		n += s.Cap()
	}
	return n
}

// AllocRaw implements heap.Allocator.
func (c *Collector) AllocRaw(t heap.Type, payload int) heap.Word {
	total := 1 + payload + c.h.ExtraWords()
	s, off, ok := c.tryAlloc(total)
	if !ok {
		c.Collect()
		s, off, ok = c.tryAlloc(total)
		if !ok && c.expand > 0 {
			c.grow(total)
			s, off, ok = c.tryAlloc(total)
		}
		if !ok {
			panic(fmt.Sprintf("marksweep: out of memory: need %d words", total))
		}
	}
	return c.h.InitObject(s, off, t, payload)
}

// grow adds a space large enough to restore the target inverse load factor
// (and in any case to satisfy the pending request).
func (c *Collector) grow(need int) {
	live := c.Live()
	want := int(float64(live)*c.expand) - c.HeapWords()
	if want < need+1 {
		want = need + 1
	}
	if min := c.HeapWords(); want < min {
		want = min // at least double the heap to amortize growth
	}
	c.addSpace(want)
}

// tryAlloc finds the first free block of at least n words across all
// spaces, unlinks it, and returns any remainder to the list in place.
func (c *Collector) tryAlloc(n int) (*heap.Space, int, bool) {
	for i, s := range c.spaces {
		if off, ok := c.tryAllocIn(i, s, n); ok {
			return s, off, true
		}
	}
	return nil, 0, false
}

func (c *Collector) tryAllocIn(i int, s *heap.Space, n int) (int, bool) {
	prev := noBlock
	for off := c.freeHead[i]; off != noBlock; {
		hdr := s.Mem[off]
		blockWords := heap.ObjWords(hdr)
		next := c.nextFree(s, off)
		if blockWords >= n {
			replacement := next
			if rem := blockWords - n; rem > 1 {
				remOff := off + n
				s.Mem[remOff] = heap.HeaderWord(heap.TFree, rem-1)
				c.setNextFree(s, remOff, next)
				replacement = remOff
			} else if rem == 1 {
				// A lone header word cannot hold a list link; leave it as
				// unlinked-but-parsable dead space until sweep reclaims it.
				s.Mem[off+n] = heap.HeaderWord(heap.TFree, 0)
			}
			if prev == noBlock {
				c.freeHead[i] = replacement
			} else {
				c.setNextFree(s, prev, replacement)
			}
			return off, true
		}
		prev = off
		off = next
	}
	return 0, false
}

func (c *Collector) nextFree(s *heap.Space, off int) int {
	if heap.HeaderSize(s.Mem[off]) == 0 {
		return noBlock
	}
	return int(heap.FixnumVal(s.Mem[off+1]))
}

func (c *Collector) setNextFree(s *heap.Space, off, next int) {
	if heap.HeaderSize(s.Mem[off]) > 0 {
		s.Mem[off+1] = heap.FixnumWord(int64(next))
	}
}

// Collect implements heap.Collector: mark from roots, then sweep every
// space, rebuilding the free lists with coalescing.
func (c *Collector) Collect() {
	m := c.marker
	m.SetRegion(c.spaces...)
	m.Begin()
	m.Run()
	c.stats.WordsMarked += m.WordsMarked
	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.AddPause(m.WordsMarked)
	c.stats.NoteLive(int(m.WordsMarked))
	for i, s := range c.spaces {
		c.sweep(i, s)
	}
	c.h.AfterGC()
}

// sweep walks one space, clearing marks on survivors and merging dead and
// free blocks into maximal free blocks linked in address order. Blocks of a
// single word cannot carry a list link and stay unlinked until coalescing
// merges them into a neighbour.
func (c *Collector) sweep(i int, s *heap.Space) {
	c.freeHead[i] = noBlock
	tail := noBlock     // last block linked into the free list
	lastFree := noBlock // trailing free block being coalesced, or noBlock
	var swept uint64
	link := func(off int) {
		if heap.HeaderSize(s.Mem[off]) == 0 {
			return // 1-word block: leave unlinked
		}
		c.setNextFree(s, off, noBlock)
		if c.freeHead[i] == noBlock {
			c.freeHead[i] = off
		} else {
			c.setNextFree(s, tail, off)
		}
		tail = off
	}
	heap.WalkSpace(s, func(off int, hdr heap.Word) bool {
		swept += uint64(heap.ObjWords(hdr))
		if heap.Marked(hdr) {
			s.Mem[off] = heap.ClearMark(hdr)
			lastFree = noBlock
			return true
		}
		n := heap.ObjWords(hdr)
		if lastFree != noBlock {
			grown := heap.ObjWords(s.Mem[lastFree]) + n
			wasUnlinked := heap.HeaderSize(s.Mem[lastFree]) == 0
			s.Mem[lastFree] = heap.HeaderWord(heap.TFree, grown-1)
			c.setNextFree(s, lastFree, noBlock)
			if wasUnlinked {
				link(lastFree) // growing past 1 word makes it linkable
			}
			return true
		}
		s.Mem[off] = heap.HeaderWord(heap.TFree, n-1)
		link(off)
		lastFree = off
		return true
	})
	c.stats.WordsSwept += swept
}
