// Package marksweep implements the non-generational mark/sweep collector
// against which the paper states its headline comparison: its mark/cons
// ratio under the radioactive decay model is 1/(L-1) (Section 5).
//
// Each managed space is block-structured (heap.NewBlockedSpace): no object
// straddles a heap.BlockWords boundary, and each block carries its own
// address-ordered first-fit free list. Marking records liveness in the spaces' side bitmaps, and the
// sweep — heap.Sweeper, which parallelizes over blocks when the heap is
// configured with tracing workers — rebuilds the per-block free lists with
// coalescing and clears the bitmaps per block.
//
// Objects whose footprint exceeds heap.LargeObjectWords cannot share a
// block fairly and go to a segregated large-object space instead: one space
// per object, never copied, reclaimed whole when the object dies.
//
// Because objects never move, the blocked heap grows by adding spaces.
package marksweep

import (
	"fmt"

	"rdgc/internal/heap"
)

// Collector is a mark/sweep collector over one or more blocked spaces plus a
// large-object space.
type Collector struct {
	h      *heap.Heap
	spaces []*heap.Space
	// hint[i] is the first block of spaces[i] that might still have free
	// storage. Within a mutator phase a block's free list only shrinks, so
	// once a block's list empties every later request can skip it; sweep
	// refills lists and resets the hints. Skipping only completely full
	// blocks keeps placement identical to a plain first-fit scan.
	hint []int
	los  *heap.LargeObjectSpace

	stats heap.GCStats

	// marker and sweeper are the persistent tracing and sweeping engines,
	// re-armed per collection so steady-state collections allocate nothing.
	marker  *heap.Marker
	sweeper *heap.Sweeper

	// liveBuf is reusable scratch for region and verify lists that append
	// the live large-object spaces to the blocked ones.
	liveBuf []*heap.Space

	expand float64

	// Incremental-mode state (incremental.go); incr is nil in
	// stop-the-world mode and every incremental hook is compiled out of the
	// hot paths behind that one check.
	incr         *heap.IncrMarker
	phase        int
	nextCycle    uint64
	sweepDebt    int
	lastLive     uint64
	sweepPending func(s *heap.Space, off int) bool
}

// Option configures the collector.
type Option func(*Collector)

// WithExpansion permits heap growth: when a collection cannot satisfy an
// allocation, or leaves the inverse load factor below invLoad, a new space
// is added sized to restore it.
func WithExpansion(invLoad float64) Option {
	if invLoad <= 1 {
		panic("marksweep: inverse load factor must exceed 1")
	}
	return func(c *Collector) { c.expand = invLoad }
}

// New creates a mark/sweep collector with an initial blocked space of the
// given size and installs it as h's allocator.
func New(h *heap.Heap, words int, opts ...Option) *Collector {
	c := &Collector{
		h:       h,
		marker:  heap.NewMarker(h, nil),
		sweeper: heap.NewSweeper(h),
		los:     heap.NewLargeObjectSpace(h, "markswept"),
	}
	for _, o := range opts {
		o(c)
	}
	c.addSpace(words)
	h.SetAllocator(c)
	if h.GCIncremental() {
		c.incrInit()
	}
	return c
}

func (c *Collector) addSpace(words int) {
	s := c.h.NewBlockedSpace(fmt.Sprintf("markswept-%d", len(c.spaces)), words)
	c.spaces = append(c.spaces, s)
	c.hint = append(c.hint, 0)
}

// Name implements heap.Collector.
func (c *Collector) Name() string { return "mark/sweep" }

// GCStats implements heap.Collector.
func (c *Collector) GCStats() *heap.GCStats { return &c.stats }

// Live returns the words occupied by non-free blocks, including live large
// objects.
func (c *Collector) Live() int {
	n := 0
	for _, s := range c.spaces {
		n += heap.LiveWords(s)
	}
	return n + c.los.LiveWords()
}

// VerifySpec implements heap.Verifiable: every blocked space and every live
// large-object space is live (the collector never moves objects). Pooled
// large-object spaces are scratch and deliberately absent. There is no
// remembered set. In incremental mode the spec also declares the current
// phase: mid-mark bits are legitimate while marking, and during the lazy
// sweep the marks on still-unswept blocks are authoritative.
func (c *Collector) VerifySpec() heap.VerifySpec {
	c.liveBuf = c.los.AppendLive(append(c.liveBuf[:0], c.spaces...))
	spec := heap.VerifySpec{Live: c.liveBuf}
	switch c.phase {
	case msMarking:
		spec.MarkingActive = true
	case msSweeping:
		spec.SweepPending = c.sweepPending
	}
	return spec
}

// HeapWords returns the total capacity of the blocked spaces. Large-object
// spaces size themselves per object and are excluded: growth policy targets
// the blocked heap only.
func (c *Collector) HeapWords() int {
	n := 0
	for _, s := range c.spaces {
		n += s.Cap()
	}
	return n
}

// AllocRaw implements heap.Allocator.
func (c *Collector) AllocRaw(t heap.Type, payload int) heap.Word {
	total := 1 + payload + c.h.ExtraWords()
	if c.incr != nil {
		return c.allocRawIncr(t, payload, total)
	}
	if total > heap.LargeObjectWords {
		return c.allocLarge(t, payload, total)
	}
	s, off, ok := c.tryAlloc(total)
	if !ok {
		c.Collect()
		s, off, ok = c.tryAlloc(total)
		if !ok && c.expand > 0 {
			c.grow(total)
			s, off, ok = c.tryAlloc(total)
		}
		if !ok {
			panic(fmt.Sprintf("marksweep: out of memory: need %d words", total))
		}
	}
	return c.h.InitObject(s, off, t, payload)
}

// allocLarge places an object in the large-object space: reuse a pooled
// space if one fits, otherwise collect (which may repopulate the pool), and
// only then mint a fresh space.
func (c *Collector) allocLarge(t heap.Type, payload, total int) heap.Word {
	s, ok := c.los.FromPool(total)
	if !ok {
		c.Collect()
		s = c.los.Alloc(total)
	}
	return c.h.InitObject(s, 0, t, payload)
}

// grow adds a space large enough to restore the target inverse load factor
// (and in any case to satisfy the pending request).
func (c *Collector) grow(need int) {
	live := c.Live()
	want := int(float64(live)*c.expand) - c.HeapWords()
	if want < need+1 {
		want = need + 1
	}
	if min := c.HeapWords(); want < min {
		want = min // at least double the blocked heap to amortize growth
	}
	c.addSpace(want)
}

// tryAlloc finds the first free block of at least n words across all blocked
// spaces, scanning each space's blocks first-fit from its hint.
func (c *Collector) tryAlloc(n int) (*heap.Space, int, bool) {
	for i, s := range c.spaces {
		fh := s.Blocks.FreeHead
		for b := c.hint[i]; b < len(fh); b++ {
			if fh[b] == heap.NoFreeBlock {
				if b == c.hint[i] {
					c.hint[i] = b + 1
				}
				continue
			}
			if off, ok := s.AllocFromBlock(b, n); ok {
				return s, off, true
			}
		}
	}
	return nil, 0, false
}

// Collect implements heap.Collector: mark from roots into the side bitmaps,
// then sweep every blocked space block by block (in parallel when the heap
// has tracing workers) and probe each large object's mark bit. The recorded
// pause is the full collection's work — words marked plus words swept —
// since the mutator waits for all of it. In incremental mode an explicit
// collection is still this stop-the-world routine, entered through stwReset
// so any in-progress cycle is resolved first.
func (c *Collector) Collect() {
	var pause uint64
	if c.incr != nil {
		pause = c.stwReset()
	}
	m := c.marker
	c.liveBuf = c.los.AppendLive(append(c.liveBuf[:0], c.spaces...))
	m.SetRegion(c.liveBuf...)
	m.Begin()
	m.Run()
	c.stats.WordsMarked += m.WordsMarked
	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.NoteLive(int(m.WordsMarked))
	swept := c.sweeper.Sweep(c.spaces...)
	swept += c.los.Sweep()
	c.stats.WordsSwept += swept
	c.h.AddPause(&c.stats, pause+m.WordsMarked+swept)
	for i := range c.hint {
		c.hint[i] = 0
	}
	if c.incr != nil {
		c.lastLive = m.WordsMarked
		c.scheduleNext()
	}
	c.h.AfterGC()
}
