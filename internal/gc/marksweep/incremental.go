package marksweep

import (
	"fmt"

	"rdgc/internal/heap"
)

// Incremental mode (heap.SetGCIncremental / -gcincr): the same mark/sweep
// algorithm with its two monolithic pauses split into bounded pieces.
//
// Marking runs in slices of at most the heap's slice budget, interleaved
// with allocation at heap.IncrMarker's 4:1 pacing, under a Dijkstra
// insertion barrier (the collector installs itself as the heap's Barrier
// and shades every pointer stored into the heap). Objects allocate white
// during the cycle; the termination phase re-scans the roots — root slots
// are not barriered — and drains the remaining gray objects, so anything
// the mutator still holds is marked before the sweep is armed.
//
// Sweeping is lazy and block-granular: termination flags every block
// unswept (heap.Sweeper.BeginLazy) and each block is swept exactly once —
// on demand when the first-fit scan reaches it, or by a paced background
// scan that retires one block per half-block of allocation so the sweep
// finishes well before the next cycle. The swept heap image is
// bit-identical to a stop-the-world sweep, so the surviving object set is
// exactly what a stop-the-world collection at the same termination point
// would keep.
//
// An explicit Collect (the drivers' full-collection operation) remains
// stop-the-world: any in-progress cycle is abandoned (marks cleared) or
// flushed (pending sweeps completed) first, so explicit collections are a
// synchronization point with identical semantics in both modes.

// Collection phases of the incremental cycle.
const (
	msIdle     = iota // between cycles: free lists valid, no marks
	msMarking         // slices running; barrier active; marks partial
	msSweeping        // mark complete; marks authoritative on unswept blocks
)

// incrInit arms incremental mode on a freshly built collector.
func (c *Collector) incrInit() {
	c.incr = heap.NewIncrMarker(c.h, c.marker)
	c.phase = msIdle
	c.nextCycle = c.h.Now() + uint64(c.HeapWords()/2)
	c.sweepPending = func(s *heap.Space, off int) bool {
		bt := s.Blocks
		return bt != nil && len(bt.Unswept) > 0 && bt.UnsweptAt(off>>heap.BlockShift)
	}
	c.h.SetBarrier(c)
}

// RecordWrite implements heap.Barrier: the Dijkstra insertion barrier.
// While marking is active, any pointer stored into a heap object is shaded
// gray before the mutator proceeds, so a scanned (black) object can never
// hide a reference to an unmarked (white) one.
func (c *Collector) RecordWrite(_, val heap.Word) {
	c.incr.Shade(val, &c.stats)
}

// allocRawIncr is AllocRaw in incremental mode: collector work is paced off
// the allocation clock (incrTick) rather than deferred to allocation
// failure, and the first-fit scan sweeps blocks on demand. Allocation
// failure still falls back to a stop-the-world collection (and growth),
// preserving the out-of-memory semantics of the stop-the-world mode.
func (c *Collector) allocRawIncr(t heap.Type, payload, total int) heap.Word {
	c.incrTick(total)
	if total > heap.LargeObjectWords {
		return c.allocLargeIncr(t, payload, total)
	}
	s, off, ok := c.tryAllocIncr(total)
	if !ok && c.phase == msMarking {
		// Allocation pressure beat the mark pacing: terminate the cycle now
		// — the termination pause is only the remaining gray work, where the
		// stop-the-world fallback below would re-mark everything — then
		// retry with every block lazily sweepable.
		c.finishMark()
		s, off, ok = c.tryAllocIncr(total)
	}
	if !ok {
		c.Collect()
		s, off, ok = c.tryAllocIncr(total)
		if !ok && c.expand > 0 {
			c.grow(total)
			s, off, ok = c.tryAllocIncr(total)
		}
		if !ok {
			panic(fmt.Sprintf("marksweep: out of memory: need %d words", total))
		}
	}
	return c.h.InitObject(s, off, t, payload)
}

// incrTick advances the collector by one allocation of n words: it starts a
// cycle when the trigger clock expires, runs a mark slice when the
// allocation debt warrants one, and retires pending sweep blocks at a
// steady background rate. Every piece of work it does is recorded as its
// own mutator-visible pause.
func (c *Collector) incrTick(n int) {
	switch c.phase {
	case msIdle:
		if c.h.Now() >= c.nextCycle {
			c.startCycle()
		}
	case msMarking:
		if c.incr.NeedSlice(n) {
			c.h.AddPause(&c.stats, c.incr.RunSlice())
			if c.incr.Done() {
				c.finishMark()
			}
		}
	case msSweeping:
		// One background block per half-block allocated: the whole heap is
		// swept within heapBlocks/2 blocks' worth of allocation even if the
		// allocator never walks the tail blocks.
		c.sweepDebt += n
		if c.sweepDebt >= heap.BlockWords/2 {
			c.sweepDebt = 0
			if words, ok := c.sweeper.SweepPendingBlock(); ok {
				c.stats.WordsSwept += uint64(words)
				c.h.AddPause(&c.stats, uint64(words))
			}
			if c.sweeper.LazyPending() == 0 {
				c.finishCycle()
			}
		}
	}
}

// startCycle begins an incremental mark: region armed over the blocked
// spaces and the live large objects, roots scanned gray. The root scan is
// the cycle's first pause.
func (c *Collector) startCycle() {
	m := c.marker
	c.liveBuf = c.los.AppendLive(append(c.liveBuf[:0], c.spaces...))
	m.SetRegion(c.liveBuf...)
	m.Begin()
	c.phase = msMarking
	c.h.AddPause(&c.stats, c.incr.StartRoots())
}

// finishMark is the termination phase, the one remaining stop-the-world
// step: re-scan the roots, drain the gray stack to empty, sweep the
// large-object space (block-granular laziness does not apply to one-object
// spaces), and arm the lazy sweep over every block. Its pause is the words
// of that work; with slices retiring most of the trace beforehand, it is
// bounded by the slice budget plus the root count in steady state.
func (c *Collector) finishMark() {
	m := c.marker
	pause := c.incr.FinishDrain()
	c.stats.WordsMarked += m.WordsMarked
	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.NoteLive(int(m.WordsMarked))
	losSwept := c.los.Sweep()
	c.stats.WordsSwept += losSwept
	c.sweeper.BeginLazy(c.spaces...)
	for i := range c.hint {
		c.hint[i] = 0
	}
	c.lastLive = m.WordsMarked
	c.phase = msSweeping
	c.sweepDebt = 0
	// The trigger is computed now, while free space genuinely equals
	// heap - live: by the time the lazy sweep finishes, allocation has
	// already re-consumed part of the freed storage, and scheduling from
	// that point would overshoot exhaustion.
	c.scheduleNext()
	c.h.AddPause(&c.stats, pause+losSwept)
	c.h.AfterGC()
}

// finishCycle closes the sweep phase; the next trigger was already set at
// termination.
func (c *Collector) finishCycle() {
	c.phase = msIdle
}

// scheduleNext sets the next cycle trigger. Marking lastLive words at the
// 4:1 pacing consumes lastLive/4 words of allocation, so a cycle started
// with lastLive/2 free words remaining terminates with a 2x margin before
// allocation could exhaust the heap; the trigger therefore fires after
// free - lastLive/2 more words, which keeps the collection frequency — and
// so the mark/cons ratio — close to the stop-the-world collector's
// collect-on-exhaustion schedule. The one-block floor keeps a nearly full
// heap re-triggering promptly (a mis-estimate just falls back to a
// stop-the-world collection on allocation failure).
func (c *Collector) scheduleNext() {
	free := c.HeapWords() - int(c.lastLive)
	interval := free - int(c.lastLive)/2
	if interval < heap.BlockWords {
		interval = heap.BlockWords
	}
	c.nextCycle = c.h.Now() + uint64(interval)
}

// stwReset returns the collector to the between-cycles state an explicit
// stop-the-world collection requires, returning the pause words the reset
// itself cost: a cycle caught marking is abandoned (its partial marks
// cleared — they would truncate the full trace), and pending lazy sweeps
// are flushed (the stop-the-world sweep requires valid free lists and a
// one-sweep-per-mark discipline).
func (c *Collector) stwReset() uint64 {
	switch c.phase {
	case msMarking:
		c.incr.Cancel()
		c.liveBuf = c.los.AppendLive(append(c.liveBuf[:0], c.spaces...))
		heap.ClearMarks(c.liveBuf...)
	case msSweeping:
		flushed := c.sweeper.FinishLazy()
		c.stats.WordsSwept += flushed
		c.phase = msIdle
		return flushed
	}
	c.phase = msIdle
	return 0
}

// tryAllocIncr is the first-fit scan with on-demand sweeping: a block's
// free list (and the emptiness check behind the hint advance) can only be
// trusted after its lazy sweep, so any pending block is swept — its own
// recorded pause — the moment the scan reaches it.
func (c *Collector) tryAllocIncr(n int) (*heap.Space, int, bool) {
	for i, s := range c.spaces {
		fh := s.Blocks.FreeHead
		for b := c.hint[i]; b < len(fh); b++ {
			if words := c.sweeper.EnsureSwept(s, b); words > 0 {
				c.stats.WordsSwept += uint64(words)
				c.h.AddPause(&c.stats, uint64(words))
				if c.sweeper.LazyPending() == 0 && c.phase == msSweeping {
					c.finishCycle()
				}
			}
			if fh[b] == heap.NoFreeBlock {
				if b == c.hint[i] {
					c.hint[i] = b + 1
				}
				continue
			}
			if off, ok := s.AllocFromBlock(b, n); ok {
				return s, off, true
			}
		}
	}
	return nil, 0, false
}

// allocLargeIncr places a large object during incremental operation. Unlike
// the stop-the-world path, a pool miss does not force a collection — that
// would be exactly the unbounded pause incremental mode exists to avoid —
// it just mints a fresh space. While a mark is in progress the object's
// space is added to the cycle's region, so the termination root re-scan
// can mark it and the large-object sweep will not free it if it is live.
func (c *Collector) allocLargeIncr(t heap.Type, payload, total int) heap.Word {
	s, ok := c.los.FromPool(total)
	if !ok {
		s = c.los.Alloc(total)
	}
	if c.phase == msMarking {
		c.marker.Region().Add(s.ID)
	}
	return c.h.InitObject(s, 0, t, payload)
}
