package npms

import (
	"os"
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

// TestMain seeds the engine defaults from the environment, the way the
// drivers do, so CI can re-run this package's whole suite with parallel
// tracing (RDGC_GC_WORKERS) and with incremental collection
// (RDGC_GC_INCR=1).
func TestMain(m *testing.M) {
	heap.SetDefaultGCWorkers(heap.GCWorkersFromEnv())
	heap.SetDefaultGCLAB(heap.GCLABFromEnv())
	heap.SetDefaultGCIncremental(heap.GCIncrFromEnv())
	heap.SetDefaultGCSliceBudget(heap.GCSliceFromEnv())
	os.Exit(m.Run())
}

func TestIncrementalStress(t *testing.T) {
	h := heap.New()
	h.SetGCIncremental(true)
	c := New(h, 8, 2048)
	gctest.StressCollector(t, h, c)
}

func TestIncrementalStressNoCompaction(t *testing.T) {
	h := heap.New()
	h.SetGCIncremental(true)
	c := New(h, 8, 2048, WithCompactEvery(0))
	gctest.StressCollector(t, h, c)
}

// TestIncrementalSurvivors pins that the same program leaves the same live
// data under incremental and stop-the-world collection.
func TestIncrementalSurvivors(t *testing.T) {
	run := func(incremental bool) []int64 {
		h := heap.New()
		h.SetGCIncremental(incremental)
		c := New(h, 16, 4096)
		s := h.Scope()
		defer s.Close()
		var keep []heap.Ref
		for i := 0; i < 40; i++ {
			keep = append(keep, h.Cons(h.Fix(int64(i*7)), h.Null()))
			cs := h.Scope()
			_ = gctest.BuildList(h, 150)
			cs.Close()
		}
		c.Collect()
		vals := make([]int64, len(keep))
		for i, r := range keep {
			vals[i] = h.FixVal(h.Car(r))
		}
		return vals
	}
	stw, incr := run(false), run(true)
	for i := range stw {
		if stw[i] != incr[i] {
			t.Fatalf("survivor %d: stw=%d incr=%d", i, stw[i], incr[i])
		}
	}
}

// TestIncrementalCyclesRun asserts the incremental machinery actually
// engages (phases traversed, slices run, pauses recorded) on a churn
// workload, with the verifier clean at every phase.
func TestIncrementalCyclesRun(t *testing.T) {
	h := heap.New()
	h.SetGCIncremental(true)
	c := New(h, 16, 4096, WithCompactEvery(0))
	h.SetAfterGC(func() {
		if err := heap.VerifyCollector(h, c); err != nil {
			t.Fatalf("verify after collection: %v", err)
		}
	})
	s := h.Scope()
	defer s.Close()
	_ = gctest.BuildList(h, 800)
	sawMark, sawSweep := false, false
	for i := 0; i < 20000; i++ {
		cs := h.Scope()
		_ = gctest.BuildList(h, 4)
		cs.Close()
		switch c.phase {
		case npMarking:
			sawMark = true
		case npSweeping:
			sawSweep = true
		}
		if i%1024 == 0 {
			if err := heap.VerifyCollector(h, c); err != nil {
				t.Fatalf("verify at op %d (phase %d): %v", i, c.phase, err)
			}
		}
	}
	g := c.GCStats()
	if !sawMark || !sawSweep {
		t.Fatalf("phases not exercised: marking=%v sweeping=%v (collections=%d)", sawMark, sawSweep, g.Collections)
	}
	if g.Pauses.Count == 0 || g.BarrierShades == 0 {
		t.Fatalf("incremental instrumentation silent: %+v", g)
	}
	c.Collect()
	if err := heap.Check(h); err != nil {
		t.Fatalf("final heap check: %v", err)
	}
}

// TestIncrementalCompactMidCycle pins the stop-the-world reset: compaction
// requested while a cycle is marking or sweeping resolves the cycle first
// and leaves a verifier-clean heap.
func TestIncrementalCompactMidCycle(t *testing.T) {
	for _, target := range []int{npMarking, npSweeping} {
		h := heap.New()
		h.SetGCIncremental(true)
		c := New(h, 16, 4096, WithCompactEvery(0))
		s := h.Scope()
		list := gctest.BuildList(h, 500)
		for i := 0; i < 200000 && c.phase != target; i++ {
			cs := h.Scope()
			_ = gctest.BuildList(h, 4)
			cs.Close()
		}
		if c.phase != target {
			t.Fatalf("never reached phase %d", target)
		}
		c.compact()
		if c.phase != npIdle {
			t.Fatalf("compaction left phase %d", c.phase)
		}
		if err := heap.VerifyCollector(h, c); err != nil {
			t.Fatalf("verify after mid-cycle compaction (phase %d): %v", target, err)
		}
		gctest.CheckList(t, h, list, 500)
		s.Close()
	}
}
