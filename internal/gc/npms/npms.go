// Package npms implements the alternative non-predictive collector that
// Section 8 of the paper says Larceny intends to add: a 2-generation
// non-predictive collector based on a mark/sweep algorithm with occasional
// compaction.
//
// The step structure and renaming discipline are those of Section 4, but a
// collection marks steps j+1..k in place and sweeps them onto per-step free
// lists instead of copying survivors. Because survivors stay put, the
// renaming orders the collected steps by ascending occupancy — the emptiest
// become the new youngest steps — and the paper's assumption that all
// unavailable storage in steps 1..j is live holds exactly (a swept step
// contains only live objects and free blocks). Every CompactEvery-th
// collection evacuates the collected region into shadow spaces instead,
// undoing fragmentation.
package npms

import (
	"fmt"
	"sort"

	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

const noBlock = -1

// Collector is the mark/sweep non-predictive collector.
type Collector struct {
	h *heap.Heap

	stepWords int
	// steps in logical order (index 0 = step 1, youngest); free lists are
	// per physical space, indexed by SpaceID.
	steps    []*heap.Space
	shadows  []*heap.Space
	freeHead map[heap.SpaceID]int
	pos      []int32 // SpaceID -> logical position, or -1

	j        int
	g        float64 // generation fraction: j = floor(g*k)
	allocIdx int

	rs remset.Set

	// CompactEvery triggers a copying (compacting) collection every n-th
	// collection; 0 disables compaction.
	compactEvery int

	// marker and evac are the persistent tracing engines, re-armed with
	// SetRegion/SetFrom per collection; the remembered-set root visitors
	// and the target-list buffer are reused so steady-state collections
	// allocate nothing in the tracing loops.
	marker     *heap.Marker
	evac       *heap.Evacuator
	markRemset func(obj heap.Word)
	evacRemset func(obj heap.Word)
	targetsBuf []*heap.Space

	stats heap.GCStats

	// Incremental-mode state (incremental.go); incr is nil in
	// stop-the-world mode.
	incr            *heap.IncrMarker
	phase           int
	pend            []bool // SpaceID -> step sweep still pending
	pendCount       int
	sweepDebt       int
	remsetScanWords uint64
	incrMarkRemset  func(obj heap.Word)
	sweepPending    func(s *heap.Space, off int) bool
}

// Option configures the collector.
type Option func(*Collector)

// WithG sets the generation fraction (default 0.25).
func WithG(g float64) Option { return func(c *Collector) { c.g = g } }

// WithCompactEvery sets the compaction period (default every 8th
// collection; 0 disables).
func WithCompactEvery(n int) Option { return func(c *Collector) { c.compactEvery = n } }

// WithRemset substitutes the remembered-set representation.
func WithRemset(rs remset.Set) Option { return func(c *Collector) { c.rs = rs } }

// New creates the collector with k steps of stepWords words each and
// installs it as h's allocator and write barrier.
func New(h *heap.Heap, k, stepWords int, opts ...Option) *Collector {
	if k < 2 {
		panic("npms: need at least 2 steps")
	}
	c := &Collector{
		h:            h,
		stepWords:    stepWords,
		freeHead:     make(map[heap.SpaceID]int),
		rs:           remset.NewHashSet(),
		g:            0.25,
		compactEvery: 8,
	}
	for _, o := range opts {
		o(c)
	}
	for i := 0; i < k; i++ {
		s := h.NewSpace(fmt.Sprintf("npms-step-%d", i), stepWords)
		c.initFree(s)
		c.steps = append(c.steps, s)
	}
	for i := 0; i < k; i++ {
		c.shadows = append(c.shadows, h.NewSpace(fmt.Sprintf("npms-shadow-%d", i), stepWords))
	}
	c.rebuildPos()
	c.allocIdx = k - 1
	c.setJ()
	c.marker = heap.NewMarker(h, nil)
	c.markRemset = func(obj heap.Word) {
		c.stats.RemsetScanned++
		heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), c.marker.Slot())
	}
	c.evac = heap.NewEvacuator(h, nil)
	c.evacRemset = func(obj heap.Word) {
		c.stats.RemsetScanned++
		heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), c.evac.Slot())
	}
	h.SetAllocator(c)
	h.SetBarrier(c)
	if h.GCIncremental() {
		c.incrInit()
	}
	return c
}

// initFree makes the whole space one free block with Top at capacity, so
// the space stays linearly parsable under free-list allocation.
func (c *Collector) initFree(s *heap.Space) {
	s.Top = s.Cap()
	s.Mem[0] = heap.HeaderWord(heap.TFree, s.Cap()-1)
	c.setNextFree(s, 0, noBlock)
	c.freeHead[s.ID] = 0
}

func (c *Collector) setJ() {
	j := int(c.g * float64(len(c.steps)))
	if j > len(c.steps)-1 {
		j = len(c.steps) - 1
	}
	c.j = j
}

// Name implements heap.Collector.
func (c *Collector) Name() string { return "non-predictive mark/sweep" }

// GCStats implements heap.Collector.
func (c *Collector) GCStats() *heap.GCStats { return &c.stats }

// J returns the current tuning parameter.
func (c *Collector) J() int { return c.j }

// K returns the step count.
func (c *Collector) K() int { return len(c.steps) }

// Live returns the words occupied by non-free blocks across all steps.
func (c *Collector) Live() int {
	n := 0
	for _, s := range c.steps {
		n += heap.LiveWords(s)
	}
	return n
}

// RemsetLen returns the current remembered-set size.
func (c *Collector) RemsetLen() int { return c.rs.Len() }

// VerifySpec implements heap.Verifiable: the k steps are live (shadows are
// scratch), and every object in steps 1..j pointing into steps j+1..k must
// be remembered. In incremental mode the spec also declares the phase:
// mid-mark bits are legitimate while marking, and marks on steps whose
// sweep is still pending are authoritative (unmarked there means dead).
func (c *Collector) VerifySpec() heap.VerifySpec {
	spec := heap.VerifySpec{
		Live: c.steps,
		Remsets: []heap.RemsetRule{{
			Name: "young->old",
			Needs: func(obj, val heap.Word) bool {
				po := c.posOf(obj)
				return po >= 0 && po < c.j && c.posOf(val) >= c.j
			},
			Has: c.rs.Contains,
		}},
	}
	switch c.phase {
	case npMarking:
		spec.MarkingActive = true
	case npSweeping:
		spec.SweepPending = c.sweepPending
	}
	return spec
}

func (c *Collector) rebuildPos() {
	if n := len(c.h.Spaces); n > len(c.pos) {
		c.pos = append(c.pos, make([]int32, n-len(c.pos))...)
	}
	for i := range c.pos {
		c.pos[i] = -1
	}
	for i, s := range c.steps {
		c.pos[s.ID] = int32(i)
	}
}

func (c *Collector) posOf(w heap.Word) int {
	id := heap.PtrSpace(w)
	if int(id) >= len(c.pos) {
		return -1
	}
	return int(c.pos[id])
}

// RecordWrite implements heap.Barrier: objects in steps 1..j that receive a
// pointer into steps j+1..k enter the remembered set, and while an
// incremental mark is active the stored value is shaded (Dijkstra
// insertion invariant over the collected region).
func (c *Collector) RecordWrite(obj, val heap.Word) {
	if !heap.IsPtr(val) {
		return
	}
	if c.incr != nil {
		c.incr.Shade(val, &c.stats)
	}
	po := c.posOf(obj)
	if po >= 0 && po < c.j && c.posOf(val) >= c.j {
		c.rs.Remember(obj)
	}
}

// Free-list plumbing, shared shape with the plain mark/sweep collector.

func (c *Collector) nextFree(s *heap.Space, off int) int {
	if heap.HeaderSize(s.Mem[off]) == 0 {
		return noBlock
	}
	return int(heap.FixnumVal(s.Mem[off+1]))
}

func (c *Collector) setNextFree(s *heap.Space, off, next int) {
	if heap.HeaderSize(s.Mem[off]) > 0 {
		s.Mem[off+1] = heap.FixnumWord(int64(next))
	}
}

func (c *Collector) tryAllocIn(s *heap.Space, n int) (int, bool) {
	if c.incr != nil && c.pend[s.ID] {
		// The step's free list is stale until its deferred sweep runs.
		c.lazySweepStep(s)
	}
	prev := noBlock
	for off := c.freeHead[s.ID]; off != noBlock; {
		hdr := s.Mem[off]
		blockWords := heap.ObjWords(hdr)
		next := c.nextFree(s, off)
		if blockWords >= n {
			replacement := next
			if rem := blockWords - n; rem > 1 {
				remOff := off + n
				s.Mem[remOff] = heap.HeaderWord(heap.TFree, rem-1)
				c.setNextFree(s, remOff, next)
				replacement = remOff
			} else if rem == 1 {
				s.Mem[off+n] = heap.HeaderWord(heap.TFree, 0)
			}
			if prev == noBlock {
				c.freeHead[s.ID] = replacement
			} else {
				c.setNextFree(s, prev, replacement)
			}
			return off, true
		}
		prev = off
		off = next
	}
	return 0, false
}

// AllocRaw implements heap.Allocator: allocate in the highest-numbered step
// with a fitting free block; when none fits anywhere, collect.
func (c *Collector) AllocRaw(t heap.Type, payload int) heap.Word {
	total := 1 + payload + c.h.ExtraWords()
	if total > c.stepWords {
		panic(fmt.Sprintf("npms: object of %d words exceeds the step size %d", total, c.stepWords))
	}
	if c.incr != nil {
		c.incrTick(total)
	}
	for attempt := 0; ; attempt++ {
		for c.allocIdx >= 0 {
			s := c.steps[c.allocIdx]
			if off, ok := c.tryAllocIn(s, total); ok {
				return c.h.InitObject(s, off, t, payload)
			}
			c.allocIdx--
		}
		if c.incr != nil && c.phase == npMarking {
			// Allocation pressure beat the mark pacing: terminate the cycle
			// now — the termination pause is only the remaining gray work,
			// where the stop-the-world fallback below would re-mark
			// everything — then retry with the collected steps sweepable.
			c.finishMark()
			continue
		}
		switch attempt {
		case 0:
			c.Collect()
		case 1:
			// Collection freed storage but fragmentation defeats this
			// request: compact immediately.
			c.compact()
		default:
			panic(fmt.Sprintf("npms: out of memory: no step can hold %d words", total))
		}
	}
}

// Collect implements heap.Collector: one non-predictive collection of
// steps j+1..k, by mark/sweep or (periodically) by compaction.
func (c *Collector) Collect() {
	if c.compactEvery > 0 && (c.stats.MajorCollections+1)%c.compactEvery == 0 {
		c.compact()
		return
	}
	c.markSweepCollect()
}

func (c *Collector) markSweepCollect() {
	reset := c.stwReset()
	j := c.j
	m := c.marker
	m.SetRegion(c.steps[j:]...)
	m.Begin()
	c.h.VisitRoots(m.Slot())
	c.rs.ForEach(c.markRemset)
	m.Drain()

	var swept uint64
	for _, s := range c.steps[j:] {
		swept += uint64(c.sweep(s))
	}

	c.rename(c.steps[j:], nil)

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsMarked += m.WordsMarked
	c.stats.WordsSwept += swept
	c.h.AddPause(&c.stats, reset+m.WordsMarked+swept)
	c.stats.NoteLive(c.Live())
	c.finishCollection()
	c.h.AfterGC()
}

// compact evacuates the live contents of steps j+1..k into shadow spaces
// (filled from the new oldest position downward, as in the copying
// collector), then renames.
func (c *Collector) compact() {
	reset := c.stwReset()
	j := c.j
	k := len(c.steps)
	nNew := k - j
	primary := c.shadows[:nNew]
	targets := c.targetsBuf[:0]
	for i := nNew - 1; i >= 0; i-- {
		t := primary[i]
		t.Reset() // bump-fill during evacuation
		targets = append(targets, t)
	}
	c.targetsBuf = targets

	e := c.evac
	e.SetFrom(c.steps[j:]...)
	e.Begin(targets...)
	c.h.VisitRoots(e.Slot())
	c.rs.ForEach(c.evacRemset)
	e.Drain()

	// The compacted targets switch to free-list form: one block from the
	// bump pointer to the end.
	for _, t := range primary {
		used := t.Top
		t.Top = t.Cap()
		if used < t.Cap() {
			if t.Cap()-used == 1 {
				t.Mem[used] = heap.HeaderWord(heap.TFree, 0)
				c.freeHead[t.ID] = noBlock
			} else {
				t.Mem[used] = heap.HeaderWord(heap.TFree, t.Cap()-used-1)
				c.setNextFree(t, used, noBlock)
				c.freeHead[t.ID] = used
			}
		} else {
			c.freeHead[t.ID] = noBlock
		}
	}

	collected := append([]*heap.Space{}, c.steps[j:]...)
	newYoung := make([]*heap.Space, nNew)
	copy(newYoung, primary)
	c.steps = append(append([]*heap.Space{}, newYoung...), c.steps[:j]...)
	// The collected spaces become the new shadows, emptied.
	c.shadows = collected
	for _, s := range c.shadows {
		s.Reset()
		delete(c.freeHead, s.ID)
	}
	c.rebuildPos()

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsCopied += e.WordsCopied
	c.h.AddPause(&c.stats, reset+e.WordsCopied)
	c.stats.NoteLive(c.Live())
	c.finishCollection()
	c.h.AfterGC()
}

// rename reorders the collected steps by ascending occupancy (emptiest
// first) to become the new steps 1..k-j, followed by the old steps 1..j as
// the new oldest steps.
func (c *Collector) rename(collected, _ []*heap.Space) {
	byOccupancy := append([]*heap.Space{}, collected...)
	sort.SliceStable(byOccupancy, func(a, b int) bool {
		return heap.LiveWords(byOccupancy[a]) < heap.LiveWords(byOccupancy[b])
	})
	c.steps = append(byOccupancy, c.steps[:c.j]...)
	c.rebuildPos()
}

// finishCollection re-establishes the allocation cursor, the tuning
// parameter, and the remembered set (situation 4: surviving objects now in
// steps 1..j may point into steps j+1..k).
func (c *Collector) finishCollection() {
	c.allocIdx = len(c.steps) - 1
	c.setJ()
	c.rs.Clear()
	for p := 0; p < c.j; p++ {
		s := c.steps[p]
		heap.WalkSpace(s, func(off int, hdr heap.Word) bool {
			if heap.HeaderType(hdr) == heap.TFree {
				return true
			}
			if c.incr != nil && c.pend[s.ID] && !s.MarkedAt(off) {
				// Dead storage in a step whose sweep is still pending:
				// remembering it would leave the next cycle scanning words
				// the lazy sweep is about to free (and reallocation to
				// repurpose).
				return true
			}
			found := false
			heap.ScanObject(s, off, func(slot *heap.Word) {
				if !found && heap.IsPtr(*slot) && c.posOf(*slot) >= c.j {
					found = true
				}
			})
			if found {
				c.rs.Remember(heap.PtrWord(s.ID, off))
			}
			return true
		})
	}
	if p := c.rs.Peak(); p > c.stats.RemsetPeak {
		c.stats.RemsetPeak = p
	}
}

// sweep rebuilds one step's free list with coalescing, clearing marks.
// It returns the words examined.
func (c *Collector) sweep(s *heap.Space) int {
	c.freeHead[s.ID] = noBlock
	tail := noBlock
	lastFree := noBlock
	swept := 0
	link := func(off int) {
		if heap.HeaderSize(s.Mem[off]) == 0 {
			return
		}
		c.setNextFree(s, off, noBlock)
		if c.freeHead[s.ID] == noBlock {
			c.freeHead[s.ID] = off
		} else {
			c.setNextFree(s, tail, off)
		}
		tail = off
	}
	heap.WalkSpace(s, func(off int, hdr heap.Word) bool {
		swept += heap.ObjWords(hdr)
		if heap.HeaderType(hdr) != heap.TFree && s.MarkedAt(off) {
			lastFree = noBlock
			return true
		}
		n := heap.ObjWords(hdr)
		if lastFree != noBlock {
			grown := heap.ObjWords(s.Mem[lastFree]) + n
			wasUnlinked := heap.HeaderSize(s.Mem[lastFree]) == 0
			s.Mem[lastFree] = heap.HeaderWord(heap.TFree, grown-1)
			c.setNextFree(s, lastFree, noBlock)
			if wasUnlinked {
				link(lastFree)
			}
			return true
		}
		s.Mem[off] = heap.HeaderWord(heap.TFree, n-1)
		link(off)
		lastFree = off
		return true
	})
	heap.ClearMarks(s)
	return swept
}
