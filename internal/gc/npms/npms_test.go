package npms

import (
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

func TestStress(t *testing.T) {
	h := heap.New()
	c := New(h, 8, 2048)
	gctest.StressCollector(t, h, c)
}

func TestStressWithCensus(t *testing.T) {
	h := heap.New(heap.WithCensus())
	c := New(h, 8, 2048)
	gctest.StressCollector(t, h, c)
}

func TestStressNoCompaction(t *testing.T) {
	h := heap.New()
	c := New(h, 8, 2048, WithCompactEvery(0))
	gctest.StressCollector(t, h, c)
}

func TestStressFrequentCompaction(t *testing.T) {
	h := heap.New()
	c := New(h, 8, 2048, WithCompactEvery(2))
	gctest.StressCollector(t, h, c)
}

func TestStressSSB(t *testing.T) {
	h := heap.New()
	c := New(h, 8, 2048, WithRemset(remset.NewSSB()))
	gctest.StressCollector(t, h, c)
}

func TestObjectsStayPutWithoutCompaction(t *testing.T) {
	h := heap.New()
	c := New(h, 6, 1024, WithCompactEvery(0))
	s := h.Scope()
	defer s.Close()
	p := h.Cons(h.Fix(7), h.Null())
	before := h.Get(p)
	gctest.Churn(h, 10000)
	if c.GCStats().MajorCollections == 0 {
		t.Fatal("no collections happened")
	}
	if h.Get(p) != before {
		t.Error("mark/sweep non-predictive collection moved an object")
	}
	if got := h.FixVal(h.Car(p)); got != 7 {
		t.Errorf("object corrupted: %d", got)
	}
}

func TestCompactionDefeatsFragmentation(t *testing.T) {
	h := heap.New()
	c := New(h, 4, 4096, WithCompactEvery(0))
	s := h.Scope()

	// Fill most of the heap with pairs, then drop every other one: every
	// free block is a 3-word hole, so a large vector is unallocatable
	// until the immediate-compaction fallback in AllocRaw rescues it.
	var keep []heap.Ref
	for c.Live() < 15800 {
		keep = append(keep, h.Cons(h.Fix(int64(len(keep))), h.Null()))
	}
	for i, r := range keep {
		if i%2 == 0 {
			h.Set(r, heap.NullWord)
		}
	}
	v := h.MakeVector(1500, h.Null())
	if h.VectorLen(v) != 1500 {
		t.Fatal("large allocation failed despite compaction")
	}
	if c.GCStats().WordsCopied == 0 {
		t.Error("no compaction work recorded")
	}
	for i, r := range keep {
		if i%2 == 1 {
			if got := h.FixVal(h.Car(r)); got != int64(i) {
				t.Errorf("survivor %d corrupted: %d", i, got)
			}
		}
	}
	s.Close()
}

func TestRemsetPreservesYoungToOldOnlyPath(t *testing.T) {
	h := heap.New()
	c := New(h, 8, 1024, WithG(0.25), WithCompactEvery(0))
	s := h.Scope()
	defer s.Close()

	old := h.Cons(h.Fix(55), h.Null())
	if c.posOf(h.Get(old)) < c.J() {
		t.Fatal("setup: first allocation not in an old step")
	}
	// Steer a holder into the young steps.
	var holder heap.Ref
	for {
		s2 := h.Scope()
		p := h.Cons(h.Null(), h.Null())
		if pos := c.posOf(h.Get(p)); pos >= 0 && pos < c.J() {
			holder = s2.Return(p)
			break
		}
		s2.Close()
		if c.GCStats().Collections > 0 {
			t.Skip("collection happened before reaching the young steps")
		}
	}
	h.SetCar(holder, old)
	if c.RemsetLen() == 0 {
		t.Fatal("barrier missed the young-to-old store")
	}
	h.Set(old, heap.NullWord)
	c.Collect()
	got := h.Car(holder)
	if !h.IsPair(got) || h.FixVal(h.Car(got)) != 55 {
		t.Error("old object reachable only from a young step was lost")
	}
}

func TestCycleReclamation(t *testing.T) {
	h := heap.New()
	c := New(h, 4, 1024)
	s := h.Scope()
	a := h.Cons(h.Fix(1), h.Null())
	b := h.Cons(h.Fix(2), h.Null())
	h.SetCdr(a, b)
	h.SetCdr(b, a)
	s.Close()

	before := c.Live()
	// With g>0 a cycle may straddle the j boundary; a couple of
	// collections rotate everything through the collected region.
	c.Collect()
	c.Collect()
	if live := c.Live(); live >= before {
		t.Errorf("cyclic garbage not reclaimed: %d -> %d", before, live)
	}
}

func TestMarkConsComparableToCopyingVariant(t *testing.T) {
	// Under a pinned live set the mark/sweep variant's mark/cons ratio
	// should be in the same regime as the copying non-predictive
	// collector's — the algorithms differ in mechanism, not policy.
	h := heap.New()
	c := New(h, 16, 2048, WithG(0.25))
	s := h.Scope()
	defer s.Close()
	keep := gctest.BuildList(h, 500)
	gctest.Churn(h, 60000)
	gctest.CheckList(t, h, keep, 500)
	mcRatio := c.GCStats().MarkCons(&h.Stats)
	if mcRatio <= 0 || mcRatio > 1.0 {
		t.Errorf("mark/cons = %.3f out of plausible range", mcRatio)
	}
}
