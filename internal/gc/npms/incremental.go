package npms

import (
	"sort"

	"rdgc/internal/heap"
)

// Incremental mode (heap.SetGCIncremental / -gcincr) for the non-predictive
// mark/sweep collector: the mark of steps j+1..k runs in bounded slices
// behind the insertion barrier, and the per-step sweeps are deferred and
// run one step at a time — on demand when allocation descends into a
// pending step, or paced off the allocation clock.
//
// The cycle's root set is the heap roots plus the remembered set, both
// scanned when the cycle starts. The barrier keeps this complete while the
// mutator runs: any pointer into the collected region stored anywhere in
// the heap is shaded immediately (remembered-set completeness guarantees
// every young object already holding region pointers was scanned at cycle
// start, so only new stores need covering), and root slots — which are not
// barriered — are re-scanned by the termination phase.
//
// Renaming needs each collected step's surviving occupancy before any
// sweep has run, so incremental termination orders steps by
// Space.MarkedLiveWords, which equals the post-sweep LiveWords the
// stop-the-world path sorts by: the renaming, and therefore the step
// structure, is identical in both modes.
//
// Compaction stays stop-the-world: an explicit or fallback collection
// first resolves any in-progress cycle (stwReset), exactly like the plain
// mark/sweep collector.

// Collection phases of the incremental cycle.
const (
	npIdle     = iota // between cycles
	npMarking         // slices running; barrier shading; marks partial
	npSweeping        // mark complete; marks authoritative on pending steps
)

// incrInit arms incremental mode on a freshly built collector.
func (c *Collector) incrInit() {
	c.incr = heap.NewIncrMarker(c.h, c.marker)
	c.phase = npIdle
	c.pend = make([]bool, len(c.h.Spaces))
	c.incrMarkRemset = func(obj heap.Word) {
		c.stats.RemsetScanned++
		s := c.h.SpaceOf(obj)
		off := heap.PtrOff(obj)
		c.remsetScanWords += uint64(heap.ObjWords(s.Mem[off]))
		heap.ScanObject(s, off, c.marker.Slot())
	}
	c.sweepPending = func(s *heap.Space, _ int) bool {
		return int(s.ID) < len(c.pend) && c.pend[s.ID]
	}
}

// idxTrigger is the allocation-cursor position that starts the next cycle:
// once allocation has descended past the fuller half of the steps, the
// emptier half remains as runway for the 4:1-paced mark to terminate.
func (c *Collector) idxTrigger() int {
	return (len(c.steps) - c.j) / 2
}

// incrTick advances the incremental cycle by one allocation of n words.
func (c *Collector) incrTick(n int) {
	switch c.phase {
	case npIdle:
		if c.allocIdx <= c.idxTrigger() {
			c.startCycle()
		}
	case npMarking:
		if c.incr.NeedSlice(n) {
			c.h.AddPause(&c.stats, c.incr.RunSlice())
			if c.incr.Done() {
				c.finishMark()
			}
		}
	case npSweeping:
		// Pace the deferred step sweeps off the allocation clock, and flush
		// them entirely if the next cycle's trigger arrives first: a cycle
		// may only start on a fully swept heap.
		c.sweepDebt += n
		if c.sweepDebt >= c.stepWords/2 {
			c.sweepDebt = 0
			c.lazySweepNext()
		}
		if c.pendCount > 0 && c.allocIdx <= c.idxTrigger() {
			for c.pendCount > 0 {
				c.lazySweepNext()
			}
		}
		if c.pendCount == 0 {
			c.phase = npIdle
		}
	}
}

// lazySweepStep sweeps one pending step now (its own recorded pause) and
// clears its pending flag.
func (c *Collector) lazySweepStep(s *heap.Space) {
	c.pend[s.ID] = false
	c.pendCount--
	words := uint64(c.sweep(s))
	c.stats.WordsSwept += words
	c.h.AddPause(&c.stats, words)
}

// lazySweepNext sweeps the youngest (emptiest, last to be reached by the
// descending allocation cursor) still-pending step.
func (c *Collector) lazySweepNext() {
	for _, s := range c.steps {
		if c.pend[s.ID] {
			c.lazySweepStep(s)
			return
		}
	}
}

// startCycle begins an incremental mark of steps j+1..k: region armed,
// heap roots and the remembered set scanned gray. That scan is the cycle's
// first pause, sized by the root slots plus the footprint of the
// remembered objects scanned.
func (c *Collector) startCycle() {
	m := c.marker
	m.SetRegion(c.steps[c.j:]...)
	m.Begin()
	c.phase = npMarking
	roots := c.incr.StartRoots()
	c.remsetScanWords = 0
	c.rs.ForEach(c.incrMarkRemset)
	c.h.AddPause(&c.stats, roots+c.remsetScanWords)
}

// finishMark is the termination phase: re-scan the roots, drain the
// remaining grays, rename the collected steps by their marked occupancy,
// flag them for lazy sweeping, and rebuild the remembered set. The
// remembered-set rebuild walk skips unmarked objects in pending steps —
// they are dead storage the lazy sweep will free, and remembering them
// would leave the next cycle scanning freed (and possibly reallocated)
// words.
func (c *Collector) finishMark() {
	j := c.j
	m := c.marker
	pause := c.incr.FinishDrain()

	live := 0
	for _, s := range c.steps[:j] {
		live += heap.LiveWords(s)
	}
	collected := c.steps[j:]
	for _, s := range collected {
		live += s.MarkedLiveWords()
		c.pend[s.ID] = true
		c.pendCount++
	}
	c.renameByMarks(collected)

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsMarked += m.WordsMarked
	c.stats.NoteLive(live)
	c.phase = npSweeping
	c.sweepDebt = 0
	c.finishCollection()
	c.h.AddPause(&c.stats, pause)
	c.h.AfterGC()
}

// renameByMarks is the incremental rename: ascending marked occupancy,
// which equals the post-sweep occupancy the stop-the-world rename sorts
// by, so both modes produce the same step order.
func (c *Collector) renameByMarks(collected []*heap.Space) {
	type occ struct {
		s    *heap.Space
		live int
	}
	byOcc := make([]occ, len(collected))
	for i, s := range collected {
		byOcc[i] = occ{s, s.MarkedLiveWords()}
	}
	sort.SliceStable(byOcc, func(a, b int) bool { return byOcc[a].live < byOcc[b].live })
	renamed := make([]*heap.Space, 0, len(c.steps))
	for _, o := range byOcc {
		renamed = append(renamed, o.s)
	}
	c.steps = append(renamed, c.steps[:c.j]...)
	c.rebuildPos()
}

// stwReset returns the collector to the between-cycles state a
// stop-the-world collection (mark/sweep or compacting) requires, returning
// the pause words the reset cost: a cycle caught marking is abandoned with
// its partial marks cleared; pending step sweeps are completed.
func (c *Collector) stwReset() uint64 {
	if c.incr == nil {
		return 0
	}
	switch c.phase {
	case npMarking:
		c.incr.Cancel()
		heap.ClearMarks(c.steps[c.j:]...)
	case npSweeping:
		var flushed uint64
		for _, s := range c.steps {
			if c.pend[s.ID] {
				c.pend[s.ID] = false
				c.pendCount--
				flushed += uint64(c.sweep(s))
			}
		}
		c.stats.WordsSwept += flushed
		c.phase = npIdle
		return flushed
	}
	c.phase = npIdle
	return 0
}
