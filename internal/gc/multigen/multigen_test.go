package multigen

import (
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

// Generations must grow geometrically: each one needs room for the
// worst-case survivors of everything younger, or promotion skips it.
func sizes() []int { return []int{1024, 2048, 4096, 16384} }

func TestStress(t *testing.T) {
	h := heap.New()
	c := New(h, sizes())
	gctest.StressCollector(t, h, c)
}

func TestStressWithCensus(t *testing.T) {
	h := heap.New(heap.WithCensus())
	c := New(h, sizes())
	gctest.StressCollector(t, h, c)
}

func TestStressTwoGens(t *testing.T) {
	h := heap.New()
	c := New(h, []int{1024, 16384})
	gctest.StressCollector(t, h, c)
}

func TestStressSSB(t *testing.T) {
	h := heap.New()
	c := New(h, sizes(), WithRemset(remset.NewSSB()))
	gctest.StressCollector(t, h, c)
}

func TestObjectsAgeThroughGenerations(t *testing.T) {
	h := heap.New()
	c := New(h, []int{512, 1024, 2048, 8192}, WithExpansion(2))
	s := h.Scope()
	defer s.Close()

	obj := h.Cons(h.Fix(77), h.Null())
	if g := c.genIdx(h.Get(obj)); g != 0 {
		t.Fatalf("fresh object in generation %d", g)
	}
	// Grow live data (so promotions actually fill the intermediate
	// generations) while watching the object climb the pipeline. Its
	// generation must ascend monotonically through an intermediate stage.
	gens := map[int]bool{}
	prev := 0
	acc := h.Null()
	for i := 0; i < 4000; i++ {
		acc = h.Cons(h.Fix(int64(i)), acc)
		gctest.Churn(h, 3)
		g := c.genIdx(h.Get(obj))
		gens[g] = true
		if g < prev {
			t.Fatalf("object demoted from generation %d to %d", prev, g)
		}
		prev = g
	}
	if !gens[1] && !gens[2] {
		t.Errorf("object never seen in an intermediate generation: %v", gens)
	}
	if g := c.genIdx(h.Get(obj)); g < 1 {
		t.Errorf("long-lived object still in the nursery")
	}
	if got := h.FixVal(h.Car(obj)); got != 77 {
		t.Errorf("object corrupted: %d", got)
	}
}

func TestOlderToYoungerPointerIsRemembered(t *testing.T) {
	h := heap.New()
	c := New(h, []int{512, 1024, 8192})
	s := h.Scope()
	defer s.Close()

	holder := h.Cons(h.Null(), h.Null())
	c.Collect() // holder now in the old generation
	if g := c.genIdx(h.Get(holder)); g != len(c.gens)-1 {
		t.Fatalf("holder in generation %d after major", g)
	}
	func() {
		s2 := h.Scope()
		defer s2.Close()
		young := h.Cons(h.Fix(5), h.Null())
		h.SetCar(holder, young)
	}()
	if c.RemsetLen() == 0 {
		t.Fatal("barrier missed old-to-young store")
	}
	gctest.Churn(h, 3000)
	got := h.Car(holder)
	if !h.IsPair(got) || h.FixVal(h.Car(got)) != 5 {
		t.Error("young object referenced only from the old generation was lost")
	}
}

func TestRemsetRefilterDropsStaleEntries(t *testing.T) {
	// §8.4's refinement: once a remembered object's referent has been
	// promoted alongside it, rescanning removes the entry.
	h := heap.New()
	c := New(h, []int{512, 8192})
	s := h.Scope()
	defer s.Close()

	holder := h.Cons(h.Null(), h.Null())
	c.Collect()
	young := h.Cons(h.Fix(1), h.Null())
	h.SetCar(holder, young)
	if c.RemsetLen() != 1 {
		t.Fatalf("remset = %d, want 1", c.RemsetLen())
	}
	// A minor collection promotes `young` into the same generation as
	// holder; the refilter must drop the entry.
	c.collectUpTo(0)
	if c.RemsetLen() != 0 {
		t.Errorf("remset = %d after refilter, want 0", c.RemsetLen())
	}
	if got := h.FixVal(h.Car(h.Car(holder))); got != 1 {
		t.Errorf("structure corrupted: %d", got)
	}
}

func TestLargeObjectGoesOld(t *testing.T) {
	h := heap.New()
	c := New(h, []int{256, 256, 8192})
	s := h.Scope()
	defer s.Close()
	v := h.MakeVector(500, h.Null())
	if g := c.genIdx(h.Get(v)); g != len(c.gens)-1 {
		t.Errorf("large object in generation %d", g)
	}
}

func TestExpansion(t *testing.T) {
	h := heap.New()
	c := New(h, []int{512, 512, 1024}, WithExpansion(2))
	s := h.Scope()
	defer s.Close()
	list := gctest.BuildList(h, 2000)
	gctest.CheckList(t, h, list, 2000)
	if c.gens[len(c.gens)-1].Cap() <= 1024 {
		t.Error("old generation did not grow")
	}
}

func TestHeapCheckAfterChurn(t *testing.T) {
	h := heap.New()
	c := New(h, sizes())
	s := h.Scope()
	defer s.Close()
	keep := gctest.BuildList(h, 100)
	gctest.Churn(h, 20000)
	c.Collect()
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
	gctest.CheckList(t, h, keep, 100)
}
