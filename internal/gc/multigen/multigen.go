// Package multigen implements a conventional multi-generation collector in
// the style the paper's Section 7 describes for Larceny: a pipeline of
// aging generations between the nursery and a semispace-managed old area
// (compare Lieberman–Hewitt and the promotion pipelines of [2, 9, 19, 26,
// 35, 36] in the paper's related work). Objects are promoted one region per
// collection, so the generation an object lives in approximates its age in
// collections — the youngest-first heuristic at its most refined, and
// therefore the sharpest contrast with the non-predictive collector: under
// the radioactive decay model no amount of aging fidelity helps
// (BenchmarkAblationTenuring).
//
// The remembered set records objects in *older* generations that point into
// *younger* ones. After each collection it is re-filtered by rescanning
// each surviving entry — the refinement §8.4 describes ("when an object in
// the remembered set is traced, the collector can determine whether it
// still contains any cross-generational pointers").
package multigen

import (
	"fmt"

	"rdgc/internal/heap"
	"rdgc/internal/policy"
	"rdgc/internal/remset"
)

// Collector is an n-generation youngest-first collector: generations
// 0..n-2 are bump regions of aging objects and generation n-1 is a
// semispace pair.
type Collector struct {
	h     *heap.Heap
	gens  []*heap.Space // gens[0] is the nursery; gens[n-1] is oldFrom
	oldTo *heap.Space
	genOf []int8 // SpaceID -> generation index, -1 otherwise

	rs    remset.Set
	stats heap.GCStats

	// evac is the persistent Cheney engine, re-armed with SetFrom per
	// collection; window and windowRoot implement the remembered-set root
	// scan for a collection of generations 0..window without building a
	// fresh closure each time.
	evac       *heap.Evacuator
	window     int
	windowRoot func(obj heap.Word)

	expand float64

	// Age-based tenuring (heap/tenure.go), applied to the nursery only:
	// nursery-window collections retain under-threshold survivors in the
	// gen0To shadow instead of promoting them to generation 1. Wider
	// windows keep their wholesale one-generation-per-collection aging.
	// All nil/zero under the default threshold of 1.
	threshold     int
	trigger       int
	carry         int
	gen0To        *heap.Space
	youngBuf      []*heap.Space
	windowRootTen func(obj heap.Word)
	ctrl          *policy.Controller
	adaptOn       bool
}

// Option configures the collector.
type Option func(*Collector)

// WithExpansion lets the old semispaces grow to keep their inverse load
// factor at least invLoad.
func WithExpansion(invLoad float64) Option {
	if invLoad <= 1 {
		panic("multigen: inverse load factor must exceed 1")
	}
	return func(c *Collector) { c.expand = invLoad }
}

// WithRemset substitutes the remembered-set representation.
func WithRemset(rs remset.Set) Option { return func(c *Collector) { c.rs = rs } }

// WithTenure sets the nursery promotion threshold explicitly, overriding
// the heap's GCTenure setting (1 = wholesale, heap.TenureNever = never).
func WithTenure(threshold int) Option {
	if threshold < 1 {
		panic("multigen: tenure threshold must be at least 1")
	}
	return func(c *Collector) { c.threshold = threshold }
}

// WithAdaptive puts the threshold and nursery trigger under the
// internal/policy feedback controller, overriding the heap's GCAdaptive
// setting.
func WithAdaptive() Option {
	return func(c *Collector) { c.adaptOn = true }
}

// New creates a collector whose generation sizes (in words, youngest
// first) are given explicitly; the last size is the old-semispace size.
// len(sizes) >= 2.
func New(h *heap.Heap, sizes []int, opts ...Option) *Collector {
	if len(sizes) < 2 {
		panic("multigen: need at least 2 generations")
	}
	c := &Collector{h: h, rs: remset.NewHashSet()}
	c.threshold = h.GCTenure()
	c.adaptOn = h.GCAdaptive()
	for _, o := range opts {
		o(c)
	}
	for i, words := range sizes {
		c.gens = append(c.gens, h.NewSpace(fmt.Sprintf("gen-%d", i), words))
	}
	c.oldTo = h.NewSpace("gen-old-B", sizes[len(sizes)-1])
	c.trigger = sizes[0]
	c.evac = heap.NewEvacuator(h, nil)
	c.windowRoot = func(obj heap.Word) {
		// Remembered objects in generations > window may hold the only
		// pointers into the window; entries inside it are collected with it.
		if g := c.genIdx(obj); g >= 0 && g <= c.window {
			return
		}
		c.stats.RemsetScanned++
		heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), c.evac.Slot())
	}
	if c.adaptOn {
		c.ctrl = policy.New(policy.Config{})
	}
	if c.threshold > 1 || c.ctrl != nil {
		c.gen0To = h.NewSpace("gen-0-to", sizes[0])
		c.gens[0].EnsureAgeTable()
		c.gen0To.EnsureAgeTable()
		c.youngBuf = []*heap.Space{c.gen0To}
		c.windowRootTen = func(obj heap.Word) {
			if g := c.genIdx(obj); g >= 0 && g <= c.window {
				return
			}
			c.stats.RemsetScanned++
			heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), c.evac.SlotTenured())
		}
	}
	c.rebuildGenOf()
	h.SetAllocator(c)
	h.SetBarrier(c)
	return c
}

// tenured reports whether nursery collections run the age-routing engine.
func (c *Collector) tenured() bool { return c.gen0To != nil }

// TenureThreshold implements heap.Tenurer.
func (c *Collector) TenureThreshold() int { return c.threshold }

// YoungSpaces implements heap.Tenurer: the nursery, then the survivor
// shadow when tenuring is armed.
func (c *Collector) YoungSpaces() []*heap.Space {
	if c.gen0To == nil {
		return []*heap.Space{c.gens[0]}
	}
	return []*heap.Space{c.gens[0], c.gen0To}
}

// Adaptive implements heap.Tenurer.
func (c *Collector) Adaptive() bool { return c.ctrl != nil }

func (c *Collector) rebuildGenOf() {
	if n := len(c.h.Spaces); n > len(c.genOf) {
		c.genOf = append(c.genOf, make([]int8, n-len(c.genOf))...)
	}
	for i := range c.genOf {
		c.genOf[i] = -1
	}
	for i, s := range c.gens {
		c.genOf[s.ID] = int8(i)
	}
}

func (c *Collector) genIdx(w heap.Word) int {
	id := heap.PtrSpace(w)
	if int(id) >= len(c.genOf) {
		return -1
	}
	return int(c.genOf[id])
}

// Name implements heap.Collector.
func (c *Collector) Name() string {
	return fmt.Sprintf("multigen(%d)", len(c.gens))
}

// GCStats implements heap.Collector.
func (c *Collector) GCStats() *heap.GCStats { return &c.stats }

// Live returns the words in use across all generations.
func (c *Collector) Live() int {
	n := 0
	for _, g := range c.gens {
		n += g.Used()
	}
	return n
}

// RemsetLen returns the current remembered-set size.
func (c *Collector) RemsetLen() int { return c.rs.Len() }

// VerifySpec implements heap.Verifiable: the generations are live (the old
// to-space is scratch), and every object pointing into a strictly younger
// generation must be remembered.
func (c *Collector) VerifySpec() heap.VerifySpec {
	return heap.VerifySpec{
		Live: c.gens,
		Remsets: []heap.RemsetRule{{
			Name: "older->younger",
			Needs: func(obj, val heap.Word) bool {
				go1, gv := c.genIdx(obj), c.genIdx(val)
				return go1 > gv && gv >= 0
			},
			Has: c.rs.Contains,
		}},
	}
}

// RecordWrite implements heap.Barrier: remember objects that point into a
// strictly younger generation.
func (c *Collector) RecordWrite(obj, val heap.Word) {
	if !heap.IsPtr(val) {
		return
	}
	go1, gv := c.genIdx(obj), c.genIdx(val)
	if go1 > gv && gv >= 0 {
		c.rs.Remember(obj)
	}
}

// AllocRaw implements heap.Allocator. Objects too large for the nursery go
// directly to the old area.
func (c *Collector) AllocRaw(t heap.Type, payload int) heap.Word {
	total := 1 + payload + c.h.ExtraWords()
	if total > c.gens[0].Cap()/2 {
		return c.allocOld(t, payload, total)
	}
	if c.gens[0].Top+total > c.trigger {
		// Same condition as a failed Bump when the trigger sits at the
		// nursery cap (the wholesale default); the adaptive controller may
		// pull it lower.
		c.collectUpTo(c.chooseWindow(total))
	}
	off, ok := c.gens[0].Bump(total)
	if !ok && c.tenured() {
		// Retained survivors can leave too little room even after a
		// nursery collection; a major empties every generation.
		c.major()
		off, ok = c.gens[0].Bump(total)
	}
	if !ok {
		panic(fmt.Sprintf("multigen: nursery cannot hold %d words", total))
	}
	return c.h.InitObject(c.gens[0], off, t, payload)
}

func (c *Collector) allocOld(t heap.Type, payload, total int) heap.Word {
	old := c.gens[len(c.gens)-1]
	off, ok := old.Bump(total)
	if !ok {
		c.collectUpTo(len(c.gens) - 1)
		old = c.gens[len(c.gens)-1]
		off, ok = old.Bump(total)
		if !ok {
			panic(fmt.Sprintf("multigen: old area cannot hold %d words", total))
		}
	}
	return c.h.InitObject(old, off, t, payload)
}

// chooseWindow picks the highest generation that must be included in the
// next collection: generations 0..m are collected together when
// generation m+1 lacks room for their worst-case survivors.
func (c *Collector) chooseWindow(need int) int {
	worst := need
	for m := 0; m < len(c.gens)-1; m++ {
		worst += c.gens[m].Used()
		if c.gens[m+1].Free() >= worst {
			return m
		}
	}
	return len(c.gens) - 1
}

// collectUpTo collects generations 0..m, promoting every survivor into
// generation m+1. m = len(gens)-1 is a full collection into the old
// to-space.
func (c *Collector) collectUpTo(m int) {
	last := len(c.gens) - 1
	if m >= last {
		c.major()
		return
	}
	if m == 0 && c.tenured() {
		c.minorTenured()
		return
	}
	target := c.gens[m+1]
	e := c.evac
	e.SetFrom(c.gens[:m+1]...)
	e.Begin(target)
	c.h.VisitRoots(e.Slot())
	c.window = m
	c.rs.ForEach(c.windowRoot)
	e.Drain()
	for i := 0; i <= m; i++ {
		c.gens[i].Reset()
	}
	c.refilterRemset()

	c.stats.Collections++
	c.stats.WordsCopied += e.WordsCopied
	c.stats.WordsPromoted += e.WordsCopied
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.notePeak()
	if c.tenured() {
		// The window included the nursery and promoted it wholesale.
		c.carry = 0
	}
	c.h.AfterGC()
}

// minorTenured collects the nursery alone with age routing: survivors
// younger than the threshold flip into the gen0To shadow with their side-
// table ages incremented, the rest are promoted to generation 1. Only
// reached when chooseWindow picked m == 0, which guarantees generation 1
// has headroom for the worst case.
func (c *Collector) minorTenured() {
	nursery := c.gens[0]
	fresh := nursery.Top - c.carry
	e := c.evac
	e.SetFrom(nursery)
	e.BeginTenured(c.threshold, c.youngBuf, c.gens[1])
	e.EvacuateRootsTenured()
	c.window = 0
	c.rs.ForEach(c.windowRootTen)
	e.DrainTenured()
	nursery.Reset()
	c.gens[0], c.gen0To = c.gen0To, c.gens[0]
	c.youngBuf[0] = c.gen0To
	c.rebuildGenOf()
	c.carry = c.gens[0].Top
	c.refilterRemset()
	c.rememberPromoted()

	c.stats.Collections++
	c.stats.WordsCopied += e.WordsCopied
	c.stats.WordsPromoted += e.WordsPromoted
	c.stats.WordsTenured += e.WordsRetained
	c.stats.TenureThreshold = c.threshold
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.notePeak()
	c.adapt(fresh, e)
	c.h.AfterGC()
}

// rememberPromoted scans the objects this collection promoted into
// generation 1: any that reference a retained nursery survivor are
// older-to-younger pointers the barrier never saw (both ends moved during
// the collection). Must run after the flip and rebuildGenOf.
func (c *Collector) rememberPromoted() {
	found := false
	g := 0
	probe := func(slot *heap.Word) {
		if found || !heap.IsPtr(*slot) {
			return
		}
		if gv := c.genIdx(*slot); gv >= 0 && gv < g {
			found = true
		}
	}
	c.evac.CopiedRegions(func(s *heap.Space, lo, hi int) {
		for off := lo; off < hi; off += heap.ObjWords(s.Mem[off]) {
			g = c.genIdx(heap.PtrWord(s.ID, off))
			found = false
			heap.ScanObject(s, off, probe)
			if found {
				c.rs.Remember(heap.PtrWord(s.ID, off))
			}
		}
	})
}

// adapt feeds the policy controller one tenured nursery collection and
// applies its decision.
func (c *Collector) adapt(fresh int, e *heap.Evacuator) {
	if c.ctrl == nil {
		return
	}
	if fresh < 0 {
		fresh = 0
	}
	surv, retained := e.SurvivorsByAge()
	d := c.ctrl.Observe(policy.Observation{
		FreshWords:    uint64(fresh),
		SurvByAge:     *surv,
		RetainedByAge: *retained,
		PromotedWords: e.WordsPromoted,
		NurseryCap:    c.gens[0].Cap(),
	})
	c.threshold = d.Threshold
	trigger := d.TriggerWords
	if trigger <= 0 || trigger > c.gens[0].Cap() {
		trigger = c.gens[0].Cap()
	}
	if floor := c.gens[0].Top + c.gens[0].Cap()/8; trigger < floor {
		trigger = floor
		if trigger > c.gens[0].Cap() {
			trigger = c.gens[0].Cap()
		}
	}
	c.trigger = trigger
	c.stats.PolicyAdaptations = c.ctrl.Adaptations()
	c.stats.TenureThreshold = c.threshold
}

// major collects every generation into the old to-space and flips.
func (c *Collector) major() {
	last := len(c.gens) - 1
	if c.expand > 0 {
		worst := 0
		for _, g := range c.gens {
			worst += g.Used()
		}
		if worst > c.oldTo.Cap() {
			c.oldTo.Resize(worst)
		}
	}
	e := c.evac
	e.SetFrom(c.gens...)
	e.Begin(c.oldTo)
	e.Run()
	for _, g := range c.gens {
		g.Reset()
	}
	c.gens[last], c.oldTo = c.oldTo, c.gens[last]
	c.rebuildGenOf()
	c.rs.Clear()

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsCopied += e.WordsCopied
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.stats.NoteLive(c.gens[last].Used())
	c.notePeak()

	if c.tenured() {
		c.carry = 0
		if c.ctrl != nil {
			c.ctrl.ObserveMajor(e.WordsCopied)
		}
	}

	if c.expand > 0 {
		live := c.gens[last].Used()
		want := int(float64(live) * c.expand)
		if want > c.oldTo.Cap() {
			c.oldTo.Resize(want)
		}
		if want > c.gens[last].Cap() {
			e.SetFrom(c.gens[last])
			e.Begin(c.oldTo)
			e.Run()
			c.gens[last].Reset()
			c.gens[last].Resize(want)
			c.gens[last], c.oldTo = c.oldTo, c.gens[last]
			c.rebuildGenOf()
		}
	}
	c.h.AfterGC()
}

// refilterRemset rescans every surviving entry and keeps only those that
// still contain a pointer into a strictly younger generation — the §8.4
// refinement. Entries that were themselves collected have forwarded or
// died; forwarded entries re-enter under their new address.
func (c *Collector) refilterRemset() {
	var keep []heap.Word
	c.rs.ForEach(func(obj heap.Word) {
		w := obj
		s := c.h.SpaceOf(w)
		off := heap.PtrOff(w)
		if off >= s.Top {
			return // entry died with its reset space
		}
		hdr := s.Mem[off]
		if heap.IsPtr(hdr) {
			w = hdr // follow the forwarding left by the evacuation
			s = c.h.SpaceOf(w)
			off = heap.PtrOff(w)
		}
		g := c.genIdx(w)
		still := false
		heap.ScanObject(s, off, func(slot *heap.Word) {
			if still || !heap.IsPtr(*slot) {
				return
			}
			if gv := c.genIdx(*slot); gv >= 0 && gv < g {
				still = true
			}
		})
		if still {
			keep = append(keep, w)
		}
	})
	c.rs.Clear()
	for _, w := range keep {
		c.rs.Remember(w)
	}
}

// Collect implements heap.Collector with a full collection.
func (c *Collector) Collect() { c.major() }

func (c *Collector) notePeak() {
	if p := c.rs.Peak(); p > c.stats.RemsetPeak {
		c.stats.RemsetPeak = p
	}
}
