// Package semispace implements the non-generational two-space stop-and-copy
// collector (Fenichel–Yochelson/Cheney) that the paper uses as Larceny's
// baseline "stop-and-copy" collector in Table 3.
package semispace

import (
	"fmt"

	"rdgc/internal/heap"
)

// Collector is a classic semispace collector: allocation bumps through the
// from-space; when it fills, everything live is copied to the to-space and
// the spaces flip.
type Collector struct {
	h     *heap.Heap
	from  *heap.Space
	to    *heap.Space
	stats heap.GCStats

	// evac is the persistent Cheney engine, re-armed per collection so
	// steady-state collections allocate nothing.
	evac *heap.Evacuator

	// expand > 0 enables growth: after a collection that leaves the heap
	// more than 1/expand full, both semispaces grow to live*expand words.
	expand float64
}

// Option configures the collector.
type Option func(*Collector)

// WithExpansion lets the semispaces grow so that the inverse load factor
// (semispace size / live words) stays at least invLoad after each
// collection. Larceny's stop-and-copy collector sizes itself this way.
func WithExpansion(invLoad float64) Option {
	if invLoad <= 1 {
		panic("semispace: inverse load factor must exceed 1")
	}
	return func(c *Collector) { c.expand = invLoad }
}

// New creates a semispace collector with the given semispace size in words
// and installs it as h's allocator.
func New(h *heap.Heap, semiWords int, opts ...Option) *Collector {
	c := &Collector{
		h:    h,
		from: h.NewSpace("semispace-A", semiWords),
		to:   h.NewSpace("semispace-B", semiWords),
	}
	c.evac = heap.NewEvacuator(h, nil)
	for _, o := range opts {
		o(c)
	}
	h.SetAllocator(c)
	return c
}

// Name implements heap.Collector.
func (c *Collector) Name() string { return "stop-and-copy" }

// GCStats implements heap.Collector.
func (c *Collector) GCStats() *heap.GCStats { return &c.stats }

// Live returns the words in use in the active semispace.
func (c *Collector) Live() int { return c.from.Used() }

// VerifySpec implements heap.Verifiable: between collections only the
// active semispace holds objects; the to-space is scratch.
func (c *Collector) VerifySpec() heap.VerifySpec {
	return heap.VerifySpec{Live: []*heap.Space{c.from}}
}

// SemiWords returns the current semispace capacity.
func (c *Collector) SemiWords() int { return c.from.Cap() }

// AllocRaw implements heap.Allocator.
func (c *Collector) AllocRaw(t heap.Type, payload int) heap.Word {
	total := 1 + payload + c.h.ExtraWords()
	off, ok := c.from.Bump(total)
	if !ok {
		c.collect(total)
		off, ok = c.from.Bump(total)
		if !ok {
			panic(fmt.Sprintf("semispace: out of memory: need %d words, %d free after gc",
				total, c.from.Free()))
		}
	}
	return c.h.InitObject(c.from, off, t, payload)
}

// Collect implements heap.Collector.
func (c *Collector) Collect() { c.collect(0) }

func (c *Collector) collect(need int) {
	e := c.evac
	e.SetFrom(c.from)
	e.Begin(c.to)
	e.Run()
	c.from.Reset()
	c.from, c.to = c.to, c.from

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsCopied += e.WordsCopied
	c.h.AddPause(&c.stats, e.WordsCopied)
	c.stats.NoteLive(c.from.Used())

	if c.expand > 0 {
		live := c.from.Used()
		want := int(float64(live) * c.expand)
		if need+live > want {
			want = need + live
		}
		if want > c.from.Cap() {
			// Grow the empty to-space, copy into it, then grow the other.
			c.to.Resize(want)
			e.SetFrom(c.from)
			e.Begin(c.to)
			e.Run()
			c.from.Reset()
			c.from.Resize(want)
			c.from, c.to = c.to, c.from
		}
	}
	c.h.AfterGC()
}
