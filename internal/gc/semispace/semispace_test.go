package semispace

import (
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

func TestStress(t *testing.T) {
	h := heap.New()
	c := New(h, 8192)
	gctest.StressCollector(t, h, c)
}

func TestStressWithCensus(t *testing.T) {
	h := heap.New(heap.WithCensus())
	c := New(h, 8192)
	gctest.StressCollector(t, h, c)
}

func TestCollectionReclaimsGarbage(t *testing.T) {
	h := heap.New()
	c := New(h, 4096)
	s := h.Scope()
	defer s.Close()

	keep := gctest.BuildList(h, 10)
	gctest.Churn(h, 10000) // far more than one semispace of garbage
	gctest.CheckList(t, h, keep, 10)

	c.Collect()
	if live := c.Live(); live > 10*3+10 {
		t.Errorf("live after collect = %d words, want about %d", live, 10*3)
	}
}

func TestOOMPanics(t *testing.T) {
	h := heap.New()
	New(h, 64)
	s := h.Scope()
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Error("allocating past a fixed semispace did not panic")
		}
	}()
	acc := h.Null()
	for i := 0; i < 100; i++ {
		acc = h.Cons(h.Fix(int64(i)), acc) // all live: must exhaust
	}
}

func TestExpansion(t *testing.T) {
	h := heap.New()
	c := New(h, 256, WithExpansion(2))
	s := h.Scope()
	defer s.Close()
	list := gctest.BuildList(h, 500) // needs 1500 words live
	gctest.CheckList(t, h, list, 500)
	if c.SemiWords() <= 256 {
		t.Errorf("semispace did not grow: %d words", c.SemiWords())
	}
	// The inverse load factor should be respected after a collection.
	c.Collect()
	if got := float64(c.SemiWords()) / float64(c.Live()); got < 2 {
		t.Errorf("inverse load factor = %.2f, want >= 2", got)
	}
}

func TestMarkConsAccounting(t *testing.T) {
	h := heap.New()
	c := New(h, 4096)
	s := h.Scope()
	defer s.Close()
	keep := gctest.BuildList(h, 100) // 300 words live
	allocated := h.Stats.WordsAllocated
	c.Collect()
	if got := c.GCStats().WordsCopied; got != 300 {
		t.Errorf("WordsCopied = %d, want 300", got)
	}
	if h.Stats.WordsAllocated != allocated {
		t.Error("collection changed the allocation clock")
	}
	gctest.CheckList(t, h, keep, 100)
}
