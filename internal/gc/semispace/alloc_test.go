package semispace

import (
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
)

// TestCollectSteadyStateZeroAllocs guards the collection hot path: once the
// persistent evacuator has sized its scan state, flipping a live list
// between the semispaces must not allocate any Go objects.
func TestCollectSteadyStateZeroAllocs(t *testing.T) {
	h := heap.New()
	c := New(h, 1<<14)
	l := gctest.BuildList(h, 300)

	c.Collect() // warmup: evacuator scan state grows once

	allocs := testing.AllocsPerRun(20, c.Collect)
	if allocs != 0 {
		t.Errorf("steady-state collection allocates %.0f objects/run, want 0", allocs)
	}
	if c.stats.WordsCopied == 0 {
		t.Fatal("no words copied; the guard must measure real collections")
	}
	gctest.CheckList(t, h, l, 300)
}
