package serve

import (
	"fmt"
	"sort"
)

// Simulated time is measured in ticks; the words-per-tick clock
// (Config.WordsPerTick) converts between a request's words of work —
// mutator allocation plus the GC pauses it waited for — and the latency
// the load generator's open-loop arrival times are expressed in.

// Arrival process names.
const (
	ArrivalPoisson = "poisson"
	ArrivalMMPP    = "mmpp"
)

// LoadConfig configures the deterministic open-loop load generator. All
// times are in ticks; rates are expressed as mean gaps. The zero value of
// any field selects the default noted on it.
type LoadConfig struct {
	// Seed drives every draw the generator (and the request handlers)
	// make. Identical seed and config produce a byte-identical schedule.
	Seed uint64

	// Arrival selects the session-arrival process: ArrivalPoisson
	// (default) or ArrivalMMPP, a two-state Markov-modulated Poisson
	// process whose burst state multiplies the arrival rate by BurstRate.
	Arrival string

	// HorizonTicks bounds request arrivals: sessions start and issue
	// requests only before the horizon (default 100000).
	HorizonTicks uint64

	// SessionEvery is the mean gap between session arrivals across the
	// whole stream (default 600). Drivers offering a fixed per-shard load
	// divide a per-shard gap by the shard count.
	SessionEvery float64

	// RequestEvery is the mean gap between requests within a session
	// (default 60).
	RequestEvery float64

	// SessionMinTicks and SessionAlpha parameterize the Pareto session
	// lifetime: minimum xm (default 1500) and shape alpha (default 1.6 —
	// finite mean, infinite variance: a genuinely heavy tail).
	SessionMinTicks float64
	SessionAlpha    float64

	// RequestWords is the mean words a request handler allocates
	// (exponentially distributed per request, minimum one object's worth;
	// default 400).
	RequestWords int

	// RetainWords is the words of session state each request links into
	// its session's ring buffer (0 means the default 128; a negative value
	// disables retention).
	RetainWords int

	// SessionSlots is the session ring-buffer size: how many requests'
	// retained state a session keeps live at once (default 12).
	SessionSlots int

	// Profiles names the per-request allocation profiles sessions are
	// assigned round-robin: registry program names (quick suite first,
	// then standard) or "trace:PATH" for a recorded trace. Default:
	// nboyer1, nucleic2, 2dyninfer.
	Profiles []string

	// MMPP parameters (ignored under ArrivalPoisson): the burst state
	// multiplies the session-arrival rate by BurstRate (default 8); mean
	// quiet dwell BurstEvery (default 20000) and mean burst dwell
	// BurstTicks (default 2500).
	BurstRate  float64
	BurstEvery float64
	BurstTicks float64
}

// withDefaults fills zero fields; every consumer normalizes through here so
// the report reflects the effective configuration.
func (c LoadConfig) withDefaults() LoadConfig {
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.HorizonTicks == 0 {
		c.HorizonTicks = 100000
	}
	if c.SessionEvery == 0 {
		c.SessionEvery = 600
	}
	if c.RequestEvery == 0 {
		c.RequestEvery = 60
	}
	if c.SessionMinTicks == 0 {
		c.SessionMinTicks = 1500
	}
	if c.SessionAlpha == 0 {
		c.SessionAlpha = 1.6
	}
	if c.RequestWords == 0 {
		c.RequestWords = 400
	}
	if c.RetainWords == 0 {
		c.RetainWords = 128
	}
	if c.SessionSlots == 0 {
		c.SessionSlots = 12
	}
	if len(c.Profiles) == 0 {
		c.Profiles = []string{"nboyer1", "nucleic2", "2dyninfer"}
	}
	if c.BurstRate == 0 {
		c.BurstRate = 8
	}
	if c.BurstEvery == 0 {
		c.BurstEvery = 20000
	}
	if c.BurstTicks == 0 {
		c.BurstTicks = 2500
	}
	return c
}

func (c LoadConfig) validate() error {
	if c.Arrival != ArrivalPoisson && c.Arrival != ArrivalMMPP {
		return fmt.Errorf("serve: unknown arrival process %q (have %q, %q)",
			c.Arrival, ArrivalPoisson, ArrivalMMPP)
	}
	if c.SessionAlpha <= 1 {
		return fmt.Errorf("serve: session alpha %g must exceed 1 (finite mean lifetime)", c.SessionAlpha)
	}
	if c.SessionSlots < 1 {
		return fmt.Errorf("serve: session slots %d must be positive", c.SessionSlots)
	}
	return nil
}

// SessionPlan is one session of the schedule: a tenant with shard affinity
// whose live state spans its requests.
type SessionPlan struct {
	ID      uint64
	Arrival uint64 // tick of the first request
	End     uint64 // tick after which the session's state is dropped
	Profile int    // index into the resolved profile list
	// Requests counts the session's requests; request arrivals past the
	// horizon are not generated, so long-lived sessions simply idle once
	// the load stops.
	Requests int
}

// Request is one request of the open-loop schedule.
type Request struct {
	Session uint64
	Seq     int    // request index within its session
	Arrival uint64 // tick
	Words   uint64 // handler allocation budget in words
	Profile int    // index into the resolved profile list
}

// Schedule is the full deterministic load plan: sessions and their
// requests, globally ordered by (Arrival, Session, Seq). The schedule is
// independent of the shard count; ShardRequests carves the per-shard
// streams out of it.
type Schedule struct {
	Cfg      LoadConfig
	Sessions []SessionPlan
	Requests []Request
}

// arrivals produces the session start ticks of the configured process.
type arrivals struct {
	cfg        LoadConfig
	r          *rng
	t          float64
	inBurst    bool
	nextSwitch float64
}

func newArrivals(cfg LoadConfig, r *rng) *arrivals {
	a := &arrivals{cfg: cfg, r: r}
	if cfg.Arrival == ArrivalMMPP {
		a.nextSwitch = r.Exp(cfg.BurstEvery)
	}
	return a
}

// next returns the next session start tick. The MMPP state toggles at
// exponentially distributed dwell boundaries; because the in-state gap
// distribution is memoryless, redrawing the gap after crossing a switch
// boundary is exact, not an approximation.
func (a *arrivals) next() uint64 {
	for {
		mean := a.cfg.SessionEvery
		if a.inBurst {
			mean /= a.cfg.BurstRate
		}
		gap := a.r.Exp(mean)
		if a.cfg.Arrival == ArrivalMMPP && a.t+gap >= a.nextSwitch {
			a.t = a.nextSwitch
			a.inBurst = !a.inBurst
			if a.inBurst {
				a.nextSwitch = a.t + a.r.Exp(a.cfg.BurstTicks)
			} else {
				a.nextSwitch = a.t + a.r.Exp(a.cfg.BurstEvery)
			}
			continue
		}
		a.t += gap
		return uint64(a.t)
	}
}

// Generate builds the schedule for cfg. The arrival stream draws from one
// seeded generator; each session's content (lifetime, request gaps, request
// sizes) draws from its own stream seeded by (Seed, ID), so a session's
// requests are a pure function of its identity — the property that makes
// per-shard streams exact sub-sequences of the global one.
func Generate(cfg LoadConfig) (*Schedule, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Schedule{Cfg: cfg}
	arr := newArrivals(cfg, newRNG(mix(cfg.Seed, 0xa11c)))
	for t := arr.next(); t < cfg.HorizonTicks; t = arr.next() {
		id := uint64(len(s.Sessions))
		sr := newRNG(mix(cfg.Seed, 0x5e55, id))
		life := sr.Pareto(cfg.SessionMinTicks, cfg.SessionAlpha)
		plan := SessionPlan{
			ID:      id,
			Arrival: t,
			End:     t + uint64(life),
			Profile: int(id % uint64(len(cfg.Profiles))),
		}
		reqT := t
		for reqT <= plan.End && reqT < cfg.HorizonTicks {
			words := uint64(1 + int(sr.Exp(float64(cfg.RequestWords))))
			s.Requests = append(s.Requests, Request{
				Session: id,
				Seq:     plan.Requests,
				Arrival: reqT,
				Words:   words,
				Profile: plan.Profile,
			})
			plan.Requests++
			gap := uint64(sr.Exp(cfg.RequestEvery))
			if gap < 1 {
				gap = 1
			}
			reqT += gap
		}
		s.Sessions = append(s.Sessions, plan)
	}
	sort.SliceStable(s.Requests, func(i, j int) bool {
		a, b := s.Requests[i], s.Requests[j]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		return a.Seq < b.Seq
	})
	return s, nil
}

// ShardOf is the deterministic splitter: sessions have shard affinity, so
// a session's whole request stream lands on one shard and the per-shard
// streams partition the global one. It is a pure function of the session
// id and the shard count — nothing about the schedule moves when the
// cluster is resized.
func ShardOf(session uint64, shards int) int {
	return int(session % uint64(shards))
}

// ShardRequests returns shard i's request stream under the given shard
// count, preserving global order.
func (s *Schedule) ShardRequests(i, shards int) []Request {
	var out []Request
	for _, r := range s.Requests {
		if ShardOf(r.Session, shards) == i {
			out = append(out, r)
		}
	}
	return out
}

// ShardSessions returns shard i's session plans in arrival order.
func (s *Schedule) ShardSessions(i, shards int) []SessionPlan {
	var out []SessionPlan
	for _, p := range s.Sessions {
		if ShardOf(p.ID, shards) == i {
			out = append(out, p)
		}
	}
	return out
}
