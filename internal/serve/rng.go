// Package serve simulates a sharded multi-tenant server over the simulated
// heap: N independent heap shards behind a deterministic open-loop load
// generator, with GC pauses charged to the requests that wait for them and
// per-request latency tails as the headline metric. See DESIGN.md "Server
// simulation".
package serve

import "math"

// rng is a splitmix64 generator. The schedule and every per-request draw
// must be byte-stable across platforms, Go versions, and shard layouts, so
// the package carries its own trivially-specified PRNG instead of leaning
// on math/rand; splitmix64 also gives cheap independent streams (one per
// session, one per request) by finalizing a derived seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next advances the splitmix64 state and returns the next 64-bit output.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix finalizes a composite seed: the derived streams (per session, per
// request) are seeded with mix of the run seed and their identifiers, so a
// session's draws do not depend on how many other sessions preceded it —
// the property the shard-count-invariance contract rests on.
func mix(parts ...uint64) uint64 {
	z := uint64(0x243f6a8885a308d3) // pi, for want of nothing up the sleeve
	for _, p := range parts {
		z += p
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		panic("serve: Intn bound must be positive")
	}
	return int(r.next() % uint64(n))
}

// Uint64n returns a uniform draw in [0, n).
func (r *rng) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("serve: Uint64n bound must be positive")
	}
	return r.next() % n
}

// Exp returns an exponential draw with the given mean (inter-arrival gaps,
// within-session request gaps, dwell times).
func (r *rng) Exp(mean float64) float64 {
	// 1-u is in (0, 1], so the log never sees zero.
	return -mean * math.Log(1-r.Float64())
}

// Pareto returns a Pareto(xm, alpha) draw: P(X > x) = (xm/x)^alpha for
// x >= xm. Session lifetimes use it for the heavy tail the multi-tenant
// story needs — most sessions are brief, a few span a large fraction of
// the run and keep live state across many collections.
func (r *rng) Pareto(xm, alpha float64) float64 {
	return xm * math.Pow(1-r.Float64(), -1/alpha)
}
