package serve

import (
	"fmt"
	"io"
	"strings"

	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/heap"
	"rdgc/internal/runner"
)

// Config configures one server-simulation run: the load, the per-shard
// collector, and the clock that converts words of work into ticks.
type Config struct {
	Load LoadConfig

	// Collector names the per-shard collector (see CollectorNames).
	// Default "generational".
	Collector string

	// Shards is the number of independent heap shards (default 4).
	Shards int

	// HeapWords sizes each shard's collector, as gcfuzz.CollectorsSized
	// does for trace replay (default 1<<17).
	HeapWords int

	// WordsPerTick is the service clock: how many words of work — handler
	// allocation plus GC pause words — one tick covers (default 64). The
	// simulation has no wall time; this is the explicit words-as-time
	// assumption the latency numbers rest on.
	WordsPerTick int

	// Per-shard heap knobs, mirroring the drivers' -gcworkers, -gclab,
	// -gcincr, -gcslice, -gctenure, -gcadapt.
	GCWorkers   int
	GCLAB       bool
	Incremental bool
	SliceBudget int
	Tenure      int
	Adaptive    bool

	// Parallel is the runner worker-pool size for executing shards
	// (0 = GOMAXPROCS or $RDGC_PARALLEL). It affects wall-clock only:
	// results are identical for every value.
	Parallel int

	// Progress, when non-nil, receives per-shard completion lines
	// (normally os.Stderr, never stdout). Excluded from JSON: it is a side
	// channel, not part of the result.
	Progress io.Writer `json:"-"`
}

func (c Config) withDefaults() Config {
	c.Load = c.Load.withDefaults()
	if c.Collector == "" {
		c.Collector = "generational"
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.HeapWords == 0 {
		c.HeapWords = 1 << 17
	}
	if c.WordsPerTick == 0 {
		c.WordsPerTick = 64
	}
	if c.GCWorkers == 0 {
		c.GCWorkers = 1
	}
	if c.Tenure == 0 {
		c.Tenure = 1
	}
	return c
}

// CollectorNames lists the collectors a shard can run, in grid order.
func CollectorNames() []string {
	ncs := gcfuzz.CollectorsSized(0)
	names := make([]string, len(ncs))
	for i, nc := range ncs {
		names[i] = nc.Name
	}
	return names
}

func collectorByName(h *heap.Heap, name string, total int) (heap.Collector, error) {
	for _, nc := range gcfuzz.CollectorsSized(total) {
		if nc.Name == name {
			return nc.New(h), nil
		}
	}
	return nil, fmt.Errorf("serve: unknown collector %q (have %s)",
		name, strings.Join(CollectorNames(), ", "))
}

// Aggregate is the run-level rollup of the per-shard results. Fixed-size
// fields only, so it is comparable with ==.
type Aggregate struct {
	Sessions    uint64
	Requests    uint64
	WordsAlloc  uint64
	WordsPause  uint64
	Collections int
	Major       int
	Footprint   int    // sum of shard footprints
	Makespan    uint64 // latest shard completion tick
	Latency     heap.PauseHist
	GCPauses    heap.PauseHist
}

// RequestsPerKilotick is the headline throughput: completed requests per
// thousand ticks of makespan.
func (a Aggregate) RequestsPerKilotick() float64 {
	if a.Makespan == 0 {
		return 0
	}
	return 1000 * float64(a.Requests) / float64(a.Makespan)
}

// Result is one full simulation run: the effective configuration, every
// shard's measurement in shard order, and the aggregate.
type Result struct {
	Cfg    Config
	Shards []ShardResult
	Agg    Aggregate
}

// Run executes the simulation: generate the schedule, resolve the
// allocation profiles, then run every shard as an independent cell under
// the runner. Identical Config (including Seed) yields an identical Result
// regardless of Parallel, because shards share no state and results come
// back in submission order.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sched, err := Generate(cfg.Load)
	if err != nil {
		return nil, err
	}
	cfg.Load = sched.Cfg
	if _, err := collectorByName(heap.New(), cfg.Collector, cfg.HeapWords); err != nil {
		return nil, err
	}
	profiles, err := ResolveProfiles(cfg.Load.Profiles)
	if err != nil {
		return nil, err
	}

	specs := make([]runner.Spec[ShardResult], cfg.Shards)
	for i := range specs {
		i := i
		reqs := sched.ShardRequests(i, cfg.Shards)
		specs[i] = runner.Spec[ShardResult]{
			Name: fmt.Sprintf("%s/shard%02d", cfg.Collector, i),
			Run: func() (ShardResult, error) {
				return runShard(cfg, i, reqs, profiles)
			},
			Words: func(r ShardResult) uint64 { return r.WordsAlloc + r.WordsPause },
		}
	}
	res := &Result{Cfg: cfg}
	for _, cell := range runner.Run(specs, runner.Options{
		Workers:          cfg.Parallel,
		Progress:         cfg.Progress,
		GCWorkersPerCell: cfg.GCWorkers,
	}) {
		if cell.Err != nil {
			return nil, fmt.Errorf("serve: %s: %w", cell.Name, cell.Err)
		}
		res.Shards = append(res.Shards, cell.Value)
	}
	res.Agg = aggregate(res.Shards)
	return res, nil
}

func aggregate(shards []ShardResult) Aggregate {
	var a Aggregate
	for i := range shards {
		s := &shards[i]
		a.Sessions += s.Sessions
		a.Requests += s.Requests
		a.WordsAlloc += s.WordsAlloc
		a.WordsPause += s.WordsPause
		a.Collections += s.GC.Collections
		a.Major += s.GC.MajorCollections
		a.Footprint += s.Footprint
		if s.FinalTick > a.Makespan {
			a.Makespan = s.FinalTick
		}
		a.Latency.Merge(&s.Latency)
		a.GCPauses.Merge(&s.GC.Pauses)
	}
	return a
}

// onoff renders a boolean knob the way the drivers' reports do.
func onoff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// WriteReport prints the deterministic text report: configuration echo,
// aggregate line, latency tail, and the per-shard table. Nothing here
// depends on wall time or worker count, so the bytes are stable for a
// given Config.
func (r *Result) WriteReport(w io.Writer) {
	c := r.Cfg
	fmt.Fprintf(w, "gcserve: collector=%s shards=%d heap=%dw wpt=%d gcworkers=%d incr=%s adapt=%s tenure=%d\n",
		c.Collector, c.Shards, c.HeapWords, c.WordsPerTick, c.GCWorkers,
		onoff(c.Incremental), onoff(c.Adaptive), c.Tenure)
	fmt.Fprintf(w, "load: arrival=%s seed=%d horizon=%d session-every=%g request-every=%g pareto=(%g,%g) profiles=%s\n",
		c.Load.Arrival, c.Load.Seed, c.Load.HorizonTicks, c.Load.SessionEvery,
		c.Load.RequestEvery, c.Load.SessionMinTicks, c.Load.SessionAlpha,
		strings.Join(c.Load.Profiles, ","))
	a := r.Agg
	fmt.Fprintf(w, "agg: sessions=%d requests=%d reqs/ktick=%.2f alloc=%dw gc-pause=%dw collections=%d (major %d) footprint=%dw makespan=%d\n",
		a.Sessions, a.Requests, a.RequestsPerKilotick(), a.WordsAlloc, a.WordsPause,
		a.Collections, a.Major, a.Footprint, a.Makespan)
	fmt.Fprintf(w, "latency ticks: p50=%d p99=%d p999=%d max=%d\n",
		a.Latency.P50(), a.Latency.P99(), a.Latency.P999(), a.Latency.MaxWords)
	fmt.Fprintf(w, "%-6s %8s %8s %12s %12s %6s %8s %8s %8s %8s %10s\n",
		"shard", "sess", "reqs", "alloc", "gc-pause", "gcs", "p50", "p99", "p999", "max", "footprint")
	for _, s := range r.Shards {
		fmt.Fprintf(w, "%-6d %8d %8d %12d %12d %6d %8d %8d %8d %8d %10d\n",
			s.Shard, s.Sessions, s.Requests, s.WordsAlloc, s.WordsPause,
			s.GC.Collections, s.Latency.P50(), s.Latency.P99(), s.Latency.P999(),
			s.Latency.MaxWords, s.Footprint)
	}
}
