package serve

import (
	"fmt"
	"slices"

	"rdgc/internal/bench"
	"rdgc/internal/heap"
)

// ShardResult is one shard's measurement. Every field is fixed-size, so the
// struct is comparable with == — the conformance tests pin shard results
// bit-identical across runs and runner worker counts.
type ShardResult struct {
	Shard      int
	Sessions   uint64 // sessions that issued at least one request here
	Requests   uint64
	WordsAlloc uint64 // mutator words allocated by the shard's handlers
	WordsPause uint64 // collector words the shard's requests waited for
	FinalTick  uint64 // completion tick of the last request
	Footprint  int    // heap footprint words at end of run
	Latency    heap.PauseHist
	GC         heap.GCStats
}

// session is the shard-local state of one live tenant: the root slot that
// keeps its ring vector alive, and its expiry tick.
type session struct {
	slot int // index into the shard's root-slot pool
	end  uint64
}

// shard is the per-shard simulation state: a single-threaded heap, the
// FIFO service clock, and the live-session table.
type shard struct {
	h         *heap.Heap
	col       heap.Collector
	cfg       Config
	profiles  []*Profile
	clock     uint64 // tick at which the server becomes idle
	pausew    uint64 // pause words charged to the request in flight
	slotRefs  []heap.Ref
	freeSlots []int
	live      map[uint64]session
	nextExp   uint64 // earliest live-session expiry, 0 = none
	res       ShardResult
}

// runShard simulates one shard end to end: its slice of the global request
// stream against its own heap, with GC pauses folded into request service
// times. It is the unit the runner parallelizes; everything it touches is
// shard-local, so shards share no mutable state.
func runShard(cfg Config, idx int, reqs []Request, profiles []*Profile) (ShardResult, error) {
	h := heap.New()
	h.SetGCWorkers(cfg.GCWorkers)
	h.SetGCLAB(cfg.GCLAB)
	h.SetGCIncremental(cfg.Incremental)
	if cfg.SliceBudget > 0 {
		h.SetGCSliceBudget(cfg.SliceBudget)
	}
	h.SetGCTenure(cfg.Tenure)
	h.SetGCAdaptive(cfg.Adaptive)
	col, err := collectorByName(h, cfg.Collector, cfg.HeapWords)
	if err != nil {
		return ShardResult{}, err
	}
	s := &shard{
		h:        h,
		col:      col,
		cfg:      cfg,
		profiles: profiles,
		live:     make(map[uint64]session),
		res:      ShardResult{Shard: idx},
	}
	// Every allocation happens while some request is in flight, so the raw
	// pause stream attributes each collection (or incremental slice) to the
	// request that triggered it.
	h.SetPauseLog(func(words uint64) { s.pausew += words })
	defer h.SetPauseLog(nil)

	root := h.Scope()
	defer root.Close()
	for _, req := range reqs {
		s.serve(req)
	}
	s.res.Footprint = h.FootprintWords()
	s.res.GC = *col.GCStats()
	s.res.WordsAlloc = h.Stats.WordsAllocated
	return s.res, nil
}

// serve processes one request through the shard's FIFO queue: expire dead
// sessions, run the handler, convert the words of work — allocation plus
// any GC pause charged meanwhile — into ticks on the service clock.
func (s *shard) serve(req Request) {
	s.expire(req.Arrival)
	start := req.Arrival
	if s.clock > start {
		start = s.clock
	}
	allocBefore := s.h.Stats.WordsAllocated
	s.pausew = 0
	s.handle(req)
	work := (s.h.Stats.WordsAllocated - allocBefore) + s.pausew
	ticks := (work + uint64(s.cfg.WordsPerTick) - 1) / uint64(s.cfg.WordsPerTick)
	s.clock = start + ticks
	s.res.WordsPause += s.pausew
	s.res.Requests++
	s.res.FinalTick = s.clock
	s.res.Latency.Record(s.clock - req.Arrival)
}

// expire drops the state of every session whose lifetime ended before now.
// Expiry is keyed to arrival ticks (not the queue-delayed service clock),
// so it is a pure function of the schedule: a session never outlives its
// plan because the shard fell behind, and never expires before its own
// last planned request.
func (s *shard) expire(now uint64) {
	if s.nextExp == 0 || now < s.nextExp {
		return
	}
	s.nextExp = 0
	var dead []uint64
	for id, sess := range s.live {
		if sess.end < now {
			dead = append(dead, id)
			continue
		}
		if s.nextExp == 0 || sess.end < s.nextExp {
			s.nextExp = sess.end
		}
	}
	// Map iteration order is randomized, so free the batch in sorted session
	// order: the slot freelist — and with it every future slot assignment,
	// root layout, and trace order — stays a pure function of the schedule.
	slices.Sort(dead)
	for _, id := range dead {
		// Clearing the root slot is the only unlink: the ring vector and
		// everything it retains becomes garbage for the next collection to
		// prove dead.
		s.h.Set(s.slotRefs[s.live[id].slot], heap.NullWord)
		s.freeSlots = append(s.freeSlots, s.live[id].slot)
		delete(s.live, id)
	}
}

// admit sets up a session's ring vector on its first request and returns
// the session. Root-slot bookkeeping happens outside any handler scope so
// the slot pool stays in the shard's base scope.
func (s *shard) admit(req Request) session {
	if sess, ok := s.live[req.Session]; ok {
		return sess
	}
	var slot int
	if n := len(s.freeSlots); n > 0 {
		slot = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
	} else {
		slot = len(s.slotRefs)
		s.slotRefs = append(s.slotRefs, s.h.RefOf(heap.NullWord))
	}
	sc := s.h.Scope()
	ring := s.h.MakeVector(s.cfg.Load.SessionSlots, s.h.Null())
	s.h.Set(s.slotRefs[slot], s.h.Get(ring))
	sc.Close()
	end := req.Arrival + 1 // degenerate plans still cover their one request
	if sessEnd := s.sessionEnd(req); sessEnd > end {
		end = sessEnd
	}
	sess := session{slot: slot, end: end}
	s.live[req.Session] = sess
	if s.nextExp == 0 || end < s.nextExp {
		s.nextExp = end
	}
	s.res.Sessions++
	return sess
}

// sessionEnd recomputes the session's planned end tick from its identity —
// the same first draw Generate made — so shards need only the request
// stream, not the session table.
func (s *shard) sessionEnd(req Request) uint64 {
	sr := newRNG(mix(s.cfg.Load.Seed, 0x5e55, req.Session))
	life := sr.Pareto(s.cfg.Load.SessionMinTicks, s.cfg.Load.SessionAlpha)
	return req.Arrival - s.arrivalOffset(req) + uint64(life)
}

// arrivalOffset is how far into its session this request arrives. Only a
// Seq-0 request ever reaches sessionEnd, so the offset is zero; the method
// exists to keep the invariant in one checked place.
func (s *shard) arrivalOffset(req Request) uint64 {
	if req.Seq != 0 {
		panic(fmt.Sprintf("serve: session %d admitted on request %d", req.Session, req.Seq))
	}
	return 0
}

// handle runs one request's handler: link RetainWords of fresh state into
// the session ring (displacing the slot's previous contents), then allocate
// scratch objects sampled from the session's profile until the request's
// word budget is spent. All scratch dies with the handler scope; the ring
// survives into future requests and collections.
func (s *shard) handle(req Request) {
	sess := s.admit(req)
	rr := newRNG(mix(s.cfg.Load.Seed, 0xbeef, req.Session, uint64(req.Seq)))
	h := s.h
	sc := h.Scope()
	defer sc.Close()

	ring := h.Dup(s.slotRefs[sess.slot])
	if retain := s.cfg.Load.RetainWords; retain > 0 {
		// A cons chain costs 3 words per link (header + car + cdr). The
		// VectorSet is an old-to-young store once the ring has survived a
		// collection — the write-barrier traffic multi-tenant retention
		// exists to generate.
		chain := h.Null()
		for built := 0; built < retain; built += 3 {
			chain = h.Cons(h.Fix(int64(req.Seq)), chain)
		}
		h.VectorSet(ring, req.Seq%s.cfg.Load.SessionSlots, chain)
	}

	profile := s.profiles[req.Profile]
	prev := h.Null()
	for spent := uint64(0); spent < req.Words; {
		cls := profile.pick(rr)
		prev = s.allocClass(cls, prev)
		spent += cls.CostWords()
	}
}

// allocClass allocates one object of the sampled class, linking pointer
// classes to the previous scratch object so the young heap holds real
// pointer chains, not isolated leaves. Symbols are interned (allocated once
// per name, rooted globally), so re-enacting a symbol allocation would leak
// a global per request; a vector of the same size stands in: same words,
// same scanned-payload shape.
func (s *shard) allocClass(cls bench.AllocClass, prev heap.Ref) heap.Ref {
	h := s.h
	switch cls.Type {
	case heap.TPair:
		return h.Cons(prev, h.Null())
	case heap.TFlonum:
		return h.Flonum(float64(cls.PayloadWords))
	case heap.TBytevec:
		return h.Bytevector(8 * cls.PayloadWords)
	case heap.TBox:
		return h.Box(prev)
	default: // TVector, and TSymbol's stand-in
		return h.MakeVector(cls.PayloadWords, prev)
	}
}
