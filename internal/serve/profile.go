package serve

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"rdgc/internal/bench"
	"rdgc/internal/trace"
)

// TracePrefix marks a profile name as a recorded-trace path rather than a
// registry program name: "trace:runs/nboyer.trace".
const TracePrefix = "trace:"

// Profile is a sampleable allocation mix: a measured bench.AllocProfile
// plus the cumulative counts weighted sampling needs. Profiles are
// immutable after construction, so every shard of a run shares one set.
type Profile struct {
	bench.AllocProfile
	cum []uint64 // running totals of Classes[i].Count
}

func newProfile(p bench.AllocProfile) (*Profile, error) {
	if p.Objects == 0 {
		return nil, fmt.Errorf("serve: profile %q recorded no allocations", p.Source)
	}
	pr := &Profile{AllocProfile: p, cum: make([]uint64, len(p.Classes))}
	var c uint64
	for i, cls := range p.Classes {
		c += cls.Count
		pr.cum[i] = c
	}
	return pr, nil
}

// pick draws one allocation class, weighted by its count in the measured
// mix, so a stream of picks re-enacts the source program's allocation-size
// and type distribution without re-running the program.
func (p *Profile) pick(r *rng) bench.AllocClass {
	target := r.Uint64n(p.Objects)
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p.Classes[lo]
}

// ProfileFromTrace builds an allocation profile from a recorded trace file
// (cmd/gctrace format). The whole trace is read, so the profile also
// CRC-verifies it.
func ProfileFromTrace(path string) (bench.AllocProfile, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.AllocProfile{}, fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return bench.AllocProfile{}, fmt.Errorf("serve: %s: %w", path, err)
	}
	mix, err := trace.ReadAllocMix(r)
	if err != nil {
		return bench.AllocProfile{}, fmt.Errorf("serve: %s: %w", path, err)
	}
	counts := make(map[bench.AllocClass]uint64, len(mix))
	for _, cls := range mix {
		counts[bench.AllocClass{Type: cls.Type, PayloadWords: cls.PayloadWords}] = cls.Count
	}
	return bench.BuildProfile(TracePrefix+path, counts), nil
}

// profileCache memoizes resolved profiles by name: sampling a registry
// profile runs the whole program once, and a grid driver resolves the same
// handful of names for every cell.
var profileCache struct {
	sync.Mutex
	m map[string]*Profile
}

// resolveProfile resolves one profile name: "trace:PATH" reads a recorded
// trace; anything else is a registry program, looked up in the quick suite
// first (cheap to sample) and the standard suite as a fallback.
func resolveProfile(name string) (*Profile, error) {
	profileCache.Lock()
	defer profileCache.Unlock()
	if p, ok := profileCache.m[name]; ok {
		return p, nil
	}
	var ap bench.AllocProfile
	if path, ok := strings.CutPrefix(name, TracePrefix); ok {
		var err error
		if ap, err = ProfileFromTrace(path); err != nil {
			return nil, err
		}
	} else {
		prog, err := bench.ByName(name, true)
		if err != nil {
			if prog, err = bench.ByName(name, false); err != nil {
				return nil, err
			}
		}
		if ap, err = bench.SampleProfile(prog); err != nil {
			return nil, err
		}
	}
	p, err := newProfile(ap)
	if err != nil {
		return nil, err
	}
	if profileCache.m == nil {
		profileCache.m = make(map[string]*Profile)
	}
	profileCache.m[name] = p
	return p, nil
}

// ResolveProfiles resolves every name of a load config, in order.
func ResolveProfiles(names []string) ([]*Profile, error) {
	out := make([]*Profile, len(names))
	for i, name := range names {
		p, err := resolveProfile(name)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
