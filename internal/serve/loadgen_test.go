package serve

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// TestGenerateDeterministic pins the schedule contract: identical seed and
// config yield an identical schedule, a different seed a different one.
func TestGenerateDeterministic(t *testing.T) {
	cfg := LoadConfig{Seed: 7, HorizonTicks: 30000}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed and config produced different schedules")
	}
	c, err := Generate(LoadConfig{Seed: 8, HorizonTicks: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Requests, c.Requests) {
		t.Fatal("different seeds produced identical request streams")
	}
	if len(a.Sessions) == 0 || len(a.Requests) == 0 {
		t.Fatalf("degenerate schedule: %d sessions, %d requests", len(a.Sessions), len(a.Requests))
	}
}

// TestScheduleShape checks structural invariants: global request order,
// horizon bounds, session bounds, and per-session request numbering.
func TestScheduleShape(t *testing.T) {
	s, err := Generate(LoadConfig{Seed: 3, HorizonTicks: 50000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Cfg
	seqs := make(map[uint64]int)
	for i, r := range s.Requests {
		if i > 0 {
			p := s.Requests[i-1]
			if r.Arrival < p.Arrival ||
				(r.Arrival == p.Arrival && (r.Session < p.Session ||
					(r.Session == p.Session && r.Seq <= p.Seq))) {
				t.Fatalf("requests out of order at %d: %+v then %+v", i, p, r)
			}
		}
		if r.Arrival >= cfg.HorizonTicks {
			t.Fatalf("request past the horizon: %+v", r)
		}
		plan := s.Sessions[r.Session]
		if r.Arrival < plan.Arrival || r.Arrival > plan.End {
			t.Fatalf("request outside its session [%d, %d]: %+v", plan.Arrival, plan.End, r)
		}
		if r.Seq != seqs[r.Session] {
			t.Fatalf("session %d: request seq %d, want %d", r.Session, r.Seq, seqs[r.Session])
		}
		seqs[r.Session]++
	}
	for _, plan := range s.Sessions {
		if seqs[plan.ID] != plan.Requests {
			t.Fatalf("session %d: %d requests in stream, plan says %d",
				plan.ID, seqs[plan.ID], plan.Requests)
		}
		if plan.Requests == 0 {
			t.Fatalf("session %d arrived but issued no requests", plan.ID)
		}
		if plan.End <= plan.Arrival {
			t.Fatalf("session %d has non-positive lifetime: %+v", plan.ID, plan)
		}
	}
}

// TestShardInvariance pins the deterministic-splitter contract: for any
// shard count, the per-shard streams partition the global stream, preserve
// its order, and merging them back reproduces it exactly — so a 1-shard
// run and a K-shard run serve the same requests.
func TestShardInvariance(t *testing.T) {
	s, err := Generate(LoadConfig{Seed: 11, HorizonTicks: 40000})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ShardRequests(0, 1); !reflect.DeepEqual(got, s.Requests) {
		t.Fatal("single-shard stream differs from the global stream")
	}
	for _, shards := range []int{2, 3, 16} {
		var merged []Request
		for i := 0; i < shards; i++ {
			sub := s.ShardRequests(i, shards)
			for j, r := range sub {
				if ShardOf(r.Session, shards) != i {
					t.Fatalf("shards=%d: request %+v on wrong shard %d", shards, r, i)
				}
				if j > 0 && requestLess(r, sub[j-1]) {
					t.Fatalf("shards=%d shard %d: stream out of order at %d", shards, i, j)
				}
			}
			merged = append(merged, sub...)
		}
		sort.SliceStable(merged, func(a, b int) bool { return requestLess(merged[a], merged[b]) })
		if !reflect.DeepEqual(merged, s.Requests) {
			t.Fatalf("shards=%d: merged per-shard streams diverge from the global stream", shards)
		}
	}
}

func requestLess(a, b Request) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	if a.Session != b.Session {
		return a.Session < b.Session
	}
	return a.Seq < b.Seq
}

// TestSessionLifetimeDistribution checks the empirical session lifetimes
// against the configured Pareto: the median of Pareto(xm, alpha) is
// xm * 2^(1/alpha), a statistic that exists and concentrates even for
// alpha < 2 where the variance is infinite.
func TestSessionLifetimeDistribution(t *testing.T) {
	cfg := LoadConfig{
		Seed:         5,
		HorizonTicks: 4_000_000,
		SessionEvery: 400,
		RequestEvery: 1e12, // one request per session: lifetime draws only
		SessionSlots: 1,
	}
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(s.Sessions)
	if n < 5000 {
		t.Fatalf("too few sessions for a distribution check: %d", n)
	}
	lives := make([]float64, n)
	for i, plan := range s.Sessions {
		life := float64(plan.End - plan.Arrival)
		if life < s.Cfg.SessionMinTicks {
			t.Fatalf("session %d lifetime %g below the Pareto minimum %g",
				plan.ID, life, s.Cfg.SessionMinTicks)
		}
		lives[i] = life
	}
	sort.Float64s(lives)
	median := lives[n/2]
	want := s.Cfg.SessionMinTicks * math.Pow(2, 1/s.Cfg.SessionAlpha)
	if rel := math.Abs(median-want) / want; rel > 0.05 {
		t.Fatalf("lifetime median %g, want %g (±5%%): off by %.1f%%", median, want, 100*rel)
	}
}

// TestRNGDistributions checks the samplers the schedule is built from: the
// exponential mean, and the Pareto mean in the finite-variance regime
// alpha = 2.5 where the sample mean converges fast.
func TestRNGDistributions(t *testing.T) {
	const n = 200_000
	r := newRNG(mix(42, 0xd157))
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(600)
	}
	if mean := sum / n; math.Abs(mean-600)/600 > 0.02 {
		t.Fatalf("Exp(600) sample mean %g, want 600 ±2%%", mean)
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += r.Pareto(1500, 2.5)
	}
	want := 1500 * 2.5 / 1.5 // xm * alpha / (alpha - 1)
	if mean := sum / n; math.Abs(mean-want)/want > 0.03 {
		t.Fatalf("Pareto(1500, 2.5) sample mean %g, want %g ±3%%", mean, want)
	}
}

// TestMMPPBurstier pins that the two-state arrival process actually
// modulates: the index of dispersion (window-count variance over mean) of
// MMPP session arrivals clearly exceeds a Poisson stream's, which sits
// near 1.
func TestMMPPBurstier(t *testing.T) {
	base := LoadConfig{
		Seed:         9,
		HorizonTicks: 2_000_000,
		SessionEvery: 300,
		RequestEvery: 1e12,
		SessionSlots: 1,
	}
	dispersion := func(arrival string) float64 {
		cfg := base
		cfg.Arrival = arrival
		s, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const window = 10_000
		counts := make([]float64, base.HorizonTicks/window)
		for _, plan := range s.Sessions {
			counts[plan.Arrival/window]++
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		var varsum float64
		for _, c := range counts {
			varsum += (c - mean) * (c - mean)
		}
		return varsum / float64(len(counts)-1) / mean
	}
	poisson := dispersion(ArrivalPoisson)
	mmpp := dispersion(ArrivalMMPP)
	if poisson > 1.3 {
		t.Fatalf("Poisson dispersion %g, expected near 1", poisson)
	}
	if mmpp < 2*poisson {
		t.Fatalf("MMPP dispersion %g not clearly burstier than Poisson's %g", mmpp, poisson)
	}
}

// TestLoadConfigValidate pins the error paths.
func TestLoadConfigValidate(t *testing.T) {
	if _, err := Generate(LoadConfig{Arrival: "lognormal"}); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
	if _, err := Generate(LoadConfig{SessionAlpha: 0.9}); err == nil {
		t.Fatal("alpha <= 1 accepted")
	}
	if _, err := Generate(LoadConfig{SessionSlots: -1}); err == nil {
		t.Fatal("negative session slots accepted")
	}
}
