package serve

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdgc/internal/bench"
	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

func TestResolveProfilesRegistry(t *testing.T) {
	ps, err := ResolveProfiles([]string{"nboyer1", "nucleic2"})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if p.Objects == 0 || len(p.Classes) == 0 {
			t.Fatalf("profile %d degenerate: %+v", i, p.AllocProfile)
		}
	}
	if ps[0].Source != "nboyer1" || ps[1].Source != "nucleic2" {
		t.Fatalf("sources wrong: %q, %q", ps[0].Source, ps[1].Source)
	}
	if _, err := ResolveProfiles([]string{"no-such-workload"}); err == nil {
		t.Fatal("unknown profile name accepted")
	}
}

// TestPickDistribution checks weighted sampling: pick frequencies converge
// to the class counts, and every pick is a class of the profile.
func TestPickDistribution(t *testing.T) {
	prof, err := newProfile(bench.BuildProfile("synthetic", map[bench.AllocClass]uint64{
		{Type: heap.TPair, PayloadWords: 2}:    1,
		{Type: heap.TVector, PayloadWords: 10}: 3,
		{Type: heap.TFlonum, PayloadWords: 1}:  6,
	}))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	r := newRNG(mix(1, 0x91c4))
	got := make(map[bench.AllocClass]float64)
	for i := 0; i < n; i++ {
		cls := prof.pick(r)
		cls.Count = 0 // compare by identity, not by the profile's count
		got[cls]++
	}
	if len(got) != len(prof.Classes) {
		t.Fatalf("picked %d distinct classes, profile has %d", len(got), len(prof.Classes))
	}
	for _, cls := range prof.Classes {
		want := float64(cls.Count) / float64(prof.Objects)
		key := cls
		key.Count = 0
		if frac := got[key] / n; math.Abs(frac-want) > 0.01 {
			t.Fatalf("class %+v picked %.3f of draws, want %.3f", cls, frac, want)
		}
	}
}

// TestProfileFromTrace builds a profile from a synthesized recorded trace
// and runs the server on it, closing the trace->profile->load loop.
func TestProfileFromTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "synthetic.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, trace.Header{})
	if err != nil {
		t.Fatal(err)
	}
	var words, objects uint64
	for i := 0; i < 40; i++ {
		ev := trace.Event{Kind: trace.KindAlloc, Type: heap.TPair, Size: 2}
		if i%4 == 0 {
			ev = trace.Event{Kind: trace.KindAlloc, Type: heap.TVector, Size: 6}
		}
		if err := w.Append(&ev); err != nil {
			t.Fatal(err)
		}
		words += uint64(1 + ev.Size)
		objects++
	}
	if err := w.Close(trace.Trailer{WordsAllocated: words, ObjectsAllocated: objects, Events: objects}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	prof, err := ProfileFromTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Objects != 40 || len(prof.Classes) != 2 {
		t.Fatalf("census wrong: %+v", prof)
	}
	if !strings.HasPrefix(prof.Source, TracePrefix) {
		t.Fatalf("trace profile source %q lacks the %q prefix", prof.Source, TracePrefix)
	}

	cfg := smallConfig()
	cfg.Load.Profiles = []string{TracePrefix + path}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Requests == 0 || res.Agg.WordsAlloc == 0 {
		t.Fatalf("trace-profiled run did no work: %+v", res.Agg)
	}
}

// TestProfileFromSynthesizedCorpus feeds the server a synthesized
// multi-session corpus — amplified and block-compressed — through the
// same trace:PATH profile hook, proving synthetic corpora drop into the
// serving stack unchanged.
func TestProfileFromSynthesizedCorpus(t *testing.T) {
	var base bytes.Buffer
	w, err := trace.NewWriter(&base, trace.Header{})
	if err != nil {
		t.Fatal(err)
	}
	var words, objects uint64
	for i := 0; i < 30; i++ {
		ev := trace.Event{Kind: trace.KindAlloc, Type: heap.TPair, Size: 2}
		if i%3 == 0 {
			ev = trace.Event{Kind: trace.KindAlloc, Type: heap.TVector, Size: 5}
		}
		if err := w.Append(&ev); err != nil {
			t.Fatal(err)
		}
		words += uint64(1 + ev.Size)
		objects++
	}
	if err := w.Close(trace.Trailer{WordsAllocated: words, ObjectsAllocated: objects, Events: objects}); err != nil {
		t.Fatal(err)
	}

	const n = 25
	var corpus bytes.Buffer
	if _, err := trace.Amplify(&corpus, base.Bytes(), n, trace.SynthOptions{Compress: true, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.trace")
	if err := os.WriteFile(path, corpus.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}

	prof, err := ProfileFromTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Objects != n*objects || len(prof.Classes) != 2 {
		t.Fatalf("corpus census wrong: objects %d (want %d), %d classes",
			prof.Objects, n*objects, len(prof.Classes))
	}

	cfg := smallConfig()
	cfg.Load.Profiles = []string{TracePrefix + path}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Requests == 0 || res.Agg.WordsAlloc == 0 {
		t.Fatalf("corpus-profiled run did no work: %+v", res.Agg)
	}
}
