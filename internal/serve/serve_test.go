package serve

import (
	"bytes"
	"reflect"
	"testing"
)

// smallConfig is a grid cell small enough for unit tests but busy enough
// to exercise collections and session retention.
func smallConfig() Config {
	return Config{
		Load:      LoadConfig{Seed: 1, HorizonTicks: 12000},
		HeapWords: 1 << 13, // small enough that every collector of the grid collects

		Shards: 3,
	}
}

// TestRunDeterministicAcrossParallel is the conformance pin for the
// subsystem's headline contract: identical seed and config produce an
// identical Result — and byte-identical report — whether the shards run on
// one runner worker or many.
func TestRunDeterministicAcrossParallel(t *testing.T) {
	cfg := smallConfig()
	cfg.Parallel = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel differs by construction; everything measured must not.
	a.Cfg.Parallel, b.Cfg.Parallel = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatal("results diverge across runner worker counts")
	}
	var ra, rb bytes.Buffer
	a.WriteReport(&ra)
	b.WriteReport(&rb)
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Fatalf("reports diverge across runner worker counts:\n%s\nvs\n%s", ra.String(), rb.String())
	}

	// ShardResult and Aggregate are comparable by design, so the per-shard
	// pin can be ==, the strongest equality Go offers.
	for i := range a.Shards {
		if a.Shards[i] != b.Shards[i] {
			t.Fatalf("shard %d diverges:\n%+v\nvs\n%+v", i, a.Shards[i], b.Shards[i])
		}
	}
	if a.Agg != b.Agg {
		t.Fatal("aggregates diverge")
	}
}

// TestRunAllCollectors smoke-tests every collector of the grid under the
// server load and checks the measurement invariants that must hold
// everywhere: every request is served and measured exactly once, the heaps
// actually collect, and pause words reach the latency accounting.
func TestRunAllCollectors(t *testing.T) {
	sched, err := Generate(LoadConfig{Seed: 1, HorizonTicks: 12000})
	if err != nil {
		t.Fatal(err)
	}
	wantReqs := uint64(len(sched.Requests))
	for _, name := range CollectorNames() {
		cfg := smallConfig()
		cfg.Collector = name
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Agg.Requests != wantReqs {
			t.Fatalf("%s: served %d requests, schedule has %d", name, res.Agg.Requests, wantReqs)
		}
		if res.Agg.Latency.Count != wantReqs {
			t.Fatalf("%s: %d latency samples for %d requests", name, res.Agg.Latency.Count, wantReqs)
		}
		if res.Agg.Collections == 0 || res.Agg.WordsPause == 0 {
			t.Fatalf("%s: load too light to measure GC (collections=%d, pause=%d)",
				name, res.Agg.Collections, res.Agg.WordsPause)
		}
		if res.Agg.Makespan < res.Cfg.Load.HorizonTicks {
			t.Fatalf("%s: makespan %d before the load horizon %d",
				name, res.Agg.Makespan, res.Cfg.Load.HorizonTicks)
		}
		if res.Agg.Footprint == 0 {
			t.Fatalf("%s: zero footprint", name)
		}
	}
}

// TestRunShardCountsPartitionWork pins that resharding moves sessions, not
// work: the same schedule served by 1 and by 5 shards answers the same
// requests with the same total allocation (per-shard heaps collect on
// their own cadence, so GC-side numbers legitimately differ).
func TestRunShardCountsPartitionWork(t *testing.T) {
	one := smallConfig()
	one.Shards = 1
	five := smallConfig()
	five.Shards = 5
	a, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(five)
	if err != nil {
		t.Fatal(err)
	}
	if a.Agg.Requests != b.Agg.Requests || a.Agg.Sessions != b.Agg.Sessions {
		t.Fatalf("request/session totals moved with the shard count: %+v vs %+v", a.Agg, b.Agg)
	}
	if a.Agg.WordsAlloc != b.Agg.WordsAlloc {
		t.Fatalf("handler allocation moved with the shard count: %d vs %d",
			a.Agg.WordsAlloc, b.Agg.WordsAlloc)
	}
}

// TestRunIncrementalModes runs the incremental-capable and tenuring
// collectors with their modes on, checking the knobs engage (incremental
// marking multiplies pause count; the adaptive controller reports
// adaptations) rather than merely not crashing.
func TestRunIncrementalModes(t *testing.T) {
	stw := smallConfig()
	stw.Collector = "marksweep"
	base, err := Run(stw)
	if err != nil {
		t.Fatal(err)
	}
	incr := stw
	incr.Incremental = true
	inc, err := Run(incr)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Agg.GCPauses.Count <= base.Agg.GCPauses.Count {
		t.Fatalf("incremental mode did not slice pauses: %d vs %d stop-the-world",
			inc.Agg.GCPauses.Count, base.Agg.GCPauses.Count)
	}

	ad := smallConfig()
	ad.Collector = "generational"
	ad.Tenure = 4
	ad.Adaptive = true
	res, err := Run(ad)
	if err != nil {
		t.Fatal(err)
	}
	var adaptations int
	for _, s := range res.Shards {
		adaptations += s.GC.PolicyAdaptations
	}
	if adaptations == 0 {
		t.Fatal("adaptive mode reported no policy adaptations")
	}
}

// TestRunUnknownCollector pins the error path before any shard runs.
func TestRunUnknownCollector(t *testing.T) {
	cfg := smallConfig()
	cfg.Collector = "refcount"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown collector accepted")
	}
}
