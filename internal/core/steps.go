// Package core implements the paper's primary contribution: the
// non-predictive generational garbage collector of Section 4.
//
// The collector divides heap storage into k steps of equal size. Step 1 is
// the youngest and step k the oldest; all allocation occurs in the
// highest-numbered step that has free space, so the steps fill from k down
// to 1. A tuning parameter j determines how many of the youngest steps are
// *not* collected: when every step is full, steps j+1 through k are
// collected as a single generation, survivors are placed in the
// highest-numbered new step with free space, and the steps are renamed —
// steps j+1..k become the new steps 1..k-j and the old steps 1..j become
// the new steps k-j+1..k. The collector never inspects object ages; it is
// "non-predictive" because no lifetime heuristic enters any decision.
package core

import (
	"fmt"

	"rdgc/internal/heap"
)

// Steps is the step machinery shared by the standalone non-predictive
// collector and the Larceny-style hybrid collector: the ordered step list,
// the shadow spaces that copying collections evacuate into, the logical
// renaming, and the j bookkeeping.
type Steps struct {
	H         *heap.Heap
	StepWords int

	// steps in logical order: index 0 is step 1 (youngest), index k-1 is
	// step k (oldest).
	steps   []*heap.Space
	shadows []*heap.Space
	// pos maps SpaceID to logical position, or -1 for non-step spaces.
	pos []int32

	j        int
	allocIdx int // highest position with free space, or -1 when all full

	// evac is the persistent Cheney engine, re-armed per collection with
	// the from-set steps j+1..k (plus the caller's extra space). The
	// remaining slices are reusable scratch for the target list and the
	// renaming, so steady-state collections allocate nothing.
	evac       *heap.Evacuator
	overflow   func(int) *heap.Space
	spares     []*heap.Space
	targetsBuf []*heap.Space
	stepsBuf   []*heap.Space
	shadowsBuf []*heap.Space
}

// NewSteps creates k steps (and k shadow spaces) of stepWords words each.
func NewSteps(h *heap.Heap, k, stepWords int) *Steps {
	if k < 2 {
		panic("core: need at least 2 steps")
	}
	st := &Steps{H: h, StepWords: stepWords}
	for i := 0; i < k; i++ {
		st.steps = append(st.steps, h.NewSpace(fmt.Sprintf("np-step-%d", i), stepWords))
	}
	for i := 0; i < k; i++ {
		st.shadows = append(st.shadows, h.NewSpace(fmt.Sprintf("np-shadow-%d", i), stepWords))
	}
	st.evac = heap.NewEvacuator(h, nil)
	st.overflow = func(int) *heap.Space {
		sp := st.H.NewSpace(fmt.Sprintf("np-spill-%d", len(st.H.Spaces)), st.StepWords)
		st.spares = append(st.spares, sp)
		return sp
	}
	st.rebuildPos()
	st.allocIdx = k - 1
	return st
}

// K returns the number of steps.
func (st *Steps) K() int { return len(st.steps) }

// J returns the tuning parameter: steps 1..J are the uncollected young
// generation.
func (st *Steps) J() int { return st.j }

// SetJ sets the tuning parameter. Values are clamped to [0, k-1]: at least
// one step must be collectable.
func (st *Steps) SetJ(j int) {
	if j < 0 {
		j = 0
	}
	if max := st.K() - 1; j > max {
		j = max
	}
	st.j = j
}

// Step returns the space at logical position i (0-based: step i+1).
func (st *Steps) Step(i int) *heap.Space { return st.steps[i] }

func (st *Steps) rebuildPos() {
	if n := len(st.H.Spaces); n > len(st.pos) {
		st.pos = append(st.pos, make([]int32, n-len(st.pos))...)
	}
	for i := range st.pos {
		st.pos[i] = -1
	}
	for i, s := range st.steps {
		st.pos[s.ID] = int32(i)
	}
}

// PosOf returns the logical position of the step that pointer w targets, or
// -1 if w does not point into an active step.
func (st *Steps) PosOf(w heap.Word) int {
	id := heap.PtrSpace(w)
	if int(id) >= len(st.pos) {
		return -1
	}
	return int(st.pos[id])
}

// InOld reports whether pointer w targets the collected generation
// (steps j+1 through k).
func (st *Steps) InOld(w heap.Word) bool { return st.PosOf(w) >= st.j }

// InYoung reports whether pointer w targets the uncollected young steps
// (steps 1 through j).
func (st *Steps) InYoung(w heap.Word) bool {
	p := st.PosOf(w)
	return p >= 0 && p < st.j
}

// FreeWords returns the free space across all steps.
func (st *Steps) FreeWords() int {
	n := 0
	for _, s := range st.steps {
		n += s.Free()
	}
	return n
}

// LiveStepWords returns the occupied words across all steps.
func (st *Steps) LiveStepWords() int {
	n := 0
	for _, s := range st.steps {
		n += s.Used()
	}
	return n
}

// EmptyYoungest returns the number of consecutive empty steps starting at
// step 1 — the paper's l, from which the recommended j is ⌊l/2⌋ (§8.1).
func (st *Steps) EmptyYoungest() int {
	l := 0
	for _, s := range st.steps {
		if s.Used() != 0 {
			break
		}
		l++
	}
	return l
}

// RecomputeAllocIdx repositions the allocation cursor at the
// highest-numbered step with free space.
func (st *Steps) RecomputeAllocIdx() {
	for i := st.K() - 1; i >= 0; i-- {
		if st.steps[i].Free() > 0 {
			st.allocIdx = i
			return
		}
	}
	st.allocIdx = -1
}

// Bump allocates total words in the highest-numbered step that can hold
// them, descending as steps fill. It reports failure when every step is
// full, at which point the caller must collect.
func (st *Steps) Bump(total int) (*heap.Space, int, bool) {
	for st.allocIdx >= 0 {
		s := st.steps[st.allocIdx]
		if off, ok := s.Bump(total); ok {
			return s, off, true
		}
		st.allocIdx--
	}
	return nil, 0, false
}

// FillTargets returns the steps with free space in promotion order:
// highest-numbered first. The hybrid collector promotes nursery survivors
// into these.
func (st *Steps) FillTargets() []*heap.Space {
	var out []*heap.Space
	for i := st.allocIdx; i >= 0; i-- {
		out = append(out, st.steps[i])
	}
	return out
}

// Collect performs one non-predictive collection: steps j+1..k (plus
// alsoFrom, if non-nil — e.g. the hybrid's nursery) are evacuated as a
// single generation into shadow spaces, and the steps are renamed per
// Section 4. extraRoots, if non-nil, is called with the evacuation function
// so callers can treat remembered-set entries as roots. When the survivors
// (plus promoted storage) overflow the k-j primary target steps, spare
// shadows absorb them and the step count grows — permitted only with
// allowGrow, otherwise the collection panics as a heap overflow.
//
// On return the collected spaces have become the new shadows, steps have
// been renamed, and the allocation cursor is recomputed. The caller is
// responsible for choosing a new j and rebuilding remembered sets.
func (st *Steps) Collect(alsoFrom *heap.Space, extraRoots func(evac func(slot *heap.Word)), allowGrow bool) uint64 {
	k, j := st.K(), st.j
	nNew := k - j
	primary := st.shadows[:nNew] // primary[i] becomes the new step at position i
	st.spares = append(st.spares[:0], st.shadows[nNew:]...)

	// Fill order: new step k-j first, descending — survivors sit directly
	// below the renamed old steps, as in Table 1.
	targets := st.targetsBuf[:0]
	for i := nNew - 1; i >= 0; i-- {
		targets = append(targets, primary[i])
	}
	targets = append(targets, st.spares...)
	st.targetsBuf = targets

	e := st.evac
	e.SetFrom(st.steps[j:]...)
	if alsoFrom != nil {
		e.From().AddSpace(alsoFrom)
	}
	e.Begin(targets...)
	if allowGrow {
		e.Overflow = st.overflow
	} else {
		e.Overflow = nil
	}
	e.EvacuateRoots()
	if extraRoots != nil {
		extraRoots(e.Slot())
	}
	e.Drain()

	used := 0
	for _, sp := range st.spares {
		if sp.Used() > 0 {
			used++
		}
	}
	if used > 0 && !allowGrow {
		panic(fmt.Sprintf("core: non-predictive heap overflow: survivors spilled into %d spare steps", used))
	}

	// Rename: spare-spill steps are youngest, then the primary targets,
	// then the old steps 1..j as the new oldest steps. The renamed lists
	// build in spare buffers that swap with the live ones, so the old
	// backing arrays become next collection's scratch.
	newSteps := st.stepsBuf[:0]
	for i := used - 1; i >= 0; i-- {
		newSteps = append(newSteps, st.spares[i])
	}
	newSteps = append(newSteps, primary...)
	collected := st.steps[j:]
	newSteps = append(newSteps, st.steps[:j]...)

	newShadows := st.shadowsBuf[:0]
	for _, s := range collected {
		s.Reset()
		newShadows = append(newShadows, s)
	}
	newShadows = append(newShadows, st.spares[used:]...)
	for len(newShadows) < len(newSteps) {
		newShadows = append(newShadows,
			st.H.NewSpace(fmt.Sprintf("np-shadow-%d", len(newShadows)), st.StepWords))
	}

	st.steps, st.stepsBuf = newSteps, st.steps
	st.shadows, st.shadowsBuf = newShadows, st.shadows
	st.rebuildPos()
	st.RecomputeAllocIdx()
	if st.j > st.K()-1 {
		st.j = st.K() - 1
	}
	return e.WordsCopied
}

// ResetAll empties every step (the hybrid's full collection promotes all
// live storage to the static area, leaving the dynamic area blank).
func (st *Steps) ResetAll() {
	for _, s := range st.steps {
		s.Reset()
	}
	st.allocIdx = st.K() - 1
}

// AddSteps inserts n empty steps at the young end, growing the heap without
// disturbing the renaming invariants (new empty young steps are exactly the
// post-collection state).
func (st *Steps) AddSteps(n int) {
	grown := make([]*heap.Space, 0, st.K()+n)
	for i := 0; i < n; i++ {
		grown = append(grown, st.H.NewSpace(fmt.Sprintf("np-step-grow-%d", len(st.H.Spaces)), st.StepWords))
		st.shadows = append(st.shadows, st.H.NewSpace(fmt.Sprintf("np-shadow-grow-%d", len(st.H.Spaces)), st.StepWords))
	}
	st.steps = append(grown, st.steps...)
	st.rebuildPos()
	st.RecomputeAllocIdx()
}

// ScanYoungForOldPointers visits every object in steps 1..j and calls
// remember on those containing a pointer into steps j+1..k. This rebuilds
// the remembered set after a collection whose survivors landed in the young
// steps (the paper's situation 4) — a no-op under the recommended j policy,
// which keeps steps 1..j empty.
func (st *Steps) ScanYoungForOldPointers(remember func(obj heap.Word)) {
	for p := 0; p < st.j; p++ {
		s := st.steps[p]
		heap.WalkSpace(s, func(off int, hdr heap.Word) bool {
			if heap.HeaderType(hdr) == heap.TFree {
				return true
			}
			found := false
			heap.ScanObject(s, off, func(slot *heap.Word) {
				if !found && heap.IsPtr(*slot) && st.InOld(*slot) {
					found = true
				}
			})
			if found {
				remember(heap.PtrWord(s.ID, off))
			}
			return true
		})
	}
}
