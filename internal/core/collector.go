package core

import (
	"fmt"

	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

// Collector is the standalone 2-generation non-predictive collector of
// Section 4: mutator allocation goes directly into the steps, and the write
// barrier maintains the remembered set of objects in steps 1..j that point
// into steps j+1..k (the reverse of a conventional collector's remembered
// set — §8.3).
type Collector struct {
	h  *heap.Heap
	st *Steps
	rs remset.Set

	policy    JPolicy
	allowGrow bool

	// Persistent closures for the collection hot path, created once in New
	// so steady-state collections allocate nothing. extraRoots scans the
	// remembered set as roots; scanEvac holds the evacuation function for
	// the duration of one collection; rememberFn caches rs.Remember.
	extraRoots func(evac func(slot *heap.Word))
	scanObj    func(obj heap.Word)
	scanEvac   func(slot *heap.Word)
	rememberFn func(obj heap.Word)

	stats heap.GCStats
}

// Option configures the collector.
type Option func(*Collector)

// WithPolicy substitutes the j policy (default Recommended).
func WithPolicy(p JPolicy) Option { return func(c *Collector) { c.policy = p } }

// WithRemset substitutes the remembered-set representation (default HashSet).
func WithRemset(rs remset.Set) Option { return func(c *Collector) { c.rs = rs } }

// WithGrowth permits the step heap to grow when survivors overflow the
// collected region (fixed-size heaps panic instead).
func WithGrowth() Option { return func(c *Collector) { c.allowGrow = true } }

// New creates a non-predictive collector with k steps of stepWords words
// each, installing itself as h's allocator and write barrier.
func New(h *heap.Heap, k, stepWords int, opts ...Option) *Collector {
	c := &Collector{
		h:      h,
		st:     NewSteps(h, k, stepWords),
		rs:     remset.NewHashSet(),
		policy: Recommended{},
	}
	for _, o := range opts {
		o(c)
	}
	c.scanObj = func(obj heap.Word) {
		c.stats.RemsetScanned++
		heap.ScanObject(c.h.SpaceOf(obj), heap.PtrOff(obj), c.scanEvac)
	}
	c.extraRoots = func(evac func(slot *heap.Word)) {
		c.scanEvac = evac
		c.rs.ForEach(c.scanObj)
		c.scanEvac = nil
	}
	c.rememberFn = c.rs.Remember
	c.st.SetJ(c.policy.ChooseJ(k, k)) // all steps start empty
	h.SetAllocator(c)
	h.SetBarrier(c)
	return c
}

// Name implements heap.Collector.
func (c *Collector) Name() string { return "non-predictive" }

// GCStats implements heap.Collector.
func (c *Collector) GCStats() *heap.GCStats { return &c.stats }

// Steps exposes the step machinery for inspection by tests and experiments.
func (c *Collector) Steps() *Steps { return c.st }

// J returns the current tuning parameter.
func (c *Collector) J() int { return c.st.J() }

// Live returns the words in use across all steps.
func (c *Collector) Live() int { return c.st.LiveStepWords() }

// HeapWords returns the step heap capacity (shadows excluded, matching the
// paper's accounting of heap size N).
func (c *Collector) HeapWords() int { return c.st.K() * c.st.StepWords }

// RemsetLen returns the current remembered-set size.
func (c *Collector) RemsetLen() int { return c.rs.Len() }

// VerifySpec implements heap.Verifiable: the k steps are live (shadows and
// retired spill spaces are scratch), and every young-step object pointing
// into an old step must be remembered — the §8.3 barrier invariant.
func (c *Collector) VerifySpec() heap.VerifySpec {
	live := make([]*heap.Space, c.st.K())
	for i := range live {
		live[i] = c.st.Step(i)
	}
	return heap.VerifySpec{
		Live: live,
		Remsets: []heap.RemsetRule{{
			Name: "young->old",
			Needs: func(obj, val heap.Word) bool {
				return c.st.InYoung(obj) && c.st.InOld(val)
			},
			Has: c.rs.Contains,
		}},
	}
}

// RecordWrite implements heap.Barrier: remember objects in steps 1..j that
// receive a pointer into steps j+1..k.
func (c *Collector) RecordWrite(obj, val heap.Word) {
	if heap.IsPtr(val) && c.st.InYoung(obj) && c.st.InOld(val) {
		c.rs.Remember(obj)
	}
}

// AllocRaw implements heap.Allocator: allocate in the highest-numbered step
// with free space; when all steps are full, collect steps j+1..k.
func (c *Collector) AllocRaw(t heap.Type, payload int) heap.Word {
	total := 1 + payload + c.h.ExtraWords()
	if total > c.st.StepWords {
		panic(fmt.Sprintf("core: object of %d words exceeds the step size %d", total, c.st.StepWords))
	}
	for attempt := 0; ; attempt++ {
		if s, off, ok := c.st.Bump(total); ok {
			return c.h.InitObject(s, off, t, payload)
		}
		if attempt > 0 {
			if !c.allowGrow {
				panic("core: out of memory: steps full immediately after collection")
			}
			c.st.AddSteps(1)
			continue
		}
		c.Collect()
	}
}

// Collect implements heap.Collector: one non-predictive collection of
// steps j+1..k, followed by renaming and the choice of a new j.
func (c *Collector) Collect() {
	copied := c.st.Collect(nil, c.extraRoots, c.allowGrow)

	c.rs.Clear()
	if c.allowGrow {
		// Keep the load factor sane after growth-mode collections.
		for c.st.FreeWords() < c.st.K()*c.st.StepWords/3 {
			c.st.AddSteps(1)
		}
	}
	c.st.SetJ(c.policy.ChooseJ(c.st.EmptyYoungest(), c.st.K()))
	// Situation 4 (§8.4): survivors that landed in the new steps 1..j must
	// re-enter the remembered set if they point into steps j+1..k. Under
	// the recommended policy steps 1..j are empty and this scans nothing.
	c.st.ScanYoungForOldPointers(c.rememberFn)

	c.stats.Collections++
	c.stats.MajorCollections++
	c.stats.WordsCopied += copied
	c.h.AddPause(&c.stats, copied)
	c.stats.NoteLive(c.st.LiveStepWords())
	if p := c.rs.Peak(); p > c.stats.RemsetPeak {
		c.stats.RemsetPeak = p
	}
	c.h.AfterGC()
}

// FullCollect collects every step (j = 0 for one cycle), then restores the
// policy's choice. It reclaims all garbage including cross-step cycles.
func (c *Collector) FullCollect() {
	c.st.SetJ(0)
	c.Collect()
}
