package core_test

import (
	"fmt"

	"rdgc/internal/core"
	"rdgc/internal/heap"
)

// The basic shape of using the non-predictive collector: create a heap,
// install the collector, and allocate through GC-safe handles.
func Example() {
	h := heap.New()
	c := core.New(h, 8, 4096) // 8 steps of 4096 words

	s := h.Scope()
	defer s.Close()

	list := h.Null()
	for i := 3; i >= 1; i-- {
		list = h.Cons(h.Fix(int64(i)), list)
	}
	c.Collect()

	fmt.Println("length:", h.ListLen(list))
	fmt.Println("head:", h.FixVal(h.Car(list)))
	fmt.Println("k:", c.Steps().K())
	// Output:
	// length: 3
	// head: 1
	// k: 8
}

// Policies plug into the collector: FixedJ reproduces Table 1's fixed
// tuning parameter, ZeroJ degenerates to non-generational stop-and-copy.
func ExampleFixedJ() {
	h := heap.New()
	c := core.New(h, 7, 1024, core.WithPolicy(core.FixedJ(1)))
	fmt.Println(c.J())
	// Output: 1
}

func ExampleRecommended() {
	// With l empty youngest steps, the paper's §8.1 recommendation is
	// j = ⌊l/2⌋, capped at k/2.
	fmt.Println(core.Recommended{}.ChooseJ(6, 8))
	fmt.Println(core.Recommended{}.ChooseJ(8, 8))
	// Output:
	// 3
	// 4
}
