package core

import (
	"testing"

	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
	"rdgc/internal/remset"
)

func TestStress(t *testing.T) {
	h := heap.New()
	c := New(h, 8, 2048)
	gctest.StressCollector(t, h, c)
}

func TestStressWithCensus(t *testing.T) {
	h := heap.New(heap.WithCensus())
	c := New(h, 8, 2048)
	gctest.StressCollector(t, h, c)
}

func TestStressFixedJ(t *testing.T) {
	h := heap.New()
	c := New(h, 8, 2048, WithPolicy(FixedJ(2)))
	gctest.StressCollector(t, h, c)
}

func TestStressZeroJ(t *testing.T) {
	h := heap.New()
	c := New(h, 4, 4096, WithPolicy(ZeroJ{}))
	gctest.StressCollector(t, h, c)
}

func TestStressSSB(t *testing.T) {
	h := heap.New()
	c := New(h, 8, 2048, WithRemset(remset.NewSSB()))
	gctest.StressCollector(t, h, c)
}

func TestAllocationFillsStepsDownward(t *testing.T) {
	h := heap.New()
	c := New(h, 4, 256)
	s := h.Scope()
	defer s.Close()

	p := h.Cons(h.Fix(1), h.Null())
	if pos := c.Steps().PosOf(h.Get(p)); pos != 3 {
		t.Errorf("first allocation went to step position %d, want 3 (step k)", pos)
	}
	// Fill step k; the next allocation must land in step k-1.
	for c.Steps().Step(3).Free() >= 3 {
		h.Cons(h.Fix(0), h.Null())
	}
	q := h.Cons(h.Fix(2), h.Null())
	if pos := c.Steps().PosOf(h.Get(q)); pos != 2 {
		t.Errorf("allocation after step k filled went to position %d, want 2", pos)
	}
}

func TestRenamingRotatesSteps(t *testing.T) {
	h := heap.New()
	c := New(h, 4, 512, WithPolicy(FixedJ(1)))
	s := h.Scope()
	defer s.Close()

	// Allocate until just before the steps fill, keeping one young object.
	young := h.Cons(h.Fix(7), h.Null())
	_ = young
	gctest.Churn(h, 2000) // triggers at least one collection

	if got := c.GCStats().MajorCollections; got == 0 {
		t.Fatal("no collection happened")
	}
	// Young object must have survived either by being in steps 1..j
	// (renamed, not copied) or by being copied as a survivor.
	if v := h.FixVal(h.Car(young)); v != 7 {
		t.Errorf("young object corrupted: %d", v)
	}
}

func TestUncollectedYoungStepsAreExchangedNotCopied(t *testing.T) {
	h := heap.New()
	c := New(h, 4, 512, WithPolicy(FixedJ(1)))
	s := h.Scope()
	defer s.Close()

	// Fill steps 4,3,2 with garbage, then allocate a live object that lands
	// in step 1 (position 0); trigger collection and verify the object was
	// renamed (same space, same address), not copied.
	var probe heap.Ref
	for {
		s2 := h.Scope()
		p := h.Cons(h.Fix(9), h.Null())
		if c.Steps().PosOf(h.Get(p)) == 0 {
			probe = s2.Return(p)
			break
		}
		s2.Close()
	}
	before := h.Get(probe)
	// Fill the rest of step 1 to force a collection.
	gctest.Churn(h, 600)
	if c.GCStats().MajorCollections == 0 {
		t.Fatal("expected a collection")
	}
	after := h.Get(probe)
	if before != after {
		t.Error("object in steps 1..j was copied; it should only be renamed")
	}
	// And its step must now be among the oldest (position >= k-j).
	if pos := c.Steps().PosOf(after); pos < c.Steps().K()-1 {
		t.Errorf("renamed young step at position %d, want %d", pos, c.Steps().K()-1)
	}
}

func TestRemsetPreservesYoungToOldOnlyPath(t *testing.T) {
	h := heap.New()
	c := New(h, 6, 512, WithPolicy(FixedJ(2)))
	s := h.Scope()
	defer s.Close()

	// Make an old object (position k-1), then a young holder (position < j)
	// pointing at it, then drop every direct handle to the old object.
	old := h.Cons(h.Fix(123), h.Null())
	if c.Steps().PosOf(h.Get(old)) != c.Steps().K()-1 {
		t.Fatal("setup: object not in oldest step")
	}
	var holder heap.Ref
	for {
		s2 := h.Scope()
		p := h.Cons(h.Null(), h.Null())
		if pos := c.Steps().PosOf(h.Get(p)); pos >= 0 && pos < c.J() {
			holder = s2.Return(p)
			break
		}
		s2.Close()
	}
	h.SetCar(holder, old)
	if c.RemsetLen() == 0 {
		t.Fatal("barrier missed young-to-old store")
	}
	h.Set(old, heap.NullWord) // drop the direct root

	c.Collect() // collects steps j+1..k; holder's step is only renamed
	got := h.Car(holder)
	if !h.IsPair(got) || h.FixVal(h.Car(got)) != 123 {
		t.Error("old object reachable only through a young step was lost")
	}
}

func TestCycleWithinCollectedRegionIsReclaimed(t *testing.T) {
	h := heap.New()
	c := New(h, 4, 1024)
	s := h.Scope()

	a := h.Cons(h.Fix(1), h.Null())
	b := h.Cons(h.Fix(2), h.Null())
	h.SetCdr(a, b)
	h.SetCdr(b, a)
	s.Close() // cycle now unreachable

	liveBefore := c.Live()
	c.FullCollect()
	if live := c.Live(); live >= liveBefore {
		t.Errorf("cyclic garbage not reclaimed: live %d -> %d", liveBefore, live)
	}
}

func TestRecommendedPolicyKeepsYoungStepsEmpty(t *testing.T) {
	h := heap.New()
	c := New(h, 8, 512)
	s := h.Scope()
	defer s.Close()
	keep := gctest.BuildList(h, 30)
	gctest.Churn(h, 5000)
	gctest.CheckList(t, h, keep, 30)

	// Immediately after any collection under the recommended policy,
	// steps 1..j are empty; between collections they may be filling, but j
	// never exceeds k/2.
	if j := c.J(); j > c.Steps().K()/2 {
		t.Errorf("j = %d exceeds k/2 = %d", j, c.Steps().K()/2)
	}
	c.Collect()
	for p := 0; p < c.J(); p++ {
		if c.Steps().Step(p).Used() != 0 {
			t.Errorf("step position %d not empty right after collection", p)
		}
	}
	if c.RemsetLen() != 0 {
		t.Errorf("remset = %d right after collection under recommended policy, want 0", c.RemsetLen())
	}
}

func TestGrowth(t *testing.T) {
	h := heap.New()
	c := New(h, 4, 512, WithGrowth())
	s := h.Scope()
	defer s.Close()
	list := gctest.BuildList(h, 2000) // 6000 words live > 2048 capacity
	gctest.CheckList(t, h, list, 2000)
	if c.Steps().K() <= 4 {
		t.Errorf("step count did not grow: k = %d", c.Steps().K())
	}
}

func TestOOMPanicsWithoutGrowth(t *testing.T) {
	h := heap.New()
	New(h, 4, 256)
	s := h.Scope()
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Error("exceeding a fixed step heap did not panic")
		}
	}()
	gctest.BuildList(h, 2000)
}

func TestJPolicies(t *testing.T) {
	cases := []struct {
		p     JPolicy
		empty int
		k     int
		want  int
	}{
		{Recommended{}, 6, 8, 3},
		{Recommended{}, 8, 8, 4}, // capped at k/2
		{Recommended{}, 0, 8, 0}, // nothing empty
		{Recommended{}, 1, 8, 0}, // floor
		{FixedJ(3), 0, 8, 3},     // ignores emptiness
		{FixedJ(10), 0, 4, 3},    // clamped to k-1
		{FixedJ(-2), 0, 4, 0},    // clamped to 0
		{ZeroJ{}, 5, 8, 0},
		{FractionJ(0.25), 8, 8, 2},
		{FractionJ(0.5), 2, 8, 2}, // limited by empty steps
		{FractionJ(0.9), 8, 8, 7}, // clamped to k-1
	}
	for _, tc := range cases {
		if got := tc.p.ChooseJ(tc.empty, tc.k); got != tc.want {
			t.Errorf("%s.ChooseJ(%d, %d) = %d, want %d", tc.p.Name(), tc.empty, tc.k, got, tc.want)
		}
	}
}

func TestMarkConsUnderPinnedLive(t *testing.T) {
	// With a fixed live set, the non-predictive collector's mark/cons ratio
	// must stay well below the non-generational 1/(L-1) bound because each
	// collection skips the youngest (fullest-of-live) steps... in this
	// degenerate workload everything live is old, so it approaches copying
	// the same pinned list each cycle. Sanity-check it stays finite and the
	// structure survives.
	h := heap.New()
	c := New(h, 8, 1024)
	s := h.Scope()
	defer s.Close()
	keep := gctest.BuildList(h, 100)
	gctest.Churn(h, 20000)
	gctest.CheckList(t, h, keep, 100)
	mc := c.GCStats().MarkCons(&h.Stats)
	if mc <= 0 || mc > 2 {
		t.Errorf("mark/cons = %.3f out of sane range", mc)
	}
}
