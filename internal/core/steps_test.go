package core

import (
	"testing"

	"rdgc/internal/heap"
)

func TestNewStepsValidation(t *testing.T) {
	h := heap.New()
	defer func() {
		if recover() == nil {
			t.Error("NewSteps with k=1 did not panic")
		}
	}()
	NewSteps(h, 1, 128)
}

func TestSetJClamps(t *testing.T) {
	h := heap.New()
	st := NewSteps(h, 4, 128)
	st.SetJ(-3)
	if st.J() != 0 {
		t.Errorf("J = %d after SetJ(-3)", st.J())
	}
	st.SetJ(99)
	if st.J() != 3 {
		t.Errorf("J = %d after SetJ(99), want k-1=3", st.J())
	}
}

func TestBumpDescends(t *testing.T) {
	h := heap.New()
	st := NewSteps(h, 3, 8)
	// Fill step 3 (position 2) with two 4-word blocks, then the next bump
	// must land in position 1.
	s1, _, ok := st.Bump(4)
	if !ok || st.PosOf(heap.PtrWord(s1.ID, 0)) != 2 {
		t.Fatal("first bump not in the oldest step")
	}
	st.Bump(4)
	s2, _, ok := st.Bump(4)
	if !ok || st.PosOf(heap.PtrWord(s2.ID, 0)) != 1 {
		t.Fatalf("bump after fill went to position %d", st.PosOf(heap.PtrWord(s2.ID, 0)))
	}
	// Exhaust everything: Bump must fail, not panic.
	for {
		if _, _, ok := st.Bump(4); !ok {
			break
		}
	}
	if _, _, ok := st.Bump(4); ok {
		t.Error("Bump succeeded on a full step heap")
	}
}

func TestEmptyYoungestAndFillTargets(t *testing.T) {
	h := heap.New()
	st := NewSteps(h, 4, 8)
	if got := st.EmptyYoungest(); got != 4 {
		t.Errorf("EmptyYoungest of fresh steps = %d, want 4", got)
	}
	st.Bump(4) // fills part of position 3
	if got := st.EmptyYoungest(); got != 3 {
		t.Errorf("EmptyYoungest = %d, want 3", got)
	}
	targets := st.FillTargets()
	if len(targets) != 4 {
		t.Fatalf("FillTargets returned %d spaces", len(targets))
	}
	if st.PosOf(heap.PtrWord(targets[0].ID, 0)) != 3 {
		t.Error("FillTargets not ordered highest first")
	}
}

func TestAddStepsPrepends(t *testing.T) {
	h := heap.New()
	st := NewSteps(h, 3, 64)
	s, _, _ := st.Bump(8) // lands at position 2
	st.AddSteps(2)
	if st.K() != 5 {
		t.Fatalf("K = %d after AddSteps(2)", st.K())
	}
	if got := st.PosOf(heap.PtrWord(s.ID, 0)); got != 4 {
		t.Errorf("old oldest step now at position %d, want 4", got)
	}
	if st.EmptyYoungest() < 2 {
		t.Error("new steps at the young end are not empty")
	}
}

func TestResetAll(t *testing.T) {
	h := heap.New()
	st := NewSteps(h, 3, 64)
	st.Bump(8)
	st.Bump(8)
	st.ResetAll()
	if st.LiveStepWords() != 0 {
		t.Error("ResetAll left occupied steps")
	}
	if st.FreeWords() != 3*64 {
		t.Errorf("FreeWords = %d", st.FreeWords())
	}
	if _, _, ok := st.Bump(8); !ok {
		t.Error("Bump failed after ResetAll")
	}
}

func TestPosOfUnknownSpace(t *testing.T) {
	h := heap.New()
	st := NewSteps(h, 2, 64)
	other := h.NewSpace("other", 64)
	if st.PosOf(heap.PtrWord(other.ID, 0)) != -1 {
		t.Error("foreign space got a step position")
	}
	if st.PosOf(heap.PtrWord(heap.SpaceID(200), 0)) != -1 {
		t.Error("out-of-range space id got a step position")
	}
}

func TestCollectSpillGrowsStepCount(t *testing.T) {
	// Force survivors + an "extra from" region to overflow the primary
	// shadows so the spare-spill path runs: steps must grow and data
	// survive.
	h := heap.New()
	c := New(h, 3, 64, WithGrowth(), WithPolicy(FixedJ(2)))
	s := h.Scope()
	defer s.Close()

	// With j=2 only one step is collected at a time, but the survivors of
	// a fully-live heap cannot compact into one shadow when the extra
	// nursery-like region spills. Simulate by filling all steps with live
	// data, then collecting with an alsoFrom covering a side space.
	var keep []heap.Ref
	for i := 0; i < 50; i++ {
		keep = append(keep, h.Cons(h.Fix(int64(i)), h.Null()))
	}
	side := h.NewSpace("side", 256)
	// Build live objects in the side space by hand.
	var sideRefs []heap.Ref
	for i := 0; i < 30; i++ {
		off, _ := side.Bump(3)
		w := h.InitObject(side, off, heap.TPair, 2)
		h.Payload(w)[0] = heap.FixnumWord(int64(1000 + i))
		h.Payload(w)[1] = heap.NullWord
		sideRefs = append(sideRefs, h.GlobalWord(w))
	}

	kBefore := c.Steps().K()
	copied := c.Steps().Collect(side, nil, true)
	if copied == 0 {
		t.Fatal("nothing copied")
	}
	side.Reset() // the from-space owner discards it after evacuation
	if c.Steps().K() <= kBefore {
		t.Skip("survivors happened to fit; spill not exercised at this sizing")
	}
	for i, r := range keep {
		if got := h.FixVal(h.Car(r)); got != int64(i) {
			t.Errorf("step object %d corrupted: %d", i, got)
		}
	}
	for i, r := range sideRefs {
		if got := h.FixVal(h.Car(r)); got != int64(1000+i) {
			t.Errorf("side object %d corrupted: %d", i, got)
		}
		if heap.PtrSpace(h.Get(r)) == side.ID {
			t.Errorf("side object %d not evacuated", i)
		}
	}
	if err := heap.Check(h); err != nil {
		t.Fatal(err)
	}
}
