package core

// JPolicy chooses the tuning parameter j after each non-predictive
// collection. The paper (§8.1) views j not as a prediction of future
// behaviour but as a response to what the mutator has done; any policy is
// sound because j only controls which steps the next collection skips.
type JPolicy interface {
	// ChooseJ picks the new j given the number of empty youngest steps
	// (the paper's l) and the step count k.
	ChooseJ(emptyYoungest, k int) int
	// Name identifies the policy in reports.
	Name() string
}

// Recommended is the paper's suggested policy: j = ⌊l/2⌋ where l is the
// greatest number such that steps 1..l are empty, additionally capped at
// k/2. Steps 1..j are then empty, which keeps the remembered set empty
// after every collection and guarantees cyclic garbage spanning the
// collected region is reclaimed (§8.2).
type Recommended struct{}

// ChooseJ implements JPolicy.
func (Recommended) ChooseJ(emptyYoungest, k int) int {
	j := emptyYoungest / 2
	if j > k/2 {
		j = k / 2
	}
	return j
}

// Name implements JPolicy.
func (Recommended) Name() string { return "j=floor(l/2)" }

// FixedJ always chooses the same j (clamped to k-1), as in the paper's
// Table 1 where j is fixed at 1. With a fixed j the young steps need not be
// empty after a collection, so the collector performs the situation-4
// remembered-set rebuild.
type FixedJ int

// ChooseJ implements JPolicy.
func (f FixedJ) ChooseJ(_, k int) int {
	j := int(f)
	if j > k-1 {
		j = k - 1
	}
	if j < 0 {
		j = 0
	}
	return j
}

// Name implements JPolicy.
func (f FixedJ) Name() string { return "fixed j" }

// ZeroJ always collects the whole step heap: the non-predictive collector
// degenerates to a non-generational stop-and-copy collector. Useful as an
// ablation baseline.
type ZeroJ struct{}

// ChooseJ implements JPolicy.
func (ZeroJ) ChooseJ(_, _ int) int { return 0 }

// Name implements JPolicy.
func (ZeroJ) Name() string { return "j=0" }

// FractionJ chooses j = ⌊g·k⌋ for a fixed fraction g, ignoring emptiness —
// the policy the Section 5 analysis assumes when it sets f = g. It lets the
// experiments sweep the generation-size axis of Figure 1 directly.
type FractionJ float64

// ChooseJ implements JPolicy.
func (g FractionJ) ChooseJ(emptyYoungest, k int) int {
	j := int(float64(g) * float64(k))
	if j > emptyYoungest {
		// Keep steps 1..j empty so f = g, as Theorem 4 assumes.
		j = emptyYoungest
	}
	if j > k-1 {
		j = k - 1
	}
	if j < 0 {
		j = 0
	}
	return j
}

// Name implements JPolicy.
func (g FractionJ) Name() string { return "j=g*k" }
