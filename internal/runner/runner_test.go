package runner

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// specGrid builds n cells whose values encode their index and whose sleep
// time *decreases* with the index, so under parallel execution later cells
// finish first and submission-order aggregation is actually exercised.
func specGrid(n int) []Spec[int] {
	specs := make([]Spec[int], n)
	for i := 0; i < n; i++ {
		i := i
		specs[i] = Spec[int]{
			Name: fmt.Sprintf("cell-%d", i),
			Run: func() (int, error) {
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i * 10, nil
			},
			Words: func(v int) uint64 { return uint64(v) },
		}
	}
	return specs
}

func TestResultsInSubmissionOrder(t *testing.T) {
	specs := specGrid(12)
	results := Run(specs, Options{Workers: 4})
	for i, r := range results {
		if r.Index != i || r.Name != specs[i].Name {
			t.Fatalf("result %d is %q (index %d), want %q", i, r.Name, r.Index, specs[i].Name)
		}
		if r.Err != nil {
			t.Fatalf("cell %d failed: %v", i, r.Err)
		}
		if r.Value != i*10 {
			t.Fatalf("cell %d value = %d, want %d", i, r.Value, i*10)
		}
		if i > 0 && r.Words != uint64(i*10) {
			t.Fatalf("cell %d words = %d, want %d", i, r.Words, i*10)
		}
	}
}

func TestPanicBecomesCellError(t *testing.T) {
	specs := []Spec[int]{
		{Name: "ok", Run: func() (int, error) { return 1, nil }},
		{Name: "boom", Run: func() (int, error) { panic("heap overflow") }},
		{Name: "also-ok", Run: func() (int, error) { return 3, nil }},
	}
	results := Run(specs, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy cells errored: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("panicking cell reported no error")
	}
	if want := `cell "boom" panicked: heap overflow`; results[1].Err.Error() != want {
		t.Fatalf("error = %q, want %q", results[1].Err, want)
	}
	if results[0].Value != 1 || results[2].Value != 3 {
		t.Fatal("healthy cells lost their values")
	}
}

// TestSequentialMatchesParallel formats the same grid's results with one
// worker and with many, and requires byte-identical output — the property
// the drivers' -parallel flag relies on.
func TestSequentialMatchesParallel(t *testing.T) {
	format := func(workers int) string {
		var b strings.Builder
		for _, r := range Run(specGrid(10), Options{Workers: workers}) {
			fmt.Fprintf(&b, "%s value=%d err=%v words=%d\n", r.Name, r.Value, r.Err, r.Words)
		}
		return b.String()
	}
	seq := format(1)
	par := format(8)
	if seq != par {
		t.Fatalf("sequential and parallel output differ:\n--- workers=1\n%s--- workers=8\n%s", seq, par)
	}
}

func TestParallelIsFaster(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-CPU environment")
	}
	grid := specGrid(8) // cells sleep 1..8ms: sequential ≥ 36ms
	start := time.Now()
	Run(grid, Options{Workers: 1})
	seq := time.Since(start)
	start = time.Now()
	Run(grid, Options{Workers: 8})
	par := time.Since(start)
	if par >= seq {
		t.Errorf("8 workers (%v) not faster than 1 worker (%v)", par, seq)
	}
}

func TestDefaultWorkersEnvOverride(t *testing.T) {
	t.Setenv(EnvParallel, "3")
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers with %s=3 = %d, want 3", EnvParallel, got)
	}
	t.Setenv(EnvParallel, "not-a-number")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers with junk env = %d, want GOMAXPROCS", got)
	}
	t.Setenv(EnvParallel, "-2")
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers with negative env = %d, want GOMAXPROCS", got)
	}
}

func TestProgressReportsEveryCell(t *testing.T) {
	var buf bytes.Buffer
	Run(specGrid(5), Options{Workers: 2, Progress: &buf})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("progress wrote %d lines, want 5:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "[1/5] ") || !strings.HasPrefix(lines[4], "[5/5] ") {
		t.Fatalf("progress counters wrong:\n%s", buf.String())
	}
}

func TestEmptyAndOversizedPools(t *testing.T) {
	if got := Run([]Spec[int]{}, Options{Workers: 4}); len(got) != 0 {
		t.Fatalf("empty grid returned %d results", len(got))
	}
	// More workers than cells must not deadlock or drop cells.
	results := Run(specGrid(2), Options{Workers: 16})
	if len(results) != 2 || results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("oversized pool mishandled cells: %+v", results)
	}
}

func TestWordsPerSec(t *testing.T) {
	r := Result[int]{Words: 1000, Wall: time.Second}
	if got := r.WordsPerSec(); got != 1000 {
		t.Fatalf("WordsPerSec = %v, want 1000", got)
	}
	if (Result[int]{}).WordsPerSec() != 0 {
		t.Fatal("zero-work cell must report 0 words/sec")
	}
}

func TestClampedWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, gcPerCell, want int
	}{
		// Sequential tracing (or the inline workers=1 engine) leaves the
		// requested pool untouched.
		{4, 0, 4},
		{4, 1, 4},
		// -gcworkers wins: the pool shrinks so cells x gcworkers stays
		// within GOMAXPROCS, floored at one cell.
		{maxprocs, 2, maxInt(maxprocs/2, 1)},
		{maxprocs, maxprocs, 1},
		{maxprocs, 10 * maxprocs, 1},
		// A request already within budget is untouched.
		{1, 2, 1},
	}
	for _, c := range cases {
		if got := ClampedWorkers(c.requested, c.gcPerCell); got != c.want {
			t.Errorf("ClampedWorkers(%d, %d) = %d, want %d", c.requested, c.gcPerCell, got, c.want)
		}
	}
	// requested < 1 defers to DefaultWorkers, then clamps.
	if got := ClampedWorkers(0, 1); got != DefaultWorkers() {
		t.Errorf("ClampedWorkers(0, 1) = %d, want DefaultWorkers() = %d", got, DefaultWorkers())
	}
	if got := ClampedWorkers(0, 10*maxprocs); got != 1 {
		t.Errorf("ClampedWorkers(0, huge) = %d, want 1", got)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestRunClampsOversubscription(t *testing.T) {
	// With gcworkers > GOMAXPROCS the pool must collapse to one concurrent
	// cell. Observe the high-water mark of concurrently running cells.
	var mu sync.Mutex
	running, peak := 0, 0
	specs := make([]Spec[int], 8)
	for i := range specs {
		specs[i] = Spec[int]{
			Name: "cell",
			Run: func() (int, error) {
				mu.Lock()
				running++
				if running > peak {
					peak = running
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				running--
				mu.Unlock()
				return 0, nil
			},
		}
	}
	Run(specs, Options{Workers: 8, GCWorkersPerCell: 2 * runtime.GOMAXPROCS(0)})
	if peak != 1 {
		t.Fatalf("peak concurrent cells = %d, want 1 when gcworkers consumes GOMAXPROCS", peak)
	}
}
