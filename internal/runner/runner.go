// Package runner schedules independent experiment cells across a pool of
// worker goroutines.
//
// Every experiment in this repository is a grid of cells — one simulated
// heap per (program, collector, parameter) combination — and the simulated
// Heap is single-threaded by design: no locks, no atomics, plain slices.
// The parallelism that is safe, and the parallelism this package provides,
// is *across* cells: each cell builds its own Heap (and its own seeded
// rand.Rand) inside its Run function, so cells share no mutable state.
//
// Determinism: results are reported in submission order regardless of
// completion order, and nothing is printed from worker goroutines (progress
// lines go to an opt-in io.Writer, normally stderr). A driver that formats
// the returned Results sequentially therefore produces byte-identical
// output whether Workers is 1 or GOMAXPROCS.
//
// A panicking cell does not bring the process down: the panic is recovered
// into that cell's Result.Err and the remaining cells keep running.
package runner

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"
)

// EnvParallel is the environment variable consulted by DefaultWorkers; the
// drivers' -parallel flags override it.
const EnvParallel = "RDGC_PARALLEL"

// Spec describes one experiment cell. Run must be self-contained: it builds
// its own Heap and rand.Rand and returns the cell's measurement. Words, when
// non-nil, extracts the cell's simulated work (words allocated or traced)
// from the value so the Result can report a words/sec throughput.
type Spec[T any] struct {
	Name  string
	Run   func() (T, error)
	Words func(v T) uint64
}

// Result is one finished cell, in the same position as its Spec.
type Result[T any] struct {
	Name  string
	Index int
	Value T
	Err   error         // Run's error, or a recovered panic
	Wall  time.Duration // the cell's wall-clock time
	Words uint64        // simulated words processed, if the Spec can say
}

// WordsPerSec returns the cell's simulated-words throughput, or 0 when the
// cell did no measurable work.
func (r Result[T]) WordsPerSec() float64 {
	if r.Words == 0 || r.Wall <= 0 {
		return 0
	}
	return float64(r.Words) / r.Wall.Seconds()
}

// Options configures a Run.
type Options struct {
	// Workers is the pool size; values < 1 mean DefaultWorkers().
	Workers int
	// Progress, when non-nil, receives one line per completed cell
	// ("[3/12] name  42ms"). Drivers pass os.Stderr so stdout stays
	// byte-identical across worker counts.
	Progress io.Writer
	// GCWorkersPerCell is the number of parallel tracing workers each
	// cell's heap will spawn (the driver's -gcworkers). Run clamps the
	// pool so cells × gcworkers never oversubscribes GOMAXPROCS; see
	// ClampedWorkers for the precedence rule.
	GCWorkersPerCell int
}

// DefaultWorkers returns GOMAXPROCS, overridden by the RDGC_PARALLEL
// environment variable when it holds a positive integer.
func DefaultWorkers() int {
	if s := os.Getenv(EnvParallel); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// ClampedWorkers resolves the cell-pool size when each cell's heap itself
// spawns gcPerCell tracing workers. The precedence rule (documented in
// README/DESIGN): -gcworkers wins — the requested cell count is reduced so
// that cells × gcworkers <= GOMAXPROCS, with a floor of one cell. A
// requested count < 1 means DefaultWorkers(). gcPerCell <= 1 (sequential
// tracing, or the inline workers=1 engine) leaves the request untouched.
func ClampedWorkers(requested, gcPerCell int) int {
	if requested < 1 {
		requested = DefaultWorkers()
	}
	if gcPerCell <= 1 {
		return requested
	}
	max := runtime.GOMAXPROCS(0) / gcPerCell
	if max < 1 {
		max = 1
	}
	if requested > max {
		return max
	}
	return requested
}

// Run executes every spec on a pool of opts.Workers goroutines and returns
// the results indexed exactly like specs. It only returns once every cell
// has finished.
func Run[T any](specs []Spec[T], opts Options) []Result[T] {
	workers := ClampedWorkers(opts.Workers, opts.GCWorkersPerCell)
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]Result[T], len(specs))
	if len(specs) == 0 {
		return results
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards done counter and Progress writes
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// The cell label is inherited by any goroutines the cell
				// spawns (notably parallel tracing workers), so profiles
				// attribute every sample to its experiment cell.
				pprof.Do(context.Background(), pprof.Labels("cell", specs[i].Name), func(context.Context) {
					results[i] = runCell(specs[i], i)
				})
				if opts.Progress != nil {
					mu.Lock()
					done++
					fmt.Fprintf(opts.Progress, "[%d/%d] %-40s %8.0fms\n",
						done, len(specs), specs[i].Name,
						float64(results[i].Wall.Microseconds())/1000)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runCell runs one spec, converting a panic into the cell's error so a bad
// configuration (heap overflow, invalid parameters) fails one cell instead
// of the whole grid.
func runCell[T any](spec Spec[T], index int) (res Result[T]) {
	res.Name = spec.Name
	res.Index = index
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("cell %q panicked: %v", spec.Name, p)
		}
		if res.Err == nil && spec.Words != nil {
			res.Words = spec.Words(res.Value)
		}
	}()
	res.Value, res.Err = spec.Run()
	return res
}
