package heap

import (
	"math/bits"
	"sync/atomic"
)

// Block-structured heap layer. Every space is viewed as a sequence of
// fixed-size blocks of BlockWords words, with two pieces of side metadata
// allocated alongside the arena:
//
//   - a mark bitmap (one bit per word): collectors test and set marks here
//     instead of rewriting header words, so a mark-test is a bit probe, the
//     parallel mark claim is a CAS on a bitmap word (headers are never
//     written during a mark), and unmarking is a memclr;
//   - a per-block dirty summary (one bit per block), set when any word of
//     the block is marked, so ClearMarks touches only blocks that actually
//     received marks instead of rescanning every block, live or dead.
//
// Mark/sweep-managed spaces additionally opt into a block table
// (NewBlockedSpace): no object or free block ever straddles a block
// boundary (the final block may be partial), and each block carries its own
// address-ordered free list. Block independence is what the
// parallel sweep (sweep.go) exploits: any worker may sweep any block with no
// synchronization beyond claiming it.
//
// BlockWords is 512 (4 KiB of simulated heap at 8 bytes per word): big
// enough that per-block metadata (one free-list head, eight bitmap words)
// stays below 2% overhead and that decay-model objects (a few words each)
// never feel the no-straddling rule, small enough that a parallel sweep of
// the conformance heaps has hundreds of independently claimable units.
const (
	// BlockShift is log2 of the block size in words.
	BlockShift = 9
	// BlockWords is the block size in words.
	BlockWords = 1 << BlockShift
	// BlockMask masks a word offset down to its position within a block.
	BlockMask = BlockWords - 1

	// markWordsPerBlock is the span of one block in the mark bitmap: 64
	// word-marks per uint64 means blocks and bitmap words never interleave,
	// so a sweep worker can clear its block's bitmap with plain stores.
	markWordsPerBlock = BlockWords / 64
)

// LargeObjectWords is the footprint (header plus payload, in words) above
// which a collector with a large-object space allocates the object there
// instead of inside its blocked spaces. Half a block keeps block-internal
// fragmentation bounded while leaving every smaller request satisfiable by
// any fully free block.
const LargeObjectWords = BlockWords / 2

// NoFreeBlock terminates a free list: it is the "next" value of the last
// free block and the head value of a block (or space) with no free storage.
const NoFreeBlock = -1

// BlockTable is the per-block metadata of a blocked (mark/sweep-managed)
// space: one free-list head per block. Free blocks chain through payload
// word 0 (a fixnum offset within the space; NoFreeBlock ends the chain);
// one-word free blocks cannot hold a link and stay unlinked until sweep
// coalesces them into a neighbour.
type BlockTable struct {
	// FreeHead[b] is the offset of block b's first free block, or
	// NoFreeBlock. Lists are address-ordered within the block.
	FreeHead []int32
	// MaxRun[b] is an upper bound on the largest free run in block b, in
	// words: exact after a sweep, and tightened by a failed allocation scan
	// (first-fit finding no run of n words proves every run is smaller, so
	// the bound drops to n-1). Runs only ever shrink between sweeps, so the
	// bound stays valid without being recomputed on allocation. It lets the
	// allocator skip hopeless blocks in O(1) while leaving first-fit
	// placement bit-identical: only blocks that cannot satisfy the request
	// are skipped.
	MaxRun []int32
	// Unswept is a bitset (one bit per block) of blocks whose free lists are
	// stale because a completed mark has not yet been swept into them. The
	// lazy sweep (sweep.go) sets every bit at termination and clears each
	// block's bit when it is swept — on demand from the allocation path, or
	// by the paced background scan. A set bit means FreeHead/MaxRun and the
	// block's mark bits must not be trusted until EnsureSwept runs.
	Unswept []uint64
}

// UnsweptAt reports whether block b awaits a lazy sweep.
func (bt *BlockTable) UnsweptAt(b int) bool {
	return bt.Unswept[b>>6]&(1<<(uint(b)&63)) != 0
}

// setUnswept flags block b as awaiting a lazy sweep.
func (bt *BlockTable) setUnswept(b int) {
	bt.Unswept[b>>6] |= 1 << (uint(b) & 63)
}

// clearUnswept drops block b's pending-sweep flag.
func (bt *BlockTable) clearUnswept(b int) {
	bt.Unswept[b>>6] &^= 1 << (uint(b) & 63)
}

// NumBlocks returns the number of blocks the space's capacity spans.
func (s *Space) NumBlocks() int { return (len(s.Mem) + BlockMask) >> BlockShift }

// BlocksReserved returns the blocks of address space the space pins down,
// rounding its capacity up to whole blocks. Footprint reporting multiplies
// this by BlockWords.
func (s *Space) BlocksReserved() int { return s.NumBlocks() }

// FootprintWords returns the heap's total reserved footprint: blocks
// reserved across all spaces times the block size. Unlike occupancy (Used),
// this counts to-spaces, free-list slack, and pooled large-object spaces —
// the memory a real process would hold from the OS.
func (h *Heap) FootprintWords() int {
	n := 0
	for _, s := range h.Spaces {
		n += s.BlocksReserved()
	}
	return n * BlockWords
}

// NewBlockedSpace creates a space managed as blocks: every block is
// formatted as one maximal free block on its own free list, and Top sits at
// capacity so the space is linearly parsable from the start (free blocks
// tile the storage). The capacity is taken exactly as requested — the final
// block may be partial; block boundaries, not block count, carry the
// no-straddling invariant — but at least one header must fit.
func (h *Heap) NewBlockedSpace(name string, words int) *Space {
	if words <= 0 {
		panic("heap: NewBlockedSpace with non-positive size")
	}
	s := h.NewSpace(name, words)
	s.Blocks = &BlockTable{
		FreeHead: make([]int32, s.NumBlocks()),
		MaxRun:   make([]int32, s.NumBlocks()),
		Unswept:  make([]uint64, (s.NumBlocks()+63)/64),
	}
	s.Top = s.Cap()
	for b := 0; b < s.NumBlocks(); b++ {
		off := b << BlockShift
		end := off + BlockWords
		if end > s.Cap() {
			end = s.Cap()
		}
		s.Mem[off] = HeaderWord(TFree, end-off-1)
		SetFreeNext(s, off, NoFreeBlock)
		s.Blocks.FreeHead[b] = int32(off)
		s.Blocks.MaxRun[b] = int32(end - off)
	}
	return s
}

// FreeNext returns the list successor of the free block at off, or
// NoFreeBlock. One-word free blocks have no link and always terminate.
func FreeNext(s *Space, off int) int {
	if HeaderSize(s.Mem[off]) == 0 {
		return NoFreeBlock
	}
	return int(FixnumVal(s.Mem[off+1]))
}

// SetFreeNext links the free block at off to next. One-word free blocks
// cannot hold a link; the write is skipped.
func SetFreeNext(s *Space, off, next int) {
	if HeaderSize(s.Mem[off]) > 0 {
		s.Mem[off+1] = FixnumWord(int64(next))
	}
}

// AllocFromBlock carves n words first-fit out of block b's free list,
// splitting any remainder back onto the list in place (a one-word remainder
// cannot hold a link and stays unlinked-but-parsable until sweep coalesces
// it). It returns false when no free block in b fits.
func (s *Space) AllocFromBlock(b, n int) (int, bool) {
	if int(s.Blocks.MaxRun[b]) < n {
		return 0, false
	}
	fh := s.Blocks.FreeHead
	prev := NoFreeBlock
	for off := int(fh[b]); off != NoFreeBlock; {
		hdr := s.Mem[off]
		blockWords := ObjWords(hdr)
		next := FreeNext(s, off)
		if blockWords >= n {
			replacement := next
			if rem := blockWords - n; rem > 1 {
				remOff := off + n
				s.Mem[remOff] = HeaderWord(TFree, rem-1)
				SetFreeNext(s, remOff, next)
				replacement = remOff
			} else if rem == 1 {
				s.Mem[off+n] = HeaderWord(TFree, 0)
			}
			if prev == NoFreeBlock {
				fh[b] = int32(replacement)
			} else {
				SetFreeNext(s, prev, replacement)
			}
			return off, true
		}
		prev = off
		off = next
	}
	// The full scan found no run of n words, so every run is at most n-1.
	s.Blocks.MaxRun[b] = int32(n - 1)
	return 0, false
}

// MarkedAt reports whether the object headed at off is marked in the side
// bitmap.
func (s *Space) MarkedAt(off int) bool {
	return s.marks[off>>6]&(1<<(uint(off)&63)) != 0
}

// SetMarkAt sets the mark bit for the object headed at off and records its
// block in the dirty summary. Not safe for concurrent use; parallel markers
// claim through TryMarkAtomic.
func (s *Space) SetMarkAt(off int) {
	s.marks[off>>6] |= 1 << (uint(off) & 63)
	b := off >> BlockShift
	s.dirty[b>>6] |= 1 << (uint(b) & 63)
}

// ClearMarkAt clears the mark bit for the object headed at off. The dirty
// summary is left set; ClearMarks resolves it.
func (s *Space) ClearMarkAt(off int) {
	s.marks[off>>6] &^= 1 << (uint(off) & 63)
}

// TryMarkAtomic atomically sets the mark bit for the object headed at off
// and reports whether this caller won the claim (the bit was previously
// clear). This is the parallel markers' whole claim protocol: headers are
// never written during a mark, so a successful CAS here is the only
// publication an object's marking needs.
func (s *Space) TryMarkAtomic(off int) bool {
	w := &s.marks[off>>6]
	bit := uint64(1) << (uint(off) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			b := off >> BlockShift
			orUint64(&s.dirty[b>>6], 1<<(uint(b)&63))
			return true
		}
	}
}

// MarkedAtAtomic is MarkedAt with an atomic load, for pre-claim checks in
// parallel drains (a set bit is stable for the rest of the mark phase, so a
// true result never needs revalidation).
func (s *Space) MarkedAtAtomic(off int) bool {
	return atomic.LoadUint64(&s.marks[off>>6])&(1<<(uint(off)&63)) != 0
}

// orUint64 is atomic.OrUint64 via CAS (the direct form needs a newer Go
// than go.mod declares).
func orUint64(p *uint64, bits uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old&bits == bits {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old|bits) {
			return
		}
	}
}

// andNotUint64 atomically clears bits in *p, via CAS for the same reason.
func andNotUint64(p *uint64, bits uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old&bits == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old&^bits) {
			return
		}
	}
}

// ClearMarkBits clears the space's mark bitmap in O(dirty blocks): the
// dirty summary names exactly the blocks that received marks, and each
// costs markWordsPerBlock stores. Blocks never marked cost nothing — this
// is the per-block fix for the old O(whole-space) unmark pass.
func (s *Space) ClearMarkBits() {
	for di, d := range s.dirty {
		if d == 0 {
			continue
		}
		for d != 0 {
			b := di<<6 + bits.TrailingZeros64(d)
			d &= d - 1
			lo := b * markWordsPerBlock
			hi := lo + markWordsPerBlock
			if hi > len(s.marks) {
				hi = len(s.marks)
			}
			mw := s.marks[lo:hi]
			for i := range mw {
				mw[i] = 0
			}
		}
		s.dirty[di] = 0
	}
}

// clearBlockMarks clears the bitmap span of a single block with plain
// stores (bitmap words never straddle blocks) and drops its dirty bit
// atomically (dirty words summarize 64 blocks, which concurrent sweep
// workers share).
func (s *Space) clearBlockMarks(b int) {
	lo := b * markWordsPerBlock
	hi := lo + markWordsPerBlock
	if hi > len(s.marks) {
		hi = len(s.marks)
	}
	mw := s.marks[lo:hi]
	for i := range mw {
		mw[i] = 0
	}
	andNotUint64(&s.dirty[b>>6], 1<<(uint(b)&63))
}

// MarkedLiveWords returns the total footprint (header plus payload words)
// of the marked objects in the space, walking only dirty blocks' bitmap
// spans. Collectors that size or order spaces by survivors (the
// non-predictive mark/sweep's rename pass) use it to read live occupancy
// straight off the marks, before any sweep has rebuilt the free lists.
func (s *Space) MarkedLiveWords() int {
	live := 0
	for di, d := range s.dirty {
		if d == 0 {
			continue
		}
		for d != 0 {
			b := di<<6 + bits.TrailingZeros64(d)
			d &= d - 1
			lo := b * markWordsPerBlock
			hi := lo + markWordsPerBlock
			if hi > len(s.marks) {
				hi = len(s.marks)
			}
			for mi := lo; mi < hi; mi++ {
				w := s.marks[mi]
				for w != 0 {
					off := mi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					live += ObjWords(s.Mem[off])
				}
			}
		}
	}
	return live
}

// MarksClear reports whether no mark bit is set anywhere in the space. The
// verifier uses it as the bitmap analogue of the stale-header-mark check;
// it scans the whole bitmap rather than trusting the dirty summary, so a
// summary bug cannot mask a stale bit.
func (s *Space) MarksClear() bool {
	for _, w := range s.marks {
		if w != 0 {
			return false
		}
	}
	return true
}

// --- per-object age table ---
//
// The age table is the third piece of side metadata a space can carry,
// next to the mark bitmap and the dirty summary: one byte per word,
// indexed by object header offset, holding the number of nursery
// collections the object has survived. Ages never live in headers — the
// header stays a tag/type/size word (or a forwarding pointer mid-copy) —
// so tracing and the fused evacuation drains are unaffected by whether a
// space tracks ages. Only nursery-side spaces of tenuring collectors
// allocate the table (EnsureAgeTable); everywhere else AgeAt reads 0 and
// the space pays nothing.

// MaxObjectAge is the saturation point of the one-byte side age table.
// Ages cap here instead of wrapping, so any promotion threshold above it
// (TenureNever in particular) means "never promote".
const MaxObjectAge = 255

// EnsureAgeTable allocates the space's side age table if it does not exist
// yet. Idempotent; fresh entries read age 0.
func (s *Space) EnsureAgeTable() {
	if s.ages == nil {
		s.ages = make([]uint8, len(s.Mem))
	}
}

// HasAgeTable reports whether the space carries a side age table.
func (s *Space) HasAgeTable() bool { return s.ages != nil }

// AgeAt returns the age recorded for the object whose header sits at off:
// the number of nursery collections it has survived. Spaces without an age
// table report 0 for every object.
func (s *Space) AgeAt(off int) int {
	if s.ages == nil {
		return 0
	}
	return int(s.ages[off])
}

// SetAgeAt records age for the object whose header sits at off, saturating
// at MaxObjectAge. The table must exist (EnsureAgeTable); writing ages into
// a space that never tenures is a bug, so this panics on a nil table.
func (s *Space) SetAgeAt(off, age int) {
	if age > MaxObjectAge {
		age = MaxObjectAge
	}
	s.ages[off] = uint8(age)
}

// clearAges zeroes the age entries below Top, so a Reset space hands out
// age-0 storage to the next cycle's allocations. O(Top), like the copy work
// that filled the entries.
func (s *Space) clearAges() {
	if s.ages != nil {
		clear(s.ages[:s.Top])
	}
}
