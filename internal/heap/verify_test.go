package heap

import (
	"errors"
	"strings"
	"testing"
)

// These tests seed one corruption class each into an otherwise healthy heap
// and assert that Verify diagnoses it as exactly that class (errors.Is
// against the sentinel) with a description naming the spot.

// verifyFixture is a heap with one live space holding a rooted chain of
// pairs and one scratch space, the smallest layout on which every invariant
// class can be violated.
type verifyFixture struct {
	h       *Heap
	live    *Space
	scratch *Space
	head    Word
	spec    VerifySpec
}

// buildChainCensus is buildChain with room for the hidden birth-stamp word
// when the heap has census tracking on.
func buildChainCensus(t testing.TB, h *Heap, s *Space, n int) Word {
	t.Helper()
	extra := h.ExtraWords()
	prev := NullWord
	for i := 0; i < n; i++ {
		off, ok := s.Bump(3 + extra)
		if !ok {
			t.Fatalf("space %q too small for %d pairs", s.Name, n)
		}
		w := h.InitObject(s, off, TPair, 2)
		s.Mem[off+1+extra] = FixnumWord(int64(i))
		s.Mem[off+2+extra] = prev
		prev = w
	}
	return prev
}

func newVerifyFixture(t *testing.T, opts ...Option) *verifyFixture {
	t.Helper()
	h := New(opts...)
	live := h.NewSpace("live", 256)
	scratch := h.NewSpace("scratch", 256)
	head := buildChainCensus(t, h, live, 8)
	h.GlobalWord(head)
	f := &verifyFixture{h: h, live: live, scratch: scratch, head: head,
		spec: VerifySpec{Live: []*Space{live}}}
	if err := Verify(h, f.spec); err != nil {
		t.Fatalf("fixture not clean: %v", err)
	}
	return f
}

func (f *verifyFixture) expect(t *testing.T, kind error, fragment string) {
	t.Helper()
	err := Verify(f.h, f.spec)
	if err == nil {
		t.Fatalf("corruption not detected, want %v", kind)
	}
	if !errors.Is(err, kind) {
		t.Fatalf("diagnosed %v, want %v", err, kind)
	}
	if fragment != "" && !strings.Contains(err.Error(), fragment) {
		t.Errorf("diagnosis %q does not mention %q", err, fragment)
	}
}

func TestVerifyMalformedHeader(t *testing.T) {
	f := newVerifyFixture(t)
	f.live.Mem[0] = FixnumWord(42) // clobber the first header
	f.expect(t, ErrMalformedHeader, "not a header")
}

func TestVerifyBadType(t *testing.T) {
	f := newVerifyFixture(t)
	f.live.Mem[0] = HeaderWord(numTypes+3, 2)
	f.expect(t, ErrMalformedHeader, "bad type")
}

func TestVerifyStaleForwarding(t *testing.T) {
	f := newVerifyFixture(t)
	// A forwarding pointer is what an evacuated object's header looks like
	// mid-collection; finding one afterwards means a space was left dirty.
	f.live.Mem[3] = PtrWord(f.scratch.ID, 0)
	f.expect(t, ErrStaleForwarding, "forwards to")
}

func TestVerifyStaleMark(t *testing.T) {
	f := newVerifyFixture(t)
	f.live.Mem[0] = SetMark(f.live.Mem[0])
	f.expect(t, ErrStaleMark, "mark bit")
}

func TestVerifyBlockOverrun(t *testing.T) {
	f := newVerifyFixture(t)
	f.live.Mem[0] = HeaderWord(TVector, f.live.Top+100)
	f.expect(t, ErrBlockOverrun, "overrun")
}

func TestVerifyDanglingPointerClasses(t *testing.T) {
	t.Run("unknown space", func(t *testing.T) {
		f := newVerifyFixture(t)
		f.live.Mem[2] = PtrWord(99, 0) // cdr slot of the first pair
		f.expect(t, ErrDanglingPointer, "unknown space")
	})
	t.Run("scratch space", func(t *testing.T) {
		f := newVerifyFixture(t)
		f.live.Mem[2] = PtrWord(f.scratch.ID, 0)
		f.expect(t, ErrDanglingPointer, "scratch")
	})
	t.Run("past bump pointer", func(t *testing.T) {
		f := newVerifyFixture(t)
		f.live.Mem[2] = PtrWord(f.live.ID, f.live.Top+3)
		f.expect(t, ErrDanglingPointer, "past the bump pointer")
	})
	t.Run("object interior", func(t *testing.T) {
		f := newVerifyFixture(t)
		f.live.Mem[2] = PtrWord(f.live.ID, 1) // payload of pair 0, not a start
		f.expect(t, ErrDanglingPointer, "middle of an object")
	})
	t.Run("free block", func(t *testing.T) {
		f := newVerifyFixture(t)
		f.live.Mem[3] = HeaderWord(TFree, 2) // kill the second pair
		f.live.Mem[5] = NullWord             // drop its stale chain pointer
		f.live.Mem[2] = PtrWord(f.live.ID, 3)
		f.expect(t, ErrDanglingPointer, "free block")
	})
	t.Run("root slot", func(t *testing.T) {
		f := newVerifyFixture(t)
		f.h.GlobalWord(PtrWord(f.scratch.ID, 0))
		f.expect(t, ErrDanglingPointer, "root slot")
	})
}

func TestVerifyBadCensusWord(t *testing.T) {
	t.Run("not a fixnum", func(t *testing.T) {
		f := newVerifyFixture(t, WithCensus())
		f.live.Mem[1] = NullWord // the hidden birth stamp of pair 0
		f.expect(t, ErrBadCensusWord, "not a fixnum")
	})
	t.Run("from the future", func(t *testing.T) {
		f := newVerifyFixture(t, WithCensus())
		f.live.Mem[1] = FixnumWord(int64(f.h.Now()) + 1000)
		f.expect(t, ErrBadCensusWord, "outside")
	})
}

func TestVerifyRemsetCompleteness(t *testing.T) {
	f := newVerifyFixture(t)
	// Every pair whose cdr is a pointer demands an entry; an empty set
	// violates the rule, a complete Has satisfies it.
	demanding := func(obj, val Word) bool { return IsPtr(val) }
	f.spec.Remsets = []RemsetRule{{Name: "all-ptrs", Needs: demanding, Has: func(Word) bool { return false }}}
	f.expect(t, ErrRemsetMissing, `rule "all-ptrs"`)

	f.spec.Remsets[0].Has = func(Word) bool { return true }
	if err := Verify(f.h, f.spec); err != nil {
		t.Fatalf("complete set rejected: %v", err)
	}
}

// TestVerifyEmptyLiveMeansAllSpaces: the default spec treats every space as
// live, so a pointer into any registered space is fine.
func TestVerifyEmptyLiveMeansAllSpaces(t *testing.T) {
	f := newVerifyFixture(t)
	buildChain(t, f.h, f.scratch, 2)
	if err := Verify(f.h, VerifySpec{}); err != nil {
		t.Fatalf("whole-heap spec rejected a healthy heap: %v", err)
	}
}

// TestVerifyErrorCap: a heap corrupted in many places reports at most
// maxVerifyErrors diagnoses rather than flooding the failure output.
func TestVerifyErrorCap(t *testing.T) {
	h := New()
	live := h.NewSpace("live", 512)
	for i := 0; i < 40; i++ {
		off, _ := live.Bump(3)
		w := h.InitObject(live, off, TPair, 2)
		live.Mem[off+1] = PtrWord(99, 0) // dangling in every object
		live.Mem[off+2] = NullWord
		h.GlobalWord(w)
	}
	err := Verify(h, VerifySpec{})
	if err == nil {
		t.Fatal("corruptions not detected")
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("Verify did not return a joined error: %T", err)
	}
	if n := len(joined.Unwrap()); n > maxVerifyErrors {
		t.Errorf("%d diagnoses reported, cap is %d", n, maxVerifyErrors)
	}
}

// TestVerifyCollectorWithoutSpec: collectors that do not implement
// Verifiable still get the whole-heap catalog.
func TestVerifyCollectorWithoutSpec(t *testing.T) {
	h := New()
	live := h.NewSpace("live", 64)
	h.GlobalWord(buildChain(t, h, live, 2))
	if err := VerifyCollector(h, nil); err != nil {
		t.Fatalf("whole-heap verify failed: %v", err)
	}
	live.Mem[0] = FixnumWord(1)
	if err := VerifyCollector(h, nil); !errors.Is(err, ErrMalformedHeader) {
		t.Fatalf("got %v, want %v", err, ErrMalformedHeader)
	}
}

// TestVerifyDoesNotMutate: a verify pass over a corrupt heap must leave
// every word untouched, or it would mask the bug it found.
func TestVerifyDoesNotMutate(t *testing.T) {
	f := newVerifyFixture(t)
	f.live.Mem[2] = PtrWord(f.scratch.ID, 7)
	before := append([]Word(nil), f.live.Mem...)
	if err := Verify(f.h, f.spec); err == nil {
		t.Fatal("corruption not detected")
	}
	for i, w := range f.live.Mem {
		if before[i] != w {
			t.Fatalf("Verify mutated word %d: %#x -> %#x", i, uint64(before[i]), uint64(w))
		}
	}
}
