package heap

import (
	"math"
	"os"
	"strconv"
	"sync/atomic"
)

// Incremental collection configuration and the shared slice-scheduling
// engine used by the incremental mark/sweep collectors.
//
// Incremental mode is an opt-in, per-heap configuration, mirroring the
// parallel-tracing knobs in parallel.go: a heap with GCIncremental() ==
// false (the default) collects stop-the-world exactly as before, and heaps
// built by collectors that do not support incremental mode ignore the
// setting. When enabled, a supporting collector splits each mark phase into
// bounded slices interleaved with mutator allocation, keeps the tricolor
// invariant with a Dijkstra-style insertion barrier on the heap store
// paths, and sweeps blocks on demand from the allocation path — so every
// mutator-visible pause is a slice, a termination phase, or a single-block
// sweep instead of a whole-heap walk.

// EnvGCIncr is the environment variable the drivers consult when their
// -gcincr flag is left at its default: a truthy strconv.ParseBool value
// enables incremental collection on supporting collectors.
const EnvGCIncr = "RDGC_GC_INCR"

// EnvGCSlice is the environment variable the drivers consult when their
// -gcslice flag is left at its default: a positive integer sets the
// words-per-slice mark budget.
const EnvGCSlice = "RDGC_GC_SLICE"

// DefaultSliceBudget is the words-per-slice mark budget used when neither
// the flag nor the environment picks one: four blocks of mark work per
// slice, small enough that slices undercut whole-heap pauses by orders of
// magnitude on the benchmark heaps, large enough that slice scheduling
// overhead stays invisible next to the marking itself.
const DefaultSliceBudget = 4 * BlockWords

// defaultGCIncr and defaultGCSlice seed every heap created by New,
// mirroring defaultGCWorkers. A zero defaultGCSlice means "unset" and
// resolves to DefaultSliceBudget.
var (
	defaultGCIncr  atomic.Bool
	defaultGCSlice atomic.Int64
)

// SetDefaultGCIncremental sets the incremental-collection mode inherited by
// heaps subsequently created with New.
func SetDefaultGCIncremental(on bool) { defaultGCIncr.Store(on) }

// DefaultGCIncremental returns the incremental mode New currently hands to
// fresh heaps.
func DefaultGCIncremental() bool { return defaultGCIncr.Load() }

// SetDefaultGCSliceBudget sets the words-per-slice mark budget inherited by
// heaps subsequently created with New. Values below 1 restore
// DefaultSliceBudget.
func SetDefaultGCSliceBudget(words int) {
	if words < 1 {
		words = 0
	}
	defaultGCSlice.Store(int64(words))
}

// DefaultGCSliceBudget returns the slice budget New currently hands to
// fresh heaps.
func DefaultGCSliceBudget() int {
	if v := defaultGCSlice.Load(); v > 0 {
		return int(v)
	}
	return DefaultSliceBudget
}

// GCIncrFromEnv reports whether RDGC_GC_INCR requests incremental
// collection.
func GCIncrFromEnv() bool {
	if s := os.Getenv(EnvGCIncr); s != "" {
		if on, err := strconv.ParseBool(s); err == nil {
			return on
		}
	}
	return false
}

// GCSliceFromEnv returns the slice budget requested by RDGC_GC_SLICE, or
// DefaultSliceBudget when the variable is unset or not a positive integer.
func GCSliceFromEnv() int {
	if s := os.Getenv(EnvGCSlice); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return DefaultSliceBudget
}

// ResolveGCSlice implements the drivers' flag/env precedence for the slice
// budget: a flag value >= 1 is explicit and wins, while the default
// sentinel 0 defers to RDGC_GC_SLICE (which itself falls back to
// DefaultSliceBudget).
func ResolveGCSlice(flagValue int) int {
	if flagValue >= 1 {
		return flagValue
	}
	return GCSliceFromEnv()
}

// SetGCIncremental configures this heap's incremental-collection mode.
func (h *Heap) SetGCIncremental(on bool) { h.gcIncr = on }

// GCIncremental reports whether this heap requests incremental collection.
func (h *Heap) GCIncremental() bool { return h.gcIncr }

// SetGCSliceBudget configures this heap's words-per-slice mark budget.
// Values below 1 restore DefaultSliceBudget.
func (h *Heap) SetGCSliceBudget(words int) {
	if words < 1 {
		words = DefaultSliceBudget
	}
	h.gcSlice = words
}

// GCSliceBudget reports this heap's words-per-slice mark budget.
func (h *Heap) GCSliceBudget() int { return h.gcSlice }

// incrMarkRatio is how many words of marking each slice retires per word
// the mutator allocated since the previous slice: with budget B, a slice of
// B words runs every B/incrMarkRatio allocated words. Marking therefore
// outpaces allocation 4:1, so a cycle started with half the heap free
// always terminates before allocation exhausts the free half — the same
// safety argument as Baker's incremental collector, in words instead of
// time.
const incrMarkRatio = 4

// IncrMarker schedules a Marker's work into bounded slices. The embedding
// collector owns the phase machine (when a cycle starts, what termination
// and sweeping look like); IncrMarker owns what is common to every
// incremental collector: the allocation-debt pacing, the slice drains, the
// barrier shading, and the per-cycle work accounting.
//
// All marking — slices and the termination drain alike — runs through the
// sequential Marker.DrainBudget, whatever the heap's worker count: a
// slice's recorded pause must equal the work the mutator waited for, which
// the parallel engines' counters cannot promise. The parallel drains still
// serve the stop-the-world paths of the same collectors.
type IncrMarker struct {
	H *Heap
	M *Marker

	// Active is true from StartRoots until FinishDrain or Cancel: the
	// window in which the insertion barrier must shade.
	Active bool

	// Budget is the words-per-slice mark budget, captured from the heap at
	// StartRoots so a mid-cycle SetGCSliceBudget cannot starve termination.
	Budget int

	// debt is the mutator allocation (in words) not yet paid for with
	// marking. NeedSlice compares debt against Budget/incrMarkRatio.
	debt int

	// Slices and SliceWords account the cycle's incremental work: how many
	// bounded drains ran and the words they scanned. FinishDrain's return
	// value completes the cycle total.
	Slices     int
	SliceWords uint64

	// countSlot counts and marks root slots; built once so root scans do
	// not allocate per cycle.
	countSlot func(slot *Word)
	rootSlots uint64
}

// NewIncrMarker prepares a slice scheduler over m.
func NewIncrMarker(h *Heap, m *Marker) *IncrMarker {
	im := &IncrMarker{H: h, M: m}
	mark := m.Slot()
	im.countSlot = func(slot *Word) {
		im.rootSlots++
		mark(slot)
	}
	return im
}

// StartRoots begins an incremental cycle: the marker must already be armed
// (Begin + region). It scans the roots, graying everything they reference,
// and returns the pause words of the root scan (one word of work per root
// slot visited). From here until FinishDrain or Cancel the collector's
// barrier must Shade every pointer stored into the heap.
func (im *IncrMarker) StartRoots() uint64 {
	im.Active = true
	im.Budget = im.H.gcSlice
	im.debt = 0
	im.Slices = 0
	im.SliceWords = 0
	im.rootSlots = 0
	im.H.VisitRoots(im.countSlot)
	return im.rootSlots
}

// Shade grays the stored value under the Dijkstra insertion invariant: any
// pointer written into the heap while marking is active is marked before
// the mutator proceeds, so a black object can never point to an
// unreachable-looking white one. Values that are not pointers, lie outside
// the cycle's region, or are already marked cost one predicate each.
func (im *IncrMarker) Shade(v Word, g *GCStats) {
	if !im.Active {
		return
	}
	before := im.M.ObjectsMarked
	im.M.MarkWord(v)
	g.BarrierShades += uint64(im.M.ObjectsMarked - before)
}

// NeedSlice accrues allocWords of allocation debt and reports whether the
// debt now warrants a slice: marking pays incrMarkRatio words per allocated
// word, so the threshold is Budget/incrMarkRatio allocated words.
func (im *IncrMarker) NeedSlice(allocWords int) bool {
	if !im.Active {
		return false
	}
	im.debt += allocWords
	return im.debt*incrMarkRatio >= im.Budget
}

// RunSlice drains up to the slice budget and returns the words scanned
// (the slice's pause size; the caller records it). The allocation debt
// resets whether or not the stack emptied.
func (im *IncrMarker) RunSlice() uint64 {
	im.debt = 0
	scanned := uint64(im.M.DrainBudget(im.Budget))
	im.Slices++
	im.SliceWords += scanned
	return scanned
}

// Done reports whether the gray stack has emptied — the cue for the
// collector to run its termination phase. New grays can still appear after
// a true result (barrier shades, allocation in shared spaces), so
// termination must drain again under FinishDrain.
func (im *IncrMarker) Done() bool { return im.Active && im.M.StackEmpty() }

// FinishDrain is the termination phase's marking: the roots are re-scanned
// (root slots are not barriered — Refs mutate freely during the cycle) and
// the stack drained to empty with no budget. The mutator is stopped for
// the duration; the returned word count (root slots plus words scanned) is
// the marking share of the termination pause. Marking is inactive after.
func (im *IncrMarker) FinishDrain() uint64 {
	im.rootSlots = 0
	im.H.VisitRoots(im.countSlot)
	scanned := uint64(im.M.DrainBudget(math.MaxInt))
	im.Active = false
	return im.rootSlots + scanned
}

// Cancel abandons the cycle without completing it: marking deactivates and
// the gray stack empties. The caller must clear any mark bits already set
// (ClearMarks over the cycle's region) before the next trace, or stale
// marks would silently truncate it.
func (im *IncrMarker) Cancel() {
	im.Active = false
	im.M.stack = im.M.stack[:0]
}
