package heap

import "fmt"

// LargeObjectSpace segregates objects too big for blocked allocation
// (footprint above LargeObjectWords). Each large object gets a dedicated
// space holding exactly that object at offset 0, so large objects are never
// copied, never straddle anything, and die by returning their whole space
// to a reuse pool — sweep is a per-object mark-bit probe, not a scan.
//
// The pool recycles dead spaces best-fit (smallest sufficient capacity,
// lowest ID on ties), so steady-state large allocation creates no new
// spaces. Pooled spaces are scratch: pointers into them are dangling, and
// VerifyLive lists only the live ones.
type LargeObjectSpace struct {
	h    *Heap
	name string
	live []*Space
	pool []*Space
	seq  int

	// words is the footprint of live large objects (header included).
	words int
}

// NewLargeObjectSpace creates an empty large-object space; name prefixes
// the per-object space names.
func NewLargeObjectSpace(h *Heap, name string) *LargeObjectSpace {
	return &LargeObjectSpace{h: h, name: name}
}

// FromPool takes a pooled space with capacity >= total, preferring the
// smallest (then lowest-ID) fit, and returns false when none fits.
func (l *LargeObjectSpace) FromPool(total int) (*Space, bool) {
	best := -1
	for i, s := range l.pool {
		if s.Cap() < total {
			continue
		}
		if best < 0 || s.Cap() < l.pool[best].Cap() ||
			(s.Cap() == l.pool[best].Cap() && s.ID < l.pool[best].ID) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	s := l.pool[best]
	l.pool = append(l.pool[:best], l.pool[best+1:]...)
	l.adopt(s, total)
	return s, true
}

// Alloc returns a space holding room for one large object of total words at
// offset 0, reusing the pool when possible and minting a fresh space (sized
// in whole blocks) otherwise. The caller initializes the object with
// Heap.InitObject(s, 0, ...).
func (l *LargeObjectSpace) Alloc(total int) *Space {
	if total <= LargeObjectWords {
		panic(fmt.Sprintf("heap: large-object alloc of %d words (threshold %d)", total, LargeObjectWords))
	}
	if s, ok := l.FromPool(total); ok {
		return s
	}
	s := l.h.NewSpace(fmt.Sprintf("%s-los-%d", l.name, l.seq), (total+BlockMask)&^BlockMask)
	l.seq++
	l.adopt(s, total)
	return s
}

func (l *LargeObjectSpace) adopt(s *Space, total int) {
	s.Top = total
	l.live = append(l.live, s)
	l.words += total
}

// Sweep scans the live large objects after a mark: survivors have their
// mark bits cleared in place, dead ones return to the pool. It returns the
// words examined (the footprint of every pre-sweep live object, matching
// the blocked sweep's accounting).
func (l *LargeObjectSpace) Sweep() uint64 {
	var swept uint64
	kept := l.live[:0]
	for _, s := range l.live {
		swept += uint64(s.Top)
		if s.MarkedAt(0) {
			s.ClearMarkBits()
			kept = append(kept, s)
			continue
		}
		l.words -= s.Top
		s.Reset()
		l.pool = append(l.pool, s)
	}
	// Dead entries were compacted out; drop the stale tail references so the
	// pooled spaces are not pinned twice.
	for i := len(kept); i < len(l.live); i++ {
		l.live[i] = nil
	}
	l.live = kept
	return swept
}

// AddToRegion adds every live large-object space to a marker's region set.
func (l *LargeObjectSpace) AddToRegion(set *SpaceSet) {
	for _, s := range l.live {
		set.Add(s.ID)
	}
}

// AppendLive appends the live large-object spaces to dst (for marker
// regions and VerifySpec.Live lists) and returns it.
func (l *LargeObjectSpace) AppendLive(dst []*Space) []*Space {
	return append(dst, l.live...)
}

// LiveWords returns the footprint of the live large objects.
func (l *LargeObjectSpace) LiveWords() int { return l.words }

// LiveObjects returns the number of live large objects.
func (l *LargeObjectSpace) LiveObjects() int { return len(l.live) }

// PooledSpaces returns the number of spaces waiting in the reuse pool.
func (l *LargeObjectSpace) PooledSpaces() int { return len(l.pool) }
