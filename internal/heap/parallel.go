package heap

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// Parallel tracing configuration and the shared work-distribution machinery
// used by the parallel drains in parmark.go and parevac.go.
//
// Parallelism is an opt-in, per-heap engine configuration: a heap with
// GCWorkers() == 0 (the default) drains every trace on the calling
// goroutine through the fused sequential loops, exactly as before. Setting
// N >= 1 routes Marker.Drain and Evacuator.Drain through the parallel
// engines with N workers; N == 1 runs the parallel algorithm inline on the
// caller (no goroutines, no allocation), which is the configuration the
// noise-parity benchmarks and the AllocsPerRun guards pin.

// EnvGCWorkers is the environment variable the drivers consult when their
// -gcworkers flag is left at its default: a positive integer enables the
// parallel tracing engines with that many workers per heap.
const EnvGCWorkers = "RDGC_GC_WORKERS"

// defaultGCWorkers seeds every heap created by New. It is package-level
// (and atomic) because drivers configure it once before fanning cells out
// across runner goroutines, each of which builds its own Heap.
var defaultGCWorkers atomic.Int32

// SetDefaultGCWorkers sets the tracing-worker count inherited by heaps
// subsequently created with New. Values below zero are treated as zero
// (sequential engines).
func SetDefaultGCWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultGCWorkers.Store(int32(n))
}

// DefaultGCWorkers returns the worker count New currently hands to fresh
// heaps.
func DefaultGCWorkers() int { return int(defaultGCWorkers.Load()) }

// GCWorkersFromEnv returns the worker count requested by RDGC_GC_WORKERS,
// or 0 when the variable is unset or not a positive integer.
func GCWorkersFromEnv() int {
	if s := os.Getenv(EnvGCWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// ResolveGCWorkers implements the drivers' flag/env precedence: a flag value
// >= 0 is explicit and wins (0 = sequential), while the default sentinel -1
// defers to RDGC_GC_WORKERS.
func ResolveGCWorkers(flagValue int) int {
	if flagValue >= 0 {
		return flagValue
	}
	return GCWorkersFromEnv()
}

// SetGCWorkers configures this heap's tracing-worker count: 0 selects the
// sequential engines, N >= 1 the parallel engines with N workers.
func (h *Heap) SetGCWorkers(n int) {
	if n < 0 {
		n = 0
	}
	h.gcWorkers = n
}

// GCWorkers reports the heap's configured tracing-worker count.
func (h *Heap) GCWorkers() int { return h.gcWorkers }

// EnvGCLAB is the environment variable the drivers consult when their
// -gclab flag is left at its default: "1" (or any truthy strconv.ParseBool
// value) opts the parallel evacuator into per-worker allocation buffers.
const EnvGCLAB = "RDGC_GC_LAB"

// defaultGCLAB seeds every heap created by New, mirroring defaultGCWorkers.
var defaultGCLAB atomic.Bool

// SetDefaultGCLAB sets the allocation-buffer mode inherited by heaps
// subsequently created with New.
func SetDefaultGCLAB(on bool) { defaultGCLAB.Store(on) }

// DefaultGCLAB returns the allocation-buffer mode New currently hands to
// fresh heaps.
func DefaultGCLAB() bool { return defaultGCLAB.Load() }

// GCLABFromEnv reports whether RDGC_GC_LAB requests allocation buffers.
func GCLABFromEnv() bool {
	if s := os.Getenv(EnvGCLAB); s != "" {
		if on, err := strconv.ParseBool(s); err == nil {
			return on
		}
	}
	return false
}

// SetGCLAB opts this heap's parallel evacuator into (or out of) per-worker
// block-sized allocation buffers. The setting is inert below 2 workers: the
// solo and sequential engines are contention-free, so exact-fit reservation
// is strictly better there.
func (h *Heap) SetGCLAB(on bool) { h.gcLAB = on }

// GCLAB reports whether the parallel evacuator uses per-worker allocation
// buffers.
func (h *Heap) GCLAB() bool { return h.gcLAB }

// Atomic accessors for heap words. Word's underlying type is uint64, so a
// *Word converts directly to *uint64 for sync/atomic. During a parallel
// drain every access to a contended header word goes through these; payload
// words and to-space copies are only ever touched by one worker (or
// published across the queue's mutex) and stay plain loads and stores.

func loadWord(p *Word) Word     { return Word(atomic.LoadUint64((*uint64)(p))) }
func storeWord(p *Word, w Word) { atomic.StoreUint64((*uint64)(p), uint64(w)) }
func casWord(p *Word, old, new Word) bool {
	return atomic.CompareAndSwapUint64((*uint64)(p), uint64(old), uint64(new))
}

// Work-distribution tuning. Workers drain their local stacks and spill the
// older half into the shared queue when a stack grows past parSpillHigh;
// idle workers refill from the queue parTakeBatch words at a time.
const (
	parSpillHigh = 256
	parTakeBatch = 128
)

// parQueue is the shared overflow/stealing queue behind a parallel drain:
// a flat word buffer under a mutex, plus idle-count termination detection.
// A worker only calls take with an empty local stack, so when every worker
// is blocked in take with an empty buffer no gray object exists anywhere
// and the drain is complete.
type parQueue struct {
	mu   sync.Mutex
	cond sync.Cond
	buf  []Word
	idle int
	n    int // worker count this drain
	done bool
}

// reset re-arms the queue for a drain with n workers, keeping the buffer's
// capacity.
func (q *parQueue) reset(n int) {
	if q.cond.L == nil {
		q.cond.L = &q.mu
	}
	q.buf = q.buf[:0]
	q.idle = 0
	q.n = n
	q.done = false
}

// put donates ws to the queue. The words are copied, so the donor is free
// to keep mutating its local stack.
func (q *parQueue) put(ws []Word) {
	q.mu.Lock()
	q.buf = append(q.buf, ws...)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// take appends up to max queued words to dst, blocking until work arrives.
// It returns false when the drain has terminated: every worker (including
// the caller) is idle and the queue is empty.
func (q *parQueue) take(dst []Word, max int) ([]Word, bool) {
	q.mu.Lock()
	for {
		if n := len(q.buf); n > 0 {
			if n > max {
				n = max
			}
			dst = append(dst, q.buf[len(q.buf)-n:]...)
			q.buf = q.buf[:len(q.buf)-n]
			q.mu.Unlock()
			return dst, true
		}
		if q.done {
			q.mu.Unlock()
			return dst, false
		}
		q.idle++
		if q.idle == q.n {
			q.done = true
			q.mu.Unlock()
			q.cond.Broadcast()
			return dst, false
		}
		q.cond.Wait()
		q.idle--
	}
}
