package heap

import "testing"

// buildChain hand-allocates a chain of n pairs in s (car = fixnum,
// cdr = previous pair) and returns the head pointer word. It bypasses the
// collector interface so these tests exercise the engines in isolation.
func buildChain(t testing.TB, h *Heap, s *Space, n int) Word {
	prev := NullWord
	for i := 0; i < n; i++ {
		off, ok := s.Bump(3)
		if !ok {
			t.Fatalf("space %q too small for %d pairs", s.Name, n)
		}
		w := h.InitObject(s, off, TPair, 2)
		s.Mem[off+1] = FixnumWord(int64(i))
		s.Mem[off+2] = prev
		prev = w
	}
	return prev
}

// TestMarkerSteadyStateZeroAllocs guards the mark hot path: once the mark
// stack has grown to the workload's depth, re-arming with Begin and marking
// the same live graph must not allocate.
func TestMarkerSteadyStateZeroAllocs(t *testing.T) {
	h := New()
	s := h.NewSpace("mark-arena", 4096)
	h.GlobalWord(buildChain(t, h, s, 500))

	m := NewMarker(h, nil)
	m.Run() // warmup: the mark stack grows once
	ClearMarks(s)

	allocs := testing.AllocsPerRun(20, func() {
		m.Begin()
		m.Run()
		ClearMarks(s)
	})
	if allocs != 0 {
		t.Errorf("steady-state mark cycle allocates %.0f objects/run, want 0", allocs)
	}
	if m.ObjectsMarked != 500 {
		t.Fatalf("marked %d objects, want 500 (the guard must measure real work)", m.ObjectsMarked)
	}
}

// TestEvacuatorSteadyStateZeroAllocs guards the Cheney hot path: a
// persistent evacuator flipping a live chain between two semispaces must
// not allocate once its scan state has been sized — including the bitset
// re-arm (SetFrom clears and refills the from-set every cycle) and the
// fused drain's cached space table.
func TestEvacuatorSteadyStateZeroAllocs(t *testing.T) {
	h := New()
	from := h.NewSpace("flip-A", 4096)
	to := h.NewSpace("flip-B", 4096)
	h.GlobalWord(buildChain(t, h, from, 500))

	e := NewEvacuator(h, nil)
	flip := func() {
		e.SetFrom(from)
		e.Begin(to)
		e.Run()
		from.Reset()
		from, to = to, from
	}
	flip() // warmup: the from-set bitset and scan state grow once

	allocs := testing.AllocsPerRun(20, flip)
	if allocs != 0 {
		t.Errorf("steady-state evacuation allocates %.0f objects/run, want 0", allocs)
	}
	if e.ObjectsCopied != 500 {
		t.Fatalf("copied %d objects, want 500 (the guard must measure real work)", e.ObjectsCopied)
	}
}

// TestEvacuatorEscapeHatchZeroAllocs keeps the InFrom callback path honest
// too: collectors that need a predicate the bitset cannot express must not
// pay per-flip allocations either.
func TestEvacuatorEscapeHatchZeroAllocs(t *testing.T) {
	h := New()
	from := h.NewSpace("flip-A", 4096)
	to := h.NewSpace("flip-B", 4096)
	h.GlobalWord(buildChain(t, h, from, 500))

	e := NewEvacuator(h, nil)
	e.InFrom = func(w Word) bool { return PtrSpace(w) == from.ID }
	flip := func() {
		e.Begin(to)
		e.Run()
		from.Reset()
		from, to = to, from
	}
	flip() // warmup

	allocs := testing.AllocsPerRun(20, flip)
	if allocs != 0 {
		t.Errorf("steady-state escape-hatch evacuation allocates %.0f objects/run, want 0", allocs)
	}
}

// TestMarkerBoundedRegionZeroAllocs guards the bounded mark hot path: a
// persistent marker re-armed with SetRegion each cycle (the marksweep and
// npms pattern, since their space lists grow) must not allocate in steady
// state.
func TestMarkerBoundedRegionZeroAllocs(t *testing.T) {
	h := New()
	s := h.NewSpace("mark-arena", 4096)
	other := h.NewSpace("outside", 16)
	h.GlobalWord(buildChain(t, h, s, 500))
	h.GlobalWord(buildChain(t, h, other, 2))

	m := NewMarker(h, nil)
	cycle := func() {
		m.SetRegion(s)
		m.Begin()
		m.Run()
		ClearMarks(s)
	}
	cycle() // warmup: the region bitset and mark stack grow once

	allocs := testing.AllocsPerRun(20, cycle)
	if allocs != 0 {
		t.Errorf("steady-state bounded mark cycle allocates %.0f objects/run, want 0", allocs)
	}
	if m.ObjectsMarked != 500 {
		t.Fatalf("marked %d objects, want 500 (the bound must exclude the outside space)", m.ObjectsMarked)
	}
}

// BenchmarkMarkerSteadyState reports the per-collection cost (and allocs)
// of marking a live chain with a reused Marker.
func BenchmarkMarkerSteadyState(b *testing.B) {
	h := New()
	s := h.NewSpace("mark-arena", 1<<16)
	h.GlobalWord(buildChain(b, h, s, 8000))
	m := NewMarker(h, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Begin()
		m.Run()
		ClearMarks(s)
	}
}

// BenchmarkEvacuatorSteadyState reports the per-collection cost (and
// allocs) of a semispace flip with a reused Evacuator.
func BenchmarkEvacuatorSteadyState(b *testing.B) {
	h := New()
	from := h.NewSpace("flip-A", 1<<16)
	to := h.NewSpace("flip-B", 1<<16)
	h.GlobalWord(buildChain(b, h, from, 8000))
	e := NewEvacuator(h, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SetFrom(from)
		e.Begin(to)
		e.Run()
		from.Reset()
		from, to = to, from
	}
}
