package heap

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Parallel copying: Evacuator.Drain dispatches here when the heap is
// configured with GCWorkers >= 1 (and neither the InFrom escape hatch nor a
// move hook is armed). Reservation has two modes:
//
//   - Exact-fit (the default): workers carve copy space per object directly
//     out of the shared targets with an atomic CAS bump on a per-target
//     cursor. No buffer padding or filler ever lands in a target, so the
//     words-copied totals, survival counts, census, and (for single-target
//     collections) the final Top are identical to the sequential engine for
//     every worker count — at the price of one contended CAS per copied
//     object.
//   - Per-worker allocation buffers (Heap.SetGCLAB / RDGC_GC_LAB, active at
//     2+ workers): each worker claims whole BlockWords-sized buffers from
//     the shared cursors and bump-allocates copies inside its buffer with
//     plain stores, cutting cursor contention by ~BlockWords/avg-object.
//     Retiring a buffer writes its unused tail as a TFree filler block (the
//     space stays linearly parsable) and adds the tail to Space.Waste, so
//     Used() — and every stat derived from it — is block-granularly
//     accounted and identical to the sequential engine at every worker
//     count. Top itself becomes schedule-dependent; DESIGN.md
//     "Block-structured heap" spells out this per-block-accountable tier.
//
// In both modes, instead of Cheney-scanning target regions, each worker
// keeps an explicit gray stack of the objects it copied (exactly one
// publisher per object, the CAS winner), balanced through the shared
// parQueue.
//
// Forwarding installation is a two-phase claim on the from-object's header:
// CAS header -> busyHeader, copy, then atomically publish the forwarding
// pointer. Losers spin (yielding, so single-CPU schedules make progress)
// until the pointer appears. Exactly one worker copies each object, which
// is what keeps every word counter bit-identical to sequential.
//
// What is NOT preserved (in either mode) is the distribution of copies
// across multiple targets near capacity boundaries: first-fit packing
// depends on arrival order, so multi-target collections can strand or fill
// slightly different amounts per target than the sequential engine (the
// totals still match). DESIGN.md "Parallel tracing" spells out this
// determinism contract.

// busyHeader is the in-progress claim word installed in a from-object's
// header slot between the winning CAS and the forwarding-pointer store. It
// is an immediate subtype no code path ever constructs, so it collides with
// neither a real header (tag 11), a forwarding pointer (tag 01), nor any
// live immediate.
const busyHeader = TagImm | Word(63)<<2

// labRetire records one retired allocation buffer's unused tail, applied to
// Space.Waste after the drain (workers may not mutate shared Space fields
// mid-drain).
type labRetire struct {
	s     *Space
	words int
}

// evacWorker is one worker's persistent drain state.
type evacWorker struct {
	stack []Word
	words uint64
	objs  int

	// Allocation-buffer state (LAB mode only): copies bump labOff within
	// [labOff, labEnd) of lab, a whole-block region this worker owns.
	lab     *Space
	labOff  int
	labEnd  int
	retired []labRetire
}

// evacCursor is a shared bump cursor for one target space, padded to a
// cache line so concurrent reservations on different targets do not false
// share.
type evacCursor struct {
	top int64
	_   [7]int64
}

// evacTargets is an immutable snapshot of the target list: workers read it
// through an atomic pointer, and Overflow growth publishes a fresh snapshot
// rather than mutating the one in flight (the cursors are shared by
// pointer, so reservations made against an old snapshot are never lost).
type evacTargets struct {
	targets []*Space
	cursors []*evacCursor
	base    []int // scan base per target, for CopiedRegions write-back
	spaces  []*Space
}

// parEvac is the Evacuator's persistent parallel machinery.
type parEvac struct {
	queue   parQueue
	ws      []evacWorker
	tgt     atomic.Pointer[evacTargets]
	ovMu    sync.Mutex // serializes Overflow growth and snapshot publishing
	cur     *evacTargets
	cursors []*evacCursor
	lab     bool // this drain reserves through per-worker buffers
}

// drainParallel scans the gray regions of every target with the configured
// worker count and blocks until no gray object remains. workers == 1 runs
// the worker loop inline on the caller.
func (e *Evacuator) drainParallel(workers int) {
	if e.par == nil {
		e.par = &parEvac{}
	}
	p := e.par
	for len(p.ws) < workers {
		p.ws = append(p.ws, evacWorker{})
	}
	for i := 0; i < workers; i++ {
		p.ws[i].words, p.ws[i].objs = 0, 0
	}

	// Build the initial snapshot in place (no workers are running yet), and
	// seed the gray set from the regions the sequential root evacuation
	// already filled: [scan[i], Top) of every target.
	t := p.cur
	if t == nil {
		t = new(evacTargets)
		p.cur = t
	}
	t.targets = append(t.targets[:0], e.Targets...)
	t.base = append(t.base[:0], e.scanBase...)
	for len(p.cursors) < len(t.targets) {
		p.cursors = append(p.cursors, new(evacCursor))
	}
	t.cursors = append(t.cursors[:0], p.cursors[:len(t.targets)]...)
	for i, tg := range t.targets {
		atomic.StoreInt64(&t.cursors[i].top, int64(tg.Top))
	}
	e.spaces = e.H.Spaces
	t.spaces = e.spaces
	p.tgt.Store(t)
	// Buffered reservation only pays off under contention; solo keeps the
	// exact-fit path (and with it full Top parity with sequential).
	p.lab = e.H.gcLAB && workers >= 2

	if workers == 1 {
		// Solo configuration: the parallel algorithm inline on the caller,
		// with no goroutines and — since nothing races — no atomics.
		w0 := &p.ws[0]
		w0.stack = e.seedGray(w0.stack[:0])
		e.evacWorkerLoopSolo(w0)
	} else {
		p.queue.reset(workers)
		p.queue.buf = e.seedGray(p.queue.buf)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			ws := &p.ws[i]
			labels := e.H.workerLabels(i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				pprof.Do(context.Background(), labels, func(context.Context) {
					e.evacWorkerLoop(ws, &p.queue)
				})
			}()
		}
		wg.Wait()
	}

	// Retire every worker's open allocation buffer (workers are done, so
	// writing the TFree filler tails is race-free) and apply the logged
	// waste to the owning spaces before Tops are published.
	if p.lab {
		for i := 0; i < workers; i++ {
			ws := &p.ws[i]
			e.retireLAB(ws)
			for _, r := range ws.retired {
				r.s.Waste += r.words
			}
			ws.retired = ws.retired[:0]
		}
	}

	// Publish the drain's results back into the engine's sequential state:
	// cursor positions become the real Tops, every target is fully scanned,
	// and Overflow-appended targets join Targets/scanBase so CopiedRegions
	// and re-drains see them exactly as they would sequentially.
	t = p.tgt.Load()
	p.cur = t
	e.Targets = append(e.Targets[:0], t.targets...)
	e.scanBase = append(e.scanBase[:0], t.base...)
	e.scan = e.scan[:0]
	for i, tg := range t.targets {
		tg.Top = int(atomic.LoadInt64(&t.cursors[i].top))
		e.scan = append(e.scan, tg.Top)
	}
	e.spaces = e.H.Spaces
	for i := 0; i < workers; i++ {
		e.WordsCopied += p.ws[i].words
		e.ObjectsCopied += p.ws[i].objs
	}
}

// seedGray collects the pointer words of every not-yet-scanned object in
// the targets (the objects the sequential root pass copied) into dst.
func (e *Evacuator) seedGray(dst []Word) []Word {
	for i, tg := range e.Targets {
		mem := tg.Mem
		for off := e.scan[i]; off < tg.Top; {
			dst = append(dst, PtrWord(tg.ID, off))
			off += ObjWords(mem[off])
		}
	}
	return dst
}

// evacWorkerLoop is one worker's drain: pop a gray to-space object, scan
// its payload, forward every from-region pointer. With q == nil it runs the
// whole gray set inline (the workers=1 configuration).
//
// A gray object is scanned only by the worker that copied it (its CAS
// winner published it exactly once), so its header and payload are read and
// written with plain accesses; the happens-before edge for objects received
// through the queue is the queue's mutex.
func (e *Evacuator) evacWorkerLoop(ws *evacWorker, q *parQueue) {
	p := e.par
	t := p.tgt.Load()
	extra := e.extra
	local := ws.stack
	for {
		if len(local) == 0 {
			if q == nil {
				break
			}
			var ok bool
			local, ok = q.take(local, parTakeBatch)
			if !ok {
				break
			}
		}
		g := local[len(local)-1]
		local = local[:len(local)-1]
		if int(PtrSpace(g)) >= len(t.spaces) {
			// The object lives in a target Overflow appended after our
			// snapshot; the publish order guarantees the reload sees it.
			t = p.tgt.Load()
		}
		mem := t.spaces[PtrSpace(g)].Mem
		off := PtrOff(g)
		hdr := mem[off]
		if RawPayload(HeaderType(hdr)) {
			continue
		}
		for si, end := off+1+extra, off+ObjWords(hdr); si < end; si++ {
			w := mem[si]
			if !IsPtr(w) || !e.from.Has(PtrSpace(w)) {
				continue
			}
			fwd, fresh, nt := e.parForward(w, ws, t)
			t = nt
			mem[si] = fwd
			if fresh {
				local = append(local, fwd)
			}
		}
		if q != nil && len(local) >= parSpillHigh {
			half := len(local) / 2
			q.put(local[:half])
			n := copy(local, local[half:])
			local = local[:n]
		}
	}
	ws.stack = local[:0]
}

// evacWorkerLoopSolo is evacWorkerLoop for the single-worker configuration:
// the same gray-stack drain over the same shared-cursor state, but with
// plain header accesses and unsynchronized cursor bumps — one worker cannot
// race itself, and the claim protocol is pure overhead without contention.
func (e *Evacuator) evacWorkerLoopSolo(ws *evacWorker) {
	p := e.par
	t := p.tgt.Load()
	extra := e.extra
	local := ws.stack
	for len(local) > 0 {
		g := local[len(local)-1]
		local = local[:len(local)-1]
		if int(PtrSpace(g)) >= len(t.spaces) {
			t = p.tgt.Load()
		}
		mem := t.spaces[PtrSpace(g)].Mem
		off := PtrOff(g)
		hdr := mem[off]
		if RawPayload(HeaderType(hdr)) {
			continue
		}
		for si, end := off+1+extra, off+ObjWords(hdr); si < end; si++ {
			w := mem[si]
			if !IsPtr(w) || !e.from.Has(PtrSpace(w)) {
				continue
			}
			s := t.spaces[PtrSpace(w)]
			soff := PtrOff(w)
			shdr := s.Mem[soff]
			if IsPtr(shdr) { // already forwarded
				mem[si] = shdr
				continue
			}
			n := ObjWords(shdr)
			var dst *Space
			var doff int
			dst, doff, t = e.soloReserve(n, t)
			dmem := dst.Mem[doff : doff+n]
			dmem[0] = shdr
			copy(dmem[1:], s.Mem[soff+1:soff+n])
			fwd := PtrWord(dst.ID, doff)
			s.Mem[soff] = fwd
			ws.words += uint64(n)
			ws.objs++
			mem[si] = fwd
			local = append(local, fwd)
		}
	}
	ws.stack = local[:0]
}

// soloReserve is parReserve without the CAS loop: plain first-fit bumps on
// the shared cursors, safe because exactly one worker exists.
func (e *Evacuator) soloReserve(n int, t *evacTargets) (*Space, int, *evacTargets) {
	for {
		for i, tg := range t.targets {
			c := t.cursors[i]
			if c.top <= int64(len(tg.Mem)-n) {
				off := int(c.top)
				c.top += int64(n)
				return tg, off, t
			}
		}
		t = e.growTargets(n, t)
	}
}

// parForward returns the to-space address of the from-object w points to,
// copying it if this worker wins the claim (fresh reports a win, and the
// caller queues the copy for scanning). The returned snapshot replaces the
// caller's when reservation had to grow the target list.
func (e *Evacuator) parForward(w Word, ws *evacWorker, t *evacTargets) (Word, bool, *evacTargets) {
	s := t.spaces[PtrSpace(w)] // from-spaces all predate Begin, so any snapshot has them
	off := PtrOff(w)
	addr := &s.Mem[off]
	hdr := loadWord(addr)
	for {
		if IsPtr(hdr) { // already forwarded: header slot holds the new address
			return hdr, false, t
		}
		if hdr == busyHeader {
			// Another worker is mid-copy; yield so its goroutine can finish
			// even on a single-CPU schedule.
			runtime.Gosched()
			hdr = loadWord(addr)
			continue
		}
		if !casWord(addr, hdr, busyHeader) {
			hdr = loadWord(addr)
			continue
		}
		n := ObjWords(hdr)
		var dst *Space
		var doff int
		if e.par.lab {
			dst, doff, t = e.labReserve(n, ws, t)
		} else {
			dst, doff, t = e.parReserve(n, t)
		}
		dmem := dst.Mem[doff : doff+n]
		dmem[0] = hdr
		copy(dmem[1:], s.Mem[off+1:off+n])
		fwd := PtrWord(dst.ID, doff)
		storeWord(addr, fwd)
		ws.words += uint64(n)
		ws.objs++
		return fwd, true, t
	}
}

// labReserve reserves n words through the worker's allocation buffer:
// in-buffer requests are a plain bump, and a miss claims a fresh
// whole-block buffer from the shared cursors (retiring the old buffer's
// tail as accounted filler). Requests larger than a block, and requests
// arriving when no target can host a whole block, fall through to the
// exact-fit path — near capacity the two modes converge, which is what
// keeps the overflow policy identical.
func (e *Evacuator) labReserve(n int, ws *evacWorker, t *evacTargets) (*Space, int, *evacTargets) {
	if n <= ws.labEnd-ws.labOff {
		off := ws.labOff
		ws.labOff += n
		return ws.lab, off, t
	}
	if n > BlockWords {
		return e.parReserve(n, t)
	}
	for i, tg := range t.targets {
		c := t.cursors[i]
		limit := int64(len(tg.Mem) - BlockWords)
		for {
			cur := atomic.LoadInt64(&c.top)
			if cur > limit {
				break
			}
			if atomic.CompareAndSwapInt64(&c.top, cur, cur+BlockWords) {
				e.retireLAB(ws)
				ws.lab, ws.labOff, ws.labEnd = tg, int(cur), int(cur)+BlockWords
				off := ws.labOff
				ws.labOff += n
				return tg, off, t
			}
		}
	}
	return e.parReserve(n, t)
}

// retireLAB closes the worker's open buffer: the unused tail becomes a
// TFree filler block (the words are this worker's, so the store is
// race-free) and is logged for Space.Waste accounting after the drain.
func (e *Evacuator) retireLAB(ws *evacWorker) {
	if ws.lab != nil && ws.labOff < ws.labEnd {
		rem := ws.labEnd - ws.labOff
		ws.lab.Mem[ws.labOff] = HeaderWord(TFree, rem-1)
		ws.retired = append(ws.retired, labRetire{ws.lab, rem})
	}
	ws.lab = nil
	ws.labOff, ws.labEnd = 0, 0
}

// parReserve carves n words out of the first target with room, via an
// atomic CAS bump on the target's shared cursor — exact fit, no per-worker
// buffering, no filler. When every target is full it grows the list through
// the Overflow callback under ovMu and publishes a fresh snapshot; cursors
// are shared by pointer across snapshots, so reservations racing against
// the growth are never lost.
func (e *Evacuator) parReserve(n int, t *evacTargets) (*Space, int, *evacTargets) {
	for {
		for i, tg := range t.targets {
			c := t.cursors[i]
			limit := int64(len(tg.Mem) - n)
			for {
				cur := atomic.LoadInt64(&c.top)
				if cur > limit {
					break
				}
				if atomic.CompareAndSwapInt64(&c.top, cur, cur+int64(n)) {
					return tg, int(cur), t
				}
			}
		}
		t = e.growTargets(n, t)
	}
}

// growTargets appends one Overflow space to the target list and publishes
// the result as a fresh snapshot under ovMu. The caller's snapshot stays
// immutable (other workers may still hold it); only the published pointer
// advances. Panic messages mirror the sequential reserve's.
func (e *Evacuator) growTargets(n int, t *evacTargets) *evacTargets {
	p := e.par
	p.ovMu.Lock()
	defer p.ovMu.Unlock()
	if latest := p.tgt.Load(); latest != t {
		// Another worker grew the list while we waited; retry against it.
		return latest
	}
	if e.Overflow == nil {
		panic(fmt.Sprintf("heap: evacuation overflow: no target space has %d free words", n))
	}
	ns := e.Overflow(n)
	if ns == nil {
		panic(fmt.Sprintf("heap: evacuation overflow: Overflow returned nil for a %d-word request", n))
	}
	if ns.Free() < n {
		panic(fmt.Sprintf("heap: evacuation overflow: Overflow returned space %q with %d free words, too small for %d",
			ns.Name, ns.Free(), n))
	}
	nc := new(evacCursor)
	atomic.StoreInt64(&nc.top, int64(ns.Top))
	nt := &evacTargets{
		targets: append(append(make([]*Space, 0, len(t.targets)+1), t.targets...), ns),
		cursors: append(append(make([]*evacCursor, 0, len(t.cursors)+1), t.cursors...), nc),
		base:    append(append(make([]int, 0, len(t.base)+1), t.base...), ns.Top),
		spaces:  e.H.Spaces, // Overflow registered a new space
	}
	p.tgt.Store(nt)
	return nt
}
