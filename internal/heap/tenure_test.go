package heap

import (
	"testing"
)

func TestAgeTableBasics(t *testing.T) {
	h := New()
	s := h.NewSpace("aged", 64)
	if s.HasAgeTable() {
		t.Fatal("fresh space has an age table")
	}
	if got := s.AgeAt(0); got != 0 {
		t.Fatalf("AgeAt on nil table = %d, want 0", got)
	}
	s.EnsureAgeTable()
	if !s.HasAgeTable() {
		t.Fatal("EnsureAgeTable did not install a table")
	}
	s.EnsureAgeTable() // idempotent
	s.SetAgeAt(3, 7)
	if got := s.AgeAt(3); got != 7 {
		t.Fatalf("AgeAt = %d, want 7", got)
	}
	s.SetAgeAt(4, MaxObjectAge+10)
	if got := s.AgeAt(4); got != MaxObjectAge {
		t.Fatalf("age did not saturate: %d, want %d", got, MaxObjectAge)
	}

	// Reset clears the used prefix of the table.
	s.Top = 8
	s.Reset()
	if got := s.AgeAt(3); got != 0 {
		t.Fatalf("age survived Reset: %d", got)
	}

	// Resize keeps an age table, sized to the new capacity.
	s.Resize(128)
	if !s.HasAgeTable() {
		t.Fatal("Resize dropped the age table")
	}
	s.SetAgeAt(100, 1)
	if got := s.AgeAt(100); got != 1 {
		t.Fatalf("post-Resize AgeAt = %d, want 1", got)
	}
}

func TestSetAgeAtWithoutTablePanics(t *testing.T) {
	h := New()
	s := h.NewSpace("bare", 16)
	defer func() {
		if recover() == nil {
			t.Error("SetAgeAt on a table-less space did not panic")
		}
	}()
	s.SetAgeAt(0, 1)
}

func TestTenureConfigDefaultsAndEnv(t *testing.T) {
	defer SetDefaultGCTenure(0)
	defer SetDefaultGCAdaptive(false)

	if DefaultGCTenure() != 1 {
		t.Fatalf("unset DefaultGCTenure = %d, want 1", DefaultGCTenure())
	}
	SetDefaultGCTenure(6)
	if DefaultGCTenure() != 6 {
		t.Fatalf("DefaultGCTenure = %d, want 6", DefaultGCTenure())
	}
	SetDefaultGCTenure(0)
	if DefaultGCTenure() != 1 {
		t.Fatal("SetDefaultGCTenure(0) did not restore the unset state")
	}

	SetDefaultGCAdaptive(true)
	if !DefaultGCAdaptive() {
		t.Fatal("SetDefaultGCAdaptive(true) not reflected")
	}
	SetDefaultGCAdaptive(false)

	t.Setenv(EnvGCTenure, "15")
	if got := GCTenureFromEnv(); got != 15 {
		t.Fatalf("GCTenureFromEnv = %d, want 15", got)
	}
	t.Setenv(EnvGCTenure, "never")
	if got := GCTenureFromEnv(); got != TenureNever {
		t.Fatalf("GCTenureFromEnv(never) = %d, want TenureNever", got)
	}
	t.Setenv(EnvGCTenure, "bogus")
	if got := GCTenureFromEnv(); got != 1 {
		t.Fatalf("GCTenureFromEnv(bogus) = %d, want 1", got)
	}
	t.Setenv(EnvGCTenure, "8")
	if got := ResolveGCTenure(0); got != 8 {
		t.Fatalf("ResolveGCTenure(sentinel) = %d, want env's 8", got)
	}
	if got := ResolveGCTenure(3); got != 3 {
		t.Fatalf("ResolveGCTenure(3) = %d: explicit flag must win", got)
	}

	t.Setenv(EnvGCAdapt, "1")
	if !GCAdaptFromEnv() {
		t.Fatal("GCAdaptFromEnv(1) = false")
	}
	t.Setenv(EnvGCAdapt, "junk")
	if GCAdaptFromEnv() {
		t.Fatal("GCAdaptFromEnv(junk) = true")
	}
}

func TestHeapTenureSettings(t *testing.T) {
	h := New()
	if h.GCTenure() != 1 || h.GCAdaptive() {
		t.Fatal("fresh heap not at wholesale defaults")
	}
	h.SetGCTenure(4)
	if h.GCTenure() != 4 {
		t.Fatalf("GCTenure = %d, want 4", h.GCTenure())
	}
	h.SetGCTenure(0)
	if h.GCTenure() != 1 {
		t.Fatal("SetGCTenure(0) did not restore wholesale")
	}
	h.SetGCAdaptive(true)
	if !h.GCAdaptive() {
		t.Fatal("SetGCAdaptive not reflected")
	}

	SetDefaultGCTenure(7)
	SetDefaultGCAdaptive(true)
	defer SetDefaultGCTenure(0)
	defer SetDefaultGCAdaptive(false)
	h2 := New()
	if h2.GCTenure() != 7 || !h2.GCAdaptive() {
		t.Fatalf("New did not inherit defaults: tenure %d adaptive %v",
			h2.GCTenure(), h2.GCAdaptive())
	}
}

// tenureRig is a nursery + survivor shadow + old target with a bump
// allocator over the nursery, for driving the tenured evacuator directly.
type tenureRig struct {
	h       *Heap
	nursery *Space
	shadow  *Space
	old     *Space
}

func newTenureRig(t *testing.T, nurseryWords, shadowWords, oldWords int) *tenureRig {
	t.Helper()
	h := New()
	r := &tenureRig{
		h:       h,
		nursery: h.NewSpace("nursery", nurseryWords),
		shadow:  h.NewSpace("shadow", shadowWords),
		old:     h.NewSpace("old", oldWords),
	}
	r.nursery.EnsureAgeTable()
	r.shadow.EnsureAgeTable()
	h.SetAllocator(r)
	return r
}

func (r *tenureRig) AllocRaw(t Type, payload int) Word {
	total := 1 + payload + r.h.ExtraWords()
	off, ok := r.nursery.Bump(total)
	if !ok {
		panic("tenureRig: nursery full")
	}
	return r.h.InitObject(r.nursery, off, t, payload)
}

// collect runs one tenured collection of r.nursery into the shadow/old
// pair and returns the evacuator for counter inspection.
func (r *tenureRig) collect(threshold int) *Evacuator {
	e := NewEvacuator(r.h, nil)
	e.SetFrom(r.nursery)
	e.BeginTenured(threshold, []*Space{r.shadow}, r.old)
	e.EvacuateRootsTenured()
	e.DrainTenured()
	r.nursery.Reset()
	r.nursery, r.shadow = r.shadow, r.nursery
	return e
}

func TestTenuredEvacuatorRetainsUnderThreshold(t *testing.T) {
	r := newTenureRig(t, 256, 256, 1024)
	h := r.h
	sc := h.Scope()
	defer sc.Close()

	live := h.Cons(h.Fix(1), h.Cons(h.Fix(2), h.Null()))
	inner := h.Scope()
	h.Cons(h.Fix(99), h.Null()) // garbage once the inner scope closes
	inner.Close()

	e := r.collect(2)
	if e.WordsPromoted != 0 {
		t.Fatalf("first collection promoted %d words, want 0", e.WordsPromoted)
	}
	if e.WordsRetained != 6 { // two pairs, 3 words each
		t.Fatalf("retained %d words, want 6", e.WordsRetained)
	}
	if e.WordsCopied != e.WordsRetained {
		t.Fatalf("copied %d != retained %d", e.WordsCopied, e.WordsRetained)
	}
	if r.old.Used() != 0 {
		t.Fatalf("old area got %d words on the first collection", r.old.Used())
	}
	w := h.Get(live)
	if PtrSpace(w) != r.nursery.ID {
		t.Fatal("survivor did not land in the (flipped) nursery")
	}
	if got := r.nursery.AgeAt(PtrOff(w)); got != 1 {
		t.Fatalf("survivor age = %d, want 1", got)
	}
	if got := h.FixVal(h.Car(live)); got != 1 {
		t.Fatalf("survivor corrupted: car = %d", got)
	}
	surv, retained := e.SurvivorsByAge()
	if surv[0] != 6 || retained[1] != 6 {
		t.Fatalf("SurvivorsByAge: surv=%v retained=%v, want 6 in class 0 / class 1",
			surv[0], retained[1])
	}

	// Second collection: ages hit the threshold, everything promotes.
	e = r.collect(2)
	if e.WordsRetained != 0 || e.WordsPromoted != 6 {
		t.Fatalf("second collection: retained %d promoted %d, want 0/6",
			e.WordsRetained, e.WordsPromoted)
	}
	w = h.Get(live)
	if PtrSpace(w) != r.old.ID {
		t.Fatal("aged survivor was not promoted to the old space")
	}
	surv, _ = e.SurvivorsByAge()
	if surv[1] != 6 {
		t.Fatalf("second collection surv[1] = %d, want 6", surv[1])
	}
	if got := h.FixVal(h.Car(h.Cdr(live))); got != 2 {
		t.Fatalf("promoted list corrupted: cadr = %d", got)
	}
}

func TestTenuredEvacuatorThresholdOnePromotesAll(t *testing.T) {
	r := newTenureRig(t, 256, 256, 1024)
	h := r.h
	sc := h.Scope()
	defer sc.Close()
	live := h.Cons(h.Fix(5), h.Null())

	e := r.collect(1)
	if e.WordsRetained != 0 || e.WordsPromoted != 3 {
		t.Fatalf("threshold 1: retained %d promoted %d, want 0/3",
			e.WordsRetained, e.WordsPromoted)
	}
	if PtrSpace(h.Get(live)) != r.old.ID {
		t.Fatal("threshold 1 did not promote to the old space")
	}
}

func TestTenuredEvacuatorNeverPromotes(t *testing.T) {
	r := newTenureRig(t, 256, 256, 1024)
	h := r.h
	sc := h.Scope()
	defer sc.Close()
	live := h.Cons(h.Fix(5), h.Null())

	for i := 0; i < 5; i++ {
		e := r.collect(TenureNever)
		if e.WordsPromoted != 0 {
			t.Fatalf("round %d promoted %d words under TenureNever", i, e.WordsPromoted)
		}
	}
	w := h.Get(live)
	if PtrSpace(w) != r.nursery.ID {
		t.Fatal("TenureNever survivor left the young region")
	}
	if got := r.nursery.AgeAt(PtrOff(w)); got != 5 {
		t.Fatalf("age after 5 rounds = %d, want 5", got)
	}
}

func TestTenuredEvacuatorShadowOverflowPromotes(t *testing.T) {
	// Shadow too small for both survivors: one is retained, the overflow
	// is promoted early (the overflow-tenuring safety valve).
	r := newTenureRig(t, 256, 3, 1024)
	h := r.h
	sc := h.Scope()
	defer sc.Close()
	a := h.Cons(h.Fix(1), h.Null())
	b := h.Cons(h.Fix(2), h.Null())

	e := NewEvacuator(r.h, nil)
	e.SetFrom(r.nursery)
	e.BeginTenured(4, []*Space{r.shadow}, r.old)
	e.EvacuateRootsTenured()
	e.DrainTenured()
	if e.WordsRetained != 3 || e.WordsPromoted != 3 {
		t.Fatalf("retained %d promoted %d, want 3/3", e.WordsRetained, e.WordsPromoted)
	}
	spaces := map[SpaceID]bool{
		PtrSpace(h.Get(a)): true,
		PtrSpace(h.Get(b)): true,
	}
	if !spaces[r.shadow.ID] || !spaces[r.old.ID] {
		t.Fatalf("survivors in %v, want one in shadow and one in old", spaces)
	}
}

func TestTenuredEvacuatorAgeSaturates(t *testing.T) {
	r := newTenureRig(t, 64, 64, 256)
	h := r.h
	sc := h.Scope()
	defer sc.Close()
	live := h.Cons(h.Fix(9), h.Null())

	for i := 0; i < MaxObjectAge+10; i++ {
		r.collect(TenureNever)
	}
	w := h.Get(live)
	if got := r.nursery.AgeAt(PtrOff(w)); got != MaxObjectAge {
		t.Fatalf("age = %d, want saturation at %d", got, MaxObjectAge)
	}
}
