package heap

import "testing"

// TestLOSAllocAndSweep covers the large-object lifecycle: allocation above
// the threshold mints a dedicated space, survivors stay put across sweeps,
// and dead objects return their space to the pool.
func TestLOSAllocAndSweep(t *testing.T) {
	h := New()
	l := NewLargeObjectSpace(h, "t")

	total := LargeObjectWords + 100
	s := l.Alloc(total)
	h.InitObject(s, 0, TVector, total-1)
	if s.Top != total {
		t.Fatalf("adopted space Top = %d, want %d", s.Top, total)
	}
	if l.LiveObjects() != 1 || l.LiveWords() != total {
		t.Fatalf("live = %d objects / %d words, want 1 / %d", l.LiveObjects(), l.LiveWords(), total)
	}

	// Marked object survives the sweep with its bitmap cleared.
	s.SetMarkAt(0)
	if swept := l.Sweep(); swept != uint64(total) {
		t.Errorf("sweep examined %d words, want %d", swept, total)
	}
	if l.LiveObjects() != 1 || !s.MarksClear() {
		t.Fatal("marked large object did not survive cleanly")
	}

	// Unmarked object dies; its space joins the pool.
	if l.Sweep(); l.LiveObjects() != 0 || l.PooledSpaces() != 1 || l.LiveWords() != 0 {
		t.Fatalf("dead large object not pooled: live=%d pool=%d words=%d",
			l.LiveObjects(), l.PooledSpaces(), l.LiveWords())
	}

	// Reallocation of a fitting size reuses the pooled space.
	s2 := l.Alloc(LargeObjectWords + 50)
	if s2 != s {
		t.Error("pool did not recycle the dead space")
	}
	if l.PooledSpaces() != 0 {
		t.Error("pooled space still listed after reuse")
	}
}

// TestLOSPoolBestFit: among pooled spaces the smallest sufficient capacity
// wins, with the lowest ID breaking ties.
func TestLOSPoolBestFit(t *testing.T) {
	h := New()
	l := NewLargeObjectSpace(h, "t")
	big := l.Alloc(4 * BlockWords)
	small := l.Alloc(LargeObjectWords + 1)
	l.Sweep() // both unmarked: both pooled

	got := l.Alloc(LargeObjectWords + 1)
	if got != small {
		t.Errorf("best fit chose %v, want the smaller %v", got, small)
	}
	if s, ok := l.FromPool(5 * BlockWords); ok {
		t.Errorf("FromPool found %v for a request larger than any pooled space", s)
	}
	if got := l.Alloc(2 * BlockWords); got != big {
		t.Errorf("second alloc chose %v, want the pooled %v", got, big)
	}
}

// TestLOSThresholdPanics: the large-object space refuses requests the
// blocked spaces should have handled.
func TestLOSThresholdPanics(t *testing.T) {
	h := New()
	l := NewLargeObjectSpace(h, "t")
	defer func() {
		if recover() == nil {
			t.Error("Alloc at the threshold did not panic")
		}
	}()
	l.Alloc(LargeObjectWords)
}

// TestLOSAppendLive: region and verify lists see exactly the live spaces.
func TestLOSAppendLive(t *testing.T) {
	h := New()
	l := NewLargeObjectSpace(h, "t")
	a := l.Alloc(LargeObjectWords + 1)
	b := l.Alloc(LargeObjectWords + 2)
	h.InitObject(a, 0, TVector, LargeObjectWords)
	h.InitObject(b, 0, TVector, LargeObjectWords+1)
	a.SetMarkAt(0)
	l.Sweep() // b dies

	live := l.AppendLive(nil)
	if len(live) != 1 || live[0] != a {
		t.Fatalf("AppendLive = %v, want [%v]", live, a)
	}
	var set SpaceSet
	l.AddToRegion(&set)
	if !set.Has(a.ID) || set.Has(b.ID) {
		t.Error("AddToRegion region membership wrong")
	}
}
