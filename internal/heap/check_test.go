package heap

import (
	"strings"
	"testing"
)

// Check is the quick structural pass (Verify is the deep catalog); these
// tests pin down that each corruption class it covers yields a distinct,
// descriptive diagnosis.

func checkFixture(t *testing.T) (*Heap, *Space) {
	t.Helper()
	h := New()
	s := h.NewSpace("arena", 128)
	h.GlobalWord(buildChain(t, h, s, 4))
	if err := Check(h); err != nil {
		t.Fatalf("fixture not clean: %v", err)
	}
	return h, s
}

func wantCheckError(t *testing.T, h *Heap, fragment string) {
	t.Helper()
	err := Check(h)
	if err == nil {
		t.Fatalf("corruption not detected, want error mentioning %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("diagnosis %q does not mention %q", err, fragment)
	}
}

func TestCheckMalformedHeader(t *testing.T) {
	h, s := checkFixture(t)
	s.Mem[0] = FixnumWord(5)
	wantCheckError(t, h, "not a header")
}

func TestCheckStaleMark(t *testing.T) {
	h, s := checkFixture(t)
	s.Mem[0] = SetMark(s.Mem[0])
	wantCheckError(t, h, "stale mark")
}

func TestCheckBlockOverrun(t *testing.T) {
	h, s := checkFixture(t)
	s.Mem[0] = HeaderWord(TVector, 1000)
	wantCheckError(t, h, "overruns")
}

func TestCheckDanglingPointerPastTop(t *testing.T) {
	h, s := checkFixture(t)
	s.Mem[2] = PtrWord(s.ID, s.Top+6) // cdr of pair 0
	wantCheckError(t, h, "past bump pointer")
}

func TestCheckPointerToNonHeader(t *testing.T) {
	h, s := checkFixture(t)
	s.Mem[2] = PtrWord(s.ID, 1) // into pair 0's payload
	wantCheckError(t, h, "non-header")
}

func TestCheckReachableFreeBlock(t *testing.T) {
	h, s := checkFixture(t)
	s.Mem[3] = HeaderWord(TFree, 2) // kill pair 1, still referenced by pair 2
	s.Mem[5] = NullWord
	wantCheckError(t, h, "free block")
}

func TestCheckUnknownSpace(t *testing.T) {
	h, s := checkFixture(t)
	s.Mem[2] = PtrWord(77, 0)
	wantCheckError(t, h, "unknown space")
}

// TestCheckIgnoresUnreachableGarbage: Check traces from roots, so a
// dangling pointer inside a dead object is not its business (Verify's space
// scan is the pass that would catch it when the space is declared live).
func TestCheckIgnoresUnreachableGarbage(t *testing.T) {
	h := New()
	s := h.NewSpace("arena", 128)
	off, _ := s.Bump(3)
	h.InitObject(s, off, TPair, 2)
	s.Mem[off+1] = PtrWord(77, 0) // dangling, but unrooted
	if err := Check(h); err != nil {
		t.Fatalf("Check rejected unreachable garbage: %v", err)
	}
}
