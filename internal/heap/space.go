package heap

import "fmt"

// Space is a contiguous arena of words. Collectors own spaces: a semispace
// collector owns two, the non-predictive collector owns k equal "steps",
// and so on. Allocation within a space is a bump of Top; mark/sweep
// collectors instead thread a free list through the space and keep Top at
// the high-water mark so the space stays linearly parsable.
type Space struct {
	ID   SpaceID
	Mem  []Word
	Top  int // next free word index for bump allocation
	Name string

	// Waste counts TFree filler words below Top left by block-granular
	// allocation buffers (parevac.go): parsable dead storage that was never
	// an object. Used subtracts it, so occupancy accounting is identical
	// whether copies were exact-fit or buffered.
	Waste int

	// Blocks, when non-nil, is the per-block metadata of a mark/sweep-
	// managed space (see block.go); bump-allocated spaces leave it nil.
	Blocks *BlockTable

	// marks is the side mark bitmap (one bit per word) and dirty its
	// per-block summary (one bit per block); see block.go.
	marks []uint64
	dirty []uint64

	// ages is the optional per-object age table (one byte per word,
	// indexed by header offset), allocated on demand by EnsureAgeTable;
	// see the age-tenuring section of block.go. Nil on spaces whose
	// collector never tenures by age.
	ages []uint8
}

// Cap returns the capacity of the space in words.
func (s *Space) Cap() int { return len(s.Mem) }

// Free returns the number of unallocated words remaining for bump allocation.
func (s *Space) Free() int { return len(s.Mem) - s.Top }

// Used returns the occupancy of the space: words below the bump pointer,
// excluding allocation-buffer filler (see Waste).
func (s *Space) Used() int { return s.Top - s.Waste }

// Reset empties the space for reuse. The contents are not zeroed; all
// allocation paths initialize every word they hand out. Any mark bits are
// dropped (in O(dirty blocks)) so a recycled space starts unmarked.
func (s *Space) Reset() {
	s.clearAges()
	s.Top = 0
	s.Waste = 0
	s.ClearMarkBits()
}

// Bump allocates n words by bumping Top. It returns the offset of the first
// word and false if the space lacks room.
func (s *Space) Bump(n int) (int, bool) {
	if s.Top+n > len(s.Mem) {
		return 0, false
	}
	off := s.Top
	s.Top += n
	return off, true
}

// Resize replaces the space's storage with a fresh arena of the given size,
// discarding the old contents, and sizes the side bitmaps to match. It is
// how collectors grow scratch spaces (to-spaces between collections);
// reassigning Mem directly would orphan the bitmaps.
func (s *Space) Resize(words int) {
	if words <= 0 {
		panic("heap: Resize to non-positive size")
	}
	s.Mem = make([]Word, words)
	s.marks = make([]uint64, (words+63)/64)
	s.dirty = make([]uint64, ((words+BlockMask)>>BlockShift+63)/64)
	if s.ages != nil {
		s.ages = make([]uint8, words)
	}
	s.Top = 0
	s.Waste = 0
}

func (s *Space) String() string {
	return fmt.Sprintf("space %d %q: %d/%d words", s.ID, s.Name, s.Top, len(s.Mem))
}

// NewSpace creates a space of the given size in words and registers it with
// the heap so pointers into it can be dereferenced.
func (h *Heap) NewSpace(name string, words int) *Space {
	if words <= 0 {
		panic("heap: NewSpace with non-positive size")
	}
	if len(h.Spaces) >= 1<<16 {
		panic("heap: too many spaces")
	}
	s := &Space{
		ID:    SpaceID(len(h.Spaces)),
		Mem:   make([]Word, words),
		Name:  name,
		marks: make([]uint64, (words+63)/64),
		dirty: make([]uint64, ((words+BlockMask)>>BlockShift+63)/64),
	}
	h.Spaces = append(h.Spaces, s)
	return s
}

// SpaceOf returns the space that pointer word w points into.
func (h *Heap) SpaceOf(w Word) *Space { return h.Spaces[PtrSpace(w)] }

// Header returns the header word of the object that w points to.
func (h *Heap) Header(w Word) Word { return h.SpaceOf(w).Mem[PtrOff(w)] }

// SetHeader overwrites the header word of the object that w points to.
func (h *Heap) SetHeader(w, hdr Word) { h.SpaceOf(w).Mem[PtrOff(w)] = hdr }

// Payload returns the payload words of the object that w points to,
// excluding the hidden birth stamp when census tracking is enabled.
func (h *Heap) Payload(w Word) []Word {
	s := h.SpaceOf(w)
	off := PtrOff(w)
	size := HeaderSize(s.Mem[off])
	return s.Mem[off+1+h.extraWords : off+1+size]
}

// ObjWords returns the total footprint in words (header included) of the
// object whose header word is hdr.
func ObjWords(hdr Word) int { return 1 + HeaderSize(hdr) }
