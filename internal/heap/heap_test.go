package heap

import (
	"math"
	"testing"
	"testing/quick"
)

// bumpAlloc is a trivial allocator over one space, for testing the heap
// substrate without any collector.
type bumpAlloc struct {
	h *Heap
	s *Space
}

func newBumpHeap(t *testing.T, words int, opts ...Option) (*Heap, *bumpAlloc) {
	t.Helper()
	h := New(opts...)
	a := &bumpAlloc{h: h, s: h.NewSpace("bump", words)}
	h.SetAllocator(a)
	return h, a
}

func (a *bumpAlloc) AllocRaw(t Type, payload int) Word {
	total := 1 + payload + a.h.ExtraWords()
	off, ok := a.s.Bump(total)
	if !ok {
		panic("bumpAlloc: out of memory")
	}
	return a.h.InitObject(a.s, off, t, payload)
}

func TestFixnumRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		n = n << 2 >> 2 // clamp to 62 bits, as the encoding requires
		return FixnumVal(FixnumWord(n)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPtrRoundTrip(t *testing.T) {
	f := func(id uint16, off uint32) bool {
		w := PtrWord(SpaceID(id), int(off))
		return IsPtr(w) && PtrSpace(w) == SpaceID(id) && PtrOff(w) == int(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(tRaw uint8, size uint32) bool {
		typ := Type(tRaw % uint8(numTypes))
		h := HeaderWord(typ, int(size))
		if !IsHeader(h) || HeaderType(h) != typ || HeaderSize(h) != int(size) {
			return false
		}
		m := SetMark(h)
		return Marked(m) && !Marked(h) && ClearMark(m) == h &&
			HeaderType(m) == typ && HeaderSize(m) == int(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImmediates(t *testing.T) {
	words := []Word{NullWord, TrueWord, FalseWord, UnspecWord, EOFWord}
	seen := map[Word]bool{}
	for _, w := range words {
		if !IsImm(w) || IsPtr(w) || IsFixnum(w) || IsHeader(w) {
			t.Errorf("immediate %#x misclassified", uint64(w))
		}
		if seen[w] {
			t.Errorf("immediate %#x not distinct", uint64(w))
		}
		seen[w] = true
	}
	if r, ok := CharVal(CharWord('λ')); !ok || r != 'λ' {
		t.Errorf("CharWord round trip failed: got %q, %v", r, ok)
	}
	if _, ok := CharVal(TrueWord); ok {
		t.Error("CharVal accepted a non-character")
	}
	if BoolWord(true) != TrueWord || BoolWord(false) != FalseWord {
		t.Error("BoolWord mapping wrong")
	}
}

func TestConsCarCdr(t *testing.T) {
	h, _ := newBumpHeap(t, 1024)
	s := h.Scope()
	defer s.Close()

	a := h.Fix(1)
	b := h.Fix(2)
	p := h.Cons(a, b)
	if !h.IsPair(p) {
		t.Fatal("Cons did not make a pair")
	}
	if got := h.FixVal(h.Car(p)); got != 1 {
		t.Errorf("car = %d, want 1", got)
	}
	if got := h.FixVal(h.Cdr(p)); got != 2 {
		t.Errorf("cdr = %d, want 2", got)
	}
	h.SetCar(p, h.Fix(42))
	if got := h.FixVal(h.Car(p)); got != 42 {
		t.Errorf("after SetCar, car = %d, want 42", got)
	}
}

func TestVector(t *testing.T) {
	h, _ := newBumpHeap(t, 1024)
	s := h.Scope()
	defer s.Close()

	v := h.MakeVector(5, h.Fix(7))
	if n := h.VectorLen(v); n != 5 {
		t.Fatalf("VectorLen = %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if got := h.FixVal(h.VectorRef(v, i)); got != 7 {
			t.Errorf("slot %d = %d, want 7", i, got)
		}
	}
	h.VectorSet(v, 3, h.Fix(-1))
	if got := h.FixVal(h.VectorRef(v, 3)); got != -1 {
		t.Errorf("after VectorSet, slot 3 = %d, want -1", got)
	}
}

func TestFlonum(t *testing.T) {
	h, _ := newBumpHeap(t, 4096)
	s := h.Scope()
	defer s.Close()
	for _, x := range []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		f := h.Flonum(x)
		if !h.IsFlonum(f) {
			t.Fatalf("Flonum(%g) not a flonum", x)
		}
		if got := h.FlonumVal(f); got != x {
			t.Errorf("FlonumVal = %g, want %g", got, x)
		}
	}
	n := h.Flonum(math.NaN())
	if !math.IsNaN(h.FlonumVal(n)) {
		t.Error("NaN did not round trip")
	}
}

func TestSymbolInterning(t *testing.T) {
	h, _ := newBumpHeap(t, 1024)
	a := h.Intern("rewrite")
	b := h.Intern("rewrite")
	c := h.Intern("other")
	if !h.Eq(a, b) {
		t.Error("same name interned to different symbols")
	}
	if h.Eq(a, c) {
		t.Error("different names interned to same symbol")
	}
	if got := h.SymbolName(a); got != "rewrite" {
		t.Errorf("SymbolName = %q", got)
	}
}

func TestScopesReleaseRefs(t *testing.T) {
	h, _ := newBumpHeap(t, 4096)
	outer := h.Scope()
	defer outer.Close()
	base := h.LiveRefs()

	s := h.Scope()
	for i := 0; i < 10; i++ {
		h.Fix(int64(i))
	}
	if h.LiveRefs() != base+10 {
		t.Fatalf("refs = %d, want %d", h.LiveRefs(), base+10)
	}
	s.Close()
	if h.LiveRefs() != base {
		t.Fatalf("after Close, refs = %d, want %d", h.LiveRefs(), base)
	}

	s2 := h.Scope()
	x := h.Cons(h.Fix(1), h.Null())
	got := s2.Return(x)
	if h.LiveRefs() != base+1 {
		t.Fatalf("after Return, refs = %d, want %d", h.LiveRefs(), base+1)
	}
	if !h.IsPair(got) {
		t.Error("Return lost the value")
	}
}

func TestScopeMisnesting(t *testing.T) {
	h, _ := newBumpHeap(t, 1024)
	s1 := h.Scope()
	h.Fix(1) // make the inner scope's base differ from s1's
	_ = h.Scope()
	defer func() {
		if recover() == nil {
			t.Error("closing scopes out of order did not panic")
		}
	}()
	s1.Close()
}

func TestListHelpers(t *testing.T) {
	h, _ := newBumpHeap(t, 4096)
	s := h.Scope()
	defer s.Close()
	l := h.List(h.Fix(1), h.Fix(2), h.Fix(3))
	if n := h.ListLen(l); n != 3 {
		t.Fatalf("ListLen = %d, want 3", n)
	}
	if got := h.FixVal(h.Car(l)); got != 1 {
		t.Errorf("first = %d", got)
	}
	if got := h.FixVal(h.Car(h.Cdr(l))); got != 2 {
		t.Errorf("second = %d", got)
	}
	empty := h.List()
	if !h.IsNull(empty) {
		t.Error("List() not null")
	}
	if n := h.ListLen(empty); n != 0 {
		t.Errorf("ListLen(()) = %d", n)
	}
}

func TestCensusBirthStamps(t *testing.T) {
	h, _ := newBumpHeap(t, 4096, WithCensus())
	s := h.Scope()
	defer s.Close()
	t0 := h.Now()
	a := h.Cons(h.Null(), h.Null()) // Null() allocates no words
	if got := h.BirthStamp(h.Get(a)); got != t0 {
		t.Errorf("first birth stamp = %d, want %d", got, t0)
	}
	b := h.Cons(h.Null(), h.Null())
	// A census pair is header + birth + car + cdr = 4 words.
	if got := h.BirthStamp(h.Get(b)); got != t0+4 {
		t.Errorf("second birth stamp = %d, want %d", got, t0+4)
	}
}

func TestWalkAndScan(t *testing.T) {
	h, a := newBumpHeap(t, 4096)
	s := h.Scope()
	defer s.Close()
	h.Cons(h.Fix(1), h.Null())
	h.Flonum(3.14)
	h.MakeVector(3, h.Null())

	var types []Type
	WalkSpace(a.s, func(off int, hdr Word) bool {
		types = append(types, HeaderType(hdr))
		return true
	})
	want := []Type{TPair, TFlonum, TVector}
	if len(types) != len(want) {
		t.Fatalf("walked %d objects, want %d", len(types), len(want))
	}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("object %d: type %v, want %v", i, types[i], want[i])
		}
	}

	// ScanObject must skip the flonum's raw payload.
	scanned := 0
	WalkSpace(a.s, func(off int, hdr Word) bool {
		if HeaderType(hdr) == TFlonum {
			ScanObject(a.s, off, func(*Word) { scanned++ })
		}
		return true
	})
	if scanned != 0 {
		t.Errorf("flonum payload scanned %d slots, want 0", scanned)
	}
}

func TestVisitRootsCoversRefsAndGlobals(t *testing.T) {
	h, _ := newBumpHeap(t, 4096)
	s := h.Scope()
	defer s.Close()
	p := h.Cons(h.Fix(1), h.Null())
	g := h.Global(p)
	_ = g

	found := 0
	target := h.Get(p)
	h.VisitRoots(func(slot *Word) {
		if *slot == target {
			found++
		}
	})
	if found < 2 { // once on the handle stack, once in globals
		t.Errorf("root visitor found target %d times, want >= 2", found)
	}
}

func TestEqAndPredicates(t *testing.T) {
	h, _ := newBumpHeap(t, 4096)
	s := h.Scope()
	defer s.Close()
	p := h.Cons(h.Fix(1), h.Null())
	q := h.Cons(h.Fix(1), h.Null())
	if h.Eq(p, q) {
		t.Error("distinct pairs are Eq")
	}
	if !h.Eq(p, h.Dup(p)) {
		t.Error("Dup is not Eq to original")
	}
	if !h.IsNull(h.Null()) || h.IsNull(p) {
		t.Error("IsNull wrong")
	}
	if !h.IsFalse(h.Bool(false)) || h.IsFalse(h.Bool(true)) {
		t.Error("IsFalse wrong")
	}
	if !h.IsFix(h.Fix(3)) || h.IsFix(p) {
		t.Error("IsFix wrong")
	}
}
