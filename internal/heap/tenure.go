package heap

import (
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// Age-based tenuring configuration and the tenured evacuation engine.
//
// Tenuring is an opt-in, per-heap configuration mirroring the parallel and
// incremental knobs (parallel.go, incr.go): a heap with GCTenure() == 1
// (the default) promotes nursery survivors wholesale exactly as before,
// running code paths untouched by this file. A threshold of n >= 2 makes
// supporting collectors evacuate a nursery survivor *within* the nursery
// (into a survivor shadow space) until the side age table says it has
// survived n collections, and only then promote it. GCAdaptive() hands the
// threshold — plus the nursery's effective size and collection trigger —
// to the feedback controller in internal/policy, fed by the per-age-class
// survival counters the tenured evacuator collects below.

// EnvGCTenure is the environment variable the drivers consult when their
// -gctenure flag is left at its default: a positive integer sets the
// promotion threshold (1 = wholesale promotion), and the word "never"
// selects TenureNever.
const EnvGCTenure = "RDGC_GC_TENURE"

// EnvGCAdapt is the environment variable the drivers consult when their
// -gcadapt flag is left at its default: a truthy strconv.ParseBool value
// puts supporting collectors under the adaptive policy controller.
const EnvGCAdapt = "RDGC_GC_ADAPT"

// TenureNever is a promotion threshold no survivor can reach: the side age
// table saturates at MaxObjectAge, far below it, so collectors configured
// with it never promote out of the nursery (survivors overflow to the old
// area only when the survivor shadow runs out of room).
const TenureNever = 1 << 20

// TenureAgeClasses is the number of age classes the tenured evacuator
// resolves in its per-collection survival counters (the last class pools
// everything older). internal/policy sizes its EWMA tables to match.
const TenureAgeClasses = 16

// defaultGCTenure and defaultGCAdapt seed every heap created by New,
// mirroring defaultGCWorkers. A zero defaultGCTenure means "unset" and
// resolves to 1 (wholesale promotion).
var (
	defaultGCTenure atomic.Int32
	defaultGCAdapt  atomic.Bool
)

// SetDefaultGCTenure sets the promotion threshold inherited by heaps
// subsequently created with New. Values below 1 restore the unset state
// (wholesale promotion).
func SetDefaultGCTenure(n int) {
	if n < 1 {
		n = 0
	}
	if n > TenureNever {
		n = TenureNever
	}
	defaultGCTenure.Store(int32(n))
}

// DefaultGCTenure returns the promotion threshold New currently hands to
// fresh heaps (1 = wholesale promotion).
func DefaultGCTenure() int {
	if v := defaultGCTenure.Load(); v > 0 {
		return int(v)
	}
	return 1
}

// SetDefaultGCAdaptive sets the adaptive-policy mode inherited by heaps
// subsequently created with New.
func SetDefaultGCAdaptive(on bool) { defaultGCAdapt.Store(on) }

// DefaultGCAdaptive returns the adaptive mode New currently hands to fresh
// heaps.
func DefaultGCAdaptive() bool { return defaultGCAdapt.Load() }

// GCTenureFromEnv returns the promotion threshold requested by
// RDGC_GC_TENURE, or 1 (wholesale) when the variable is unset or not a
// positive integer. The value "never" selects TenureNever.
func GCTenureFromEnv() int {
	if s := os.Getenv(EnvGCTenure); s != "" {
		if strings.EqualFold(s, "never") {
			return TenureNever
		}
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			if n > TenureNever {
				return TenureNever
			}
			return n
		}
	}
	return 1
}

// GCAdaptFromEnv reports whether RDGC_GC_ADAPT requests the adaptive
// policy controller.
func GCAdaptFromEnv() bool {
	if s := os.Getenv(EnvGCAdapt); s != "" {
		if on, err := strconv.ParseBool(s); err == nil {
			return on
		}
	}
	return false
}

// ResolveGCTenure implements the drivers' flag/env precedence for the
// promotion threshold: a flag value >= 1 is explicit and wins, while the
// default sentinel 0 defers to RDGC_GC_TENURE (which itself falls back to
// wholesale promotion).
func ResolveGCTenure(flagValue int) int {
	if flagValue >= 1 {
		if flagValue > TenureNever {
			return TenureNever
		}
		return flagValue
	}
	return GCTenureFromEnv()
}

// SetGCTenure configures this heap's promotion threshold. Values below 1
// restore wholesale promotion. Collectors read the setting at construction
// time, so it must be set before the collector's New.
func (h *Heap) SetGCTenure(n int) {
	if n < 1 {
		n = 1
	}
	if n > TenureNever {
		n = TenureNever
	}
	h.gcTenure = n
}

// GCTenure reports this heap's promotion threshold (1 = wholesale).
func (h *Heap) GCTenure() int {
	if h.gcTenure < 1 {
		return 1
	}
	return h.gcTenure
}

// SetGCAdaptive configures this heap's adaptive-policy mode. Collectors
// read the setting at construction time, like SetGCTenure.
func (h *Heap) SetGCAdaptive(on bool) { h.gcAdapt = on }

// GCAdaptive reports whether this heap requests the adaptive policy
// controller.
func (h *Heap) GCAdaptive() bool { return h.gcAdapt }

// Tenurer is implemented by collectors that support age-based nursery
// tenuring; tests and the age oracle use it to reach the age-carrying
// spaces and the policy in effect without knowing the collector.
type Tenurer interface {
	// TenureThreshold reports the promotion threshold currently in effect
	// (1 = wholesale promotion; it can move between collections under the
	// adaptive controller).
	TenureThreshold() int
	// YoungSpaces returns the spaces whose objects carry side-table ages:
	// the active nursery first, then the survivor shadow (absent under
	// wholesale promotion).
	YoungSpaces() []*Space
	// Adaptive reports whether the policy controller is driving the
	// threshold and nursery trigger.
	Adaptive() bool
}

// tenureState is the Evacuator's age-routing attachment, allocated on
// first BeginTenured and reused so steady-state tenured collections
// allocate nothing.
type tenureState struct {
	armed     bool
	threshold int

	// young are the survivor targets: copies that stay below the threshold
	// land here, oldest-reserved first, with their advanced age written
	// into the target's side table. youngScan are their Cheney cursors.
	young     []*Space
	youngScan []int

	// survByAge counts surviving words by *pre-collection* age class and
	// retainedByAge the subset kept in the nursery by *post-increment* age
	// class — exactly the populations the policy controller's survival
	// EWMAs need (retainedByAge this round is the at-risk population of
	// classes >= 1 next round).
	survByAge     [TenureAgeClasses]uint64
	retainedByAge [TenureAgeClasses]uint64

	// slot is the stored tenured slot visitor, created once (like
	// Evacuator.evacSlot) so root scans under tenuring never allocate.
	slot func(slot *Word)
}

// BeginTenured re-arms the evacuator for an age-aware nursery collection:
// survivors whose incremented age stays below threshold are copied into
// the young targets (age advanced in the side table), everyone else — and
// any survivor the full young targets cannot hold — is promoted into the
// old targets. threshold should be >= 2: threshold 1 is wholesale
// promotion, which collectors run through the untouched Begin/Drain path
// (the adaptive harness may still drive threshold 1 through here to keep
// its survival counters flowing; the copy order and images are identical
// either way, since every survivor takes the old-target reserve path).
//
// The tenured engine is sequential and requires the from-bitset fast path
// (SetFrom); it honors the heap's move hook.
func (e *Evacuator) BeginTenured(threshold int, young []*Space, old ...*Space) {
	e.Begin(old...)
	if e.ten == nil {
		e.ten = &tenureState{}
		e.ten.slot = func(slot *Word) {
			w := *slot
			if !IsPtr(w) || !e.from.HasPtr(w) {
				return
			}
			*slot = e.forwardTenured(w)
		}
	}
	t := e.ten
	t.armed = true
	t.threshold = threshold
	t.young = append(t.young[:0], young...)
	t.youngScan = t.youngScan[:0]
	for _, y := range young {
		y.EnsureAgeTable()
		t.youngScan = append(t.youngScan, y.Top)
	}
	t.survByAge = [TenureAgeClasses]uint64{}
	t.retainedByAge = [TenureAgeClasses]uint64{}
}

// SlotTenured returns the stored tenured slot visitor, the age-routing
// counterpart of Slot. Valid between BeginTenured and the end of
// DrainTenured.
func (e *Evacuator) SlotTenured() func(slot *Word) { return e.ten.slot }

// EvacuateRootsTenured evacuates every heap root slot through the tenured
// engine without draining; callers evacuate their remembered sets next,
// then call DrainTenured.
func (e *Evacuator) EvacuateRootsTenured() { e.H.VisitRoots(e.ten.slot) }

// SurvivorsByAge returns this run's surviving words by pre-collection age
// class and the retained subset by post-increment age class. Valid until
// the next Begin/BeginTenured.
func (e *Evacuator) SurvivorsByAge() (surv, retained *[TenureAgeClasses]uint64) {
	return &e.ten.survByAge, &e.ten.retainedByAge
}

// forwardTenured is forward with age routing: the survivor's age is read
// from the from-space side table, incremented, and compared against the
// threshold to pick the survivor shadow or the promotion targets.
func (e *Evacuator) forwardTenured(w Word) Word {
	t := e.ten
	s := e.spaces[PtrSpace(w)]
	off := PtrOff(w)
	hdr := s.Mem[off]
	if IsPtr(hdr) { // already forwarded
		return hdr
	}
	n := ObjWords(hdr)
	age := s.AgeAt(off)
	newAge := age + 1
	if newAge > MaxObjectAge {
		newAge = MaxObjectAge
	}
	cls := age
	if cls >= TenureAgeClasses {
		cls = TenureAgeClasses - 1
	}
	t.survByAge[cls] += uint64(n)

	var toSpace *Space
	var toOff int
	if newAge < t.threshold {
		if ts, to, ok := e.reserveYoung(n); ok {
			toSpace, toOff = ts, to
			toSpace.SetAgeAt(toOff, newAge)
			e.WordsRetained += uint64(n)
			rcls := newAge
			if rcls >= TenureAgeClasses {
				rcls = TenureAgeClasses - 1
			}
			t.retainedByAge[rcls] += uint64(n)
		}
	}
	if toSpace == nil {
		// At or past the threshold — or the survivor shadow is full, in
		// which case the survivor is promoted prematurely (the standard
		// overflow-tenuring safety valve).
		toSpace, toOff = e.reserve(n)
		e.WordsPromoted += uint64(n)
	}
	copy(toSpace.Mem[toOff:toOff+n], s.Mem[off:off+n])
	fwd := PtrWord(toSpace.ID, toOff)
	s.Mem[off] = fwd
	e.WordsCopied += uint64(n)
	e.ObjectsCopied++
	if e.moved != nil {
		e.moved(w, fwd)
	}
	return fwd
}

// reserveYoung reserves n words in the survivor targets, reporting failure
// (rather than panicking or overflowing) so forwardTenured can fall back
// to promotion.
func (e *Evacuator) reserveYoung(n int) (*Space, int, bool) {
	for _, y := range e.ten.young {
		if off, ok := y.Bump(n); ok {
			return y, off, true
		}
	}
	return nil, 0, false
}

// DrainTenured scans the gray regions of the old targets and the survivor
// targets, evacuating whatever the copied objects reference through the
// age-routing forward, until no gray objects remain. Like the fused Drain,
// payload words are iterated directly over each target's Mem; unlike it,
// the engine is sequential regardless of the heap's worker count (age
// routing orders copies by age, which the parallel drains cannot preserve
// deterministically).
func (e *Evacuator) DrainTenured() {
	t := e.ten
	for {
		progress := e.drainTenuredList(e.Targets, e.scan)
		if e.drainTenuredList(t.young, t.youngScan) {
			progress = true
		}
		if !progress {
			t.armed = false
			return
		}
	}
}

func (e *Evacuator) drainTenuredList(targets []*Space, scans []int) bool {
	progress := false
	// Targets appended by Overflow mid-pass are picked up on the caller's
	// next pass, as in Drain.
	for i, nT := 0, len(targets); i < nT; i++ {
		tsp := targets[i]
		mem := tsp.Mem
		scan := scans[i]
		for scan < tsp.Top {
			progress = true
			hdr := mem[scan]
			n := ObjWords(hdr)
			if !RawPayload(HeaderType(hdr)) {
				for si, end := scan+1+e.extra, scan+n; si < end; si++ {
					w := mem[si]
					if !IsPtr(w) || !e.from.Has(PtrSpace(w)) {
						continue
					}
					mem[si] = e.forwardTenured(w)
				}
			}
			scan += n
		}
		scans[i] = scan
	}
	return progress
}
