package heap

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Sweeper is the generic sweep engine for blocked (mark/sweep-managed)
// spaces: after a mark, it rebuilds every block's free list — coalescing
// runs of dead objects and old free blocks into maximal free blocks — and
// clears the block's mark bits, in one pass per block.
//
// Blocks are the unit of parallelism. No object or free block straddles a
// block boundary, every block's free-list head is its own table slot, and a
// block's span of the mark bitmap is exclusively its own, so any worker can
// sweep any block with no synchronization beyond claiming it: workers claim
// blocks from a flattened (space, block) sequence via an atomic cursor.
// Because each block's result is a pure function of that block's contents
// and marks, the swept heap image, the free lists, and WordsSwept are
// bit-identical to the sequential sweep at every worker count — a stronger
// guarantee than the mark and copy engines need machinery for.
//
// A Sweeper is built once per collector and reused: the flattening buffers
// keep their capacity, so steady-state sequential (and solo, workers=1)
// sweeps allocate nothing.
type Sweeper struct {
	H *Heap

	spaces []*Space
	// prefix[i] is the number of blocks in spaces[:i]; the flattened block
	// sequence assigns units [prefix[i], prefix[i+1]) to spaces[i].
	prefix []int
	cursor atomic.Int64

	// WordsSwept counts the words examined by the last Sweep: every word of
	// every block, live or dead, matching the historical sweep accounting.
	WordsSwept uint64

	// Lazy-sweep state (incremental mode): after a mark completes,
	// BeginLazy flags every block of the cycle's spaces as unswept instead
	// of sweeping them, and the blocks are swept one at a time — on demand
	// when allocation needs a block's free list (EnsureSwept), or paced in
	// address order from the allocation clock (SweepPendingBlock). Each
	// block is swept exactly once per cycle by the same sweepBlock routine
	// the eager paths use, so the fully swept heap image is bit-identical
	// to a stop-the-world sweep.
	lazySpaces []*Space
	lazyPend   int
	lazyCursor int
}

// NewSweeper prepares a sweep engine for h.
func NewSweeper(h *Heap) *Sweeper { return &Sweeper{H: h} }

// Sweep sweeps the given blocked spaces with the heap's configured worker
// count (0 and 1 run on the caller; N >= 2 fan blocks out over N workers)
// and returns the words examined. It panics if a space has no block table.
func (sw *Sweeper) Sweep(spaces ...*Space) uint64 {
	sw.spaces = append(sw.spaces[:0], spaces...)
	sw.prefix = sw.prefix[:0]
	total := 0
	for _, s := range spaces {
		if s.Blocks == nil {
			panic("heap: Sweeper.Sweep on a space without a block table")
		}
		sw.prefix = append(sw.prefix, total)
		total += s.NumBlocks()
	}
	sw.prefix = append(sw.prefix, total)

	workers := sw.H.gcWorkers
	if workers <= 1 {
		// Sequential and solo configurations: the same per-block routine in
		// flat address order on the caller — no goroutines, no atomics
		// beyond the (uncontended) dirty-summary clears.
		var swept uint64
		for _, s := range sw.spaces {
			for b := 0; b < s.NumBlocks(); b++ {
				swept += uint64(sweepBlock(s, b))
			}
		}
		sw.WordsSwept = swept
		return swept
	}

	return sw.sweepParallel(workers, total)
}

// sweepParallel is the workers >= 2 engine, split out so the goroutine
// closure does not force the sequential path's locals onto the Go heap (the
// steady-state sweep must not allocate).
func (sw *Sweeper) sweepParallel(workers, total int) uint64 {
	sw.cursor.Store(0)
	var sweptTotal atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		labels := sw.H.workerLabels(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.Do(context.Background(), labels, func(context.Context) {
				var swept uint64
				for {
					unit := int(sw.cursor.Add(1)) - 1
					if unit >= total {
						break
					}
					si := 0
					for sw.prefix[si+1] <= unit {
						si++
					}
					swept += uint64(sweepBlock(sw.spaces[si], unit-sw.prefix[si]))
				}
				sweptTotal.Add(swept)
			})
		}()
	}
	wg.Wait()
	sw.WordsSwept = sweptTotal.Load()
	return sw.WordsSwept
}

// BeginLazy arms a lazy sweep over the given blocked spaces: every block is
// flagged unswept and nothing else happens — the marked heap image stays in
// place, with free lists stale until each block's sweep. Any previously
// pending blocks (there are none in correct use; collectors flush with
// FinishLazy before a new mark) are superseded.
func (sw *Sweeper) BeginLazy(spaces ...*Space) {
	sw.lazySpaces = append(sw.lazySpaces[:0], spaces...)
	sw.lazyPend = 0
	sw.lazyCursor = 0
	for _, s := range spaces {
		if s.Blocks == nil {
			panic("heap: Sweeper.BeginLazy on a space without a block table")
		}
		n := s.NumBlocks()
		for b := 0; b < n; b++ {
			s.Blocks.setUnswept(b)
		}
		sw.lazyPend += n
	}
}

// EnsureSwept sweeps block b of s now if it is still pending and returns
// the words examined (0 when the block was already swept or no lazy sweep
// is active). Allocation calls this before trusting a block's free list.
func (sw *Sweeper) EnsureSwept(s *Space, b int) int {
	if s.Blocks == nil || len(s.Blocks.Unswept) == 0 || !s.Blocks.UnsweptAt(b) {
		return 0
	}
	s.Blocks.clearUnswept(b)
	sw.lazyPend--
	return sweepBlock(s, b)
}

// SweepPendingBlock sweeps the next pending block in address order and
// returns the words examined, or ok == false when nothing is pending. The
// incremental collectors call this at a steady rate off the allocation
// clock so the sweep finishes well before the next cycle even if
// allocation never touches some blocks.
func (sw *Sweeper) SweepPendingBlock() (words int, ok bool) {
	if sw.lazyPend == 0 {
		return 0, false
	}
	flat := sw.lazyCursor
	for _, s := range sw.lazySpaces {
		n := s.NumBlocks()
		if flat >= n {
			flat -= n
			continue
		}
		for b := flat; b < n; b++ {
			sw.lazyCursor++
			if s.Blocks.UnsweptAt(b) {
				s.Blocks.clearUnswept(b)
				sw.lazyPend--
				return sweepBlock(s, b), true
			}
		}
		flat = 0
	}
	return 0, false
}

// FinishLazy sweeps every still-pending block and returns the words
// examined. Collectors call it before starting a new mark (every block must
// be swept exactly once per cycle) and when leaving incremental mode for a
// stop-the-world collection.
func (sw *Sweeper) FinishLazy() uint64 {
	if sw.lazyPend == 0 {
		return 0
	}
	var swept uint64
	for _, s := range sw.lazySpaces {
		if sw.lazyPend == 0 {
			break
		}
		for b := 0; b < s.NumBlocks(); b++ {
			if s.Blocks.UnsweptAt(b) {
				s.Blocks.clearUnswept(b)
				sw.lazyPend--
				swept += uint64(sweepBlock(s, b))
			}
		}
	}
	return swept
}

// LazyPending returns the number of blocks still awaiting their lazy sweep.
func (sw *Sweeper) LazyPending() int { return sw.lazyPend }

// sweepBlock sweeps block b of s: survivors stay put, runs of dead objects
// and old free blocks merge into maximal TFree blocks linked onto the
// block's free list in address order, and the block's mark bits are
// cleared. It returns the words examined (always the full block).
//
// The block is entirely this caller's: its words, its free-list head, and
// its mark-bitmap span are touched by no other worker during a parallel
// sweep. The only shared word is the dirty summary (64 blocks per bit-word),
// which clearBlockMarks clears atomically.
func sweepBlock(s *Space, b int) int {
	lo := b << BlockShift
	hi := lo + BlockWords
	if hi > s.Top {
		hi = s.Top
	}
	head := NoFreeBlock
	tail := NoFreeBlock
	lastFree := NoFreeBlock
	maxRun := 0
	link := func(off int) {
		if HeaderSize(s.Mem[off]) == 0 {
			return // 1-word block: cannot hold a link, stays unlinked
		}
		SetFreeNext(s, off, NoFreeBlock)
		if head == NoFreeBlock {
			head = off
		} else {
			SetFreeNext(s, tail, off)
		}
		tail = off
	}
	for off := lo; off < hi; {
		hdr := s.Mem[off]
		n := ObjWords(hdr)
		if HeaderType(hdr) != TFree && s.MarkedAt(off) {
			lastFree = NoFreeBlock
			off += n
			continue
		}
		if lastFree != NoFreeBlock {
			grown := ObjWords(s.Mem[lastFree]) + n
			wasUnlinked := HeaderSize(s.Mem[lastFree]) == 0
			s.Mem[lastFree] = HeaderWord(TFree, grown-1)
			SetFreeNext(s, lastFree, NoFreeBlock)
			if wasUnlinked {
				link(lastFree) // growing past 1 word makes it linkable
			}
			if grown > maxRun {
				maxRun = grown
			}
		} else {
			s.Mem[off] = HeaderWord(TFree, n-1)
			link(off)
			lastFree = off
			if n > maxRun {
				maxRun = n
			}
		}
		off += n
	}
	s.Blocks.FreeHead[b] = int32(head)
	s.Blocks.MaxRun[b] = int32(maxRun)
	s.clearBlockMarks(b)
	return hi - lo
}
