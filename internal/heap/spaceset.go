package heap

// SpaceSet is a bitset of SpaceIDs: the devirtualized form of the tracing
// engines' from-region and region predicates. Every collector in this
// repository bounds its traces by *which spaces* a pointer targets, so the
// per-slot membership test collapses to one shift, one load, and one bit
// test — no indirect call. The zero value is an empty set.
//
// The backing array grows on Add and is retained across Clear, so re-arming
// a set between collections allocates nothing once it has covered the
// heap's largest SpaceID.
//
// Concurrency contract: a SpaceSet is configure-then-drain immutable. All
// mutation (Add/AddSpace/Remove/Clear — and therefore SetFrom/SetRegion on
// the engines) happens on one goroutine before a drain begins; during a
// parallel drain the set is only read, and Has/HasPtr are pure loads with
// no internal state, so any number of tracing workers may consult it
// concurrently. Spaces created mid-drain (Overflow) have IDs beyond the
// backing array and are safely reported absent by the bounds check.
type SpaceSet struct {
	bits []uint64
}

// Add inserts id into the set, growing the backing array if needed.
func (ss *SpaceSet) Add(id SpaceID) {
	idx := int(id) >> 6
	for idx >= len(ss.bits) {
		ss.bits = append(ss.bits, 0)
	}
	ss.bits[idx] |= 1 << (id & 63)
}

// AddSpace inserts s's ID into the set.
func (ss *SpaceSet) AddSpace(s *Space) { ss.Add(s.ID) }

// Remove deletes id from the set.
func (ss *SpaceSet) Remove(id SpaceID) {
	if idx := int(id) >> 6; idx < len(ss.bits) {
		ss.bits[idx] &^= 1 << (id & 63)
	}
}

// Clear empties the set, keeping the backing array for reuse.
func (ss *SpaceSet) Clear() {
	for i := range ss.bits {
		ss.bits[i] = 0
	}
}

// Has reports whether id is in the set. IDs beyond the backing array are
// absent, so a set built at collection start safely rejects pointers into
// spaces created mid-collection (overflow targets are never from-spaces).
func (ss *SpaceSet) Has(id SpaceID) bool {
	idx := int(id) >> 6
	return idx < len(ss.bits) && ss.bits[idx]&(1<<(id&63)) != 0
}

// HasPtr reports whether pointer word w targets a member space. w must be a
// pointer; callers test IsPtr first.
func (ss *SpaceSet) HasPtr(w Word) bool { return ss.Has(PtrSpace(w)) }

// Empty reports whether the set has no members.
func (ss *SpaceSet) Empty() bool {
	for _, b := range ss.bits {
		if b != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of member spaces.
func (ss *SpaceSet) Len() int {
	n := 0
	for _, b := range ss.bits {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}
