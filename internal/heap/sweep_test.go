package heap

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildSweepFixture populates a fresh heap with blocked spaces holding a
// deterministic pseudo-random mix of objects, then marks a deterministic
// subset. Two calls with the same seed produce bit-identical pre-sweep
// states, which is what lets the determinism tests compare sweeps at
// different worker counts word for word.
func buildSweepFixture(seed int64, workers int) (*Heap, []*Space) {
	h := New()
	h.SetGCWorkers(workers)
	rng := rand.New(rand.NewSource(seed))
	spaces := []*Space{
		h.NewBlockedSpace("sw-a", 16*BlockWords),
		h.NewBlockedSpace("sw-b", 7*BlockWords+133),
	}
	for _, s := range spaces {
		for b := 0; b < s.NumBlocks(); b++ {
			for {
				n := 1 + rng.Intn(10)
				off, ok := s.AllocFromBlock(b, n)
				if !ok {
					break
				}
				s.Mem[off] = HeaderWord(TVector, n-1)
				for i := 1; i < n; i++ {
					s.Mem[off+i] = FixnumWord(int64(off * i))
				}
			}
		}
		WalkSpace(s, func(off int, hdr Word) bool {
			if HeaderType(hdr) != TFree && rng.Intn(2) == 0 {
				s.SetMarkAt(off)
			}
			return true
		})
	}
	return h, spaces
}

func freeListOf(s *Space, b int) []int {
	var offs []int
	for off := int(s.Blocks.FreeHead[b]); off != NoFreeBlock; off = FreeNext(s, off) {
		offs = append(offs, off)
	}
	return offs
}

// TestSweepCoalesces checks the per-block free-list rebuild: runs of dead
// objects and old free blocks merge into maximal TFree blocks, the lists
// stay address-ordered, the space stays parsable, and survivors are
// untouched with their marks cleared.
func TestSweepCoalesces(t *testing.T) {
	h := New()
	s := h.NewBlockedSpace("coalesce", 2*BlockWords)

	// Block 0: survivor, dead, dead, survivor — the middle pair must merge.
	var offs []int
	for i := 0; i < 4; i++ {
		off, ok := s.AllocFromBlock(0, 8)
		if !ok {
			t.Fatal("fixture alloc failed")
		}
		s.Mem[off] = HeaderWord(TVector, 7)
		offs = append(offs, off)
	}
	s.SetMarkAt(offs[0])
	s.SetMarkAt(offs[3])

	swept := NewSweeper(h).Sweep(s)
	if swept != uint64(s.Cap()) {
		t.Errorf("WordsSwept = %d, want the full capacity %d", swept, s.Cap())
	}

	// The two dead 8-word objects plus the block remainder stay separate
	// runs (the survivor at offs[3] splits them): [dead+dead]=16 words and
	// the tail after offs[3].
	fl := freeListOf(s, 0)
	if len(fl) != 2 || fl[0] != offs[1] || fl[1] != offs[3]+8 {
		t.Fatalf("block 0 free list = %v, want [%d %d]", fl, offs[1], offs[3]+8)
	}
	if got := ObjWords(s.Mem[offs[1]]); got != 16 {
		t.Errorf("coalesced run = %d words, want 16", got)
	}
	if HeaderType(s.Mem[offs[0]]) != TVector || HeaderType(s.Mem[offs[3]]) != TVector {
		t.Error("sweep rewrote a survivor's header")
	}
	if !s.MarksClear() {
		t.Error("sweep left mark bits set")
	}
	// An untouched block sweeps back to one maximal free block.
	if fl := freeListOf(s, 1); len(fl) != 1 || fl[0] != BlockWords {
		t.Errorf("block 1 free list = %v, want one maximal block", fl)
	}
	WalkSpace(s, func(int, Word) bool { return true }) // panics if unparsable
}

// TestParallelSweepBitIdentical pins the sweep determinism contract: each
// block's result is a pure function of that block's contents and marks, so
// the swept image, every free list, and WordsSwept must be bit-identical to
// the sequential sweep at every worker count.
func TestParallelSweepBitIdentical(t *testing.T) {
	type result struct {
		mem    [][]Word
		free   [][]int32
		maxrun [][]int32
		swept  uint64
	}
	capture := func(workers int) result {
		h, spaces := buildSweepFixture(43, workers)
		swept := NewSweeper(h).Sweep(spaces...)
		r := result{swept: swept}
		for _, s := range spaces {
			r.mem = append(r.mem, append([]Word(nil), s.Mem...))
			r.free = append(r.free, append([]int32(nil), s.Blocks.FreeHead...))
			r.maxrun = append(r.maxrun, append([]int32(nil), s.Blocks.MaxRun...))
			if !s.MarksClear() {
				t.Fatalf("workers=%d: %v has stale marks after sweep", workers, s)
			}
		}
		return r
	}
	seq := capture(0)
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			par := capture(workers)
			if par.swept != seq.swept {
				t.Errorf("WordsSwept = %d, sequential %d", par.swept, seq.swept)
			}
			for i := range seq.mem {
				for off, w := range seq.mem[i] {
					if par.mem[i][off] != w {
						t.Fatalf("space %d diverges at %d: %#x != %#x",
							i, off, uint64(par.mem[i][off]), uint64(w))
					}
				}
				for b, fh := range seq.free[i] {
					if par.free[i][b] != fh {
						t.Fatalf("space %d block %d free head diverges: %d != %d",
							i, b, par.free[i][b], fh)
					}
				}
				for b, mr := range seq.maxrun[i] {
					if par.maxrun[i][b] != mr {
						t.Fatalf("space %d block %d max run diverges: %d != %d",
							i, b, par.maxrun[i][b], mr)
					}
				}
			}
		})
	}
}

// TestSweepSteadyStateZeroAllocs guards the sequential and solo sweep paths:
// a reused Sweeper must not allocate per collection.
func TestSweepSteadyStateZeroAllocs(t *testing.T) {
	for _, workers := range []int{0, 1} {
		h, spaces := buildSweepFixture(47, workers)
		sw := NewSweeper(h)
		sw.Sweep(spaces...) // warm the flattening buffers
		// Pre-compute the re-mark schedule so the measured loop is pure
		// bitmap stores plus the sweep itself.
		markOffs := make([][]int, len(spaces))
		for i, s := range spaces {
			i := i
			WalkSpace(s, func(off int, hdr Word) bool {
				if HeaderType(hdr) != TFree && off%128 == 0 {
					markOffs[i] = append(markOffs[i], off)
				}
				return true
			})
		}
		if n := testing.AllocsPerRun(10, func() {
			for i, s := range spaces {
				for _, off := range markOffs[i] {
					s.SetMarkAt(off)
				}
			}
			sw.Sweep(spaces...)
		}); n != 0 {
			t.Errorf("workers=%d: steady-state sweep allocates %.1f times per run, want 0", workers, n)
		}
	}
}

// TestSweeperRejectsUnblockedSpace: the engine is only defined over spaces
// with block tables.
func TestSweeperRejectsUnblockedSpace(t *testing.T) {
	h := New()
	s := h.NewSpace("plain", 1024)
	defer func() {
		if recover() == nil {
			t.Error("sweeping a space without a block table did not panic")
		}
	}()
	NewSweeper(h).Sweep(s)
}
