package heap

import "fmt"

// Check validates the heap's structural invariants: every space below its
// bump pointer parses as a sequence of well-formed blocks, no block carries
// a stale mark bit, and every pointer reachable from the roots targets a
// valid object header. Tests call it after collections; it is too slow for
// production paths.
func Check(h *Heap) error {
	for _, s := range h.Spaces {
		if !s.MarksClear() {
			return fmt.Errorf("heap.Check: %v: mark bitmap not clear", s)
		}
		off := 0
		for off < s.Top {
			hdr := s.Mem[off]
			if !IsHeader(hdr) {
				return fmt.Errorf("heap.Check: %v: word %d is not a header (%#x)", s, off, uint64(hdr))
			}
			if Marked(hdr) {
				return fmt.Errorf("heap.Check: %v: stale mark bit at %d", s, off)
			}
			if t := HeaderType(hdr); t >= numTypes {
				return fmt.Errorf("heap.Check: %v: bad type %d at %d", s, t, off)
			}
			n := ObjWords(hdr)
			if n <= 0 || off+n > s.Top {
				return fmt.Errorf("heap.Check: %v: block at %d overruns (size %d)", s, off, n)
			}
			off += n
		}
		if off != s.Top {
			return fmt.Errorf("heap.Check: %v: parse ended at %d, top %d", s, off, s.Top)
		}
	}

	var err error
	seen := map[Word]bool{}
	var walk func(w Word)
	walk = func(w Word) {
		if err != nil || !IsPtr(w) || seen[w] {
			return
		}
		seen[w] = true
		if int(PtrSpace(w)) >= len(h.Spaces) {
			err = fmt.Errorf("heap.Check: pointer to unknown space %d", PtrSpace(w))
			return
		}
		s := h.Spaces[PtrSpace(w)]
		off := PtrOff(w)
		if off >= s.Top {
			err = fmt.Errorf("heap.Check: pointer past bump pointer: %v off %d", s, off)
			return
		}
		hdr := s.Mem[off]
		if !IsHeader(hdr) {
			err = fmt.Errorf("heap.Check: pointer to non-header at %v off %d", s, off)
			return
		}
		if HeaderType(hdr) == TFree {
			err = fmt.Errorf("heap.Check: reachable pointer into free block at %v off %d", s, off)
			return
		}
		ScanObject(s, off, func(slot *Word) { walk(*slot) })
	}
	h.VisitRoots(func(slot *Word) { walk(*slot) })
	return err
}
