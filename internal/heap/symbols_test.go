package heap

import "testing"

// movingAlloc wraps two spaces and a trivial copying collection, to test
// that interning survives object motion.
type movingAlloc struct {
	h        *Heap
	from, to *Space
}

func (a *movingAlloc) AllocRaw(t Type, payload int) Word {
	total := 1 + payload + a.h.ExtraWords()
	off, ok := a.from.Bump(total)
	if !ok {
		panic("movingAlloc: full")
	}
	return a.h.InitObject(a.from, off, t, payload)
}

func (a *movingAlloc) flip() {
	e := NewEvacuator(a.h, func(w Word) bool { return PtrSpace(w) == a.from.ID }, a.to)
	e.Run()
	a.from.Reset()
	a.from, a.to = a.to, a.from
}

func TestInternSurvivesObjectMotion(t *testing.T) {
	h := New()
	a := &movingAlloc{h: h, from: h.NewSpace("A", 4096), to: h.NewSpace("B", 4096)}
	h.SetAllocator(a)

	s := h.Scope()
	defer s.Close()
	x1 := h.Intern("rewrite")
	before := h.Get(x1)
	a.flip() // the symbol object moves

	x2 := h.Intern("rewrite")
	if !h.Eq(x1, x2) {
		t.Error("interning broke across a copying collection")
	}
	if h.Get(x1) == before {
		t.Error("symbol did not actually move; test is vacuous")
	}
	if got := h.SymbolName(x2); got != "rewrite" {
		t.Errorf("SymbolName = %q", got)
	}
	// A structure built around the symbol keeps identity too.
	p := h.Cons(x1, h.Null())
	a.flip()
	if !h.Eq(h.Car(p), h.Intern("rewrite")) {
		t.Error("symbol identity in structure broke across motion")
	}
}
