package heap

import (
	"math/rand"
	"testing"
)

// TestBitmapMatchesHeaderOracle drives the side mark bitmap against the
// retained header-bit helpers (Marked/SetMark/ClearMark on a shadow copy of
// the headers) under randomized alloc/mark/clear schedules: every object's
// bitmap state must agree with the oracle after every step, and a full
// ClearMarks must restore MarksClear.
func TestBitmapMatchesHeaderOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 20; round++ {
		h := New()
		s := h.NewBlockedSpace("oracle", 4*BlockWords+177)

		// Random allocation schedule: carve objects of random size out of
		// random blocks until a stretch of failures, leaving a mix of
		// objects, free blocks, and one-word slack.
		var offs []int
		oracle := map[int]Word{} // off -> shadow header word
		for misses := 0; misses < 32; {
			b := rng.Intn(s.NumBlocks())
			n := 1 + rng.Intn(12)
			off, ok := s.AllocFromBlock(b, n)
			if !ok {
				misses++
				continue
			}
			hdr := HeaderWord(TVector, n-1)
			s.Mem[off] = hdr
			for i := 1; i < n; i++ {
				s.Mem[off+i] = FixnumWord(int64(off + i))
			}
			offs = append(offs, off)
			oracle[off] = hdr
		}
		if len(offs) < 10 {
			t.Fatalf("round %d: allocation schedule produced only %d objects", round, len(offs))
		}

		check := func(when string) {
			t.Helper()
			for _, off := range offs {
				if s.MarkedAt(off) != Marked(oracle[off]) {
					t.Fatalf("round %d, %s: off %d bitmap=%v oracle=%v",
						round, when, off, s.MarkedAt(off), Marked(oracle[off]))
				}
			}
		}

		for step := 0; step < 200; step++ {
			off := offs[rng.Intn(len(offs))]
			switch rng.Intn(3) {
			case 0:
				s.SetMarkAt(off)
				oracle[off] = SetMark(oracle[off])
			case 1:
				s.ClearMarkAt(off)
				oracle[off] = ClearMark(oracle[off])
			case 2:
				won := s.TryMarkAtomic(off)
				if won == Marked(oracle[off]) {
					t.Fatalf("round %d: TryMarkAtomic(%d) claim=%v with oracle mark=%v",
						round, off, won, Marked(oracle[off]))
				}
				oracle[off] = SetMark(oracle[off])
			}
			check("after step")
		}

		ClearMarks(s)
		for off := range oracle {
			oracle[off] = ClearMark(oracle[off])
		}
		check("after ClearMarks")
		if !s.MarksClear() {
			t.Fatalf("round %d: MarksClear false after ClearMarks", round)
		}
		// The bitmap never touched the headers: the space must still parse
		// with the original header words.
		WalkSpace(s, func(off int, hdr Word) bool {
			if want, ok := oracle[off]; ok && hdr != ClearMark(want) {
				t.Fatalf("round %d: header at %d changed: %#x", round, off, uint64(hdr))
			}
			return true
		})
	}
}

// TestClearMarksIsPerBlock pins the satellite fix for the old O(whole-space)
// unmark pass: marking one object in a huge space and clearing must not
// touch the other blocks' bitmap words. We can't observe stores directly, so
// we pin the dirty-summary contract: after ClearMarks the summary is empty
// and a second ClearMarks finds nothing to do (MarksClear scans prove the
// bitmap truly cleared either way).
func TestClearMarksIsPerBlock(t *testing.T) {
	h := New()
	s := h.NewSpace("wide", 512*BlockWords)
	s.Mem[5*BlockWords+7] = HeaderWord(TPair, 2)
	s.SetMarkAt(5*BlockWords + 7)
	if s.MarksClear() {
		t.Fatal("mark did not land in the bitmap")
	}
	ClearMarks(s)
	if !s.MarksClear() {
		t.Fatal("ClearMarks left a stale bit")
	}
}

// TestClearMarksSteadyStateZeroAllocs guards the per-block unmark path: a
// mark/clear cycle over a populated space must not allocate.
func TestClearMarksSteadyStateZeroAllocs(t *testing.T) {
	h := New()
	s := h.NewBlockedSpace("guard", 8*BlockWords)
	var offs []int
	for b := 0; b < s.NumBlocks(); b++ {
		for {
			off, ok := s.AllocFromBlock(b, 4)
			if !ok {
				break
			}
			s.Mem[off] = HeaderWord(TVector, 3)
			offs = append(offs, off)
		}
	}
	marked := 0
	if n := testing.AllocsPerRun(20, func() {
		for _, off := range offs {
			s.SetMarkAt(off)
		}
		ClearMarks(s)
		marked = len(offs)
	}); n != 0 {
		t.Errorf("mark+ClearMarks cycle allocates %.1f times per run, want 0", n)
	}
	if marked == 0 || !s.MarksClear() {
		t.Fatalf("guard did not measure real work: %d objects", marked)
	}
}

// TestResizeTracksBitmaps: growing a space through Resize must size the
// bitmaps to the new capacity so marks at high offsets land.
func TestResizeTracksBitmaps(t *testing.T) {
	h := New()
	s := h.NewSpace("grow", 256)
	s.Resize(64 * BlockWords)
	off := 63*BlockWords + 11
	s.Mem[off] = HeaderWord(TPair, 2)
	s.SetMarkAt(off)
	if !s.MarkedAt(off) {
		t.Fatal("mark at high offset lost after Resize")
	}
	ClearMarks(s)
	if !s.MarksClear() {
		t.Fatal("ClearMarks after Resize left a stale bit")
	}
}
