package heap

import "testing"

func TestSpaceSetBasics(t *testing.T) {
	var ss SpaceSet
	if !ss.Empty() || ss.Len() != 0 || ss.Has(0) {
		t.Fatal("zero value is not an empty set")
	}

	ss.Add(3)
	ss.Add(64) // second backing word
	ss.Add(200)
	if ss.Empty() || ss.Len() != 3 {
		t.Fatalf("Len = %d after 3 adds, want 3", ss.Len())
	}
	for _, id := range []SpaceID{3, 64, 200} {
		if !ss.Has(id) {
			t.Errorf("Has(%d) = false after Add", id)
		}
	}
	for _, id := range []SpaceID{0, 2, 4, 63, 65, 199, 201} {
		if ss.Has(id) {
			t.Errorf("Has(%d) = true, never added", id)
		}
	}
	// IDs beyond the backing array are absent, not a panic: a set built at
	// collection start must reject pointers into spaces created
	// mid-collection.
	if ss.Has(60000) {
		t.Error("Has far beyond the backing array = true")
	}

	ss.Remove(64)
	if ss.Has(64) || ss.Len() != 2 {
		t.Errorf("Remove(64) left Has=%v Len=%d", ss.Has(64), ss.Len())
	}
	ss.Remove(60000) // beyond the array: a no-op, not a grow or panic
	if ss.Len() != 2 {
		t.Error("Remove beyond the array changed the set")
	}

	ss.Clear()
	if !ss.Empty() || ss.Has(3) || ss.Has(200) {
		t.Error("Clear left members behind")
	}
}

func TestSpaceSetHasPtr(t *testing.T) {
	var ss SpaceSet
	ss.Add(5)
	if !ss.HasPtr(PtrWord(5, 123)) {
		t.Error("HasPtr missed a pointer into a member space")
	}
	if ss.HasPtr(PtrWord(6, 123)) {
		t.Error("HasPtr accepted a pointer into a non-member space")
	}
}

// TestSpaceSetClearRetainsCapacity pins the zero-alloc re-arm contract:
// Clear must keep the grown backing array so SetFrom/SetRegion cycles
// allocate nothing in steady state.
func TestSpaceSetClearRetainsCapacity(t *testing.T) {
	var ss SpaceSet
	ss.Add(300)
	allocs := testing.AllocsPerRun(10, func() {
		ss.Clear()
		ss.Add(300)
		ss.Add(7)
	})
	if allocs != 0 {
		t.Errorf("Clear+Add re-arm allocates %.0f objects/run, want 0", allocs)
	}
}
