package heap

import "testing"

func TestWalkSpaceVisitsEveryBlockInOrder(t *testing.T) {
	h := New()
	s := h.NewSpace("walk", 64)
	buildChain(t, h, s, 3) // pairs at 0, 3, 6
	// A free block and a raw object complete the block zoo.
	off, _ := s.Bump(4)
	s.Mem[off] = HeaderWord(TFree, 3)
	fOff, _ := s.Bump(2)
	h.InitObject(s, fOff, TFlonum, 1)

	var offs []int
	var types []Type
	WalkSpace(s, func(o int, hdr Word) bool {
		offs = append(offs, o)
		types = append(types, HeaderType(hdr))
		return true
	})
	wantOffs := []int{0, 3, 6, 9, 13}
	wantTypes := []Type{TPair, TPair, TPair, TFree, TFlonum}
	if len(offs) != len(wantOffs) {
		t.Fatalf("visited %v, want %v", offs, wantOffs)
	}
	for i := range wantOffs {
		if offs[i] != wantOffs[i] || types[i] != wantTypes[i] {
			t.Errorf("block %d: (%d, %v), want (%d, %v)", i, offs[i], types[i], wantOffs[i], wantTypes[i])
		}
	}
}

func TestWalkSpaceEarlyStop(t *testing.T) {
	h := New()
	s := h.NewSpace("walk", 64)
	buildChain(t, h, s, 5)
	n := 0
	WalkSpace(s, func(int, Word) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("visited %d blocks after stop, want 2", n)
	}
}

func TestWalkSpacePanicsOnCorruptSpace(t *testing.T) {
	h := New()
	s := h.NewSpace("walk", 64)
	buildChain(t, h, s, 2)
	s.Mem[3] = FixnumWord(9)
	defer func() {
		if recover() == nil {
			t.Error("WalkSpace did not panic on a non-header word")
		}
	}()
	WalkSpace(s, func(int, Word) bool { return true })
}

func TestScanObjectSkipsRawPayloads(t *testing.T) {
	h := New()
	s := h.NewSpace("scan", 64)
	pOff, _ := s.Bump(3)
	h.InitObject(s, pOff, TPair, 2)
	fOff, _ := s.Bump(2)
	h.InitObject(s, fOff, TFlonum, 1)
	// Flonum bits can collide with the pointer tag; ScanObject must never
	// show them to a visitor.
	s.Mem[fOff+1] = Word(0xdeadbeef)<<2 | TagPtr

	count := func(off int) int {
		n := 0
		ScanObject(s, off, func(*Word) { n++ })
		return n
	}
	if got := count(pOff); got != 2 {
		t.Errorf("pair scanned %d slots, want 2", got)
	}
	if got := count(fOff); got != 0 {
		t.Errorf("flonum scanned %d slots, want 0", got)
	}
}

func TestScanObjectIncludesCensusWord(t *testing.T) {
	h := New(WithCensus())
	s := h.NewSpace("scan", 64)
	off, _ := s.Bump(4)
	h.InitObject(s, off, TPair, 2)
	n := 0
	ScanObject(s, off, func(slot *Word) {
		if n == 0 && !IsFixnum(*slot) {
			t.Error("first visited slot should be the fixnum birth stamp")
		}
		n++
	})
	if n != 3 {
		t.Errorf("scanned %d slots, want 3 (stamp + car + cdr)", n)
	}
}

func TestLiveWordsExcludesFreeBlocks(t *testing.T) {
	h := New()
	s := h.NewSpace("live", 64)
	buildChain(t, h, s, 2) // 6 live words
	off, _ := s.Bump(5)
	s.Mem[off] = HeaderWord(TFree, 4)
	if got := LiveWords(s); got != 6 {
		t.Errorf("LiveWords = %d, want 6", got)
	}
}
