package heap

// WalkSpace visits every block in s below the bump pointer, in address
// order, including TFree blocks in mark/sweep-managed spaces. The callback
// receives the block's header offset and header word; returning false stops
// the walk. Spaces stay linearly parsable at all times, which this relies on.
func WalkSpace(s *Space, f func(off int, hdr Word) bool) {
	for off := 0; off < s.Top; {
		hdr := s.Mem[off]
		if !IsHeader(hdr) {
			panic("heap: space not parsable (corrupt or mid-collection)")
		}
		if !f(off, hdr) {
			return
		}
		off += ObjWords(hdr)
	}
}

// ScanObject applies visit to every payload slot of the object at offset
// off in space s that could hold a pointer. Raw-payload objects (flonums,
// bytevectors) are skipped entirely; the hidden census word is a fixnum and
// is visited harmlessly.
func ScanObject(s *Space, off int, visit func(slot *Word)) {
	hdr := s.Mem[off]
	if RawPayload(HeaderType(hdr)) {
		return
	}
	size := HeaderSize(hdr)
	for i := off + 1; i <= off+size; i++ {
		visit(&s.Mem[i])
	}
}

// LiveWords sums the footprints of non-free blocks in s.
func LiveWords(s *Space) int {
	n := 0
	WalkSpace(s, func(_ int, hdr Word) bool {
		if HeaderType(hdr) != TFree {
			n += ObjWords(hdr)
		}
		return true
	})
	return n
}
