package heap

import "fmt"

// Evacuator is a generic Cheney copying engine. Every copying collection in
// the repository — semispace flips, nursery evacuations, promotions, and the
// non-predictive collector's older-first collections — is an Evacuator run
// with a different from-region predicate and target list.
//
// An Evacuator is built once per collector and re-armed with Begin before
// each collection: the target list and Cheney scan state reuse their
// backing arrays, so steady-state collections allocate nothing.
//
// Usage: configure H and InFrom; call Begin with the collection's targets;
// call Evacuate on every root slot (and remembered-set slot); then call
// Drain. After Drain returns, every object reachable from the visited slots
// has been copied out of the from-region and all copied slots have been
// updated.
type Evacuator struct {
	H      *Heap
	InFrom func(w Word) bool // does this pointer target the from-region?

	// Targets are filled in order; an object is copied into the first
	// target with room. Collectors must provide enough total room for the
	// worst case (all of from-region live) or set Overflow.
	Targets []*Space

	// Overflow, when non-nil, is called with the failing request size when
	// every target is full; it must return a fresh space, which is appended
	// to Targets. When nil, overflow panics.
	Overflow func(need int) *Space

	// scanBase[i] is the offset in Targets[i] where this run's copies began.
	scanBase []int
	// scan[i] is the per-target scan cursor for the gray region.
	scan []int

	// evacSlot is the stored slot-visitor closure, created once so passing
	// it to VisitRoots/ScanObject never allocates.
	evacSlot func(slot *Word)

	WordsCopied   uint64
	ObjectsCopied int
}

// NewEvacuator prepares an engine whose copies land in targets, recording
// the current tops so only newly copied objects are scanned.
func NewEvacuator(h *Heap, inFrom func(w Word) bool, targets ...*Space) *Evacuator {
	e := &Evacuator{H: h, InFrom: inFrom}
	e.evacSlot = e.Evacuate
	e.Begin(targets...)
	return e
}

// Begin re-arms the evacuator for a new collection whose copies land in
// targets: the work counters reset, the current target tops are recorded as
// scan bases, and all internal slices reuse their backing arrays. InFrom
// and Overflow are left as configured.
func (e *Evacuator) Begin(targets ...*Space) {
	e.Targets = append(e.Targets[:0], targets...)
	e.scanBase = e.scanBase[:0]
	e.scan = e.scan[:0]
	for _, t := range e.Targets {
		e.scanBase = append(e.scanBase, t.Top)
		e.scan = append(e.scan, t.Top)
	}
	e.WordsCopied = 0
	e.ObjectsCopied = 0
}

// Slot returns the evacuator's stored slot-visitor function. Passing it to
// a root iterator (instead of the Evacuate method value) avoids allocating
// a fresh bound-method closure at every collection.
func (e *Evacuator) Slot() func(slot *Word) { return e.evacSlot }

// Evacuate processes one slot: if it holds a pointer into the from-region,
// the target object is copied (or its existing forwarding followed) and the
// slot updated.
func (e *Evacuator) Evacuate(slot *Word) {
	w := *slot
	if !IsPtr(w) || !e.InFrom(w) {
		return
	}
	s := e.H.SpaceOf(w)
	off := PtrOff(w)
	hdr := s.Mem[off]
	if IsPtr(hdr) { // already forwarded: header slot holds the new address
		*slot = hdr
		return
	}
	n := ObjWords(hdr)
	toSpace, toOff := e.reserve(n)
	copy(toSpace.Mem[toOff:toOff+n], s.Mem[off:off+n])
	fwd := PtrWord(toSpace.ID, toOff)
	s.Mem[off] = fwd
	*slot = fwd
	e.WordsCopied += uint64(n)
	e.ObjectsCopied++
}

func (e *Evacuator) reserve(n int) (*Space, int) {
	for _, t := range e.Targets {
		if off, ok := t.Bump(n); ok {
			return t, off
		}
	}
	if e.Overflow != nil {
		t := e.Overflow(n)
		e.Targets = append(e.Targets, t)
		e.scanBase = append(e.scanBase, t.Top)
		e.scan = append(e.scan, t.Top)
		if off, ok := t.Bump(n); ok {
			return t, off
		}
	}
	panic(fmt.Sprintf("heap: evacuation overflow: no target space has %d free words", n))
}

// Drain scans the gray region of every target, evacuating whatever the
// copied objects reference, until no gray objects remain.
func (e *Evacuator) Drain() {
	for {
		progress := false
		for i, t := range e.Targets {
			for e.scan[i] < t.Top {
				progress = true
				off := e.scan[i]
				hdr := t.Mem[off]
				ScanObject(t, off, e.evacSlot)
				e.scan[i] = off + ObjWords(hdr)
			}
		}
		if !progress {
			return
		}
	}
}

// EvacuateRoots evacuates every heap root slot without draining; callers
// with extra roots (remembered sets) evacuate those next, then Drain.
func (e *Evacuator) EvacuateRoots() { e.H.VisitRoots(e.evacSlot) }

// CopiedRegions calls f for every target region that received copies during
// this run, with the offset where the run's copies began and the current
// top. Collectors use it to rescan exactly the promoted objects (e.g. the
// hybrid's situation-5 remembered-set rebuild).
func (e *Evacuator) CopiedRegions(f func(s *Space, from, to int)) {
	for i, t := range e.Targets {
		if e.scanBase[i] < t.Top {
			f(t, e.scanBase[i], t.Top)
		}
	}
}

// Run is the common whole-collection shape: evacuate all heap roots, then
// drain. Collectors with extra roots (remembered sets) evacuate those
// explicitly before calling Drain instead.
func (e *Evacuator) Run() {
	e.EvacuateRoots()
	e.Drain()
}
