package heap

import "fmt"

// Evacuator is a generic Cheney copying engine. Every copying collection in
// the repository — semispace flips, nursery evacuations, promotions, and the
// non-predictive collector's older-first collections — is an Evacuator run
// with a different from-region and target list.
//
// An Evacuator is built once per collector and re-armed with Begin before
// each collection: the target list and Cheney scan state reuse their
// backing arrays, so steady-state collections allocate nothing.
//
// The from-region is declared as a set of spaces (SetFrom / From), so the
// per-slot membership test is a bit test rather than an indirect call. The
// InFrom predicate remains as a slow-path escape hatch for oddball
// from-regions that are not a union of spaces.
//
// Usage: configure H and the from-region; call Begin with the collection's
// targets; call Evacuate on every root slot (and remembered-set slot); then
// call Drain. After Drain returns, every object reachable from the visited
// slots has been copied out of the from-region and all copied slots have
// been updated.
type Evacuator struct {
	H *Heap

	// InFrom, when non-nil, overrides the from-set: it is consulted per
	// pointer instead of the bitset. This is the slow-path escape hatch;
	// collectors on the hot path use SetFrom.
	InFrom func(w Word) bool

	// Targets are filled in order; an object is copied into the first
	// target with room. Collectors must provide enough total room for the
	// worst case (all of from-region live) or set Overflow.
	Targets []*Space

	// Overflow, when non-nil, is called with the failing request size when
	// every target is full; it must return a fresh space with room for the
	// request, which is appended to Targets. When nil, overflow panics.
	Overflow func(need int) *Space

	// from is the fast-path from-region: a bitset of SpaceIDs.
	from SpaceSet

	// spaces caches H.Spaces for the duration of a run, saving a pointer
	// chase per forwarded object. Begin refreshes it; reserve re-refreshes
	// after Overflow registers a new space.
	spaces []*Space

	// extra caches H.ExtraWords() so the fused drain can skip the hidden
	// census word without a per-object heap dereference.
	extra int

	// moved caches the heap's move hook for the duration of a run, so the
	// uninstrumented forward path pays one nil check per copied object.
	moved func(old, new Word)

	// scanBase[i] is the offset in Targets[i] where this run's copies began.
	scanBase []int
	// scan[i] is the per-target scan cursor for the gray region.
	scan []int

	// par is the lazily created parallel-drain machinery (parevac.go),
	// persistent so steady-state parallel drains allocate nothing.
	par *parEvac

	// evacSlot is the stored slot-visitor closure, created once so passing
	// it to VisitRoots/ScanObject never allocates.
	evacSlot func(slot *Word)

	// ten is the lazily created age-routing machinery (tenure.go),
	// persistent so steady-state tenured collections allocate nothing. It
	// is only consulted by the BeginTenured/DrainTenured entry points; the
	// wholesale paths above never touch it.
	ten *tenureState

	WordsCopied   uint64
	ObjectsCopied int

	// WordsPromoted and WordsRetained split WordsCopied for tenured runs
	// (tenure.go): words that reached the old targets versus words kept in
	// the survivor shadow. Both stay 0 on wholesale runs, where every
	// copied word is a promotion decision left to the collector.
	WordsPromoted uint64
	WordsRetained uint64
}

// NewEvacuator prepares an engine whose copies land in targets, recording
// the current tops so only newly copied objects are scanned. inFrom may be
// nil; hot-path collectors declare their from-region with SetFrom instead.
func NewEvacuator(h *Heap, inFrom func(w Word) bool, targets ...*Space) *Evacuator {
	e := &Evacuator{H: h, InFrom: inFrom}
	e.evacSlot = e.Evacuate
	e.Begin(targets...)
	return e
}

// SetFrom declares the from-region as exactly the given spaces, routing the
// per-slot test through the bitset fast path (any InFrom predicate is
// cleared). The set's backing array is reused, so re-arming between
// collections allocates nothing.
func (e *Evacuator) SetFrom(spaces ...*Space) {
	e.InFrom = nil
	e.from.Clear()
	for _, s := range spaces {
		e.from.Add(s.ID)
	}
}

// From exposes the from-set for incremental population (e.g. the step
// machinery adding steps j+1..k one by one). The set is only consulted
// while InFrom is nil. Member spaces must exist before the run begins.
func (e *Evacuator) From() *SpaceSet { return &e.from }

// Begin re-arms the evacuator for a new collection whose copies land in
// targets: the work counters reset, the current target tops are recorded as
// scan bases, the space cache refreshes, and all internal slices reuse
// their backing arrays. The from-region and Overflow are left as
// configured.
func (e *Evacuator) Begin(targets ...*Space) {
	e.Targets = append(e.Targets[:0], targets...)
	e.scanBase = e.scanBase[:0]
	e.scan = e.scan[:0]
	for _, t := range e.Targets {
		e.scanBase = append(e.scanBase, t.Top)
		e.scan = append(e.scan, t.Top)
	}
	e.spaces = e.H.Spaces
	e.extra = e.H.extraWords
	e.moved = e.H.moved
	e.WordsCopied = 0
	e.ObjectsCopied = 0
	e.WordsPromoted = 0
	e.WordsRetained = 0
	if e.ten != nil {
		e.ten.armed = false
	}
}

// Slot returns the evacuator's stored slot-visitor function. Passing it to
// a root iterator (instead of the Evacuate method value) avoids allocating
// a fresh bound-method closure at every collection.
func (e *Evacuator) Slot() func(slot *Word) { return e.evacSlot }

// inFrom reports whether pointer w targets the from-region: the bitset on
// the fast path, the InFrom predicate when the escape hatch is armed.
func (e *Evacuator) inFrom(w Word) bool {
	if e.InFrom != nil {
		return e.InFrom(w)
	}
	return e.from.HasPtr(w)
}

// Evacuate processes one slot: if it holds a pointer into the from-region,
// the target object is copied (or its existing forwarding followed) and the
// slot updated.
func (e *Evacuator) Evacuate(slot *Word) {
	w := *slot
	if !IsPtr(w) || !e.inFrom(w) {
		return
	}
	*slot = e.forward(w)
}

// forward copies the object w points to out of the from-region (or follows
// its existing forwarding pointer) and returns its new address.
func (e *Evacuator) forward(w Word) Word {
	id := PtrSpace(w)
	if int(id) >= len(e.spaces) {
		// Only an InFrom escape-hatch predicate can admit a space created
		// after Begin; refresh the cache rather than mis-index it.
		e.spaces = e.H.Spaces
	}
	s := e.spaces[id]
	off := PtrOff(w)
	hdr := s.Mem[off]
	if IsPtr(hdr) { // already forwarded: header slot holds the new address
		return hdr
	}
	n := ObjWords(hdr)
	toSpace, toOff := e.reserve(n)
	copy(toSpace.Mem[toOff:toOff+n], s.Mem[off:off+n])
	fwd := PtrWord(toSpace.ID, toOff)
	s.Mem[off] = fwd
	e.WordsCopied += uint64(n)
	e.ObjectsCopied++
	if e.moved != nil {
		e.moved(w, fwd)
	}
	return fwd
}

func (e *Evacuator) reserve(n int) (*Space, int) {
	for _, t := range e.Targets {
		if off, ok := t.Bump(n); ok {
			return t, off
		}
	}
	if e.Overflow != nil {
		t := e.Overflow(n)
		// Validate before adopting: appending an unusable space to
		// Targets/scan/scanBase would leave the engine inconsistent when
		// the panic below fires.
		if t == nil {
			panic(fmt.Sprintf("heap: evacuation overflow: Overflow returned nil for a %d-word request", n))
		}
		if t.Free() < n {
			panic(fmt.Sprintf("heap: evacuation overflow: Overflow returned space %q with %d free words, too small for %d",
				t.Name, t.Free(), n))
		}
		e.Targets = append(e.Targets, t)
		e.scanBase = append(e.scanBase, t.Top)
		e.scan = append(e.scan, t.Top)
		e.spaces = e.H.Spaces // Overflow registered a new space
		off, _ := t.Bump(n)
		return t, off
	}
	panic(fmt.Sprintf("heap: evacuation overflow: no target space has %d free words", n))
}

// Drain scans the gray region of every target, evacuating whatever the
// copied objects reference, until no gray objects remain. The scan is fused
// with evacuation: payload words are iterated directly over the target's
// Mem slice — no per-object visitor call, no per-slot closure — with
// raw-payload objects and the hidden census word skipped by header
// inspection. SetReferenceTracer reroutes this through the retained
// callback-based reference implementation, which produces bit-identical
// heaps and identical work counters.
func (e *Evacuator) Drain() {
	if refTracer {
		e.drainReference()
		return
	}
	// The parallel engine requires the fast from-bitset (no InFrom escape
	// hatch) and no move hook: per-object hooks would fire concurrently and
	// out of allocation order, so instrumented runs (trace recording) fall
	// back to the sequential drain.
	if w := e.H.gcWorkers; w > 0 && e.InFrom == nil && e.moved == nil {
		e.drainParallel(w)
		return
	}
	// Hoist the from-region dispatch out of the per-slot loop: fastFrom
	// selects the bitset test once, so the escape hatch costs nothing when
	// unarmed.
	fastFrom := e.InFrom == nil
	for {
		progress := false
		// Targets appended by Overflow mid-pass are picked up on the next
		// pass, exactly as the reference tracer's range does, so both
		// tracers forward objects in the same order.
		for i, nT := 0, len(e.Targets); i < nT; i++ {
			t := e.Targets[i]
			mem := t.Mem
			scan := e.scan[i]
			for scan < t.Top {
				progress = true
				hdr := mem[scan]
				n := ObjWords(hdr)
				if !RawPayload(HeaderType(hdr)) {
					for si, end := scan+1+e.extra, scan+n; si < end; si++ {
						w := mem[si]
						if !IsPtr(w) {
							continue
						}
						if fastFrom {
							if !e.from.Has(PtrSpace(w)) {
								continue
							}
						} else if !e.InFrom(w) {
							continue
						}
						mem[si] = e.forward(w)
					}
				}
				scan += n
			}
			e.scan[i] = scan
		}
		if !progress {
			return
		}
	}
}

// drainReference is the retained callback-per-slot tracer: one ScanObject
// visitor invocation per gray object, one closure call per slot. The
// differential conformance tests hold the fused Drain to this
// implementation's heap images and word counts.
func (e *Evacuator) drainReference() {
	for {
		progress := false
		for i, t := range e.Targets {
			for e.scan[i] < t.Top {
				progress = true
				off := e.scan[i]
				hdr := t.Mem[off]
				ScanObject(t, off, e.evacSlot)
				e.scan[i] = off + ObjWords(hdr)
			}
		}
		if !progress {
			return
		}
	}
}

// EvacuateRoots evacuates every heap root slot without draining; callers
// with extra roots (remembered sets) evacuate those next, then Drain.
func (e *Evacuator) EvacuateRoots() { e.H.VisitRoots(e.evacSlot) }

// CopiedRegions calls f for every target region that received copies during
// this run, with the offset where the run's copies began and the current
// top. Collectors use it to rescan exactly the promoted objects (e.g. the
// hybrid's situation-5 remembered-set rebuild).
func (e *Evacuator) CopiedRegions(f func(s *Space, from, to int)) {
	for i, t := range e.Targets {
		if e.scanBase[i] < t.Top {
			f(t, e.scanBase[i], t.Top)
		}
	}
}

// Run is the common whole-collection shape: evacuate all heap roots, then
// drain. Collectors with extra roots (remembered sets) evacuate those
// explicitly before calling Drain instead.
func (e *Evacuator) Run() {
	e.EvacuateRoots()
	e.Drain()
}
