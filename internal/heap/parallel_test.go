package heap

import (
	"sort"
	"sync"
	"testing"
)

// buildForest hand-allocates a wide forest in s — chains pair-chains of
// length chainLen, each individually rooted — so a parallel drain has many
// independent branches to distribute. Returns the per-chain root refs.
func buildForest(t testing.TB, h *Heap, s *Space, chains, chainLen int) []Ref {
	t.Helper()
	roots := make([]Ref, chains)
	for c := 0; c < chains; c++ {
		roots[c] = h.GlobalWord(buildChain(t, h, s, chainLen))
	}
	return roots
}

// snapshot copies the used prefix of a space's memory for image comparison.
func snapshot(s *Space) []Word {
	return append([]Word(nil), s.Mem[:s.Top]...)
}

// TestParallelMarkMatchesSequential checks the mark engine's strictest
// contract: for every worker count the final mark-bit image (every header
// word of the heap), WordsMarked, and ObjectsMarked are bit-identical to
// the sequential drain.
func TestParallelMarkMatchesSequential(t *testing.T) {
	h := New()
	s := h.NewSpace("forest", 1<<17)
	buildForest(t, h, s, 64, 100)

	m := NewMarker(h, nil)
	m.Run()
	wantWords, wantObjs := m.WordsMarked, m.ObjectsMarked
	wantImage := snapshot(s)
	ClearMarks(s)

	for _, workers := range []int{1, 2, 4, 8} {
		h.SetGCWorkers(workers)
		m.Begin()
		m.Run()
		if m.WordsMarked != wantWords || m.ObjectsMarked != wantObjs {
			t.Errorf("workers=%d: marked %d words / %d objects, sequential marked %d / %d",
				workers, m.WordsMarked, m.ObjectsMarked, wantWords, wantObjs)
		}
		got := snapshot(s)
		for i := range wantImage {
			if got[i] != wantImage[i] {
				t.Errorf("workers=%d: heap image diverges at word %d: got %#x want %#x",
					workers, i, got[i], wantImage[i])
				break
			}
		}
		ClearMarks(s)
	}
	h.SetGCWorkers(0)
}

// TestParallelMarkBoundedRegion checks the region bitset bound is honored
// by parallel workers: pointers out of the region are leaves, exactly as in
// the sequential drain.
func TestParallelMarkBoundedRegion(t *testing.T) {
	h := New()
	in := h.NewSpace("in-region", 1<<14)
	out := h.NewSpace("out-region", 1<<14)

	// A chain in `in` whose head pair also points at a chain in `out`.
	inHead := buildChain(t, h, in, 200)
	outHead := buildChain(t, h, out, 200)
	off, _ := in.Bump(3)
	root := h.InitObject(in, off, TPair, 2)
	in.Mem[off+1] = inHead
	in.Mem[off+2] = outHead
	h.GlobalWord(root)

	m := NewMarker(h, nil)
	m.SetRegion(in)
	m.Run()
	wantWords, wantObjs := m.WordsMarked, m.ObjectsMarked
	wantOut := snapshot(out)
	ClearMarks(in, out)

	for _, workers := range []int{1, 4} {
		h.SetGCWorkers(workers)
		m.Begin()
		m.SetRegion(in)
		m.Run()
		if m.WordsMarked != wantWords || m.ObjectsMarked != wantObjs {
			t.Errorf("workers=%d: bounded mark %d words / %d objects, want %d / %d",
				workers, m.WordsMarked, m.ObjectsMarked, wantWords, wantObjs)
		}
		for i, w := range snapshot(out) {
			if w != wantOut[i] {
				t.Fatalf("workers=%d: out-of-region space mutated at word %d", workers, i)
			}
		}
		ClearMarks(in, out)
	}
	h.SetGCWorkers(0)
}

// chainCars walks a pair chain from head and returns the fixnum car of
// every pair, failing on any malformed link.
func chainCars(t *testing.T, h *Heap, head Word) []int64 {
	t.Helper()
	var cars []int64
	for w := head; w != NullWord; {
		if !IsPtr(w) {
			t.Fatalf("chain link is not a pointer: %#x", w)
		}
		s := h.Spaces[PtrSpace(w)]
		off := PtrOff(w)
		hdr := s.Mem[off]
		if HeaderType(hdr) != TPair {
			t.Fatalf("chain link is not a pair: header %#x", hdr)
		}
		cars = append(cars, FixnumVal(s.Mem[off+1]))
		w = s.Mem[off+2]
	}
	return cars
}

// TestParallelEvacMatchesSequential checks the copy engine's contract on a
// single-target flip: for every worker count the words/objects copied and
// the final Top are bit-identical to sequential (exact-fit reservation
// wastes nothing), the census multiset of copied objects is identical, and
// the object graph survives intact. In-target order is explicitly NOT part
// of the contract (workers race for reservations).
func TestParallelEvacMatchesSequential(t *testing.T) {
	const chains, chainLen = 32, 100
	h := New()
	from := h.NewSpace("flip-A", 1<<16)
	to := h.NewSpace("flip-B", 1<<16)
	roots := buildForest(t, h, from, chains, chainLen)

	e := NewEvacuator(h, nil)
	flip := func() {
		e.SetFrom(from)
		e.Begin(to)
		e.Run()
		from.Reset()
		from, to = to, from
	}

	flip()
	wantWords, wantObjs, wantTop := e.WordsCopied, e.ObjectsCopied, from.Top
	wantCars := censusCars(h, from)

	for _, workers := range []int{1, 2, 4, 8} {
		h.SetGCWorkers(workers)
		flip()
		if e.WordsCopied != wantWords || e.ObjectsCopied != wantObjs {
			t.Errorf("workers=%d: copied %d words / %d objects, sequential copied %d / %d",
				workers, e.WordsCopied, e.ObjectsCopied, wantWords, wantObjs)
		}
		if from.Top != wantTop {
			t.Errorf("workers=%d: target Top %d, sequential %d (exact-fit reserve must not waste)",
				workers, from.Top, wantTop)
		}
		if got := censusCars(h, from); !equalInt64s(got, wantCars) {
			t.Errorf("workers=%d: census multiset diverges from sequential", workers)
		}
		for c, r := range roots {
			cars := chainCars(t, h, h.Get(r))
			if len(cars) != chainLen {
				t.Fatalf("workers=%d: chain %d has %d pairs, want %d", workers, c, len(cars), chainLen)
			}
			for i, v := range cars {
				if v != int64(chainLen-1-i) {
					t.Fatalf("workers=%d: chain %d car[%d] = %d, want %d", workers, c, i, v, chainLen-1-i)
				}
			}
		}
	}
	h.SetGCWorkers(0)
}

// censusCars returns the sorted multiset of pair cars in a space — an
// order-independent census of its contents.
func censusCars(h *Heap, s *Space) []int64 {
	var cars []int64
	for off := 0; off < s.Top; {
		hdr := s.Mem[off]
		if HeaderType(hdr) == TPair {
			cars = append(cars, FixnumVal(s.Mem[off+1]))
		}
		off += ObjWords(hdr)
	}
	sort.Slice(cars, func(i, j int) bool { return cars[i] < cars[j] })
	return cars
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelEvacOverflowContention regression-tests the shared-cursor
// Overflow path: four workers race thousands of small reservations into
// tiny targets, forcing repeated Overflow growth mid-drain. Every object
// must be copied exactly once, nothing lost, the graph intact.
func TestParallelEvacOverflowContention(t *testing.T) {
	const chains, chainLen = 16, 64
	h := New()
	from := h.NewSpace("ov-from", 1<<14)
	roots := buildForest(t, h, from, chains, chainLen)

	// Two deliberately tiny primary targets so the drain overflows many
	// times; each Overflow space is itself small to keep the contention up.
	t0 := h.NewSpace("ov-t0", 64)
	t1 := h.NewSpace("ov-t1", 64)
	var grown []*Space
	overflow := func(need int) *Space {
		size := 128
		if need > size {
			size = need
		}
		ns := h.NewSpace("ov-spill", size)
		grown = append(grown, ns)
		return ns
	}

	e := NewEvacuator(h, nil)
	e.Overflow = overflow
	h.SetGCWorkers(4)
	e.SetFrom(from)
	e.Begin(t0, t1)
	e.Run()
	h.SetGCWorkers(0)

	wantObjs := chains * chainLen
	if e.ObjectsCopied != wantObjs {
		t.Fatalf("copied %d objects, want %d", e.ObjectsCopied, wantObjs)
	}
	if len(grown) == 0 {
		t.Fatal("Overflow never fired: the test must exercise growth under contention")
	}
	if len(e.Targets) != 2+len(grown) {
		t.Fatalf("Targets has %d entries, want primaries + %d overflow spaces", len(e.Targets), len(grown))
	}
	// Totals conservation: every copied word landed in exactly one target.
	var filled uint64
	for _, tg := range e.Targets {
		filled += uint64(tg.Top)
	}
	if filled != e.WordsCopied {
		t.Fatalf("targets hold %d words, engine copied %d (lost or duplicated copies)", filled, e.WordsCopied)
	}
	for c, r := range roots {
		cars := chainCars(t, h, h.Get(r))
		if len(cars) != chainLen {
			t.Fatalf("chain %d has %d pairs after overflow drain, want %d", c, len(cars), chainLen)
		}
	}
	from.Reset() // discard the evacuated space, as a collector would
	if err := Check(h); err != nil {
		t.Fatalf("heap check after contended overflow drain: %v", err)
	}
}

// TestEvacuatorOverflowOrderSequential pins the sequential engine's
// Overflow behaviour the parallel variant must echo: the failing target is
// kept, the fresh space is appended to Targets after validation, copies
// continue into it in Cheney order, and its gray region is drained.
func TestEvacuatorOverflowOrderSequential(t *testing.T) {
	const pairs = 40
	h := New()
	from := h.NewSpace("seq-from", 1<<12)
	h.GlobalWord(buildChain(t, h, from, pairs))

	t0 := h.NewSpace("seq-t0", 30) // room for exactly 10 pairs
	var requests []int
	e := NewEvacuator(h, nil)
	e.Overflow = func(need int) *Space {
		requests = append(requests, need)
		return h.NewSpace("seq-spill", 3*pairs)
	}
	e.SetFrom(from)
	e.Begin(t0)
	e.Run()

	if len(requests) != 1 {
		t.Fatalf("Overflow fired %d times, want exactly once (one spill fits the rest)", len(requests))
	}
	if requests[0] != 3 {
		t.Fatalf("Overflow request was %d words, want 3 (one pair)", requests[0])
	}
	if len(e.Targets) != 2 || e.Targets[0] != t0 {
		t.Fatalf("Targets after overflow: got %d entries with first %q, want [seq-t0 seq-spill]",
			len(e.Targets), e.Targets[0].Name)
	}
	if t0.Top != 30 {
		t.Fatalf("first target filled to %d words, want 30 (first-fit packs it full)", t0.Top)
	}
	if e.Targets[1].Top != 3*(pairs-10) {
		t.Fatalf("spill holds %d words, want %d", e.Targets[1].Top, 3*(pairs-10))
	}
	// Cheney order: the spill continues the breadth-first copy, so cars
	// descend contiguously across the target boundary.
	seq := append(censusOrder(t0), censusOrder(e.Targets[1])...)
	for i, v := range seq {
		if v != int64(pairs-1-i) {
			t.Fatalf("copy order diverges at object %d: car %d, want %d", i, v, pairs-1-i)
		}
	}
}

// censusOrder returns pair cars in address order (no sort) — the copy order.
func censusOrder(s *Space) []int64 {
	var cars []int64
	for off := 0; off < s.Top; {
		hdr := s.Mem[off]
		if HeaderType(hdr) == TPair {
			cars = append(cars, FixnumVal(s.Mem[off+1]))
		}
		off += ObjWords(hdr)
	}
	return cars
}

// TestSpaceSetConcurrentReaders asserts the documented configure-then-drain
// contract: once a SpaceSet is built, concurrent Has/HasPtr readers are
// safe (pure loads, no mutation). Run under -race this fails if any read
// path writes.
func TestSpaceSetConcurrentReaders(t *testing.T) {
	h := New()
	a := h.NewSpace("ss-a", 64)
	b := h.NewSpace("ss-b", 64)
	c := h.NewSpace("ss-c", 64)

	var set SpaceSet
	set.Clear()
	set.Add(a.ID)
	set.Add(c.ID)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				if !set.Has(a.ID) || set.Has(b.ID) || !set.Has(c.ID) {
					t.Error("SpaceSet read returned wrong membership under concurrency")
					return
				}
				// Out-of-range IDs must stay safely absent.
				if set.Has(SpaceID(1000 + i%7)) {
					t.Error("SpaceSet reported membership beyond its backing")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestParallelMarkSteadyStateZeroAllocs guards the workers=1 parallel mark
// path: the inline worker loop reuses the persistent parMark state, so
// steady-state drains allocate nothing.
func TestParallelMarkSteadyStateZeroAllocs(t *testing.T) {
	h := New()
	s := h.NewSpace("par-mark-arena", 4096)
	h.GlobalWord(buildChain(t, h, s, 500))
	h.SetGCWorkers(1)

	m := NewMarker(h, nil)
	m.Run() // warmup: worker stack and parMark state grow once
	ClearMarks(s)

	allocs := testing.AllocsPerRun(20, func() {
		m.Begin()
		m.Run()
		ClearMarks(s)
	})
	if allocs != 0 {
		t.Errorf("steady-state parallel mark (workers=1) allocates %.0f objects/run, want 0", allocs)
	}
	if m.ObjectsMarked != 500 {
		t.Fatalf("marked %d objects, want 500 (the guard must measure real work)", m.ObjectsMarked)
	}
}

// TestParallelEvacSteadyStateZeroAllocs guards the workers=1 parallel copy
// path the same way: persistent snapshot, cursors, and worker stack.
func TestParallelEvacSteadyStateZeroAllocs(t *testing.T) {
	h := New()
	from := h.NewSpace("par-flip-A", 4096)
	to := h.NewSpace("par-flip-B", 4096)
	h.GlobalWord(buildChain(t, h, from, 500))
	h.SetGCWorkers(1)

	e := NewEvacuator(h, nil)
	flip := func() {
		e.SetFrom(from)
		e.Begin(to)
		e.Run()
		from.Reset()
		from, to = to, from
	}
	flip() // warmup

	allocs := testing.AllocsPerRun(20, flip)
	if allocs != 0 {
		t.Errorf("steady-state parallel evacuation (workers=1) allocates %.0f objects/run, want 0", allocs)
	}
	if e.ObjectsCopied != 500 {
		t.Fatalf("copied %d objects, want 500 (the guard must measure real work)", e.ObjectsCopied)
	}
}

// TestGCWorkersConfig covers the configuration plumbing: package default
// inherited by New, per-heap override, negative clamping, and the
// flag/env resolution precedence.
func TestGCWorkersConfig(t *testing.T) {
	defer SetDefaultGCWorkers(0)

	SetDefaultGCWorkers(3)
	if DefaultGCWorkers() != 3 {
		t.Fatalf("DefaultGCWorkers() = %d, want 3", DefaultGCWorkers())
	}
	h := New()
	if h.GCWorkers() != 3 {
		t.Errorf("New heap inherited %d workers, want the package default 3", h.GCWorkers())
	}
	h.SetGCWorkers(5)
	if h.GCWorkers() != 5 {
		t.Errorf("SetGCWorkers(5): GCWorkers() = %d", h.GCWorkers())
	}
	h.SetGCWorkers(-2)
	if h.GCWorkers() != 0 {
		t.Errorf("SetGCWorkers(-2) must clamp to 0, got %d", h.GCWorkers())
	}
	SetDefaultGCWorkers(-1)
	if DefaultGCWorkers() != 0 {
		t.Errorf("SetDefaultGCWorkers(-1) must clamp to 0, got %d", DefaultGCWorkers())
	}

	t.Setenv(EnvGCWorkers, "6")
	if got := GCWorkersFromEnv(); got != 6 {
		t.Errorf("GCWorkersFromEnv() = %d with %s=6", got, EnvGCWorkers)
	}
	if got := ResolveGCWorkers(-1); got != 6 {
		t.Errorf("ResolveGCWorkers(-1) = %d, want env value 6", got)
	}
	if got := ResolveGCWorkers(2); got != 2 {
		t.Errorf("ResolveGCWorkers(2) = %d, explicit flag must win over env", got)
	}
	if got := ResolveGCWorkers(0); got != 0 {
		t.Errorf("ResolveGCWorkers(0) = %d, explicit 0 (sequential) must win over env", got)
	}
	t.Setenv(EnvGCWorkers, "not-a-number")
	if got := GCWorkersFromEnv(); got != 0 {
		t.Errorf("GCWorkersFromEnv() = %d for a malformed value, want 0", got)
	}
}

// benchForest sizes match the sequential steady-state benchmarks so the
// parallel rows are directly comparable.
func benchParallelMark(b *testing.B, workers int) {
	h := New()
	s := h.NewSpace("bench-forest", 1<<18)
	buildForest(b, h, s, 256, 96)
	h.SetGCWorkers(workers)

	m := NewMarker(h, nil)
	m.Run()
	ClearMarks(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Begin()
		m.Run()
		ClearMarks(s)
	}
	b.SetBytes(int64(m.WordsMarked) * 8)
}

func benchParallelEvac(b *testing.B, workers int) {
	h := New()
	from := h.NewSpace("bench-flip-A", 1<<18)
	to := h.NewSpace("bench-flip-B", 1<<18)
	buildForest(b, h, from, 256, 96)
	h.SetGCWorkers(workers)

	e := NewEvacuator(h, nil)
	flip := func() {
		e.SetFrom(from)
		e.Begin(to)
		e.Run()
		from.Reset()
		from, to = to, from
	}
	flip()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flip()
	}
	b.SetBytes(int64(e.WordsCopied) * 8)
}

func BenchmarkParallelMark1(b *testing.B) { benchParallelMark(b, 1) }
func BenchmarkParallelMark2(b *testing.B) { benchParallelMark(b, 2) }
func BenchmarkParallelMark4(b *testing.B) { benchParallelMark(b, 4) }
func BenchmarkParallelEvac1(b *testing.B) { benchParallelEvac(b, 1) }
func BenchmarkParallelEvac2(b *testing.B) { benchParallelEvac(b, 2) }
func BenchmarkParallelEvac4(b *testing.B) { benchParallelEvac(b, 4) }
