package heap

import (
	"errors"
	"fmt"
)

// This file implements the deep heap-invariant verifier. Where Check is a
// quick structural sanity pass (parse + reachability), Verify validates the
// full invariant catalog a collector promises between collections:
//
//   1. Every live space parses as a sequence of well-formed blocks ending
//      exactly at its bump pointer.
//   2. No block header is a forwarding pointer (stale forwarding) or carries
//      a mark bit (stale mark) after a collection has finished.
//   3. Every pointer — in a root slot or a live object's payload — targets a
//      live space, lands exactly on an object start, and that object is not
//      a free block.
//   4. With census tracking on, every object's hidden birth-stamp word is a
//      fixnum no later than the current allocation clock.
//   5. Remembered-set completeness: for every rule a collector declares,
//      every object whose fields demand an entry is actually in the set
//      (§8.4's six situations reduce to these per-collector rules).
//
// Verification is opt-in: collectors fire Heap.AfterGC at the end of every
// collection, and the hook is nil unless a test (or the fuzz harness)
// installs a verifying callback, so benchmarks pay one nil check per
// collection and nothing per slot.

// Error kinds reported by Verify, one per invariant class, so tests can
// assert that a seeded corruption produces exactly the expected diagnosis.
var (
	ErrMalformedHeader = errors.New("malformed header")
	ErrStaleForwarding = errors.New("stale forwarding pointer")
	ErrStaleMark       = errors.New("stale mark bit")
	ErrBlockOverrun    = errors.New("block overruns space")
	ErrDanglingPointer = errors.New("dangling pointer")
	ErrBadCensusWord   = errors.New("bad census word")
	ErrRemsetMissing   = errors.New("remembered-set entry missing")
)

// RemsetRule is one remembered-set completeness contract: whenever a live
// object obj holds a pointer val with Needs(obj, val) true, Has(obj) must be
// true. Collectors declare one rule per remembered set. Rules state
// completeness only — sets may hold extra (stale or nepotistic) entries.
type RemsetRule struct {
	Name string
	// Needs reports whether an object obj containing pointer val requires a
	// remembered-set entry for obj.
	Needs func(obj, val Word) bool
	// Has reports whether obj is currently in the remembered set.
	Has func(obj Word) bool
}

// VerifySpec describes a collector's invariant surface to the verifier.
type VerifySpec struct {
	// Live lists the spaces reachable pointers may target. Spaces not listed
	// (to-spaces, shadow steps) are scratch: a pointer into one is dangling.
	// An empty Live means every space is live.
	Live []*Space
	// Remsets are the collector's remembered-set completeness contracts.
	Remsets []RemsetRule

	// MarkingActive declares that an incremental mark is in progress: mark
	// bits are legitimately set on a prefix of the live graph, so the
	// stale-mark bitmap check is skipped. Unmarked objects may still be
	// live (not yet traced), so no reachability conclusions are drawn.
	MarkingActive bool

	// SweepPending, when non-nil, reports that the object headed at off in
	// s lies in a region whose sweep is still pending (incremental lazy
	// sweeping): there, the completed mark is authoritative — an unmarked
	// object is dead storage awaiting its sweep. The verifier skips such
	// objects' payloads and census words (dead storage, like free-block
	// interiors), treats pointers to them as dangling, and skips the
	// stale-mark check (survivors keep their marks until their block is
	// swept).
	SweepPending func(s *Space, off int) bool
}

// Verifiable is implemented by collectors that can describe their current
// invariant surface. The spec must be recomputed per call: space roles
// change as collections flip, rename, and grow spaces.
type Verifiable interface {
	VerifySpec() VerifySpec
}

// VerifyCollector verifies h under c's declared spec, or under a whole-heap
// spec with no remembered-set rules when c declares none.
func VerifyCollector(h *Heap, c Collector) error {
	if v, ok := c.(Verifiable); ok {
		return Verify(h, v.VerifySpec())
	}
	return Verify(h, VerifySpec{})
}

// maxVerifyErrors caps the diagnoses collected per Verify call; one is
// usually enough to localize a bug and corrupt heaps can fail everywhere.
const maxVerifyErrors = 8

// verifier carries one Verify run's state.
type verifier struct {
	h    *Heap
	spec VerifySpec
	// live[id] reports whether space id may hold reachable objects.
	live []bool
	// starts[id] maps block offsets in live space id to that block's header
	// word, for the pointer-target checks.
	starts []map[int]Word
	errs   []error
}

func (v *verifier) errorf(kind error, format string, args ...any) bool {
	if len(v.errs) < maxVerifyErrors {
		v.errs = append(v.errs, fmt.Errorf("heap.Verify: %w: %s", kind, fmt.Sprintf(format, args...)))
	}
	return len(v.errs) < maxVerifyErrors
}

// Verify checks every invariant in the catalog above and returns all
// diagnoses joined (nil for a clean heap). It never mutates the heap.
func Verify(h *Heap, spec VerifySpec) error {
	v := &verifier{h: h, spec: spec, live: make([]bool, len(h.Spaces))}
	if len(spec.Live) == 0 {
		for i := range v.live {
			v.live[i] = true
		}
	} else {
		for _, s := range spec.Live {
			v.live[s.ID] = true
		}
	}
	v.starts = make([]map[int]Word, len(h.Spaces))

	v.parseSpaces()
	if len(v.errs) == 0 {
		// Pointer checks index the block-start tables; skip them when the
		// parse already failed, as the tables may be incomplete.
		v.scanObjects()
		v.scanRoots()
		v.checkRemsets()
	}
	return errors.Join(v.errs...)
}

// parseSpaces walks every live space below its bump pointer and builds the
// block-start tables, diagnosing malformed headers, stale forwarding
// pointers, stale marks, bad types, and size overruns.
func (v *verifier) parseSpaces() {
	for _, s := range v.h.Spaces {
		if !v.live[s.ID] {
			continue
		}
		// Marks live in the side bitmap; any bit still set after a
		// collection is the bitmap analogue of a stale header mark. The
		// header-bit check below stays as a defense: no engine writes it
		// anymore, so a set bit means corruption. Incremental phases are
		// the exception: mid-mark bits and pending-sweep survivor bits are
		// both legitimate.
		if !v.spec.MarkingActive && v.spec.SweepPending == nil && !s.MarksClear() {
			if !v.errorf(ErrStaleMark, "%v: mark bitmap not clear after collection", s) {
				return
			}
		}
		starts := make(map[int]Word)
		v.starts[s.ID] = starts
		for off := 0; off < s.Top; {
			hdr := s.Mem[off]
			if !IsHeader(hdr) {
				if IsPtr(hdr) {
					if !v.errorf(ErrStaleForwarding, "%v: block at %d forwards to space %d off %d after collection",
						s, off, PtrSpace(hdr), PtrOff(hdr)) {
						return
					}
				} else if !v.errorf(ErrMalformedHeader, "%v: word %d is not a header (%#x)", s, off, uint64(hdr)) {
					return
				}
				break // cannot resynchronize a broken parse
			}
			if t := HeaderType(hdr); t >= numTypes {
				if !v.errorf(ErrMalformedHeader, "%v: bad type %d at %d", s, t, off) {
					return
				}
				break
			}
			if Marked(hdr) && !v.errorf(ErrStaleMark, "%v: mark bit still set at %d", s, off) {
				return
			}
			n := ObjWords(hdr)
			if n <= 0 || off+n > s.Top {
				if !v.errorf(ErrBlockOverrun, "%v: block at %d has %d words, %d remain", s, off, n, s.Top-off) {
					return
				}
				break
			}
			starts[off] = hdr
			off += n
		}
	}
}

// checkPtr validates one pointer: it must target a live space, land on an
// object start, and that object must not be free. what produces the slot
// description lazily, so clean slots (the overwhelming majority) pay nothing
// for diagnostics.
func (v *verifier) checkPtr(w Word, what func() string) bool {
	id := PtrSpace(w)
	if int(id) >= len(v.h.Spaces) {
		return v.errorf(ErrDanglingPointer, "%s points to unknown space %d", what(), id)
	}
	if !v.live[id] {
		return v.errorf(ErrDanglingPointer, "%s points into scratch space %v", what(), v.h.Spaces[id])
	}
	s := v.h.Spaces[id]
	off := PtrOff(w)
	if off >= s.Top {
		return v.errorf(ErrDanglingPointer, "%s points past the bump pointer of %v (off %d)", what(), s, off)
	}
	hdr, ok := v.starts[id][off]
	if !ok {
		return v.errorf(ErrDanglingPointer, "%s points into the middle of an object (%v off %d)", what(), s, off)
	}
	if HeaderType(hdr) == TFree {
		return v.errorf(ErrDanglingPointer, "%s points into a free block (%v off %d)", what(), s, off)
	}
	if v.deadPending(s, off) {
		return v.errorf(ErrDanglingPointer, "%s points to a dead object awaiting lazy sweep (%v off %d)", what(), s, off)
	}
	return true
}

// deadPending reports whether the object headed at off is dead storage in a
// pending-sweep region: the mark is authoritative there, so unmarked means
// dead.
func (v *verifier) deadPending(s *Space, off int) bool {
	return v.spec.SweepPending != nil && v.spec.SweepPending(s, off) && !s.MarkedAt(off)
}

// scanObjects validates the payloads of every non-free block in every live
// space: census words are in-range fixnums and pointer slots pass checkPtr.
// Free blocks are skipped entirely — their payloads are dead storage (the
// free-list link plus whatever the dead object left behind).
func (v *verifier) scanObjects() {
	extra := v.h.ExtraWords()
	now := v.h.Now()
	for _, s := range v.h.Spaces {
		if !v.live[s.ID] {
			continue
		}
		for off, hdr := range v.starts[s.ID] {
			t := HeaderType(hdr)
			if t == TFree || v.deadPending(s, off) {
				continue
			}
			if extra == 1 {
				stamp := s.Mem[off+1]
				if !IsFixnum(stamp) {
					if !v.errorf(ErrBadCensusWord, "%v off %d: birth stamp is not a fixnum (%#x)", s, off, uint64(stamp)) {
						return
					}
				} else if bs := FixnumVal(stamp); bs < 0 || uint64(bs) > now {
					if !v.errorf(ErrBadCensusWord, "%v off %d: birth stamp %d outside [0, %d]", s, off, bs, now) {
						return
					}
				}
			}
			if RawPayload(t) {
				continue
			}
			for i := off + 1 + extra; i <= off+HeaderSize(hdr); i++ {
				w := s.Mem[i]
				if !IsPtr(w) {
					continue
				}
				if !v.checkPtr(w, func() string {
					return fmt.Sprintf("slot %d of %v object at %v off %d", i-off-1, t, s, off)
				}) {
					return
				}
			}
		}
	}
}

// scanRoots validates every root slot: the handle stack, globals, and any
// collector-registered extras.
func (v *verifier) scanRoots() {
	i := 0
	v.h.VisitRoots(func(slot *Word) {
		if IsPtr(*slot) && len(v.errs) < maxVerifyErrors {
			n := i
			v.checkPtr(*slot, func() string { return fmt.Sprintf("root slot %d", n) })
		}
		i++
	})
}

// checkRemsets enforces every declared completeness rule over every live
// non-free object.
func (v *verifier) checkRemsets() {
	extra := v.h.ExtraWords()
	for _, rule := range v.spec.Remsets {
		for _, s := range v.h.Spaces {
			if !v.live[s.ID] {
				continue
			}
			for off, hdr := range v.starts[s.ID] {
				t := HeaderType(hdr)
				if t == TFree || RawPayload(t) || v.deadPending(s, off) {
					continue
				}
				obj := PtrWord(s.ID, off)
				for i := off + 1 + extra; i <= off+HeaderSize(hdr); i++ {
					w := s.Mem[i]
					if !IsPtr(w) || !rule.Needs(obj, w) {
						continue
					}
					if !rule.Has(obj) {
						if !v.errorf(ErrRemsetMissing, "rule %q: object at %v off %d points to space %d off %d but is not remembered",
							rule.Name, s, off, PtrSpace(w), PtrOff(w)) {
							return
						}
					}
					break // one demanding slot settles this object for this rule
				}
			}
		}
	}
}
