package heap

// refTracer, when true, reroutes Evacuator.Drain and Marker.Drain through
// the retained callback-per-slot reference implementations. The fused fast
// paths are specified to be observationally identical to the reference —
// bit-identical heap images, identical GCStats word counts — and the
// differential conformance tests enforce that by running every collector's
// workload under both settings.
var refTracer bool

// SetReferenceTracer selects the reference (callback) tracer for all
// subsequent Drain calls when on is true, or the fused fast path (the
// default) when false. It flips a package-level switch: not for concurrent
// use while collections run on other goroutines.
func SetReferenceTracer(on bool) { refTracer = on }

// ReferenceTracerEnabled reports which tracer Drain will use.
func ReferenceTracerEnabled() bool { return refTracer }
