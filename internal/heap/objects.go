package heap

import (
	"fmt"
	"math"
)

// This file defines the Scheme-flavoured object constructors and accessors
// the benchmark programs use. Constructors resolve their Ref arguments
// *after* allocation, because allocation may trigger a collection that
// moves the referents; the Refs track the move, bare Words would not.

// Fix pushes a fixnum handle.
func (h *Heap) Fix(n int64) Ref { return h.push(FixnumWord(n)) }

// Null pushes the empty-list handle.
func (h *Heap) Null() Ref { return h.push(NullWord) }

// Bool pushes a boolean handle.
func (h *Heap) Bool(b bool) Ref { return h.push(BoolWord(b)) }

// Cons allocates a pair. Initializing stores go through the write barrier
// because a non-predictive collector must remember young-to-old pointers
// however they arise (Section 8.4, situations 5 and 6).
func (h *Heap) Cons(car, cdr Ref) Ref {
	w := h.allocObject(TPair, 2)
	p := h.Payload(w)
	p[0] = h.Get(car)
	p[1] = h.Get(cdr)
	h.barrier.RecordWrite(w, p[0])
	h.barrier.RecordWrite(w, p[1])
	if h.sink != nil {
		h.sink.EvStore(w, 0, p[0])
		h.sink.EvStore(w, 1, p[1])
	}
	return h.push(w)
}

// Car pushes a handle to the car of pair r.
func (h *Heap) Car(r Ref) Ref { return h.push(h.pairField(r, 0)) }

// Cdr pushes a handle to the cdr of pair r.
func (h *Heap) Cdr(r Ref) Ref { return h.push(h.pairField(r, 1)) }

func (h *Heap) pairField(r Ref, i int) Word {
	w := h.Get(r)
	h.checkType(w, TPair)
	return h.Payload(w)[i]
}

// SetCar stores v into the car of pair r, through the write barrier.
func (h *Heap) SetCar(r, v Ref) { h.setField(r, TPair, 0, v) }

// SetCdr stores v into the cdr of pair r, through the write barrier.
func (h *Heap) SetCdr(r, v Ref) { h.setField(r, TPair, 1, v) }

func (h *Heap) setField(r Ref, t Type, i int, v Ref) {
	w := h.Get(r)
	h.checkType(w, t)
	h.StoreField(w, i, h.Get(v))
}

// MakeVector allocates a vector of n slots, each initialized to fill.
func (h *Heap) MakeVector(n int, fill Ref) Ref {
	w := h.allocObject(TVector, n)
	h.FillFields(w, h.Get(fill))
	return h.push(w)
}

// VectorLen returns the slot count of vector r.
func (h *Heap) VectorLen(r Ref) int {
	w := h.Get(r)
	h.checkType(w, TVector)
	return len(h.Payload(w))
}

// VectorRef pushes a handle to slot i of vector r.
func (h *Heap) VectorRef(r Ref, i int) Ref {
	w := h.Get(r)
	h.checkType(w, TVector)
	return h.push(h.Payload(w)[i])
}

// VectorSet stores v into slot i of vector r, through the write barrier.
func (h *Heap) VectorSet(r Ref, i int, v Ref) { h.setField(r, TVector, i, v) }

// Box allocates a one-slot mutable cell.
func (h *Heap) Box(v Ref) Ref {
	w := h.allocObject(TBox, 1)
	h.StoreField(w, 0, h.Get(v))
	return h.push(w)
}

// Unbox pushes a handle to the contents of box r.
func (h *Heap) Unbox(r Ref) Ref {
	w := h.Get(r)
	h.checkType(w, TBox)
	return h.push(h.Payload(w)[0])
}

// SetBox stores v into box r, through the write barrier.
func (h *Heap) SetBox(r, v Ref) { h.setField(r, TBox, 0, v) }

// Flonum allocates a boxed float64. Matching Larceny's uniform
// representation, every floating-point temporary in the benchmarks is one
// of these: a header plus one raw data word (plus the census word).
func (h *Heap) Flonum(x float64) Ref {
	w := h.allocObject(TFlonum, 1)
	h.StoreRaw(w, 0, math.Float64bits(x))
	return h.push(w)
}

// FlonumVal returns the float64 held by flonum r.
func (h *Heap) FlonumVal(r Ref) float64 {
	w := h.Get(r)
	h.checkType(w, TFlonum)
	return math.Float64frombits(uint64(h.Payload(w)[0]))
}

// Bytevector allocates a raw byte buffer of n bytes (rounded up to words).
func (h *Heap) Bytevector(n int) Ref {
	words := (n + 7) / 8
	if words == 0 {
		words = 1
	}
	w := h.allocObject(TBytevec, words)
	return h.push(w)
}

// Intern returns the unique symbol object named name, allocating it on
// first use and rooting it globally. Symbol identity is pointer identity.
func (h *Heap) Intern(name string) Ref {
	if gi, ok := h.symtab[name]; ok {
		return Ref(-gi - 2)
	}
	w := h.allocObject(TSymbol, 1)
	return h.AdoptSymbol(w, name)
}

// SymbolName returns the print name of symbol r.
func (h *Heap) SymbolName(r Ref) string {
	w := h.Get(r)
	h.checkType(w, TSymbol)
	return h.symNames[FixnumVal(h.Payload(w)[0])]
}

// Type predicates and structural helpers.

// IsNull reports whether r holds the empty list.
func (h *Heap) IsNull(r Ref) bool { return h.Get(r) == NullWord }

// IsFalse reports whether r holds #f. Everything else is truthy.
func (h *Heap) IsFalse(r Ref) bool { return h.Get(r) == FalseWord }

// IsPair reports whether r holds a pair.
func (h *Heap) IsPair(r Ref) bool { return h.isType(r, TPair) }

// IsVector reports whether r holds a vector.
func (h *Heap) IsVector(r Ref) bool { return h.isType(r, TVector) }

// IsSymbol reports whether r holds a symbol.
func (h *Heap) IsSymbol(r Ref) bool { return h.isType(r, TSymbol) }

// IsFlonum reports whether r holds a boxed float.
func (h *Heap) IsFlonum(r Ref) bool { return h.isType(r, TFlonum) }

// IsFix reports whether r holds a fixnum.
func (h *Heap) IsFix(r Ref) bool { return IsFixnum(h.Get(r)) }

// FixVal returns the integer held by fixnum r.
func (h *Heap) FixVal(r Ref) int64 { return FixnumVal(h.Get(r)) }

func (h *Heap) isType(r Ref, t Type) bool {
	w := h.Get(r)
	return IsPtr(w) && HeaderType(h.Header(w)) == t
}

// Eq reports pointer/immediate identity of two handles (Scheme eq?).
func (h *Heap) Eq(a, b Ref) bool { return h.Get(a) == h.Get(b) }

func (h *Heap) checkType(w Word, t Type) {
	if !IsPtr(w) {
		panic(fmt.Sprintf("heap: expected %v, got non-pointer %#x", t, uint64(w)))
	}
	if got := HeaderType(h.Header(w)); got != t {
		panic(fmt.Sprintf("heap: expected %v, got %v", t, got))
	}
}

// List builds a proper list from the given elements.
func (h *Heap) List(elems ...Ref) Ref {
	s := h.Scope()
	acc := h.Null()
	for i := len(elems) - 1; i >= 0; i-- {
		acc = h.Cons(elems[i], acc)
	}
	return s.Return(acc)
}

// ListLen returns the length of the proper list r.
func (h *Heap) ListLen(r Ref) int {
	s := h.Scope()
	defer s.Close()
	n := 0
	cur := h.Dup(r)
	for h.IsPair(cur) {
		n++
		h.Set(cur, h.pairField(cur, 1))
	}
	return n
}
