package heap

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
)

// Parallel marking: Marker.Drain dispatches here when the heap is
// configured with GCWorkers >= 1. The roots have already been marked (and
// counted) sequentially by MarkWord, so the engine's mark stack holds the
// initial gray set; workers pop gray objects onto per-worker local stacks,
// claim children by CASing their bit into the side mark bitmap
// (Space.TryMarkAtomic), and balance load through the shared parQueue.
// Headers are never written during a mark, so every header and payload
// access here is a plain load.
//
// Determinism contract: marking is idempotent and each object is claimed by
// exactly one successful bitmap CAS, so the resulting mark set, WordsMarked,
// and ObjectsMarked are bit-identical to the sequential drain for every
// worker count — only the order in which objects are visited differs.

// markWorker is one worker's persistent drain state.
type markWorker struct {
	stack []Word
	words uint64
	objs  int
}

// parMark is the Marker's persistent parallel machinery, created on first
// use and reused across collections so steady-state drains at workers=1
// allocate nothing.
type parMark struct {
	queue parQueue
	ws    []markWorker
}

// drainParallel distributes the current mark stack over workers and blocks
// until the trace is complete. workers == 1 runs the worker loop inline.
func (m *Marker) drainParallel(workers int) {
	if m.par == nil {
		m.par = &parMark{}
	}
	p := m.par
	for len(p.ws) < workers {
		p.ws = append(p.ws, markWorker{})
	}
	for i := 0; i < workers; i++ {
		p.ws[i].words, p.ws[i].objs = 0, 0
	}
	// No spaces are created during a mark, so one snapshot serves the whole
	// drain; workers index it without the sequential path's lazy refresh.
	m.spaces = m.H.Spaces

	if workers == 1 {
		// Solo configuration: the parallel algorithm inline on the caller,
		// with no goroutines and — since nothing races — no atomics.
		w0 := &p.ws[0]
		w0.stack, m.stack = m.stack, w0.stack[:0]
		m.markWorkerLoopSolo(w0)
	} else {
		p.queue.reset(workers)
		p.queue.buf = append(p.queue.buf, m.stack...)
		m.stack = m.stack[:0]
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			ws := &p.ws[i]
			labels := m.H.workerLabels(i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				pprof.Do(context.Background(), labels, func(context.Context) {
					m.markWorkerLoop(ws, &p.queue)
				})
			}()
		}
		wg.Wait()
	}
	for i := 0; i < workers; i++ {
		m.WordsMarked += p.ws[i].words
		m.ObjectsMarked += p.ws[i].objs
	}
}

// markWorkerLoop is one worker's drain: pop a marked gray object, scan its
// payload, CAS-claim unmarked children in the bitmap. With q == nil it runs
// the whole stack inline (the workers=1 configuration).
//
// Mark state lives entirely in the side bitmap: a cheap atomic pre-probe
// (MarkedAtAtomic) filters already-claimed children, and TryMarkAtomic's
// CAS decides races. Headers and payloads are never written during a mark,
// so plain loads suffice for both.
func (m *Marker) markWorkerLoop(ws *markWorker, q *parQueue) {
	local := ws.stack
	spaces := m.spaces
	bounded := m.bounded
	region := &m.region
	extra := m.H.extraWords
	for {
		if len(local) == 0 {
			if q == nil {
				break
			}
			var ok bool
			local, ok = q.take(local, parTakeBatch)
			if !ok {
				break
			}
		}
		w := local[len(local)-1]
		local = local[:len(local)-1]
		mem := spaces[PtrSpace(w)].Mem
		off := PtrOff(w)
		hdr := mem[off]
		if RawPayload(HeaderType(hdr)) {
			continue
		}
		for si, end := off+1+extra, off+ObjWords(hdr); si < end; si++ {
			v := mem[si]
			if !IsPtr(v) {
				continue
			}
			vid := PtrSpace(v)
			if bounded && !region.Has(vid) {
				continue
			}
			vs := spaces[vid]
			voff := PtrOff(v)
			if vs.MarkedAtAtomic(voff) {
				continue
			}
			if !vs.TryMarkAtomic(voff) {
				continue // lost the claim: the winner counted and queued it
			}
			ws.words += uint64(ObjWords(vs.Mem[voff]))
			ws.objs++
			local = append(local, v)
		}
		if q != nil && len(local) >= parSpillHigh {
			half := len(local) / 2
			q.put(local[:half])
			n := copy(local, local[half:])
			local = local[:n]
		}
	}
	ws.stack = local[:0]
}

// markWorkerLoopSolo is markWorkerLoop for the single-worker configuration:
// the same local-stack drain over the same state, but with plain bitmap
// accesses — one worker cannot race itself, and the atomic protocol is the
// difference between parity with the sequential engine and a 2x tax.
func (m *Marker) markWorkerLoopSolo(ws *markWorker) {
	local := ws.stack
	spaces := m.spaces
	bounded := m.bounded
	region := &m.region
	extra := m.H.extraWords
	for len(local) > 0 {
		w := local[len(local)-1]
		local = local[:len(local)-1]
		mem := spaces[PtrSpace(w)].Mem
		off := PtrOff(w)
		hdr := mem[off]
		if RawPayload(HeaderType(hdr)) {
			continue
		}
		for si, end := off+1+extra, off+ObjWords(hdr); si < end; si++ {
			v := mem[si]
			if !IsPtr(v) {
				continue
			}
			vid := PtrSpace(v)
			if bounded && !region.Has(vid) {
				continue
			}
			vs := spaces[vid]
			voff := PtrOff(v)
			if vs.MarkedAt(voff) {
				continue
			}
			vs.SetMarkAt(voff)
			ws.words += uint64(ObjWords(vs.Mem[voff]))
			ws.objs++
			local = append(local, v)
		}
	}
	ws.stack = local[:0]
}

// workerLabels builds the pprof label set a tracing worker goroutine runs
// under, so profiles attribute parallel GC samples to a worker index and
// the collector that owns the heap.
func (h *Heap) workerLabels(i int) pprof.LabelSet {
	name := h.collectorLabel
	if name == "" {
		name = "none"
	}
	return pprof.Labels("gc-worker", strconv.Itoa(i), "collector", name)
}
