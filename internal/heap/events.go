package heap

// This file is the heap's event surface: a nil-by-default EventSink that
// observes every mutator-visible heap mutation (allocations, payload
// stores, root pushes/pops/updates, symbol interning), and the small set of
// word-level entry points a trace replayer needs to reproduce those
// mutations without going through the Ref-typed constructors. The
// uninstrumented cost is one nil check per operation, so the zero-alloc
// guarantees of the collection hot paths are untouched.

// EventSink observes mutator-level heap events. All callbacks receive the
// heap's current words: pointer words are the object's address at event
// time, and a recorder that needs stable identities must also install a
// move hook (SetMoveHook) to track relocations.
//
// The callback set is complete for the public mutator API: every payload
// word and every root slot a collector can observe is established by some
// sequence of these events.
type EventSink interface {
	// EvAlloc fires once per object allocation, after the header (and any
	// census stamp) is written and the payload zeroed, before the object is
	// reachable from any root.
	EvAlloc(w Word, t Type, payloadWords int)
	// EvStore fires after val is stored into payload slot i of the object w
	// points to, through the write barrier (Cons/Box initializing stores,
	// SetCar/SetCdr/VectorSet/SetBox, and replayed StoreFields).
	EvStore(w Word, i int, val Word)
	// EvFill fires after every payload slot of w is set to val with a
	// single barrier record (MakeVector's initializing fill).
	EvFill(w Word, val Word)
	// EvRaw fires after a raw (non-pointer) word is stored into payload
	// slot i of w without a barrier (Flonum's bits).
	EvRaw(w Word, i int, bits uint64)
	// EvIntern fires when a fresh symbol object w is adopted as the unique
	// symbol named name and rooted globally.
	EvIntern(w Word, name string)
	// EvRootPush fires when w is pushed onto the handle stack.
	EvRootPush(w Word)
	// EvRootPopTo fires when the handle stack is truncated to depth.
	EvRootPopTo(depth int)
	// EvRootSet fires when the slot of Ref r is overwritten with w.
	EvRootSet(r Ref, w Word)
	// EvGlobal fires when w is appended to the permanent root table.
	EvGlobal(w Word)
}

// SetEventSink installs the mutator-event observer; nil removes it. The
// sink sees events from the moment it is installed, so a recorder that
// needs a complete history must attach to a pristine heap.
func (h *Heap) SetEventSink(s EventSink) { h.sink = s }

// SetMoveHook installs f to run every time a collector relocates an
// object, with the object's old and new pointer words; nil removes it.
// Every move in the repository goes through the shared Evacuator, so this
// is the single point where object identity can be tracked across
// collections.
func (h *Heap) SetMoveHook(f func(old, new Word)) { h.moved = f }

// GlobalRoots returns the number of permanent root slots, exposed for
// tests and the trace recorder's pristine-heap check.
func (h *Heap) GlobalRoots() int { return len(h.globals) }

// AllocObject allocates an object through the installed collector exactly
// as the typed constructors do — it may trigger a collection — and returns
// its pointer word without pushing a handle. Trace replay uses it to
// re-execute recorded allocations; everyone else wants Cons/MakeVector/...
func (h *Heap) AllocObject(t Type, payloadWords int) Word {
	return h.allocObject(t, payloadWords)
}

// StoreField stores val into payload slot i of the object w points to,
// through the write barrier. It is the word-level form of the typed
// mutators (SetCar, VectorSet, ...), which all funnel through it.
func (h *Heap) StoreField(w Word, i int, val Word) {
	h.Payload(w)[i] = val
	h.barrier.RecordWrite(w, val)
	if h.sink != nil {
		h.sink.EvStore(w, i, val)
	}
}

// FillFields stores val into every payload slot of the object w points to,
// with a single write-barrier record — MakeVector's initializing fill, in
// replayable form.
func (h *Heap) FillFields(w Word, val Word) {
	p := h.Payload(w)
	for i := range p {
		p[i] = val
	}
	if len(p) > 0 {
		h.barrier.RecordWrite(w, val)
	}
	if h.sink != nil {
		h.sink.EvFill(w, val)
	}
}

// StoreRaw stores raw non-pointer bits into payload slot i of w without a
// write barrier — Flonum's data word, in replayable form.
func (h *Heap) StoreRaw(w Word, i int, bits uint64) {
	h.Payload(w)[i] = Word(bits)
	if h.sink != nil {
		h.sink.EvRaw(w, i, bits)
	}
}

// TruncateRefs pops the handle stack down to depth, releasing every
// handle above it. Trace replay uses it in place of Scope bookkeeping.
func (h *Heap) TruncateRefs(depth int) {
	if depth < 0 || depth > len(h.refs) {
		panic("heap: TruncateRefs depth out of range")
	}
	h.refs = h.refs[:depth]
	if h.sink != nil {
		h.sink.EvRootPopTo(depth)
	}
}

// AdoptSymbol registers the fresh TSymbol object w as the unique symbol
// named name: the symbol id is stored in its payload, the object is rooted
// globally, and the returned Ref is what Intern would have returned. It
// panics if name is already interned; Intern is the only caller on the
// recording side, replay is the other.
func (h *Heap) AdoptSymbol(w Word, name string) Ref {
	if _, ok := h.symtab[name]; ok {
		panic("heap: AdoptSymbol of an already interned name")
	}
	h.checkType(w, TSymbol)
	id := len(h.symNames)
	h.symNames = append(h.symNames, name)
	h.Payload(w)[0] = FixnumWord(int64(id))
	h.globals = append(h.globals, w)
	gi := len(h.globals) - 1
	h.symtab[name] = gi
	if h.sink != nil {
		h.sink.EvIntern(w, name)
	}
	return Ref(-gi - 2)
}
