package heap

// Marker is a generic tracing engine that sets side-bitmap mark bits
// (block.go) without moving anything — headers are never written during a
// mark. The mark/sweep collectors and the lifetime census all use it; they
// differ only in the region bound and in what they do with the marks
// afterwards.
//
// A Marker is built once per collector and re-armed with Begin before each
// collection: the mark stack keeps its capacity across collections, so
// steady-state collections allocate nothing.
//
// The region is declared as a set of spaces (SetRegion / SetWholeHeap), so
// the per-slot bound check is a bit test rather than an indirect call. The
// InRegion predicate remains as a slow-path escape hatch for bounds that
// are not a union of spaces.
type Marker struct {
	H *Heap

	// InRegion, when non-nil, overrides the region set: pointers it rejects
	// are treated as leaves. This is the slow-path escape hatch; hot-path
	// collectors use SetRegion.
	InRegion func(w Word) bool

	// region is the fast-path bound: a bitset of SpaceIDs, consulted only
	// when bounded is true and InRegion is nil.
	region  SpaceSet
	bounded bool

	// spaces caches H.Spaces across a run, saving a pointer chase per
	// marked object. Begin refreshes it; the engines also refresh it lazily
	// when a pointer names a space beyond the cache (spaces created since
	// the last Begin).
	spaces []*Space

	stack []Word
	// markSlot is the stored slot-visitor closure, created once so passing
	// it to VisitRoots/ScanObject never allocates.
	markSlot func(slot *Word)

	WordsMarked   uint64
	ObjectsMarked int

	// par is the lazily created parallel-drain machinery (parmark.go),
	// persistent so steady-state parallel drains allocate nothing.
	par *parMark
}

// NewMarker prepares a whole-heap marker when inRegion is nil, or a
// predicate-bounded one otherwise; hot-path collectors bound the trace with
// SetRegion instead.
func NewMarker(h *Heap, inRegion func(w Word) bool) *Marker {
	m := &Marker{H: h, InRegion: inRegion, spaces: h.Spaces}
	m.markSlot = func(slot *Word) { m.MarkWord(*slot) }
	return m
}

// SetRegion bounds the trace to exactly the given spaces, routing the
// per-slot check through the bitset fast path (any InRegion predicate is
// cleared). The set's backing array is reused, so re-arming between
// collections allocates nothing.
func (m *Marker) SetRegion(spaces ...*Space) {
	m.InRegion = nil
	m.bounded = true
	m.region.Clear()
	for _, s := range spaces {
		m.region.Add(s.ID)
	}
}

// Region exposes the bitset bound for incremental population (e.g. the
// non-predictive mark/sweep adding steps j..k-1 one by one). Callers must
// have armed the bound with SetRegion first.
func (m *Marker) Region() *SpaceSet { return &m.region }

// SetWholeHeap removes any region bound: every pointer is traced.
func (m *Marker) SetWholeHeap() {
	m.InRegion = nil
	m.bounded = false
}

// Slot returns the marker's stored slot-visitor function, for root
// iterators that need a callback without allocating a fresh closure.
func (m *Marker) Slot() func(slot *Word) { return m.markSlot }

// Begin re-arms the marker for another collection: the work counters reset,
// the space cache refreshes, and the mark stack empties while retaining its
// capacity.
func (m *Marker) Begin() {
	m.stack = m.stack[:0]
	m.spaces = m.H.Spaces
	m.WordsMarked = 0
	m.ObjectsMarked = 0
}

// inRegion reports whether pointer w is inside the trace bound: the bitset
// on the fast path, the InRegion predicate when the escape hatch is armed.
func (m *Marker) inRegion(w Word) bool {
	if m.InRegion != nil {
		return m.InRegion(w)
	}
	return !m.bounded || m.region.HasPtr(w)
}

// MarkWord marks the object w points to (if any) and queues it for scanning.
func (m *Marker) MarkWord(w Word) {
	if !IsPtr(w) || !m.inRegion(w) {
		return
	}
	m.mark(w)
}

// mark sets the bitmap mark bit of the (in-bound, pointer) word's object
// and pushes it, if it was not already marked.
func (m *Marker) mark(w Word) {
	id := PtrSpace(w)
	if int(id) >= len(m.spaces) {
		// A space created since the last Begin; refresh the cache rather
		// than mis-index it.
		m.spaces = m.H.Spaces
	}
	s := m.spaces[id]
	off := PtrOff(w)
	if s.MarkedAt(off) {
		return
	}
	s.SetMarkAt(off)
	m.WordsMarked += uint64(ObjWords(s.Mem[off]))
	m.ObjectsMarked++
	m.stack = append(m.stack, w)
}

// Drain scans queued objects until the mark stack is empty. The scan is
// fused with marking: payload words are iterated directly over the owning
// space's Mem slice — no per-object visitor call, no per-slot closure —
// with raw-payload objects and the hidden census word skipped by header
// inspection. SetReferenceTracer reroutes this through the retained
// callback-based reference implementation, which marks the same objects in
// the same order and reports identical work counters.
func (m *Marker) Drain() {
	if refTracer {
		m.drainReference()
		return
	}
	if m.InRegion != nil {
		m.drainPredicate()
		return
	}
	if w := m.H.gcWorkers; w > 0 {
		m.drainParallel(w)
		return
	}
	extra := m.H.extraWords
	bounded := m.bounded
	// One-entry space cache: traces overwhelmingly stay within one space
	// (and a depth-first pop revisits the space just pushed), so caching
	// the last space elides a spaces-table load per object. curS stays nil
	// until the first lookup so SpaceID 0 is not spuriously "cached".
	var (
		curID SpaceID
		curS  *Space
	)
	lookup := func(id SpaceID) *Space {
		if int(id) >= len(m.spaces) {
			m.spaces = m.H.Spaces
		}
		curID = id
		curS = m.spaces[id]
		return curS
	}
	for len(m.stack) > 0 {
		w := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		id := PtrSpace(w)
		s := curS
		if id != curID || s == nil {
			s = lookup(id)
		}
		mem := s.Mem
		off := PtrOff(w)
		hdr := mem[off]
		if RawPayload(HeaderType(hdr)) {
			continue
		}
		for si, end := off+1+extra, off+ObjWords(hdr); si < end; si++ {
			v := mem[si]
			if !IsPtr(v) {
				continue
			}
			vid := PtrSpace(v)
			if bounded && !m.region.Has(vid) {
				continue
			}
			// m.mark inlined: the bit probe and set are the whole per-slot
			// cost, so they must not be a call.
			vs := curS
			if vid != curID || vs == nil {
				vs = lookup(vid)
			}
			voff := PtrOff(v)
			if vs.MarkedAt(voff) {
				continue
			}
			vs.SetMarkAt(voff)
			m.WordsMarked += uint64(ObjWords(vs.Mem[voff]))
			m.ObjectsMarked++
			m.stack = append(m.stack, v)
		}
	}
}

// DrainBudget scans queued objects until at least budget words have been
// scanned this call or the stack empties, and returns the words scanned. The
// count charges each popped object its full footprint (ObjWords, raw
// payloads included), so summing every slice's return value over a cycle —
// plus the termination drain — reproduces WordsMarked exactly: each marked
// object is pushed once and popped once.
//
// This is the incremental engine's only drain. It always runs sequentially
// on the caller, whatever the heap's worker count: a slice's cost must equal
// the words it reports, and the parallel engines' work counters cannot
// promise that. Incremental marking trades tracing parallelism for bounded
// pauses; the parallel engines still serve the stop-the-world collections.
func (m *Marker) DrainBudget(budget int) int {
	extra := m.H.extraWords
	bounded := m.bounded
	scanned := 0
	var (
		curID SpaceID
		curS  *Space
	)
	lookup := func(id SpaceID) *Space {
		if int(id) >= len(m.spaces) {
			m.spaces = m.H.Spaces
		}
		curID = id
		curS = m.spaces[id]
		return curS
	}
	for len(m.stack) > 0 && scanned < budget {
		w := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		id := PtrSpace(w)
		s := curS
		if id != curID || s == nil {
			s = lookup(id)
		}
		mem := s.Mem
		off := PtrOff(w)
		hdr := mem[off]
		scanned += ObjWords(hdr)
		if RawPayload(HeaderType(hdr)) {
			continue
		}
		for si, end := off+1+extra, off+ObjWords(hdr); si < end; si++ {
			v := mem[si]
			if !IsPtr(v) {
				continue
			}
			vid := PtrSpace(v)
			if bounded && !m.region.Has(vid) {
				continue
			}
			vs := curS
			if vid != curID || vs == nil {
				vs = lookup(vid)
			}
			voff := PtrOff(v)
			if vs.MarkedAt(voff) {
				continue
			}
			vs.SetMarkAt(voff)
			m.WordsMarked += uint64(ObjWords(vs.Mem[voff]))
			m.ObjectsMarked++
			m.stack = append(m.stack, v)
		}
	}
	return scanned
}

// StackEmpty reports whether no gray objects remain queued.
func (m *Marker) StackEmpty() bool { return len(m.stack) == 0 }

// drainPredicate is the fused scan with the bound routed through the
// InRegion escape hatch; the per-slot indirect call makes it slower than
// Drain's bitset path, which is why SetRegion is the hot-path API.
func (m *Marker) drainPredicate() {
	extra := m.H.extraWords
	for len(m.stack) > 0 {
		w := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		id := PtrSpace(w)
		if int(id) >= len(m.spaces) {
			m.spaces = m.H.Spaces
		}
		mem := m.spaces[id].Mem
		off := PtrOff(w)
		hdr := mem[off]
		if RawPayload(HeaderType(hdr)) {
			continue
		}
		for si, end := off+1+extra, off+ObjWords(hdr); si < end; si++ {
			v := mem[si]
			if !IsPtr(v) || !m.InRegion(v) {
				continue
			}
			m.mark(v)
		}
	}
}

// drainReference is the retained callback-per-slot tracer: one ScanObject
// visitor invocation per popped object, one closure call per slot. The
// differential conformance tests hold the fused Drain to this
// implementation's mark sets and word counts.
func (m *Marker) drainReference() {
	for len(m.stack) > 0 {
		w := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		s := m.H.SpaceOf(w)
		ScanObject(s, PtrOff(w), m.markSlot)
	}
}

// Run marks everything reachable from the heap's roots.
func (m *Marker) Run() {
	m.H.VisitRoots(m.markSlot)
	m.Drain()
}

// ClearMarks drops every mark bit in the given spaces. Marks live in the
// side bitmap, so this is a bitmap memclr guided by the per-block dirty
// summary — O(blocks that received marks), not O(whole space): the old
// header-walking unmark pass visited every block, live or dead, once per
// mark/sweep collection.
func ClearMarks(spaces ...*Space) {
	for _, s := range spaces {
		s.ClearMarkBits()
	}
}
