package heap

// Marker is a generic tracing engine that sets header mark bits without
// moving anything. The mark/sweep collector and the lifetime census both
// use it; they differ only in the region bound and in what they do with the
// marks afterwards.
//
// A Marker is built once per collector and re-armed with Begin before each
// collection: the mark stack keeps its capacity across collections, so
// steady-state collections allocate nothing.
//
// The region is declared as a set of spaces (SetRegion / SetWholeHeap), so
// the per-slot bound check is a bit test rather than an indirect call. The
// InRegion predicate remains as a slow-path escape hatch for bounds that
// are not a union of spaces.
type Marker struct {
	H *Heap

	// InRegion, when non-nil, overrides the region set: pointers it rejects
	// are treated as leaves. This is the slow-path escape hatch; hot-path
	// collectors use SetRegion.
	InRegion func(w Word) bool

	// region is the fast-path bound: a bitset of SpaceIDs, consulted only
	// when bounded is true and InRegion is nil.
	region  SpaceSet
	bounded bool

	// spaces caches H.Spaces across a run, saving a pointer chase per
	// marked object. Begin refreshes it; the engines also refresh it lazily
	// when a pointer names a space beyond the cache (spaces created since
	// the last Begin).
	spaces []*Space

	stack []Word
	// markSlot is the stored slot-visitor closure, created once so passing
	// it to VisitRoots/ScanObject never allocates.
	markSlot func(slot *Word)

	WordsMarked   uint64
	ObjectsMarked int

	// par is the lazily created parallel-drain machinery (parmark.go),
	// persistent so steady-state parallel drains allocate nothing.
	par *parMark
}

// NewMarker prepares a whole-heap marker when inRegion is nil, or a
// predicate-bounded one otherwise; hot-path collectors bound the trace with
// SetRegion instead.
func NewMarker(h *Heap, inRegion func(w Word) bool) *Marker {
	m := &Marker{H: h, InRegion: inRegion, spaces: h.Spaces}
	m.markSlot = func(slot *Word) { m.MarkWord(*slot) }
	return m
}

// SetRegion bounds the trace to exactly the given spaces, routing the
// per-slot check through the bitset fast path (any InRegion predicate is
// cleared). The set's backing array is reused, so re-arming between
// collections allocates nothing.
func (m *Marker) SetRegion(spaces ...*Space) {
	m.InRegion = nil
	m.bounded = true
	m.region.Clear()
	for _, s := range spaces {
		m.region.Add(s.ID)
	}
}

// Region exposes the bitset bound for incremental population (e.g. the
// non-predictive mark/sweep adding steps j..k-1 one by one). Callers must
// have armed the bound with SetRegion first.
func (m *Marker) Region() *SpaceSet { return &m.region }

// SetWholeHeap removes any region bound: every pointer is traced.
func (m *Marker) SetWholeHeap() {
	m.InRegion = nil
	m.bounded = false
}

// Slot returns the marker's stored slot-visitor function, for root
// iterators that need a callback without allocating a fresh closure.
func (m *Marker) Slot() func(slot *Word) { return m.markSlot }

// Begin re-arms the marker for another collection: the work counters reset,
// the space cache refreshes, and the mark stack empties while retaining its
// capacity.
func (m *Marker) Begin() {
	m.stack = m.stack[:0]
	m.spaces = m.H.Spaces
	m.WordsMarked = 0
	m.ObjectsMarked = 0
}

// inRegion reports whether pointer w is inside the trace bound: the bitset
// on the fast path, the InRegion predicate when the escape hatch is armed.
func (m *Marker) inRegion(w Word) bool {
	if m.InRegion != nil {
		return m.InRegion(w)
	}
	return !m.bounded || m.region.HasPtr(w)
}

// MarkWord marks the object w points to (if any) and queues it for scanning.
func (m *Marker) MarkWord(w Word) {
	if !IsPtr(w) || !m.inRegion(w) {
		return
	}
	m.mark(w)
}

// mark sets the mark bit of the (in-bound, pointer) word's object and
// pushes it, if it was not already marked.
func (m *Marker) mark(w Word) {
	id := PtrSpace(w)
	if int(id) >= len(m.spaces) {
		// A space created since the last Begin; refresh the cache rather
		// than mis-index it.
		m.spaces = m.H.Spaces
	}
	s := m.spaces[id]
	off := PtrOff(w)
	hdr := s.Mem[off]
	if Marked(hdr) {
		return
	}
	s.Mem[off] = SetMark(hdr)
	m.WordsMarked += uint64(ObjWords(hdr))
	m.ObjectsMarked++
	m.stack = append(m.stack, w)
}

// Drain scans queued objects until the mark stack is empty. The scan is
// fused with marking: payload words are iterated directly over the owning
// space's Mem slice — no per-object visitor call, no per-slot closure —
// with raw-payload objects and the hidden census word skipped by header
// inspection. SetReferenceTracer reroutes this through the retained
// callback-based reference implementation, which marks the same objects in
// the same order and reports identical work counters.
func (m *Marker) Drain() {
	if refTracer {
		m.drainReference()
		return
	}
	if m.InRegion != nil {
		m.drainPredicate()
		return
	}
	if w := m.H.gcWorkers; w > 0 {
		m.drainParallel(w)
		return
	}
	extra := m.H.extraWords
	bounded := m.bounded
	// One-entry space cache: traces overwhelmingly stay within one space
	// (and a depth-first pop revisits the space just pushed), so caching
	// the last Mem slice elides a spaces-table load per object. curMem
	// stays nil until the first lookup so SpaceID 0 is not spuriously
	// "cached".
	var (
		curID  SpaceID
		curMem []Word
	)
	lookup := func(id SpaceID) []Word {
		if int(id) >= len(m.spaces) {
			m.spaces = m.H.Spaces
		}
		curID = id
		curMem = m.spaces[id].Mem
		return curMem
	}
	for len(m.stack) > 0 {
		w := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		id := PtrSpace(w)
		mem := curMem
		if id != curID || mem == nil {
			mem = lookup(id)
		}
		off := PtrOff(w)
		hdr := mem[off]
		if RawPayload(HeaderType(hdr)) {
			continue
		}
		for si, end := off+1+extra, off+ObjWords(hdr); si < end; si++ {
			v := mem[si]
			if !IsPtr(v) {
				continue
			}
			vid := PtrSpace(v)
			if bounded && !m.region.Has(vid) {
				continue
			}
			// m.mark inlined: the load/branch sequence is the whole per-slot
			// cost, so it must not be a call.
			vmem := curMem
			if vid != curID || vmem == nil {
				vmem = lookup(vid)
			}
			voff := PtrOff(v)
			vhdr := vmem[voff]
			if Marked(vhdr) {
				continue
			}
			vmem[voff] = SetMark(vhdr)
			m.WordsMarked += uint64(ObjWords(vhdr))
			m.ObjectsMarked++
			m.stack = append(m.stack, v)
		}
	}
}

// drainPredicate is the fused scan with the bound routed through the
// InRegion escape hatch; the per-slot indirect call makes it slower than
// Drain's bitset path, which is why SetRegion is the hot-path API.
func (m *Marker) drainPredicate() {
	extra := m.H.extraWords
	for len(m.stack) > 0 {
		w := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		id := PtrSpace(w)
		if int(id) >= len(m.spaces) {
			m.spaces = m.H.Spaces
		}
		mem := m.spaces[id].Mem
		off := PtrOff(w)
		hdr := mem[off]
		if RawPayload(HeaderType(hdr)) {
			continue
		}
		for si, end := off+1+extra, off+ObjWords(hdr); si < end; si++ {
			v := mem[si]
			if !IsPtr(v) || !m.InRegion(v) {
				continue
			}
			m.mark(v)
		}
	}
}

// drainReference is the retained callback-per-slot tracer: one ScanObject
// visitor invocation per popped object, one closure call per slot. The
// differential conformance tests hold the fused Drain to this
// implementation's mark sets and word counts.
func (m *Marker) drainReference() {
	for len(m.stack) > 0 {
		w := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		s := m.H.SpaceOf(w)
		ScanObject(s, PtrOff(w), m.markSlot)
	}
}

// Run marks everything reachable from the heap's roots.
func (m *Marker) Run() {
	m.H.VisitRoots(m.markSlot)
	m.Drain()
}

// ClearMarks resets the mark bit of every block in the given spaces. Like
// the fused drains, it iterates the block headers directly rather than
// paying WalkSpace's per-block callback: the sweep-side unmark pass runs
// once per mark/sweep collection over every block, live or dead.
func ClearMarks(spaces ...*Space) {
	for _, s := range spaces {
		mem := s.Mem
		for off := 0; off < s.Top; {
			hdr := mem[off]
			mem[off] = ClearMark(hdr)
			off += ObjWords(hdr)
		}
	}
}
