package heap

// Marker is a generic tracing engine that sets header mark bits without
// moving anything. The mark/sweep collector and the lifetime census both
// use it; they differ only in the region predicate and in what they do with
// the marks afterwards.
//
// A Marker is built once per collector and re-armed with Begin before each
// collection: the mark stack keeps its capacity across collections, so
// steady-state collections allocate nothing.
type Marker struct {
	H *Heap
	// InRegion bounds the trace: pointers to objects outside the region are
	// treated as leaves. A nil predicate traces the whole heap.
	InRegion func(w Word) bool

	stack []Word
	// markSlot is the stored slot-visitor closure, created once so passing
	// it to VisitRoots/ScanObject never allocates.
	markSlot func(slot *Word)

	WordsMarked   uint64
	ObjectsMarked int
}

// NewMarker prepares a whole-heap marker when inRegion is nil, or a
// region-bounded one otherwise.
func NewMarker(h *Heap, inRegion func(w Word) bool) *Marker {
	m := &Marker{H: h, InRegion: inRegion}
	m.markSlot = func(slot *Word) { m.MarkWord(*slot) }
	return m
}

// Begin re-arms the marker for another collection: the work counters reset
// and the mark stack empties while retaining its capacity.
func (m *Marker) Begin() {
	m.stack = m.stack[:0]
	m.WordsMarked = 0
	m.ObjectsMarked = 0
}

// MarkWord marks the object w points to (if any) and queues it for scanning.
func (m *Marker) MarkWord(w Word) {
	if !IsPtr(w) {
		return
	}
	if m.InRegion != nil && !m.InRegion(w) {
		return
	}
	s := m.H.SpaceOf(w)
	off := PtrOff(w)
	hdr := s.Mem[off]
	if Marked(hdr) {
		return
	}
	s.Mem[off] = SetMark(hdr)
	m.WordsMarked += uint64(ObjWords(hdr))
	m.ObjectsMarked++
	m.stack = append(m.stack, w)
}

// Drain scans queued objects until the mark stack is empty.
func (m *Marker) Drain() {
	for len(m.stack) > 0 {
		w := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		s := m.H.SpaceOf(w)
		ScanObject(s, PtrOff(w), m.markSlot)
	}
}

// Run marks everything reachable from the heap's roots.
func (m *Marker) Run() {
	m.H.VisitRoots(m.markSlot)
	m.Drain()
}

// ClearMarks resets the mark bit of every block in the given spaces.
func ClearMarks(spaces ...*Space) {
	for _, s := range spaces {
		WalkSpace(s, func(off int, hdr Word) bool {
			s.Mem[off] = ClearMark(hdr)
			return true
		})
	}
}
