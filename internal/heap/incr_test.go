package heap

import (
	"testing"
)

// buildIncrChain bump-allocates a chain of n pairs in s (car = fixnum,
// cdr = previous pair) and returns the head pointer word.
func buildIncrChain(h *Heap, s *Space, n int) Word {
	prev := NullWord
	for i := 0; i < n; i++ {
		off, ok := s.Bump(3)
		if !ok {
			panic("incr_test: chain arena too small")
		}
		w := h.InitObject(s, off, TPair, 2)
		s.Mem[off+1] = FixnumWord(int64(i))
		s.Mem[off+2] = prev
		prev = w
	}
	return prev
}

func TestGCIncrementalConfig(t *testing.T) {
	t.Cleanup(func() {
		SetDefaultGCIncremental(false)
		SetDefaultGCSliceBudget(0)
	})

	if DefaultGCIncremental() {
		t.Fatal("incremental mode must default off")
	}
	if DefaultGCSliceBudget() != DefaultSliceBudget {
		t.Fatalf("DefaultGCSliceBudget() = %d, want %d", DefaultGCSliceBudget(), DefaultSliceBudget)
	}

	SetDefaultGCIncremental(true)
	SetDefaultGCSliceBudget(512)
	h := New()
	if !h.GCIncremental() || h.GCSliceBudget() != 512 {
		t.Fatalf("New() inherited (incr=%v, slice=%d), want (true, 512)",
			h.GCIncremental(), h.GCSliceBudget())
	}

	h.SetGCIncremental(false)
	if h.GCIncremental() {
		t.Fatal("SetGCIncremental(false) did not stick")
	}
	h.SetGCSliceBudget(0)
	if h.GCSliceBudget() != DefaultSliceBudget {
		t.Fatalf("SetGCSliceBudget(0) left %d, want the default %d",
			h.GCSliceBudget(), DefaultSliceBudget)
	}

	SetDefaultGCSliceBudget(-3)
	if DefaultGCSliceBudget() != DefaultSliceBudget {
		t.Fatal("a negative default budget must restore DefaultSliceBudget")
	}
}

func TestGCIncrementalEnv(t *testing.T) {
	t.Setenv(EnvGCIncr, "")
	t.Setenv(EnvGCSlice, "")
	if GCIncrFromEnv() {
		t.Fatal("GCIncrFromEnv() with the variable unset")
	}
	if GCSliceFromEnv() != DefaultSliceBudget {
		t.Fatalf("GCSliceFromEnv() unset = %d, want %d", GCSliceFromEnv(), DefaultSliceBudget)
	}

	t.Setenv(EnvGCIncr, "1")
	t.Setenv(EnvGCSlice, "777")
	if !GCIncrFromEnv() {
		t.Fatal("RDGC_GC_INCR=1 not honored")
	}
	if GCSliceFromEnv() != 777 {
		t.Fatalf("RDGC_GC_SLICE=777 read back %d", GCSliceFromEnv())
	}
	if got := ResolveGCSlice(0); got != 777 {
		t.Fatalf("ResolveGCSlice(0) = %d, want the env's 777", got)
	}
	if got := ResolveGCSlice(64); got != 64 {
		t.Fatalf("ResolveGCSlice(64) = %d, want the explicit flag to win", got)
	}

	t.Setenv(EnvGCIncr, "nonsense")
	t.Setenv(EnvGCSlice, "-9")
	if GCIncrFromEnv() {
		t.Fatal("an unparsable RDGC_GC_INCR must read as off")
	}
	if GCSliceFromEnv() != DefaultSliceBudget {
		t.Fatal("a non-positive RDGC_GC_SLICE must fall back to the default")
	}
}

// TestIncrMarkerSlices drives a full incremental cycle by hand: root scan,
// debt-paced bounded slices, termination — and checks the result against
// what a stop-the-world mark of the same graph finds.
func TestIncrMarkerSlices(t *testing.T) {
	const pairs = 500
	h := New()
	h.SetGCSliceBudget(64)
	s := h.NewSpace("incr-arena", 1<<14)
	h.GlobalWord(buildIncrChain(h, s, pairs))

	m := NewMarker(h, nil)
	m.SetRegion(s)
	m.Begin()
	im := NewIncrMarker(h, m)

	rootPause := im.StartRoots()
	if rootPause == 0 {
		t.Fatal("StartRoots() scanned no root slots")
	}
	if im.Budget != 64 {
		t.Fatalf("Budget = %d, want the heap's 64", im.Budget)
	}

	// The debt threshold is Budget/incrMarkRatio = 16 allocated words.
	if im.NeedSlice(8) {
		t.Fatal("8 words of debt must not warrant a 64-word slice yet")
	}
	if !im.NeedSlice(8) {
		t.Fatal("16 accumulated words of debt must warrant a slice")
	}

	var sliceWords uint64
	for !im.Done() {
		p := im.RunSlice()
		// The budget is checked between objects, so a slice may overshoot
		// by at most the last object scanned (a 3-word pair here).
		if p > 64+3 {
			t.Fatalf("slice scanned %d words, over the 64-word budget plus one object", p)
		}
		sliceWords += p
	}
	if im.Slices < 2 {
		t.Fatalf("marking %d pairs at budget 64 took %d slices, want several", pairs, im.Slices)
	}
	if sliceWords != im.SliceWords {
		t.Fatalf("SliceWords = %d, slices returned %d", im.SliceWords, sliceWords)
	}

	term := im.FinishDrain()
	if term < rootPause {
		t.Fatalf("termination pause %d cannot undercut the root re-scan %d", term, rootPause)
	}
	if im.Active {
		t.Fatal("marker still active after FinishDrain")
	}

	// Stop-the-world mark of the identical graph: same objects, same words.
	h2 := New()
	s2 := h2.NewSpace("stw-arena", 1<<14)
	h2.GlobalWord(buildIncrChain(h2, s2, pairs))
	m2 := NewMarker(h2, nil)
	m2.SetRegion(s2)
	m2.Begin()
	m2.Run()
	if m.ObjectsMarked != m2.ObjectsMarked || m.WordsMarked != m2.WordsMarked {
		t.Fatalf("incremental marked %d objects / %d words; stop-the-world %d / %d",
			m.ObjectsMarked, m.WordsMarked, m2.ObjectsMarked, m2.WordsMarked)
	}
}

// TestIncrMarkerShade checks the insertion barrier's shading: a pointer
// stored while marking is active is grayed exactly once, and non-pointers
// are free.
func TestIncrMarkerShade(t *testing.T) {
	h := New()
	s := h.NewSpace("shade-arena", 1<<12)
	h.GlobalWord(buildIncrChain(h, s, 4))
	// An object the roots do not reach: only the barrier can save it.
	off, _ := s.Bump(3)
	orphan := h.InitObject(s, off, TPair, 2)
	s.Mem[off+1] = FixnumWord(7)
	s.Mem[off+2] = NullWord

	m := NewMarker(h, nil)
	m.SetRegion(s)
	m.Begin()
	im := NewIncrMarker(h, m)

	var g GCStats
	im.Shade(orphan, &g)
	if g.BarrierShades != 0 {
		t.Fatal("Shade before StartRoots must be inert")
	}

	im.StartRoots()
	im.Shade(FixnumWord(3), &g)
	if g.BarrierShades != 0 {
		t.Fatal("shading a fixnum counted as a barrier shade")
	}
	im.Shade(orphan, &g)
	if g.BarrierShades != 1 || !s.MarkedAt(off) {
		t.Fatalf("first shade: BarrierShades = %d, marked = %v; want 1, true",
			g.BarrierShades, s.MarkedAt(off))
	}
	im.Shade(orphan, &g)
	if g.BarrierShades != 1 {
		t.Fatalf("re-shading a marked object counted again: BarrierShades = %d", g.BarrierShades)
	}

	im.FinishDrain()
	if !s.MarkedAt(off) {
		t.Fatal("the shaded orphan lost its mark at termination")
	}
}

func TestIncrMarkerCancel(t *testing.T) {
	h := New()
	h.SetGCSliceBudget(8)
	s := h.NewSpace("cancel-arena", 1<<13)
	h.GlobalWord(buildIncrChain(h, s, 200))

	m := NewMarker(h, nil)
	m.SetRegion(s)
	m.Begin()
	im := NewIncrMarker(h, m)
	im.StartRoots()
	im.RunSlice() // leave the cycle half-done
	im.Cancel()
	if im.Active || !m.StackEmpty() {
		t.Fatalf("Cancel left active=%v, stack empty=%v", im.Active, m.StackEmpty())
	}

	// After clearing the partial marks, a fresh stop-the-world mark must see
	// the whole chain (stale marks would have truncated it).
	ClearMarks(s)
	m.Begin()
	m.Run()
	if m.ObjectsMarked != 200 {
		t.Fatalf("post-cancel mark found %d objects, want 200", m.ObjectsMarked)
	}
}

// TestLazySweepMatchesEager sweeps one fixture lazily — a mix of on-demand,
// paced, and flush sweeps — and its twin eagerly, and requires bit-identical
// heap images, free lists, and word totals.
func TestLazySweepMatchesEager(t *testing.T) {
	hl, lazySpaces := buildSweepFixture(42, 0)
	he, eagerSpaces := buildSweepFixture(42, 0)
	eager := NewSweeper(he).Sweep(eagerSpaces...)

	sw := NewSweeper(hl)
	sw.BeginLazy(lazySpaces...)
	wantPend := 0
	for _, s := range lazySpaces {
		wantPend += s.NumBlocks()
	}
	if sw.LazyPending() != wantPend {
		t.Fatalf("LazyPending() = %d after BeginLazy, want %d", sw.LazyPending(), wantPend)
	}

	var lazy uint64
	// On-demand: the allocation path's EnsureSwept, once per block.
	lazy += uint64(sw.EnsureSwept(lazySpaces[0], 3))
	if w := sw.EnsureSwept(lazySpaces[0], 3); w != 0 {
		t.Fatalf("EnsureSwept swept block 3 twice (second call returned %d)", w)
	}
	// Paced: a few background blocks in address order.
	for i := 0; i < 5; i++ {
		w, ok := sw.SweepPendingBlock()
		if !ok {
			t.Fatal("SweepPendingBlock() ran dry with blocks still pending")
		}
		lazy += uint64(w)
	}
	// Flush: everything left, as a stop-the-world reset would.
	lazy += sw.FinishLazy()
	if sw.LazyPending() != 0 {
		t.Fatalf("LazyPending() = %d after FinishLazy, want 0", sw.LazyPending())
	}
	if _, ok := sw.SweepPendingBlock(); ok {
		t.Fatal("SweepPendingBlock() found work after FinishLazy")
	}
	if lazy != eager {
		t.Fatalf("lazy sweep examined %d words, eager %d", lazy, eager)
	}

	for i, se := range eagerSpaces {
		sl := lazySpaces[i]
		for off, w := range se.Mem {
			if sl.Mem[off] != w {
				t.Fatalf("space %d word %d: lazy %#x, eager %#x", i, off, sl.Mem[off], w)
			}
		}
		for b := 0; b < se.NumBlocks(); b++ {
			el, ll := freeListOf(se, b), freeListOf(sl, b)
			if len(el) != len(ll) {
				t.Fatalf("space %d block %d: free list lengths %d vs %d", i, b, len(ll), len(el))
			}
			for j := range el {
				if el[j] != ll[j] {
					t.Fatalf("space %d block %d: free lists diverge at %d", i, b, j)
				}
			}
		}
	}
}

// TestHeapAddPause checks the pause plumbing every collector routes through:
// the histogram, the max/total counters, and the optional raw log.
func TestHeapAddPause(t *testing.T) {
	h := New()
	var logged []uint64
	h.SetPauseLog(func(words uint64) { logged = append(logged, words) })

	var g GCStats
	for _, w := range []uint64{5, 900, 17} {
		h.AddPause(&g, w)
	}
	if g.Pauses.Count != 3 || g.TotalPauseWords != 922 || g.MaxPauseWords != 900 {
		t.Fatalf("pause counters = (%d, %d, %d), want (3, 922, 900)",
			g.Pauses.Count, g.TotalPauseWords, g.MaxPauseWords)
	}
	if len(logged) != 3 || logged[0] != 5 || logged[1] != 900 || logged[2] != 17 {
		t.Fatalf("pause log saw %v, want [5 900 17]", logged)
	}

	h.SetPauseLog(nil)
	h.AddPause(&g, 1)
	if len(logged) != 3 {
		t.Fatal("a removed pause log still received values")
	}
	if g.Pauses.Count != 4 {
		t.Fatal("AddPause without a log must still feed the histogram")
	}
}
