package heap

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// logSink records every event as a formatted line, for asserting exactly
// which events each mutator operation produces.
type logSink struct{ lines []string }

func (l *logSink) logf(format string, args ...any) {
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}
func (l *logSink) EvAlloc(w Word, t Type, payload int) { l.logf("alloc %v/%d", t, payload) }
func (l *logSink) EvStore(w Word, i int, val Word)     { l.logf("store %d %#x", i, uint64(val)) }
func (l *logSink) EvFill(w Word, val Word)             { l.logf("fill %#x", uint64(val)) }
func (l *logSink) EvRaw(w Word, i int, bits uint64)    { l.logf("raw %d %#x", i, bits) }
func (l *logSink) EvIntern(w Word, name string)        { l.logf("intern %s", name) }
func (l *logSink) EvRootPush(w Word)                   { l.logf("push %#x", uint64(w)) }
func (l *logSink) EvRootPopTo(depth int)               { l.logf("popto %d", depth) }
func (l *logSink) EvRootSet(r Ref, w Word)             { l.logf("set %d %#x", r, uint64(w)) }
func (l *logSink) EvGlobal(w Word)                     { l.logf("global %#x", uint64(w)) }

func (l *logSink) take() []string {
	out := l.lines
	l.lines = nil
	return out
}

func wantEvents(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events %q, want %d %q", len(got), got, len(want), want)
	}
	for i := range want {
		if !strings.HasPrefix(got[i], want[i]) {
			t.Errorf("event %d = %q, want prefix %q", i, got[i], want[i])
		}
	}
}

func TestEventSinkCoversMutatorOps(t *testing.T) {
	h, _ := newBumpHeap(t, 4096)
	sink := &logSink{}
	h.SetEventSink(sink)
	defer h.SetEventSink(nil)

	s := h.Scope()
	a := h.Fix(1)
	b := h.Null()
	wantEvents(t, sink.take(), "push", "push")

	p := h.Cons(a, b)
	wantEvents(t, sink.take(), "alloc pair/2", "store 0", "store 1", "push")

	h.SetCar(p, b)
	wantEvents(t, sink.take(), "store 0")

	v := h.MakeVector(3, a)
	wantEvents(t, sink.take(), "alloc vector/3", "fill", "push")
	h.VectorSet(v, 2, p)
	wantEvents(t, sink.take(), "store 2")

	bx := h.Box(a)
	wantEvents(t, sink.take(), "alloc box/1", "store 0", "push")
	h.SetBox(bx, b)
	wantEvents(t, sink.take(), "store 0")

	h.Flonum(1.5)
	wantEvents(t, sink.take(),
		"alloc flonum/1", fmt.Sprintf("raw 0 %#x", math.Float64bits(1.5)), "push")

	sym := h.Intern("x")
	wantEvents(t, sink.take(), "alloc symbol/1", "intern x")
	if h.Intern("x") != sym {
		t.Error("re-intern changed identity")
	}
	wantEvents(t, sink.take()) // dedup hit: no events

	h.Set(a, FixnumWord(9))
	wantEvents(t, sink.take(), fmt.Sprintf("set %d", a))

	g := h.Global(a)
	wantEvents(t, sink.take(), "global")
	if h.Get(g) != FixnumWord(9) {
		t.Error("global holds wrong word")
	}

	inner := h.Scope()
	h.Fix(7)
	sink.take()
	inner.Close()
	wantEvents(t, sink.take(), "popto")

	s.Close()
	wantEvents(t, sink.take(), "popto 0")
}

func TestReplaySupportMethods(t *testing.T) {
	h, _ := newBumpHeap(t, 4096)

	w := h.AllocObject(TPair, 2)
	if h.LiveRefs() != 0 {
		t.Fatal("AllocObject must not push a handle")
	}
	val := FixnumWord(42)
	h.StoreField(w, 1, val)
	if h.Payload(w)[1] != val {
		t.Error("StoreField missed")
	}

	v := h.AllocObject(TVector, 4)
	h.FillFields(v, val)
	for i, got := range h.Payload(v) {
		if got != val {
			t.Errorf("FillFields slot %d = %#x", i, uint64(got))
		}
	}

	f := h.AllocObject(TFlonum, 1)
	h.StoreRaw(f, 0, math.Float64bits(2.5))
	if math.Float64frombits(uint64(h.Payload(f)[0])) != 2.5 {
		t.Error("StoreRaw missed")
	}

	r := h.RefOf(w)
	h.RefOf(v)
	h.TruncateRefs(1)
	if h.LiveRefs() != 1 || h.Get(r) != w {
		t.Error("TruncateRefs mangled the handle stack")
	}
	h.TruncateRefs(0)

	sw := h.AllocObject(TSymbol, 1)
	sr := h.AdoptSymbol(sw, "adopted")
	if h.GlobalRoots() != 1 {
		t.Errorf("GlobalRoots = %d, want 1", h.GlobalRoots())
	}
	if h.SymbolName(sr) != "adopted" {
		t.Errorf("SymbolName = %q", h.SymbolName(sr))
	}
	if h.Intern("adopted") != sr {
		t.Error("Intern does not see the adopted symbol")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("AdoptSymbol of an interned name must panic")
			}
		}()
		h.AdoptSymbol(h.AllocObject(TSymbol, 1), "adopted")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("TruncateRefs past the stack must panic")
			}
		}()
		h.TruncateRefs(99)
	}()
}

func TestMoveHookSeesEveryEvacuation(t *testing.T) {
	h := New()
	a := &movingAlloc{h: h, from: h.NewSpace("A", 4096), to: h.NewSpace("B", 4096)}
	h.SetAllocator(a)

	moves := make(map[Word]Word)
	h.SetMoveHook(func(old, new Word) { moves[old] = new })
	defer h.SetMoveHook(nil)

	s := h.Scope()
	defer s.Close()
	p := h.Cons(h.Fix(1), h.Null())
	q := h.Cons(h.Fix(2), p)
	before := []Word{h.Get(p), h.Get(q)}

	a.flip()

	for _, old := range before {
		if _, ok := moves[old]; !ok {
			t.Errorf("no move recorded for %#x", uint64(old))
		}
	}
	if got := moves[before[0]]; got != h.Get(p) {
		t.Errorf("move hook new address %#x, Ref sees %#x", uint64(got), uint64(h.Get(p)))
	}
}
