// Package heap implements the simulated, word-addressed heap that every
// collector in this repository manages.
//
// The heap is deliberately independent of Go's own garbage collector: all
// object storage lives inside []Word arenas ("spaces"), objects are tagged
// 64-bit words, and collectors really copy, mark, and sweep those words.
// Mutators (benchmarks, workload generators) refer to heap objects only
// through Refs — slots in a GC-updated handle stack — so copying collectors
// are free to move anything at any collection.
//
// Time, throughout the repository, is measured in allocated words.
package heap

import "fmt"

// Word is a tagged 64-bit heap word. The low two bits carry the tag:
//
//	00 fixnum     signed 62-bit integer in the high bits
//	01 pointer    space id and word offset of an object header
//	10 immediate  null, booleans, characters, unspecified, eof
//	11 header     first word of every heap object (never a value)
type Word uint64

// Tag values for the low two bits of a Word.
const (
	TagFixnum Word = 0
	TagPtr    Word = 1
	TagImm    Word = 2
	TagHeader Word = 3

	tagMask Word = 3
)

// TagOf returns the tag bits of w.
func TagOf(w Word) Word { return w & tagMask }

// IsFixnum reports whether w is a fixnum.
func IsFixnum(w Word) bool { return w&tagMask == TagFixnum }

// IsPtr reports whether w is a heap pointer.
func IsPtr(w Word) bool { return w&tagMask == TagPtr }

// IsImm reports whether w is a non-pointer immediate constant.
func IsImm(w Word) bool { return w&tagMask == TagImm }

// IsHeader reports whether w is an object header word.
func IsHeader(w Word) bool { return w&tagMask == TagHeader }

// FixnumWord encodes a signed integer as a fixnum word.
// Values must fit in 62 bits; the encoding truncates silently beyond that,
// which no workload in this repository approaches.
func FixnumWord(n int64) Word { return Word(uint64(n) << 2) }

// FixnumVal decodes a fixnum word. It panics if w is not a fixnum.
func FixnumVal(w Word) int64 {
	if !IsFixnum(w) {
		panic(fmt.Sprintf("heap: FixnumVal of non-fixnum %#x", uint64(w)))
	}
	return int64(w) >> 2
}

// Immediate constants. The immediate subtype lives in bits 2..7 and any
// payload (e.g. a character code) in bits 8 and up.
const (
	immNull   Word = 0
	immFalse  Word = 1
	immTrue   Word = 2
	immUnspec Word = 3
	immEOF    Word = 4
	immChar   Word = 5
)

// The canonical immediate words.
var (
	NullWord   = TagImm | immNull<<2
	FalseWord  = TagImm | immFalse<<2
	TrueWord   = TagImm | immTrue<<2
	UnspecWord = TagImm | immUnspec<<2
	EOFWord    = TagImm | immEOF<<2
)

// CharWord encodes a character immediate.
func CharWord(r rune) Word { return TagImm | immChar<<2 | Word(r)<<8 }

// CharVal decodes a character immediate; ok is false if w is not a character.
func CharVal(w Word) (rune, bool) {
	if !IsImm(w) || (w>>2)&0x3f != immChar {
		return 0, false
	}
	return rune(w >> 8), true
}

// BoolWord converts a Go bool to the Scheme-style immediate.
func BoolWord(b bool) Word {
	if b {
		return TrueWord
	}
	return FalseWord
}

// SpaceID identifies a Space within a Heap.
type SpaceID uint16

// Pointer layout: tag(2) | offset(32) | space(16). The offset is the word
// index of the object's header within its space.
const (
	ptrOffShift   = 2
	ptrOffBits    = 32
	ptrSpaceShift = ptrOffShift + ptrOffBits
)

// PtrWord encodes a pointer to the header at word offset off in space id.
func PtrWord(id SpaceID, off int) Word {
	return TagPtr | Word(off)<<ptrOffShift | Word(id)<<ptrSpaceShift
}

// PtrSpace returns the space id of pointer word w.
func PtrSpace(w Word) SpaceID { return SpaceID(w >> ptrSpaceShift) }

// PtrOff returns the header word offset of pointer word w within its space.
func PtrOff(w Word) int { return int(w>>ptrOffShift) & (1<<ptrOffBits - 1) }

// Type is the dynamic type of a heap object, stored in its header.
type Type uint8

// Object types. TFree marks a free block in mark/sweep-managed spaces; it is
// never a live object. Payloads of TFlonum and TBytevec are raw (never
// scanned for pointers); all other payloads are scanned word by word.
const (
	TPair Type = iota
	TVector
	TFlonum
	TSymbol
	TBytevec
	TBox
	TFree
	numTypes
)

var typeNames = [numTypes]string{"pair", "vector", "flonum", "symbol", "bytevector", "box", "free"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Header layout: tag(2) | type(6) | mark(1) | unused(7) | size(48).
// size counts the payload words that follow the header (including the
// hidden birth-stamp word when the heap has census tracking enabled).
const (
	hdrTypeShift = 2
	hdrMarkBit   = Word(1) << 8
	hdrSizeShift = 16
)

// HeaderWord builds an unmarked header for an object of type t whose payload
// occupies size words.
func HeaderWord(t Type, size int) Word {
	return TagHeader | Word(t)<<hdrTypeShift | Word(size)<<hdrSizeShift
}

// HeaderType extracts the object type from a header word.
func HeaderType(h Word) Type { return Type(h >> hdrTypeShift & 0x3f) }

// HeaderSize extracts the payload size in words from a header word.
func HeaderSize(h Word) int { return int(h >> hdrSizeShift) }

// Marked reports whether the header's mark bit is set.
func Marked(h Word) bool { return h&hdrMarkBit != 0 }

// SetMark returns h with the mark bit set.
func SetMark(h Word) Word { return h | hdrMarkBit }

// ClearMark returns h with the mark bit cleared.
func ClearMark(h Word) Word { return h &^ hdrMarkBit }

// RawPayload reports whether objects of type t have payloads that must not
// be scanned for pointers.
func RawPayload(t Type) bool { return t == TFlonum || t == TBytevec }
