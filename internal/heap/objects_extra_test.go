package heap

import (
	"testing"
	"testing/quick"
)

func TestBox(t *testing.T) {
	h, _ := newBumpHeap(t, 1024)
	s := h.Scope()
	defer s.Close()
	b := h.Box(h.Fix(5))
	if got := h.FixVal(h.Unbox(b)); got != 5 {
		t.Errorf("Unbox = %d", got)
	}
	h.SetBox(b, h.Fix(9))
	if got := h.FixVal(h.Unbox(b)); got != 9 {
		t.Errorf("after SetBox, Unbox = %d", got)
	}
}

func TestBytevector(t *testing.T) {
	h, _ := newBumpHeap(t, 1024)
	s := h.Scope()
	defer s.Close()
	for _, n := range []int{0, 1, 7, 8, 9, 64} {
		b := h.Bytevector(n)
		w := h.Get(b)
		if HeaderType(h.Header(w)) != TBytevec {
			t.Fatalf("Bytevector(%d) wrong type", n)
		}
		want := (n + 7) / 8
		if want == 0 {
			want = 1
		}
		if got := len(h.Payload(w)); got != want {
			t.Errorf("Bytevector(%d): %d payload words, want %d", n, got, want)
		}
	}
}

func TestReturn2(t *testing.T) {
	h, _ := newBumpHeap(t, 1024)
	outer := h.Scope()
	defer outer.Close()
	base := h.LiveRefs()
	s := h.Scope()
	a := h.Cons(h.Fix(1), h.Null())
	h.Fix(99) // filler that must be released
	b := h.Cons(h.Fix(2), h.Null())
	a2, b2 := s.Return2(a, b)
	if h.LiveRefs() != base+2 {
		t.Fatalf("refs = %d, want %d", h.LiveRefs(), base+2)
	}
	if h.FixVal(h.Car(a2)) != 1 || h.FixVal(h.Car(b2)) != 2 {
		t.Error("Return2 lost values")
	}
}

func TestRefOfAndDup(t *testing.T) {
	h, _ := newBumpHeap(t, 1024)
	s := h.Scope()
	defer s.Close()
	p := h.Cons(h.Fix(3), h.Null())
	w := h.Get(p)
	r := h.RefOf(w)
	if !h.Eq(p, r) {
		t.Error("RefOf not Eq to source")
	}
	d := h.Dup(p)
	h.Set(d, NullWord)
	if h.IsNull(p) {
		t.Error("mutating a Dup changed the original handle")
	}
}

func TestGCStatsHelpers(t *testing.T) {
	var g GCStats
	var s Stats
	if g.MarkCons(&s) != 0 {
		t.Error("MarkCons with zero allocation should be 0")
	}
	s.WordsAllocated = 100
	g.WordsCopied = 30
	g.WordsMarked = 20
	if got := g.MarkCons(&s); got != 0.5 {
		t.Errorf("MarkCons = %v, want 0.5", got)
	}
	g.AddPause(10)
	g.AddPause(30)
	g.AddPause(20)
	if g.MaxPauseWords != 30 || g.TotalPauseWords != 60 {
		t.Errorf("pauses: max %d total %d", g.MaxPauseWords, g.TotalPauseWords)
	}
	g.NoteLive(500)
	g.NoteLive(200)
	if g.PeakLive != 500 {
		t.Errorf("PeakLive = %d", g.PeakLive)
	}
}

func TestEvacuatorOverflowCallback(t *testing.T) {
	h := New()
	from := h.NewSpace("from", 1024)
	small := h.NewSpace("small", 8)
	h.SetAllocator(&bumpAlloc{h: h, s: from})

	s := h.Scope()
	defer s.Close()
	var keep []Ref
	for i := 0; i < 20; i++ {
		keep = append(keep, h.Cons(h.Fix(int64(i)), h.Null()))
	}

	overflowed := 0
	e := NewEvacuator(h, func(w Word) bool { return PtrSpace(w) == from.ID }, small)
	e.Overflow = func(need int) *Space {
		overflowed++
		return h.NewSpace("spill", 256)
	}
	e.Run()
	if overflowed == 0 {
		t.Fatal("overflow callback never fired")
	}
	for i, r := range keep {
		if got := h.FixVal(h.Car(r)); got != int64(i) {
			t.Errorf("object %d corrupted after overflow evacuation: %d", i, got)
		}
		if PtrSpace(h.Get(r)) == from.ID {
			t.Errorf("object %d not evacuated", i)
		}
	}
}

func TestEvacuatorOverflowPanicsWithoutCallback(t *testing.T) {
	h := New()
	from := h.NewSpace("from", 1024)
	small := h.NewSpace("small", 4)
	h.SetAllocator(&bumpAlloc{h: h, s: from})
	s := h.Scope()
	defer s.Close()
	for i := 0; i < 10; i++ {
		h.Cons(h.Fix(int64(i)), h.Null())
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow without callback did not panic")
		}
	}()
	NewEvacuator(h, func(w Word) bool { return PtrSpace(w) == from.ID }, small).Run()
}

func TestCheckDetectsCorruption(t *testing.T) {
	h, a := newBumpHeap(t, 1024)
	s := h.Scope()
	defer s.Close()
	h.Cons(h.Fix(1), h.Null())
	if err := Check(h); err != nil {
		t.Fatalf("clean heap failed Check: %v", err)
	}
	// Smash the header.
	a.s.Mem[0] = FixnumWord(42)
	if err := Check(h); err == nil {
		t.Error("Check missed a corrupted header")
	}
}

func TestCheckDetectsStaleMark(t *testing.T) {
	h, a := newBumpHeap(t, 1024)
	s := h.Scope()
	defer s.Close()
	h.Cons(h.Fix(1), h.Null())
	a.s.Mem[0] = SetMark(a.s.Mem[0])
	if err := Check(h); err == nil {
		t.Error("Check missed a stale mark bit")
	}
}

func TestAllocHookFires(t *testing.T) {
	h, _ := newBumpHeap(t, 4096)
	s := h.Scope()
	defer s.Close()
	fired := 0
	h.SetAllocHook(10, func() {
		fired++
		h.ScheduleHook(h.Now() + 10)
	})
	for i := 0; i < 30; i++ {
		h.Cons(h.Fix(int64(i)), h.Null()) // 3 words each
	}
	if fired < 5 {
		t.Errorf("hook fired %d times over 90 words, want >= 5", fired)
	}
}

func TestFixnumNegative(t *testing.T) {
	f := func(n int32) bool {
		return FixnumVal(FixnumWord(int64(n))) == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
