package heap

import "fmt"

// Allocator is the policy side of a collector: it decides where objects are
// placed and when to collect. AllocRaw returns a pointer word to a freshly
// initialized object (header written, payload zeroed, birth stamp set when
// census tracking is on). It may run a garbage collection, so callers must
// hold every live reference in a Ref, never in a bare Word across the call.
type Allocator interface {
	AllocRaw(t Type, payloadWords int) Word
}

// Collector is the full interface the experiment harnesses drive.
type Collector interface {
	Allocator
	// Collect forces a (major) collection.
	Collect()
	// GCStats reports the collector's cumulative work counters.
	GCStats() *GCStats
	// Name identifies the collector in reports.
	Name() string
	// Live returns the words currently occupied in the collector's spaces
	// (live data plus any not-yet-collected garbage).
	Live() int
}

// Barrier observes mutator stores of pointers into heap objects. Generational
// collectors install a barrier to maintain their remembered sets.
type Barrier interface {
	// RecordWrite is called after the mutator stores val into a field of the
	// object that obj points to. val may be any word; barriers filter.
	RecordWrite(obj, val Word)
}

type nopBarrier struct{}

func (nopBarrier) RecordWrite(_, _ Word) {}

// Stats counts mutator-side activity. Allocated words are the repository's
// clock: every experiment measures time in words allocated.
type Stats struct {
	WordsAllocated   uint64
	ObjectsAllocated uint64
}

// GCStats counts collector-side work. The mark/cons ratio of a run is
// (WordsCopied+WordsMarked)/WordsAllocated.
type GCStats struct {
	Collections      int
	MajorCollections int
	WordsCopied      uint64 // words moved by copying collections
	WordsMarked      uint64 // words marked in place by mark/sweep collections
	WordsSwept       uint64 // words examined by sweep phases
	WordsPromoted    uint64 // words moved from a young to an old generation
	TotalPauseWords  uint64 // sum over collections of words traced
	MaxPauseWords    uint64
	RemsetPeak       int    // largest remembered set observed
	RemsetScanned    uint64 // remembered-set entries traced as roots
	PeakLive         int    // largest post-collection occupancy observed
	BarrierShades    uint64 // objects shaded gray by the incremental write barrier

	// Age-based tenuring and adaptive-policy accounting (tenure.go,
	// internal/policy). All three stay zero under wholesale promotion, so
	// threshold-1 runs report GCStats bit-identical to pre-tenuring ones.
	WordsTenured      uint64 // survivor words retained in the nursery by age routing
	TenureThreshold   int    // threshold in effect after the last tenured collection (0 = wholesale)
	PolicyAdaptations int    // knob changes applied by the adaptive controller

	// Pauses is the histogram of every mutator-visible pause: one entry per
	// stop-the-world collection, and in incremental mode one entry per mark
	// slice, termination phase, and on-demand sweep. Its TotalWords/MaxWords
	// mirror TotalPauseWords/MaxPauseWords.
	Pauses PauseHist
}

// NoteLive records a post-collection occupancy measurement.
func (g *GCStats) NoteLive(words int) {
	if words > g.PeakLive {
		g.PeakLive = words
	}
}

// MarkCons returns the cumulative mark/cons ratio against the given
// mutator statistics.
func (g *GCStats) MarkCons(s *Stats) float64 {
	if s.WordsAllocated == 0 {
		return 0
	}
	return float64(g.WordsCopied+g.WordsMarked) / float64(s.WordsAllocated)
}

// AddPause records the size of one collection pause.
func (g *GCStats) AddPause(words uint64) {
	g.TotalPauseWords += words
	if words > g.MaxPauseWords {
		g.MaxPauseWords = words
	}
	g.Pauses.Record(words)
}

// AddPause records one mutator-visible pause into g and, when a pause log is
// installed on the heap, streams the raw value to it. Collectors route every
// pause through here so `gcbench -pauselog` sees slices, termination phases,
// and on-demand sweeps exactly as the histogram does.
func (h *Heap) AddPause(g *GCStats, words uint64) {
	g.AddPause(words)
	if h.pauseLog != nil {
		h.pauseLog(words)
	}
}

// SetPauseLog installs f to receive every pause recorded via Heap.AddPause,
// in order; nil removes it. The raw stream is deliberately kept off GCStats
// so that struct stays comparable.
func (h *Heap) SetPauseLog(f func(words uint64)) { h.pauseLog = f }

// Heap is the substrate shared by every collector: the space table, the
// rooted reference stacks, the write-barrier hook, the symbol table, and
// the mutator statistics. A Heap is single-threaded by design, matching the
// stop-the-world collectors of the paper.
type Heap struct {
	Spaces []*Space
	Stats  Stats

	alloc   Allocator
	barrier Barrier

	// refs is the scoped handle stack; scopes is the stack of scope bases.
	refs   []Word
	scopes []int
	// globals are permanent roots (interned symbols, workload tables).
	globals []Word

	symtab   map[string]int // symbol name -> global index of symbol object
	symNames []string       // symbol id -> name

	// extraWords is 1 when census tracking reserves a hidden birth-stamp
	// word after each header, else 0. It is fixed at heap creation.
	extraWords int

	// gcWorkers is the tracing-worker count: 0 selects the sequential
	// engines, N >= 1 the parallel drains with N workers. New seeds it
	// from the package default; SetGCWorkers overrides per heap.
	gcWorkers int

	// gcLAB opts the parallel evacuator into per-worker allocation buffers
	// sized in whole blocks (parevac.go); it has no effect below 2 workers.
	// New seeds it from the package default; SetGCLAB overrides per heap.
	gcLAB bool

	// gcIncr opts collectors that support it into incremental collection:
	// marking proceeds in bounded slices between mutator operations behind a
	// Dijkstra insertion barrier, and sweeping happens block-by-block on the
	// allocation path. gcSlice is the per-slice mark budget in words. New
	// seeds both from the package defaults; SetGCIncremental overrides per
	// heap.
	gcIncr  bool
	gcSlice int

	// gcTenure is the promotion threshold supporting collectors read at
	// construction (1 = wholesale promotion; tenure.go); gcAdapt hands the
	// threshold and nursery trigger to the internal/policy controller. New
	// seeds both from the package defaults.
	gcTenure int
	gcAdapt  bool

	// pauseLog, when non-nil, receives the raw words-of-work of every pause
	// recorded through Heap.AddPause (the -pauselog stream).
	pauseLog func(words uint64)

	// collectorLabel is the installed allocator's Name(), captured for
	// pprof labels on parallel tracing workers.
	collectorLabel string

	// extraRoots lets collectors and instrumentation register additional
	// root-slot visitors (e.g. remembered-set tables held outside spaces).
	extraRoots []func(visit func(slot *Word))

	// hook fires from InitObject once the allocation clock reaches
	// hookNext; instrumentation (the lifetime census) uses it to sample at
	// precise epoch boundaries.
	hook     func()
	hookNext uint64

	// afterGC, when non-nil, runs every time a collector finishes a
	// collection (the verifier's hook). Collectors fire it via AfterGC at
	// the end of every collection routine, once the heap, remembered sets,
	// and renaming are back in their between-collections state.
	afterGC func()

	// sink, when non-nil, observes every mutator-level heap event (the
	// trace recorder's hook; see events.go). moved, when non-nil, observes
	// every object relocation performed by the shared Evacuator.
	sink  EventSink
	moved func(old, new Word)
}

// Option configures a Heap at creation.
type Option func(*Heap)

// WithCensus reserves a hidden per-object word holding the allocation time
// (in words) of the object, enabling lifetime censuses.
func WithCensus() Option { return func(h *Heap) { h.extraWords = 1 } }

// New creates an empty heap. Collectors add spaces and install themselves
// with SetAllocator.
func New(opts ...Option) *Heap {
	h := &Heap{
		barrier:   nopBarrier{},
		symtab:    make(map[string]int),
		gcWorkers: int(defaultGCWorkers.Load()),
		gcLAB:     defaultGCLAB.Load(),
		gcIncr:    defaultGCIncr.Load(),
		gcSlice:   DefaultGCSliceBudget(),
		gcTenure:  DefaultGCTenure(),
		gcAdapt:   defaultGCAdapt.Load(),
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// CensusEnabled reports whether objects carry birth stamps.
func (h *Heap) CensusEnabled() bool { return h.extraWords == 1 }

// ExtraWords returns the number of hidden words after each header (0 or 1).
func (h *Heap) ExtraWords() int { return h.extraWords }

// SetAllocator installs the collector that will service allocations.
func (h *Heap) SetAllocator(a Allocator) {
	h.alloc = a
	if n, ok := a.(interface{ Name() string }); ok {
		h.collectorLabel = n.Name()
	}
}

// SetBarrier installs the write barrier. Passing nil restores the no-op.
func (h *Heap) SetBarrier(b Barrier) {
	if b == nil {
		h.barrier = nopBarrier{}
		return
	}
	h.barrier = b
}

// SetAfterGC installs f to run at the end of every collection; nil removes
// it. Tests and the fuzz harness install a verifying callback here, so the
// default cost is one nil check per collection.
func (h *Heap) SetAfterGC(f func()) { h.afterGC = f }

// AfterGC fires the after-collection hook. Every collector calls this
// exactly when a collection's bookkeeping (renaming, remembered-set
// rebuilds, statistics) is complete and the heap satisfies its
// between-collections invariants.
func (h *Heap) AfterGC() {
	if h.afterGC != nil {
		h.afterGC()
	}
}

// AddRootSet registers an extra set of root slots visited by every trace.
func (h *Heap) AddRootSet(f func(visit func(slot *Word))) {
	h.extraRoots = append(h.extraRoots, f)
}

// VisitRoots applies visit to every root slot: the handle stack, the global
// table, and any collector-registered extras. Collectors call this at the
// start of every trace; whatever they write back into the slots (forwarded
// pointers) is what the mutator sees afterwards.
func (h *Heap) VisitRoots(visit func(slot *Word)) {
	for i := range h.refs {
		visit(&h.refs[i])
	}
	for i := range h.globals {
		visit(&h.globals[i])
	}
	for _, f := range h.extraRoots {
		f(visit)
	}
}

// LiveRefs returns the current handle-stack depth, exposed for tests.
func (h *Heap) LiveRefs() int { return len(h.refs) }

// Ref is a handle to a heap value: an index into the heap's rooted slots.
// Non-negative Refs live on the scoped handle stack; Refs below -1 are
// global. The zero Ref is only valid while its scope is open, so the
// constant InvalidRef (-1) is the "no value" sentinel.
type Ref int32

// InvalidRef is the "no ref" sentinel.
const InvalidRef Ref = -1

func (h *Heap) slot(r Ref) *Word {
	if r >= 0 {
		return &h.refs[r]
	}
	if r == InvalidRef {
		panic("heap: use of InvalidRef")
	}
	return &h.globals[-int(r)-2]
}

// Get returns the word currently held by r.
func (h *Heap) Get(r Ref) Word { return *h.slot(r) }

// Set overwrites the word held by r. It does not invoke the write barrier:
// Refs are roots, and root mutation needs no barrier.
func (h *Heap) Set(r Ref, w Word) {
	*h.slot(r) = w
	if h.sink != nil {
		h.sink.EvRootSet(r, w)
	}
}

// push adds w to the current handle scope and returns its Ref.
func (h *Heap) push(w Word) Ref {
	h.refs = append(h.refs, w)
	if h.sink != nil {
		h.sink.EvRootPush(w)
	}
	return Ref(len(h.refs) - 1)
}

// Global copies the value of r into a permanent root and returns its Ref.
func (h *Heap) Global(r Ref) Ref {
	return h.GlobalWord(h.Get(r))
}

// GlobalWord installs w directly as a permanent root.
func (h *Heap) GlobalWord(w Word) Ref {
	h.globals = append(h.globals, w)
	if h.sink != nil {
		h.sink.EvGlobal(w)
	}
	return Ref(-len(h.globals) - 1)
}

// Scope opens a handle scope. Every Ref created until the matching Close
// (or Return) is released together. Scopes must nest like a stack.
type Scope struct {
	h    *Heap
	base int
}

// Scope opens a new handle scope.
func (h *Heap) Scope() Scope {
	h.scopes = append(h.scopes, len(h.refs))
	return Scope{h: h, base: len(h.refs)}
}

func (s Scope) pop() {
	h := s.h
	if len(h.scopes) == 0 || h.scopes[len(h.scopes)-1] != s.base {
		panic("heap: scopes closed out of order")
	}
	h.scopes = h.scopes[:len(h.scopes)-1]
	h.refs = h.refs[:s.base]
	if h.sink != nil {
		h.sink.EvRootPopTo(s.base)
	}
}

// Close releases every Ref created inside the scope.
func (s Scope) Close() { s.pop() }

// Return closes the scope while preserving the value of r, which is pushed
// onto the parent scope. This is the idiom for returning a heap value from
// a Go function:
//
//	s := h.Scope()
//	...
//	return s.Return(result)
func (s Scope) Return(r Ref) Ref {
	w := s.h.Get(r)
	s.pop()
	return s.h.push(w)
}

// Return2 closes the scope while preserving two values, in order.
func (s Scope) Return2(a, b Ref) (Ref, Ref) {
	wa, wb := s.h.Get(a), s.h.Get(b)
	s.pop()
	return s.h.push(wa), s.h.push(wb)
}

// RefOf pushes an arbitrary word (usually an immediate) into the current
// scope and returns its handle.
func (h *Heap) RefOf(w Word) Ref { return h.push(w) }

// Dup pushes a copy of r into the current scope.
func (h *Heap) Dup(r Ref) Ref { return h.push(h.Get(r)) }

// allocObject is the common allocation path used by the typed constructors.
func (h *Heap) allocObject(t Type, payload int) Word {
	if h.alloc == nil {
		panic("heap: no allocator installed")
	}
	return h.alloc.AllocRaw(t, payload)
}

// InitObject writes a fresh object's header (and birth stamp) at offset off
// in space s and accounts for the allocation. Collectors call this from
// their AllocRaw implementations after reserving room; payload words are
// zeroed here. The returned word is the object pointer.
func (h *Heap) InitObject(s *Space, off int, t Type, payload int) Word {
	size := payload + h.extraWords
	s.Mem[off] = HeaderWord(t, size)
	if h.extraWords == 1 {
		s.Mem[off+1] = FixnumWord(int64(h.Stats.WordsAllocated))
	}
	clear(s.Mem[off+1+h.extraWords : off+1+size])
	h.Stats.WordsAllocated += uint64(1 + size)
	h.Stats.ObjectsAllocated++
	w := PtrWord(s.ID, off)
	if h.sink != nil {
		h.sink.EvAlloc(w, t, payload)
	}
	if h.hook != nil && h.Stats.WordsAllocated >= h.hookNext {
		h.hookNext = ^uint64(0) // the hook reschedules itself
		h.hook()
	}
	return w
}

// SetAllocHook installs f to run when the allocation clock next reaches at.
// The hook must call SetAllocHook again (or ScheduleHook) to keep firing.
// The freshly allocated object is fully initialized but not yet rooted when
// the hook runs, so whole-heap traces from inside the hook are safe but may
// miss that single object.
func (h *Heap) SetAllocHook(at uint64, f func()) {
	h.hook = f
	h.hookNext = at
}

// ScheduleHook moves the next firing time of the installed hook.
func (h *Heap) ScheduleHook(at uint64) { h.hookNext = at }

// BirthStamp returns the allocation time (in words) of the object w points
// to. It panics unless census tracking is enabled.
func (h *Heap) BirthStamp(w Word) uint64 {
	if h.extraWords == 0 {
		panic("heap: BirthStamp without WithCensus")
	}
	return uint64(FixnumVal(h.SpaceOf(w).Mem[PtrOff(w)+1]))
}

// Now returns the current time in allocated words.
func (h *Heap) Now() uint64 { return h.Stats.WordsAllocated }

func (h *Heap) String() string {
	return fmt.Sprintf("heap: %d spaces, %d words allocated, %d refs live",
		len(h.Spaces), h.Stats.WordsAllocated, len(h.refs))
}
