package heap

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// oracleQuantile is the nearest-rank quantile over the exact sample set.
func oracleQuantile(sorted []uint64, q float64) uint64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestPauseHistQuantileVsOracle checks the documented resolution contract
// against an exact sorted-slice oracle: for every quantile, the true value v
// satisfies v <= Quantile(q) < 2v (exactly 0 for v == 0), and the bound
// never exceeds the recorded maximum.
func TestPauseHistQuantileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var h PauseHist
		n := 1 + rng.Intn(400)
		samples := make([]uint64, n)
		for i := range samples {
			switch rng.Intn(3) {
			case 0:
				samples[i] = uint64(rng.Intn(4)) // small, incl. zeros
			case 1:
				samples[i] = uint64(rng.Intn(1000))
			default:
				samples[i] = uint64(rng.Intn(1 << 20))
			}
			h.Record(samples[i])
		}
		sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			v := oracleQuantile(samples, q)
			got := h.Quantile(q)
			if v == 0 {
				if got != 0 {
					t.Fatalf("trial %d q=%g: oracle 0, got %d", trial, q, got)
				}
				continue
			}
			if got < v || got >= 2*v {
				t.Fatalf("trial %d q=%g: oracle %d, bound %d outside [v, 2v)", trial, q, v, got)
			}
			if got > h.MaxWords {
				t.Fatalf("trial %d q=%g: bound %d exceeds max %d", trial, q, got, h.MaxWords)
			}
		}
	}
}

func TestPauseHistCountersAndReset(t *testing.T) {
	var h PauseHist
	for _, w := range []uint64{0, 1, 5, 1024, 3} {
		h.Record(w)
	}
	if h.Count != 5 || h.TotalWords != 1033 || h.MaxWords != 1024 {
		t.Fatalf("counters wrong: %+v", h)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[3] != 1 || h.Buckets[11] != 1 {
		t.Fatalf("bucketing wrong: %v", h.Buckets)
	}
	h.Reset()
	if h != (PauseHist{}) {
		t.Fatalf("reset left state: %+v", h)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("quantile of empty histogram not 0")
	}
}

// TestPauseHistHeadlineQuantiles pins the named quantile helpers to the
// generic Quantile they wrap.
func TestPauseHistHeadlineQuantiles(t *testing.T) {
	var h PauseHist
	for i := uint64(0); i < 3000; i++ {
		h.Record(i)
	}
	if h.P50() != h.Quantile(0.50) || h.P99() != h.Quantile(0.99) || h.P999() != h.Quantile(0.999) {
		t.Fatalf("headline quantiles diverge from Quantile: p50=%d p99=%d p999=%d",
			h.P50(), h.P99(), h.P999())
	}
	if !(h.P50() <= h.P99() && h.P99() <= h.P999() && h.P999() <= h.MaxWords) {
		t.Fatalf("quantiles not monotone: p50=%d p99=%d p999=%d max=%d",
			h.P50(), h.P99(), h.P999(), h.MaxWords)
	}
}

// TestPauseHistMerge pins that merging two histograms equals recording their
// combined streams into one.
func TestPauseHistMerge(t *testing.T) {
	var a, b, both PauseHist
	streamA := []uint64{0, 7, 7, 900, 1 << 30}
	streamB := []uint64{2, 2, 511, 512}
	for _, w := range streamA {
		a.Record(w)
		both.Record(w)
	}
	for _, w := range streamB {
		b.Record(w)
		both.Record(w)
	}
	a.Merge(&b)
	if a != both {
		t.Fatalf("merge diverges from combined recording:\n  merged: %+v\n  oracle: %+v", a, both)
	}
}

// TestPauseHistRecordNoAllocs pins the record path allocation-free: it runs
// on every mutator-visible pause, including incremental mode's sub-block
// slices.
func TestPauseHistRecordNoAllocs(t *testing.T) {
	var h PauseHist
	var w uint64
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(w)
		w = w*2 + 3
	})
	if allocs != 0 {
		t.Fatalf("Record allocates: %v allocs/op", allocs)
	}
}
