package heap

import (
	"math"
	"math/bits"
)

// PauseHist is a log2-bucketed histogram of mutator-visible pause sizes,
// measured in words of collector work per pause (the repository's clock has
// no wall time, so "pause time" is the work the mutator waited for). Bucket
// 0 holds zero-word pauses; bucket i (1..64) holds pauses whose word count
// has bit length i, i.e. words in [2^(i-1), 2^i).
//
// The struct is all fixed-size values, so GCStats — which embeds one —
// remains comparable with ==, which the conformance suite relies on to pin
// collector statistics bit-identical across engine configurations. The
// record path does no allocation and no division, so it is cheap enough to
// sit on every pause, including the sub-block pauses of incremental mode.
type PauseHist struct {
	Count      uint64
	TotalWords uint64
	MaxWords   uint64
	Buckets    [65]uint64
}

// Record adds one pause of the given size.
func (p *PauseHist) Record(words uint64) {
	p.Count++
	p.TotalWords += words
	if words > p.MaxWords {
		p.MaxWords = words
	}
	p.Buckets[bits.Len64(words)]++
}

// Reset zeroes the histogram.
func (p *PauseHist) Reset() { *p = PauseHist{} }

// Merge accumulates o into p.
func (p *PauseHist) Merge(o *PauseHist) {
	p.Count += o.Count
	p.TotalWords += o.TotalWords
	if o.MaxWords > p.MaxWords {
		p.MaxWords = o.MaxWords
	}
	for i := range p.Buckets {
		p.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns an upper bound on the q-quantile pause (nearest-rank
// convention): the bound of the bucket holding the rank-⌈q·Count⌉ pause,
// clamped to MaxWords. The true quantile v satisfies v <= Quantile(q) < 2v
// (exact for v == 0), which is the resolution log2 bucketing buys.
func (p *PauseHist) Quantile(q float64) uint64 {
	if p.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(p.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > p.Count {
		rank = p.Count
	}
	var cum uint64
	for i, n := range p.Buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			ub := uint64(1)<<uint(i) - 1
			if ub > p.MaxWords {
				ub = p.MaxWords
			}
			return ub
		}
	}
	return p.MaxWords
}

// P50 returns the median pause bound.
func (p *PauseHist) P50() uint64 { return p.Quantile(0.50) }

// P99 returns the 99th-percentile pause bound.
func (p *PauseHist) P99() uint64 { return p.Quantile(0.99) }

// P999 returns the 99.9th-percentile pause bound — the headline tail
// quantile of the server simulation's request-latency histograms, which
// reuse PauseHist for its comparability and zero-alloc record path.
func (p *PauseHist) P999() uint64 { return p.Quantile(0.999) }
