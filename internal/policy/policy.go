// Package policy implements the feedback controller behind -gcadapt: it
// adapts a tenuring collector's promotion threshold, effective nursery
// size, and collection trigger online from the per-age-class survival
// statistics the tenured evacuator collects (heap/tenure.go), the same
// quantities the lifetime census derives offline (internal/lifetime).
//
// The model is the copy-cost argument of the paper turned into a control
// law. Write f(a) for the fraction of age-class-a words that survive a
// nursery collection, and F(a) = f(0)·f(1)···f(a-1) for the fraction of
// freshly allocated words still alive at their a-th collection. Under a
// threshold T, every allocated word costs
//
//	C(T) = Σ_{a=1..T} F(a)  +  K·F(T)
//
// copies in expectation: one nursery copy per collection survived up to
// the T-th (which promotes it), plus K — the measured words the old area
// copies per word promoted into it — for everything that reaches age T.
// Under radioactive decay f is age-invariant and below K/(K+1), so C is
// minimized by the largest T: the controller pushes the threshold toward
// "never promote" and the collector degenerates into the non-predictive
// shape the paper favors there. Under bimodal lifetimes (most words die
// before their first collection, the rest are effectively immortal,
// f(a≥1) ≈ 1) every retained round re-copies the immortals for nothing,
// so C is minimized by a small finite T. The controller just brute-forces
// the argmin over T in [1, MaxThreshold] each collection — sixteen
// multiply-adds on the steady-state decision path, allocation-free.
package policy

import (
	"math"

	"rdgc/internal/heap"
)

// Config parameterizes a Controller; the zero value selects the defaults.
type Config struct {
	// Alpha is the EWMA smoothing factor for the survival fractions and
	// the old-copy-cost estimate (default 0.3).
	Alpha float64

	// MaxThreshold caps the adapted promotion threshold (default
	// heap.TenureAgeClasses). When the argmin lands on the cap the
	// controller reports heap.TenureNever instead: past the resolved age
	// classes there is no evidence promotion ever pays.
	MaxThreshold int

	// OldCopyCost seeds K, the copies a promoted word costs the old area,
	// until majors provide measurements (default 4).
	OldCopyCost float64

	// TargetSurvival is the fresh-word survival rate the nursery trigger
	// steers toward (default 1/3): surviving more means the nursery is
	// collected too early (grow the trigger). The trigger only shrinks
	// when survival is negligible — below TargetSurvival/16 — because a
	// smaller trigger always adds minor collections, and each one re-pays
	// the copy cost of whatever survives; only when almost nothing does is
	// a shorter pause worth that.
	TargetSurvival float64

	// MinSampleWords is the age-class population below which a round
	// teaches the controller nothing about that class (default 64 words).
	MinSampleWords uint64

	// Hysteresis is the relative copy-cost advantage a candidate threshold
	// needs over the incumbent before the controller switches (default
	// 0.05), so EWMA noise cannot flap the policy.
	Hysteresis float64
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.MaxThreshold < 1 || c.MaxThreshold > heap.TenureAgeClasses {
		c.MaxThreshold = heap.TenureAgeClasses
	}
	if c.OldCopyCost <= 0 {
		c.OldCopyCost = 4
	}
	if c.TargetSurvival <= 0 || c.TargetSurvival >= 1 {
		c.TargetSurvival = 1.0 / 3
	}
	if c.MinSampleWords == 0 {
		c.MinSampleWords = 64
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.05
	}
	return c
}

// Observation is one nursery collection's survival evidence, in words.
type Observation struct {
	// FreshWords is the age-0 population at risk: nursery words born since
	// the previous minor collection.
	FreshWords uint64
	// SurvByAge counts the words that survived, by pre-collection age
	// class; RetainedByAge the subset kept in the nursery, by
	// post-increment age class (next round's at-risk population for
	// classes >= 1). Both come straight from Evacuator.SurvivorsByAge.
	SurvByAge     [heap.TenureAgeClasses]uint64
	RetainedByAge [heap.TenureAgeClasses]uint64
	// PromotedWords is what the old area received this collection.
	PromotedWords uint64
	// NurseryCap is the physical nursery capacity in words, the ceiling of
	// the adapted trigger.
	NurseryCap int
}

// Decision is the knob setting in force after an observation.
type Decision struct {
	// Threshold is the promotion threshold (heap.TenureNever when the
	// cost argmin wants the cap — no finite threshold pays).
	Threshold int
	// TriggerWords is the effective nursery size: the occupancy at which
	// the next minor collection should fire, within [NurseryCap/4,
	// NurseryCap].
	TriggerWords int
	// Changed reports whether either knob moved this observation.
	Changed bool
}

// Controller is the adaptive tenuring policy. It is deterministic: the
// decision sequence is a pure function of the observation sequence. The
// zero value is not ready; use New.
type Controller struct {
	cfg Config

	// f[a] is the survival-fraction EWMA of age class a; seen[a] tracks
	// whether class a ever had a measurable population, because a class
	// the current threshold never lets exist must inherit the estimate of
	// the oldest class that does (fhat).
	f    [heap.TenureAgeClasses]float64
	seen [heap.TenureAgeClasses]bool

	// pop[a] is the class-a population at risk in the next observation:
	// last round's retained survivors. pop[0] is ignored (FreshWords).
	pop [heap.TenureAgeClasses]uint64

	// k is the old-copy-cost EWMA, measured as major-collection copied
	// words per word promoted since the previous major, clamped to
	// [0.5, 16] so one odd major cannot capsize the model.
	k                  float64
	kSeen              bool
	promotedSinceMajor uint64

	threshold   int
	trigger     int
	adaptations int
}

// New creates a controller that starts at wholesale promotion (threshold
// 1) with the trigger at the full nursery — the status quo — and adapts
// from the first observation on.
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg.withDefaults()}
	c.threshold = 1
	c.k = c.cfg.OldCopyCost
	return c
}

// Threshold returns the promotion threshold currently in force.
func (c *Controller) Threshold() int { return c.threshold }

// Trigger returns the effective nursery size currently in force, or 0
// before the first observation (meaning: use the full nursery).
func (c *Controller) Trigger() int { return c.trigger }

// Adaptations returns how many knob changes the controller has applied.
func (c *Controller) Adaptations() int { return c.adaptations }

// OldCopyCost returns the current K estimate, exposed for tests and
// reports.
func (c *Controller) OldCopyCost() float64 { return c.k }

// SeedSurvival pre-loads the survival EWMAs from an offline survival
// curve — fractions[a] being the fraction of class-a words that survive
// one nursery collection, as lifetime.SurvivalFractions derives from a
// census — so a controller can start near the right policy instead of at
// wholesale. Classes beyond len(fractions) stay unseen.
func (c *Controller) SeedSurvival(fractions []float64) {
	for a := 0; a < len(fractions) && a < heap.TenureAgeClasses; a++ {
		v := fractions[a]
		if v < 0 || v > 1 || math.IsNaN(v) {
			continue
		}
		c.f[a] = v
		c.seen[a] = true
	}
	// A census is a whole run's evidence, not one round's, so the seeded
	// controller may jump straight to the argmin instead of climbing.
	c.decide(0, true)
}

// ObserveMajor feeds the controller one major (old-area) collection: the
// words it copied, against the words promoted into the old area since the
// previous major, refresh the K estimate.
func (c *Controller) ObserveMajor(copiedWords uint64) {
	if c.promotedSinceMajor > 0 {
		sample := float64(copiedWords) / float64(c.promotedSinceMajor)
		if sample < 0.5 {
			sample = 0.5
		}
		if sample > 16 {
			sample = 16
		}
		if !c.kSeen {
			c.k = sample
			c.kSeen = true
		} else {
			c.k = c.cfg.Alpha*sample + (1-c.cfg.Alpha)*c.k
		}
	}
	c.promotedSinceMajor = 0
}

// Observe feeds the controller one nursery collection and returns the
// decision now in force. The steady-state path performs no allocation.
func (c *Controller) Observe(o Observation) Decision {
	// Update the survival EWMAs against each class's at-risk population.
	for a := 0; a < heap.TenureAgeClasses; a++ {
		at := c.pop[a]
		if a == 0 {
			at = o.FreshWords
		}
		if at < c.cfg.MinSampleWords {
			continue
		}
		rate := float64(o.SurvByAge[a]) / float64(at)
		if rate > 1 {
			rate = 1
		}
		if !c.seen[a] {
			c.f[a] = rate
			c.seen[a] = true
		} else {
			c.f[a] = c.cfg.Alpha*rate + (1-c.cfg.Alpha)*c.f[a]
		}
	}
	c.pop = o.RetainedByAge
	c.promotedSinceMajor += o.PromotedWords

	changed := c.decide(o.NurseryCap, false)
	return Decision{Threshold: c.threshold, TriggerWords: c.trigger, Changed: changed}
}

// fhat estimates class a's survival fraction, falling back to the oldest
// measured class when a has never existed under the thresholds run so far
// (age-invariance is the natural prior: it is exactly the decay model).
func (c *Controller) fhat(a int) float64 {
	for ; a >= 0; a-- {
		if c.seen[a] {
			return c.f[a]
		}
	}
	return 0.5
}

// promotionEpsilon is the predicted fraction of fresh words reaching the
// promotion age below which a finite threshold is pure bookkeeping: when
// fewer than one word in 128 would ever be promoted, the controller snaps
// to TenureNever rather than keep the machinery armed for a trickle.
const promotionEpsilon = 1.0 / 128

// decide recomputes both knobs; it reports whether anything changed.
// nurseryCap <= 0 leaves the trigger untouched. jump permits moving the
// threshold straight to the argmin; otherwise upward moves climb one age
// class per call, because raising the threshold by k conjectures about k
// age classes the current policy has never let exist — each step should
// earn the next from measurements, and stopping a policy that is wasting
// copies (moving down) must not wait for any such evidence.
func (c *Controller) decide(nurseryCap int, jump bool) bool {
	changed := false

	// No age class ever measured: hold the status quo. The fallback prior
	// in fhat would otherwise argue for never-promote on zero evidence.
	evidence := false
	for _, s := range c.seen {
		if s {
			evidence = true
			break
		}
	}
	if !evidence {
		return false
	}

	// Promotion threshold: argmin over T of Σ_{a<=T} F(a) + K·F(T), with
	// hysteresis in favor of the incumbent.
	bestT, bestCost := 1, math.Inf(1)
	curCost := math.Inf(1)
	cur := c.threshold
	if cur > c.cfg.MaxThreshold {
		cur = c.cfg.MaxThreshold
	}
	var reach [heap.TenureAgeClasses + 1]float64 // reach[T] = F(T)
	F, cum := 1.0, 0.0
	for T := 1; T <= c.cfg.MaxThreshold; T++ {
		F *= c.fhat(T - 1)
		reach[T] = F
		cum += F
		cost := cum + c.k*F
		if cost < bestCost {
			bestCost, bestT = cost, T
		}
		if T == cur {
			curCost = cost
		}
	}
	if bestT == c.cfg.MaxThreshold {
		// The argmin hit the cap: no resolved age class makes promotion
		// pay, so do not promote at all.
		bestT = heap.TenureNever
	}
	if bestT != c.threshold && bestCost < curCost*(1-c.cfg.Hysteresis) {
		newT := bestT
		if !jump && bestT > c.threshold && c.threshold < c.cfg.MaxThreshold {
			newT = c.threshold + 1
		}
		if newT >= c.cfg.MaxThreshold {
			newT = heap.TenureNever
		} else if reach[newT] < promotionEpsilon {
			newT = heap.TenureNever
		}
		if newT != c.threshold {
			c.threshold = newT
			c.adaptations++
			changed = true
		}
	}

	// Nursery trigger: steer the fresh-word survival rate toward the
	// target by multiplicative adjustment within [cap/4, cap].
	if nurseryCap > 0 && c.seen[0] {
		trigger := c.trigger
		if trigger <= 0 {
			trigger = nurseryCap
		}
		switch f0 := c.f[0]; {
		case f0 > c.cfg.TargetSurvival:
			trigger = trigger * 5 / 4
		case f0 < c.cfg.TargetSurvival/16:
			// Shrinking adds minor collections, each of which re-copies
			// every survivor, so it only pays when survival is negligible.
			trigger = trigger * 4 / 5
		}
		if trigger > nurseryCap {
			trigger = nurseryCap
		}
		if trigger < nurseryCap/4 {
			trigger = nurseryCap / 4
		}
		if trigger != c.trigger {
			c.trigger = trigger
			c.adaptations++
			changed = true
		}
	}
	return changed
}
