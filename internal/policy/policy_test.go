package policy

import (
	"math"
	"testing"

	"rdgc/internal/heap"
	"rdgc/internal/lifetime"
)

// simulator drives a controller with synthetic steady-state workloads: each
// round, every age class's at-risk population survives at the workload's
// per-class fraction, and the survivors are split between retention and
// promotion according to the threshold the controller currently commands —
// exactly the feedback loop a tenuring collector closes.
type simulator struct {
	ctrl    *Controller
	survive func(age int) float64
	fresh   uint64
	cap     int
	pop     [heap.TenureAgeClasses]uint64
}

func newSimulator(survive func(age int) float64, fresh uint64, cap int) *simulator {
	return &simulator{ctrl: New(Config{}), survive: survive, fresh: fresh, cap: cap}
}

// round plays one nursery collection and feeds the evidence back.
func (s *simulator) round() Decision {
	threshold := s.ctrl.Threshold()
	var o Observation
	o.FreshWords = s.fresh
	o.NurseryCap = s.cap
	for a := 0; a < heap.TenureAgeClasses; a++ {
		at := s.pop[a]
		if a == 0 {
			at = s.fresh
		}
		surv := uint64(float64(at) * s.survive(a))
		o.SurvByAge[a] = surv
		newAge := a + 1
		if newAge > heap.TenureAgeClasses-1 {
			newAge = heap.TenureAgeClasses - 1
		}
		if threshold == heap.TenureNever || a+1 < threshold {
			o.RetainedByAge[newAge] += surv
		} else {
			o.PromotedWords += surv
		}
	}
	s.pop = o.RetainedByAge
	return s.ctrl.Observe(o)
}

// TestDecayConvergesToNeverPromote: under radioactive decay the survival
// fraction is age-invariant and well below K/(K+1), so every promotion is a
// wasted old-area copy and the copy-cost argmin is the largest threshold.
// The controller must ramp away from wholesale and settle at TenureNever.
func TestDecayConvergesToNeverPromote(t *testing.T) {
	s := newSimulator(func(int) float64 { return 0.25 }, 8192, 8192)
	for i := 0; i < 60; i++ {
		s.round()
	}
	if got := s.ctrl.Threshold(); got != heap.TenureNever {
		t.Fatalf("decay workload: threshold = %d, want TenureNever", got)
	}
	// And it stays there: the policy must not flap once converged.
	before := s.ctrl.Adaptations()
	for i := 0; i < 40; i++ {
		s.round()
	}
	if s.ctrl.Threshold() != heap.TenureNever {
		t.Fatal("threshold left TenureNever on a stationary decay workload")
	}
	if got := s.ctrl.Adaptations(); got != before {
		t.Errorf("threshold flapped after convergence: %d adaptations grew to %d", before, got)
	}
}

// TestBimodalConvergesToFiniteThreshold: when words either die young or
// live (nearly) forever, retaining the immortals re-copies them every
// nursery collection for nothing, so a small finite threshold wins. Here
// survival is 60% at age 0, 10% at age 1, and ~99% after — the argmin of
// C(T) is T = 2.
func TestBimodalConvergesToFiniteThreshold(t *testing.T) {
	survive := func(age int) float64 {
		switch age {
		case 0:
			return 0.6
		case 1:
			return 0.1
		default:
			return 0.99
		}
	}
	s := newSimulator(survive, 8192, 8192)
	for i := 0; i < 120; i++ {
		s.round()
	}
	got := s.ctrl.Threshold()
	if got == heap.TenureNever {
		t.Fatal("bimodal workload: controller stuck at TenureNever")
	}
	if got != 2 {
		t.Fatalf("bimodal workload: threshold = %d, want the copy-cost argmin 2", got)
	}
}

// TestControllerIsDeterministic: the decision sequence is a pure function
// of the observation sequence — two controllers fed the same observations
// agree decision by decision and end in the same state.
func TestControllerIsDeterministic(t *testing.T) {
	mkObs := func(i int) Observation {
		var o Observation
		o.FreshWords = 4096 + uint64(i%7)*512
		o.SurvByAge[0] = o.FreshWords / uint64(2+i%3)
		o.SurvByAge[1] = 300
		o.RetainedByAge[1] = o.SurvByAge[0]
		o.PromotedWords = o.SurvByAge[1]
		o.NurseryCap = 8192
		return o
	}
	a, b := New(Config{}), New(Config{})
	for i := 0; i < 50; i++ {
		o := mkObs(i)
		da, db := a.Observe(o), b.Observe(o)
		if da != db {
			t.Fatalf("observation %d: decisions diverge: %+v vs %+v", i, da, db)
		}
		if i%10 == 3 {
			a.ObserveMajor(10000)
			b.ObserveMajor(10000)
		}
	}
	if a.Threshold() != b.Threshold() || a.Trigger() != b.Trigger() ||
		a.Adaptations() != b.Adaptations() || a.OldCopyCost() != b.OldCopyCost() {
		t.Fatalf("final states diverge: (%d,%d,%d,%g) vs (%d,%d,%d,%g)",
			a.Threshold(), a.Trigger(), a.Adaptations(), a.OldCopyCost(),
			b.Threshold(), b.Trigger(), b.Adaptations(), b.OldCopyCost())
	}
}

// TestObserveIsAllocationFree pins the steady-state decision path at zero
// allocations: Observe runs inside every minor collection pause.
func TestObserveIsAllocationFree(t *testing.T) {
	c := New(Config{})
	var o Observation
	o.FreshWords = 4096
	o.SurvByAge[0] = 1024
	o.SurvByAge[1] = 256
	o.RetainedByAge[1] = 1024
	o.PromotedWords = 256
	o.NurseryCap = 8192
	if avg := testing.AllocsPerRun(100, func() {
		c.Observe(o)
	}); avg != 0 {
		t.Fatalf("Observe allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		c.ObserveMajor(5000)
	}); avg != 0 {
		t.Fatalf("ObserveMajor allocates %.1f times per call, want 0", avg)
	}
}

// TestSeedSurvival: pre-loading the EWMAs from an offline survival curve
// (the lifetime census shape) must move the policy before any online
// evidence arrives — decay curves to TenureNever, bimodal curves to a
// finite threshold — while NaN ("no evidence") rows are ignored.
func TestSeedSurvival(t *testing.T) {
	decay := New(Config{})
	decay.SeedSurvival([]float64{0.2, 0.2, 0.2})
	if got := decay.Threshold(); got != heap.TenureNever {
		t.Fatalf("decay seed: threshold = %d, want TenureNever", got)
	}

	bimodal := New(Config{})
	bimodal.SeedSurvival([]float64{0.6, 0.1, 0.99, 0.99})
	if got := bimodal.Threshold(); got != 2 {
		t.Fatalf("bimodal seed: threshold = %d, want 2", got)
	}

	// NaN and out-of-range entries teach nothing; an all-invalid seed
	// leaves the controller at wholesale.
	c := New(Config{})
	c.SeedSurvival([]float64{math.NaN(), -0.5, 1.5})
	if got := c.Threshold(); got != 1 {
		t.Fatalf("invalid seed moved the threshold to %d", got)
	}
}

// TestSeedSurvivalFromLifetimeTable closes the loop with the offline
// census: lifetime.SurvivalFractions on a synthetic age-invariant survival
// table feeds SeedSurvival, and the controller draws the decay-model
// conclusion (never promote), NaN rows and all.
func TestSeedSurvivalFromLifetimeTable(t *testing.T) {
	rows := []lifetime.SurvivalRow{
		{AgeLo: 0, AgeHi: 1, Live: 10000, Survived: 2000},
		{AgeLo: 1, AgeHi: 2, Live: 2000, Survived: 400},
		{AgeLo: 2, AgeHi: -1, Live: 0, Survived: 0}, // no evidence -> NaN
	}
	fr := lifetime.SurvivalFractions(rows)
	if !math.IsNaN(fr[2]) {
		t.Fatalf("SurvivalFractions empty row = %g, want NaN", fr[2])
	}
	c := New(Config{})
	c.SeedSurvival(fr)
	if got := c.Threshold(); got != heap.TenureNever {
		t.Fatalf("census-seeded threshold = %d, want TenureNever", got)
	}
}

// TestObserveMajorEstimatesOldCopyCost: K is measured as major-collection
// copied words per word promoted since the previous major, first sample
// replacing the seed, later samples EWMA-blended, all clamped to [0.5, 16].
func TestObserveMajorEstimatesOldCopyCost(t *testing.T) {
	c := New(Config{})
	if got := c.OldCopyCost(); got != 4 {
		t.Fatalf("seed K = %g, want 4", got)
	}

	// A major with no promotions since the last one teaches nothing.
	c.ObserveMajor(12345)
	if got := c.OldCopyCost(); got != 4 {
		t.Fatalf("K moved without promotion evidence: %g", got)
	}

	var o Observation
	o.FreshWords = 4096
	o.PromotedWords = 1000
	o.NurseryCap = 8192
	c.Observe(o)
	c.ObserveMajor(8000) // 8 copies per promoted word
	if got := c.OldCopyCost(); got != 8 {
		t.Fatalf("first measured K = %g, want 8", got)
	}

	// Clamping: an absurd major cannot capsize the estimate.
	c.Observe(o)
	c.ObserveMajor(1 << 30) // sample clamps to 16
	want := 0.3*16 + 0.7*8.0
	if got := c.OldCopyCost(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("clamped-high K = %g, want %g", got, want)
	}
	c.Observe(o)
	c.ObserveMajor(1) // sample clamps to 0.5
	want = 0.3*0.5 + 0.7*want
	if got := c.OldCopyCost(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("clamped-low K = %g, want %g", got, want)
	}
}

// TestTriggerSteering: the effective nursery size chases the target fresh
// survival rate — high survival grows the trigger to the full nursery,
// survival far below target shrinks it, never past the cap/4 floor.
func TestTriggerSteering(t *testing.T) {
	const cap = 8000
	c := New(Config{})
	hi := Observation{FreshWords: 4096, NurseryCap: cap}
	hi.SurvByAge[0] = 3500 // f(0) ~ 0.85, way above 1/3
	c.Observe(hi)
	if got := c.Trigger(); got != cap {
		t.Fatalf("high-survival trigger = %d, want the full nursery %d", got, cap)
	}

	lo := Observation{FreshWords: 4096, NurseryCap: cap}
	lo.SurvByAge[0] = 10 // f(0) ~ 0, far below the target/16 shrink bar
	for i := 0; i < 40; i++ {
		c.Observe(lo)
		if got := c.Trigger(); got < cap/4 || got > cap {
			t.Fatalf("trigger %d escaped [cap/4, cap]", got)
		}
	}
	if got := c.Trigger(); got != cap/4 {
		t.Fatalf("low-survival trigger = %d, want the floor %d", got, cap/4)
	}
}

// TestConfigDefaults: the zero Config resolves to the documented defaults
// and silly values are clamped back into range.
func TestConfigDefaults(t *testing.T) {
	d := Config{}.withDefaults()
	if d.Alpha != 0.3 || d.MaxThreshold != heap.TenureAgeClasses ||
		d.OldCopyCost != 4 || d.TargetSurvival != 1.0/3 ||
		d.MinSampleWords != 64 || d.Hysteresis != 0.05 {
		t.Fatalf("zero-config defaults wrong: %+v", d)
	}
	bad := Config{Alpha: 7, MaxThreshold: 99, OldCopyCost: -1,
		TargetSurvival: 2, Hysteresis: -3}.withDefaults()
	if bad != d {
		t.Fatalf("out-of-range config not clamped to defaults: %+v", bad)
	}
}

// TestSmallSamplesTeachNothing: an age class below MinSampleWords must not
// update the survival estimate — tiny populations are noise.
func TestSmallSamplesTeachNothing(t *testing.T) {
	c := New(Config{})
	var o Observation
	o.FreshWords = 32 // below the 64-word default
	o.SurvByAge[0] = 32
	o.NurseryCap = 8192
	c.Observe(o)
	if c.seen[0] {
		t.Fatal("a 32-word sample updated the age-0 estimate")
	}
	if got := c.Threshold(); got != 1 {
		t.Fatalf("threshold moved on no evidence: %d", got)
	}
}
