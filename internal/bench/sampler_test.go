package bench

import (
	"reflect"
	"strings"
	"testing"

	"rdgc/internal/heap"
)

func TestByName(t *testing.T) {
	for _, quick := range []bool{false, true} {
		names := Names(quick)
		if len(names) == 0 {
			t.Fatalf("quick=%v: empty suite", quick)
		}
		for _, name := range names {
			p, err := ByName(name, quick)
			if err != nil {
				t.Fatalf("quick=%v: %v", quick, err)
			}
			if p.Name() != name {
				t.Fatalf("quick=%v: looked up %q, got %q", quick, name, p.Name())
			}
		}
	}
	if _, err := ByName("no-such-program", true); err == nil {
		t.Fatal("unknown name did not error")
	} else if !strings.Contains(err.Error(), "no-such-program") {
		t.Fatalf("error does not name the missing program: %v", err)
	}
}

// TestSampleProfileTotals runs one quick program and checks the measured
// profile's internal consistency: totals equal the class sums, classes are
// sorted and deduplicated, and the mix is deterministic across samples.
func TestSampleProfileTotals(t *testing.T) {
	p, err := ByName("nboyer1", true)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := SampleProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Source != "nboyer1" || prof.Objects == 0 || len(prof.Classes) == 0 {
		t.Fatalf("degenerate profile: %+v", prof)
	}
	var objects, words uint64
	for i, cls := range prof.Classes {
		if cls.Count == 0 {
			t.Fatalf("class %d has zero count: %+v", i, cls)
		}
		if i > 0 && !classLess(prof.Classes[i-1], cls) {
			t.Fatalf("classes out of order at %d: %+v then %+v", i, prof.Classes[i-1], cls)
		}
		objects += cls.Count
		words += cls.Count * cls.CostWords()
	}
	if objects != prof.Objects || words != prof.Words {
		t.Fatalf("totals diverge from classes: objects %d vs %d, words %d vs %d",
			prof.Objects, objects, prof.Words, words)
	}

	again, err := SampleProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prof, again) {
		t.Fatal("profiling the same program twice gave different mixes")
	}
}

func TestBuildProfileDropsZeroCounts(t *testing.T) {
	counts := map[AllocClass]uint64{
		{Type: heap.TPair, PayloadWords: 2}:   5,
		{Type: heap.TVector, PayloadWords: 8}: 0,
	}
	prof := BuildProfile("synthetic", counts)
	if len(prof.Classes) != 1 || prof.Classes[0].Type != heap.TPair {
		t.Fatalf("zero-count class survived: %+v", prof)
	}
	if prof.Objects != 5 || prof.Words != 5*3 {
		t.Fatalf("totals wrong: %+v", prof)
	}
}
