package bench

// This file exports the registry in per-request form: name-based lookup of
// the benchmark programs (previously reachable only by iterating the whole
// suite inside an experiment entry point) and AllocProfile, the measured
// allocation mix of one program run. The server simulation (internal/serve)
// and any future driver that needs "a slice of nboyer's allocation
// behavior" samples these profiles instead of duplicating program tables.

import (
	"fmt"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

// suite returns the standard or quick program table.
func suite(quick bool) []Program {
	if quick {
		return Quick()
	}
	return Standard()
}

// suiteName names the table for error messages.
func suiteName(quick bool) string {
	if quick {
		return "quick"
	}
	return "standard"
}

// Names lists the registry programs of the chosen suite, in suite order.
func Names(quick bool) []string {
	progs := suite(quick)
	names := make([]string, len(progs))
	for i, p := range progs {
		names[i] = p.Name()
	}
	return names
}

// ByName returns the registry program with the given name from the standard
// suite (or, with quick, the reduced-scale instances). Program values are
// cheap to construct and single-use state lives in Run, so the returned
// Program can be run directly.
func ByName(name string, quick bool) (Program, error) {
	for _, p := range suite(quick) {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("bench: no program %q in the %s suite (have %v)",
		name, suiteName(quick), Names(quick))
}

// AllocClass is one (object type, payload size) allocation class: the
// granularity at which a request handler can re-enact a program's
// allocation behavior without re-running the program.
type AllocClass struct {
	Type         heap.Type
	PayloadWords int
	Count        uint64
}

// CostWords is the heap cost of allocating one object of this class on a
// census-free heap: header plus payload.
func (c AllocClass) CostWords() uint64 { return uint64(1 + c.PayloadWords) }

// AllocProfile is the measured allocation mix of one program run: every
// allocation class with its exact count, plus the run totals. Profiles are
// immutable once built, so one profile can be sampled concurrently by many
// shards.
type AllocProfile struct {
	// Source names where the mix came from (a registry program name, or a
	// trace path for profiles built by internal/serve from recorded runs).
	Source string
	// Classes is sorted by (Type, PayloadWords) for deterministic iteration.
	Classes []AllocClass
	// Objects and Words total the run: Words counts header+payload per
	// object (no census stamps), i.e. the sum of Count*CostWords.
	Objects uint64
	Words   uint64
}

// profileSink tallies EvAlloc events; every other mutator event is noise
// for profiling purposes.
type profileSink struct {
	counts map[AllocClass]uint64
}

func (s *profileSink) EvAlloc(_ heap.Word, t heap.Type, payloadWords int) {
	s.counts[AllocClass{Type: t, PayloadWords: payloadWords}]++
}
func (s *profileSink) EvStore(heap.Word, int, heap.Word) {}
func (s *profileSink) EvFill(heap.Word, heap.Word)       {}
func (s *profileSink) EvRaw(heap.Word, int, uint64)      {}
func (s *profileSink) EvIntern(heap.Word, string)        {}
func (s *profileSink) EvRootPush(heap.Word)              {}
func (s *profileSink) EvRootPopTo(int)                   {}
func (s *profileSink) EvRootSet(heap.Ref, heap.Word)     {}
func (s *profileSink) EvGlobal(heap.Word)                {}

// BuildProfile assembles a profile from raw class counts, normalizing the
// class order and totals. Classes with zero count are dropped.
func BuildProfile(source string, counts map[AllocClass]uint64) AllocProfile {
	p := AllocProfile{Source: source}
	for cls, n := range counts {
		if n == 0 {
			continue
		}
		cls.Count = n
		p.Classes = append(p.Classes, cls)
		p.Objects += n
		p.Words += n * cls.CostWords()
	}
	sortClasses(p.Classes)
	return p
}

func sortClasses(cs []AllocClass) {
	// Insertion sort: class counts are small (tens), and this keeps the
	// file free of a sort import for one call site.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && classLess(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func classLess(a, b AllocClass) bool {
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	return a.PayloadWords < b.PayloadWords
}

// SampleProfile runs p once on a private scratch heap (a growing semispace
// collector, the least opinionated placement policy) and tallies its
// allocation mix. The run is deterministic, so the profile is too; callers
// cache it and sample it many times.
func SampleProfile(p Program) (AllocProfile, error) {
	h := heap.New()
	semispace.New(h, p.HeapWords(), semispace.WithExpansion(2))
	sink := &profileSink{counts: make(map[AllocClass]uint64)}
	h.SetEventSink(sink)
	if err := p.Run(h); err != nil {
		return AllocProfile{}, fmt.Errorf("bench: profiling %s: %w", p.Name(), err)
	}
	h.SetEventSink(nil)
	return BuildProfile(p.Name(), sink.counts), nil
}
