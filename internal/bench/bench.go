// Package bench defines the allocation-intensive benchmark programs of the
// paper's Section 7 (Table 2) as workloads over the simulated heap, plus
// the registry the experiment harness drives.
//
// Each program runs against any collector, verifies its own result, and —
// because every allocation goes through the simulated heap — yields the
// allocation volumes, survival curves, and gc/mutator ratios of Tables 3–7
// and Figures 2–4.
package bench

import (
	"fmt"

	"rdgc/internal/heap"
)

// Program is one benchmark.
type Program interface {
	// Name is the paper's benchmark name (e.g. "nboyer2").
	Name() string
	// Description matches Table 2's brief description.
	Description() string
	// Run executes the benchmark, allocating on h, and returns an error if
	// the computed result is wrong.
	Run(h *heap.Heap) error
	// HeapWords suggests a heap size that runs the program comfortably at
	// a moderate load factor.
	HeapWords() int
}

// Info is a Table 2 row.
type Info struct {
	Name        string
	Lines       int // lines of Go source implementing the benchmark
	Description string
}

// RunResult captures the Table 3 measurements for one (program, collector)
// pair. "Time" is measured in words: mutator work is words allocated and gc
// work is words copied plus marked (plus swept at the sweep discount).
type RunResult struct {
	Program        string
	Collector      string
	WordsAllocated uint64
	PeakLiveWords  int
	// FootprintWords is the heap's reserved footprint at the end of the run
	// (blocks reserved across every space times the block size): the memory
	// a real process would hold from the OS, as opposed to occupancy. Spaces
	// are never released, so the final footprint is also the maximum.
	FootprintWords int
	GCWorkWords    uint64
	Collections    int
	// Pause distribution over every mutator-visible pause the run recorded
	// (whole collections when stop-the-world; slices, on-demand sweeps, and
	// termination when incremental), in words of collector work.
	Pauses          uint64
	PauseP50Words   uint64
	PauseP99Words   uint64
	MaxPauseWords   uint64
	TotalPauseWords uint64
	RemsetPeak      int
	Err             error
}

// GCMutatorRatio is the Table 3 column (gc time)/(mutator time), using
// traced words over allocated words.
func (r RunResult) GCMutatorRatio() float64 {
	if r.WordsAllocated == 0 {
		return 0
	}
	return float64(r.GCWorkWords) / float64(r.WordsAllocated)
}

func (r RunResult) String() string {
	return fmt.Sprintf("%-10s %-14s alloc %8.2f Mwords  peak %7.3f Mwords  gc/mutator %5.1f%%  collections %4d",
		r.Program, r.Collector, float64(r.WordsAllocated)/1e6,
		float64(r.PeakLiveWords)/1e6, 100*r.GCMutatorRatio(), r.Collections)
}

// SweepDiscount weights sweep work relative to trace work in the gc-work
// metric: sweeping touches words linearly but does far less per word than
// tracing. The paper notes both collectors it compares have similar sweep
// overheads, so the discount mostly cancels in ratios.
const SweepDiscount = 0.2

// Measure runs p on h under collector c. Peak storage is estimated from
// post-collection occupancies (plus the final occupancy), the same way the
// paper's "peak storage (estimated)" column derives from semiheap sizes.
func Measure(p Program, h *heap.Heap, c heap.Collector) RunResult {
	err := p.Run(h)

	g := c.GCStats()
	peak := g.PeakLive
	if live := c.Live(); live > peak {
		peak = live
	}
	return RunResult{
		Program:         p.Name(),
		Collector:       c.Name(),
		WordsAllocated:  h.Stats.WordsAllocated,
		PeakLiveWords:   peak,
		FootprintWords:  h.FootprintWords(),
		GCWorkWords:     g.WordsCopied + g.WordsMarked + uint64(SweepDiscount*float64(g.WordsSwept)),
		Collections:     g.Collections,
		Pauses:          g.Pauses.Count,
		PauseP50Words:   g.Pauses.P50(),
		PauseP99Words:   g.Pauses.P99(),
		MaxPauseWords:   g.MaxPauseWords,
		TotalPauseWords: g.TotalPauseWords,
		RemsetPeak:      g.RemsetPeak,
		Err:             err,
	}
}
