package boyer

// The lemma base. The original Boyer benchmark installs ~100 lemmas on
// property lists; nboyer replaces the property lists with a faster table
// but keeps the lemmas. This reproduction ships a curated subset chosen so
// that (a) every rule the classic test theorem actually fires is present,
// (b) rewriting terminates on the test terms (no commutativity rules), and
// (c) the arithmetic and list lemmas generate the deep subtree-rewriting
// work responsible for the nboyer storage profile of Figure 3. The
// substitution instance and scaling are in boyer.go.
const lemmaText = `
; --- propositional connectives (these drive the tautology check) ---
(equal (and p q) (if p (if q (t) (f)) (f)))
(equal (or p q) (if p (t) (if q (t) (f))))
(equal (not p) (if p (f) (t)))
(equal (implies p q) (if p (if q (t) (f)) (t)))
(equal (iff x y) (and (implies x y) (implies y x)))
(equal (if (if a b c) d e) (if a (if b d e) (if c d e)))

; --- equality ---
(equal (equal x x) (t))
(equal (equal (plus a b) (zero)) (and (zerop a) (zerop b)))
(equal (equal (zero) (difference x y)) (not (lessp y x)))
(equal (equal (plus a b) (plus a c)) (equal (fix b) (fix c)))
(equal (eqp x y) (equal (fix x) (fix y)))

; --- arithmetic normalization ---
(equal (plus (plus x y) z) (plus x (plus y z)))
(equal (plus x (zero)) (fix x))
(equal (plus x (add1 y)) (add1 (plus x y)))
(equal (times (times x y) z) (times x (times y z)))
(equal (times x (plus y z)) (plus (times x y) (times x z)))
(equal (times x (zero)) (zero))
(equal (times x (add1 y)) (plus x (times x y)))
(equal (difference x x) (zero))
(equal (difference (plus x y) x) (fix y))
(equal (difference (plus y x) x) (fix y))
(equal (difference (add1 (plus y z)) z) (add1 y))
(equal (fix (fix x)) (fix x))
(equal (fix (plus x y)) (plus x y))
(equal (fix (zero)) (zero))

; --- order relations ---
(equal (greatereqp x y) (not (lessp x y)))
(equal (greaterp x y) (lessp y x))
(equal (lesseqp x y) (not (lessp y x)))
(equal (lessp (plus x y) (plus x z)) (lessp y z))
(equal (lessp x x) (f))
(equal (lessp (remainder x y) y) (not (zerop y)))
(equal (lessp (quotient i j) i) (and (not (zerop i)) (or (zerop j) (not (equal j (add1 (zero)))))))

; --- remainder/quotient ---
(equal (remainder x x) (zero))
(equal (remainder (zero) x) (zero))
(equal (remainder y (add1 (zero))) (zero))

; --- lists ---
(equal (append (append x y) z) (append x (append y z)))
(equal (append (nil) x) x)
(equal (reverse (append a b)) (append (reverse b) (reverse a)))
(equal (reverse (reverse x)) (shape x))
(equal (length (append a b)) (plus (length a) (length b)))
(equal (length (reverse x)) (length x))
(equal (length (cons x y)) (add1 (length y)))
(equal (length (nil)) (zero))
(equal (member a (append b c)) (or (member a b) (member a c)))
(equal (member a (reverse b)) (member a b))
(equal (member x (cons y z)) (or (equal x y) (member x z)))
(equal (member x (nil)) (f))
(equal (flatten (cons x y)) (append (flatten x) (flatten y)))
(equal (assignment x (append a b)) (if (assignedp x a) (assignment x a) (assignment x b)))

; --- odds and ends from the original base that the big terms can reach ---
(equal (zerop (zero)) (t))
(equal (zerop (add1 x)) (f))
(equal (countps l pred) (countps-loop l pred (zero)))
(equal (fact i) (fact-loop i 1))
(equal (falsify x) (falsify1 (normalize x) (nil)))
(equal (prime x) (and (not (zerop x)) (not (equal x (add1 (zero)))) (prime1 x (decr x))))
`

// theoremText is the classic test instance: transitivity of implication
// over five propositional variables.
const theoremText = `
(implies (and (implies x y)
              (and (implies y z)
                   (and (implies z u)
                        (implies u w))))
         (implies x w))
`

// substText binds the propositional variables to the classic "big" terms
// whose rewriting produces the benchmark's allocation behaviour.
const substText = `
((x . (f (plus (plus a b) (plus c (zero)))))
 (y . (f (times (times a b) (plus c d))))
 (z . (f (reverse (append (append a b) (nil)))))
 (u . (equal (plus a b) (difference x y)))
 (w . (lessp (remainder a b) (member a (length b)))))
`
