// Package boyer implements the nboyer and sboyer benchmarks of Table 2: Bob
// Boyer's theorem-prover benchmark, rewritten to rewrite terms allocated in
// the simulated heap. nboyer is the updated classic; sboyer adds Henry
// Baker's "shared consing" tweak, in which the rewriter returns the
// original term whenever the rewritten subterms are pointer-identical to
// the originals, trading a slightly slower mutator for far less allocation
// — the change whose effect on object lifetimes Section 7.2 studies
// (Figure 4, Table 7).
package boyer

import (
	"fmt"

	"rdgc/internal/heap"
	"rdgc/internal/sexp"
)

// Prog is one configuration of the benchmark.
type Prog struct {
	// N is the problem scaling parameter (1 is the classic problem; each
	// increment wraps the substituted terms one more level, roughly
	// doubling the tautology-checking work).
	N int
	// Shared enables sboyer's shared consing.
	Shared bool

	h     *heap.Heap
	rules map[int64]heap.Ref // lemma lists keyed by operator symbol id

	trueT  heap.Ref
	falseT heap.Ref

	// RewriteCount and UnifyCount record mutator work, for reporting.
	RewriteCount int
	UnifyCount   int
}

// New creates a Boyer benchmark instance.
func New(n int, shared bool) *Prog {
	if n < 1 {
		panic("boyer: scale must be >= 1")
	}
	return &Prog{N: n, Shared: shared}
}

// Name implements bench.Program.
func (p *Prog) Name() string {
	if p.Shared {
		return fmt.Sprintf("sboyer%d", p.N)
	}
	return fmt.Sprintf("nboyer%d", p.N)
}

// Description implements bench.Program.
func (p *Prog) Description() string {
	if p.Shared {
		return "term rewriting and tautology checking with shared consing"
	}
	return "term rewriting and tautology checking"
}

// HeapWords implements bench.Program.
func (p *Prog) HeapWords() int { return 1 << (17 + p.N) }

// Run implements bench.Program.
func (p *Prog) Run(h *heap.Heap) error {
	p.h = h
	p.RewriteCount, p.UnifyCount = 0, 0
	p.setup()

	s := h.Scope()
	defer s.Close()

	theorem := sexp.MustReadString(h, theoremText)
	subst := sexp.MustReadString(h, substText)
	term := p.applySubst(subst, theorem)
	term = p.scaleTerm(term)

	if !p.tautp(term) {
		return fmt.Errorf("boyer: the test theorem was not proved")
	}
	if p.RewriteCount == 0 || p.UnifyCount == 0 {
		return fmt.Errorf("boyer: no rewriting happened (rewrites=%d unifies=%d)",
			p.RewriteCount, p.UnifyCount)
	}
	return nil
}

// setup reads the lemma base into the heap and indexes it by operator, the
// nboyer replacement for the original's property lists. The lemmas are
// rooted globally, like the static area Larceny gives the standard library.
func (p *Prog) setup() {
	h := p.h
	p.rules = make(map[int64]heap.Ref)
	p.trueT = h.Global(sexp.MustReadString(h, "(t)"))
	p.falseT = h.Global(sexp.MustReadString(h, "(f)"))

	s := h.Scope()
	defer s.Close()
	lemmas := sexp.MustReadAll(h, lemmaText)
	cur := h.Dup(lemmas)
	for h.IsPair(cur) {
		s2 := h.Scope()
		lemma := h.Car(cur)
		lhs := h.Car(h.Cdr(lemma))
		op := h.Car(lhs)
		if !h.IsSymbol(op) {
			panic("boyer: lemma lhs operator is not a symbol: " + sexp.Print(h, lemma))
		}
		id := p.symID(op)
		bucket, ok := p.rules[id]
		if !ok {
			bucket = h.GlobalWord(heap.NullWord)
			p.rules[id] = bucket
		}
		ext := h.Cons(lemma, bucket)
		h.Set(bucket, h.Get(ext))
		h.Set(cur, h.Get(h.Cdr(cur)))
		s2.Close()
	}
}

func (p *Prog) symID(r heap.Ref) int64 {
	h := p.h
	s := h.Scope()
	defer s.Close()
	w := h.Get(r)
	return heap.FixnumVal(h.Payload(w)[0])
}

// scaleTerm wraps the instantiated theorem in N-1 levels of (or <term> (f)),
// the problem scaling: each level forces one more full renormalization of
// the theorem's rewritten form, roughly doubling the work and allocation
// while preserving the theorem's truth.
func (p *Prog) scaleTerm(term heap.Ref) heap.Ref {
	h := p.h
	s := h.Scope()
	orSym := h.Intern("or")
	fTerm := h.Dup(p.falseT)
	t := h.Dup(term)
	for i := 1; i < p.N; i++ {
		t = h.List(orSym, t, fTerm)
	}
	return s.Return(t)
}

// applySubst instantiates term under the variable bindings in alist.
// Operators (the car of applications) are never substituted.
func (p *Prog) applySubst(alist, term heap.Ref) heap.Ref {
	h := p.h
	s := h.Scope()
	if h.IsSymbol(term) {
		if hit, v := p.assq(alist, term); hit {
			return s.Return(v)
		}
		return s.Return(term)
	}
	if !h.IsPair(term) {
		return s.Return(term)
	}
	op := h.Car(term)
	args := p.applySubstLst(alist, h.Cdr(term))
	return s.Return(h.Cons(op, args))
}

func (p *Prog) applySubstLst(alist, lst heap.Ref) heap.Ref {
	h := p.h
	s := h.Scope()
	if !h.IsPair(lst) {
		return s.Return(lst)
	}
	a := p.applySubst(alist, h.Car(lst))
	d := p.applySubstLst(alist, h.Cdr(lst))
	if p.Shared && h.Eq(a, h.Car(lst)) && h.Eq(d, h.Cdr(lst)) {
		return s.Return(lst)
	}
	return s.Return(h.Cons(a, d))
}

// assq looks a symbol up in an association list by identity.
func (p *Prog) assq(alist, key heap.Ref) (bool, heap.Ref) {
	h := p.h
	s := h.Scope()
	cur := h.Dup(alist)
	for h.IsPair(cur) {
		pair := h.Car(cur)
		if h.Eq(h.Car(pair), key) {
			v := h.Cdr(pair)
			w := h.Get(v)
			s.Close()
			return true, h.RefOf(w)
		}
		h.Set(cur, h.Get(h.Cdr(cur)))
	}
	s.Close()
	return false, heap.InvalidRef
}

// rewrite normalizes a term bottom-up, applying lemmas at every level.
func (p *Prog) rewrite(term heap.Ref) heap.Ref {
	h := p.h
	p.RewriteCount++
	s := h.Scope()
	if !h.IsPair(term) {
		return s.Return(term)
	}
	op := h.Car(term)
	args := p.rewriteArgs(h.Cdr(term))
	var t2 heap.Ref
	if p.Shared && h.Eq(args, h.Cdr(term)) {
		t2 = h.Dup(term)
	} else {
		t2 = h.Cons(op, args)
	}
	return s.Return(p.rewriteWithLemmas(t2, op))
}

func (p *Prog) rewriteArgs(lst heap.Ref) heap.Ref {
	h := p.h
	s := h.Scope()
	if !h.IsPair(lst) {
		return s.Return(lst)
	}
	a := p.rewrite(h.Car(lst))
	d := p.rewriteArgs(h.Cdr(lst))
	if p.Shared && h.Eq(a, h.Car(lst)) && h.Eq(d, h.Cdr(lst)) {
		return s.Return(lst)
	}
	return s.Return(h.Cons(a, d))
}

func (p *Prog) rewriteWithLemmas(term, op heap.Ref) heap.Ref {
	h := p.h
	s := h.Scope()
	if !h.IsSymbol(op) {
		return s.Return(term)
	}
	bucket, ok := p.rules[p.symID(op)]
	if !ok {
		return s.Return(term)
	}
	cur := h.Dup(bucket)
	for h.IsPair(cur) {
		s2 := h.Scope()
		lemma := h.Car(cur)
		lhs := h.Car(h.Cdr(lemma))
		rhs := h.Car(h.Cdr(h.Cdr(lemma)))
		if ok, subst := p.onewayUnify(term, lhs); ok {
			instantiated := p.applySubst(subst, rhs)
			result := p.rewrite(instantiated)
			w := h.Get(result)
			s2.Close()
			h.Set(term, w) // reuse the term ref slot for the result
			return s.Return(term)
		}
		s2.Close()
		h.Set(cur, h.Get(h.Cdr(cur)))
	}
	return s.Return(term)
}

// onewayUnify matches term against pattern, returning the binding alist.
// Pattern variables are bare symbols; operators must be identical symbols.
func (p *Prog) onewayUnify(term, pattern heap.Ref) (bool, heap.Ref) {
	p.UnifyCount++
	h := p.h
	s := h.Scope()
	subst := h.Null()
	ok, subst := p.unify1(term, pattern, subst)
	if !ok {
		s.Close()
		return false, heap.InvalidRef
	}
	return true, s.Return(subst)
}

func (p *Prog) unify1(term, pattern, subst heap.Ref) (bool, heap.Ref) {
	h := p.h
	if h.IsSymbol(pattern) {
		if hit, bound := p.assq(subst, pattern); hit {
			return sexp.Equal(h, term, bound), subst
		}
		s := h.Scope()
		ext := h.Cons(h.Cons(pattern, term), subst)
		return true, s.Return(ext)
	}
	if !h.IsPair(pattern) {
		// Non-symbol atoms (fixnums, ()) match only themselves.
		return sexp.Equal(h, term, pattern), subst
	}
	if !h.IsPair(term) {
		return false, subst
	}
	s := h.Scope()
	if !h.Eq(h.Car(term), h.Car(pattern)) {
		s.Close()
		return false, subst
	}
	ok, subst2 := p.unifyLst(h.Cdr(term), h.Cdr(pattern), h.Dup(subst))
	if !ok {
		s.Close()
		return false, subst
	}
	return true, s.Return(subst2)
}

func (p *Prog) unifyLst(terms, patterns, subst heap.Ref) (bool, heap.Ref) {
	h := p.h
	if h.IsNull(patterns) {
		return h.IsNull(terms), subst
	}
	if !h.IsPair(terms) || !h.IsPair(patterns) {
		return false, subst
	}
	s := h.Scope()
	ok, subst2 := p.unify1(h.Car(terms), h.Car(patterns), h.Dup(subst))
	if !ok {
		s.Close()
		return false, subst
	}
	ok, subst3 := p.unifyLst(h.Cdr(terms), h.Cdr(patterns), subst2)
	if !ok {
		s.Close()
		return false, subst
	}
	return true, s.Return(subst3)
}

// tautp rewrites x to normal form and checks it is a tautology.
func (p *Prog) tautp(x heap.Ref) bool {
	h := p.h
	s := h.Scope()
	defer s.Close()
	normal := p.rewrite(x)
	return p.tautologyp(normal, h.Null(), h.Null())
}

func (p *Prog) tautologyp(x, trueLst, falseLst heap.Ref) bool {
	h := p.h
	s := h.Scope()
	defer s.Close()
	if p.truep(x, trueLst) {
		return true
	}
	if p.falsep(x, falseLst) {
		return false
	}
	if !h.IsPair(x) {
		return false
	}
	if !h.Eq(h.Car(x), h.Intern("if")) {
		return false
	}
	cond := h.Car(h.Cdr(x))
	then := h.Car(h.Cdr(h.Cdr(x)))
	els := h.Car(h.Cdr(h.Cdr(h.Cdr(x))))
	switch {
	case p.truep(cond, trueLst):
		return p.tautologyp(then, trueLst, falseLst)
	case p.falsep(cond, falseLst):
		return p.tautologyp(els, trueLst, falseLst)
	default:
		return p.tautologyp(then, h.Cons(cond, trueLst), falseLst) &&
			p.tautologyp(els, trueLst, h.Cons(cond, falseLst))
	}
}

func (p *Prog) truep(x, lst heap.Ref) bool {
	return sexp.Equal(p.h, x, p.trueT) || p.memberEqual(x, lst)
}

func (p *Prog) falsep(x, lst heap.Ref) bool {
	return sexp.Equal(p.h, x, p.falseT) || p.memberEqual(x, lst)
}

func (p *Prog) memberEqual(x, lst heap.Ref) bool {
	h := p.h
	s := h.Scope()
	defer s.Close()
	cur := h.Dup(lst)
	for h.IsPair(cur) {
		if sexp.Equal(h, x, h.Car(cur)) {
			return true
		}
		h.Set(cur, h.Get(h.Cdr(cur)))
	}
	return false
}
