package boyer

import (
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
	"rdgc/internal/sexp"
)

func newHeap(words int) *heap.Heap {
	h := heap.New()
	semispace.New(h, words, semispace.WithExpansion(3))
	return h
}

func TestUnify(t *testing.T) {
	p := New(1, false)
	h := newHeap(1 << 16)
	p.h = h
	s := h.Scope()
	defer s.Close()

	term := sexp.MustReadString(h, "(plus (plus a b) c)")
	pat := sexp.MustReadString(h, "(plus (plus x y) z)")
	ok, subst := p.onewayUnify(term, pat)
	if !ok {
		t.Fatal("unification failed")
	}
	if got := sexp.Print(h, subst); got != "((z . c) (y . b) (x . a))" {
		t.Errorf("subst = %s", got)
	}

	// Repeated variables must demand equal subterms.
	pat2 := sexp.MustReadString(h, "(difference x x)")
	if ok, _ := p.onewayUnify(sexp.MustReadString(h, "(difference q q)"), pat2); !ok {
		t.Error("(difference q q) should match (difference x x)")
	}
	if ok, _ := p.onewayUnify(sexp.MustReadString(h, "(difference q r)"), pat2); ok {
		t.Error("(difference q r) should not match (difference x x)")
	}

	// Operator mismatch.
	if ok, _ := p.onewayUnify(sexp.MustReadString(h, "(times a b)"), pat); ok {
		t.Error("times should not match plus")
	}
}

func TestApplySubst(t *testing.T) {
	p := New(1, false)
	h := newHeap(1 << 16)
	p.h = h
	s := h.Scope()
	defer s.Close()
	alist := sexp.MustReadString(h, "((x . (g a)) (y . b))")
	term := sexp.MustReadString(h, "(f x (h y) x)")
	got := sexp.Print(h, p.applySubst(alist, term))
	// Operators f and h are untouched; x and y are substituted.
	if got != "(f (g a) (h b) (g a))" {
		t.Errorf("applySubst = %s", got)
	}
}

func TestRewriteNormalizesArithmetic(t *testing.T) {
	p := New(1, false)
	h := newHeap(1 << 18)
	p.h = h
	p.setup()
	s := h.Scope()
	defer s.Close()

	cases := []struct{ in, want string }{
		{"(plus (plus a b) c)", "(plus a (plus b c))"},
		{"(plus a (zero))", "(fix a)"},
		{"(difference q q)", "(zero)"},
		{"(not p)", "(if p (f) (t))"},
		{"(equal q q)", "(t)"},
		{"(append (append a b) c)", "(append a (append b c))"},
	}
	for _, c := range cases {
		got := sexp.Print(h, p.rewrite(sexp.MustReadString(h, c.in)))
		if got != c.want {
			t.Errorf("rewrite %s = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestTautologyChecker(t *testing.T) {
	p := New(1, false)
	h := newHeap(1 << 18)
	p.h = h
	p.setup()
	s := h.Scope()
	defer s.Close()

	taut := []string{
		"(t)",
		"(implies p p)",
		"(or p (not p))",
		"(implies (and p q) p)",
		"(implies (and (implies p q) (implies q r)) (implies p r))",
	}
	for _, src := range taut {
		if !p.tautp(sexp.MustReadString(h, src)) {
			t.Errorf("%s not proved", src)
		}
	}
	notTaut := []string{
		"(f)",
		"p",
		"(implies p q)",
		"(and p (not p))",
	}
	for _, src := range notTaut {
		if p.tautp(sexp.MustReadString(h, src)) {
			t.Errorf("%s wrongly proved", src)
		}
	}
}

func TestRunProvesTheorem(t *testing.T) {
	for _, cfg := range []struct {
		n      int
		shared bool
	}{{1, false}, {1, true}, {2, false}, {2, true}} {
		p := New(cfg.n, cfg.shared)
		h := newHeap(1 << 16)
		if err := p.Run(h); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestSharedConsingAllocatesLess(t *testing.T) {
	run := func(shared bool) uint64 {
		p := New(2, shared)
		h := newHeap(1 << 16)
		if err := p.Run(h); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		return h.Stats.WordsAllocated
	}
	n := run(false)
	s := run(true)
	if s >= n {
		t.Errorf("sboyer allocated %d words, nboyer %d; shared consing should allocate less", s, n)
	}
}

func TestScalingGrowsWork(t *testing.T) {
	alloc := make([]uint64, 0, 3)
	for n := 1; n <= 3; n++ {
		p := New(n, false)
		h := newHeap(1 << 16)
		if err := p.Run(h); err != nil {
			t.Fatalf("scale %d: %v", n, err)
		}
		alloc = append(alloc, h.Stats.WordsAllocated)
	}
	if !(alloc[0] < alloc[1] && alloc[1] < alloc[2]) {
		t.Errorf("allocation not increasing with scale: %v", alloc)
	}
}

func TestNames(t *testing.T) {
	if got := New(2, false).Name(); got != "nboyer2" {
		t.Errorf("Name = %s", got)
	}
	if got := New(3, true).Name(); got != "sboyer3" {
		t.Errorf("Name = %s", got)
	}
}
