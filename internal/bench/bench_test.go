package bench

import (
	"strings"
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

// tiny is a minimal Program for testing the harness itself.
type tiny struct{ fail bool }

func (t *tiny) Name() string        { return "tiny" }
func (t *tiny) Description() string { return "harness self-test program" }
func (t *tiny) HeapWords() int      { return 4096 }
func (t *tiny) Run(h *heap.Heap) error {
	s := h.Scope()
	defer s.Close()
	for i := 0; i < 2000; i++ {
		s2 := h.Scope()
		h.Cons(h.Fix(int64(i)), h.Null())
		s2.Close()
	}
	if t.fail {
		return errFail
	}
	return nil
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "tiny failed" }

func TestMeasure(t *testing.T) {
	h := heap.New()
	c := semispace.New(h, 1024)
	res := Measure(&tiny{}, h, c)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.WordsAllocated != 6000 {
		t.Errorf("allocated %d words, want 6000", res.WordsAllocated)
	}
	if res.Collections == 0 {
		t.Error("no collections on a 1K-word heap")
	}
	if res.Program != "tiny" || res.Collector != "stop-and-copy" {
		t.Errorf("labels: %q %q", res.Program, res.Collector)
	}
	if res.GCMutatorRatio() < 0 {
		t.Error("negative ratio")
	}
	if !strings.Contains(res.String(), "tiny") {
		t.Errorf("String: %s", res.String())
	}
}

func TestMeasurePropagatesError(t *testing.T) {
	h := heap.New()
	c := semispace.New(h, 4096)
	res := Measure(&tiny{fail: true}, h, c)
	if res.Err == nil {
		t.Error("program error not propagated")
	}
}

func TestRunResultRatioZeroAlloc(t *testing.T) {
	var r RunResult
	if r.GCMutatorRatio() != 0 {
		t.Error("ratio with zero allocation should be 0")
	}
}

func TestRegistries(t *testing.T) {
	std, quick := Standard(), Quick()
	if len(std) < 8 {
		t.Errorf("Standard has %d programs", len(std))
	}
	if len(quick) < 6 {
		t.Errorf("Quick has %d programs", len(quick))
	}
	seen := map[string]bool{}
	for _, p := range append(std, quick...) {
		if p.Name() == "" || p.Description() == "" || p.HeapWords() <= 0 {
			t.Errorf("malformed program %q", p.Name())
		}
		if seen[p.Name()] {
			t.Errorf("duplicate program name %q across a registry", p.Name())
		}
	}
}
