package lattice

import (
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

func TestChainAndProduct(t *testing.T) {
	c2 := Chain(2)
	if !c2.Leq(0, 1) || c2.Leq(1, 0) || !c2.Leq(0, 0) {
		t.Error("Chain(2) order wrong")
	}
	sq := Product(c2, c2)
	if sq.N != 4 {
		t.Fatalf("product size %d", sq.N)
	}
	// (0,0) <= (1,1); (0,1) and (1,0) incomparable.
	if !sq.Leq(0, 3) {
		t.Error("bottom not below top")
	}
	if sq.Leq(1, 2) || sq.Leq(2, 1) {
		t.Error("incomparable elements compared")
	}
}

func TestCountMonotoneGoKnownValues(t *testing.T) {
	// Monotone maps from a poset P to Chain(2) are exactly the order
	// ideals (downsets) of P. The 2x2 grid has 6; the 2-cube has 20.
	if got := CountMonotoneGo(Power(Chain(2), 2), Chain(2)); got != 6 {
		t.Errorf("maps(2x2 -> 2) = %d, want 6", got)
	}
	if got := CountMonotoneGo(Power(Chain(2), 3), Chain(2)); got != 20 {
		t.Errorf("maps(2^3 -> 2) = %d, want 20 (Dedekind number M(3))", got)
	}
	// Maps from Chain(2) to Chain(n): pairs i <= j: n(n+1)/2.
	if got := CountMonotoneGo(Chain(2), Chain(4)); got != 10 {
		t.Errorf("maps(chain2 -> chain4) = %d, want 10", got)
	}
}

func TestRunAgreesWithReference(t *testing.T) {
	h := heap.New()
	semispace.New(h, 1<<16, semispace.WithExpansion(3))
	p := New(4, 3)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	if p.Count != CountMonotoneGo(Power(Chain(2), 4), Chain(3)) {
		t.Errorf("heap count %d disagrees with reference", p.Count)
	}
	if h.Stats.WordsAllocated == 0 {
		t.Error("no allocation recorded")
	}
}

func TestRunSurvivesSmallHeap(t *testing.T) {
	// The search must tolerate constant collection pressure.
	h := heap.New()
	semispace.New(h, 2048, semispace.WithExpansion(2))
	p := New(4, 2)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
}
