// Package lattice implements the lattice benchmark of Table 2: enumeration
// of monotone maps between finite lattices. It is the paper's exemplar of a
// purely functional program — a high allocation rate with almost no
// long-lived storage, since only the current search path is live.
package lattice

import (
	"fmt"

	"rdgc/internal/heap"
)

// Poset is a finite partial order on elements 0..N-1.
type Poset struct {
	N   int
	leq [][]bool
}

// Leq reports whether a ≤ b.
func (p *Poset) Leq(a, b int) bool { return p.leq[a][b] }

// Chain builds the total order 0 < 1 < ... < n-1.
func Chain(n int) *Poset {
	p := &Poset{N: n, leq: make([][]bool, n)}
	for i := range p.leq {
		p.leq[i] = make([]bool, n)
		for j := i; j < n; j++ {
			p.leq[i][j] = true
		}
	}
	return p
}

// Product builds the componentwise order on pairs (a_i, b_j).
func Product(a, b *Poset) *Poset {
	n := a.N * b.N
	p := &Poset{N: n, leq: make([][]bool, n)}
	for i := range p.leq {
		p.leq[i] = make([]bool, n)
	}
	for i1 := 0; i1 < a.N; i1++ {
		for j1 := 0; j1 < b.N; j1++ {
			for i2 := 0; i2 < a.N; i2++ {
				for j2 := 0; j2 < b.N; j2++ {
					p.leq[i1*b.N+j1][i2*b.N+j2] = a.leq[i1][i2] && b.leq[j1][j2]
				}
			}
		}
	}
	return p
}

// Power builds the k-fold product of p with itself.
func Power(p *Poset, k int) *Poset {
	out := p
	for i := 1; i < k; i++ {
		out = Product(out, p)
	}
	return out
}

// CountMonotoneGo counts monotone maps from one poset to another using
// plain Go — the reference the heap-allocating benchmark verifies against.
func CountMonotoneGo(from, to *Poset) int64 {
	img := make([]int, from.N)
	var rec func(i int) int64
	rec = func(i int) int64 {
		if i == from.N {
			return 1
		}
		var total int64
		for v := 0; v < to.N; v++ {
			ok := true
			for j := 0; j < i; j++ {
				if from.Leq(j, i) && !to.Leq(img[j], v) {
					ok = false
					break
				}
				if from.Leq(i, j) && !to.Leq(v, img[j]) {
					ok = false
					break
				}
			}
			if ok {
				img[i] = v
				total += rec(i + 1)
			}
		}
		return total
	}
	return rec(0)
}

// Prog is the benchmark: count monotone maps from Chain(2)^K to Chain(M),
// building every partial map as a heap list (one cons per extension), as
// the Scheme original does.
type Prog struct {
	K int // exponent of the source lattice (2-chain to the K)
	M int // size of the target chain
	// Repeat runs the whole enumeration this many times; each pass's maps
	// die when the next begins, giving the paper's high-allocation,
	// bounded-peak profile.
	Repeat int

	Count int64 // maps found by the last pass of Run
}

// New creates a lattice benchmark instance.
func New(k, m int) *Prog { return &Prog{K: k, M: m, Repeat: 1} }

// Name implements bench.Program.
func (p *Prog) Name() string { return "lattice" }

// Description implements bench.Program.
func (p *Prog) Description() string { return "enumeration of maps between lattices" }

// HeapWords implements bench.Program.
func (p *Prog) HeapWords() int { return 1 << 16 }

// Run implements bench.Program. Like the Scheme original, the enumeration
// *materializes* the maps as a heap list (complete maps share their partial
// prefixes, trie-fashion), which is why the paper's Table 3 reports a
// multi-megabyte peak for a "purely functional" program: the result list is
// the only long-lived storage, and it all dies at once when Run returns.
func (p *Prog) Run(h *heap.Heap) error {
	from := Power(Chain(2), p.K)
	to := Chain(p.M)
	want := CountMonotoneGo(from, to)

	repeat := p.Repeat
	if repeat < 1 {
		repeat = 1
	}
	for r := 0; r < repeat; r++ {
		s := h.Scope()
		maps := p.enumerate(h, from, to, 0, h.Null(), h.Null())
		p.Count = int64(h.ListLen(maps))
		if p.Count != want {
			s.Close()
			return fmt.Errorf("lattice: pass %d counted %d monotone maps, want %d", r, p.Count, want)
		}
		if !p.isMonotone(h, from, to, h.Car(maps)) {
			s.Close()
			return fmt.Errorf("lattice: enumerated a non-monotone map")
		}
		s.Close()
	}
	return nil
}

// enumerate extends the partial map (a heap list, most recent image first)
// with every legal image of element i, consing completed maps onto acc.
func (p *Prog) enumerate(h *heap.Heap, from, to *Poset, i int, partial, acc heap.Ref) heap.Ref {
	s := h.Scope()
	if i == from.N {
		return s.Return(h.Cons(partial, acc))
	}
	out := h.Dup(acc)
	for v := 0; v < to.N; v++ {
		s2 := h.Scope()
		if p.compatible(h, from, to, i, v, partial) {
			ext := h.Cons(h.Fix(int64(v)), partial)
			out = s2.Return(p.enumerate(h, from, to, i+1, ext, out))
		} else {
			s2.Close()
		}
	}
	return s.Return(out)
}

// isMonotone re-checks one enumerated map (stored most recent image first).
func (p *Prog) isMonotone(h *heap.Heap, from, to *Poset, m heap.Ref) bool {
	s := h.Scope()
	defer s.Close()
	img := make([]int, from.N)
	cur := h.Dup(m)
	for i := from.N - 1; i >= 0; i-- {
		img[i] = int(h.FixVal(h.Car(cur)))
		h.Set(cur, h.Get(h.Cdr(cur)))
	}
	for a := 0; a < from.N; a++ {
		for b := 0; b < from.N; b++ {
			if from.Leq(a, b) && !to.Leq(img[a], img[b]) {
				return false
			}
		}
	}
	return true
}

// compatible checks monotonicity of assigning image v to element i. Like
// the Scheme original's lexicographic comparisons, it first materializes
// the candidate assignment in element order — a temporary list that dies as
// soon as the test finishes, which is what makes lattice allocation-heavy
// while its only long-lived storage is the result trie.
func (p *Prog) compatible(h *heap.Heap, from, to *Poset, i, v int, partial heap.Ref) bool {
	s := h.Scope()
	defer s.Close()
	// Reverse (v . partial) into element order 0..i.
	ordered := h.Null()
	cur := h.Cons(h.Fix(int64(v)), partial)
	for h.IsPair(cur) {
		ordered = h.Cons(h.Car(cur), ordered)
		h.Set(cur, h.Get(h.Cdr(cur)))
	}
	walk := h.Dup(ordered)
	for j := 0; j < i; j++ {
		img := int(h.FixVal(h.Car(walk)))
		if from.Leq(j, i) && !to.Leq(img, v) {
			return false
		}
		if from.Leq(i, j) && !to.Leq(v, img) {
			return false
		}
		h.Set(walk, h.Get(h.Cdr(walk)))
	}
	return true
}
