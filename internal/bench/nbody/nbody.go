// Package nbody implements the nbody benchmark of Table 2: an
// inverse-square-law particle simulation. Matching Larceny's uniform
// representation — the paper attributes nbody's "excessively rapid
// allocation" to it — every floating-point intermediate is a boxed flonum
// allocated on the simulated heap, so a direct-sum force evaluation
// allocates tens of words per body pair and almost all of it dies within
// one time step.
//
// The paper's nbody uses Greengard's fast multipole method; the multipole
// machinery only changes which floats are computed, not how they are boxed,
// so this reproduction uses the direct O(n²) sum. DESIGN.md records the
// substitution.
package nbody

import (
	"fmt"
	"math"
	"math/rand"

	"rdgc/internal/heap"
)

// Prog is one n-body configuration.
type Prog struct {
	Bodies int
	Steps  int
	DT     float64
	Seed   int64
	// HistorySteps bounds the retained trajectory ring. The paper's nbody
	// (Greengard's method) keeps a multipole tree and expansion caches
	// that put its peak storage near a megabyte; the direct-sum substitute
	// carries an equivalent medium-lived structure by retaining the last
	// HistorySteps position snapshots.
	HistorySteps int

	// Drift is the relative momentum drift of the last Run (should be ~0).
	Drift float64
}

// New creates an n-body run; paper-scale behaviour needs only modest sizes
// because the point is allocation volume, not physics throughput.
func New(bodies, steps int) *Prog {
	return &Prog{Bodies: bodies, Steps: steps, DT: 1e-3, Seed: 1, HistorySteps: 20}
}

// Name implements bench.Program.
func (p *Prog) Name() string { return fmt.Sprintf("nbody-%d", p.Bodies) }

// Description implements bench.Program.
func (p *Prog) Description() string { return "inverse-square law simulation (boxed flonums)" }

// HeapWords implements bench.Program.
func (p *Prog) HeapWords() int { return 1 << 16 }

// flonum arithmetic: every operation allocates its result, as Larceny does.

func (p *Prog) add(h *heap.Heap, a, b heap.Ref) heap.Ref {
	return h.Flonum(h.FlonumVal(a) + h.FlonumVal(b))
}
func (p *Prog) sub(h *heap.Heap, a, b heap.Ref) heap.Ref {
	return h.Flonum(h.FlonumVal(a) - h.FlonumVal(b))
}
func (p *Prog) mul(h *heap.Heap, a, b heap.Ref) heap.Ref {
	return h.Flonum(h.FlonumVal(a) * h.FlonumVal(b))
}
func (p *Prog) div(h *heap.Heap, a, b heap.Ref) heap.Ref {
	return h.Flonum(h.FlonumVal(a) / h.FlonumVal(b))
}

// Run implements bench.Program.
func (p *Prog) Run(h *heap.Heap) error {
	rng := rand.New(rand.NewSource(p.Seed))
	s := h.Scope()
	defer s.Close()

	n := p.Bodies
	// State vectors: position, velocity, mass — boxed flonums in vectors,
	// the only storage that survives across steps.
	pos := make([]heap.Ref, 3)
	vel := make([]heap.Ref, 3)
	for d := 0; d < 3; d++ {
		pos[d] = h.MakeVector(n, h.Flonum(0))
		vel[d] = h.MakeVector(n, h.Flonum(0))
	}
	mass := h.MakeVector(n, h.Flonum(0))
	for i := 0; i < n; i++ {
		s2 := h.Scope()
		for d := 0; d < 3; d++ {
			h.VectorSet(pos[d], i, h.Flonum(rng.Float64()*2-1))
			h.VectorSet(vel[d], i, h.Flonum((rng.Float64()*2-1)*0.1))
		}
		h.VectorSet(mass, i, h.Flonum(rng.Float64()*0.9+0.1))
		s2.Close()
	}

	p0 := p.totalMomentum(h, vel, mass)

	// The trajectory ring: HistorySteps slots of per-body position
	// snapshots, each slot overwritten in rotation so its previous
	// contents die in place.
	ringSlots := p.HistorySteps
	if ringSlots < 1 {
		ringSlots = 1
	}
	history := h.MakeVector(ringSlots, h.Null())

	dt := h.Flonum(p.DT)
	eps := h.Flonum(1e-4)
	for step := 0; step < p.Steps; step++ {
		for i := 0; i < n; i++ {
			si := h.Scope()
			acc := []heap.Ref{h.Flonum(0), h.Flonum(0), h.Flonum(0)}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				sj := h.Scope()
				var d [3]heap.Ref
				r2 := h.Dup(eps)
				for k := 0; k < 3; k++ {
					d[k] = p.sub(h, h.VectorRef(pos[k], j), h.VectorRef(pos[k], i))
					r2 = p.add(h, r2, p.mul(h, d[k], d[k]))
				}
				r := h.Flonum(math.Sqrt(h.FlonumVal(r2)))
				f := p.div(h, h.VectorRef(mass, j), p.mul(h, r2, r))
				for k := 0; k < 3; k++ {
					acc[k] = p.add(h, acc[k], p.mul(h, f, d[k]))
				}
				// Keep the updated accumulators; drop the temporaries.
				w0, w1, w2 := h.Get(acc[0]), h.Get(acc[1]), h.Get(acc[2])
				sj.Close()
				acc[0], acc[1], acc[2] = h.RefOf(w0), h.RefOf(w1), h.RefOf(w2)
			}
			for k := 0; k < 3; k++ {
				h.VectorSet(vel[k], i, p.add(h, h.VectorRef(vel[k], i), p.mul(h, acc[k], dt)))
			}
			si.Close()
		}
		for i := 0; i < n; i++ {
			si := h.Scope()
			for k := 0; k < 3; k++ {
				h.VectorSet(pos[k], i, p.add(h, h.VectorRef(pos[k], i),
					p.mul(h, h.VectorRef(vel[k], i), dt)))
			}
			si.Close()
		}

		// Snapshot the step into the trajectory ring.
		ss := h.Scope()
		snap := h.MakeVector(3*n, h.Flonum(0))
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				h.VectorSet(snap, 3*i+k, h.Flonum(h.FlonumVal(h.VectorRef(pos[k], i))))
			}
		}
		h.VectorSet(history, step%ringSlots, snap)
		ss.Close()
	}
	if h.IsNull(h.VectorRef(history, 0)) {
		return fmt.Errorf("nbody: trajectory ring never filled")
	}

	p1 := p.totalMomentum(h, vel, mass)
	p.Drift = 0
	for k := 0; k < 3; k++ {
		p.Drift += math.Abs(p1[k] - p0[k])
	}
	if p.Drift > 1e-6*float64(n)*float64(p.Steps) {
		return fmt.Errorf("nbody: momentum drift %g too large", p.Drift)
	}
	return nil
}

func (p *Prog) totalMomentum(h *heap.Heap, vel []heap.Ref, mass heap.Ref) [3]float64 {
	s := h.Scope()
	defer s.Close()
	var out [3]float64
	for i := 0; i < h.VectorLen(mass); i++ {
		m := h.FlonumVal(h.VectorRef(mass, i))
		for k := 0; k < 3; k++ {
			out[k] += m * h.FlonumVal(h.VectorRef(vel[k], i))
		}
	}
	return out
}
