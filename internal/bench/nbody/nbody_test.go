package nbody

import (
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

func TestRunConservesMomentum(t *testing.T) {
	h := heap.New()
	semispace.New(h, 1<<16)
	p := New(12, 20)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	if p.Drift > 1e-9 {
		t.Errorf("momentum drift %g", p.Drift)
	}
}

func TestAllocationIsFlonumDominated(t *testing.T) {
	h := heap.New()
	semispace.New(h, 1<<16)
	p := New(12, 20)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	// Each body pair allocates ~20 flonums per step: with 12 bodies and 20
	// steps that is on the order of 12*11*20*20*2 words; check the volume
	// is in flonum territory and survivors are tiny.
	if h.Stats.WordsAllocated < 100000 {
		t.Errorf("allocated only %d words; boxing seems missing", h.Stats.WordsAllocated)
	}
}

func TestSurvivorsAreTiny(t *testing.T) {
	h := heap.New()
	c := semispace.New(h, 1<<16)
	p := New(12, 20)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	c.Collect()
	// Paper: nbody's peak storage is far below 1 Mby despite 160 Mby
	// allocated. Here: state is ~7 vectors of 12 flonums.
	if live := c.Live(); live > 2000 {
		t.Errorf("live after run = %d words, want < 2000", live)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() uint64 {
		h := heap.New()
		semispace.New(h, 1<<16)
		p := New(8, 10)
		if err := p.Run(h); err != nil {
			t.Fatal(err)
		}
		return h.Stats.WordsAllocated
	}
	if run() != run() {
		t.Error("nbody not deterministic")
	}
}

func TestSmallHeapPressure(t *testing.T) {
	h := heap.New()
	semispace.New(h, 4096)
	p := New(8, 5)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
}
