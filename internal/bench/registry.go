package bench

import (
	"rdgc/internal/bench/boyer"
	"rdgc/internal/bench/dynamicw"
	"rdgc/internal/bench/dyninfer"
	"rdgc/internal/bench/lattice"
	"rdgc/internal/bench/nbody"
	"rdgc/internal/bench/nucleic"
)

// Standard returns the paper's benchmark suite at the scales Table 3 uses:
// nbody, nucleic2, lattice, 10dynamic, nboyer2, and sboyer2/3/4.
func Standard() []Program {
	l := lattice.New(4, 3)
	l.Repeat = 20
	return []Program{
		nbody.New(24, 60),
		nucleic.New(14, 2),
		l,
		dynamicw.New(10),
		dyninfer.New(10),
		boyer.New(2, false),
		boyer.New(2, true),
		boyer.New(3, true),
		boyer.New(4, true),
	}
}

// Quick returns reduced-scale instances for tests and smoke runs.
func Quick() []Program {
	q := dynamicw.New(2)
	q.PhaseWords = 30000
	return []Program{
		nbody.New(10, 10),
		nucleic.New(10, 2),
		lattice.New(3, 3),
		q,
		dyninfer.New(2),
		boyer.New(1, false),
		boyer.New(1, true),
	}
}

// Table2 returns the benchmark inventory: the paper's Table 2, with
// lines-of-code counts for the Go reimplementations.
func Table2() []Info {
	return []Info{
		{"nbody", 160, "inverse-square law simulation"},
		{"nucleic2", 120, "determination of nucleic acids' spatial structure"},
		{"lattice", 160, "enumeration of maps between lattices"},
		{"10dynamic", 130, "iterated phase computation (dynamic type inference substitute)"},
		{"nboyer", 420, "term rewriting and tautology checking"},
		{"sboyer", 420, "tweaked version of nboyer (shared consing)"},
	}
}
