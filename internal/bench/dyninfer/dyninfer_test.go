package dyninfer

import (
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
	"rdgc/internal/lifetime"
	"rdgc/internal/sexp"
)

func newHeap() *heap.Heap {
	h := heap.New()
	semispace.New(h, 1<<16, semispace.WithExpansion(3))
	return h
}

func TestRunIsCleanOnCorpus(t *testing.T) {
	h := newHeap()
	p := New(2)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	if p.Unifications < 100 {
		t.Errorf("only %d unifications; the corpus should be richer", p.Unifications)
	}
	if p.Vars < 100 {
		t.Errorf("only %d type variables", p.Vars)
	}
}

func TestInferenceTypesSimplePrograms(t *testing.T) {
	h := newHeap()
	p := &Prog{h: h}
	s := h.Scope()
	defer s.Close()

	cases := []struct {
		src  string
		want string // constructor name of the representative, "" for var
	}{
		{"42", "num"},
		{"(+ 1 2)", "num"},
		{"(cons 1 2)", "pair"},
		{"(lambda (x) x)", "fun"},
		{"(quote hello)", "sym"},
		{"(null? 1)", "bool"},
		{"(if (null? 1) 3 4)", "num"},
		{"(car (cons 1 2))", "num"},
		{"(let ((x 5)) x)", "num"},
	}
	for _, c := range cases {
		s2 := h.Scope()
		expr := sexp.MustReadString(h, c.src)
		typ := p.payload(p.find(p.infer(expr, p.emptyEnv())))
		got := ""
		if h.IsPair(typ) {
			got = h.SymbolName(h.Car(typ))
		}
		if got != c.want {
			t.Errorf("%s: inferred %q, want %q", c.src, got, c.want)
		}
		s2.Close()
	}
	if p.Conflicts != 0 {
		t.Errorf("%d conflicts on well-typed expressions", p.Conflicts)
	}
}

func TestInferenceDetectsConflicts(t *testing.T) {
	h := newHeap()
	p := &Prog{h: h}
	s := h.Scope()
	defer s.Close()

	// (if b 1 (cons 1 2)) forces num ~ pair.
	expr := sexp.MustReadString(h, "(if (null? 0) 1 (cons 1 2))")
	p.infer(expr, p.emptyEnv())
	if p.Conflicts == 0 {
		t.Error("num ~ pair unification did not conflict")
	}
}

func TestUnionFindBehaviour(t *testing.T) {
	h := newHeap()
	p := &Prog{h: h}
	s := h.Scope()
	defer s.Close()

	a, b, c := p.freshVar(), p.freshVar(), p.freshVar()
	if !p.unify(a, b) || !p.unify(b, c) {
		t.Fatal("var-var unification failed")
	}
	num := p.ctor("num")
	if !p.unify(a, num) {
		t.Fatal("var-ctor unification failed")
	}
	// All three variables must now resolve to num.
	for i, v := range []heap.Ref{a, b, c} {
		r := p.payload(p.find(v))
		if !h.IsPair(r) || h.SymbolName(h.Car(r)) != "num" {
			t.Errorf("var %d did not resolve to num", i)
		}
	}
	// And conflicting constructors must be caught.
	if p.unify(c, p.ctor("bool")) {
		t.Error("num ~ bool did not conflict")
	}
}

func TestIterationsAreMassExtinctions(t *testing.T) {
	// After Run, every iteration's constraint graph is garbage.
	h := heap.New(heap.WithCensus())
	c := semispace.New(h, 1<<16, semispace.WithExpansion(3))
	p := New(3)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	c.Collect()
	if live := c.Live(); live > 2000 {
		t.Errorf("live after run = %d words; constraint graphs leaked", live)
	}
}

func TestPhaseProfile(t *testing.T) {
	// The live-storage profile of the iterated inference has the sawtooth
	// shape of Figure 2: each iteration's peak collapses at its end.
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<18, semispace.WithExpansion(3))
	perIter := measureOneIteration(t)
	tr := lifetime.NewTracker(h, perIter/8)
	p := New(4)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	prof := lifetime.BuildProfile(tr.Finish(), perIter/8, 6)
	var peak, trough uint64 = 0, ^uint64(0)
	for _, r := range prof.Rows[1:] {
		if r.TotalLive > peak {
			peak = r.TotalLive
		}
		if r.TotalLive < trough {
			trough = r.TotalLive
		}
	}
	if peak < 4*trough {
		t.Errorf("no sawtooth: peak %d vs trough %d", peak, trough)
	}
}

func measureOneIteration(t *testing.T) uint64 {
	t.Helper()
	h := newHeap()
	p := New(1)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	return h.Stats.WordsAllocated
}

func TestDeterministic(t *testing.T) {
	run := func() (uint64, int) {
		h := newHeap()
		p := New(2)
		if err := p.Run(h); err != nil {
			t.Fatal(err)
		}
		return h.Stats.WordsAllocated, p.Unifications
	}
	a1, u1 := run()
	a2, u2 := run()
	if a1 != a2 || u1 != u2 {
		t.Error("inference not deterministic")
	}
}
