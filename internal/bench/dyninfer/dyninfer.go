// Package dyninfer implements a Henglein-style dynamic type inference — the
// actual computation behind the paper's 10dynamic benchmark ("Henglein's
// dynamic type inference [25]" iterated 10 times on its own source).
//
// The analysis walks Scheme expressions, allocates a type variable (a heap
// box) for every subterm and binding, and unifies type terms with a
// union-find whose parent links live in the heap and are updated by
// mutation — so the inference exercises the write barrier and remembered
// sets heavily, with old union-find roots constantly acquiring pointers to
// younger class representatives. Each iteration keeps its whole constraint
// graph live until the iteration ends and then drops it: the mass
// extinction profile of Figure 2 arises from the real algorithm here,
// while internal/bench/dynamicw remains the calibrated substitute used for
// Tables 4–5.
//
// Type terms are heap data:
//
//	tvar:        (box <rank-fixnum>)            an unbound root
//	link:        (box <type>)                   a forwarded class (rank < 0)
//	constructor: (ctor-symbol arg-type ...)     fun, pair, num, bool, sym
package dyninfer

import (
	"fmt"

	"rdgc/internal/heap"
	"rdgc/internal/sexp"
)

// Prog runs the inference Iterations times over the embedded corpus.
type Prog struct {
	Iterations int

	h *heap.Heap

	// Unifications and Conflicts count work for verification: the corpus
	// is written so its types are consistent, so Conflicts must be 0.
	Unifications int
	Conflicts    int
	Vars         int
}

// New creates the benchmark; the paper iterates 10 times.
func New(iterations int) *Prog { return &Prog{Iterations: iterations} }

// Name implements bench.Program.
func (p *Prog) Name() string { return fmt.Sprintf("%ddyninfer", p.Iterations) }

// Description implements bench.Program.
func (p *Prog) Description() string {
	return "Henglein-style dynamic type inference, iterated"
}

// HeapWords implements bench.Program.
func (p *Prog) HeapWords() int { return 1 << 17 }

// Run implements bench.Program.
func (p *Prog) Run(h *heap.Heap) error {
	p.h = h
	p.Unifications, p.Conflicts, p.Vars = 0, 0, 0
	for i := 0; i < p.Iterations; i++ {
		s := h.Scope()
		program := sexp.MustReadAll(h, corpus)
		env := p.emptyEnv()
		cur := h.Dup(program)
		for h.IsPair(cur) {
			env = p.inferTop(h.Car(cur), env)
			h.Set(cur, h.Get(h.Cdr(cur)))
		}
		s.Close() // the iteration's entire constraint graph dies here
		if p.Conflicts > 0 {
			return fmt.Errorf("dyninfer: %d type conflicts in a well-typed corpus", p.Conflicts)
		}
	}
	if p.Unifications == 0 || p.Vars == 0 {
		return fmt.Errorf("dyninfer: no inference happened")
	}
	return nil
}

// Type terms are union-find nodes: every term — variable or constructor —
// is a heap box. A box holding a fixnum is an unbound variable (the fixnum
// is its rank); a box holding a pair is a constructor root (the pair is
// the (ctor-symbol arg-box ...) list); a box holding another box is a link.
// Making constructors nodes too is what lets unification handle the
// recursive types that occur-check-free inference builds (Huet's
// algorithm): two constructor classes are unioned *before* their children
// unify, so revisiting the same pair terminates at Eq.

func (p *Prog) freshVar() heap.Ref {
	p.Vars++
	s := p.h.Scope()
	return s.Return(p.h.Box(p.h.Fix(0)))
}

func (p *Prog) ctor(name string, args ...heap.Ref) heap.Ref {
	s := p.h.Scope()
	elems := append([]heap.Ref{p.h.Intern(name)}, args...)
	lst := p.h.List(elems...)
	return s.Return(p.h.Box(lst))
}

func (p *Prog) isBox(t heap.Ref) bool {
	w := p.h.Get(t)
	return heap.IsPtr(w) && heap.HeaderType(p.h.Header(w)) == heap.TBox
}

// find follows links to the class representative, with path compression —
// mutation that hammers the write barrier.
func (p *Prog) find(t heap.Ref) heap.Ref {
	h := p.h
	s := h.Scope()
	cur := h.Dup(t)
	for {
		inner := h.Unbox(cur)
		if !p.isBox(inner) {
			break // fixnum rank (variable) or pair (constructor): a root
		}
		if inner2 := h.Unbox(inner); p.isBox(inner2) {
			h.SetBox(cur, inner2) // compress one hop
		}
		h.Set(cur, h.Get(inner))
	}
	return s.Return(cur)
}

// payload returns the representative's contents: a fixnum (variable rank)
// or a pair (constructor list).
func (p *Prog) payload(rep heap.Ref) heap.Ref { return p.h.Unbox(rep) }

// unify merges two type terms, returning false on a constructor clash.
func (p *Prog) unify(a, b heap.Ref) bool {
	h := p.h
	p.Unifications++
	s := h.Scope()
	defer s.Close()
	ra, rb := p.find(a), p.find(b)
	if h.Eq(ra, rb) {
		return true
	}
	pa, pb := p.payload(ra), p.payload(rb)
	aVar, bVar := h.IsFix(pa), h.IsFix(pb)
	switch {
	case aVar && bVar:
		// Union by rank.
		rka, rkb := h.FixVal(pa), h.FixVal(pb)
		if rka < rkb {
			ra, rb = rb, ra
		} else if rka == rkb {
			h.SetBox(ra, h.Fix(rka+1))
		}
		h.SetBox(rb, ra)
		return true
	case aVar:
		h.SetBox(ra, rb)
		return true
	case bVar:
		h.SetBox(rb, ra)
		return true
	default:
		// Two constructors: union the classes first so recursive types
		// terminate, then check names and unify the children.
		ca, cb := h.Car(pa), h.Car(pb)
		if !h.Eq(ca, cb) {
			p.Conflicts++
			return false
		}
		h.SetBox(ra, rb)
		wa, wb := h.Cdr(pa), h.Cdr(pb)
		for h.IsPair(wa) && h.IsPair(wb) {
			if !p.unify(h.Car(wa), h.Car(wb)) {
				return false
			}
			h.Set(wa, h.Get(h.Cdr(wa)))
			h.Set(wb, h.Get(h.Cdr(wb)))
		}
		if !h.IsNull(wa) || !h.IsNull(wb) {
			p.Conflicts++
			return false
		}
		return true
	}
}

// Environments are association lists (symbol . type) on the heap.

func (p *Prog) emptyEnv() heap.Ref { return p.h.Null() }

func (p *Prog) bind(env, name, typ heap.Ref) heap.Ref {
	s := p.h.Scope()
	return s.Return(p.h.Cons(p.h.Cons(name, typ), env))
}

func (p *Prog) lookup(env, name heap.Ref) (heap.Ref, bool) {
	h := p.h
	s := h.Scope()
	cur := h.Dup(env)
	for h.IsPair(cur) {
		pair := h.Car(cur)
		if h.Eq(h.Car(pair), name) {
			w := h.Get(h.Cdr(pair))
			s.Close()
			return h.RefOf(w), true
		}
		h.Set(cur, h.Get(h.Cdr(cur)))
	}
	s.Close()
	return heap.InvalidRef, false
}

// inferTop processes one toplevel form, extending the global environment
// for (define name expr).
func (p *Prog) inferTop(form, env heap.Ref) heap.Ref {
	h := p.h
	s := h.Scope()
	if h.IsPair(form) && h.Eq(h.Car(form), h.Intern("define")) {
		name := h.Car(h.Cdr(form))
		tv := p.freshVar()
		env2 := p.bind(env, name, tv) // bound first: definitions may recurse
		t := p.infer(h.Car(h.Cdr(h.Cdr(form))), env2)
		p.unify(tv, t)
		return s.Return(env2)
	}
	p.infer(form, env)
	return s.Return(env)
}

// infer computes (and constrains) the type of expr under env.
func (p *Prog) infer(expr, env heap.Ref) heap.Ref {
	h := p.h
	s := h.Scope()
	switch {
	case h.IsFix(expr):
		return s.Return(p.ctor("num"))
	case h.IsSymbol(expr):
		if t, ok := p.lookup(env, expr); ok {
			return s.Return(t)
		}
		// Free identifiers get fresh types, as in a dynamic analysis.
		return s.Return(p.freshVar())
	case !h.IsPair(expr):
		return s.Return(p.freshVar())
	}

	op := h.Car(expr)
	switch {
	case h.Eq(op, h.Intern("quote")):
		return s.Return(p.quotedType(h.Car(h.Cdr(expr))))
	case h.Eq(op, h.Intern("lambda")):
		params := h.Car(h.Cdr(expr))
		body := h.Car(h.Cdr(h.Cdr(expr)))
		env2 := h.Dup(env)
		var ptypes []heap.Ref
		cur := h.Dup(params)
		for h.IsPair(cur) {
			tv := p.freshVar()
			env2 = p.bind(env2, h.Car(cur), tv)
			ptypes = append(ptypes, tv)
			h.Set(cur, h.Get(h.Cdr(cur)))
		}
		ret := p.infer(body, env2)
		args := append(ptypes, ret)
		return s.Return(p.ctor("fun", args...))
	case h.Eq(op, h.Intern("if")):
		c := p.infer(h.Car(h.Cdr(expr)), env)
		p.unify(c, p.ctor("bool"))
		t1 := p.infer(h.Car(h.Cdr(h.Cdr(expr))), env)
		t2 := p.infer(h.Car(h.Cdr(h.Cdr(h.Cdr(expr)))), env)
		p.unify(t1, t2)
		return s.Return(t1)
	case h.Eq(op, h.Intern("let")):
		// (let ((x e) ...) body)
		env2 := h.Dup(env)
		cur := h.Dup(h.Car(h.Cdr(expr)))
		for h.IsPair(cur) {
			binding := h.Car(cur)
			t := p.infer(h.Car(h.Cdr(binding)), env)
			env2 = p.bind(env2, h.Car(binding), t)
			h.Set(cur, h.Get(h.Cdr(cur)))
		}
		return s.Return(p.infer(h.Car(h.Cdr(h.Cdr(expr))), env2))
	case h.Eq(op, h.Intern("cons")):
		a := p.infer(h.Car(h.Cdr(expr)), env)
		d := p.infer(h.Car(h.Cdr(h.Cdr(expr))), env)
		return s.Return(p.ctor("pair", a, d))
	case h.Eq(op, h.Intern("car")), h.Eq(op, h.Intern("cdr")):
		t := p.infer(h.Car(h.Cdr(expr)), env)
		a, d := p.freshVar(), p.freshVar()
		p.unify(t, p.ctor("pair", a, d))
		if h.Eq(op, h.Intern("car")) {
			return s.Return(a)
		}
		return s.Return(d)
	case h.Eq(op, h.Intern("+")), h.Eq(op, h.Intern("-")), h.Eq(op, h.Intern("*")):
		a := p.infer(h.Car(h.Cdr(expr)), env)
		b := p.infer(h.Car(h.Cdr(h.Cdr(expr))), env)
		num := p.ctor("num")
		p.unify(a, num)
		p.unify(b, num)
		return s.Return(num)
	case h.Eq(op, h.Intern("null?")), h.Eq(op, h.Intern("zero?")), h.Eq(op, h.Intern("<")):
		for cur := h.Cdr(expr); h.IsPair(cur); cur = h.Cdr(cur) {
			p.infer(h.Car(cur), env)
		}
		return s.Return(p.ctor("bool"))
	default:
		// Application: (f a1 ... an) constrains f : (fun t1 ... tn r).
		f := p.infer(op, env)
		var args []heap.Ref
		cur := h.Dup(h.Cdr(expr))
		for h.IsPair(cur) {
			args = append(args, p.infer(h.Car(cur), env))
			h.Set(cur, h.Get(h.Cdr(cur)))
		}
		ret := p.freshVar()
		p.unify(f, p.ctor("fun", append(args, ret)...))
		return s.Return(ret)
	}
}

// quotedType types quoted data structurally.
func (p *Prog) quotedType(datum heap.Ref) heap.Ref {
	h := p.h
	s := h.Scope()
	switch {
	case h.IsFix(datum):
		return s.Return(p.ctor("num"))
	case h.IsSymbol(datum):
		return s.Return(p.ctor("sym"))
	case h.IsPair(datum):
		a := p.quotedType(h.Car(datum))
		d := p.quotedType(h.Cdr(datum))
		return s.Return(p.ctor("pair", a, d))
	default:
		return s.Return(p.freshVar())
	}
}
