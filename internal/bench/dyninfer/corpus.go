package dyninfer

// The analyzed corpus. The paper's 10dynamic analyzes the inference's own
// source; this corpus is a small, deliberately *monomorphic* library (the
// unifier has no let-polymorphism, so each function is used at one type)
// with enough recursion, higher-order structure, and quoted data to build
// substantial constraint graphs.
const corpus = `
(define length1
  (lambda (l)
    (if (null? l) 0 (+ 1 (length1 (cdr l))))))

(define sum
  (lambda (l)
    (if (null? l) 0 (+ (car l) (sum (cdr l))))))

(define build
  (lambda (n)
    (if (zero? n) (quote ()) (cons n (build (- n 1))))))

(define addall
  (lambda (n l)
    (if (null? l) l (cons (+ n (car l)) (addall n (cdr l))))))

(define fib
  (lambda (n)
    (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))

(define compose-num
  (lambda (f g)
    (lambda (x) (f (g x)))))

(define twice
  (lambda (x) (* x 2)))

(define inc
  (lambda (x) (+ x 1)))

(define pipeline (compose-num twice inc))

(define zip-sums
  (lambda (xs ys)
    (if (null? xs)
        (quote ())
        (cons (+ (car xs) (car ys)) (zip-sums (cdr xs) (cdr ys))))))

(define averages
  (lambda (l n)
    (let ((total (sum l)) (count n))
      (+ total count))))

(define run
  (lambda (n)
    (let ((data (build n)))
      (+ (sum (addall 3 data))
         (+ (averages data n)
            (+ (pipeline n)
               (+ (fib 9)
                  (+ (length1 (zip-sums data data)) 0))))))))

(run 24)
(run 25)

(define table
  (quote ((alpha 1 2 3)
          (beta 4 5 6 (gamma 7 8))
          (delta (epsilon 9) 10)
          (zeta 11 12 13 14 15))))

(define nested
  (quote (a (b (c (d (e (f (g (h (i (j 1)))))))))
          (k (l (m (n (o 2)))))
          (p (q (r 3))))))
`
