// Package dynamicw implements the 10dynamic workload of Table 2: an
// iterated phase computation whose storage profile is the paper's hardest
// case for generational collection (Figure 2, Tables 4 and 5).
//
// The original benchmark is Henglein's dynamic type inference run 10 times
// over its own source. Only its storage behaviour matters to the paper's
// experiments: within a phase almost everything allocated survives until
// the phase's end (Table 4: 91–99% per 100,000 bytes of allocation), and
// the end of each phase is a mass extinction that kills young and old
// objects alike, so over the full run the *oldest* objects have the lowest
// survival rates (Table 5: 59%/23%/1%) — the inversion of the strong
// generational hypothesis. This substitute reproduces that behaviour
// directly: each phase grows a large structure with a small churn of
// short-lived temporaries and a trickle of random attrition, then drops the
// whole structure. DESIGN.md records the substitution.
package dynamicw

import (
	"fmt"
	"math/rand"

	"rdgc/internal/heap"
)

// Prog is the workload.
type Prog struct {
	Phases     int // 1 reproduces "dynamic" (Figure 2); 10 is "10dynamic"
	PhaseWords int // allocation per phase, in words
	Seed       int64

	// SurviveProb is the probability an allocation joins the phase-long
	// structure rather than being a short-lived temporary chain.
	SurviveProb float64
	// AttritionPerKW is the expected number of structure slots dropped per
	// 1000 allocated words, young and old alike, producing the
	// slightly-under-100% epoch survival of Table 4.
	AttritionPerKW float64

	// Checksum is a deterministic digest of the structures built, set by
	// Run, so tests can pin behaviour.
	Checksum uint64
}

// New creates the workload with the paper-shaped defaults: phases of about
// 1.8 megabytes of allocation peaking around 1.1 megabytes live.
func New(phases int) *Prog {
	return &Prog{
		Phases:         phases,
		PhaseWords:     225000, // 1.8 MB at 8 bytes/word
		Seed:           1,
		SurviveProb:    0.72,
		AttritionPerKW: 18,
	}
}

// Name implements bench.Program.
func (p *Prog) Name() string {
	if p.Phases == 1 {
		return "dynamic"
	}
	return fmt.Sprintf("%ddynamic", p.Phases)
}

// Description implements bench.Program.
func (p *Prog) Description() string {
	return "iterated phase computation with mass extinctions (10dynamic substitute)"
}

// HeapWords implements bench.Program.
func (p *Prog) HeapWords() int { return p.PhaseWords }

// Run implements bench.Program.
func (p *Prog) Run(h *heap.Heap) error {
	rng := rand.New(rand.NewSource(p.Seed))
	p.Checksum = 0
	for phase := 0; phase < p.Phases; phase++ {
		if err := p.runPhase(h, rng, phase); err != nil {
			return err
		}
	}
	if p.Checksum == 0 {
		return fmt.Errorf("dynamicw: empty checksum")
	}
	return nil
}

func (p *Prog) runPhase(h *heap.Heap, rng *rand.Rand, phase int) error {
	s := h.Scope()
	defer s.Close() // the mass extinction: everything the phase built dies

	// The phase structure: a table of slots, each holding a small record
	// chain. It grows for most of the phase, as in Figure 2's ramps.
	maxSlots := p.PhaseWords / 12
	table := h.MakeVector(maxSlots, h.Null())
	occupied := make([]int32, 0, maxSlots)
	next := 0

	start := h.Now()
	quota := uint64(p.PhaseWords)
	var sum uint64
	for h.Now()-start < quota {
		if rng.Float64() < p.SurviveProb && next < maxSlots {
			// A record that survives to the end of the phase: a pair chain
			// of 2 nodes plus its table slot.
			s2 := h.Scope()
			rec := h.Cons(h.Fix(int64(phase)), h.Cons(h.Fix(int64(next)), h.Null()))
			h.VectorSet(table, next, rec)
			s2.Close()
			occupied = append(occupied, int32(next))
			next++
		} else {
			// Short-lived temporaries: a chain that dies immediately.
			s2 := h.Scope()
			t := h.Null()
			for i := 0; i < 3; i++ {
				t = h.Cons(h.Fix(int64(i)), t)
			}
			s2.Close()
		}
		// Attrition: occasionally kill a random occupied slot, young or
		// old. An iteration allocates about 9 words, so the per-iteration
		// probability is AttritionPerKW * 9/1000.
		if len(occupied) > 0 && rng.Float64() < p.AttritionPerKW*9/1000 {
			k := rng.Intn(len(occupied))
			h.VectorSet(table, int(occupied[k]), h.Null())
			occupied[k] = occupied[len(occupied)-1]
			occupied = occupied[:len(occupied)-1]
		}
	}

	// Verify the survivors and fold them into the checksum.
	for _, slot := range occupied {
		s2 := h.Scope()
		rec := h.VectorRef(table, int(slot))
		if !h.IsPair(rec) {
			return fmt.Errorf("dynamicw: slot %d lost its record", slot)
		}
		if got := h.FixVal(h.Car(rec)); got != int64(phase) {
			return fmt.Errorf("dynamicw: slot %d corrupted: phase %d", slot, got)
		}
		sum = sum*31 + uint64(h.FixVal(h.Car(h.Cdr(rec))))
		s2.Close()
	}
	p.Checksum = p.Checksum*1099511628211 + sum
	return nil
}
