package dynamicw

import (
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
	"rdgc/internal/lifetime"
)

func small(phases int) *Prog {
	p := New(phases)
	p.PhaseWords = 30000
	return p
}

func TestRunCompletes(t *testing.T) {
	h := heap.New()
	semispace.New(h, 1<<16, semispace.WithExpansion(3))
	p := small(2)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	if p.Checksum == 0 {
		t.Error("no checksum")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		h := heap.New()
		semispace.New(h, 1<<16, semispace.WithExpansion(3))
		p := small(2)
		if err := p.Run(h); err != nil {
			t.Fatal(err)
		}
		return p.Checksum, h.Stats.WordsAllocated
	}
	c1, a1 := run()
	c2, a2 := run()
	if c1 != c2 || a1 != a2 {
		t.Error("two identical runs diverged")
	}
}

func TestMassExtinction(t *testing.T) {
	// After Run returns, everything the phases built must be garbage.
	h := heap.New(heap.WithCensus())
	c := semispace.New(h, 1<<16, semispace.WithExpansion(3))
	p := small(1)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	c.Collect()
	if live := c.Live(); live > 100 {
		t.Errorf("live after run = %d words, want ~0 (mass extinction)", live)
	}
}

func TestPhaseSurvivalIsHigh(t *testing.T) {
	// Within a phase, Table 4 says survival per epoch is 91-99%. Check the
	// age classes our attrition model controls stay in (and near) that band.
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<18, semispace.WithExpansion(3))
	p := New(1)            // full-size single phase, as in Figure 2 / Table 4
	epoch := uint64(12500) // 100,000 bytes
	tr := lifetime.NewTracker(h, epoch)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	rows := lifetime.SurvivalTable(tr.Snapshots(), epoch, 9)
	checked := 0
	for _, r := range rows[1:9] { // skip youngest (mixed) and open-ended rows
		if r.Live < 5000 {
			continue
		}
		checked++
		if rate := r.Rate(); rate < 0.88 {
			t.Errorf("%s: rate %.2f below Table 4's band", r.String(), rate)
		}
	}
	if checked < 4 {
		t.Errorf("only %d age classes had enough data", checked)
	}
}

func TestIteratedSurvivalDecreasesWithAge(t *testing.T) {
	// Table 5: over the full iterated run (500,000-byte epochs), the
	// oldest objects have the lowest survival rates.
	h := heap.New(heap.WithCensus())
	semispace.New(h, 1<<18, semispace.WithExpansion(3))
	p := New(10)
	epoch := uint64(62500) // 500,000 bytes
	tr := lifetime.NewTracker(h, epoch)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	rows := lifetime.SurvivalTable(tr.Snapshots(), epoch, 4)
	// The old must survive worse than the young — the inversion of the
	// strong generational hypothesis (paper: 59%, 23%, 1%).
	young, old := rows[0], rows[2]
	if young.Live == 0 || old.Live == 0 {
		t.Fatal("not enough data in survival table")
	}
	if !(old.Rate() < young.Rate()-0.1) {
		t.Errorf("old survival %.2f not clearly below young %.2f",
			old.Rate(), young.Rate())
	}
	// Nothing outlives a phase by much: the oldest class is a wipeout.
	oldest := rows[3]
	if oldest.Live > 0 && oldest.Rate() > 0.1 {
		t.Errorf("oldest class survives at %.2f, want near 0 (mass extinction)", oldest.Rate())
	}
}
