// Package nucleic implements the nucleic2 benchmark of Table 2: the
// determination of a nucleic acid's spatial structure by constraint-driven
// backtracking search over candidate conformations. The paper traces its
// GC cost to the same cause as nbody's — every floating-point value is a
// 16-byte boxed flonum — with a somewhat higher survival rate because
// partial placements persist across search branches.
//
// This reproduction keeps the search's shape — a domain of precomputed
// rigid-body transformations per residue, backtracking placement with a
// distance-constraint pruning test, boxed-flonum geometry throughout — over
// synthetic conformation tables instead of the RNA data. DESIGN.md records
// the substitution.
package nucleic

import (
	"fmt"
	"math"
	"math/rand"

	"rdgc/internal/heap"
)

// Prog is one search configuration.
type Prog struct {
	Residues      int     // placement decisions
	Conformations int     // domain size per residue
	MaxDist       float64 // pruning constraint between consecutive residues
	Seed          int64
	// KeepSolutions bounds the ring of retained complete placements. The
	// real nucleic2 keeps the structures it reports, which is what pushes
	// its peak storage toward a megabyte; retained placements share their
	// path prefixes, like the search tree itself.
	KeepSolutions int

	// Solutions is the number of complete placements found by Run.
	Solutions int
}

// New creates a paper-shaped instance.
func New(residues, conformations int) *Prog {
	return &Prog{Residues: residues, Conformations: conformations, MaxDist: 1.05, Seed: 1, KeepSolutions: 64}
}

// Name implements bench.Program.
func (p *Prog) Name() string { return "nucleic2" }

// Description implements bench.Program.
func (p *Prog) Description() string {
	return "determination of spatial structure by constraint search (boxed flonums)"
}

// HeapWords implements bench.Program.
func (p *Prog) HeapWords() int { return 1 << 16 }

// Run implements bench.Program.
func (p *Prog) Run(h *heap.Heap) error {
	rng := rand.New(rand.NewSource(p.Seed))
	s := h.Scope()
	defer s.Close()

	// The conformation table: per residue, Conformations candidate offset
	// triples as heap flonum vectors. Long-lived, like nucleic2's constant
	// tables of rigid-body transformations.
	domains := h.MakeVector(p.Residues, h.Null())
	for r := 0; r < p.Residues; r++ {
		s2 := h.Scope()
		dom := h.MakeVector(p.Conformations, h.Null())
		for c := 0; c < p.Conformations; c++ {
			v := h.MakeVector(3, h.Flonum(0))
			for k := 0; k < 3; k++ {
				x := (rng.Float64()*2 - 1) * 0.8
				if c == 0 {
					x = 0.3 // one always-feasible conformation per residue
				}
				h.VectorSet(v, k, h.Flonum(x))
			}
			h.VectorSet(dom, c, v)
		}
		h.VectorSet(domains, r, dom)
		s2.Close()
	}

	keep := p.KeepSolutions
	if keep < 1 {
		keep = 1
	}
	solutions := h.MakeVector(keep, h.Null())

	origin := h.MakeVector(3, h.Flonum(0))
	p.Solutions = 0
	p.place(h, domains, solutions, 0, origin, h.Null())
	if p.Solutions == 0 {
		return fmt.Errorf("nucleic: search found no placements")
	}
	return nil
}

// place extends a partial structure by choosing a conformation for residue
// r; every candidate position is fresh boxed-flonum geometry, accepted
// positions stay live down the search branch, and completed placements
// rotate through the retained-solutions ring.
func (p *Prog) place(h *heap.Heap, domains, solutions heap.Ref, r int, prev, path heap.Ref) {
	if r == p.Residues {
		// Retain a sample of the reported structures: every eighth, as the
		// real program keeps only the best-scoring placements.
		if p.Solutions%8 == 0 {
			s := h.Scope()
			h.VectorSet(solutions, (p.Solutions/8)%h.VectorLen(solutions), path)
			s.Close()
		}
		p.Solutions++
		return
	}
	s := h.Scope()
	defer s.Close()
	dom := h.VectorRef(domains, r)
	for c := 0; c < p.Conformations; c++ {
		s2 := h.Scope()
		off := h.VectorRef(dom, c)
		nextPos := h.MakeVector(3, h.Flonum(0))
		var d2 float64
		for k := 0; k < 3; k++ {
			// pos = prev + off, one boxed flonum per component plus the
			// squared-distance temporaries.
			pk := h.Flonum(h.FlonumVal(h.VectorRef(prev, k)) + h.FlonumVal(h.VectorRef(off, k)))
			h.VectorSet(nextPos, k, pk)
			diff := h.Flonum(h.FlonumVal(pk) - h.FlonumVal(h.VectorRef(prev, k)))
			sq := h.Flonum(h.FlonumVal(diff) * h.FlonumVal(diff))
			d2 += h.FlonumVal(sq)
		}
		if math.Sqrt(d2) <= p.MaxDist {
			p.place(h, domains, solutions, r+1, nextPos, h.Cons(nextPos, path))
		}
		s2.Close()
	}
}
