package nucleic

import (
	"testing"

	"rdgc/internal/gc/semispace"
	"rdgc/internal/heap"
)

func TestRunFindsSolutions(t *testing.T) {
	h := heap.New()
	semispace.New(h, 1<<16)
	p := New(10, 2)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	if p.Solutions < 1 {
		t.Error("no solutions")
	}
}

func TestAlwaysFeasibleBaseline(t *testing.T) {
	// The c=0 conformation is always accepted, so even a domain of size 1
	// yields exactly one solution.
	h := heap.New()
	semispace.New(h, 1<<16)
	p := New(8, 1)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
	if p.Solutions != 1 {
		t.Errorf("solutions = %d, want 1", p.Solutions)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (int, uint64) {
		h := heap.New()
		semispace.New(h, 1<<16)
		p := New(10, 2)
		if err := p.Run(h); err != nil {
			t.Fatal(err)
		}
		return p.Solutions, h.Stats.WordsAllocated
	}
	s1, a1 := run()
	s2, a2 := run()
	if s1 != s2 || a1 != a2 {
		t.Error("nucleic not deterministic")
	}
}

func TestSmallHeapPressure(t *testing.T) {
	h := heap.New()
	semispace.New(h, 4096)
	p := New(8, 2)
	if err := p.Run(h); err != nil {
		t.Fatal(err)
	}
}
