package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"rdgc/internal/heap"
)

// writeEvents appends n simple events and closes the trace.
func writeEvents(t *testing.T, w *Writer, n int) {
	t.Helper()
	var words, objects uint64
	for i := 0; i < n; i++ {
		var ev Event
		if i%3 == 0 {
			ev = Event{Kind: KindAlloc, Type: heap.TPair, Size: 2}
			words += 3
			objects++
		} else {
			ev = Event{Kind: KindStore, Obj: uint64(i / 3), Slot: i % 2, Val: Imm(heap.Word(i))}
		}
		if err := w.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(Trailer{WordsAllocated: words, ObjectsAllocated: objects, Events: uint64(n)}); err != nil {
		t.Fatal(err)
	}
}

// TestV1TracesStillRead pins backward compatibility: a version-1 trace
// (bare length framing, no compression flag) must decode under the
// version-2 reader with identical events.
func TestV1TracesStillRead(t *testing.T) {
	hdr := Header{Meta: []MetaEntry{{Key: "workload", Value: "v1-compat"}}}
	var v1, v2 bytes.Buffer
	w1, err := newWriterVersion(&v1, hdr, 1)
	if err != nil {
		t.Fatal(err)
	}
	writeEvents(t, w1, 5000)
	w2, err := NewWriter(&v2, hdr)
	if err != nil {
		t.Fatal(err)
	}
	writeEvents(t, w2, 5000)

	readAll := func(raw []byte) (uint64, []Event, Trailer) {
		rd, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var evs []Event
		var ev Event
		for {
			err := rd.Next(&ev)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			evs = append(evs, ev)
		}
		return rd.Version(), evs, rd.Trailer()
	}
	ver1, evs1, tr1 := readAll(v1.Bytes())
	ver2, evs2, tr2 := readAll(v2.Bytes())
	if ver1 != 1 || ver2 != FormatVersion {
		t.Fatalf("versions: v1 trace read as %d, v2 as %d", ver1, ver2)
	}
	if len(evs1) != len(evs2) || tr1 != tr2 {
		t.Fatalf("v1 decode diverged: %d/%d events, trailers %+v %+v", len(evs1), len(evs2), tr1, tr2)
	}
	for i := range evs1 {
		if evs1[i] != evs2[i] {
			t.Fatalf("event %d: v1 %v, v2 %v", i, &evs1[i], &evs2[i])
		}
	}
}

// TestV1FeatureGates pins that version 1 cleanly rejects the features
// that postdate it, and that readers reject unknown future versions.
func TestV1FeatureGates(t *testing.T) {
	var buf bytes.Buffer
	if _, err := newWriterVersion(&buf, Header{}, 1, WithCompression()); !errors.Is(err, ErrVersion) {
		t.Fatalf("v1 + compression: got %v, want ErrVersion", err)
	}

	buf.Reset()
	w, err := newWriterVersion(&buf, Header{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{Kind: KindSession, Size: 3}
	if err := w.Append(&ev); !errors.Is(err, ErrInvalid) {
		t.Fatalf("v1 + session event: got %v, want ErrInvalid", err)
	}

	future := append([]byte{}, magic[:]...)
	future = binary.AppendUvarint(future, FormatVersion+1)
	if _, err := NewReader(bytes.NewReader(future)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
}

// TestMixedCompressedBlocks reads a trace whose blocks alternate between
// compressed and raw — legal on the wire since the flag is per block, and
// what a compressing writer naturally produces when some blocks don't
// shrink. The writer's compress toggle is flipped mid-stream to force a
// deterministic mix.
func TestMixedCompressedBlocks(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{}, WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	var want []Event
	append1 := func(ev Event) {
		if err := w.Append(&ev); err != nil {
			t.Fatal(err)
		}
		want = append(want, ev)
	}
	var words, objects uint64
	for seg := 0; seg < 6; seg++ {
		w.compress = seg%2 == 0 // internal toggle: even segments compress, odd store raw
		for i := 0; i < 9000; i++ {
			if i%3 == 0 {
				append1(Event{Kind: KindAlloc, Type: heap.TVector, Size: 4, Obj: objects})
				words += 5
				objects++
			} else {
				append1(Event{Kind: KindFill, Obj: objects - 1, Val: Imm(heap.Word(i))})
			}
		}
		if err := w.flushBlock(); err != nil { // seal the segment so the toggle lands on a block boundary
			t.Fatal(err)
		}
	}
	if err := w.Close(Trailer{WordsAllocated: words, ObjectsAllocated: objects, Events: uint64(len(want))}); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	for i := range want {
		if err := rd.Next(&ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev != want[i] {
			t.Fatalf("event %d: got %v, want %v", i, &ev, &want[i])
		}
	}
	if err := rd.Next(&ev); !errors.Is(err, io.EOF) {
		t.Fatalf("after last event: got %v, want EOF", err)
	}
	if rd.StoredBytes() >= rd.RawBytes() || rd.StoredBytes() == 0 {
		t.Fatalf("mixed stream: stored %d vs raw %d, want a partial reduction", rd.StoredBytes(), rd.RawBytes())
	}
}

// TestLZRoundTrip exercises the block codec directly across data shapes:
// highly repetitive, purely random, overlapping runs, and tiny inputs.
func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tab lzTable
	cases := [][]byte{
		{},
		{0x42},
		[]byte("abcabcabcabcabcabcabcabc"),
		bytes.Repeat([]byte{7}, 100000), // long overlapping run (offset 1)
		make([]byte, blockTarget),
	}
	random := make([]byte, blockTarget)
	rng.Read(random)
	cases = append(cases, random)
	mixed := append(bytes.Repeat([]byte("trace"), 2000), random[:4096]...)
	cases = append(cases, mixed)
	for i, src := range cases {
		comp := lzAppend(nil, src, &tab)
		got := make([]byte, len(src))
		if !lzDecode(got, comp) {
			t.Fatalf("case %d: decode failed for %d-byte input", i, len(src))
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: round trip mangled %d-byte input", i, len(src))
		}
	}
}

// TestLZDecodeNeverPanics feeds the decoder random garbage and random
// truncations of valid streams: it must return false (or a correct
// decode), never panic or write out of bounds.
func TestLZDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var tab lzTable
	src := bytes.Repeat([]byte("abcdefgh12345678"), 512)
	comp := lzAppend(nil, src, &tab)
	dst := make([]byte, len(src))
	for n := 0; n < len(comp); n++ {
		lzDecode(dst, comp[:n]) // result irrelevant; must not panic
	}
	garbage := make([]byte, 4096)
	for trial := 0; trial < 200; trial++ {
		rng.Read(garbage)
		lzDecode(dst, garbage)
	}
}
