package trace

import (
	"fmt"
	"io"
	"math/bits"
	"strings"

	"rdgc/internal/heap"
)

// TypeStat aggregates the allocations of one object type.
type TypeStat struct {
	Count uint64
	Words uint64 // payload words, excluding headers and census stamps
}

// Summary is the aggregate view of one trace, as produced by Stat and
// printed by cmd/gctrace stat.
type Summary struct {
	Header  Header
	Trailer Trailer

	// ByKind counts events per kind (index by Kind).
	ByKind [kindMax + 1]uint64
	// ByType aggregates allocations per object type.
	ByType [heap.TFree]TypeStat
	// SizeHist buckets allocations by payload words: bucket i counts
	// payloads with bits.Len64(size) == i, i.e. [2^(i-1), 2^i).
	SizeHist []uint64
	// LifetimeHist buckets objects by words allocated between their birth
	// and the last event that references them — an upper bound on actual
	// lifetime that needs no collector, in the same words-clock the
	// lifetime censuses use (census stamps included when the trace
	// recorded a census heap).
	LifetimeHist []uint64
	// Collections and FullCollections count mutator-requested boundaries.
	Collections     uint64
	FullCollections uint64
	// Sessions is the number of distinct sessions a synthesized trace
	// carries (highest session marker + 1); zero for recorded traces.
	Sessions uint64
}

// Stat consumes the whole trace and aggregates it.
func Stat(rd *Reader) (*Summary, error) {
	s := &Summary{Header: rd.Header()}
	extra := uint64(0)
	if s.Header.Census {
		extra = 1
	}
	var clock uint64 // words allocated so far, mirroring heap.Stats
	var birth, last []uint64

	touch := func(id uint64) {
		last[id] = clock
	}
	var ev Event
	for {
		err := rd.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		s.ByKind[ev.Kind]++
		switch ev.Kind {
		case KindAlloc:
			size := uint64(ev.Size)
			clock += 1 + size + extra
			s.ByType[ev.Type].Count++
			s.ByType[ev.Type].Words += size
			s.SizeHist = bump(s.SizeHist, size)
			birth = append(birth, clock)
			last = append(last, clock)
		case KindStore, KindFill, KindRaw, KindIntern:
			touch(ev.Obj)
			if ev.Val.IsObj {
				touch(ev.Val.Bits)
			}
		case KindPush, KindSet, KindGlobal:
			if ev.Val.IsObj {
				touch(ev.Val.Bits)
			}
		case KindCollect:
			if ev.Full {
				s.FullCollections++
			} else {
				s.Collections++
			}
		case KindSession:
			if n := uint64(ev.Size) + 1; n > s.Sessions {
				s.Sessions = n
			}
		}
	}
	s.Trailer = rd.Trailer()
	for id := range birth {
		s.LifetimeHist = bump(s.LifetimeHist, last[id]-birth[id])
	}
	return s, nil
}

// bump increments the power-of-two bucket for v, growing hist as needed.
func bump(hist []uint64, v uint64) []uint64 {
	b := bits.Len64(v)
	for len(hist) <= b {
		hist = append(hist, 0)
	}
	hist[b]++
	return hist
}

// Format renders the summary as cmd/gctrace stat prints it.
func (s *Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "census: %v\n", s.Header.Census)
	for _, m := range s.Header.Meta {
		fmt.Fprintf(&b, "meta:   %s = %s\n", m.Key, m.Value)
	}
	fmt.Fprintf(&b, "events: %d   words: %d   objects: %d\n",
		s.Trailer.Events, s.Trailer.WordsAllocated, s.Trailer.ObjectsAllocated)
	fmt.Fprintf(&b, "collections requested: %d (+%d full)\n", s.Collections, s.FullCollections)
	if s.Sessions > 0 {
		fmt.Fprintf(&b, "sessions: %d\n", s.Sessions)
	}

	b.WriteString("events by kind:\n")
	for k := Kind(1); k <= kindMax; k++ {
		if n := s.ByKind[k]; n > 0 {
			fmt.Fprintf(&b, "  %-8s %12d\n", k, n)
		}
	}
	b.WriteString("allocations by type:\n")
	for t, ts := range s.ByType {
		if ts.Count > 0 {
			fmt.Fprintf(&b, "  %-8s %12d objects %12d payload words\n", heap.Type(t), ts.Count, ts.Words)
		}
	}
	writeHist(&b, "allocation size (payload words)", s.SizeHist)
	writeHist(&b, "lifetime upper bound (words to last reference)", s.LifetimeHist)
	return b.String()
}

func writeHist(b *strings.Builder, title string, hist []uint64) {
	fmt.Fprintf(b, "%s:\n", title)
	for i, n := range hist {
		if n == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(0)
		if i > 0 {
			lo, hi = uint64(1)<<(i-1), uint64(1)<<i-1
		}
		fmt.Fprintf(b, "  [%8d, %8d] %12d\n", lo, hi, n)
	}
}
