package trace_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

// corpusDir holds the checked-in trace corpus `make traces` regenerates.
const corpusDir = "testdata/traces"

// corpusEntry is one deterministic corpus trace.
type corpusEntry struct {
	name string
	data []byte
}

// buildCorpus regenerates the corpus from scratch: small deterministic
// mutator workloads (with and without census) plus one gcfuzz byte program
// exported through the same wiring cmd/gcfuzz -emit-trace uses. Everything
// is seeded, so the bytes are reproducible on any machine.
func buildCorpus(t *testing.T) []corpusEntry {
	t.Helper()
	mutator := func(census bool, seed int64) []byte {
		raw, _, _ := recordMutator(t, gcfuzz.Collectors()[0].New, census, seed, 400)
		return raw
	}

	// A fixed byte program through the fuzz harness's RunWith hook — the
	// same wiring cmd/gcfuzz -emit-trace (and -compress) uses.
	fuzzProg := func(wopts ...trace.WriterOption) []byte {
		prog := make([]byte, 300)
		for i := range prog {
			prog[i] = byte(i*7 + 3)
		}
		var buf bytes.Buffer
		var rec *trace.Recorder
		_, err := gcfuzz.RunWith(prog, gcfuzz.Collectors()[0].New, false,
			func(h *heap.Heap, c heap.Collector) heap.Collector {
				w, werr := trace.NewWriter(&buf, trace.Header{Meta: []trace.MetaEntry{
					{Key: "workload", Value: "gcfuzz:corpus"},
					{Key: "sizing", Value: "gcfuzz"},
				}}, wopts...)
				if werr != nil {
					t.Fatal(werr)
				}
				if rec, werr = trace.NewRecorder(h, w); werr != nil {
					t.Fatal(werr)
				}
				return rec.Collector(c)
			})
		if err != nil {
			t.Fatalf("corpus gcfuzz program failed: %v", err)
		}
		if err := rec.Finish(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	gcfuzzRaw := fuzzProg()

	// A compressed interleave of two plain sessions, so the checked-in
	// corpus pins the synthesized format (session markers, salted symbols,
	// compressed blocks) and the replay tests below cover it everywhere.
	s1, prog := mutator(false, 1), gcfuzzRaw
	var synthBuf bytes.Buffer
	in1, err := trace.NewReader(bytes.NewReader(s1))
	if err != nil {
		t.Fatal(err)
	}
	in2, err := trace.NewReader(bytes.NewReader(prog))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Interleave(&synthBuf, []*trace.Reader{in1, in2},
		trace.SynthOptions{Compress: true, Seed: 7, Chunk: 32}); err != nil {
		t.Fatalf("corpus interleave failed: %v", err)
	}

	return []corpusEntry{
		{"mutator-s1.trace", s1},
		{"mutator-s2-census.trace", mutator(true, 2)},
		{"gcfuzz-prog.trace", gcfuzzRaw},
		{"gcfuzz-prog-z.trace", fuzzProg(trace.WithCompression())},
		{"synth-interleave-z.trace", synthBuf.Bytes()},
	}
}

// TestTraceCorpus drift-guards the checked-in corpus: the traces under
// testdata/traces must equal what this source tree records today. A
// mismatch means the trace format or the event stream changed — either
// bump FormatVersion and regenerate, or fix the regression. Regenerate
// with `make traces` (RDGC_WRITE_TRACES=1).
func TestTraceCorpus(t *testing.T) {
	write := os.Getenv("RDGC_WRITE_TRACES") == "1"
	if write {
		if err := os.MkdirAll(corpusDir, 0o777); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range buildCorpus(t) {
		path := filepath.Join(corpusDir, e.name)
		if write {
			if err := os.WriteFile(path, e.data, 0o666); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, len(e.data))
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (set RDGC_WRITE_TRACES=1 to regenerate)", err)
		}
		if !bytes.Equal(got, e.data) {
			t.Errorf("%s drifted from this tree's recording: %d bytes on disk, %d regenerated (set RDGC_WRITE_TRACES=1 to regenerate)",
				path, len(got), len(e.data))
		}
	}
}

// TestCorpusReplaysEverywhere replays every checked-in corpus trace under
// all seven collectors with the deep verifier on — so the corpus also
// pins replay compatibility, not just codec bytes.
func TestCorpusReplaysEverywhere(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus traces in %s (run `make traces`)", corpusDir)
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, nc := range gcfuzz.Collectors() {
			t.Run(fmt.Sprintf("%s/%s", filepath.Base(path), nc.Name), func(t *testing.T) {
				rd, err := trace.NewReader(bytes.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				var opts []heap.Option
				if rd.Header().Census {
					opts = append(opts, heap.WithCensus())
				}
				h := heap.New(opts...)
				c := nc.New(h)
				if _, err := trace.Replay(rd, h, c, trace.ReplayOptions{Verify: true}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
