package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Writer streams events into the trace format. It buffers at most one
// block (~32 KiB), never the whole trace. The caller must Close with the
// final trailer; a trace without a trailer reads back as truncated.
type Writer struct {
	w        io.Writer
	hdr      Header
	version  uint64
	compress bool
	buf      []byte   // current block's payload, sealed at blockTarget
	cbuf     []byte   // scratch for the compressed form of a block
	lz       *lzTable // match table, allocated when compression is on
	frame    []byte   // scratch for framing (length + crc) and the preamble
	nextID   uint64   // ID the next KindAlloc event will receive
	events   uint64
	closed   bool
	err      error // sticky first error
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithCompression makes the writer LZ-compress each block, keeping the
// compressed form only when it is actually smaller — incompressible
// blocks are stored raw, so a trace may freely mix both. Readers need no
// option; the per-block flag tells them which form each block took.
func WithCompression() WriterOption {
	return func(w *Writer) { w.compress = true }
}

// NewWriter writes the trace preamble (magic, version, header block) to w
// and returns a streaming event writer. It does not close w.
func NewWriter(w io.Writer, hdr Header, opts ...WriterOption) (*Writer, error) {
	return newWriterVersion(w, hdr, FormatVersion, opts...)
}

// newWriterVersion is NewWriter with the format version exposed, so tests
// can emit old-version traces and prove readers still accept them.
func newWriterVersion(w io.Writer, hdr Header, version uint64, opts ...WriterOption) (*Writer, error) {
	tw := &Writer{w: w, hdr: hdr, version: version}
	for _, opt := range opts {
		opt(tw)
	}
	if tw.compress {
		if version < 2 {
			return nil, fmt.Errorf("%w: version %d has no compression flag", ErrVersion, version)
		}
		tw.lz = new(lzTable)
	}
	tw.frame = append(tw.frame[:0], magic[:]...)
	tw.frame = binary.AppendUvarint(tw.frame, version)
	if _, err := w.Write(tw.frame); err != nil {
		return nil, err
	}
	var flags uint64
	if hdr.Census {
		flags |= 1
	}
	tw.buf = binary.AppendUvarint(tw.buf, flags)
	tw.buf = binary.AppendUvarint(tw.buf, uint64(len(hdr.Meta)))
	for _, e := range hdr.Meta {
		tw.buf = appendString(tw.buf, e.Key)
		tw.buf = appendString(tw.buf, e.Value)
	}
	if err := tw.flushBlock(); err != nil {
		return nil, err
	}
	return tw, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// flushBlock frames and writes the buffered payload, if any.
func (w *Writer) flushBlock() error {
	if w.err != nil || len(w.buf) == 0 {
		return w.err
	}
	payload, flag := w.buf, uint64(0)
	if w.compress {
		w.cbuf = binary.AppendUvarint(w.cbuf[:0], uint64(len(w.buf)))
		w.cbuf = lzAppend(w.cbuf, w.buf, w.lz)
		if len(w.cbuf) < len(w.buf) {
			payload, flag = w.cbuf, 1
		}
	}
	if w.version >= 2 {
		w.frame = binary.AppendUvarint(w.frame[:0], uint64(len(payload))<<1|flag)
	} else {
		w.frame = binary.AppendUvarint(w.frame[:0], uint64(len(payload)))
	}
	w.frame = binary.LittleEndian.AppendUint32(w.frame, crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(w.frame); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// Events returns the number of events appended so far.
func (w *Writer) Events() uint64 { return w.events }

// Header returns the header the writer opened the trace with.
func (w *Writer) Header() Header { return w.hdr }

// Append encodes one event. For KindAlloc it assigns the object its
// allocation-order ID and stores it in ev.Obj. Events referencing objects
// validate against the IDs allocated so far and fail with ErrInvalid.
func (w *Writer) Append(ev *Event) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		w.err = fmt.Errorf("%w: append after Close", ErrInvalid)
		return w.err
	}
	b := append(w.buf, byte(ev.Kind))
	var err error
	switch ev.Kind {
	case KindAlloc:
		b = append(b, byte(ev.Type))
		b = binary.AppendUvarint(b, uint64(ev.Size))
		ev.Obj = w.nextID
		w.nextID++
	case KindStore:
		if b, err = w.appendObj(b, ev.Obj); err == nil {
			b = binary.AppendUvarint(b, uint64(ev.Slot))
			b, err = w.appendValue(b, ev.Val)
		}
	case KindFill:
		if b, err = w.appendObj(b, ev.Obj); err == nil {
			b, err = w.appendValue(b, ev.Val)
		}
	case KindRaw:
		if b, err = w.appendObj(b, ev.Obj); err == nil {
			b = binary.AppendUvarint(b, uint64(ev.Slot))
			b = binary.LittleEndian.AppendUint64(b, ev.Val.Bits)
		}
	case KindIntern:
		if b, err = w.appendObj(b, ev.Obj); err == nil {
			b = appendString(b, ev.Name)
		}
	case KindPush, KindGlobal:
		b, err = w.appendValue(b, ev.Val)
	case KindPopTo:
		b = binary.AppendUvarint(b, uint64(ev.Size))
	case KindSet:
		b = binary.AppendUvarint(b, zenc(int64(ev.Ref)))
		b, err = w.appendValue(b, ev.Val)
	case KindCollect:
		full := byte(0)
		if ev.Full {
			full = 1
		}
		b = append(b, full)
	case KindSession:
		if w.version < 2 {
			err = fmt.Errorf("%w: version %d has no session events", ErrInvalid, w.version)
		} else if ev.Size < 0 {
			err = fmt.Errorf("%w: negative session index %d", ErrInvalid, ev.Size)
		} else {
			b = binary.AppendUvarint(b, uint64(ev.Size))
		}
	default:
		err = fmt.Errorf("%w: unknown kind %d", ErrInvalid, ev.Kind)
	}
	if err != nil {
		w.err = err
		return err
	}
	w.buf = b
	w.events++
	if len(w.buf) >= blockTarget {
		return w.flushBlock()
	}
	return nil
}

// appendObj delta-encodes a target object ID against the most recently
// allocated object.
func (w *Writer) appendObj(b []byte, id uint64) ([]byte, error) {
	if id >= w.nextID {
		return b, fmt.Errorf("%w: reference to unallocated object #%d", ErrInvalid, id)
	}
	return binary.AppendUvarint(b, w.nextID-1-id), nil
}

func (w *Writer) appendValue(b []byte, v Value) ([]byte, error) {
	if v.IsObj {
		b = append(b, 1)
		return w.appendObj(b, v.Bits)
	}
	b = append(b, 0)
	// Zigzag keeps negative fixnums (sign-extended word bits) short.
	return binary.AppendUvarint(b, zenc(int64(v.Bits))), nil
}

// Close seals the final block and writes the terminator and trailer. The
// trailer's event count must match the number of appended events.
func (w *Writer) Close(tr Trailer) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	if tr.Events != w.events {
		w.err = fmt.Errorf("%w: trailer says %d events, wrote %d", ErrInvalid, tr.Events, w.events)
		return w.err
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	w.closed = true
	w.frame = binary.AppendUvarint(w.frame[:0], 0) // terminator
	body := binary.AppendUvarint(nil, tr.WordsAllocated)
	body = binary.AppendUvarint(body, tr.ObjectsAllocated)
	body = binary.AppendUvarint(body, tr.Events)
	w.frame = append(w.frame, body...)
	w.frame = binary.LittleEndian.AppendUint32(w.frame, crc32.ChecksumIEEE(body))
	if _, err := w.w.Write(w.frame); err != nil {
		w.err = err
		return err
	}
	return nil
}
