// Package trace records and replays mutator workloads: every allocation,
// pointer store, and root operation a program performs against the
// simulated heap is captured as a stream of events in a versioned binary
// format, and can later be replayed — bit-deterministically — against any
// collector in the repository. Recording decouples workload generation
// from collection policy exactly as the paper's trace-driven comparisons
// do: capture a benchmark once, then evaluate every collector on the
// identical event stream.
//
// The wire format is streaming on both sides. A trace is:
//
//	magic "rdgctrc\x00" | uvarint version | header block | event blocks...
//	| uvarint 0 (terminator) | trailer
//
// Every block is framed as uvarint(stored length << 1 | compressed flag)
// + 4-byte little-endian CRC32 (IEEE) of the stored payload + the stored
// payload itself, so truncation and corruption are detected block by
// block without buffering the whole trace. A compressed block's stored
// payload is uvarint(raw length) followed by the LZ-coded raw payload
// (see compress.go); the CRC always covers the bytes on the wire. Format
// version 1 framed blocks as a bare uvarint(payload length) with no
// compression flag; readers still accept it. The header payload carries
// a census flag plus ordered key/value metadata strings; event payloads
// are back-to-back varint-encoded events with object IDs
// delta-compressed against the most recently allocated object. The
// trailer repeats the final mutator statistics and event count (with its
// own CRC), so a replay can prove it reproduced the recorded run — and a
// reader can prove it saw the whole trace.
package trace

import "errors"

// FormatVersion is the trace format this package writes. Readers accept
// minReadVersion through FormatVersion and reject anything else with
// ErrVersion; any change to framing or event encoding must bump it —
// there are no in-version extensions.
//
// Version history:
//
//	1: original framing, uncompressed blocks only
//	2: per-block compression flag in the frame varint; KindSession events
const FormatVersion = 2

// minReadVersion is the oldest format version readers still decode.
const minReadVersion = 1

// magic opens every trace file.
var magic = [8]byte{'r', 'd', 'g', 'c', 't', 'r', 'c', 0}

const (
	// blockTarget is the payload size at which the writer seals a block.
	blockTarget = 32 << 10
	// maxBlock bounds the payload length a reader will believe; a framed
	// length beyond it is corruption, not a request for memory.
	maxBlock = 1 << 24
)

// Sentinel errors. Readers wrap these with context; match with errors.Is.
var (
	// ErrBadMagic means the input is not a trace file at all.
	ErrBadMagic = errors.New("trace: bad magic, not a trace file")
	// ErrVersion means the trace was written by an incompatible format
	// version.
	ErrVersion = errors.New("trace: unsupported format version")
	// ErrCorrupt means framing, checksums, or event encoding are invalid.
	ErrCorrupt = errors.New("trace: corrupt input")
	// ErrTruncated means the input ended before the trailer.
	ErrTruncated = errors.New("trace: truncated input")
	// ErrDrift means a replayed heap did not reproduce the recorded run's
	// mutator statistics or event count.
	ErrDrift = errors.New("trace: replay drifted from the recorded run")
	// ErrInvalid means an event handed to the writer (or applied by the
	// replayer) is inconsistent, e.g. it references an unallocated object.
	ErrInvalid = errors.New("trace: invalid event")
)

// Header is the self-describing preamble of a trace.
type Header struct {
	// Census records whether the heap carried per-object birth stamps;
	// replay heaps must match, since the hidden census word changes
	// allocation sizes and therefore collection timing.
	Census bool
	// Meta is ordered key/value metadata (workload name, heap sizing,
	// recording collector). Order is preserved so identical recordings
	// produce identical bytes.
	Meta []MetaEntry
}

// MetaEntry is one header metadata pair.
type MetaEntry struct{ Key, Value string }

// Lookup returns the value of the first metadata entry with the given key.
func (h *Header) Lookup(key string) (string, bool) {
	for _, e := range h.Meta {
		if e.Key == key {
			return e.Value, true
		}
	}
	return "", false
}

// Trailer carries the recorded run's end state: the mutator statistics and
// the number of events in the trace.
type Trailer struct {
	WordsAllocated   uint64
	ObjectsAllocated uint64
	Events           uint64
}

// zigzag encoding for signed operands (root refs, raw words whose high
// bits are usually sign extension).
func zenc(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func zdec(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
