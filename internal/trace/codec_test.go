package trace_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

// genEvents produces a random but *valid* event sequence: the first event
// allocates, and every object reference points at an already-allocated ID.
// Alloc events carry their expected ID in Obj, matching what the codec
// assigns, so decoded events compare with == against the generated ones.
func genEvents(rng *rand.Rand, n int) []trace.Event {
	var evs []trace.Event
	allocs := uint64(0)
	someObj := func() uint64 { return uint64(rng.Intn(int(allocs))) }
	someVal := func() trace.Value {
		if rng.Intn(2) == 0 {
			return trace.Obj(someObj())
		}
		// Immediate bits exercise the zigzag path in both directions.
		return trace.Imm(heap.Word(rng.Uint64()))
	}
	alloc := func() trace.Event {
		ev := trace.Event{
			Kind: trace.KindAlloc,
			Type: heap.Type(rng.Intn(int(heap.TFree))),
			Size: rng.Intn(12),
			Obj:  allocs,
		}
		allocs++
		return ev
	}
	evs = append(evs, alloc())
	for len(evs) < n {
		var ev trace.Event
		switch rng.Intn(11) {
		case 0:
			ev = alloc()
		case 1:
			ev = trace.Event{Kind: trace.KindStore, Obj: someObj(), Slot: rng.Intn(8), Val: someVal()}
		case 2:
			ev = trace.Event{Kind: trace.KindFill, Obj: someObj(), Val: someVal()}
		case 3:
			ev = trace.Event{Kind: trace.KindRaw, Obj: someObj(), Slot: rng.Intn(8), Val: trace.Value{Bits: rng.Uint64()}}
		case 4:
			ev = trace.Event{Kind: trace.KindIntern, Obj: someObj(), Name: fmt.Sprintf("sym-%d", rng.Intn(1000))}
		case 5:
			ev = trace.Event{Kind: trace.KindPush, Val: someVal()}
		case 6:
			ev = trace.Event{Kind: trace.KindPopTo, Size: rng.Intn(100)}
		case 7:
			ev = trace.Event{Kind: trace.KindSet, Ref: int32(rng.Intn(200) - 100), Val: someVal()}
		case 8:
			ev = trace.Event{Kind: trace.KindGlobal, Val: someVal()}
		case 9:
			ev = trace.Event{Kind: trace.KindCollect, Full: rng.Intn(2) == 0}
		case 10:
			ev = trace.Event{Kind: trace.KindSession, Size: rng.Intn(5000)}
		}
		evs = append(evs, ev)
	}
	return evs
}

// encode writes the events as a complete trace.
func encode(t *testing.T, hdr trace.Header, evs []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		ev := evs[i] // the writer mutates Obj on allocs; keep evs pristine
		if err := w.Append(&ev); err != nil {
			t.Fatalf("append %v: %v", &evs[i], err)
		}
		if ev != evs[i] {
			t.Fatalf("append rewrote event: %v != %v", &ev, &evs[i])
		}
	}
	if err := w.Close(trace.Trailer{WordsAllocated: 12345, ObjectsAllocated: 99, Events: uint64(len(evs))}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decode reads back every event of a well-formed trace.
func decode(t *testing.T, raw []byte) (trace.Header, []trace.Event, trace.Trailer) {
	t.Helper()
	rd, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var evs []trace.Event
	var ev trace.Event
	for {
		err := rd.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("event %d: %v", len(evs), err)
		}
		evs = append(evs, ev)
	}
	return rd.Header(), evs, rd.Trailer()
}

// TestCodecRoundTrip is the core codec property: random valid event
// sequences survive Writer→Reader unchanged, and re-encoding the decoded
// stream reproduces the original bytes exactly.
func TestCodecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(20000) // small single-block and multi-block traces
		want := genEvents(rng, n)
		hdr := trace.Header{
			Census: seed%2 == 0,
			Meta:   []trace.MetaEntry{{Key: "workload", Value: "codec-test"}, {Key: "seed", Value: fmt.Sprint(seed)}},
		}
		raw := encode(t, hdr, want)

		gotHdr, got, tr := decode(t, raw)
		if gotHdr.Census != hdr.Census || len(gotHdr.Meta) != len(hdr.Meta) {
			t.Fatalf("seed %d: header mangled: %+v", seed, gotHdr)
		}
		for i, m := range gotHdr.Meta {
			if m != hdr.Meta[i] {
				t.Fatalf("seed %d: meta[%d] = %+v, want %+v", seed, i, m, hdr.Meta[i])
			}
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: decoded %d events, wrote %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: event %d: got %v, want %v", seed, i, &got[i], &want[i])
			}
		}
		if tr.Events != uint64(n) || tr.WordsAllocated != 12345 || tr.ObjectsAllocated != 99 {
			t.Fatalf("seed %d: trailer %+v", seed, tr)
		}

		// Byte-for-byte: the decoded stream re-encodes to the same trace.
		raw2 := encode(t, gotHdr, got)
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("seed %d: re-encoding decoded events changed the bytes (%d vs %d)", seed, len(raw), len(raw2))
		}
	}
}

// drainAll parses raw to the end, converting panics into errors so the
// corruption tests can assert "sentinel error, never a panic".
func drainAll(raw []byte) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	rd, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	_, err = rd.Drain()
	return err
}

// isSentinel reports whether err wraps one of the decode sentinels.
func isSentinel(err error) bool {
	return errors.Is(err, trace.ErrBadMagic) || errors.Is(err, trace.ErrVersion) ||
		errors.Is(err, trace.ErrCorrupt) || errors.Is(err, trace.ErrTruncated)
}

// smallTrace builds a short single-block trace for exhaustive corruption.
func smallTrace(t *testing.T) []byte {
	rng := rand.New(rand.NewSource(7))
	return encode(t, trace.Header{Meta: []trace.MetaEntry{{Key: "workload", Value: "corrupt-me"}}}, genEvents(rng, 120))
}

// TestTruncationEveryPrefix cuts a trace at every byte boundary: every
// prefix must fail with a sentinel — never succeed, never panic — because
// only the full trace ends in a verified trailer.
func TestTruncationEveryPrefix(t *testing.T) {
	raw := smallTrace(t)
	for n := 0; n < len(raw); n++ {
		err := drainAll(raw[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed as a complete trace", n, len(raw))
		}
		if !isSentinel(err) {
			t.Fatalf("prefix of %d bytes: non-sentinel error %v", n, err)
		}
	}
	if err := drainAll(raw); err != nil {
		t.Fatalf("full trace must parse: %v", err)
	}
}

// TestTruncationMultiBlock spot-checks truncation of a trace long enough to
// span several 32 KiB blocks, including cuts inside later frames.
func TestTruncationMultiBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	raw := encode(t, trace.Header{}, genEvents(rng, 30000))
	if len(raw) < 3*32<<10 {
		t.Fatalf("trace too small (%d bytes) to span blocks", len(raw))
	}
	for n := 0; n < len(raw); n += 997 {
		if err := drainAll(raw[:n]); err == nil || !isSentinel(err) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want a sentinel", n, len(raw), err)
		}
	}
	for _, back := range []int{1, 2, 3, 4, 5, 8, 12} {
		if err := drainAll(raw[:len(raw)-back]); err == nil || !isSentinel(err) {
			t.Fatalf("trailer cut %d bytes short: got %v, want a sentinel", back, err)
		}
	}
}

// TestBitFlipEveryBit flips every single bit of a small trace: each flip
// must surface as a sentinel error (magic, version, or a checksum/framing
// failure) — never a panic, and never a silently accepted trace.
func TestBitFlipEveryBit(t *testing.T) {
	raw := smallTrace(t)
	mut := make([]byte, len(raw))
	for pos := 0; pos < len(raw); pos++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, raw)
			mut[pos] ^= 1 << bit
			err := drainAll(mut)
			if err == nil {
				t.Fatalf("flipping byte %d bit %d went undetected", pos, bit)
			}
			if !isSentinel(err) {
				t.Fatalf("flipping byte %d bit %d: non-sentinel error %v", pos, bit, err)
			}
		}
	}
}

// TestWriterRejectsInvalidEvents pins the writer-side ErrInvalid contract.
func TestWriterRejectsInvalidEvents(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{})
	if err != nil {
		t.Fatal(err)
	}
	ev := trace.Event{Kind: trace.KindStore, Obj: 0, Val: trace.Imm(0)}
	if err := w.Append(&ev); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("store before any alloc: got %v, want ErrInvalid", err)
	}

	w2, _ := trace.NewWriter(&buf, trace.Header{})
	a := trace.Event{Kind: trace.KindAlloc, Type: heap.TPair, Size: 2}
	if err := w2.Append(&a); err != nil {
		t.Fatal(err)
	}
	bad := trace.Event{Kind: trace.KindPush, Val: trace.Obj(5)}
	if err := w2.Append(&bad); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("reference to future object: got %v, want ErrInvalid", err)
	}

	w3, _ := trace.NewWriter(&buf, trace.Header{})
	a = trace.Event{Kind: trace.KindAlloc, Type: heap.TPair, Size: 2}
	if err := w3.Append(&a); err != nil {
		t.Fatal(err)
	}
	if err := w3.Close(trace.Trailer{Events: 7}); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("trailer event-count mismatch: got %v, want ErrInvalid", err)
	}
}

// TestReaderSteadyStateZeroAllocs guards the streaming read path: decoding
// intern-free events from an already-warm reader must not allocate. Events
// are uniform, so every sealed block has an identical payload length and
// the reader's block buffer never regrows after the first full block.
func TestReaderSteadyStateZeroAllocs(t *testing.T) {
	var evs []trace.Event
	for i := 0; i < 120000; i++ {
		if i%3 == 0 {
			evs = append(evs, trace.Event{Kind: trace.KindAlloc, Type: heap.TPair, Size: 2, Obj: uint64(i / 3)})
		} else {
			evs = append(evs, trace.Event{Kind: trace.KindStore, Obj: uint64(i / 3), Slot: 0, Val: trace.Imm(heap.FixnumWord(4))})
		}
	}
	raw := encode(t, trace.Header{}, evs)

	rd, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var ev trace.Event
	for i := 0; i < 20000; i++ { // warmup: block buffer reaches steady size
		if err := rd.Next(&ev); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 1000; i++ {
			if err := rd.Next(&ev); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Next allocates %.2f objects per 1000 events, want 0", allocs)
	}
}
