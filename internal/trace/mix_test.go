package trace

import (
	"bytes"
	"testing"

	"rdgc/internal/heap"
)

// TestReadAllocMix pins the census: a synthetic trace with a known
// allocation mix reads back exactly, sorted by (Type, PayloadWords), with
// non-alloc events ignored.
func TestReadAllocMix(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{})
	if err != nil {
		t.Fatal(err)
	}
	var words, objects uint64
	appendAlloc := func(typ heap.Type, size int) {
		if err := w.Append(&Event{Kind: KindAlloc, Type: typ, Size: size}); err != nil {
			t.Fatal(err)
		}
		words += uint64(1 + size)
		objects++
	}
	appendAlloc(heap.TVector, 10)
	appendAlloc(heap.TPair, 2)
	appendAlloc(heap.TPair, 2)
	appendAlloc(heap.TVector, 3)
	appendAlloc(heap.TPair, 2)
	// Non-alloc events must not perturb the census.
	if err := w.Append(&Event{Kind: KindPush, Val: Imm(heap.NullWord)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Event{Kind: KindCollect}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(Trailer{WordsAllocated: words, ObjectsAllocated: objects, Events: w.Events()}); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := ReadAllocMix(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []AllocMixClass{
		{Type: heap.TPair, PayloadWords: 2, Count: 3},
		{Type: heap.TVector, PayloadWords: 3, Count: 1},
		{Type: heap.TVector, PayloadWords: 10, Count: 1},
	}
	if len(mix) != len(want) {
		t.Fatalf("got %d classes, want %d: %+v", len(mix), len(want), mix)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Fatalf("class %d: got %+v, want %+v", i, mix[i], want[i])
		}
	}
}

// TestReadAllocMixTruncated pins that a trace cut off mid-stream surfaces
// an error instead of a silently partial census.
func TestReadAllocMixTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := w.Append(&Event{Kind: KindAlloc, Type: heap.TPair, Size: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(Trailer{WordsAllocated: 6000, ObjectsAllocated: 2000, Events: 2000}); err != nil {
		t.Fatal(err)
	}
	cut := bytes.NewReader(buf.Bytes()[:buf.Len()-7])
	r, err := NewReader(cut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAllocMix(r); err == nil {
		t.Fatal("truncated trace produced a census without error")
	}
}
