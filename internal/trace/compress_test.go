package trace_test

import (
	"bytes"
	"math/rand"
	"testing"

	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

// encodeZ writes the events as a complete compressed trace.
func encodeZ(t *testing.T, hdr trace.Header, evs []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, hdr, trace.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		ev := evs[i]
		if err := w.Append(&ev); err != nil {
			t.Fatalf("append %v: %v", &evs[i], err)
		}
	}
	if err := w.Close(trace.Trailer{WordsAllocated: 12345, ObjectsAllocated: 99, Events: uint64(len(evs))}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompressedRoundTrip is the compressed-codec core property: random
// valid event sequences survive a compressed Writer→Reader unchanged and
// identical to their uncompressed decode, and re-encoding the decoded
// stream with compression reproduces the compressed bytes exactly.
func TestCompressedRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(20000)
		want := genEvents(rng, n)
		hdr := trace.Header{Census: seed%2 == 0, Meta: []trace.MetaEntry{{Key: "workload", Value: "compress-test"}}}
		raw := encode(t, hdr, want)
		comp := encodeZ(t, hdr, want)

		gotHdr, got, tr := decode(t, comp)
		if gotHdr.Census != hdr.Census {
			t.Fatalf("seed %d: header mangled: %+v", seed, gotHdr)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: decoded %d events, wrote %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: event %d: got %v, want %v", seed, i, &got[i], &want[i])
			}
		}
		if tr.Events != uint64(n) {
			t.Fatalf("seed %d: trailer %+v", seed, tr)
		}

		// Both encodings decode to the same events (checked above against
		// want); the compressed trace must also re-encode byte-for-byte.
		if again := encodeZ(t, gotHdr, got); !bytes.Equal(comp, again) {
			t.Fatalf("seed %d: re-encoding decoded events changed the compressed bytes (%d vs %d)",
				seed, len(comp), len(again))
		}
		if len(comp) >= len(raw)+16 {
			t.Fatalf("seed %d: compression grew the trace: %d compressed vs %d raw", seed, len(comp), len(raw))
		}
	}
}

// TestReadAmplification pins the reader's stored/raw byte accounting: an
// uncompressed trace reads 1:1, a compressed one reads fewer stored bytes
// than it yields raw.
func TestReadAmplification(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	evs := genEvents(rng, 40000)
	raw := encode(t, trace.Header{}, evs)
	comp := encodeZ(t, trace.Header{}, evs)

	rd, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Drain(); err != nil {
		t.Fatal(err)
	}
	if rd.StoredBytes() != rd.RawBytes() || rd.StoredBytes() == 0 {
		t.Fatalf("uncompressed trace: stored %d, raw %d, want equal and nonzero", rd.StoredBytes(), rd.RawBytes())
	}
	wantRaw := rd.RawBytes()

	zd, err := trace.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zd.Drain(); err != nil {
		t.Fatal(err)
	}
	if zd.RawBytes() != wantRaw {
		t.Fatalf("compressed trace decompressed to %d payload bytes, want %d", zd.RawBytes(), wantRaw)
	}
	if zd.StoredBytes() >= zd.RawBytes() {
		t.Fatalf("compressed trace stored %d bytes for %d raw, expected a reduction", zd.StoredBytes(), zd.RawBytes())
	}
}

// smallTraceZ builds a short compressed trace for exhaustive corruption.
// The uniform event mix compresses, so the corruption walks below
// exercise the compressed-block decode path, not just the framing.
func smallTraceZ(t *testing.T) []byte {
	rng := rand.New(rand.NewSource(7))
	return encodeZ(t, trace.Header{Meta: []trace.MetaEntry{{Key: "workload", Value: "corrupt-me"}}}, genEvents(rng, 300))
}

// TestCompressedTruncationEveryPrefix cuts a compressed trace at every
// byte boundary: every prefix must fail with a sentinel — never succeed,
// never panic.
func TestCompressedTruncationEveryPrefix(t *testing.T) {
	raw := smallTraceZ(t)
	for n := 0; n < len(raw); n++ {
		err := drainAll(raw[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed as a complete trace", n, len(raw))
		}
		if !isSentinel(err) {
			t.Fatalf("prefix of %d bytes: non-sentinel error %v", n, err)
		}
	}
	if err := drainAll(raw); err != nil {
		t.Fatalf("full trace must parse: %v", err)
	}
}

// TestCompressedBitFlipEveryBit flips every bit of a compressed trace:
// the block CRC covers the stored (compressed) bytes, so every flip must
// surface as a sentinel before the decompressor can be misled.
func TestCompressedBitFlipEveryBit(t *testing.T) {
	raw := smallTraceZ(t)
	mut := make([]byte, len(raw))
	for pos := 0; pos < len(raw); pos++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, raw)
			mut[pos] ^= 1 << bit
			err := drainAll(mut)
			if err == nil {
				t.Fatalf("flipping byte %d bit %d went undetected", pos, bit)
			}
			if !isSentinel(err) {
				t.Fatalf("flipping byte %d bit %d: non-sentinel error %v", pos, bit, err)
			}
		}
	}
}

// TestCompressedReaderSteadyStateZeroAllocs mirrors the uncompressed
// guard: block-at-a-time decompression must go into reused buffers, so a
// warm reader decodes compressed traces without allocating.
func TestCompressedReaderSteadyStateZeroAllocs(t *testing.T) {
	var evs []trace.Event
	for i := 0; i < 120000; i++ {
		if i%3 == 0 {
			evs = append(evs, trace.Event{Kind: trace.KindAlloc, Type: heap.TPair, Size: 2, Obj: uint64(i / 3)})
		} else {
			evs = append(evs, trace.Event{Kind: trace.KindStore, Obj: uint64(i / 3), Slot: 0, Val: trace.Imm(heap.FixnumWord(4))})
		}
	}
	raw := encodeZ(t, trace.Header{}, evs)

	rd, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var ev trace.Event
	for i := 0; i < 20000; i++ { // warmup: block and staging buffers reach steady size
		if err := rd.Next(&ev); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 1000; i++ {
			if err := rd.Next(&ev); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state compressed Next allocates %.2f objects per 1000 events, want 0", allocs)
	}
}
