package trace_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

// openTrace wraps raw bytes in a fresh Reader.
func openTrace(t *testing.T, raw []byte) *trace.Reader {
	t.Helper()
	rd, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

// replayTrace replays raw under the given collector constructor and
// returns the resulting mutator stats.
func replayTrace(t *testing.T, raw []byte, mk func(*heap.Heap) heap.Collector, verify bool) trace.ReplayResult {
	t.Helper()
	rd := openTrace(t, raw)
	var opts []heap.Option
	if rd.Header().Census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	res, err := trace.Replay(rd, h, mk(h), trace.ReplayOptions{Verify: verify})
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	return res
}

// synthInputs records three distinct single-session workloads.
func synthInputs(t *testing.T) [][]byte {
	t.Helper()
	mk := gcfuzz.Collectors()[0].New
	var inputs [][]byte
	for i, steps := range []int{300, 400, 500} {
		raw, _, _ := recordMutator(t, mk, false, int64(i+1), steps)
		inputs = append(inputs, raw)
	}
	return inputs
}

// interleaveBytes runs Interleave over fresh readers of the inputs.
func interleaveBytes(t *testing.T, inputs [][]byte, opt trace.SynthOptions) ([]byte, trace.Trailer) {
	t.Helper()
	rds := make([]*trace.Reader, len(inputs))
	for i, raw := range inputs {
		rds[i] = openTrace(t, raw)
	}
	var buf bytes.Buffer
	tr, err := trace.Interleave(&buf, rds, opt)
	if err != nil {
		t.Fatalf("interleave: %v", err)
	}
	return buf.Bytes(), tr
}

// TestInterleaveSplitRoundTrip is the synthesis core property: for both
// the round-robin and a seeded schedule, interleaving K single-session
// traces is invertible — Split reproduces every input byte for byte —
// and the merged corpus itself replays cleanly under the deep verifier.
func TestInterleaveSplitRoundTrip(t *testing.T) {
	inputs := synthInputs(t)
	for _, opt := range []trace.SynthOptions{
		{Chunk: 32},
		{Seed: 42, Chunk: 16},
		{Compress: true, Seed: 9},
	} {
		name := fmt.Sprintf("seed=%d,chunk=%d,z=%v", opt.Seed, opt.Chunk, opt.Compress)
		merged, tr := interleaveBytes(t, inputs, opt)
		merged2, _ := interleaveBytes(t, inputs, opt)
		if !bytes.Equal(merged, merged2) {
			t.Fatalf("%s: interleave is not deterministic", name)
		}

		// The merged trailer is the sum of the input trailers.
		var words, objects uint64
		for _, raw := range inputs {
			it, err := openTrace(t, raw).Drain()
			if err != nil {
				t.Fatal(err)
			}
			words += it.WordsAllocated
			objects += it.ObjectsAllocated
		}
		if tr.WordsAllocated != words || tr.ObjectsAllocated != objects {
			t.Fatalf("%s: merged trailer %+v, want %d words / %d objects", name, tr, words, objects)
		}

		st := replayTrace(t, merged, gcfuzz.Collectors()[0].New, true)
		if st.Stats.WordsAllocated != words {
			t.Fatalf("%s: merged replay allocated %d words, want %d", name, st.Stats.WordsAllocated, words)
		}

		// Splitting by session must reproduce the inputs byte for byte —
		// split outputs are plain uncompressed traces, so compare against
		// the original (uncompressed) recordings.
		if opt.Compress {
			continue
		}
		parts, err := trace.Split(openTrace(t, merged), trace.SynthOptions{})
		if err != nil {
			t.Fatalf("%s: split: %v", name, err)
		}
		if len(parts) != len(inputs) {
			t.Fatalf("%s: split produced %d traces, want %d", name, len(parts), len(inputs))
		}
		for i := range parts {
			if !bytes.Equal(parts[i], inputs[i]) {
				t.Fatalf("%s: session %d did not survive interleave+split (%d bytes vs %d)",
					name, i, len(parts[i]), len(inputs[i]))
			}
		}
	}
}

// TestInterleaveRejectsCensusMismatch pins the input-compatibility check:
// census changes allocation sizes, so mixed inputs cannot share a heap.
func TestInterleaveRejectsCensusMismatch(t *testing.T) {
	mk := gcfuzz.Collectors()[0].New
	plain, _, _ := recordMutator(t, mk, false, 1, 100)
	census, _, _ := recordMutator(t, mk, true, 1, 100)
	var buf bytes.Buffer
	_, err := trace.Interleave(&buf, []*trace.Reader{openTrace(t, plain), openTrace(t, census)}, trace.SynthOptions{})
	if !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("census mismatch: got %v, want ErrInvalid", err)
	}
}

// TestShardAggregateInvariance mirrors PR 9's shard-count partition test
// at the trace level: however a merged corpus is sharded, the shard
// trailers and the per-shard replay stats sum to the same aggregate.
func TestShardAggregateInvariance(t *testing.T) {
	merged, tr := interleaveBytes(t, synthInputs(t), trace.SynthOptions{Seed: 5})
	base := replayTrace(t, merged, gcfuzz.Collectors()[0].New, false)
	for _, n := range []int{1, 2, 3, 5, 8} {
		shards, err := trace.Shard(openTrace(t, merged), n, trace.SynthOptions{})
		if err != nil {
			t.Fatalf("shard %d: %v", n, err)
		}
		var sum heap.Stats
		var events uint64
		var trSum trace.Trailer
		for _, raw := range shards {
			st, err := openTrace(t, raw).Drain()
			if err != nil {
				t.Fatalf("shard %d: %v", n, err)
			}
			trSum.WordsAllocated += st.WordsAllocated
			trSum.ObjectsAllocated += st.ObjectsAllocated
			trSum.Events += st.Events
			rs := replayTrace(t, raw, gcfuzz.Collectors()[0].New, true)
			sum.WordsAllocated += rs.Stats.WordsAllocated
			sum.ObjectsAllocated += rs.Stats.ObjectsAllocated
			events += rs.Events
		}
		if trSum.WordsAllocated != tr.WordsAllocated || trSum.ObjectsAllocated != tr.ObjectsAllocated ||
			trSum.Events != tr.Events {
			t.Fatalf("shards=%d: trailer sum %+v, merged %+v", n, trSum, tr)
		}
		if sum != base.Stats || events != base.Events {
			t.Fatalf("shards=%d: replay sum %+v (%d events), merged replay %+v (%d events)",
				n, sum, events, base.Stats, base.Events)
		}
	}
}

// TestAmplify pins the self-interleave: n sessions multiply the trailer
// exactly, the session census sees n sessions, and the corpus replays
// verifier-clean.
func TestAmplify(t *testing.T) {
	mk := gcfuzz.Collectors()[0].New
	base, _, _ := recordMutator(t, mk, false, 3, 200)
	bt, err := openTrace(t, base).Drain()
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var buf bytes.Buffer
	tr, err := trace.Amplify(&buf, base, n, trace.SynthOptions{Seed: 11})
	if err != nil {
		t.Fatalf("amplify: %v", err)
	}
	if tr.WordsAllocated != n*bt.WordsAllocated || tr.ObjectsAllocated != n*bt.ObjectsAllocated {
		t.Fatalf("amplify ×%d trailer %+v, base %+v", n, tr, bt)
	}
	sum, err := trace.Stat(openTrace(t, buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sessions != n {
		t.Fatalf("amplified corpus reports %d sessions, want %d", sum.Sessions, n)
	}
	replayTrace(t, buf.Bytes(), mk, true)
}

// TestSpliceSelf splices a symbol-interning trace with itself: ID
// re-basing plus per-input symbol salting must keep the concatenation
// replayable (interning is globally unique, so without salting the
// second copy would collide).
func TestSpliceSelf(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(corpusDir, "gcfuzz-prog.trace"))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := openTrace(t, raw).Drain()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr, err := trace.Splice(&buf, []*trace.Reader{openTrace(t, raw), openTrace(t, raw)}, trace.SynthOptions{})
	if err != nil {
		t.Fatalf("splice: %v", err)
	}
	if tr.WordsAllocated != 2*bt.WordsAllocated || tr.ObjectsAllocated != 2*bt.ObjectsAllocated {
		t.Fatalf("self-splice trailer %+v, base %+v", tr, bt)
	}
	replayTrace(t, buf.Bytes(), gcfuzz.Collectors()[0].New, true)
}

// TestTimeScale pins the collect-density rewrite: num/den multiplies the
// number of collect boundaries (with integer accumulation) and leaves
// the allocation schedule untouched.
func TestTimeScale(t *testing.T) {
	mk := gcfuzz.Collectors()[0].New
	base, _, _ := recordMutator(t, mk, false, 4, 400)
	bs, err := trace.Stat(openTrace(t, base))
	if err != nil {
		t.Fatal(err)
	}
	collects := bs.Collections + bs.FullCollections
	for _, tc := range []struct{ num, den int }{{3, 1}, {1, 2}, {1, 1}} {
		var buf bytes.Buffer
		tr, err := trace.TimeScale(&buf, openTrace(t, base), tc.num, tc.den, trace.SynthOptions{})
		if err != nil {
			t.Fatalf("timescale %d/%d: %v", tc.num, tc.den, err)
		}
		if tr.WordsAllocated != bs.Trailer.WordsAllocated || tr.ObjectsAllocated != bs.Trailer.ObjectsAllocated {
			t.Fatalf("timescale %d/%d changed the allocation schedule: %+v", tc.num, tc.den, tr)
		}
		ss, err := trace.Stat(openTrace(t, buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got := ss.Collections + ss.FullCollections
		want := collects * uint64(tc.num) / uint64(tc.den)
		if got != want {
			t.Fatalf("timescale %d/%d: %d collects, want %d (base %d)", tc.num, tc.den, got, want, collects)
		}
		replayTrace(t, buf.Bytes(), mk, true)
	}
}

// recordBase records one small mutator session carrying heap_words
// sizing metadata, so amplified corpora size their replay grid the way
// `gctrace record` traces do (Amplify sums heap_words across copies).
func recordBase(t *testing.T, seed int64, steps, heapWords int) []byte {
	t.Helper()
	h := heap.New()
	c := gcfuzz.Collectors()[0].New(h)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Meta: []trace.MetaEntry{
		{Key: "workload", Value: "synth-base"},
		{Key: "heap_words", Value: strconv.Itoa(heapWords)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(h, w)
	if err != nil {
		t.Fatal(err)
	}
	driveMutator(h, rec.Collector(c), seed, steps)
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sizedGrid mirrors gctrace's replay sizing: heap_words metadata picks
// the collector grid, traces without it get the fuzz-sized grid.
func sizedGrid(t *testing.T, raw []byte) []gcfuzz.NamedCollector {
	t.Helper()
	hdr := openTrace(t, raw).Header()
	if s, ok := hdr.Lookup("heap_words"); ok {
		if n, err := strconv.Atoi(s); err == nil {
			return gcfuzz.CollectorsSized(n)
		}
	}
	return gcfuzz.Collectors()
}

// synthGoldenPath drift-guards the 1k-session corpus recipe.
const synthGoldenPath = "testdata/synth-golden.json"

// synthGolden is the aggregate fingerprint of the synthesized corpus.
type synthGolden struct {
	Sessions        uint64 `json:"sessions"`
	Events          uint64 `json:"events"`
	Words           uint64 `json:"words"`
	Objects         uint64 `json:"objects"`
	Collections     uint64 `json:"collections"`
	FullCollections uint64 `json:"full_collections"`
	RawBytes        uint64 `json:"raw_bytes"`
	CompressedBytes uint64 `json:"compressed_bytes"`
}

// build1kCorpus synthesizes the standard 1000-session interleaved corpus
// from one small recorded session (the same recipe `gctrace synth` and
// `make synth` document), compressed and uncompressed.
func build1kCorpus(t *testing.T) (raw, compressed []byte) {
	t.Helper()
	base := recordBase(t, 9, 40, 2048)
	var plain, z bytes.Buffer
	if _, err := trace.Amplify(&plain, base, 1000, trace.SynthOptions{Seed: 1000}); err != nil {
		t.Fatalf("amplify: %v", err)
	}
	if _, err := trace.Amplify(&z, base, 1000, trace.SynthOptions{Seed: 1000, Compress: true}); err != nil {
		t.Fatalf("amplify compressed: %v", err)
	}
	return plain.Bytes(), z.Bytes()
}

// TestSynthGolden1kSessions drift-guards the synthesized corpus (the
// recipe must keep producing the same aggregate, byte sizes included —
// regenerate with `make synth`) and proves the acceptance property: the
// 1k-session corpus replays verifier-clean and stats-deterministically
// under all seven collectors, and compression at least halves it.
func TestSynthGolden1kSessions(t *testing.T) {
	raw, z := build1kCorpus(t)
	sum, err := trace.Stat(openTrace(t, raw))
	if err != nil {
		t.Fatal(err)
	}
	got := synthGolden{
		Sessions:        sum.Sessions,
		Events:          sum.Trailer.Events,
		Words:           sum.Trailer.WordsAllocated,
		Objects:         sum.Trailer.ObjectsAllocated,
		Collections:     sum.Collections,
		FullCollections: sum.FullCollections,
		RawBytes:        uint64(len(raw)),
		CompressedBytes: uint64(len(z)),
	}
	if os.Getenv("RDGC_WRITE_TRACES") == "1" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(synthGoldenPath, append(data, '\n'), 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %+v", synthGoldenPath, got)
	} else {
		data, err := os.ReadFile(synthGoldenPath)
		if err != nil {
			t.Fatalf("%v (run `make synth` to regenerate)", err)
		}
		var want synthGolden
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("synthesized corpus drifted from %s:\ngot  %+v\nwant %+v\n(run `make synth` to regenerate)",
				synthGoldenPath, got, want)
		}
	}
	if got.Sessions != 1000 {
		t.Fatalf("corpus has %d sessions, want 1000", got.Sessions)
	}
	if 2*got.CompressedBytes > got.RawBytes {
		t.Fatalf("compression ratio %.2fx < 2x (raw %d, compressed %d)",
			float64(got.RawBytes)/float64(got.CompressedBytes), got.RawBytes, got.CompressedBytes)
	}

	// Replays verifier-clean and stats-deterministic under all seven
	// collectors — from the compressed form, which must decode to the
	// identical stream.
	grid := sizedGrid(t, z)
	var first trace.ReplayResult
	for i, nc := range grid {
		st := replayTrace(t, z, nc.New, true)
		if i == 0 {
			first = st
		} else if st != first {
			t.Fatalf("%s replay stats %+v diverge from %s's %+v",
				nc.Name, st, grid[0].Name, first)
		}
	}
	if first.Stats.WordsAllocated != got.Words || first.Stats.ObjectsAllocated != got.Objects {
		t.Fatalf("replay stats %+v disagree with corpus trailer %+v", first, got)
	}
}
