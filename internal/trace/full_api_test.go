package trace_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

// richWorkload exercises every event kind the public heap API can produce —
// including symbols, flonums, and bytevectors, which the gctest mutator
// never touches — with enough volume to force collections.
func richWorkload(h *heap.Heap, c heap.Collector) error {
	root := h.GlobalWord(heap.NullWord)
	for i := 0; i < 400; i++ {
		s := h.Scope()
		v := h.MakeVector(4, h.Fix(int64(i)))
		h.VectorSet(v, 0, h.Intern("alpha"))
		h.VectorSet(v, 1, h.Intern("beta-"+string(rune('a'+i%3))))
		h.VectorSet(v, 2, h.Flonum(float64(i)*1.5))
		h.VectorSet(v, 3, h.Box(h.Bytevector(3)))
		pair := h.Cons(v, h.Dup(root))
		h.SetCdr(pair, h.Null())
		h.Set(root, h.Get(pair))
		s.Close()
		if i%101 == 100 {
			c.Collect()
		}
		if i%173 == 172 {
			if fc, ok := c.(fullCollector); ok {
				fc.FullCollect()
			} else {
				c.Collect()
			}
		}
	}
	c.Collect()
	return nil
}

// TestRecordHelperFullAPI drives the Record convenience helper over the
// full-API workload and replays the result under every collector, census
// on and off. This is where symbol interning and raw payloads earn their
// replay coverage.
func TestRecordHelperFullAPI(t *testing.T) {
	for _, census := range []bool{false, true} {
		var buf bytes.Buffer
		meta := []trace.MetaEntry{{Key: "workload", Value: "full-api"}}
		stats, err := trace.Record(&buf, census, meta, gcfuzz.Collectors()[0].New, richWorkload)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ObjectsAllocated == 0 {
			t.Fatal("workload allocated nothing")
		}
		raw := buf.Bytes()

		for _, nc := range gcfuzz.Collectors() {
			rd, err := trace.NewReader(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			hdr := rd.Header()
			if wl, ok := hdr.Lookup("workload"); !ok || wl != "full-api" {
				t.Fatalf("metadata lost: %+v", hdr.Meta)
			}
			if _, ok := hdr.Lookup("no-such-key"); ok {
				t.Fatal("Lookup invented a meta entry")
			}
			var opts []heap.Option
			if census {
				opts = append(opts, heap.WithCensus())
			}
			h := heap.New(opts...)
			c := nc.New(h)
			res, err := trace.Replay(rd, h, c, trace.ReplayOptions{Verify: true})
			if err != nil {
				t.Fatalf("census=%v replay under %s: %v", census, nc.Name, err)
			}
			if res.Stats != stats {
				t.Fatalf("census=%v %s: stats %+v, recorded %+v", census, nc.Name, res.Stats, stats)
			}
			if got := h.SymbolName(h.Intern("alpha")); got != "alpha" {
				t.Fatalf("replayed symbol table broken: %q", got)
			}
			if rd.Events() != res.Events {
				t.Fatalf("reader counted %d events, replay applied %d", rd.Events(), res.Events)
			}
		}
	}
}

// TestStatAndStrings runs the aggregate view and the debug renderers over
// the full-API trace, pinning the pieces cmd/gctrace stat and cat rely on.
func TestStatAndStrings(t *testing.T) {
	var buf bytes.Buffer
	_, err := trace.Record(&buf, true, []trace.MetaEntry{{Key: "workload", Value: "full-api"}},
		gcfuzz.Collectors()[0].New, richWorkload)
	if err != nil {
		t.Fatal(err)
	}

	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ev trace.Event
	seen := map[trace.Kind]bool{}
	for {
		if err := rd.Next(&ev); err != nil {
			break
		}
		seen[ev.Kind] = true
		if ev.String() == "" || ev.Kind.String() == "" {
			t.Fatalf("empty rendering for %v", ev.Kind)
		}
	}
	for k := trace.KindAlloc; k <= trace.KindCollect; k++ {
		if !seen[k] {
			t.Errorf("workload never produced %v events", k)
		}
	}

	rd2, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := trace.Stat(rd2)
	if err != nil {
		t.Fatal(err)
	}
	if s.ByType[heap.TSymbol].Count == 0 || s.ByType[heap.TFlonum].Count == 0 {
		t.Fatalf("type profile missed raw-payload types: %+v", s.ByType)
	}
	var allocs uint64
	for _, ts := range s.ByType {
		allocs += ts.Count
	}
	if allocs != s.Trailer.ObjectsAllocated {
		t.Fatalf("type profile counts %d objects, trailer says %d", allocs, s.Trailer.ObjectsAllocated)
	}
	text := s.Format()
	for _, want := range []string{"workload = full-api", "symbol", "flonum", "lifetime upper bound", "collections requested"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
}

// TestRecorderErrorPaths pins the recorder's failure contract: non-pristine
// heaps and census mismatches are rejected up front; events referencing
// objects the recorder never saw poison the recording with ErrInvalid.
func TestRecorderErrorPaths(t *testing.T) {
	dirty := heap.New()
	c := gcfuzz.Collectors()[0].New(dirty)
	_ = c
	dirty.Cons(dirty.Fix(1), dirty.Null())
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.NewRecorder(dirty, w); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("non-pristine heap: got %v, want ErrInvalid", err)
	}

	censusHeap := heap.New(heap.WithCensus())
	gcfuzz.Collectors()[0].New(censusHeap)
	w2, _ := trace.NewWriter(&buf, trace.Header{Census: false})
	if _, err := trace.NewRecorder(censusHeap, w2); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("census mismatch: got %v, want ErrInvalid", err)
	}

	// Hide an allocation from the recorder, then reference it: the recorder
	// must refuse to encode a pointer it cannot name.
	h := heap.New()
	hc := gcfuzz.Collectors()[0].New(h)
	var buf3 bytes.Buffer
	w3, err := trace.NewWriter(&buf3, trace.Header{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(h, w3)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := rec.Collector(hc)
	h.SetEventSink(nil)
	hidden := h.Cons(h.Fix(1), h.Null())
	h.SetEventSink(rec)
	if rec.Err() != nil {
		t.Fatalf("premature recorder error: %v", rec.Err())
	}
	h.Cons(hidden, h.Null())
	first := rec.Err()
	if !errors.Is(first, trace.ErrInvalid) {
		t.Fatalf("unrecorded pointer: got %v, want ErrInvalid", first)
	}
	// Every subsequent event kind must be a no-op on a poisoned recorder:
	// the first error stays the reported one.
	s := h.Scope()
	h.VectorSet(h.MakeVector(2, h.Fix(0)), 0, h.Intern("late"))
	h.SetBox(h.Box(h.Flonum(1.0)), h.Fix(2))
	h.Set(h.GlobalWord(heap.NullWord), heap.NullWord)
	s.Close()
	wrapped.Collect()
	if rec.Err() != first {
		t.Fatalf("poisoned recorder error changed: %v -> %v", first, rec.Err())
	}
	if err := rec.Finish(); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("Finish after poison: got %v, want ErrInvalid", err)
	}
	if err := rec.Finish(); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("second Finish: got %v, want ErrInvalid", err)
	}
}

// failWriter accepts budget bytes, then fails every write.
type failWriter struct{ budget int }

func (f *failWriter) Write(p []byte) (int, error) {
	if len(p) > f.budget {
		n := f.budget
		f.budget = 0
		return n, errors.New("disk full")
	}
	f.budget -= len(p)
	return len(p), nil
}

// TestWriterIOErrors pins how sink failures surface: at NewWriter when the
// preamble cannot be written, and from Append/Close when a block flush
// fails mid-stream.
func TestWriterIOErrors(t *testing.T) {
	if _, err := trace.NewWriter(&failWriter{budget: 0}, trace.Header{}); err == nil {
		t.Fatal("NewWriter succeeded against a dead sink")
	}

	// Enough budget for the preamble, none for the first event block.
	w, err := trace.NewWriter(&failWriter{budget: 1 << 10}, trace.Header{})
	if err != nil {
		t.Fatal(err)
	}
	ev := trace.Event{Kind: trace.KindAlloc, Type: heap.TPair, Size: 2}
	var appendErr error
	for i := 0; i < 100000 && appendErr == nil; i++ {
		ev.Obj = 0
		appendErr = w.Append(&ev)
	}
	closeErr := w.Close(trace.Trailer{})
	if appendErr == nil && closeErr == nil {
		t.Fatal("no error surfaced from a failing sink")
	}
}

// TestStringRenderers pins the debug renderings cmd/gctrace cat depends on,
// including the unknown-kind fallbacks.
func TestStringRenderers(t *testing.T) {
	if got := trace.Kind(99).String(); got != "Kind(99)" {
		t.Fatalf("unknown kind: %q", got)
	}
	bogus := trace.Event{Kind: trace.Kind(99)}
	if got := bogus.String(); got != "event(99)" {
		t.Fatalf("unknown event: %q", got)
	}
	full := trace.Event{Kind: trace.KindCollect, Full: true}
	if got := full.String(); got != "collect full" {
		t.Fatalf("full collect: %q", got)
	}
	if got := trace.Obj(7).String(); got != "#7" {
		t.Fatalf("object operand: %q", got)
	}
}

// TestRecordRunError: a failing workload still finalizes a complete,
// replayable trace, and the workload's error is what Record returns.
func TestRecordRunError(t *testing.T) {
	boom := errors.New("workload exploded")
	var buf bytes.Buffer
	_, err := trace.Record(&buf, false, nil, gcfuzz.Collectors()[0].New,
		func(h *heap.Heap, c heap.Collector) error {
			h.Cons(h.Fix(1), h.Null())
			return boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the workload error", err)
	}
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace from failing run unreadable: %v", err)
	}
	if _, err := rd.Drain(); err != nil {
		t.Fatalf("trace from failing run incomplete: %v", err)
	}

	// A dead sink fails Record before the workload even runs.
	if _, err := trace.Record(&failWriter{budget: 0}, false, nil, gcfuzz.Collectors()[0].New,
		func(h *heap.Heap, c heap.Collector) error { return nil }); err == nil {
		t.Fatal("Record succeeded against a dead sink")
	}
}

// TestReplayerPristineAndTruncated: the replayer refuses dirty heaps, and a
// truncated trace surfaces ErrTruncated through Replay.
func TestReplayerPristineAndTruncated(t *testing.T) {
	dirty := heap.New()
	c := gcfuzz.Collectors()[0].New(dirty)
	dirty.Cons(dirty.Fix(1), dirty.Null())
	if _, err := trace.NewReplayer(dirty, c); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("dirty heap: got %v, want ErrInvalid", err)
	}

	var buf bytes.Buffer
	if _, err := trace.Record(&buf, false, nil, gcfuzz.Collectors()[0].New, richWorkload); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-40]
	rd, err := trace.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	hc := gcfuzz.Collectors()[0].New(h)
	if _, err := trace.Replay(rd, h, hc, trace.ReplayOptions{}); !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("truncated trace: got %v, want ErrTruncated", err)
	}
}

// TestReplayErrorPaths pins replay's failure contract: census mismatch,
// heap-impossible events (panics converted to ErrInvalid), and trailer
// drift.
func TestReplayErrorPaths(t *testing.T) {
	// A codec-valid trace whose store slot is outside the object's payload.
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{})
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Event{Kind: trace.KindAlloc, Type: heap.TPair, Size: 2}
	if err := w.Append(&a); err != nil {
		t.Fatal(err)
	}
	bad := trace.Event{Kind: trace.KindStore, Obj: 0, Slot: 9, Val: trace.Imm(heap.FixnumWord(1))}
	if err := w.Append(&bad); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(trace.Trailer{WordsAllocated: 3, ObjectsAllocated: 1, Events: 2}); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	c := gcfuzz.Collectors()[0].New(h)
	if _, err := trace.Replay(rd, h, c, trace.ReplayOptions{}); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("out-of-bounds store: got %v, want ErrInvalid", err)
	}

	// Census mismatch between trace and heap.
	var buf2 bytes.Buffer
	w2, _ := trace.NewWriter(&buf2, trace.Header{Census: true})
	w2.Close(trace.Trailer{})
	rd2, err := trace.NewReader(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h2 := heap.New()
	c2 := gcfuzz.Collectors()[0].New(h2)
	if _, err := trace.Replay(rd2, h2, c2, trace.ReplayOptions{}); !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("census mismatch: got %v, want ErrInvalid", err)
	}

	// A trailer that lies about the words allocated: the codec accepts it
	// (only the event count is writer-validated), replay detects the drift.
	var buf3 bytes.Buffer
	w3, _ := trace.NewWriter(&buf3, trace.Header{})
	a = trace.Event{Kind: trace.KindAlloc, Type: heap.TPair, Size: 2}
	if err := w3.Append(&a); err != nil {
		t.Fatal(err)
	}
	if err := w3.Close(trace.Trailer{WordsAllocated: 999, ObjectsAllocated: 1, Events: 1}); err != nil {
		t.Fatal(err)
	}
	rd3, err := trace.NewReader(bytes.NewReader(buf3.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h3 := heap.New()
	c3 := gcfuzz.Collectors()[0].New(h3)
	if _, err := trace.Replay(rd3, h3, c3, trace.ReplayOptions{}); !errors.Is(err, trace.ErrDrift) {
		t.Fatalf("lying trailer: got %v, want ErrDrift", err)
	}
}
