package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"rdgc/internal/heap"
)

// Reader streams events back out of a trace. It holds at most one block
// in memory and reuses that buffer, so the steady-state read path does not
// allocate (KindIntern's symbol name is the one exception). Errors are
// sticky and wrap the package sentinels.
type Reader struct {
	br      *bufio.Reader
	version uint64
	hdr     Header
	blk     []byte // current block payload (buffer reused across blocks)
	cbuf    []byte // compressed-block staging buffer, likewise reused
	pos     int    // decode cursor within blk
	nextID  uint64 // mirrors the writer's allocation counter
	events  uint64
	stored  uint64 // payload bytes as framed on the wire
	raw     uint64 // payload bytes after decompression
	tr      Trailer
	done    bool
	err     error
}

// NewReader checks the preamble and decodes the header block. The reader
// buffers r itself; it does not close it.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{br: bufio.NewReaderSize(r, 64<<10)}
	var m [8]byte
	if _, err := io.ReadFull(tr.br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	version, err := binary.ReadUvarint(tr.br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrTruncated, err)
	}
	if version < minReadVersion || version > FormatVersion {
		return nil, fmt.Errorf("%w: got version %d, support %d..%d",
			ErrVersion, version, minReadVersion, FormatVersion)
	}
	tr.version = version
	if err := tr.readBlock(); err != nil {
		return nil, err
	}
	if tr.done {
		return nil, fmt.Errorf("%w: missing header block", ErrCorrupt)
	}
	if err := tr.decodeHeader(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Header returns the trace's decoded header.
func (r *Reader) Header() Header { return r.hdr }

// Version returns the format version of the trace being read.
func (r *Reader) Version() uint64 { return r.version }

// Events returns the number of events decoded so far.
func (r *Reader) Events() uint64 { return r.events }

// StoredBytes returns the block payload bytes read off the wire so far,
// and RawBytes the bytes those payloads decompressed to; their ratio is
// the stream's read amplification (1.0 for an uncompressed trace).
func (r *Reader) StoredBytes() uint64 { return r.stored }

// RawBytes returns the decompressed block payload bytes read so far.
func (r *Reader) RawBytes() uint64 { return r.raw }

// Trailer returns the recorded end-state statistics. It is valid only
// after Next has returned io.EOF.
func (r *Reader) Trailer() Trailer { return r.tr }

// fail records and returns the reader's sticky error.
func (r *Reader) fail(sentinel error, format string, args ...any) error {
	r.err = fmt.Errorf("%w: %s", sentinel, fmt.Sprintf(format, args...))
	return r.err
}

// readBlock loads the next framed block into r.blk, or decodes the
// trailer (setting done) when it hits the terminator.
func (r *Reader) readBlock() error {
	u, err := binary.ReadUvarint(r.br)
	if err != nil {
		return r.fail(ErrTruncated, "reading block length: %v", err)
	}
	n, compressed := u, false
	if r.version >= 2 {
		n, compressed = u>>1, u&1 == 1
	}
	if n == 0 {
		if compressed {
			return r.fail(ErrCorrupt, "compressed terminator frame")
		}
		return r.readTrailer()
	}
	if n > maxBlock {
		return r.fail(ErrCorrupt, "block length %d exceeds limit", n)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.br, crcBuf[:]); err != nil {
		return r.fail(ErrTruncated, "reading block checksum: %v", err)
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	dst := &r.blk
	if compressed {
		dst = &r.cbuf
	}
	if cap(*dst) < int(n) {
		*dst = make([]byte, n)
	}
	*dst = (*dst)[:n]
	if _, err := io.ReadFull(r.br, *dst); err != nil {
		return r.fail(ErrTruncated, "reading %d-byte block: %v", n, err)
	}
	// The CRC covers the stored bytes, so corruption is caught before the
	// decompressor ever sees the payload.
	if got := crc32.ChecksumIEEE(*dst); got != want {
		return r.fail(ErrCorrupt, "block checksum mismatch: %#x != %#x", got, want)
	}
	r.stored += n
	if compressed {
		rawLen, m := binary.Uvarint(r.cbuf)
		if m <= 0 || rawLen == 0 || rawLen > maxBlock {
			return r.fail(ErrCorrupt, "bad compressed-block raw length")
		}
		if cap(r.blk) < int(rawLen) {
			r.blk = make([]byte, rawLen)
		}
		r.blk = r.blk[:rawLen]
		if !lzDecode(r.blk, r.cbuf[m:]) {
			return r.fail(ErrCorrupt, "compressed block does not decode to %d bytes", rawLen)
		}
	}
	r.raw += uint64(len(r.blk))
	r.pos = 0
	return nil
}

// readTrailer decodes and checks the trailer that follows the terminator.
func (r *Reader) readTrailer() error {
	var body [3 * binary.MaxVarintLen64]byte
	n := 0
	read := func() uint64 {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			r.err = err
			return 0
		}
		// Re-encode to checksum the exact canonical bytes; a non-minimal
		// varint re-encodes differently and fails the CRC below.
		n += binary.PutUvarint(body[n:], v)
		return v
	}
	r.tr.WordsAllocated = read()
	r.tr.ObjectsAllocated = read()
	r.tr.Events = read()
	if r.err != nil {
		err := r.err
		r.err = nil
		return r.fail(ErrTruncated, "reading trailer: %v", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.br, crcBuf[:]); err != nil {
		return r.fail(ErrTruncated, "reading trailer checksum: %v", err)
	}
	if got := crc32.ChecksumIEEE(body[:n]); got != binary.LittleEndian.Uint32(crcBuf[:]) {
		return r.fail(ErrCorrupt, "trailer checksum mismatch")
	}
	if r.tr.Events != r.events {
		return r.fail(ErrCorrupt, "trailer says %d events, stream had %d", r.tr.Events, r.events)
	}
	r.done = true
	return nil
}

func (r *Reader) decodeHeader() error {
	flags, err := r.uvarint()
	if err != nil {
		return err
	}
	r.hdr.Census = flags&1 != 0
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	if count > maxBlock {
		return r.fail(ErrCorrupt, "absurd metadata count %d", count)
	}
	for i := uint64(0); i < count; i++ {
		k, err := r.string()
		if err != nil {
			return err
		}
		v, err := r.string()
		if err != nil {
			return err
		}
		r.hdr.Meta = append(r.hdr.Meta, MetaEntry{Key: k, Value: v})
	}
	if r.pos != len(r.blk) {
		return r.fail(ErrCorrupt, "%d trailing bytes in header block", len(r.blk)-r.pos)
	}
	// The header block is consumed; arm Next to load the first event block.
	r.blk = r.blk[:0]
	r.pos = 0
	return nil
}

// uvarint decodes one varint from the current block.
func (r *Reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.blk[r.pos:])
	if n <= 0 {
		return 0, r.fail(ErrCorrupt, "bad varint at block offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *Reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.blk)-r.pos) {
		return "", r.fail(ErrCorrupt, "string length %d overruns block", n)
	}
	s := string(r.blk[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// byte reads one raw byte from the current block.
func (r *Reader) byte() (byte, error) {
	if r.pos >= len(r.blk) {
		return 0, r.fail(ErrCorrupt, "event overruns block")
	}
	b := r.blk[r.pos]
	r.pos++
	return b, nil
}

// obj decodes a delta-compressed target object ID.
func (r *Reader) obj() (uint64, error) {
	delta, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if r.nextID == 0 || delta >= r.nextID {
		return 0, r.fail(ErrCorrupt, "object delta %d references before the first allocation", delta)
	}
	return r.nextID - 1 - delta, nil
}

func (r *Reader) value() (Value, error) {
	kind, err := r.byte()
	if err != nil {
		return Value{}, err
	}
	switch kind {
	case 0:
		u, err := r.uvarint()
		if err != nil {
			return Value{}, err
		}
		return Value{Bits: uint64(zdec(u))}, nil
	case 1:
		id, err := r.obj()
		if err != nil {
			return Value{}, err
		}
		return Value{IsObj: true, Bits: id}, nil
	}
	return Value{}, r.fail(ErrCorrupt, "bad value discriminator %d", kind)
}

// Next decodes the next event into *ev. It returns io.EOF — and only then
// — after the whole trace, trailer included, has been read and verified.
func (r *Reader) Next(ev *Event) error {
	if r.err != nil {
		return r.err
	}
	for r.pos == len(r.blk) {
		if r.done {
			return io.EOF
		}
		if err := r.readBlock(); err != nil {
			return err
		}
	}
	op, err := r.byte()
	if err != nil {
		return err
	}
	*ev = Event{Kind: Kind(op)}
	switch ev.Kind {
	case KindAlloc:
		t, err := r.byte()
		if err != nil {
			return err
		}
		size, err := r.uvarint()
		if err != nil {
			return err
		}
		if size > maxBlock {
			return r.fail(ErrCorrupt, "absurd allocation size %d", size)
		}
		if heap.Type(t) >= heap.TFree {
			// TFree marks dead blocks; no mutator allocates one.
			return r.fail(ErrCorrupt, "bad allocation type %d", t)
		}
		ev.Type = heap.Type(t)
		ev.Size = int(size)
		ev.Obj = r.nextID
		r.nextID++
	case KindStore:
		if ev.Obj, err = r.obj(); err != nil {
			return err
		}
		slot, err := r.uvarint()
		if err != nil {
			return err
		}
		ev.Slot = int(slot)
		if ev.Val, err = r.value(); err != nil {
			return err
		}
	case KindFill:
		if ev.Obj, err = r.obj(); err != nil {
			return err
		}
		if ev.Val, err = r.value(); err != nil {
			return err
		}
	case KindRaw:
		if ev.Obj, err = r.obj(); err != nil {
			return err
		}
		slot, err := r.uvarint()
		if err != nil {
			return err
		}
		ev.Slot = int(slot)
		if r.pos+8 > len(r.blk) {
			return r.fail(ErrCorrupt, "raw bits overrun block")
		}
		ev.Val.Bits = binary.LittleEndian.Uint64(r.blk[r.pos:])
		r.pos += 8
	case KindIntern:
		if ev.Obj, err = r.obj(); err != nil {
			return err
		}
		if ev.Name, err = r.string(); err != nil {
			return err
		}
	case KindPush, KindGlobal:
		if ev.Val, err = r.value(); err != nil {
			return err
		}
	case KindPopTo:
		depth, err := r.uvarint()
		if err != nil {
			return err
		}
		ev.Size = int(depth)
	case KindSet:
		u, err := r.uvarint()
		if err != nil {
			return err
		}
		ev.Ref = int32(zdec(u))
		if ev.Val, err = r.value(); err != nil {
			return err
		}
	case KindCollect:
		full, err := r.byte()
		if err != nil {
			return err
		}
		ev.Full = full != 0
	case KindSession:
		sess, err := r.uvarint()
		if err != nil {
			return err
		}
		if sess > maxBlock {
			return r.fail(ErrCorrupt, "absurd session index %d", sess)
		}
		ev.Size = int(sess)
	default:
		return r.fail(ErrCorrupt, "unknown event opcode %d", op)
	}
	r.events++
	return nil
}

// Drain reads and discards all remaining events, returning the trailer.
// cmd/gctrace stat and tests use it to validate a whole trace cheaply.
func (r *Reader) Drain() (Trailer, error) {
	var ev Event
	for {
		switch err := r.Next(&ev); {
		case err == nil:
		case errors.Is(err, io.EOF):
			return r.tr, nil
		default:
			return Trailer{}, err
		}
	}
}
