package trace

import (
	"fmt"
	"io"

	"rdgc/internal/heap"
)

// Record runs a workload with recording attached, end to end: it builds a
// fresh heap (census per the flag), installs mk's collector, records every
// event into out, and hands run the wrapped collector to drive. The
// workload's own error is returned after the trace is finalized, so a
// failing workload still leaves a complete, replayable trace.
func Record(out io.Writer, census bool, meta []MetaEntry, mk func(*heap.Heap) heap.Collector, run func(h *heap.Heap, c heap.Collector) error) (heap.Stats, error) {
	var opts []heap.Option
	if census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	c := mk(h)
	w, err := NewWriter(out, Header{Census: census, Meta: meta})
	if err != nil {
		return h.Stats, err
	}
	rec, err := NewRecorder(h, w)
	if err != nil {
		return h.Stats, err
	}
	runErr := run(h, rec.Collector(c))
	if err := rec.Finish(); err != nil {
		return h.Stats, err
	}
	return h.Stats, runErr
}

// Recorder captures a heap's mutator events into a trace. It installs
// itself as the heap's event sink and move hook; the move hook keeps a
// current-address → allocation-order-ID map, so recorded traces are
// independent of where any collector happens to place objects.
//
// Recording never perturbs the simulated run: the heap's words, roots,
// statistics, and collection schedule are identical with and without a
// recorder attached (only host-side wall clock changes), so the GCStats of
// a recorded run equal those of an unrecorded one.
type Recorder struct {
	h        *heap.Heap
	w        *Writer
	ids      map[heap.Word]uint64 // live object address -> allocation ID
	ev       Event                // scratch, re-encoded by every callback
	err      error                // sticky first failure
	finished bool
}

// NewRecorder attaches a recorder to h, streaming events into w. The heap
// must be pristine — no objects, handles, or globals yet — because object
// IDs, root depths, and global indices are positional; and its census mode
// must match the writer's header, because the hidden census word changes
// allocation sizes. The collector may already be installed (collector
// construction allocates no objects).
func NewRecorder(h *heap.Heap, w *Writer) (*Recorder, error) {
	if h.Stats.ObjectsAllocated != 0 || h.LiveRefs() != 0 || h.GlobalRoots() != 0 {
		return nil, fmt.Errorf("%w: recorder needs a pristine heap (have %d objects, %d refs, %d globals)",
			ErrInvalid, h.Stats.ObjectsAllocated, h.LiveRefs(), h.GlobalRoots())
	}
	if h.CensusEnabled() != w.Header().Census {
		return nil, fmt.Errorf("%w: heap census=%v but trace header census=%v",
			ErrInvalid, h.CensusEnabled(), w.Header().Census)
	}
	r := &Recorder{h: h, w: w, ids: make(map[heap.Word]uint64)}
	h.SetEventSink(r)
	h.SetMoveHook(r.moved)
	return r, nil
}

// Err returns the recorder's first failure, if any.
func (r *Recorder) Err() error { return r.err }

// Finish detaches the recorder and closes the trace with the heap's final
// statistics. It returns the first error from the whole recording.
func (r *Recorder) Finish() error {
	if r.finished {
		return r.err
	}
	r.finished = true
	r.h.SetEventSink(nil)
	r.h.SetMoveHook(nil)
	if r.err != nil {
		return r.err
	}
	r.err = r.w.Close(Trailer{
		WordsAllocated:   r.h.Stats.WordsAllocated,
		ObjectsAllocated: r.h.Stats.ObjectsAllocated,
		Events:           r.w.Events(),
	})
	return r.err
}

func (r *Recorder) failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
	}
}

// moved is the heap move hook: collectors relocating an object carry its
// ID to the new address.
func (r *Recorder) moved(old, new heap.Word) {
	if id, ok := r.ids[old]; ok {
		delete(r.ids, old)
		r.ids[new] = id
	}
}

// value translates a heap word into a trace operand: pointers become
// allocation IDs, everything else travels as immediate bits.
func (r *Recorder) value(w heap.Word) Value {
	if !heap.IsPtr(w) {
		return Imm(w)
	}
	id, ok := r.ids[w]
	if !ok {
		r.failf("pointer %#x does not resolve to a recorded object", uint64(w))
		return Imm(0)
	}
	return Obj(id)
}

// objID resolves the event's target object.
func (r *Recorder) objID(w heap.Word) (uint64, bool) {
	id, ok := r.ids[w]
	if !ok {
		r.failf("event target %#x does not resolve to a recorded object", uint64(w))
	}
	return id, ok
}

func (r *Recorder) append() {
	if err := r.w.Append(&r.ev); err != nil && r.err == nil {
		r.err = err
	}
}

// EvAlloc implements heap.EventSink.
func (r *Recorder) EvAlloc(w heap.Word, t heap.Type, payload int) {
	if r.err != nil {
		return
	}
	r.ev = Event{Kind: KindAlloc, Type: t, Size: payload}
	r.append()
	// Append assigned the allocation its ID; dead objects whose address is
	// being reused are overwritten here, which also bounds the map by the
	// heap's total words.
	r.ids[w] = r.ev.Obj
}

// EvStore implements heap.EventSink.
func (r *Recorder) EvStore(w heap.Word, i int, val heap.Word) {
	if r.err != nil {
		return
	}
	id, ok := r.objID(w)
	if !ok {
		return
	}
	r.ev = Event{Kind: KindStore, Obj: id, Slot: i, Val: r.value(val)}
	if r.err == nil {
		r.append()
	}
}

// EvFill implements heap.EventSink.
func (r *Recorder) EvFill(w heap.Word, val heap.Word) {
	if r.err != nil {
		return
	}
	id, ok := r.objID(w)
	if !ok {
		return
	}
	r.ev = Event{Kind: KindFill, Obj: id, Val: r.value(val)}
	if r.err == nil {
		r.append()
	}
}

// EvRaw implements heap.EventSink.
func (r *Recorder) EvRaw(w heap.Word, i int, bits uint64) {
	if r.err != nil {
		return
	}
	id, ok := r.objID(w)
	if !ok {
		return
	}
	r.ev = Event{Kind: KindRaw, Obj: id, Slot: i, Val: Value{Bits: bits}}
	r.append()
}

// EvIntern implements heap.EventSink.
func (r *Recorder) EvIntern(w heap.Word, name string) {
	if r.err != nil {
		return
	}
	id, ok := r.objID(w)
	if !ok {
		return
	}
	r.ev = Event{Kind: KindIntern, Obj: id, Name: name}
	r.append()
}

// EvRootPush implements heap.EventSink.
func (r *Recorder) EvRootPush(w heap.Word) {
	if r.err != nil {
		return
	}
	r.ev = Event{Kind: KindPush, Val: r.value(w)}
	if r.err == nil {
		r.append()
	}
}

// EvRootPopTo implements heap.EventSink.
func (r *Recorder) EvRootPopTo(depth int) {
	if r.err != nil {
		return
	}
	r.ev = Event{Kind: KindPopTo, Size: depth}
	r.append()
}

// EvRootSet implements heap.EventSink.
func (r *Recorder) EvRootSet(ref heap.Ref, w heap.Word) {
	if r.err != nil {
		return
	}
	r.ev = Event{Kind: KindSet, Ref: int32(ref), Val: r.value(w)}
	if r.err == nil {
		r.append()
	}
}

// EvGlobal implements heap.EventSink.
func (r *Recorder) EvGlobal(w heap.Word) {
	if r.err != nil {
		return
	}
	r.ev = Event{Kind: KindGlobal, Val: r.value(w)}
	if r.err == nil {
		r.append()
	}
}

// collect records a collection boundary.
func (r *Recorder) collect(full bool) {
	if r.err != nil {
		return
	}
	r.ev = Event{Kind: KindCollect, Full: full}
	r.append()
}

// fullCollector is the optional whole-heap collection the non-predictive
// collectors expose (same contract as gcfuzz's).
type fullCollector interface{ FullCollect() }

// RecordingCollector wraps a collector so that mutator-requested
// collection boundaries land in the trace. It records the *intent* —
// collect versus full-collect — not what the wrapped collector did with
// it, so a replay under a different collector applies its own policy
// exactly as a live run would have.
type RecordingCollector struct {
	heap.Collector
	r *Recorder
}

// Collector wraps c for recording. Drive the workload through the wrapper;
// allocations still flow through the heap's installed allocator.
func (r *Recorder) Collector(c heap.Collector) *RecordingCollector {
	return &RecordingCollector{Collector: c, r: r}
}

// Collect records the boundary, then collects.
func (rc *RecordingCollector) Collect() {
	rc.r.collect(false)
	rc.Collector.Collect()
}

// FullCollect records a full-collection boundary, then performs one where
// the wrapped collector supports it, falling back to Collect — mirroring
// how replay treats a full boundary under each collector.
func (rc *RecordingCollector) FullCollect() {
	rc.r.collect(true)
	if fc, ok := rc.Collector.(fullCollector); ok {
		fc.FullCollect()
	} else {
		rc.Collector.Collect()
	}
}
