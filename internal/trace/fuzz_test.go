package trace_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rdgc/internal/trace"
)

// FuzzTraceReader feeds arbitrary bytes to the trace reader: it must
// either decode cleanly or fail with one of the package sentinels —
// never panic, never return an unwrapped error. Seeds cover both wire
// versions, compressed and uncompressed blocks, synthesized session
// streams (via the checked-in corpus), and truncations.
func FuzzTraceReader(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	small := func(compress bool) []byte {
		var buf bytes.Buffer
		var opts []trace.WriterOption
		if compress {
			opts = append(opts, trace.WithCompression())
		}
		w, err := trace.NewWriter(&buf, trace.Header{Meta: []trace.MetaEntry{{Key: "workload", Value: "fuzz-seed"}}}, opts...)
		if err != nil {
			f.Fatal(err)
		}
		evs := genEvents(rng, 400)
		for i := range evs {
			if err := w.Append(&evs[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(trace.Trailer{Events: uint64(len(evs))}); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	raw, comp := small(false), small(true)
	f.Add(raw)
	f.Add(comp)
	f.Add(raw[:len(raw)/2])
	f.Add(comp[:len(comp)/3])
	f.Add([]byte{})
	f.Add([]byte("rdgctrc\x00"))
	corpus, _ := filepath.Glob(filepath.Join(corpusDir, "*.trace"))
	for _, path := range corpus {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		rd, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			checkSentinelErr(t, err)
			return
		}
		var ev trace.Event
		for {
			err := rd.Next(&ev)
			if errors.Is(err, io.EOF) {
				rd.Trailer() // must be populated without panicking
				return
			}
			if err != nil {
				checkSentinelErr(t, err)
				return
			}
		}
	})
}

func checkSentinelErr(t *testing.T, err error) {
	t.Helper()
	for _, s := range []error{trace.ErrBadMagic, trace.ErrVersion, trace.ErrCorrupt, trace.ErrTruncated, trace.ErrInvalid, trace.ErrDrift} {
		if errors.Is(err, s) {
			return
		}
	}
	t.Fatalf("non-sentinel error from reader: %v", err)
}
