package trace

import (
	"errors"
	"io"
	"sort"

	"rdgc/internal/heap"
)

// AllocMixClass is one (object type, payload size) allocation class of a
// trace: the exact-size companion to Summary's log2-bucketed SizeHist,
// exported so recorded traces can seed per-request allocation profiles
// (internal/serve samples these to re-enact a recorded workload's
// allocation behavior request by request).
type AllocMixClass struct {
	Type         heap.Type
	PayloadWords int
	Count        uint64
}

// ReadAllocMix drains r and returns the exact allocation-class census of
// the trace, sorted by (Type, PayloadWords). The whole stream is read and
// CRC-verified (trailer included), so a nil error also vouches for the
// trace's integrity.
func ReadAllocMix(r *Reader) ([]AllocMixClass, error) {
	counts := make(map[AllocMixClass]uint64)
	var ev Event
	for {
		switch err := r.Next(&ev); {
		case err == nil:
			if ev.Kind == KindAlloc {
				counts[AllocMixClass{Type: ev.Type, PayloadWords: ev.Size}]++
			}
			continue
		case errors.Is(err, io.EOF):
		default:
			return nil, err
		}
		break
	}
	out := make([]AllocMixClass, 0, len(counts))
	for cls, n := range counts {
		cls.Count = n
		out = append(out, cls)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].PayloadWords < out[j].PayloadWords
	})
	return out, nil
}
