package trace_test

import (
	"bytes"
	"math/rand"
	"testing"

	"rdgc/internal/gc/gcfuzz"
	"rdgc/internal/gc/gctest"
	"rdgc/internal/heap"
	"rdgc/internal/trace"
)

type fullCollector interface{ FullCollect() }

// driveMutator runs a deterministic randomized mutator workload: the op
// stream depends only on the seed and the shadow model, never on the
// collector, so every collector sees the identical workload — the same
// property the fuzz harness relies on.
func driveMutator(h *heap.Heap, c heap.Collector, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	m := gctest.NewMutator(h, rng)
	for i := 0; i < steps; i++ {
		switch {
		case i%97 == 96:
			if fc, ok := c.(fullCollector); ok {
				fc.FullCollect()
			} else {
				c.Collect()
			}
		case i%53 == 52:
			c.Collect()
		default:
			m.Op(rng.Intn(gctest.NumOps))
		}
	}
	c.Collect()
}

// recordMutator records the workload under the named constructor and
// returns the trace bytes plus the recording run's stats.
func recordMutator(t *testing.T, mk func(*heap.Heap) heap.Collector, census bool, seed int64, steps int) ([]byte, heap.Stats, heap.GCStats) {
	t.Helper()
	var opts []heap.Option
	if census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	c := mk(h)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Census: census})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(h, w)
	if err != nil {
		t.Fatal(err)
	}
	driveMutator(h, rec.Collector(c), seed, steps)
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), h.Stats, *c.GCStats()
}

// liveMutator runs the same workload without any recording.
func liveMutator(mk func(*heap.Heap) heap.Collector, census bool, seed int64, steps int) (heap.Stats, heap.GCStats) {
	var opts []heap.Option
	if census {
		opts = append(opts, heap.WithCensus())
	}
	h := heap.New(opts...)
	c := mk(h)
	driveMutator(h, c, seed, steps)
	return h.Stats, *c.GCStats()
}

// TestMutatorReplayConformance is the tentpole's acceptance property: a
// workload recorded under one collector replays under every collector with
// byte-identical mutator Stats and GCStats identical to a live run of that
// collector — and the trace bytes themselves do not depend on which
// collector recorded them.
func TestMutatorReplayConformance(t *testing.T) {
	collectors := gcfuzz.Collectors()
	for _, census := range []bool{false, true} {
		for _, seed := range []int64{1, 2} {
			const steps = 600
			raw, recStats, recGC := recordMutator(t, collectors[0].New, census, seed, steps)

			// Recording must not perturb the run: the recording collector's
			// stats equal an unrecorded live run's.
			liveStats, liveGC := liveMutator(collectors[0].New, census, seed, steps)
			if recStats != liveStats || recGC != liveGC {
				t.Fatalf("census=%v seed=%d: recording perturbed the run:\nrec  %+v %+v\nlive %+v %+v",
					census, seed, recStats, recGC, liveStats, liveGC)
			}

			// Record once: a different recording collector yields the same bytes.
			raw2, _, _ := recordMutator(t, collectors[3].New, census, seed, steps)
			if !bytes.Equal(raw, raw2) {
				t.Fatalf("census=%v seed=%d: trace bytes depend on the recording collector (%s vs %s)",
					census, seed, collectors[0].Name, collectors[3].Name)
			}

			for _, nc := range collectors {
				wantStats, wantGC := liveMutator(nc.New, census, seed, steps)

				rd, err := trace.NewReader(bytes.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				var opts []heap.Option
				if census {
					opts = append(opts, heap.WithCensus())
				}
				h := heap.New(opts...)
				c := nc.New(h)
				res, err := trace.Replay(rd, h, c, trace.ReplayOptions{Verify: true})
				if err != nil {
					t.Fatalf("census=%v seed=%d replay under %s: %v", census, seed, nc.Name, err)
				}
				if res.Stats != wantStats {
					t.Errorf("census=%v seed=%d %s: replay stats %+v, live %+v",
						census, seed, nc.Name, res.Stats, wantStats)
				}
				if got := *c.GCStats(); got != wantGC {
					t.Errorf("census=%v seed=%d %s: replay GCStats %+v, live %+v",
						census, seed, nc.Name, got, wantGC)
				}
			}
		}
	}
}
