package trace

// An LZ77 block codec in the LZ4 token format, hand-rolled so the trace
// package stays dependency-free and the decoder stays allocation-free.
// compress/flate would cost a Reader allocation per stream and a slower
// decode path; trace blocks are small (≤ blockTarget) and highly
// self-similar (varint event streams), which is exactly the regime a
// greedy hash-chain-less LZ with a 64 KiB window handles well.
//
// Sequence layout, repeated until the source is exhausted:
//
//	token byte: literal-length nibble (high) | match-length nibble (low)
//	[literal length extension bytes, 255-run coded, if nibble == 15]
//	literal bytes
//	2-byte little-endian match offset (1 .. 65535)
//	[match length extension bytes, if nibble == 15]
//
// Match lengths are stored minus lzMinMatch. The final sequence carries
// literals only: the stream simply ends after them, with no offset — the
// decoder treats source exhaustion after literals as end-of-block.

const (
	lzHashLog   = 13
	lzTableSize = 1 << lzHashLog
	lzMinMatch  = 4
	lzMaxOffset = 1 << 16 // 2-byte offsets; ≥ blockTarget, so the window never slides
)

// lzTable maps 4-byte-prefix hashes to candidate positions + 1 (0 = empty).
// It is reused across blocks and cleared on entry to lzAppend.
type lzTable [lzTableSize]uint32

func lzHash(u uint32) uint32 { return (u * 2654435761) >> (32 - lzHashLog) }

func lzLoad32(b []byte, i int) uint32 {
	_ = b[i+3]
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// lzAppendLen appends a 15-biased run-coded length extension.
func lzAppendLen(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// lzAppend appends the compressed form of src to dst and returns it. The
// output is deterministic (greedy parse, fixed table size) so identical
// traces compress to identical bytes on every platform.
func lzAppend(dst, src []byte, tab *lzTable) []byte {
	for i := range tab {
		tab[i] = 0
	}
	emit := func(lit []byte, offset, mlen int) {
		ll, ml := len(lit), mlen-lzMinMatch
		tok := byte(0)
		if ll < 15 {
			tok = byte(ll) << 4
		} else {
			tok = 15 << 4
		}
		if mlen > 0 {
			if ml < 15 {
				tok |= byte(ml)
			} else {
				tok |= 15
			}
		}
		dst = append(dst, tok)
		if ll >= 15 {
			dst = lzAppendLen(dst, ll-15)
		}
		dst = append(dst, lit...)
		if mlen == 0 {
			return // final literal-only sequence: no offset follows
		}
		dst = append(dst, byte(offset), byte(offset>>8))
		if ml >= 15 {
			dst = lzAppendLen(dst, ml-15)
		}
	}
	anchor, i, n := 0, 0, len(src)
	for i+lzMinMatch <= n {
		h := lzHash(lzLoad32(src, i))
		cand := int(tab[h]) - 1
		tab[h] = uint32(i + 1)
		if cand < 0 || i-cand >= lzMaxOffset || lzLoad32(src, cand) != lzLoad32(src, i) {
			i++
			continue
		}
		mlen := lzMinMatch
		for i+mlen < n && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		emit(src[anchor:i], i-cand, mlen)
		i += mlen
		anchor = i
	}
	emit(src[anchor:], 0, 0)
	return dst
}

// lzDecode decompresses src into dst, which must be exactly the original
// length (the writer stores it ahead of the compressed bytes). Every read
// and write is bounds-checked so corrupt input returns false instead of
// panicking or over-reading; it never allocates.
func lzDecode(dst, src []byte) bool {
	di, si := 0, 0
	readLen := func(base int) (int, bool) {
		v := base
		for {
			if si >= len(src) {
				return 0, false
			}
			b := src[si]
			si++
			v += int(b)
			if b != 255 {
				return v, true
			}
		}
	}
	for si < len(src) {
		tok := src[si]
		si++
		ll := int(tok >> 4)
		if ll == 15 {
			var ok bool
			if ll, ok = readLen(15); !ok {
				return false
			}
		}
		if ll > len(src)-si || ll > len(dst)-di {
			return false
		}
		copy(dst[di:], src[si:si+ll])
		di += ll
		si += ll
		if si == len(src) {
			break // final literal-only sequence
		}
		if len(src)-si < 2 {
			return false
		}
		off := int(src[si]) | int(src[si+1])<<8
		si += 2
		if off == 0 || off > di {
			return false
		}
		ml := int(tok & 15)
		if ml == 15 {
			var ok bool
			if ml, ok = readLen(15); !ok {
				return false
			}
		}
		ml += lzMinMatch
		if ml > len(dst)-di {
			return false
		}
		// Byte-at-a-time: offsets shorter than the match length replicate
		// the just-written run, which copy() would get wrong.
		for k := 0; k < ml; k++ {
			dst[di] = dst[di-off]
			di++
		}
	}
	return di == len(dst)
}
