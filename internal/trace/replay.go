package trace

import (
	"errors"
	"fmt"
	"io"

	"rdgc/internal/heap"
)

// Replayer applies trace events to a heap, driving any collector through
// the identical allocation/store/root schedule the recording mutator
// produced. Object identity is maintained the same way the recorder
// maintains it: an ID → current-address table kept fresh by the heap's
// move hook, costing one word per recorded object.
type Replayer struct {
	h     *heap.Heap
	c     heap.Collector
	words []heap.Word          // allocation ID -> current address
	ids   map[heap.Word]uint64 // current address -> allocation ID
}

// NewReplayer attaches a replayer to a pristine heap whose collector c is
// already installed. Call Close when done to detach the move hook.
func NewReplayer(h *heap.Heap, c heap.Collector) (*Replayer, error) {
	if h.Stats.ObjectsAllocated != 0 || h.LiveRefs() != 0 || h.GlobalRoots() != 0 {
		return nil, fmt.Errorf("%w: replayer needs a pristine heap", ErrInvalid)
	}
	rp := &Replayer{h: h, c: c, ids: make(map[heap.Word]uint64)}
	h.SetMoveHook(rp.moved)
	return rp, nil
}

// Close detaches the replayer from its heap.
func (rp *Replayer) Close() { rp.h.SetMoveHook(nil) }

func (rp *Replayer) moved(old, new heap.Word) {
	if id, ok := rp.ids[old]; ok {
		delete(rp.ids, old)
		rp.ids[new] = id
		rp.words[id] = new
	}
}

// word resolves an allocation ID to the object's current address.
func (rp *Replayer) word(id uint64) (heap.Word, error) {
	if id >= uint64(len(rp.words)) {
		return 0, fmt.Errorf("%w: object #%d not yet allocated", ErrInvalid, id)
	}
	return rp.words[id], nil
}

func (rp *Replayer) value(v Value) (heap.Word, error) {
	if v.IsObj {
		return rp.word(v.Bits)
	}
	return heap.Word(v.Bits), nil
}

// Apply executes one event against the heap.
func (rp *Replayer) Apply(ev *Event) error {
	switch ev.Kind {
	case KindAlloc:
		// The allocation may trigger a collection; the move hook keeps the
		// tables fresh while it runs.
		w := rp.h.AllocObject(ev.Type, ev.Size)
		rp.ids[w] = uint64(len(rp.words))
		rp.words = append(rp.words, w)
	case KindStore:
		obj, err := rp.word(ev.Obj)
		if err != nil {
			return err
		}
		val, err := rp.value(ev.Val)
		if err != nil {
			return err
		}
		rp.h.StoreField(obj, ev.Slot, val)
	case KindFill:
		obj, err := rp.word(ev.Obj)
		if err != nil {
			return err
		}
		val, err := rp.value(ev.Val)
		if err != nil {
			return err
		}
		rp.h.FillFields(obj, val)
	case KindRaw:
		obj, err := rp.word(ev.Obj)
		if err != nil {
			return err
		}
		rp.h.StoreRaw(obj, ev.Slot, ev.Val.Bits)
	case KindIntern:
		obj, err := rp.word(ev.Obj)
		if err != nil {
			return err
		}
		rp.h.AdoptSymbol(obj, ev.Name)
	case KindPush:
		val, err := rp.value(ev.Val)
		if err != nil {
			return err
		}
		rp.h.RefOf(val)
	case KindPopTo:
		rp.h.TruncateRefs(ev.Size)
	case KindSet:
		val, err := rp.value(ev.Val)
		if err != nil {
			return err
		}
		rp.h.Set(heap.Ref(ev.Ref), val)
	case KindGlobal:
		val, err := rp.value(ev.Val)
		if err != nil {
			return err
		}
		rp.h.GlobalWord(val)
	case KindCollect:
		if ev.Full {
			if fc, ok := rp.c.(fullCollector); ok {
				fc.FullCollect()
				return nil
			}
		}
		rp.c.Collect()
	case KindSession:
		// Synthetic session attribution marker; no heap effect.
	default:
		return fmt.Errorf("%w: unknown event kind %d", ErrInvalid, ev.Kind)
	}
	return nil
}

// ReplayOptions tunes Replay.
type ReplayOptions struct {
	// Verify runs the deep heap-invariant verifier (heap.VerifyCollector)
	// after every collection and over the final heap.
	Verify bool
}

// ReplayResult is the end state of a replay.
type ReplayResult struct {
	// Stats is the replayed heap's mutator statistics; Replay has already
	// checked them against the trace trailer.
	Stats heap.Stats
	// Events is the number of events applied.
	Events uint64
}

// Replay drives c from the trace in rd on the pristine heap h (whose
// census mode must match the trace header), then proves the replay
// reproduced the recording: the mutator statistics must equal the
// trailer's, else ErrDrift. Malformed traces surface the codec sentinels;
// events that put the heap in an impossible state (a corrupt trace can
// encode one) are converted from panics into ErrInvalid.
func Replay(rd *Reader, h *heap.Heap, c heap.Collector, opt ReplayOptions) (res ReplayResult, err error) {
	if h.CensusEnabled() != rd.Header().Census {
		return res, fmt.Errorf("%w: trace census=%v but heap census=%v",
			ErrInvalid, rd.Header().Census, h.CensusEnabled())
	}
	rp, err := NewReplayer(h, c)
	if err != nil {
		return res, err
	}
	defer rp.Close()

	var verifyErr error
	if opt.Verify {
		h.SetAfterGC(func() {
			if verifyErr == nil {
				verifyErr = heap.VerifyCollector(h, c)
			}
		})
		defer h.SetAfterGC(nil)
	}

	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: replay panicked applying event %d: %v", ErrInvalid, res.Events, p)
		}
	}()

	var ev Event
	for {
		nerr := rd.Next(&ev)
		if errors.Is(nerr, io.EOF) {
			break
		}
		if nerr != nil {
			return res, nerr
		}
		if aerr := rp.Apply(&ev); aerr != nil {
			return res, fmt.Errorf("event %d (%s): %w", res.Events, ev.String(), aerr)
		}
		res.Events++
		if verifyErr != nil {
			return res, fmt.Errorf("event %d: %w", res.Events-1, verifyErr)
		}
	}

	res.Stats = h.Stats
	tr := rd.Trailer()
	if h.Stats.WordsAllocated != tr.WordsAllocated ||
		h.Stats.ObjectsAllocated != tr.ObjectsAllocated ||
		res.Events != tr.Events {
		return res, fmt.Errorf("%w: replayed %d events, %d words, %d objects; recorded %d, %d, %d",
			ErrDrift, res.Events, h.Stats.WordsAllocated, h.Stats.ObjectsAllocated,
			tr.Events, tr.WordsAllocated, tr.ObjectsAllocated)
	}
	if opt.Verify {
		if err := heap.Check(h); err != nil {
			return res, err
		}
		if err := heap.VerifyCollector(h, c); err != nil {
			return res, err
		}
	}
	return res, nil
}
