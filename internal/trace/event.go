package trace

import (
	"fmt"

	"rdgc/internal/heap"
)

// Kind discriminates trace events.
type Kind uint8

// The event taxonomy. Together these cover every mutator-visible heap
// mutation the public heap API can perform; collection boundaries record
// the *intent* (collect, full-collect) so each replaying collector applies
// its own policy, exactly as it would have live.
const (
	// KindAlloc allocates the next object: Type and Size (payload words).
	// Objects are numbered by allocation order; the event implicitly
	// assigns the next ID, recorded in Obj by the codec.
	KindAlloc Kind = iota + 1
	// KindStore stores Val into payload slot Slot of object Obj.
	KindStore
	// KindFill stores Val into every payload slot of object Obj, with a
	// single write-barrier record (MakeVector's initializing fill).
	KindFill
	// KindRaw stores raw bits (Val.Bits) into payload slot Slot of object
	// Obj, without a write barrier (flonum data).
	KindRaw
	// KindIntern adopts object Obj as the unique symbol named Name.
	KindIntern
	// KindPush pushes Val onto the handle stack.
	KindPush
	// KindPopTo truncates the handle stack to depth Slot.
	KindPopTo
	// KindSet overwrites the slot of Ref with Val.
	KindSet
	// KindGlobal appends Val to the permanent root table.
	KindGlobal
	// KindCollect is a mutator-requested collection boundary; Full asks
	// for a whole-heap collection where the collector supports one.
	KindCollect
	// KindSession marks the start of a synthesized session's turn: the
	// events that follow, up to the next marker, belong to merged session
	// Size. It has no heap effect and the replayer ignores it; the
	// synthesis operators (Interleave, Amplify) emit it and Split and the
	// sharded replay driver consume it. Format version ≥ 2 only.
	KindSession

	kindMax = KindSession
)

var kindNames = [...]string{
	KindAlloc: "alloc", KindStore: "store", KindFill: "fill", KindRaw: "raw",
	KindIntern: "intern", KindPush: "push", KindPopTo: "popto", KindSet: "set",
	KindGlobal: "global", KindCollect: "collect", KindSession: "session",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is an operand that may be an immediate word or an object
// reference. Immediates travel as raw word bits; object references travel
// as allocation-order IDs, resolved to current addresses at replay time.
type Value struct {
	IsObj bool
	// Bits is the immediate's word bits, KindRaw's raw payload bits, or
	// the referenced object's ID.
	Bits uint64
}

// Imm builds an immediate-word operand.
func Imm(w heap.Word) Value { return Value{Bits: uint64(w)} }

// Obj builds an object-reference operand.
func Obj(id uint64) Value { return Value{IsObj: true, Bits: id} }

// Event is one decoded trace event. The zero Event is invalid; Next fills
// all fields relevant to Kind and zeroes the rest, so Events compare with
// ==, except Name which only KindIntern uses.
type Event struct {
	Kind Kind
	Type heap.Type // KindAlloc: object type
	Size int       // KindAlloc: payload words; KindPopTo: target depth
	Slot int       // KindStore/KindRaw: payload slot index
	Obj  uint64    // target object ID; KindAlloc: the ID assigned
	Ref  int32     // KindSet: the heap.Ref written
	Val  Value     // operand value (see Kind docs)
	Full bool      // KindCollect: whole-heap collection requested
	Name string    // KindIntern: symbol name
}

// String renders the event in cmd/gctrace cat's format.
func (e *Event) String() string {
	switch e.Kind {
	case KindAlloc:
		return fmt.Sprintf("alloc   #%d %v/%d", e.Obj, e.Type, e.Size)
	case KindStore:
		return fmt.Sprintf("store   #%d[%d] = %s", e.Obj, e.Slot, e.Val)
	case KindFill:
		return fmt.Sprintf("fill    #%d = %s", e.Obj, e.Val)
	case KindRaw:
		return fmt.Sprintf("raw     #%d[%d] = %#x", e.Obj, e.Slot, e.Val.Bits)
	case KindIntern:
		return fmt.Sprintf("intern  #%d %q", e.Obj, e.Name)
	case KindPush:
		return fmt.Sprintf("push    %s", e.Val)
	case KindPopTo:
		return fmt.Sprintf("popto   %d", e.Size)
	case KindSet:
		return fmt.Sprintf("set     r%d = %s", e.Ref, e.Val)
	case KindGlobal:
		return fmt.Sprintf("global  %s", e.Val)
	case KindCollect:
		if e.Full {
			return "collect full"
		}
		return "collect"
	case KindSession:
		return fmt.Sprintf("session %d", e.Size)
	}
	return fmt.Sprintf("event(%d)", uint8(e.Kind))
}

func (v Value) String() string {
	if v.IsObj {
		return fmt.Sprintf("#%d", v.Bits)
	}
	return fmt.Sprintf("%#x", v.Bits)
}
