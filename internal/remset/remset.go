// Package remset implements remembered sets for the generational
// collectors. An entry is an object (not a slot): the paper's Larceny
// remembers whole objects and rescans their fields at collection time
// (Section 8.4).
//
// Two representations are provided — a hash set and a sequential store
// buffer — because their trade-off is one of the ablations this repository
// measures. Both deduplicate: the SSB defers deduplication to scan time.
package remset

import "rdgc/internal/heap"

// Set is a remembered set of object pointer words.
type Set interface {
	// Remember adds the object w points to.
	Remember(w heap.Word)
	// ForEach visits each remembered object exactly once.
	ForEach(f func(w heap.Word))
	// Clear empties the set.
	Clear()
	// Len returns the current number of distinct entries (for the SSB this
	// forces deduplication).
	Len() int
	// Peak returns the largest Len observed at any Clear or Len call.
	Peak() int
}

// HashSet is the default remembered-set representation.
type HashSet struct {
	m    map[heap.Word]struct{}
	peak int
}

// NewHashSet creates an empty hash-based remembered set.
func NewHashSet() *HashSet { return &HashSet{m: make(map[heap.Word]struct{})} }

// Remember implements Set.
func (s *HashSet) Remember(w heap.Word) {
	s.m[w] = struct{}{}
	if len(s.m) > s.peak {
		s.peak = len(s.m)
	}
}

// ForEach implements Set.
func (s *HashSet) ForEach(f func(w heap.Word)) {
	for w := range s.m {
		f(w)
	}
}

// Clear implements Set.
func (s *HashSet) Clear() { clear(s.m) }

// Len implements Set.
func (s *HashSet) Len() int { return len(s.m) }

// Peak implements Set.
func (s *HashSet) Peak() int { return s.peak }

// SSB is a sequential store buffer: the write barrier appends without
// checking for duplicates, and scans deduplicate. This is the cheap-barrier
// representation used by several production collectors.
type SSB struct {
	buf  []heap.Word
	peak int
}

// NewSSB creates an empty sequential store buffer.
func NewSSB() *SSB { return &SSB{} }

// Remember implements Set.
func (s *SSB) Remember(w heap.Word) { s.buf = append(s.buf, w) }

// dedup compacts the buffer to distinct entries, preserving first-seen order.
func (s *SSB) dedup() {
	seen := make(map[heap.Word]struct{}, len(s.buf))
	out := s.buf[:0]
	for _, w := range s.buf {
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	s.buf = out
	if len(s.buf) > s.peak {
		s.peak = len(s.buf)
	}
}

// ForEach implements Set.
func (s *SSB) ForEach(f func(w heap.Word)) {
	s.dedup()
	for _, w := range s.buf {
		f(w)
	}
}

// Clear implements Set.
func (s *SSB) Clear() {
	s.dedup() // record the peak before discarding
	s.buf = s.buf[:0]
}

// Len implements Set.
func (s *SSB) Len() int {
	s.dedup()
	return len(s.buf)
}

// Peak implements Set.
func (s *SSB) Peak() int { return s.peak }
